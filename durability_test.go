package bqs_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bqs"
	"bqs/internal/harness"
)

// diskShard is one TCP shard of a durable deployment: a WireServer whose
// replicas persist to dataDir/server-NNNN.
type diskShard struct {
	srv  *bqs.WireServer
	addr string
	ids  []int
}

// startDiskShard opens a disk store per replica under root and serves
// them on a loopback listener (addr "" = any free port).
func startDiskShard(t *testing.T, root string, ids []int, addr string) *diskShard {
	t.Helper()
	replicas := make(map[int]*bqs.Server, len(ids))
	for _, id := range ids {
		st, err := bqs.OpenDiskStore(filepath.Join(root, fmt.Sprintf("server-%04d", id)))
		if err != nil {
			t.Fatalf("open store for server %d: %v", id, err)
		}
		replicas[id] = bqs.NewServer(id, bqs.WithStore(st))
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var lis net.Listener
	var err error
	// The kill-and-recover path rebinds the killed shard's port; give the
	// OS a moment to release it.
	for attempt := 0; attempt < 50; attempt++ {
		lis, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	srv := bqs.NewWireServer(replicas)
	go srv.Serve(lis)
	return &diskShard{srv: srv, addr: lis.Addr().String(), ids: ids}
}

// TestWireKillAndRecover is the crash-recovery integration test over real
// sockets: a three-shard durable TCP deployment takes a write workload,
// one shard dies abruptly (no graceful shutdown, no store flush — the
// in-test analogue of kill -9; the CI smoke sends the real signal to a
// bqs-server process), restarts from its data directories on the same
// port, and every acknowledged write must come back with a timestamp at
// least as fresh as the one the client observed. Zero violations
// throughout: recovery must never resurrect stale or fabricated state.
func TestWireKillAndRecover(t *testing.T) {
	ctx := context.Background()
	sys, err := bqs.NewMaskingThreshold(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	shardIDs := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}}
	shards := make([]*diskShard, len(shardIDs))
	routes := make(map[int]string, 9)
	for i, ids := range shardIDs {
		shards[i] = startDiskShard(t, root, ids, "")
		for _, id := range ids {
			routes[id] = shards[i].addr
		}
		defer shards[i].srv.Close()
	}
	tr, err := bqs.DialWire(routes)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cluster, err := bqs.NewCluster(sys, 2, bqs.WithSeed(11),
		bqs.WithTransport(func([]*bqs.Server) bqs.Transport { return tr }))
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: acknowledged writes, and the timestamps clients observed.
	cl := cluster.NewClient(1)
	const keys = 24
	seen := make(map[string]bqs.TaggedValue, keys)
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("k%03d", i)
		if err := cl.WriteKey(ctx, key, fmt.Sprintf("v%03d", i)); err != nil {
			t.Fatalf("write %s: %v", key, err)
		}
		tv, err := cl.ReadKey(ctx, key)
		if err != nil {
			t.Fatalf("read-back %s: %v", key, err)
		}
		seen[key] = tv
	}

	// Restart one replica in place over TCP: the control frame runs the
	// store's crash-recovery path on a live daemon.
	if err := tr.Flip(ctx, 0, bqs.Restart); err != nil {
		t.Fatalf("remote restart: %v", err)
	}

	// Kill shard 1: abrupt close, stores left unflushed and unclosed —
	// exactly what the replicas' disks would see on a SIGKILL. Durability
	// must come from the persist-before-ack WAL alone.
	killed := shards[1]
	killed.srv.Close()

	// Recover: fresh stores from the same directories, same port.
	revived := startDiskShard(t, root, killed.ids, killed.addr)
	defer revived.srv.Close()

	// Phase 2: every acknowledged write is still there, at least as fresh
	// as the client saw it. Fresh client so no suspicion state lingers.
	cl2 := cluster.NewClient(2)
	for key, want := range seen {
		tv, err := cl2.ReadKey(ctx, key)
		if err != nil {
			t.Fatalf("read %s after recovery: %v", key, err)
		}
		if tv.TS.Less(want.TS) {
			t.Fatalf("%s went back in time after recovery: had %+v, now %+v", key, want, tv)
		}
		// The timestamp-monotone + value-stable pair IS the zero-safety-
		// violation assertion: recovery may only surface the acknowledged
		// value or something newer, never stale or fabricated state.
		if tv.TS == want.TS && tv.Value != want.Value {
			t.Fatalf("%s changed value under the same timestamp: %q vs %q", key, want.Value, tv.Value)
		}
	}
}

// TestDurableThroughputRatio is the acceptance gauge for the durable
// engine's cost: at batch=32 over TCP loopback, group commit must hold
// the WAL+fsync store at no worse than half the in-memory throughput.
// Both measurements land in a BENCH_*.json snapshot (written to
// BQS_BENCH_DIR when set — CI uploads it — else the test's temp dir).
func TestDurableThroughputRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive throughput gauge")
	}
	sys, err := bqs.NewMaskingThreshold(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := harness.Workload{Clients: 4, Ops: 200, Batch: 32, Keys: 16, Seed: 3, Timeout: 10 * time.Second}

	run := func(t *testing.T, root string) (harness.BenchSnapshot, harness.Counters) {
		t.Helper()
		replicas := make(map[int]*bqs.Server, sys.UniverseSize())
		for i := 0; i < sys.UniverseSize(); i++ {
			var opts []bqs.ServerOption
			if root != "" {
				st, err := bqs.OpenDiskStore(filepath.Join(root, fmt.Sprintf("server-%04d", i)))
				if err != nil {
					t.Fatal(err)
				}
				opts = append(opts, bqs.WithStore(st))
			}
			replicas[i] = bqs.NewServer(i, opts...)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := bqs.NewWireServer(replicas)
		go srv.Serve(lis)
		defer srv.Close()
		routes := make(map[int]string, len(replicas))
		for i := range replicas {
			routes[i] = lis.Addr().String()
		}
		tr, err := bqs.DialWire(routes)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		cluster, err := bqs.NewCluster(sys, 1, bqs.WithSeed(3),
			bqs.WithTransport(func([]*bqs.Server) bqs.Transport { return tr }))
		if err != nil {
			t.Fatal(err)
		}
		counters := harness.Run(cluster, w)
		label := "memory"
		if root != "" {
			label = "durable"
		}
		sum := harness.Summary{
			Peak:         cluster.PeakLoad(),
			Lower:        bqs.LoadLowerBound(sys.UniverseSize(), 1, sys.MinQuorumSize()),
			StrategyLoad: math.NaN(),
		}
		return harness.Snapshot("TestDurableThroughputRatio", sys, 1, label, w, counters, sum), counters
	}

	// Interleaved best-of-3: a single trial per engine is hostage to
	// scheduler noise, and the ratio of best-vs-best is what the 0.5×
	// floor is meant to gauge.
	var memSnap, durSnap harness.BenchSnapshot
	for trial := 0; trial < 3; trial++ {
		m, mc := run(t, "")
		d, dc := run(t, t.TempDir())
		for label, c := range map[string]harness.Counters{"memory": mc, "durable": dc} {
			if c.Violations > 0 {
				t.Fatalf("%s run: %d masking violations", label, c.Violations)
			}
			if c.Failures > 0 {
				t.Fatalf("%s run: %d failed operations", label, c.Failures)
			}
		}
		if trial == 0 || m.OpsPerSec > memSnap.OpsPerSec {
			memSnap = m
		}
		if trial == 0 || d.OpsPerSec > durSnap.OpsPerSec {
			durSnap = d
		}
	}

	dir := os.Getenv("BQS_BENCH_DIR")
	if dir == "" {
		dir = t.TempDir()
	}
	out := filepath.Join(dir, "BENCH_durable_vs_memory.json")
	if err := harness.WriteBenchJSON(out, []harness.BenchSnapshot{memSnap, durSnap}); err != nil {
		t.Fatal(err)
	}
	ratio := durSnap.OpsPerSec / memSnap.OpsPerSec
	t.Logf("durable %.0f ops/s vs memory %.0f ops/s = %.2f× (snapshot: %s)",
		durSnap.OpsPerSec, memSnap.OpsPerSec, ratio, out)
	if ratio < 0.5 {
		t.Fatalf("durable store at %.2f× of in-memory throughput (batch=32 TCP loopback); floor is 0.5×", ratio)
	}
}

// TestBenchJSONRoundTrip pins the snapshot file format the CI trajectory
// consumes: WriteBenchJSON output must decode back into the same
// snapshots.
func TestBenchJSONRoundTrip(t *testing.T) {
	sys, err := bqs.NewMaskingThreshold(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := harness.Workload{Clients: 2, Ops: 10, Batch: 4, Keys: 8, Seed: 1}
	c := harness.Counters{Reads: 9, Writes: 11, Elapsed: 2 * time.Second}
	sum := harness.Summary{Peak: 0.81, Lower: 0.8, StrategyLoad: math.NaN()}
	snap := harness.Snapshot("round-trip", sys, 1, "memory", w, c, sum)
	if snap.OpsPerSec != 10 {
		t.Fatalf("ops/s = %v, want 10 (20 ok ops / 2s)", snap.OpsPerSec)
	}
	path := filepath.Join(t.TempDir(), "BENCH_roundtrip.json")
	if err := harness.WriteBenchJSON(path, []harness.BenchSnapshot{snap}); err != nil {
		t.Fatal(err)
	}
	got, err := harness.ReadBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != snap {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, snap)
	}
	if _, err := harness.ReadBenchJSON(filepath.Join(t.TempDir(), "missing.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want fs.ErrNotExist", err)
	}
}
