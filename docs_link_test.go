package bqs_test

// A markdown link checker for the repo's documentation, run as part of
// the ordinary test suite (and therefore in CI): every relative link in
// every tracked .md file must resolve to a file that exists, so moving or
// renaming a document cannot silently strand README, EXPERIMENTS or the
// architecture notes.

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target) while ignoring images' leading !; the
// target is captured up to the closing parenthesis.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestMarkdownLinksResolve(t *testing.T) {
	var docs []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip build output and hidden trees (.git, .github has no md
			// links to itself worth checking relative anyway — still scan it).
			if name := d.Name(); name == "bin" || name == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			docs = append(docs, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("no markdown files found — checker is looking in the wrong place")
	}
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue // external: not ours to verify offline
			case strings.HasPrefix(target, "#"):
				continue // intra-document anchor
			}
			// Strip an anchor suffix from relative file links.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", doc, m[1], resolved)
			}
		}
	}
}
