package bqs_test

import (
	"context"
	"fmt"
	"math/rand"

	"bqs"
)

// ExampleNewMGrid builds the paper's Figure 1 system and reads off its
// combinatorial parameters.
func ExampleNewMGrid() {
	sys, err := bqs.NewMGrid(7, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("n =", sys.UniverseSize())
	fmt.Println("b =", bqs.MaskingBound(sys))
	fmt.Println("f =", bqs.Resilience(sys))
	fmt.Println("c =", sys.MinQuorumSize())
	// Output:
	// n = 49
	// b = 3
	// f = 5
	// c = 24
}

// ExampleNewRT shows the RT(4,3) critical probability from
// Proposition 5.6.
func ExampleNewRT() {
	rt, err := bqs.NewRT(4, 3, 5)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("n = %d\n", rt.UniverseSize())
	fmt.Printf("p_c = %.4f\n", rt.CriticalProbability())
	// Output:
	// n = 1024
	// p_c = 0.2324
}

// ExampleLoad solves the load LP for the majority system over three
// servers (Proposition 3.9 gives 2/3 for this fair system).
func ExampleLoad() {
	maj, err := bqs.NewExplicit("maj3", 3, []bqs.Set{
		bqs.SetOf(0, 1), bqs.SetOf(0, 2), bqs.SetOf(1, 2),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	load, _, err := bqs.Load(maj)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("L = %.4f\n", load)
	// Output:
	// L = 0.6667
}

// ExampleCompose demonstrates Theorem 4.7's multiplicative parameters.
func ExampleCompose() {
	maj, err := bqs.NewMajority(3)
	if err != nil {
		fmt.Println(err)
		return
	}
	comp := bqs.Compose(maj, maj)
	fmt.Println("n  =", comp.UniverseSize())
	fmt.Println("c  =", comp.MinQuorumSize())
	fmt.Println("MT =", comp.MinTransversal())
	// Output:
	// n  = 9
	// c  = 4
	// MT = 4
}

// ExampleBoost turns a benign majority system into a 2-masking Byzantine
// quorum system via the Section 6 boosting technique.
func ExampleBoost() {
	maj, err := bqs.NewMajority(5)
	if err != nil {
		fmt.Println(err)
		return
	}
	boosted, err := bqs.Boost(maj, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("n =", boosted.UniverseSize())
	fmt.Println("b =", bqs.MaskingBound(boosted))
	// Output:
	// n = 45
	// b = 2
}

// ExampleCluster runs the replicated register under Byzantine faults.
func ExampleCluster() {
	sys, err := bqs.NewMaskingThreshold(9, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	cluster, err := bqs.NewCluster(sys, 2, bqs.WithSeed(1))
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := cluster.InjectFault(bqs.ByzantineFabricate, 0, 4); err != nil {
		fmt.Println(err)
		return
	}
	ctx := context.Background()
	writer := cluster.NewClient(1)
	if err := writer.Write(ctx, "hello"); err != nil {
		fmt.Println(err)
		return
	}
	got, err := cluster.NewClient(2).Read(ctx)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("read:", got.Value)
	// Output:
	// read: hello
}

// ExampleThreshold_CrashProbability evaluates the exact availability of
// the masking threshold at the paper's p = 1/8.
func ExampleThreshold_CrashProbability() {
	th, err := bqs.NewMaskingThreshold(13, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("F_p = %.6f\n", th.CrashProbability(0.125))
	// Output:
	// F_p = 0.068959
}

// ExampleMPath_SelectQuorum picks a disjoint-path quorum under failures.
func ExampleMPath_SelectQuorum() {
	mp, err := bqs.NewMPath(9, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	rng := rand.New(rand.NewSource(3))
	dead := bqs.SetOf(10, 23, 37)
	q, err := mp.SelectQuorum(rng, dead)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("avoids dead:", !q.Intersects(dead))
	fmt.Println("big enough:", q.Count() >= 2*4+1)
	// Output:
	// avoids dead: true
	// big enough: true
}
