package bqs_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"bqs"
)

// TestPublicAPIEndToEnd exercises the facade the way the README shows:
// build each construction, inspect its parameters, select quorums, and
// measure load and availability.
func TestPublicAPIEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))

	mg, err := bqs.NewMGrid(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bqs.MaskingBound(mg) < 3 || bqs.Resilience(mg) != 5 {
		t.Errorf("M-Grid b=%d f=%d", bqs.MaskingBound(mg), bqs.Resilience(mg))
	}
	q, err := mg.SelectQuorum(rng, bqs.NewSet(49))
	if err != nil || q.Count() != mg.MinQuorumSize() {
		t.Errorf("quorum %v err %v", q, err)
	}

	rt, err := bqs.NewRT(4, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bqs.IsBMasking(rt, bqs.MaskingBound(rt)) {
		t.Error("RT masking bound inconsistent")
	}

	bf, err := bqs.NewBoostFPP(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bf.UniverseSize() != 9*7 {
		t.Errorf("boostFPP n = %d", bf.UniverseSize())
	}

	mp, err := bqs.NewMPath(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := bqs.CrashProbabilityMC(mp, 0.1, 300, rng)
	if err != nil || mc.Estimate > 0.2 {
		t.Errorf("M-Path F_0.1 = %g err %v", mc.Estimate, err)
	}
}

func TestPublicAPIMeasures(t *testing.T) {
	maj, err := bqs.NewExplicit("maj3", 3, []bqs.Set{
		bqs.SetOf(0, 1), bqs.SetOf(0, 2), bqs.SetOf(1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	load, strat, err := bqs.Load(maj)
	if err != nil || math.Abs(load-2.0/3) > 1e-9 {
		t.Errorf("load = %g err %v", load, err)
	}
	if strat.Len() != 3 {
		t.Errorf("strategy over %d quorums", strat.Len())
	}
	fair, err := bqs.LoadFair(maj)
	if err != nil || math.Abs(fair-load) > 1e-9 {
		t.Errorf("fair load %g vs LP %g", fair, load)
	}
	fp, err := bqs.CrashProbabilityExact(maj, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	want := 3*0.25*0.25*0.75 + 0.25*0.25*0.25
	if math.Abs(fp-want) > 1e-12 {
		t.Errorf("F_p = %g, want %g", fp, want)
	}
	if bqs.CrashLowerBoundMT(2, 0.25) > fp {
		t.Error("Prop 4.3 bound violated")
	}
	if bqs.GlobalLoadLowerBound(3, 0) > load {
		t.Error("Cor 4.2 bound violated")
	}
	if bqs.LoadLowerBound(3, 0, 2) > load+1e-9 {
		t.Error("Thm 4.1 bound violated")
	}
	_ = bqs.CrashLowerBoundMasking(2, 0, 0.25)
	_ = bqs.CrashLowerBoundB(0, 0.25)
	_ = bqs.Prop45Applies(maj)
}

func TestPublicAPIComposition(t *testing.T) {
	maj, err := bqs.NewMajority(3)
	if err != nil {
		t.Fatal(err)
	}
	comp := bqs.Compose(maj, maj)
	if comp.UniverseSize() != 9 || comp.MinQuorumSize() != 4 {
		t.Errorf("composite n=%d c=%d", comp.UniverseSize(), comp.MinQuorumSize())
	}
	boosted, err := bqs.Boost(maj, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bqs.MaskingBound(boosted) != 1 {
		t.Errorf("boosted b = %d", bqs.MaskingBound(boosted))
	}
	fpp, err := bqs.NewFPP(2)
	if err != nil {
		t.Fatal(err)
	}
	majEx, err := maj.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := bqs.ComposeExplicit(majEx, fpp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ex.UniverseSize() != 21 {
		t.Errorf("explicit composition n = %d", ex.UniverseSize())
	}
}

func TestPublicAPISimulation(t *testing.T) {
	sys, err := bqs.NewMaskingThreshold(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := bqs.NewCluster(sys, 2, bqs.WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.InjectFault(bqs.ByzantineFabricate, 0, 4); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	w := cluster.NewClient(1)
	if err := w.Write(ctx, "public-api"); err != nil {
		t.Fatal(err)
	}
	got, err := cluster.NewClient(2).Read(ctx)
	if err != nil || got.Value != "public-api" {
		t.Fatalf("read %q err %v", got.Value, err)
	}
	if got.Value == bqs.FabricatedValue {
		t.Fatal("fabrication leaked")
	}
}

func TestPublicAPIErrNoLiveQuorum(t *testing.T) {
	maj, _ := bqs.NewMajority(3)
	rng := rand.New(rand.NewSource(2))
	_, err := maj.SelectQuorum(rng, bqs.SetOf(0, 1))
	if !errors.Is(err, bqs.ErrNoLiveQuorum) {
		t.Errorf("err = %v, want ErrNoLiveQuorum", err)
	}
}
