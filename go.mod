module bqs

go 1.24
