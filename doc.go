// Package bqs implements the Byzantine quorum systems of Malkhi, Reiter
// and Wool, "The Load and Availability of Byzantine Quorum Systems"
// (PODC 1997 / SIAM J. Computing).
//
// A b-masking quorum system is a collection of pairwise-intersecting
// subsets (quorums) of a server universe in which every two quorums share
// at least 2b+1 servers, so that a replicated service accessed through
// quorums stays consistent despite b arbitrarily faulty (Byzantine)
// servers, while remaining available through f ≥ b benign crashes. The
// package provides:
//
//   - The four constructions introduced by the paper — M-Grid (§5.1),
//     recursive thresholds RT(k,ℓ) (§5.2), boosted finite projective
//     planes boostFPP (§6) and M-Path (§7) — plus the two earlier
//     baselines it compares against (Threshold and Grid) and the regular
//     systems used as composition inputs (Majority, NW-Grid, FPP).
//   - The two quality measures the paper studies: load (Definition 3.8,
//     computed exactly by LP, by the fair-system shortcut of
//     Proposition 3.9, or empirically) and crash probability
//     (Definition 3.10, computed exactly for small universes, by Monte
//     Carlo for large ones, and in closed form where the paper derives
//     one), together with the lower bounds of Theorem 4.1,
//     Corollary 4.2 and Propositions 4.3–4.5.
//   - Quorum composition S∘R (Definition 4.6) with the Theorem 4.7
//     parameter algebra, and the boosting technique that turns any
//     regular quorum system into a b-masking one.
//   - A simulated keyed object store running the [MR98a] protocol
//     independently per key, for exercising the constructions end to end
//     under injected crash and Byzantine faults: a concurrent,
//     context-aware quorum-access engine (Cluster/Client over a pluggable
//     Transport) that fans probes out to quorum members in parallel,
//     supports any number of concurrent clients, and measures empirical
//     load from live traffic (Cluster.LoadProfile) for comparison against
//     the Theorem 4.1 bounds. Client.ReadKey/WriteKey address individual
//     registers (Read/Write are the DefaultKey register), and the Session
//     API (Client.NewSession) pipelines keyed operations asynchronously —
//     ReadAsync/WriteAsync futures whose quorum probes coalesce into
//     batched transport frames, flushed on size or a short linger.
//   - A real network stack behind the same Transport seam: NewWireServer
//     hosts shards of sim replicas over TCP with a length-prefixed binary
//     protocol (v2: keyed, batched frames, version-negotiated at connect
//     with v1 interop) and graceful shutdown, and DialWire returns a
//     pipelined, connection-pooled, auto-reconnecting client transport
//     that maps unreachable servers to Response{OK: false} — a batched
//     frame to a dead shard fails fast as a unit — so quorum re-selection
//     masks network failures exactly like crashes. cmd/bqs-server and
//     cmd/bqs-client run a deployment from the command line.
//   - A dynamic fault/churn engine that flips server behaviors WHILE a
//     workload runs: FaultSchedule (deterministic timelines, or the
//     seeded stochastic ChurnConfig model) replayed by a FaultController
//     against any Flipper — a Cluster in-memory, or a WireClient sending
//     control frames to remote shards. Clients rehabilitate suspicion
//     per-server (aging plus probe-on-forgive), so recovered servers
//     regain traffic, and the harness availability mode
//     (bqs-sim -availability) measures the empirical system-crash rate
//     against the exact F_p(Q) of Definition 3.10 and the
//     Propositions 4.3-4.5 lower bounds.
//   - Live reconfiguration: a running Cluster changes its quorum system
//     without stopping via epoch-numbered records (ReconfigRecord,
//     built by ParseReconfigTarget) applied with a two-phase
//     propose/drain/cut-over protocol (Cluster.Reconfigure). In-flight
//     operations complete entirely inside one epoch, so no quorum ever
//     mixes universes; over TCP, servers gate data frames on the epoch
//     and bounce stale clients with a retriable wrong-epoch signal
//     carrying the new record (DialWire with WithWireEpochs). Both
//     harness binaries schedule resizes mid-run with -reconfig.
//
// # Quick start
//
//	sys, err := bqs.NewMGrid(7, 3) // Figure 1: n = 49, b = 3
//	if err != nil { ... }
//	fmt.Println(sys.MaskingBound(), bqs.Resilience(sys), sys.Load())
//
//	rng := rand.New(rand.NewSource(1))
//	quorum, err := sys.SelectQuorum(rng, bqs.NewSet(49)) // no failures
//
//	cluster, err := bqs.NewCluster(sys, 3, bqs.WithSeed(1))
//	if err != nil { ... }
//	client := cluster.NewClient(1)
//	err = client.Write(ctx, "hello")
//	tv, err := client.Read(ctx)
//
// See README.md for a fuller tour and docs/ARCHITECTURE.md for the layer
// map (core → systems/measures → sim → wire → harness → cmd, with the
// Transport and Picker seams). The experiment harness that regenerates
// every table and figure of the paper lives in cmd/bqs-tables and
// cmd/bqs-figures; see EXPERIMENTS.md for how to run it and compare
// measured numbers against the paper's.
package bqs
