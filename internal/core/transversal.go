package core

import "bqs/internal/bitset"

// minTransversal computes MT(Q) exactly: the minimum hitting set of the
// quorum collection. Branch and bound: repeatedly pick an unhit quorum and
// branch on which of its members joins the transversal. The smallest unhit
// quorum is chosen at each step to keep the branching factor low; a greedy
// upper bound prunes the search from the start.
func minTransversal(quorums []bitset.Set, n int) int {
	best := greedyTransversalSize(quorums, n)
	var hit bitset.Set
	best = branchTransversal(quorums, hit, 0, best)
	return best
}

// branchTransversal returns the best transversal size found, given the
// current partial transversal `hit` of size `size` and incumbent `best`.
func branchTransversal(quorums []bitset.Set, hit bitset.Set, size, best int) int {
	if size >= best {
		return best
	}
	// Find the smallest quorum not yet hit.
	target := -1
	targetCount := -1
	for i, q := range quorums {
		if q.Intersects(hit) {
			continue
		}
		c := q.Count()
		if target < 0 || c < targetCount {
			target, targetCount = i, c
			if c == 1 {
				break
			}
		}
	}
	if target < 0 {
		return size // every quorum is hit
	}
	quorums[target].Range(func(e int) bool {
		h := hit.Clone()
		h.Add(e)
		if got := branchTransversal(quorums, h, size+1, best); got < best {
			best = got
		}
		return true
	})
	return best
}

// greedyTransversalSize returns the size of a greedy hitting set (max
// coverage first), an upper bound that seeds the branch and bound.
func greedyTransversalSize(quorums []bitset.Set, n int) int {
	unhit := make([]bitset.Set, len(quorums))
	copy(unhit, quorums)
	size := 0
	for len(unhit) > 0 {
		// Pick the element covering the most unhit quorums.
		counts := make([]int, n)
		for _, q := range unhit {
			q.Range(func(e int) bool {
				counts[e]++
				return true
			})
		}
		bestE, bestC := 0, -1
		for e, c := range counts {
			if c > bestC {
				bestE, bestC = e, c
			}
		}
		size++
		next := unhit[:0]
		for _, q := range unhit {
			if !q.Contains(bestE) {
				next = append(next, q)
			}
		}
		unhit = next
	}
	return size
}
