package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"bqs/internal/bitset"
)

func sets(elems ...[]int) []bitset.Set {
	out := make([]bitset.Set, len(elems))
	for i, e := range elems {
		out[i] = bitset.FromSlice(e)
	}
	return out
}

func majority3(t *testing.T) *ExplicitSystem {
	t.Helper()
	s, err := NewExplicit("maj3", 3, sets([]int{0, 1}, []int{0, 2}, []int{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewExplicitValidation(t *testing.T) {
	if _, err := NewExplicit("bad", 0, sets([]int{0})); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewExplicit("bad", 3, nil); err == nil {
		t.Error("no quorums should fail")
	}
	if _, err := NewExplicit("bad", 3, sets([]int{})); err == nil {
		t.Error("empty quorum should fail")
	}
	if _, err := NewExplicit("bad", 3, sets([]int{0, 5})); err == nil {
		t.Error("quorum outside universe should fail")
	}
	_, err := NewExplicit("bad", 4, sets([]int{0, 1}, []int{2, 3}))
	if !errors.Is(err, ErrNotIntersecting) {
		t.Errorf("disjoint quorums err = %v, want ErrNotIntersecting", err)
	}
}

func TestExplicitParamsMajority(t *testing.T) {
	s := majority3(t)
	if got := s.MinQuorumSize(); got != 2 {
		t.Errorf("c = %d, want 2", got)
	}
	if got := s.MinIntersection(); got != 1 {
		t.Errorf("IS = %d, want 1", got)
	}
	if got := s.MinTransversal(); got != 2 {
		t.Errorf("MT = %d, want 2", got)
	}
	if got := Resilience(s); got != 1 {
		t.Errorf("f = %d, want 1", got)
	}
	if got := s.MaskingBound(); got != 0 {
		t.Errorf("b = %d, want 0 (regular system masks nothing)", got)
	}
}

func TestExplicitParamsMaskingThreshold(t *testing.T) {
	// 4-of-5 threshold: IS = 3, MT = 2 → b = min(1, 1) = 1.
	n, k := 5, 4
	var quorums []bitset.Set
	for a := 0; a < n; a++ {
		q := bitset.FromRange(0, n)
		q.Remove(a)
		_ = k
		quorums = append(quorums, q)
	}
	s, err := NewExplicit("4of5", n, quorums)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.MinIntersection(); got != 3 {
		t.Errorf("IS = %d, want 3", got)
	}
	if got := s.MinTransversal(); got != 2 {
		t.Errorf("MT = %d, want 2", got)
	}
	if got := s.MaskingBound(); got != 1 {
		t.Errorf("b = %d, want 1", got)
	}
	if !IsBMasking(s, 1) {
		t.Error("4-of-5 should be 1-masking")
	}
	if IsBMasking(s, 2) {
		t.Error("4-of-5 should not be 2-masking")
	}
}

func TestSingleQuorumSystem(t *testing.T) {
	s, err := NewExplicit("solo", 3, sets([]int{0, 1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if s.MinIntersection() != 3 {
		t.Errorf("IS of singleton list = %d, want 3", s.MinIntersection())
	}
	if s.MinTransversal() != 1 {
		t.Errorf("MT = %d, want 1", s.MinTransversal())
	}
}

func TestIsFair(t *testing.T) {
	s := majority3(t)
	size, deg, fair := s.IsFair()
	if !fair || size != 2 || deg != 2 {
		t.Errorf("majority-3 fairness = (%d,%d,%v), want (2,2,true)", size, deg, fair)
	}
	unfair, err := NewExplicit("wheel", 4, sets([]int{0, 1}, []int{0, 2}, []int{0, 3}, []int{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, fair := unfair.IsFair(); fair {
		t.Error("wheel should not be fair")
	}
}

func TestDegree(t *testing.T) {
	s := majority3(t)
	for i := 0; i < 3; i++ {
		if got := s.Degree(i); got != 2 {
			t.Errorf("deg(%d) = %d, want 2", i, got)
		}
	}
}

func TestSelectQuorumAvoidsDead(t *testing.T) {
	s := majority3(t)
	rng := rand.New(rand.NewSource(1))
	dead := bitset.FromSlice([]int{0})
	for i := 0; i < 50; i++ {
		q, err := s.SelectQuorum(rng, dead)
		if err != nil {
			t.Fatal(err)
		}
		if q.Intersects(dead) {
			t.Fatalf("selected quorum %v intersects dead set", q)
		}
	}
	// Killing two elements leaves no live quorum in majority-3.
	dead2 := bitset.FromSlice([]int{0, 1})
	if _, err := s.SelectQuorum(rng, dead2); !errors.Is(err, ErrNoLiveQuorum) {
		t.Errorf("err = %v, want ErrNoLiveQuorum", err)
	}
}

func TestSelectQuorumUniformAmongSurvivors(t *testing.T) {
	s := majority3(t)
	rng := rand.New(rand.NewSource(7))
	dead := bitset.FromSlice([]int{2})
	// Only {0,1} survives.
	for i := 0; i < 20; i++ {
		q, err := s.SelectQuorum(rng, dead)
		if err != nil {
			t.Fatal(err)
		}
		if !q.Equal(bitset.FromSlice([]int{0, 1})) {
			t.Fatalf("got %v, want {0, 1}", q)
		}
	}
}

func TestIsTransversal(t *testing.T) {
	s := majority3(t)
	if !s.IsTransversal(bitset.FromSlice([]int{0, 1})) {
		t.Error("{0,1} should be a transversal of majority-3")
	}
	if s.IsTransversal(bitset.FromSlice([]int{0})) {
		t.Error("{0} should not be a transversal")
	}
}

func TestMinTransversalBranchAndBound(t *testing.T) {
	// Wheel: quorums {0,1},{0,2},{0,3},{1,2,3}. MT = 2 ({0, any rim}).
	s, err := NewExplicit("wheel", 4, sets([]int{0, 1}, []int{0, 2}, []int{0, 3}, []int{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.MinTransversal(); got != 2 {
		t.Errorf("wheel MT = %d, want 2", got)
	}
	// Grid 3×3 regular (row ∪ column): MT = 3 (a full row blocks... check:
	// a transversal must hit every row∪column quorum; killing a full row
	// hits all 9 quorums since every quorum contains a full row? No —
	// quorum (r,c) = row r ∪ col c; a full dead row r0 intersects every
	// quorum because col c crosses row r0. So MT ≤ 3. MT ≥ 3 because any 2
	// elements miss some quorum. )
	var quorums []bitset.Set
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			q := bitset.New(9)
			for j := 0; j < 3; j++ {
				q.Add(r*3 + j)
				q.Add(j*3 + c)
			}
			quorums = append(quorums, q)
		}
	}
	g, err := NewExplicit("grid3", 9, quorums)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.MinTransversal(); got != 3 {
		t.Errorf("3×3 grid MT = %d, want 3", got)
	}
}

func TestStrategyValidation(t *testing.T) {
	if _, err := NewStrategy([]float64{0.5, 0.6}); !errors.Is(err, ErrBadStrategy) {
		t.Errorf("sum>1 err = %v", err)
	}
	if _, err := NewStrategy([]float64{-0.5, 1.5}); !errors.Is(err, ErrBadStrategy) {
		t.Errorf("negative err = %v", err)
	}
	if _, err := NewStrategy([]float64{0.25, 0.75}); err != nil {
		t.Errorf("valid strategy rejected: %v", err)
	}
}

func TestUniformStrategyLoadsMajority(t *testing.T) {
	s := majority3(t)
	st := UniformStrategy(3)
	loads := st.InducedLoads(s)
	for u, l := range loads {
		if math.Abs(l-2.0/3) > 1e-12 {
			t.Errorf("l_w(%d) = %g, want 2/3", u, l)
		}
	}
	if got := st.InducedSystemLoad(s); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("L_w = %g, want 2/3", got)
	}
}

func TestStrategySampleDistribution(t *testing.T) {
	st, err := NewStrategy([]float64{0.7, 0.2, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 3)
	trials := 100000
	for i := 0; i < trials; i++ {
		counts[st.Sample(rng)]++
	}
	want := []float64{0.7, 0.2, 0.1}
	for i, c := range counts {
		got := float64(c) / float64(trials)
		if math.Abs(got-want[i]) > 0.01 {
			t.Errorf("quorum %d sampled with frequency %g, want %g", i, got, want[i])
		}
	}
}

func TestMaskingBoundFromParamsCorollary37(t *testing.T) {
	cases := []struct {
		mt, is int
		want   int
	}{
		{4, 9, 3},  // b = min(3, 4) = 3
		{2, 9, 1},  // transversal-limited
		{10, 3, 1}, // intersection-limited
		{1, 1, 0},
	}
	for _, c := range cases {
		p := fakeParams{mt: c.mt, is: c.is}
		if got := MaskingBoundFromParams(p); got != c.want {
			t.Errorf("MT=%d IS=%d: b = %d, want %d", c.mt, c.is, got, c.want)
		}
	}
}

type fakeParams struct{ c, is, mt int }

func (f fakeParams) MinQuorumSize() int   { return f.c }
func (f fakeParams) MinIntersection() int { return f.is }
func (f fakeParams) MinTransversal() int  { return f.mt }
