package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"bqs/internal/bitset"
)

// TestSampleSkipsLeadingZeroWeight is the regression test for the sampling
// boundary bug: rng.Float64() can return exactly 0, and the old search
// over the cumulative weights then returned index 0 even when
// weights[0] == 0. A zero-weight quorum must never be sampled.
func TestSampleSkipsLeadingZeroWeight(t *testing.T) {
	st, err := NewStrategy([]float64{0, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.sampleAt(0); got == 0 {
		t.Fatalf("sampleAt(0) = 0, a zero-weight quorum")
	}
	// The selection intervals must be exactly the weights: [0, 0.5) → 1,
	// [0.5, 1) → 2.
	cases := []struct {
		u    float64
		want int
	}{
		{0, 1}, {0.25, 1}, {0.5 - 1e-12, 1}, {0.5, 2}, {0.75, 2}, {1 - 1e-12, 2},
	}
	for _, tc := range cases {
		if got := st.sampleAt(tc.u); got != tc.want {
			t.Errorf("sampleAt(%v) = %d, want %d", tc.u, got, tc.want)
		}
	}
}

// TestSampleTrailingZeroWeightRounding covers the other float edge: when
// rounding leaves the final cumulative weight marginally below 1, a u in
// the gap must not land on a trailing zero-weight quorum.
func TestSampleTrailingZeroWeightRounding(t *testing.T) {
	st := &Strategy{
		weights: []float64{0.6, 0.4 - 1e-10, 0},
		cum:     []float64{0.6, 1 - 1e-10, 1 - 1e-10},
	}
	if got := st.sampleAt(1 - 5e-11); got != 1 {
		t.Fatalf("sampleAt in the rounding gap = %d, want 1 (the last positive weight)", got)
	}
}

// TestSampleNeverReturnsZeroWeight hammers a strategy with interleaved
// zero weights and checks both exclusion and the sampled frequencies.
func TestSampleNeverReturnsZeroWeight(t *testing.T) {
	weights := []float64{0, 0.25, 0, 0.75, 0}
	st, err := NewStrategy(weights)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	const trials = 20000
	counts := make([]int, len(weights))
	for i := 0; i < trials; i++ {
		counts[st.Sample(rng)]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / trials
		if w == 0 && counts[i] > 0 {
			t.Errorf("zero-weight quorum %d sampled %d times", i, counts[i])
		}
		if w > 0 && math.Abs(got-w) > 0.02 {
			t.Errorf("quorum %d sampled at frequency %.4f, want ≈ %.2f", i, got, w)
		}
	}
}

func pickerSystem(t *testing.T) *ExplicitSystem {
	t.Helper()
	s, err := NewExplicit("maj3", 3, sets([]int{0, 1}, []int{0, 2}, []int{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestUniformPickerDelegates(t *testing.T) {
	sys := pickerSystem(t)
	p := NewUniformPicker(sys)
	rng := rand.New(rand.NewSource(1))
	dead := bitset.FromSlice([]int{0})
	for i := 0; i < 50; i++ {
		q, err := p.PickQuorum(rng, dead)
		if err != nil {
			t.Fatal(err)
		}
		if q.Contains(0) {
			t.Fatalf("picked quorum %v contains the dead server", q)
		}
	}
}

// TestStrategyPickerHotPath checks the failure-free path follows the
// strategy exactly: frequencies match weights and the zero-weight quorum
// is never selected.
func TestStrategyPickerHotPath(t *testing.T) {
	sys := pickerSystem(t)
	st, err := NewStrategy([]float64{0.7, 0.3, 0})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewStrategyPicker(sys, st)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.InducedLoad(); math.Abs(got-1.0) > 1e-9 {
		// Element 0 is in both positive-weight quorums: l_w(0) = 1.
		t.Fatalf("InducedLoad = %v, want 1", got)
	}
	rng := rand.New(rand.NewSource(7))
	counts := make(map[string]int)
	const trials = 10000
	for i := 0; i < trials; i++ {
		q, err := p.PickQuorum(rng, bitset.Set{})
		if err != nil {
			t.Fatal(err)
		}
		counts[q.String()]++
	}
	if counts["{1, 2}"] > 0 {
		t.Fatalf("zero-weight quorum {1, 2} sampled %d times", counts["{1, 2}"])
	}
	if f := float64(counts["{0, 1}"]) / trials; math.Abs(f-0.7) > 0.02 {
		t.Fatalf("quorum {0, 1} at frequency %.3f, want ≈ 0.7", f)
	}
}

// TestStrategyPickerRenormalizesOnDead checks conditioning on the live
// set: weights renormalize over the quorums disjoint from dead.
func TestStrategyPickerRenormalizesOnDead(t *testing.T) {
	sys := pickerSystem(t)
	st, err := NewStrategy([]float64{0.5, 0.5, 0})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewStrategyPicker(sys, st)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))

	// dead = {1}: only {0, 2} survives; all 0.5 of its weight becomes 1.
	dead := bitset.FromSlice([]int{1})
	for i := 0; i < 100; i++ {
		q, err := p.PickQuorum(rng, dead)
		if err != nil {
			t.Fatal(err)
		}
		if q.String() != "{0, 2}" {
			t.Fatalf("pick with dead {1} = %v, want {0, 2}", q)
		}
	}

	// dead = {0}: only the zero-weight {1, 2} survives — the uniform
	// fallback must return it rather than sampling a dead quorum.
	dead = bitset.FromSlice([]int{0})
	for i := 0; i < 100; i++ {
		q, err := p.PickQuorum(rng, dead)
		if err != nil {
			t.Fatal(err)
		}
		if q.String() != "{1, 2}" {
			t.Fatalf("pick with dead {0} = %v, want the fallback {1, 2}", q)
		}
	}

	// dead = {0, 2}: every quorum intersects — crash(Q).
	if _, err := p.PickQuorum(rng, bitset.FromSlice([]int{0, 2})); !errors.Is(err, ErrNoLiveQuorum) {
		t.Fatalf("err = %v, want ErrNoLiveQuorum", err)
	}
}

func TestNewStrategyPickerLengthMismatch(t *testing.T) {
	sys := pickerSystem(t)
	st, err := NewStrategy([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStrategyPicker(sys, st); err == nil {
		t.Fatal("mismatched strategy length must be rejected")
	}
}

func TestAsEnumerable(t *testing.T) {
	sys := pickerSystem(t)
	en, err := AsEnumerable(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(en.Quorums()) != 3 {
		t.Fatalf("enumerable view has %d quorums, want 3", len(en.Quorums()))
	}
	if _, err := AsEnumerable(notEnumerable{sys}, 0); !errors.Is(err, ErrNotEnumerable) {
		t.Fatalf("err = %v, want ErrNotEnumerable", err)
	}
}

// notEnumerable hides the quorum list, modelling an implicit system
// without an Enumerate method.
type notEnumerable struct{ *ExplicitSystem }

func (notEnumerable) Quorums() {} // shadow with a non-matching signature
