package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"bqs/internal/bitset"
)

// ErrBadStrategy is returned when strategy weights are negative or do not
// sum to one.
var ErrBadStrategy = errors.New("core: strategy weights must be non-negative and sum to 1")

// Strategy is an access strategy w for an explicit quorum system
// (Definition 3.8): a probability distribution over its quorum list,
// aligned by index.
type Strategy struct {
	weights []float64
	cum     []float64 // cumulative weights for sampling
}

// NewStrategy validates and wraps a weight vector.
func NewStrategy(weights []float64) (*Strategy, error) {
	sum := 0.0
	for i, w := range weights {
		if w < -1e-12 || math.IsNaN(w) {
			return nil, fmt.Errorf("core: weight %d = %g: %w", i, w, ErrBadStrategy)
		}
		sum += math.Max(w, 0)
	}
	if math.Abs(sum-1) > 1e-6 {
		return nil, fmt.Errorf("core: weights sum to %g: %w", sum, ErrBadStrategy)
	}
	ws := make([]float64, len(weights))
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		ws[i] = math.Max(w, 0) / sum
		acc += ws[i]
		cum[i] = acc
	}
	return &Strategy{weights: ws, cum: cum}, nil
}

// UniformStrategy returns the strategy giving each of m quorums weight 1/m.
func UniformStrategy(m int) *Strategy {
	w := make([]float64, m)
	for i := range w {
		w[i] = 1.0 / float64(m)
	}
	s, _ := NewStrategy(w) // uniform weights always validate
	return s
}

// Weight returns w(Q_i).
func (st *Strategy) Weight(i int) float64 { return st.weights[i] }

// Len returns the number of quorums the strategy ranges over.
func (st *Strategy) Len() int { return len(st.weights) }

// Sample draws a quorum index from the strategy. A zero-weight quorum is
// never returned: index i is selected exactly when u ∈ [cum[i−1], cum[i]),
// an interval of length weights[i], which is empty for zero weights — in
// particular rng.Float64() returning exactly 0 cannot land on a leading
// zero-weight quorum.
func (st *Strategy) Sample(rng *rand.Rand) int {
	return st.sampleAt(rng.Float64())
}

// sampleAt maps u ∈ [0,1) to the smallest index whose cumulative weight
// strictly exceeds u.
func (st *Strategy) sampleAt(u float64) int {
	lo, hi := 0, len(st.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if st.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// Rounding can leave the final cumulative weight marginally below 1;
	// a u in that gap lands on the last index, which may carry zero
	// weight. Step back to the nearest quorum with real weight.
	for lo > 0 && st.weights[lo] == 0 {
		lo--
	}
	return lo
}

// InducedLoads returns l_w(u) for every element u: the total weight of the
// quorums containing u (Definition 3.8).
func (st *Strategy) InducedLoads(sys Enumerable) []float64 {
	loads := make([]float64, sys.UniverseSize())
	for i, q := range sys.Quorums() {
		w := st.weights[i]
		if w == 0 {
			continue
		}
		q.Range(func(u int) bool {
			loads[u] += w
			return true
		})
	}
	return loads
}

// InducedSystemLoad returns L_w(Q) = max_u l_w(u).
func (st *Strategy) InducedSystemLoad(sys Enumerable) float64 {
	max := 0.0
	for _, l := range st.InducedLoads(sys) {
		if l > max {
			max = l
		}
	}
	return max
}

// SampleSet draws a quorum from sys according to the strategy.
func (st *Strategy) SampleSet(sys Enumerable, rng *rand.Rand) bitset.Set {
	return sys.Quorums()[st.Sample(rng)].Clone()
}
