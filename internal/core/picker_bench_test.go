package core

import (
	"math/rand"
	"testing"

	"bqs/internal/bitset"
)

// benchSystem builds an explicit system of m size-3 quorums over 3m
// servers (trivially 1-intersecting per column construction is not
// needed here — picker benchmarks only exercise selection, not masking).
func benchSystem(tb testing.TB, m int) *ExplicitSystem {
	tb.Helper()
	n := 3 * m
	quorums := make([]bitset.Set, m)
	for i := range quorums {
		q := bitset.New(n)
		q.Add(3 * i)
		q.Add(3*i + 1)
		q.Add(3*i + 2)
		// Share server 0 so every pair intersects and verification passes.
		q.Add(0)
		quorums[i] = q
	}
	sys, err := NewExplicit("bench", n, quorums)
	if err != nil {
		tb.Fatal(err)
	}
	return sys
}

func benchPicker(tb testing.TB, m int) *StrategyPicker {
	tb.Helper()
	sys := benchSystem(tb, m)
	p, err := NewStrategyPicker(sys, UniformStrategy(m))
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// BenchmarkStrategyPick pins the picker hot path's allocation behavior:
// the failure-free draw is a cumulative-weight lookup with zero
// allocations, and the conditioned (suspicion) draw reuses a pooled
// survivor buffer instead of reallocating per operation. Run with
// -benchmem; TestStrategyPickAllocs asserts the numbers.
func BenchmarkStrategyPick(b *testing.B) {
	p := benchPicker(b, 256)
	rng := rand.New(rand.NewSource(1))
	b.Run("fault-free", func(b *testing.B) {
		b.ReportAllocs()
		empty := bitset.Set{}
		for i := 0; i < b.N; i++ {
			if _, err := p.PickQuorum(rng, empty); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("suspecting", func(b *testing.B) {
		b.ReportAllocs()
		dead := bitset.New(3 * 256)
		dead.Add(4) // kills quorum 1 only; server 0 must stay alive
		for i := 0; i < b.N; i++ {
			if _, err := p.PickQuorum(rng, dead); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestStrategyPickAllocs is the allocation regression gate for the
// numbers BenchmarkStrategyPick reports: 0 allocs/op on the fault-free
// path, and 0 amortized allocs/op on the conditioned path once the
// scratch pool is warm.
func TestStrategyPickAllocs(t *testing.T) {
	p := benchPicker(t, 128)
	rng := rand.New(rand.NewSource(7))

	empty := bitset.Set{}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := p.PickQuorum(rng, empty); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("fault-free PickQuorum allocates %.1f/op, want 0", avg)
	}

	dead := bitset.New(3 * 128)
	dead.Add(4)
	// Warm the pool before measuring so the one-time buffer doesn't count.
	if _, err := p.PickQuorum(rng, dead); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := p.PickQuorum(rng, dead); err != nil {
			t.Fatal(err)
		}
	}); avg > 0.1 {
		t.Errorf("conditioned PickQuorum allocates %.2f/op, want ~0 (pooled scratch)", avg)
	}
}
