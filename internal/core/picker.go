package core

import (
	"fmt"
	"math/rand"
	"sync"

	"bqs/internal/bitset"
)

// Picker is the quorum-selection seam the live engine drives: one call per
// protocol phase, conditioned on the servers the caller currently suspects
// dead. Implementations must be safe for concurrent use (the rng carries
// all per-caller state).
type Picker interface {
	// PickQuorum returns a quorum disjoint from dead, or ErrNoLiveQuorum.
	// The returned set may be shared with other callers; it must not be
	// mutated.
	PickQuorum(rng *rand.Rand, dead bitset.Set) (bitset.Set, error)
}

// NewUniformPicker wraps a System's own SelectQuorum — the uniform
// survivor selection every construction implements.
func NewUniformPicker(sys System) Picker { return uniformPicker{sys} }

type uniformPicker struct{ sys System }

func (p uniformPicker) PickQuorum(rng *rand.Rand, dead bitset.Set) (bitset.Set, error) {
	return p.sys.SelectQuorum(rng, dead)
}

// StrategyPicker samples quorums from an access strategy (Definition 3.8)
// instead of uniformly, so live traffic realizes the strategy's load — the
// LP optimum L(Q), when the strategy comes from measures.Load. The quorum
// list is captured once at construction, so the failure-free hot path is a
// single cumulative-weight lookup with no allocation or scanning.
//
// Under failures the strategy is conditioned on the live set: weights
// renormalize over the quorums disjoint from dead, falling back to uniform
// selection among survivors when all surviving weight is zero, and to
// ErrNoLiveQuorum when nothing survives at all.
type StrategyPicker struct {
	quorums []bitset.Set // aligned with st's weights; never mutated
	st      *Strategy
	load    float64 // L_w(Q) induced by st
	// scratch recycles the survivor index buffer the conditioned draw
	// needs: PickQuorum sits on every protocol phase of every concurrent
	// client, so the under-failure path must not allocate per operation.
	scratch sync.Pool
}

// NewStrategyPicker builds a picker sampling sys's quorum list according
// to st. The strategy must range over exactly the system's quorums.
func NewStrategyPicker(sys Enumerable, st *Strategy) (*StrategyPicker, error) {
	quorums := sys.Quorums()
	if st.Len() != len(quorums) {
		return nil, fmt.Errorf("core: strategy over %d quorums does not match %s with %d",
			st.Len(), sys.Name(), len(quorums))
	}
	p := &StrategyPicker{quorums: quorums, st: st, load: st.InducedSystemLoad(sys)}
	p.scratch.New = func() any {
		buf := make([]int, 0, len(quorums))
		return &buf
	}
	return p, nil
}

// Strategy returns the access strategy the picker samples from.
func (p *StrategyPicker) Strategy() *Strategy { return p.st }

// InducedLoad returns L_w(Q) = max_u l_w(u) of the installed strategy —
// the load live traffic converges to under failure-free conditions.
func (p *StrategyPicker) InducedLoad() float64 { return p.load }

// PickQuorum implements Picker.
func (p *StrategyPicker) PickQuorum(rng *rand.Rand, dead bitset.Set) (bitset.Set, error) {
	if dead.Empty() {
		return p.quorums[p.st.Sample(rng)], nil
	}
	// Condition on the live set: one filtering pass collects the surviving
	// quorums and their total weight, so the draw below walks the (often
	// small) survivor list instead of re-filtering the full enumeration.
	// The index buffer is pooled — per-operation allocation here would
	// dominate the under-suspicion hot path (see BenchmarkStrategyPick).
	bufp := p.scratch.Get().(*[]int)
	defer p.scratch.Put(bufp)
	survivors := (*bufp)[:0]
	total := 0.0
	for i, q := range p.quorums {
		if q.Intersects(dead) {
			continue
		}
		survivors = append(survivors, i)
		total += p.st.Weight(i)
	}
	if len(survivors) == 0 {
		return bitset.Set{}, ErrNoLiveQuorum
	}
	if total > 0 {
		// Renormalized draw: u ∈ [0, total) walks the surviving
		// positive-weight quorums, so a zero-weight quorum is never hit.
		u := rng.Float64() * total
		acc := 0.0
		last := -1
		for _, i := range survivors {
			w := p.st.Weight(i)
			if w == 0 {
				continue
			}
			acc += w
			last = i
			if u < acc {
				return p.quorums[i], nil
			}
		}
		// Rounding can leave u a hair above the final accumulated weight.
		return p.quorums[last], nil
	}
	// Every surviving quorum has zero weight: the strategy says nothing
	// about the live set, so pick uniformly among survivors.
	return p.quorums[survivors[rng.Intn(len(survivors))]], nil
}
