// Package core defines the quorum-system model of the paper: quorum
// systems over a universe of servers (Definition 3.1), access strategies
// (Definition 3.8), transversals and resilience (Definitions 3.3–3.4), and
// b-masking quorum systems (Definition 3.5, via the sufficient conditions
// of Lemma 3.6 and Corollary 3.7).
//
// Two kinds of systems coexist. Explicit systems materialize their quorum
// list and support exact analysis (IS, MT, LP-optimal load, exact crash
// probability). Implicit systems — M-Grid, M-Path, large compositions —
// have combinatorially many quorums and instead implement quorum selection
// under a failure pattern plus closed-form parameters, exactly the way the
// paper analyzes them.
package core

import (
	"errors"
	"fmt"
	"math/rand"

	"bqs/internal/bitset"
)

// ErrNoLiveQuorum is returned by SelectQuorum when every quorum intersects
// the dead set — the crash(Q) event of Definition 3.10.
var ErrNoLiveQuorum = errors.New("core: no quorum survives the failure pattern")

// System is the minimal behavior every quorum system implements.
type System interface {
	// Name identifies the construction (for tables and error messages).
	Name() string
	// UniverseSize returns n = |U|.
	UniverseSize() int
	// SelectQuorum returns a quorum disjoint from dead, or ErrNoLiveQuorum.
	// Randomization (when the system has a choice) is driven by rng.
	SelectQuorum(rng *rand.Rand, dead bitset.Set) (bitset.Set, error)
}

// Sampler is implemented by systems that carry an access strategy
// (Definition 3.8) — a distribution over quorums used to balance load.
// Constructions implement their load-optimal strategy from the paper.
type Sampler interface {
	System
	// SampleQuorum draws a quorum from the system's access strategy,
	// assuming no failures (the load is a failure-free, best-case measure).
	SampleQuorum(rng *rand.Rand) bitset.Set
}

// Enumerable is implemented by systems whose quorum set is materialized.
type Enumerable interface {
	System
	// Quorums returns the quorum list. Callers must not mutate the sets.
	Quorums() []bitset.Set
}

// Enumerator is implemented by implicit systems that can materialize their
// quorum list on demand for exact analysis (Threshold, Grid, M-Grid, RT).
type Enumerator interface {
	System
	// Enumerate returns the explicit view, failing when the quorum count
	// exceeds limit (each implementation applies a default cap when
	// limit ≤ 0).
	Enumerate(limit int) (*ExplicitSystem, error)
}

// ErrNotEnumerable is returned by AsEnumerable for systems that can
// neither list their quorums nor materialize them.
var ErrNotEnumerable = errors.New("core: system cannot materialize its quorum list")

// AsEnumerable returns a materialized view of sys: the system itself when
// it already lists its quorums, its Enumerate(limit) when it implements
// Enumerator, and ErrNotEnumerable otherwise.
func AsEnumerable(sys System, limit int) (Enumerable, error) {
	switch s := sys.(type) {
	case Enumerable:
		return s, nil
	case Enumerator:
		return s.Enumerate(limit)
	}
	return nil, fmt.Errorf("core: %s: %w", sys.Name(), ErrNotEnumerable)
}

// Parameterized exposes the combinatorial parameters the paper tabulates.
// Implicit systems return closed-form values; ExplicitSystem computes them.
type Parameterized interface {
	// MinQuorumSize returns c(Q), the size of the smallest quorum.
	MinQuorumSize() int
	// MinIntersection returns IS(Q), the smallest |Q1 ∩ Q2|.
	MinIntersection() int
	// MinTransversal returns MT(Q); resilience is f = MT(Q) − 1.
	MinTransversal() int
}

// Masking is implemented by b-masking quorum systems.
type Masking interface {
	System
	// MaskingBound returns the largest b for which the system is b-masking.
	MaskingBound() int
}

// Resilience returns f = MT(Q) − 1 (remark after Definition 3.4).
func Resilience(p Parameterized) int { return p.MinTransversal() - 1 }

// MaskingBoundFromParams applies Corollary 3.7:
// b = min{MT(Q) − 1, (IS(Q) − 1)/2}.
func MaskingBoundFromParams(p Parameterized) int {
	byTransversal := p.MinTransversal() - 1
	byIntersection := (p.MinIntersection() - 1) / 2
	if byTransversal < byIntersection {
		return byTransversal
	}
	return byIntersection
}

// IsBMasking checks Lemma 3.6's sufficient conditions for the given b:
// MT(Q) ≥ b+1 and IS(Q) ≥ 2b+1.
func IsBMasking(p Parameterized, b int) bool {
	return p.MinTransversal() >= b+1 && p.MinIntersection() >= 2*b+1
}
