package core

import (
	"errors"
	"fmt"
	"math/rand"

	"bqs/internal/bitset"
)

// ErrNotIntersecting is returned by NewExplicit when two quorums are
// disjoint, violating Definition 3.1.
var ErrNotIntersecting = errors.New("core: quorums do not pairwise intersect")

// ExplicitSystem is a quorum system given by its full quorum list. All
// combinatorial parameters are computed exactly (the minimal transversal by
// branch and bound, since minimum hitting set is NP-hard in general but
// tiny at the sizes explicit systems are used for).
type ExplicitSystem struct {
	name    string
	n       int
	quorums []bitset.Set

	// Lazily computed caches (idempotent; no locking — compute before
	// sharing across goroutines, as the measure functions do).
	cMin  int // 0 = unset
	isMin int // 0 = unset
	mtMin int // 0 = unset
}

var (
	_ System        = (*ExplicitSystem)(nil)
	_ Enumerable    = (*ExplicitSystem)(nil)
	_ Sampler       = (*ExplicitSystem)(nil)
	_ Parameterized = (*ExplicitSystem)(nil)
	_ Masking       = (*ExplicitSystem)(nil)
)

// NewExplicit builds an explicit quorum system over the universe
// {0,…,n−1}, verifying Definition 3.1: a non-empty collection of quorums
// within the universe, every pair of which intersects.
func NewExplicit(name string, n int, quorums []bitset.Set) (*ExplicitSystem, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: universe size %d must be positive", n)
	}
	if len(quorums) == 0 {
		return nil, errors.New("core: quorum system must contain at least one quorum")
	}
	universe := bitset.FromRange(0, n)
	own := make([]bitset.Set, len(quorums))
	for i, q := range quorums {
		if q.Empty() {
			return nil, fmt.Errorf("core: quorum %d is empty", i)
		}
		if !q.SubsetOf(universe) {
			return nil, fmt.Errorf("core: quorum %d = %v exceeds universe of size %d", i, q, n)
		}
		own[i] = q.Clone()
	}
	for i := range own {
		for j := i + 1; j < len(own); j++ {
			if !own[i].Intersects(own[j]) {
				return nil, fmt.Errorf("core: quorums %d and %d are disjoint: %w", i, j, ErrNotIntersecting)
			}
		}
	}
	return &ExplicitSystem{name: name, n: n, quorums: own}, nil
}

// Name returns the system's label.
func (s *ExplicitSystem) Name() string { return s.name }

// UniverseSize returns n.
func (s *ExplicitSystem) UniverseSize() int { return s.n }

// NumQuorums returns |𝒬|.
func (s *ExplicitSystem) NumQuorums() int { return len(s.quorums) }

// Quorums returns the quorum list. Callers must not mutate the sets.
func (s *ExplicitSystem) Quorums() []bitset.Set { return s.quorums }

// SelectQuorum returns a uniformly random quorum disjoint from dead, or
// ErrNoLiveQuorum.
func (s *ExplicitSystem) SelectQuorum(rng *rand.Rand, dead bitset.Set) (bitset.Set, error) {
	// Reservoir-sample among survivors for unbiased selection.
	var chosen bitset.Set
	found := 0
	for _, q := range s.quorums {
		if q.Intersects(dead) {
			continue
		}
		found++
		if rng.Intn(found) == 0 {
			chosen = q
		}
	}
	if found == 0 {
		return bitset.Set{}, ErrNoLiveQuorum
	}
	return chosen.Clone(), nil
}

// SampleQuorum draws a quorum uniformly at random. For fair systems the
// uniform strategy is load optimal (Proposition 3.9); for exact optima on
// unbalanced systems use the LP in the measures package.
func (s *ExplicitSystem) SampleQuorum(rng *rand.Rand) bitset.Set {
	return s.quorums[rng.Intn(len(s.quorums))].Clone()
}

// MinQuorumSize returns c(Q).
func (s *ExplicitSystem) MinQuorumSize() int {
	if s.cMin == 0 {
		best := s.quorums[0].Count()
		for _, q := range s.quorums[1:] {
			if c := q.Count(); c < best {
				best = c
			}
		}
		s.cMin = best
	}
	return s.cMin
}

// MinIntersection returns IS(Q) = min over pairs (including a quorum with
// itself only when |𝒬| = 1, where IS degenerates to c(Q)).
func (s *ExplicitSystem) MinIntersection() int {
	if s.isMin == 0 {
		if len(s.quorums) == 1 {
			s.isMin = s.quorums[0].Count()
			return s.isMin
		}
		best := -1
		for i := range s.quorums {
			for j := i + 1; j < len(s.quorums); j++ {
				c := s.quorums[i].IntersectionCount(s.quorums[j])
				if best < 0 || c < best {
					best = c
				}
			}
		}
		s.isMin = best
	}
	return s.isMin
}

// MinTransversal returns MT(Q), computed exactly by branch and bound.
func (s *ExplicitSystem) MinTransversal() int {
	if s.mtMin == 0 {
		s.mtMin = minTransversal(s.quorums, s.n)
	}
	return s.mtMin
}

// MaskingBound returns the largest b for which the system is b-masking
// (Corollary 3.7); negative when the system is not even 0-masking.
func (s *ExplicitSystem) MaskingBound() int { return MaskingBoundFromParams(s) }

// Degree returns deg(i), the number of quorums containing element i
// (Definition 3.2).
func (s *ExplicitSystem) Degree(i int) int {
	d := 0
	for _, q := range s.quorums {
		if q.Contains(i) {
			d++
		}
	}
	return d
}

// IsFair reports whether the system is (s,d)-fair (Definition 3.2): all
// quorums share one cardinality and all elements one degree. It returns
// the witness pair when fair.
func (s *ExplicitSystem) IsFair() (size, degree int, fair bool) {
	size = s.quorums[0].Count()
	for _, q := range s.quorums[1:] {
		if q.Count() != size {
			return 0, 0, false
		}
	}
	degree = s.Degree(0)
	for i := 1; i < s.n; i++ {
		if s.Degree(i) != degree {
			return 0, 0, false
		}
	}
	return size, degree, true
}

// IsTransversal reports whether T hits every quorum (Definition 3.3).
func (s *ExplicitSystem) IsTransversal(t bitset.Set) bool {
	for _, q := range s.quorums {
		if !q.Intersects(t) {
			return false
		}
	}
	return true
}
