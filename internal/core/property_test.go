package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bqs/internal/bitset"
)

// randomSystem generates a random explicit quorum system over n ≤ 12
// elements by drawing random sets and keeping those that intersect all
// previously kept ones. Returns nil when fewer than 2 quorums survive.
func randomSystem(rng *rand.Rand, n int) *ExplicitSystem {
	var kept []bitset.Set
	attempts := 30 + rng.Intn(30)
	for a := 0; a < attempts; a++ {
		q := bitset.New(n)
		size := 1 + rng.Intn(n)
		for _, e := range rng.Perm(n)[:size] {
			q.Add(e)
		}
		ok := true
		for _, k := range kept {
			if !k.Intersects(q) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, q)
		}
	}
	if len(kept) < 2 {
		return nil
	}
	s, err := NewExplicit("random", n, kept)
	if err != nil {
		return nil
	}
	return s
}

// bruteForceMT finds the true minimum transversal by enumerating all 2^n
// subsets.
func bruteForceMT(s *ExplicitSystem) int {
	n := s.UniverseSize()
	best := n
	for mask := 0; mask < 1<<uint(n); mask++ {
		t := bitset.New(n)
		size := 0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				t.Add(i)
				size++
			}
		}
		if size >= best {
			continue
		}
		if s.IsTransversal(t) {
			best = size
		}
	}
	return best
}

func TestMinTransversalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	checked := 0
	for trial := 0; trial < 200 && checked < 60; trial++ {
		n := 4 + rng.Intn(7) // 4..10
		s := randomSystem(rng, n)
		if s == nil {
			continue
		}
		checked++
		if got, want := s.MinTransversal(), bruteForceMT(s); got != want {
			t.Fatalf("trial %d (n=%d, m=%d): B&B MT=%d, brute force=%d",
				trial, n, s.NumQuorums(), got, want)
		}
	}
	if checked < 30 {
		t.Fatalf("only %d random systems generated", checked)
	}
}

func TestMaskingBoundConsistency(t *testing.T) {
	// For every random system: IsBMasking holds exactly up to MaskingBound.
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		s := randomSystem(rng, 4+rng.Intn(6))
		if s == nil {
			continue
		}
		b := s.MaskingBound()
		if b >= 0 && !IsBMasking(s, b) {
			t.Fatalf("system not masking at its own bound b=%d", b)
		}
		if IsBMasking(s, b+1) {
			t.Fatalf("system masking beyond its bound b=%d", b)
		}
	}
}

func TestTransversalComplementOfMaskedQuorum(t *testing.T) {
	// Proposition 4.4's structural step: for a b-masking system, removing
	// any 2b elements from a smallest quorum leaves a transversal.
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 80; trial++ {
		s := randomSystem(rng, 4+rng.Intn(6))
		if s == nil {
			continue
		}
		b := s.MaskingBound()
		if b < 1 {
			continue
		}
		// Find a smallest quorum.
		var smallest bitset.Set
		for _, q := range s.Quorums() {
			if smallest.Empty() || q.Count() < smallest.Count() {
				smallest = q
			}
		}
		elems := smallest.Elements()
		reduced := smallest.Clone()
		for _, e := range elems[:2*b] {
			reduced.Remove(e)
		}
		if !s.IsTransversal(reduced) {
			t.Fatalf("Q minus 2b elements is not a transversal (b=%d, Q=%v)", b, smallest)
		}
	}
}

func TestQuickStrategyLoadIdentity(t *testing.T) {
	// Σ_u l_w(u) = Σ_Q w(Q)·|Q| for any strategy (the bookkeeping identity
	// inside Theorem 4.1's proof).
	rng := rand.New(rand.NewSource(73))
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSystem(r, 4+r.Intn(6))
		if s == nil {
			return true
		}
		m := s.NumQuorums()
		weights := make([]float64, m)
		sum := 0.0
		for i := range weights {
			weights[i] = r.Float64()
			sum += weights[i]
		}
		for i := range weights {
			weights[i] /= sum
		}
		st, err := NewStrategy(weights)
		if err != nil {
			return false
		}
		lhs := 0.0
		for _, l := range st.InducedLoads(s) {
			lhs += l
		}
		rhs := 0.0
		for i, q := range s.Quorums() {
			rhs += st.Weight(i) * float64(q.Count())
		}
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestQuickLoadAboveTheorem41(t *testing.T) {
	// Every strategy's induced load respects the Theorem 4.1 bound
	// max{(2b+1)/c, c/n} when the system is b-masking.
	rng := rand.New(rand.NewSource(74))
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSystem(r, 4+r.Intn(6))
		if s == nil {
			return true
		}
		b := s.MaskingBound()
		if b < 0 {
			return true
		}
		st := UniformStrategy(s.NumQuorums())
		induced := st.InducedSystemLoad(s)
		c := s.MinQuorumSize()
		n := s.UniverseSize()
		bound := math.Max(float64(2*b+1)/float64(c), float64(c)/float64(n))
		return induced >= bound-1e-9
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestQuickSelectQuorumSound(t *testing.T) {
	// SelectQuorum either returns a quorum disjoint from dead or correctly
	// reports that none exists.
	rng := rand.New(rand.NewSource(75))
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(6)
		s := randomSystem(r, n)
		if s == nil {
			return true
		}
		dead := bitset.New(n)
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				dead.Add(i)
			}
		}
		q, err := s.SelectQuorum(r, dead)
		surviving := false
		for _, qq := range s.Quorums() {
			if !qq.Intersects(dead) {
				surviving = true
				break
			}
		}
		if err != nil {
			return !surviving
		}
		return surviving && !q.Intersects(dead)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 120, Rand: rng}); err != nil {
		t.Error(err)
	}
}
