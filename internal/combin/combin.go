// Package combin provides the small combinatorial toolkit the quorum
// constructions and measures rely on: binomial coefficients (exact and
// floating point), k-subset enumeration and uniform sampling, and the
// binomial tail bounds used in the paper's availability analysis
// (Lemma A.2 and the Chernoff bound of Proposition 6.3).
package combin

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrOverflow is returned by Binomial when the exact result does not fit
// in an int64.
var ErrOverflow = errors.New("combin: binomial coefficient overflows int64")

// Binomial returns C(n, k) exactly, or ErrOverflow if the value exceeds
// int64 range. C(n, k) = 0 for k < 0 or k > n; n must be non-negative.
func Binomial(n, k int) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("combin: negative n=%d", n)
	}
	if k < 0 || k > n {
		return 0, nil
	}
	if k > n-k {
		k = n - k
	}
	// Invariant: before iteration i, result = C(n−k+i−1, i−1). Each step
	// multiplies by (n−k+i)/i. Reducing the denominator against result
	// first makes the remaining denominator coprime to result, so it must
	// divide the numerator exactly (the product is the integer C(n−k+i, i)).
	var result int64 = 1
	for i := 1; i <= k; i++ {
		num := int64(n - k + i)
		den := int64(i)
		g := gcd(result, den)
		result /= g
		den /= g
		num /= den
		if num != 0 && result > math.MaxInt64/num {
			return 0, ErrOverflow
		}
		result *= num
	}
	return result, nil
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

// BinomialFloat returns C(n, k) as a float64 computed in log space, which
// is accurate enough for probability formulas at any size used here.
func BinomialFloat(n, k int) float64 {
	if k < 0 || k > n || n < 0 {
		return 0
	}
	return math.Exp(LogBinomial(n, k))
}

// LogBinomial returns ln C(n, k). It is -Inf outside the support.
func LogBinomial(n, k int) float64 {
	if k < 0 || k > n || n < 0 {
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p).
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	logp := LogBinomial(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(logp)
}

// BinomialTail returns P(X >= k) for X ~ Binomial(n, p), summing the PMF
// from the smaller side for accuracy.
func BinomialTail(n, k int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	// Sum whichever side has fewer terms.
	if n-k < k {
		s := 0.0
		for j := k; j <= n; j++ {
			s += BinomialPMF(n, j, p)
		}
		return clamp01(s)
	}
	s := 0.0
	for j := 0; j < k; j++ {
		s += BinomialPMF(n, j, p)
	}
	return clamp01(1 - s)
}

// TailUpperBound is Lemma A.2 of the paper:
// sum_{j>=d} C(k,j) p^j (1-p)^{k-j} <= C(k,d) p^d.
func TailUpperBound(k, d int, p float64) float64 {
	if d <= 0 {
		return 1
	}
	if d > k {
		return 0
	}
	return clamp01(math.Exp(LogBinomial(k, d) + float64(d)*math.Log(p)))
}

// ChernoffUpper bounds P(X >= (p+γ)·n) <= exp(−2nγ²) for X ~ Binomial(n, p),
// as used in Proposition 6.3's threshold availability estimate.
func ChernoffUpper(n int, gamma float64) float64 {
	if gamma <= 0 {
		return 1
	}
	return clamp01(math.Exp(-2 * float64(n) * gamma * gamma))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// HypergeomPMF returns P(X = k) for X ~ Hypergeometric(n, succ, draws):
// the probability that drawing `draws` items without replacement from a
// population of n containing `succ` marked items yields exactly k marked
// ones. This is the distribution of |Q1 ∩ Q2| for two independent uniform
// quorums of the probabilistic systems of [MRWW98].
func HypergeomPMF(n, succ, draws, k int) float64 {
	if k < 0 || k > succ || k > draws || draws-k > n-succ {
		return 0
	}
	logp := LogBinomial(succ, k) + LogBinomial(n-succ, draws-k) - LogBinomial(n, draws)
	return math.Exp(logp)
}

// HypergeomCDF returns P(X ≤ k) for X ~ Hypergeometric(n, succ, draws).
func HypergeomCDF(n, succ, draws, k int) float64 {
	s := 0.0
	for j := 0; j <= k; j++ {
		s += HypergeomPMF(n, succ, draws, j)
	}
	return clamp01(s)
}

// Combinations calls fn with each k-subset of {0,…,n−1} in lexicographic
// order. The slice passed to fn is reused between calls; fn must copy it if
// it retains it. Enumeration stops early if fn returns false.
func Combinations(n, k int, fn func(comb []int) bool) {
	if k < 0 || k > n {
		return
	}
	comb := make([]int, k)
	for i := range comb {
		comb[i] = i
	}
	for {
		if !fn(comb) {
			return
		}
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && comb[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		comb[i]++
		for j := i + 1; j < k; j++ {
			comb[j] = comb[j-1] + 1
		}
	}
}

// CountCombinations returns the number of k-subsets of an n-set as float64
// (convenience wrapper for strategy-weight computations).
func CountCombinations(n, k int) float64 {
	return BinomialFloat(n, k)
}

// RandomKSubset returns a uniformly random k-subset of {0,…,n−1} in
// increasing order, using Floyd's algorithm (O(k) expected time, no
// allocation proportional to n).
func RandomKSubset(rng *rand.Rand, n, k int) []int {
	if k < 0 || k > n {
		return nil
	}
	chosen := make(map[int]struct{}, k)
	for j := n - k; j < n; j++ {
		t := rng.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			chosen[j] = struct{}{}
		} else {
			chosen[t] = struct{}{}
		}
	}
	out := make([]int, 0, k)
	for v := range chosen {
		out = append(out, v)
	}
	// Insertion sort: k is small in all callers.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ISqrt returns ⌊√n⌋ for n ≥ 0.
func ISqrt(n int) int {
	if n < 0 {
		return 0
	}
	r := int(math.Sqrt(float64(n)))
	for r*r > n {
		r--
	}
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// IsPerfectSquare reports whether n is a perfect square.
func IsPerfectSquare(n int) bool {
	r := ISqrt(n)
	return r*r == n
}

// CeilSqrt returns ⌈√n⌉ for n ≥ 0.
func CeilSqrt(n int) int {
	r := ISqrt(n)
	if r*r < n {
		r++
	}
	return r
}

// IPow returns base^exp for non-negative exp with int64 overflow check.
func IPow(base, exp int) (int64, error) {
	if exp < 0 {
		return 0, fmt.Errorf("combin: negative exponent %d", exp)
	}
	result := int64(1)
	b := int64(base)
	for i := 0; i < exp; i++ {
		if b != 0 && (result > math.MaxInt64/b || result < math.MinInt64/b) {
			return 0, ErrOverflow
		}
		result *= b
	}
	return result, nil
}
