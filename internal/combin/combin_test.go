package combin

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinomialSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1},
		{5, 2, 10}, {10, 5, 252}, {49, 2, 1176},
		{52, 5, 2598960}, {61, 30, 232714176627630544 / 1}, // C(61,30)
		{4, 5, 0}, {4, -1, 0},
	}
	for _, c := range cases {
		got, err := Binomial(c.n, c.k)
		if err != nil {
			t.Errorf("Binomial(%d,%d) error: %v", c.n, c.k, err)
			continue
		}
		if got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialNegativeN(t *testing.T) {
	if _, err := Binomial(-1, 0); err == nil {
		t.Fatal("Binomial(-1,0) should error")
	}
}

func TestBinomialOverflow(t *testing.T) {
	if _, err := Binomial(200, 100); !errors.Is(err, ErrOverflow) {
		t.Fatalf("Binomial(200,100) err = %v, want ErrOverflow", err)
	}
}

func TestBinomialPascal(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k) for all 1<=k<n<=40.
	for n := 1; n <= 40; n++ {
		for k := 1; k < n; k++ {
			a, _ := Binomial(n, k)
			b, _ := Binomial(n-1, k-1)
			c, _ := Binomial(n-1, k)
			if a != b+c {
				t.Fatalf("Pascal fails at n=%d k=%d: %d != %d+%d", n, k, a, b, c)
			}
		}
	}
}

func TestBinomialFloatMatchesExact(t *testing.T) {
	for n := 0; n <= 50; n++ {
		for k := 0; k <= n; k++ {
			exact, err := Binomial(n, k)
			if err != nil {
				continue
			}
			got := BinomialFloat(n, k)
			if rel := math.Abs(got-float64(exact)) / math.Max(1, float64(exact)); rel > 1e-9 {
				t.Fatalf("BinomialFloat(%d,%d) = %g, want %d (rel err %g)", n, k, got, exact, rel)
			}
		}
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 1} {
		for _, n := range []int{1, 7, 31} {
			s := 0.0
			for k := 0; k <= n; k++ {
				s += BinomialPMF(n, k, p)
			}
			if math.Abs(s-1) > 1e-9 {
				t.Errorf("PMF(n=%d,p=%g) sums to %g", n, p, s)
			}
		}
	}
}

func TestBinomialTail(t *testing.T) {
	// Direct check against brute-force sum.
	for _, p := range []float64{0.1, 0.25, 0.5} {
		for n := 1; n <= 20; n++ {
			for k := 0; k <= n+1; k++ {
				want := 0.0
				for j := k; j <= n; j++ {
					want += BinomialPMF(n, j, p)
				}
				if k <= 0 {
					want = 1
				}
				got := BinomialTail(n, k, p)
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("Tail(n=%d,k=%d,p=%g) = %g, want %g", n, k, p, got, want)
				}
			}
		}
	}
}

func TestTailUpperBoundLemmaA2(t *testing.T) {
	// Lemma A.2: the true tail never exceeds C(k,d) p^d.
	for _, p := range []float64{0.05, 0.2, 0.5, 0.8} {
		for k := 1; k <= 25; k++ {
			for d := 0; d <= k; d++ {
				tail := BinomialTail(k, d, p)
				bound := TailUpperBound(k, d, p)
				if tail > bound+1e-9 {
					t.Fatalf("Lemma A.2 violated: k=%d d=%d p=%g tail=%g bound=%g",
						k, d, p, tail, bound)
				}
			}
		}
	}
}

func TestChernoffUpperDominatesTail(t *testing.T) {
	// P(X >= (p+γ)n) <= exp(-2nγ²).
	for _, p := range []float64{0.1, 0.25} {
		for _, n := range []int{20, 50, 100} {
			for _, gamma := range []float64{0.05, 0.1, 0.2} {
				k := int(math.Ceil((p + gamma) * float64(n)))
				tail := BinomialTail(n, k, p)
				bound := ChernoffUpper(n, gamma)
				if tail > bound+1e-9 {
					t.Fatalf("Chernoff violated: n=%d p=%g γ=%g tail=%g bound=%g",
						n, p, gamma, tail, bound)
				}
			}
		}
	}
}

func TestCombinationsCountAndOrder(t *testing.T) {
	n, k := 7, 3
	var all [][]int
	Combinations(n, k, func(c []int) bool {
		cp := make([]int, len(c))
		copy(cp, c)
		all = append(all, cp)
		return true
	})
	want, _ := Binomial(n, k)
	if int64(len(all)) != want {
		t.Fatalf("got %d combinations, want %d", len(all), want)
	}
	// Lexicographic order and strictly increasing within each.
	for i, c := range all {
		for j := 1; j < len(c); j++ {
			if c[j] <= c[j-1] {
				t.Fatalf("combination %v not strictly increasing", c)
			}
		}
		if i > 0 && !lexLess(all[i-1], c) {
			t.Fatalf("combinations out of order: %v then %v", all[i-1], c)
		}
	}
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestCombinationsEarlyStop(t *testing.T) {
	count := 0
	Combinations(10, 4, func([]int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d, want 3", count)
	}
}

func TestCombinationsEdge(t *testing.T) {
	calls := 0
	Combinations(5, 0, func(c []int) bool {
		calls++
		if len(c) != 0 {
			t.Errorf("k=0 combination should be empty, got %v", c)
		}
		return true
	})
	if calls != 1 {
		t.Errorf("k=0 should yield exactly one (empty) combination, got %d", calls)
	}
	Combinations(3, 5, func([]int) bool {
		t.Error("k>n should yield nothing")
		return true
	})
}

func TestRandomKSubsetUniformMargins(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n, k, trials := 10, 3, 30000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		s := RandomKSubset(rng, n, k)
		if len(s) != k {
			t.Fatalf("subset size %d, want %d", len(s), k)
		}
		seen := map[int]bool{}
		for j, v := range s {
			if v < 0 || v >= n {
				t.Fatalf("element %d out of range", v)
			}
			if seen[v] {
				t.Fatalf("duplicate element in %v", s)
			}
			seen[v] = true
			if j > 0 && s[j] <= s[j-1] {
				t.Fatalf("subset %v not sorted", s)
			}
			counts[v]++
		}
	}
	// Each element appears with probability k/n = 0.3; allow 5σ.
	expect := float64(trials) * float64(k) / float64(n)
	sigma := math.Sqrt(float64(trials) * 0.3 * 0.7)
	for i, c := range counts {
		if math.Abs(float64(c)-expect) > 5*sigma {
			t.Errorf("element %d count %d deviates from %g by more than 5σ", i, c, expect)
		}
	}
}

func TestISqrt(t *testing.T) {
	for n := 0; n <= 10000; n++ {
		r := ISqrt(n)
		if r*r > n || (r+1)*(r+1) <= n {
			t.Fatalf("ISqrt(%d) = %d", n, r)
		}
	}
	if !IsPerfectSquare(49) || IsPerfectSquare(50) {
		t.Error("IsPerfectSquare wrong")
	}
	if CeilSqrt(50) != 8 || CeilSqrt(49) != 7 || CeilSqrt(0) != 0 {
		t.Error("CeilSqrt wrong")
	}
}

func TestIPow(t *testing.T) {
	got, err := IPow(4, 5)
	if err != nil || got != 1024 {
		t.Fatalf("IPow(4,5) = %d, %v", got, err)
	}
	if _, err := IPow(10, 30); !errors.Is(err, ErrOverflow) {
		t.Fatalf("IPow(10,30) should overflow, got %v", err)
	}
	if _, err := IPow(2, -1); err == nil {
		t.Fatal("negative exponent should error")
	}
	one, err := IPow(7, 0)
	if err != nil || one != 1 {
		t.Fatalf("IPow(7,0) = %d, %v", one, err)
	}
}

func TestQuickBinomialSymmetry(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw % 60)
		k := int(kRaw % 61)
		a, errA := Binomial(n, k)
		b, errB := Binomial(n, n-k)
		if k > n {
			return a == 0 && errA == nil
		}
		return errA == nil && errB == nil && a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
