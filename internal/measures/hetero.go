package measures

// This file generalizes the crash probability F_p(Q) (Definition 3.10)
// past the paper's i.i.d. model: real fleets have per-server failure
// probabilities (old disks, hot racks) and correlated failures (a rack
// PDU or a zone outage takes several servers down together). A
// FailureModel carries both — an independent per-server probability
// vector p_i and a set of failure domains that crash as a unit — and the
// exact and Monte Carlo estimators below integrate the system-crash
// event over it. The scalar-p API in crash.go is the uniform,
// domain-free special case and now delegates here.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"bqs/internal/bitset"
	"bqs/internal/core"
)

// Domain is one correlated failure domain: all Members crash together
// with probability P (think rack, power feed, or availability zone).
// Domains may overlap; a server is down when any of its domains is down
// or its own independent crash fires.
type Domain struct {
	Members []int
	P       float64
}

// FailureModel is the heterogeneous, correlated crash model F_p(Q) is
// generalized over: server i is down iff its independent Bernoulli(P[i])
// crash fires or any domain containing i is down (each domain d an
// independent Bernoulli(d.P)). The zero model — nil P, no domains —
// never crashes anything.
type FailureModel struct {
	// P is the per-server independent crash probability vector; nil means
	// all zero, and a non-nil vector must have one entry per server.
	P []float64
	// Domains are the correlated failure domains.
	Domains []Domain
}

// UniformModel returns the paper's i.i.d. model: every one of n servers
// crashes independently with probability p, no correlation.
func UniformModel(n int, p float64) FailureModel {
	vec := make([]float64, n)
	for i := range vec {
		vec[i] = p
	}
	return FailureModel{P: vec}
}

// Validate checks the model against an n-server universe: probabilities
// in [0,1] (NaN rejected), a P vector of length n when present, and
// domains with at least one member, all members in [0,n), none repeated
// within a domain.
func (m FailureModel) Validate(n int) error {
	if m.P != nil && len(m.P) != n {
		return fmt.Errorf("measures: p vector has %d entries for %d servers", len(m.P), n)
	}
	for i, p := range m.P {
		if !(p >= 0 && p <= 1) {
			return fmt.Errorf("measures: p[%d]=%g outside [0,1]", i, p)
		}
	}
	for d, dom := range m.Domains {
		if len(dom.Members) == 0 {
			return fmt.Errorf("measures: domain %d has no members", d)
		}
		if !(dom.P >= 0 && dom.P <= 1) {
			return fmt.Errorf("measures: domain %d probability %g outside [0,1]", d, dom.P)
		}
		seen := make(map[int]bool, len(dom.Members))
		for _, s := range dom.Members {
			if s < 0 || s >= n {
				return fmt.Errorf("measures: domain %d member %d outside universe [0,%d)", d, s, n)
			}
			if seen[s] {
				return fmt.Errorf("measures: domain %d repeats member %d", d, s)
			}
			seen[s] = true
		}
	}
	return nil
}

// DownProbabilities returns the marginal per-server down probability the
// model induces: 1 − (1−P[i])·Π_{domains d ∋ i}(1−d.P). This is the p
// vector to quote when comparing a correlated model against
// independent-only analysis (the marginals agree; the joint law does
// not).
func (m FailureModel) DownProbabilities(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		up := 1.0
		if m.P != nil {
			up = 1 - m.P[i]
		}
		for _, dom := range m.Domains {
			for _, s := range dom.Members {
				if s == i {
					up *= 1 - dom.P
					break
				}
			}
		}
		out[i] = 1 - up
	}
	return out
}

// bernoulli is one independent failure source of the flattened model:
// with probability p, the servers of mask go down.
type bernoulli struct {
	p    float64
	mask uint64
}

// flatten lists the model's independent Bernoulli sources over an
// n-server universe: one per server with P[i] > 0 is implicit in the
// per-source masks, one per domain. The exact enumerator walks 2^len(out)
// outcomes, so the caller bounds len(out).
func (m FailureModel) flatten(n int) []bernoulli {
	var out []bernoulli
	for i, p := range m.P {
		out = append(out, bernoulli{p: p, mask: 1 << uint(i)})
	}
	for _, dom := range m.Domains {
		var mask uint64
		for _, s := range dom.Members {
			mask |= 1 << uint(s)
		}
		out = append(out, bernoulli{p: dom.P, mask: mask})
	}
	return out
}

// quorumMasks materializes the system's quorums as bitmasks, shared by
// every exact enumerator in this package.
func quorumMasks(sys core.Enumerable) []uint64 {
	quorums := sys.Quorums()
	masks := make([]uint64, len(quorums))
	for i, q := range quorums {
		var m uint64
		q.Range(func(e int) bool {
			m |= 1 << uint(e)
			return true
		})
		masks[i] = m
	}
	return masks
}

// systemDead reports whether the dead-server mask intersects every
// quorum — the system-crash event of Definition 3.10.
func systemDead(masks []uint64, dead uint64) bool {
	for _, m := range masks {
		if m&dead == 0 {
			return false
		}
	}
	return true
}

// CrashProbabilityExactVec computes the heterogeneous F_p(Q) exactly for
// a per-server crash probability vector: server i crashes independently
// with probability p[i]; the system crashes when every quorum contains a
// crashed server. The universe is capped at MaxExactUniverse, as in the
// scalar case.
func CrashProbabilityExactVec(sys core.Enumerable, p []float64) (float64, error) {
	return CrashProbabilityExactModel(sys, FailureModel{P: p})
}

// CrashProbabilityExactModel computes F(Q) exactly under a full
// FailureModel by enumerating every outcome of the model's independent
// failure sources (one Bernoulli per server with a P vector, one per
// domain). The source count — n when P is set, plus one per domain — is
// capped at MaxExactUniverse; larger models need CrashProbabilityMCModel.
func CrashProbabilityExactModel(sys core.Enumerable, m FailureModel) (float64, error) {
	n := sys.UniverseSize()
	if err := m.Validate(n); err != nil {
		return 0, err
	}
	sources := m.flatten(n)
	k := len(sources)
	if k > MaxExactUniverse {
		return 0, fmt.Errorf("measures: %d failure sources (%d-server vector + %d domains): %w",
			k, len(m.P), len(m.Domains), ErrUniverseTooLarge)
	}
	masks := quorumMasks(sys)
	if k == 0 {
		// No failure source ever fires; the system crashes only if some
		// quorum is empty (impossible for valid systems, but stay exact).
		if systemDead(masks, 0) {
			return 1, nil
		}
		return 0, nil
	}

	// Split the sources in half and precompute, for each half, every
	// outcome's probability weight and dead-server mask. The main loop is
	// then one multiply and one lookup per combined outcome — O(2^k)
	// total with O(2^(k/2)) memory — instead of O(k·2^k).
	lo := sources[:k/2]
	hi := sources[k/2:]
	loW, loM := outcomeTables(lo)
	hiW, hiM := outcomeTables(hi)

	total := 0.0
	for h, wh := range hiW {
		if wh == 0 {
			continue
		}
		dh := hiM[h]
		for l, wl := range loW {
			if wl == 0 {
				continue
			}
			if systemDead(masks, dh|loM[l]) {
				total += wh * wl
			}
		}
	}
	// Clamp the tiny float drift so callers can rely on a probability.
	return math.Min(1, math.Max(0, total)), nil
}

// outcomeTables enumerates the 2^len(sources) outcomes of a source list,
// returning each outcome's probability weight and the dead-server mask
// of the sources that fired.
func outcomeTables(sources []bernoulli) (weights []float64, dead []uint64) {
	k := len(sources)
	weights = make([]float64, 1<<uint(k))
	dead = make([]uint64, 1<<uint(k))
	weights[0] = 1
	for i, src := range sources {
		half := 1 << uint(i)
		for j := 0; j < half; j++ {
			w := weights[j]
			weights[j] = w * (1 - src.p)
			weights[half+j] = w * src.p
			dead[half+j] = dead[j] | src.mask
		}
	}
	return weights, dead
}

// SampleDead draws one dead-server set from the model: each independent
// crash and each domain fires as its own Bernoulli. The returned set is
// freshly allocated.
func (m FailureModel) SampleDead(n int, rng *rand.Rand) bitset.Set {
	dead := bitset.New(n)
	for i, p := range m.P {
		if p > 0 && rng.Float64() < p {
			dead.Add(i)
		}
	}
	for _, dom := range m.Domains {
		if dom.P > 0 && rng.Float64() < dom.P {
			for _, s := range dom.Members {
				dead.Add(s)
			}
		}
	}
	return dead
}

// CrashProbabilityMCVec estimates the heterogeneous F_p(Q) by Monte
// Carlo for a per-server probability vector; it works for systems of any
// size, like the scalar CrashProbabilityMC.
func CrashProbabilityMCVec(sys core.System, p []float64, trials int, rng *rand.Rand) (MCResult, error) {
	return CrashProbabilityMCModel(sys, FailureModel{P: p}, trials, rng)
}

// CrashProbabilityMCModel estimates F(Q) under a full FailureModel by
// sampling dead-server sets and asking the system for a surviving
// quorum — the estimator of choice when the model has too many failure
// sources for CrashProbabilityExactModel.
func CrashProbabilityMCModel(sys core.System, m FailureModel, trials int, rng *rand.Rand) (MCResult, error) {
	if trials <= 0 {
		return MCResult{}, errors.New("measures: trials must be positive")
	}
	n := sys.UniverseSize()
	if err := m.Validate(n); err != nil {
		return MCResult{}, err
	}
	failures := 0
	for t := 0; t < trials; t++ {
		dead := m.SampleDead(n, rng)
		if _, err := sys.SelectQuorum(rng, dead); err != nil {
			if !errors.Is(err, core.ErrNoLiveQuorum) {
				return MCResult{}, fmt.Errorf("measures: select quorum: %w", err)
			}
			failures++
		}
	}
	est := float64(failures) / float64(trials)
	return MCResult{
		Estimate: est,
		StdErr:   math.Sqrt(est * (1 - est) / float64(trials)),
		Failures: failures,
		Trials:   trials,
	}, nil
}
