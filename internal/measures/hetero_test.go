package measures

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"bqs/internal/bitset"
	"bqs/internal/core"
)

// randomSystem builds a random explicit system whose quorums are all
// majorities of a random universe — any two majorities intersect, so
// core.NewExplicit always accepts it.
func randomSystem(t *testing.T, rng *rand.Rand) *core.ExplicitSystem {
	t.Helper()
	n := 3 + rng.Intn(6) // 3..8
	m := 2 + rng.Intn(4) // 2..5 quorums
	quorums := make([]bitset.Set, m)
	for i := range quorums {
		size := n/2 + 1 + rng.Intn(n-n/2)
		q := bitset.New(n)
		for q.Count() < size {
			q.Add(rng.Intn(n))
		}
		quorums[i] = q
	}
	sys, err := core.NewExplicit("rand", n, quorums)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func randomPVec(rng *rand.Rand, n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = rng.Float64()
	}
	return p
}

// bruteForceModel is an independent re-implementation of the exact
// heterogeneous F_p: enumerate every subset of fired sources directly,
// without the split-half tables, as an oracle for the fast path.
func bruteForceModel(sys core.Enumerable, m FailureModel) float64 {
	n := sys.UniverseSize()
	sources := m.flatten(n)
	masks := quorumMasks(sys)
	total := 0.0
	for outcome := uint64(0); outcome < 1<<uint(len(sources)); outcome++ {
		w := 1.0
		var dead uint64
		for i, src := range sources {
			if outcome&(1<<uint(i)) != 0 {
				w *= src.p
				dead |= src.mask
			} else {
				w *= 1 - src.p
			}
		}
		if systemDead(masks, dead) {
			total += w
		}
	}
	return total
}

func TestExactVecMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		sys := randomSystem(t, rng)
		p := randomPVec(rng, sys.UniverseSize())
		got, err := CrashProbabilityExactVec(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceModel(sys, FailureModel{P: p})
		if !approx(got, want, 1e-12) {
			t.Errorf("trial %d: vec F = %g, brute force %g", trial, got, want)
		}
	}
}

func TestExactModelMatchesBruteForceWithDomains(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 25; trial++ {
		sys := randomSystem(t, rng)
		n := sys.UniverseSize()
		m := FailureModel{P: randomPVec(rng, n)}
		for d := 0; d < 1+rng.Intn(3); d++ {
			size := 1 + rng.Intn(n)
			dom := Domain{P: rng.Float64()}
			seen := map[int]bool{}
			for len(dom.Members) < size {
				s := rng.Intn(n)
				if !seen[s] {
					seen[s] = true
					dom.Members = append(dom.Members, s)
				}
			}
			m.Domains = append(m.Domains, dom)
		}
		got, err := CrashProbabilityExactModel(sys, m)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceModel(sys, m)
		if !approx(got, want, 1e-12) {
			t.Errorf("trial %d: model F = %g, brute force %g", trial, got, want)
		}
	}
}

// Scalar-p and the uniform vector must agree to 1e-12 (the scalar API is
// a wrapper, so this pins the wrapper staying a wrapper).
func TestScalarMatchesUniformVector(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 10; trial++ {
		sys := randomSystem(t, rng)
		p := rng.Float64()
		scalar, err := CrashProbabilityExact(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		vec, err := CrashProbabilityExactVec(sys, UniformModel(sys.UniverseSize(), p).P)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(scalar, vec, 1e-12) {
			t.Errorf("trial %d: scalar %g vs uniform vector %g", trial, scalar, vec)
		}
	}
}

// F is monotone non-decreasing in each p_i: raising any one server's
// crash probability cannot make the system less likely to crash.
func TestExactVecMonotoneInEachCoordinate(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 15; trial++ {
		sys := randomSystem(t, rng)
		n := sys.UniverseSize()
		p := randomPVec(rng, n)
		base, err := CrashProbabilityExactVec(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			bumped := append([]float64(nil), p...)
			bumped[i] = p[i] + (1-p[i])*rng.Float64()
			got, err := CrashProbabilityExactVec(sys, bumped)
			if err != nil {
				t.Fatal(err)
			}
			if got < base-1e-12 {
				t.Errorf("trial %d: raising p[%d] %g→%g dropped F %g→%g",
					trial, i, p[i], bumped[i], base, got)
			}
		}
	}
}

// Singleton domains are the same thing as independent per-server
// probabilities: {i} with probability q ≡ P[i]=q.
func TestSingletonDomainsEquivalentToVector(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 15; trial++ {
		sys := randomSystem(t, rng)
		n := sys.UniverseSize()
		p := randomPVec(rng, n)
		asVec, err := CrashProbabilityExactVec(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		m := FailureModel{}
		for i, q := range p {
			m.Domains = append(m.Domains, Domain{Members: []int{i}, P: q})
		}
		asDomains, err := CrashProbabilityExactModel(sys, m)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(asVec, asDomains, 1e-12) {
			t.Errorf("trial %d: vector %g vs singleton domains %g", trial, asVec, asDomains)
		}
	}
}

func TestMCModelMatchesExactModel(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 5; trial++ {
		sys := randomSystem(t, rng)
		n := sys.UniverseSize()
		m := FailureModel{
			P:       randomPVec(rng, n),
			Domains: []Domain{{Members: []int{0, n - 1}, P: rng.Float64() / 2}},
		}
		exact, err := CrashProbabilityExactModel(sys, m)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := CrashProbabilityMCModel(sys, m, 60000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mc.Estimate-exact) > 5*mc.StdErr+1e-9 {
			t.Errorf("trial %d: MC %g ± %g vs exact %g", trial, mc.Estimate, mc.StdErr, exact)
		}
	}
}

func TestDownProbabilitiesMarginals(t *testing.T) {
	// Analytic check: server in one domain with q and own p has marginal
	// 1−(1−p)(1−q).
	m := FailureModel{
		P:       []float64{0.1, 0.2, 0},
		Domains: []Domain{{Members: []int{0, 2}, P: 0.5}},
	}
	got := m.DownProbabilities(3)
	want := []float64{1 - 0.9*0.5, 0.2, 0.5}
	for i := range want {
		if !approx(got[i], want[i], 1e-12) {
			t.Errorf("marginal[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// And empirically: SampleDead frequencies match the marginals.
	rng := rand.New(rand.NewSource(48))
	const trials = 100000
	downs := make([]int, 3)
	for t := 0; t < trials; t++ {
		dead := m.SampleDead(3, rng)
		for i := 0; i < 3; i++ {
			if dead.Contains(i) {
				downs[i]++
			}
		}
	}
	for i := range want {
		freq := float64(downs[i]) / trials
		if math.Abs(freq-want[i]) > 0.01 {
			t.Errorf("sampled marginal[%d] = %g, want %g", i, freq, want[i])
		}
	}
}

// Correlation matters: a domain covering a whole quorum transversal
// crashes the system more often than independent servers with the same
// marginals.
func TestCorrelationRaisesCrashProbability(t *testing.T) {
	sys := majority3(t)
	correlated := FailureModel{Domains: []Domain{{Members: []int{0, 1}, P: 0.3}}}
	fCorr, err := CrashProbabilityExactModel(sys, correlated)
	if err != nil {
		t.Fatal(err)
	}
	fInd, err := CrashProbabilityExactVec(sys, correlated.DownProbabilities(3))
	if err != nil {
		t.Fatal(err)
	}
	// Correlated: both down together with 0.3 → system dead. Independent
	// with same marginals: 0.3·0.3 = 0.09.
	if !approx(fCorr, 0.3, 1e-12) || !approx(fInd, 0.09, 1e-12) {
		t.Errorf("correlated %g (want 0.3), independent %g (want 0.09)", fCorr, fInd)
	}
}

func TestExactModelSourceCap(t *testing.T) {
	// 20 servers + 5 domains = 25 sources > MaxExactUniverse even though
	// the universe itself fits.
	var quorums [][]int
	for i := 1; i < 20; i++ {
		quorums = append(quorums, []int{0, i})
	}
	sys := explicit(t, "star20", 20, quorums...)
	m := UniformModel(20, 0.1)
	for d := 0; d < 5; d++ {
		m.Domains = append(m.Domains, Domain{Members: []int{d}, P: 0.1})
	}
	if _, err := CrashProbabilityExactModel(sys, m); !errors.Is(err, ErrUniverseTooLarge) {
		t.Errorf("err = %v, want ErrUniverseTooLarge", err)
	}
	// Dropping the vector leaves 5 sources: fine.
	if _, err := CrashProbabilityExactModel(sys, FailureModel{Domains: m.Domains}); err != nil {
		t.Errorf("domain-only model should fit: %v", err)
	}
}

func TestFailureModelValidate(t *testing.T) {
	bad := []FailureModel{
		{P: []float64{0.1}},                                     // wrong length for n=3
		{P: []float64{0.1, math.NaN(), 0.1}},                    // NaN
		{P: []float64{0.1, 1.5, 0.1}},                           // out of range
		{Domains: []Domain{{Members: nil, P: 0.1}}},             // empty domain
		{Domains: []Domain{{Members: []int{3}, P: 0.1}}},        // out of universe
		{Domains: []Domain{{Members: []int{1, 1}, P: 0.1}}},     // duplicate
		{Domains: []Domain{{Members: []int{0}, P: -0.5}}},       // bad prob
		{Domains: []Domain{{Members: []int{0}, P: math.NaN()}}}, // NaN prob
	}
	for i, m := range bad {
		if err := m.Validate(3); err == nil {
			t.Errorf("model %d should fail validation", i)
		}
	}
	good := FailureModel{
		P:       []float64{0, 0.5, 1},
		Domains: []Domain{{Members: []int{0, 2}, P: 0.25}},
	}
	if err := good.Validate(3); err != nil {
		t.Errorf("good model rejected: %v", err)
	}
	if err := (FailureModel{}).Validate(3); err != nil {
		t.Errorf("zero model rejected: %v", err)
	}
}

func TestOutcomeTablesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	sources := make([]bernoulli, 6)
	for i := range sources {
		sources[i] = bernoulli{p: rng.Float64(), mask: 1 << uint(i)}
	}
	weights, _ := outcomeTables(sources)
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	if !approx(sum, 1, 1e-12) {
		t.Errorf("outcome weights sum to %g, want 1", sum)
	}
}

func TestParsePVector(t *testing.T) {
	cases := []struct {
		spec string
		n    int
		want []float64
	}{
		{"0.25", 4, []float64{0.25, 0.25, 0.25, 0.25}},
		{" 0.1, 0.2 ,0.3 ", 3, []float64{0.1, 0.2, 0.3}},
		{"*:0.05,0-1:0.2", 4, []float64{0.2, 0.2, 0.05, 0.05}},
		{"2:0.9", 4, []float64{0, 0, 0.9, 0}},
		{"0-3:0.1,2:0.5", 4, []float64{0.1, 0.1, 0.5, 0.1}},
	}
	for _, c := range cases {
		got, err := ParsePVector(c.spec, c.n)
		if err != nil {
			t.Errorf("ParsePVector(%q): %v", c.spec, err)
			continue
		}
		for i := range c.want {
			if !approx(got[i], c.want[i], 1e-15) {
				t.Errorf("ParsePVector(%q)[%d] = %g, want %g", c.spec, i, got[i], c.want[i])
			}
		}
	}
	bad := []string{"", "nope", "1.5", "0.1,0.2", "0.1,0.2,0.3,0.4", "5:0.1", "0-9:0.1", "1:NaN", "-1:0.5", "2-1:0.3", "*:2"}
	for _, spec := range bad {
		if _, err := ParsePVector(spec, 3); err == nil {
			t.Errorf("ParsePVector(%q) should fail", spec)
		}
	}
}

func TestParseDomains(t *testing.T) {
	doms, err := ParseDomains("0-3:0.05,4-7:0.05,8+12:0.2", 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(doms) != 3 {
		t.Fatalf("got %d domains, want 3", len(doms))
	}
	if len(doms[0].Members) != 4 || doms[0].P != 0.05 {
		t.Errorf("domain 0 = %+v", doms[0])
	}
	if got := doms[2].Members; len(got) != 2 || got[0] != 8 || got[1] != 12 {
		t.Errorf("domain 2 members = %v, want [8 12]", got)
	}
	single, err := ParseDomains("5:1", 6)
	if err != nil || len(single) != 1 || single[0].Members[0] != 5 {
		t.Errorf("singleton domain parse: %v %+v", err, single)
	}
	bad := []string{"", ",", "0-3", "0-3:2", "0-99:0.1", "3-1:0.1", "0+0:0.1", "x:0.1", "0:x"}
	for _, spec := range bad {
		if _, err := ParseDomains(spec, 8); err == nil {
			t.Errorf("ParseDomains(%q) should fail", spec)
		}
	}
}

// Parsed specs feed straight into the exact estimator — end-to-end
// metamorphic check: a parsed uniform spec equals scalar F_p.
func TestParsedSpecMatchesScalar(t *testing.T) {
	sys := fano(t)
	vec, err := ParsePVector("0.3", 7)
	if err != nil {
		t.Fatal(err)
	}
	viaVec, err := CrashProbabilityExactVec(sys, vec)
	if err != nil {
		t.Fatal(err)
	}
	viaScalar, err := CrashProbabilityExact(sys, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(viaVec, viaScalar, 1e-12) {
		t.Errorf("parsed uniform %g vs scalar %g", viaVec, viaScalar)
	}
}

func TestParseErrorsMentionPackage(t *testing.T) {
	// Parse errors surface on the CLI; keep them prefixed and informative.
	_, err := ParsePVector("9:0.1", 4)
	if err == nil || !strings.Contains(err.Error(), "universe") {
		t.Errorf("out-of-range error unhelpful: %v", err)
	}
}
