package measures

import "testing"

// Fuzzers for the spec parsers: whatever the input, the parsers must not
// panic, and any accepted spec must produce a model that passes
// Validate — the same contract the CLI relies on.

func FuzzParsePVector(f *testing.F) {
	for _, seed := range []string{
		"0.25", "0.1,0.2,0.3", "*:0.05,0-1:0.2", "2:0.9", "0-3:0.1,2:0.5",
		"", "nope", "1.5", "5:0.1", "1:NaN", "-1:0.5", "2-1:0.3", "*:2",
		"0.1,0.2", ",,,", "*:*", "0-:0.1", ":0.5", "1e-3", "0x1p-2",
	} {
		f.Add(seed, 4)
	}
	f.Fuzz(func(t *testing.T, spec string, n int) {
		if n < 1 || n > 64 {
			n = 8
		}
		vec, err := ParsePVector(spec, n)
		if err != nil {
			return
		}
		if len(vec) != n {
			t.Fatalf("ParsePVector(%q, %d) returned %d entries", spec, n, len(vec))
		}
		if err := (FailureModel{P: vec}).Validate(n); err != nil {
			t.Fatalf("ParsePVector(%q, %d) accepted an invalid vector: %v", spec, n, err)
		}
	})
}

func FuzzParseDomains(f *testing.F) {
	for _, seed := range []string{
		"0-3:0.05,4-7:0.05,8+12:0.2", "5:1", "0+2+4:0.5",
		"", ",", "0-3", "0-3:2", "0-99:0.1", "3-1:0.1", "0+0:0.1",
		"x:0.1", "0:x", "+:0.1", "0-0-0:0.1", "0:0.1:0.2",
	} {
		f.Add(seed, 16)
	}
	f.Fuzz(func(t *testing.T, spec string, n int) {
		if n < 1 || n > 64 {
			n = 16
		}
		doms, err := ParseDomains(spec, n)
		if err != nil {
			return
		}
		if len(doms) == 0 {
			t.Fatalf("ParseDomains(%q, %d) accepted an empty domain list", spec, n)
		}
		if err := (FailureModel{Domains: doms}).Validate(n); err != nil {
			t.Fatalf("ParseDomains(%q, %d) accepted an invalid model: %v", spec, n, err)
		}
	})
}
