package measures

// CLI parsers for the heterogeneous failure model: ParsePVector turns a
// -p-vector spec into a per-server probability vector and ParseDomains a
// -domains spec into correlated failure domains. They live next to
// FailureModel so the spec syntax and the model validate as one unit;
// the sim package's churn specs have their own parser with the same
// range syntax.

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// parseIndexRange parses "7" or "3-5" into an inclusive server index
// range — the same syntax sim.ParseServerRange accepts, duplicated here
// because measures sits below sim in the layer order.
func parseIndexRange(spec string) (lo, hi int, err error) {
	if i := strings.IndexByte(spec, '-'); i >= 0 {
		if lo, err = strconv.Atoi(spec[:i]); err != nil {
			return 0, 0, fmt.Errorf("measures: bad server range %q", spec)
		}
		if hi, err = strconv.Atoi(spec[i+1:]); err != nil {
			return 0, 0, fmt.Errorf("measures: bad server range %q", spec)
		}
		if lo < 0 || hi < lo {
			return 0, 0, fmt.Errorf("measures: bad server range %q", spec)
		}
		return lo, hi, nil
	}
	lo, err = strconv.Atoi(spec)
	if err != nil || lo < 0 {
		return 0, 0, fmt.Errorf("measures: bad server index %q", spec)
	}
	return lo, lo, nil
}

// parseProb parses a probability literal, rejecting NaN and anything
// outside [0,1].
func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("measures: bad probability %q", s)
	}
	if !(p >= 0 && p <= 1) {
		return 0, fmt.Errorf("measures: probability %g outside [0,1]", p)
	}
	return p, nil
}

// ParsePVector parses the CLI form of a per-server crash probability
// vector over an n-server universe. Three forms are accepted:
//
//	"0.1"                     — uniform: every server at 0.1
//	"0.1,0.2,0.05"            — positional: exactly n probabilities
//	"*:0.05,0-3:0.2,7:0.5"    — ranged: lo-hi:p or i:p entries over a
//	                            *:p default (0 when no * entry); later
//	                            entries override earlier ones
//
// Mixing ranged and positional entries is an error.
func ParsePVector(spec string, n int) ([]float64, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, errors.New("measures: empty p-vector spec")
	}
	if n <= 0 {
		return nil, fmt.Errorf("measures: p-vector needs a positive universe, got n=%d", n)
	}
	fields := strings.Split(spec, ",")
	ranged := strings.Contains(spec, ":")
	if !ranged && len(fields) == 1 {
		p, err := parseProb(fields[0])
		if err != nil {
			return nil, err
		}
		return UniformModel(n, p).P, nil
	}
	vec := make([]float64, n)
	if !ranged {
		if len(fields) != n {
			return nil, fmt.Errorf("measures: positional p-vector has %d entries for %d servers", len(fields), n)
		}
		for i, f := range fields {
			p, err := parseProb(f)
			if err != nil {
				return nil, fmt.Errorf("measures: p-vector entry %d: %w", i, err)
			}
			vec[i] = p
		}
		return vec, nil
	}
	for _, field := range fields {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		rangePart, probPart, ok := strings.Cut(field, ":")
		if !ok {
			return nil, fmt.Errorf("measures: p-vector entry %q is not range:probability", field)
		}
		p, err := parseProb(probPart)
		if err != nil {
			return nil, fmt.Errorf("measures: p-vector entry %q: %w", field, err)
		}
		rangePart = strings.TrimSpace(rangePart)
		if rangePart == "*" {
			for i := range vec {
				vec[i] = p
			}
			continue
		}
		lo, hi, err := parseIndexRange(rangePart)
		if err != nil {
			return nil, fmt.Errorf("measures: p-vector entry %q: %w", field, err)
		}
		if hi >= n {
			return nil, fmt.Errorf("measures: p-vector entry %q touches server %d outside universe [0,%d)", field, hi, n)
		}
		for i := lo; i <= hi; i++ {
			vec[i] = p
		}
	}
	return vec, nil
}

// ParseDomains parses the CLI form of correlated failure domains:
// comma-separated members:probability entries, where members is an
// inclusive lo-hi range, a single index, or several such pieces joined
// with '+' for non-contiguous domains. Example, over 16 servers:
//
//	"0-3:0.05,4-7:0.05,8+12:0.2"
//
// makes servers 0-3 one rack failing together with probability 0.05,
// 4-7 another, and the (non-contiguous) pair {8,12} a third domain at
// 0.2. Domains may overlap each other, but not repeat a member within
// themselves.
func ParseDomains(spec string, n int) ([]Domain, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, errors.New("measures: empty domains spec")
	}
	var domains []Domain
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		memberPart, probPart, ok := strings.Cut(field, ":")
		if !ok {
			return nil, fmt.Errorf("measures: domain entry %q is not members:probability", field)
		}
		p, err := parseProb(probPart)
		if err != nil {
			return nil, fmt.Errorf("measures: domain entry %q: %w", field, err)
		}
		var members []int
		for _, piece := range strings.Split(memberPart, "+") {
			lo, hi, err := parseIndexRange(strings.TrimSpace(piece))
			if err != nil {
				return nil, fmt.Errorf("measures: domain entry %q: %w", field, err)
			}
			if hi >= n {
				return nil, fmt.Errorf("measures: domain entry %q touches server %d outside universe [0,%d)", field, hi, n)
			}
			for s := lo; s <= hi; s++ {
				members = append(members, s)
			}
		}
		domains = append(domains, Domain{Members: members, P: p})
	}
	if len(domains) == 0 {
		return nil, errors.New("measures: domains spec has no entries")
	}
	// Validate catches duplicate members within a domain.
	if err := (FailureModel{Domains: domains}).Validate(n); err != nil {
		return nil, err
	}
	return domains, nil
}
