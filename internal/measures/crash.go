package measures

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"bqs/internal/core"
)

// MaxExactUniverse caps the universe size for exact crash-probability
// computation (2^n failure configurations are enumerated).
const MaxExactUniverse = 24

// ErrUniverseTooLarge is returned by CrashProbabilityExact when
// n > MaxExactUniverse.
var ErrUniverseTooLarge = errors.New("measures: universe too large for exact crash probability")

// CrashProbabilityExact computes F_p(Q) (Definition 3.10) exactly by
// enumerating all 2^n crash configurations. Each server crashes
// independently with probability p; the system crashes when every quorum
// contains a crashed server. It is the uniform special case of
// CrashProbabilityExactVec, which it delegates to.
func CrashProbabilityExact(sys core.Enumerable, p float64) (float64, error) {
	n := sys.UniverseSize()
	if n > MaxExactUniverse {
		return 0, fmt.Errorf("measures: n=%d: %w", n, ErrUniverseTooLarge)
	}
	if !(p >= 0 && p <= 1) {
		return 0, fmt.Errorf("measures: crash probability p=%g outside [0,1]", p)
	}
	return CrashProbabilityExactVec(sys, UniformModel(n, p).P)
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// CrashPolynomial computes the reliability structure of the system
// exactly: counts[k] is the number of k-element failure sets that kill
// every quorum, so that for any p,
//
//	F_p(Q) = Σ_k counts[k] · p^k (1−p)^{n−k}.
//
// This is the "reliability polynomial" view of Definition 3.10 [BP75] and
// gives F_p for ALL p from one enumeration. Same 2^n cost and universe
// cap as CrashProbabilityExact.
func CrashPolynomial(sys core.Enumerable) ([]float64, error) {
	n := sys.UniverseSize()
	if n > MaxExactUniverse {
		return nil, fmt.Errorf("measures: n=%d: %w", n, ErrUniverseTooLarge)
	}
	masks := quorumMasks(sys)
	counts := make([]float64, n+1)
	for dead := uint64(0); dead < 1<<uint(n); dead++ {
		if systemDead(masks, dead) {
			counts[popcount(dead)]++
		}
	}
	return counts, nil
}

// EvalCrashPolynomial evaluates Σ_k counts[k]·p^k(1−p)^{n−k}.
func EvalCrashPolynomial(counts []float64, p float64) float64 {
	n := len(counts) - 1
	total := 0.0
	for k, c := range counts {
		if c == 0 {
			continue
		}
		total += c * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
	}
	return total
}

// MCResult is a Monte Carlo estimate of the crash probability with its
// standard error.
type MCResult struct {
	Estimate float64
	StdErr   float64
	Failures int
	Trials   int
}

// CrashProbabilityMC estimates F_p(Q) by sampling crash configurations and
// asking the system for a surviving quorum. It works for implicit systems
// of any size. It is the uniform special case of CrashProbabilityMCModel,
// which it delegates to.
func CrashProbabilityMC(sys core.System, p float64, trials int, rng *rand.Rand) (MCResult, error) {
	if !(p >= 0 && p <= 1) {
		return MCResult{}, fmt.Errorf("measures: crash probability p=%g outside [0,1]", p)
	}
	return CrashProbabilityMCModel(sys, UniformModel(sys.UniverseSize(), p), trials, rng)
}

// CrashLowerBoundMT is Proposition 4.3: F_p(Q) ≥ p^MT(Q) = p^(f+1).
func CrashLowerBoundMT(mt int, p float64) float64 {
	return math.Pow(p, float64(mt))
}

// CrashLowerBoundMasking is Proposition 4.4: a b-masking system with
// smallest quorum c has F_p(Q) ≥ p^(c−2b).
func CrashLowerBoundMasking(c, b int, p float64) float64 {
	e := c - 2*b
	if e < 0 {
		e = 0
	}
	return math.Pow(p, float64(e))
}

// CrashLowerBoundB is Proposition 4.5: when MT(Q) ≤ (IS(Q)+1)/2 (true for
// all the paper's constructions), F_p(Q) ≥ p^(b+1). The condition is the
// caller's to check via Prop45Applies.
func CrashLowerBoundB(b int, p float64) float64 {
	return math.Pow(p, float64(b+1))
}

// Prop45Applies reports whether Proposition 4.5's precondition
// MT(Q) ≤ (IS(Q)+1)/2 holds.
func Prop45Applies(params core.Parameterized) bool {
	return 2*params.MinTransversal() <= params.MinIntersection()+1
}
