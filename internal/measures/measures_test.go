package measures

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"bqs/internal/bitset"
	"bqs/internal/core"
)

func explicit(t *testing.T, name string, n int, elems ...[]int) *core.ExplicitSystem {
	t.Helper()
	sets := make([]bitset.Set, len(elems))
	for i, e := range elems {
		sets[i] = bitset.FromSlice(e)
	}
	s, err := core.NewExplicit(name, n, sets)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func majority3(t *testing.T) *core.ExplicitSystem {
	return explicit(t, "maj3", 3, []int{0, 1}, []int{0, 2}, []int{1, 2})
}

func wheel5(t *testing.T) *core.ExplicitSystem {
	return explicit(t, "wheel5", 5,
		[]int{0, 1}, []int{0, 2}, []int{0, 3}, []int{0, 4}, []int{1, 2, 3, 4})
}

func fano(t *testing.T) *core.ExplicitSystem {
	return explicit(t, "fano", 7,
		[]int{0, 1, 2}, []int{0, 3, 4}, []int{0, 5, 6},
		[]int{1, 3, 5}, []int{1, 4, 6}, []int{2, 3, 6}, []int{2, 4, 5})
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLoadMajority(t *testing.T) {
	load, strat, err := Load(majority3(t))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(load, 2.0/3, 1e-9) {
		t.Errorf("load = %g, want 2/3", load)
	}
	// The optimal strategy must actually induce that load.
	if got := strat.InducedSystemLoad(majority3(t)); !approx(got, 2.0/3, 1e-9) {
		t.Errorf("strategy induces %g, want 2/3", got)
	}
}

func TestLoadWheel(t *testing.T) {
	load, _, err := Load(wheel5(t))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(load, 4.0/7, 1e-9) {
		t.Errorf("wheel load = %g, want 4/7", load)
	}
}

func TestLoadFano(t *testing.T) {
	load, _, err := Load(fano(t))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(load, 3.0/7, 1e-9) {
		t.Errorf("fano load = %g, want 3/7", load)
	}
}

func TestLoadFairMatchesLP(t *testing.T) {
	for _, sys := range []*core.ExplicitSystem{majority3(t), fano(t)} {
		viaFair, err := LoadFair(sys)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		viaLP, _, err := Load(sys)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(viaFair, viaLP, 1e-9) {
			t.Errorf("%s: fair %g vs LP %g", sys.Name(), viaFair, viaLP)
		}
	}
}

func TestLoadFairRejectsUnfair(t *testing.T) {
	if _, err := LoadFair(wheel5(t)); !errors.Is(err, ErrNotFair) {
		t.Errorf("err = %v, want ErrNotFair", err)
	}
}

func TestEmpiricalLoadMatchesUniform(t *testing.T) {
	// Majority-3 with the built-in uniform sampler: every element hit with
	// probability 2/3 per access.
	rng := rand.New(rand.NewSource(11))
	got := EmpiricalLoad(majority3(t), 50000, rng)
	if !approx(got, 2.0/3, 0.01) {
		t.Errorf("empirical load = %g, want ≈2/3", got)
	}
	if EmpiricalLoad(majority3(t), 0, rng) != 0 {
		t.Error("zero trials should return 0")
	}
}

func TestLoadLowerBoundTheorem41(t *testing.T) {
	// For the 3b+1-of-4b+1 threshold with b=1 (4-of-5): c=4, n=5, b=1.
	// Bound = max{3/4, 4/5} = 0.8 and true load = 4/5 (fair).
	if got := LoadLowerBound(5, 1, 4); !approx(got, 0.8, 1e-12) {
		t.Errorf("bound = %g, want 0.8", got)
	}
	// Corollary 4.2 is never above Theorem 4.1's bound at the optimizing c.
	for _, n := range []int{25, 100, 1024} {
		for _, b := range []int{0, 1, 3} {
			c := int(math.Sqrt(float64((2*b + 1) * n)))
			if GlobalLoadLowerBound(n, b) > LoadLowerBound(n, b, c)+1e-9 {
				t.Errorf("n=%d b=%d: global bound exceeds specific bound", n, b)
			}
		}
	}
	if LoadLowerBound(0, 1, 0) != 0 || GlobalLoadLowerBound(0, 1) != 0 {
		t.Error("degenerate inputs should produce 0")
	}
}

func TestCrashExactMajority(t *testing.T) {
	// Majority-3 crashes iff ≥ 2 of 3 crash: F_p = 3p²(1−p) + p³.
	sys := majority3(t)
	for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.9, 1} {
		want := 3*p*p*(1-p) + p*p*p
		got, err := CrashProbabilityExact(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(got, want, 1e-12) {
			t.Errorf("F_%g = %g, want %g", p, got, want)
		}
	}
}

func TestCrashExactSingleton(t *testing.T) {
	sys := explicit(t, "solo", 1, []int{0})
	got, err := CrashProbabilityExact(sys, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 0.3, 1e-12) {
		t.Errorf("singleton F_p = %g, want 0.3", got)
	}
}

func TestCrashExactValidation(t *testing.T) {
	sys := majority3(t)
	if _, err := CrashProbabilityExact(sys, -0.1); err == nil {
		t.Error("p<0 should fail")
	}
	if _, err := CrashProbabilityExact(sys, 1.1); err == nil {
		t.Error("p>1 should fail")
	}
	big := explicit(t, "big", 30, []int{0, 29})
	if _, err := CrashProbabilityExact(big, 0.5); !errors.Is(err, ErrUniverseTooLarge) {
		t.Errorf("err = %v, want ErrUniverseTooLarge", err)
	}
}

func TestCrashMCMatchesExact(t *testing.T) {
	sys := majority3(t)
	rng := rand.New(rand.NewSource(5))
	p := 0.3
	exact, _ := CrashProbabilityExact(sys, p)
	mc, err := CrashProbabilityMC(sys, p, 200000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc.Estimate-exact) > 5*mc.StdErr+1e-9 {
		t.Errorf("MC = %g ± %g, exact = %g", mc.Estimate, mc.StdErr, exact)
	}
	if mc.Trials != 200000 || mc.Failures < 0 {
		t.Error("MC bookkeeping wrong")
	}
}

func TestCrashMCValidation(t *testing.T) {
	sys := majority3(t)
	rng := rand.New(rand.NewSource(5))
	if _, err := CrashProbabilityMC(sys, 0.5, 0, rng); err == nil {
		t.Error("0 trials should fail")
	}
	if _, err := CrashProbabilityMC(sys, -1, 10, rng); err == nil {
		t.Error("bad p should fail")
	}
}

func TestCrashLowerBoundsHold(t *testing.T) {
	// Majority-3: MT = 2, c = 2, b = 0, IS = 1. Prop 4.3: F_p ≥ p².
	sys := majority3(t)
	for _, p := range []float64{0.1, 0.3, 0.5} {
		fp, _ := CrashProbabilityExact(sys, p)
		if fp < CrashLowerBoundMT(sys.MinTransversal(), p)-1e-12 {
			t.Errorf("Prop 4.3 violated at p=%g", p)
		}
		if fp < CrashLowerBoundMasking(sys.MinQuorumSize(), sys.MaskingBound(), p)-1e-12 {
			t.Errorf("Prop 4.4 violated at p=%g", p)
		}
		if Prop45Applies(sys) {
			if fp < CrashLowerBoundB(sys.MaskingBound(), p)-1e-12 {
				t.Errorf("Prop 4.5 violated at p=%g", p)
			}
		}
	}
}

func TestProp45Precondition(t *testing.T) {
	// Majority-3: MT=2, IS=1 → 4 ≤ 2 false.
	if Prop45Applies(majority3(t)) {
		t.Error("Prop 4.5 should not apply to majority-3")
	}
}

func TestCondorcetBehaviorOfMajority(t *testing.T) {
	// The Condorcet Jury Theorem shape (Section 3.2.2): majority systems
	// have F_p → 0 for p < 1/2 and → 1 for p > 1/2 as n grows.
	build := func(n int) *core.ExplicitSystem {
		k := n/2 + 1
		var quorums []bitset.Set
		// Enumerate all k-subsets via recursion over bitmasks (n small).
		for mask := 0; mask < 1<<uint(n); mask++ {
			if popcount(uint64(mask)) == k {
				q := bitset.New(n)
				for i := 0; i < n; i++ {
					if mask&(1<<uint(i)) != 0 {
						q.Add(i)
					}
				}
				quorums = append(quorums, q)
			}
		}
		s, err := core.NewExplicit("maj", n, quorums)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	pLow, pHigh := 0.3, 0.7
	var prevLow, prevHigh float64
	for i, n := range []int{3, 7, 11} {
		low, _ := CrashProbabilityExact(build(n), pLow)
		high, _ := CrashProbabilityExact(build(n), pHigh)
		if i > 0 {
			if low >= prevLow {
				t.Errorf("F_%g not decreasing in n: %g → %g", pLow, prevLow, low)
			}
			if high <= prevHigh {
				t.Errorf("F_%g not increasing in n: %g → %g", pHigh, prevHigh, high)
			}
		}
		prevLow, prevHigh = low, high
	}
}

func TestCrashPolynomialLocal(t *testing.T) {
	sys := majority3(t)
	counts, err := CrashPolynomial(sys)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 3, 1}
	for k, c := range counts {
		if c != want[k] {
			t.Errorf("N_%d = %g, want %g", k, c, want[k])
		}
	}
	for _, p := range []float64{0.15, 0.5, 0.85} {
		direct, err := CrashProbabilityExact(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		if got := EvalCrashPolynomial(counts, p); math.Abs(got-direct) > 1e-12 {
			t.Errorf("poly(%g) = %g, direct %g", p, got, direct)
		}
	}
	big := explicit(t, "big", 30, []int{0, 29})
	if _, err := CrashPolynomial(big); !errors.Is(err, ErrUniverseTooLarge) {
		t.Errorf("err = %v, want ErrUniverseTooLarge", err)
	}
}

func TestCrashPolynomialSingleQuorum(t *testing.T) {
	// A single quorum of size k dies iff any of its k members dies:
	// N_j counts subsets hitting the quorum.
	sys := explicit(t, "solo", 4, []int{0, 1})
	counts, err := CrashPolynomial(sys)
	if err != nil {
		t.Fatal(err)
	}
	// Killing sets = subsets of {0..3} that intersect {0,1}:
	// size1: 2, size2: 5 (all C(4,2)=6 minus {2,3}), size3: 4, size4: 1.
	want := []float64{0, 2, 5, 4, 1}
	for k, c := range counts {
		if c != want[k] {
			t.Errorf("N_%d = %g, want %g", k, c, want[k])
		}
	}
}
