// Package measures computes the two quality measures the paper studies:
// the load L(Q) of Definition 3.8 and the crash probability F_p(Q) of
// Definition 3.10, together with the lower bounds of Theorem 4.1,
// Corollary 4.2 and Propositions 4.3–4.5 that the constructions are
// benchmarked against.
package measures

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"bqs/internal/core"
	"bqs/internal/lp"
)

// ErrNotFair is returned by LoadFair for systems that are not (s,d)-fair.
var ErrNotFair = errors.New("measures: system is not fair")

// Load computes the exact system load L(Q) = min_w max_u l_w(u) of an
// explicit quorum system by solving the Definition 3.8 linear program, and
// returns an optimal access strategy alongside.
func Load(sys core.Enumerable) (float64, *core.Strategy, error) {
	quorums := sys.Quorums()
	m := len(quorums)
	n := sys.UniverseSize()

	// Variables: w_0..w_{m-1}, then t. Minimize t.
	obj := make([]float64, m+1)
	obj[m] = 1
	constraints := make([]lp.Constraint, 0, n+1)

	sumRow := make([]float64, m+1)
	for j := 0; j < m; j++ {
		sumRow[j] = 1
	}
	constraints = append(constraints, lp.Constraint{Coeffs: sumRow, Sense: lp.EQ, RHS: 1})

	for u := 0; u < n; u++ {
		row := make([]float64, m+1)
		touched := false
		for j, q := range quorums {
			if q.Contains(u) {
				row[j] = 1
				touched = true
			}
		}
		if !touched {
			continue // element in no quorum never carries load
		}
		row[m] = -1
		constraints = append(constraints, lp.Constraint{Coeffs: row, Sense: lp.LE, RHS: 0})
	}

	sol, err := lp.Solve(&lp.Problem{NumVars: m + 1, Objective: obj, Constraint: constraints})
	if err != nil {
		return 0, nil, fmt.Errorf("measures: load LP: %w", err)
	}
	strategy, err := core.NewStrategy(sol.X[:m])
	if err != nil {
		return 0, nil, fmt.Errorf("measures: LP produced invalid strategy: %w", err)
	}
	return sol.Value, strategy, nil
}

// LoadFair applies Proposition 3.9: for an (s,d)-fair system,
// L(Q) = c(Q)/n. It returns ErrNotFair when the precondition fails.
func LoadFair(sys *core.ExplicitSystem) (float64, error) {
	size, _, fair := sys.IsFair()
	if !fair {
		return 0, fmt.Errorf("measures: %s: %w", sys.Name(), ErrNotFair)
	}
	return float64(size) / float64(sys.UniverseSize()), nil
}

// EmpiricalLoad estimates the load induced by the system's built-in access
// strategy: it samples quorums and reports the access frequency of the
// busiest element. For a load-optimal strategy this converges to L(Q).
func EmpiricalLoad(sys core.Sampler, trials int, rng *rand.Rand) float64 {
	if trials <= 0 {
		return 0
	}
	counts := make([]int, sys.UniverseSize())
	for i := 0; i < trials; i++ {
		q := sys.SampleQuorum(rng)
		q.Range(func(u int) bool {
			counts[u]++
			return true
		})
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return float64(max) / float64(trials)
}

// LoadLowerBound is Theorem 4.1: every b-masking quorum system with
// smallest quorum c over n servers has L(Q) ≥ max{(2b+1)/c, c/n}.
func LoadLowerBound(n, b, c int) float64 {
	if c <= 0 || n <= 0 {
		return 0
	}
	byIntersection := float64(2*b+1) / float64(c)
	byQuorumSize := float64(c) / float64(n)
	return math.Max(byIntersection, byQuorumSize)
}

// GlobalLoadLowerBound is Corollary 4.2: L(Q) ≥ √((2b+1)/n) for every
// b-masking quorum system over n servers, regardless of quorum size.
func GlobalLoadLowerBound(n, b int) float64 {
	if n <= 0 {
		return 0
	}
	return math.Sqrt(float64(2*b+1) / float64(n))
}
