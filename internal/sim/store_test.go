package sim

import (
	"fmt"
	"path/filepath"
	"testing"

	"bqs/internal/store"
	"bqs/internal/systems"
)

func TestServerPersistsBeforeAck(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.WithFsync(false))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := NewServer(3, WithStore(st))
	if !s.HandleWrite("obj", TaggedValue{Value: "v1", TS: Timestamp{Seq: 5, Writer: 1}}) {
		t.Fatal("write refused")
	}
	rec, ok := st.Get("obj")
	if !ok || rec.Value != "v1" || rec.Seq != 5 || rec.Writer != 1 {
		t.Fatalf("store after acked write: %+v (ok=%v)", rec, ok)
	}
	// A write the store refuses must not be acknowledged: durability
	// unknown reads as unresponsiveness.
	st.Close()
	if s.HandleWrite("obj", TaggedValue{Value: "v2", TS: Timestamp{Seq: 6}}) {
		t.Fatal("write acked after its store closed")
	}
	if s.SnapshotKey("obj").Value != "v1" {
		t.Fatal("unacked write became visible")
	}
}

func TestServerRestartSemantics(t *testing.T) {
	tv := TaggedValue{Value: "survivor", TS: Timestamp{Seq: 9, Writer: 2}}

	t.Run("durable", func(t *testing.T) {
		st, err := store.Open(t.TempDir(), store.WithFsync(false))
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		s := NewServer(0, WithStore(st))
		s.HandleWrite("obj", tv)
		s.SetBehavior(Crashed)
		s.SetBehavior(Restart)
		if got := s.Behavior(); got != Correct {
			t.Fatalf("behavior after restart: %v", got)
		}
		if got := s.SnapshotKey("obj"); got != tv {
			t.Fatalf("durable server lost state across restart: %+v", got)
		}
		got, ok := s.HandleRead(1, "obj")
		if !ok || got != tv {
			t.Fatalf("read after restart: %+v (ok=%v)", got, ok)
		}
	})

	t.Run("memory-only", func(t *testing.T) {
		s := NewServer(0)
		s.HandleWrite("obj", tv)
		s.SetBehavior(Restart)
		if got := s.SnapshotKey("obj"); got.Value != "" {
			t.Fatalf("restart without a store kept state: %+v", got)
		}
		if got := s.Behavior(); got != Correct {
			t.Fatalf("behavior after restart: %v", got)
		}
	})

	t.Run("mem store", func(t *testing.T) {
		s := NewServer(0, WithStore(store.NewMem()))
		s.HandleWrite("obj", tv)
		s.SetBehavior(Restart)
		if got := s.SnapshotKey("obj"); got.Value != "" {
			t.Fatalf("Mem engine survived its crash boundary: %+v", got)
		}
	})
}

// TestServerStartupRecovery pins the bqs-server startup path: a fresh
// Server handed a store opened on an existing data dir serves the
// recovered state.
func TestServerStartupRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.WithFsync(false))
	if err != nil {
		t.Fatal(err)
	}
	old := NewServer(0, WithStore(st))
	old.HandleWrite("obj", TaggedValue{Value: "persisted", TS: Timestamp{Seq: 3, Writer: 1}})
	st.Close() // abandon without snapshotting: recovery replays the WAL

	st2, err := store.Open(dir, store.WithFsync(false))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s := NewServer(0, WithStore(st2))
	got, ok := s.HandleRead(1, "obj")
	if !ok || got.Value != "persisted" || got.TS.Seq != 3 {
		t.Fatalf("fresh server on recovered store read %+v (ok=%v)", got, ok)
	}
}

// TestClusterRestartChurnDurable runs the full protocol across restarts:
// with durable stores, killing and recovering every server must preserve
// written values end to end; with amnesiac restarts the registers drain
// but safety (the protocol's re-vouching) still holds.
func TestClusterRestartChurnDurable(t *testing.T) {
	sys, err := systems.NewMaskingThreshold(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	c, err := NewCluster(sys, 2, WithSeed(11), WithStores(func(id int) (store.Store, error) {
		return store.Open(filepath.Join(dir, fmt.Sprintf("server-%04d", id)), store.WithFsync(false))
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	w := c.NewClient(1)
	if err := w.WriteKey(ctx, "obj", "before-restart"); err != nil {
		t.Fatal(err)
	}
	// Kill-and-recover every server, one at a time (never more than one
	// down, so the quorum system stays available throughout).
	for i := range c.N() {
		if err := c.InjectFault(Restart, i); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.NewClient(2).ReadKey(ctx, "obj")
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != "before-restart" {
		t.Fatalf("read %q after full rolling restart, want before-restart", got.Value)
	}
}

func TestChurnRecoverRestartSchedule(t *testing.T) {
	cc := ChurnConfig{MTBF: 50, MTTR: 50, Recover: Restart}
	s, err := cc.Schedule(4, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	var downs, restarts, corrects int
	for _, e := range s.Events() {
		switch e.Behavior {
		case Crashed:
			downs++
		case Restart:
			restarts++
		case Correct:
			corrects++
		}
	}
	if downs == 0 || restarts == 0 || corrects != 0 {
		t.Fatalf("recover=restart schedule has %d downs, %d restarts, %d plain recoveries", downs, restarts, corrects)
	}

	if _, err := (ChurnConfig{MTBF: 50, MTTR: 50, Recover: ByzantineStale}).Schedule(4, 1000, 1); err == nil {
		t.Fatal("recover behavior other than correct/restart accepted")
	}
	if _, err := (ChurnConfig{MTBF: 50, MTTR: 50, Down: Restart}).Schedule(4, 1000, 1); err == nil {
		t.Fatal("down=restart accepted; restart is a recovery transition")
	}
}

func TestParseChurnRecover(t *testing.T) {
	cc, err := ParseChurn("mtbf=300ms,mttr=100ms,recover=restart")
	if err != nil {
		t.Fatal(err)
	}
	if cc.Recover != Restart {
		t.Fatalf("Recover = %v, want Restart", cc.Recover)
	}
	if _, err := ParseChurn("mtbf=300ms,mttr=100ms,recover=bogus"); err == nil {
		t.Fatal("bad recover value accepted")
	}
}

func TestParseBehaviorRestart(t *testing.T) {
	b, err := ParseBehavior("restart")
	if err != nil || b != Restart {
		t.Fatalf("ParseBehavior(restart) = %v, %v", b, err)
	}
	if !KnownBehavior(Restart) {
		t.Fatal("Restart not a known behavior")
	}
	if Restart.String() != "restart" {
		t.Fatalf("Restart.String() = %q", Restart.String())
	}
	if Restart.IsByzantine() {
		t.Fatal("Restart classified Byzantine")
	}
}
