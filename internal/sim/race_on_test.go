//go:build race

package sim

// raceEnabled reports whether the race detector instruments this build;
// timing-gauge tests skip under it, because its synchronization overhead
// penalizes concurrency itself and inverts the economics they measure.
const raceEnabled = true
