package sim

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"bqs/internal/bitset"
)

// clientCore is the per-client state both protocol clients share —
// Client (masking) and DisseminationClient (self-verifying data) embed
// it. The mutex guards only the rng, the suspicion set and the per-key
// sequence floors, so operations on one client genuinely overlap; the
// invariants enforced here (per-server suspicion bookkeeping, distinct
// timestamps for concurrent same-key writes) exist once, not once per
// protocol.
type clientCore struct {
	id      int
	cluster *Cluster

	mu        sync.Mutex
	rng       *rand.Rand
	epoch     uint64           // epoch the suspicion state is sized for
	suspected *suspicion       // servers observed unresponsive, with ages
	lastSeq   map[string]int64 // per-key floor so concurrent same-client writes get distinct timestamps
}

func newClientCore(c *Cluster, id int) clientCore {
	return clientCore{
		id:        id,
		cluster:   c,
		rng:       c.clientRNG(id),
		suspected: newSuspicion(c.N()),
		lastSeq:   make(map[string]int64),
	}
}

// pickQuorumTTL picks a quorum avoiding suspects — through the cluster's
// picker, so selection follows the installed access strategy when one is
// configured. Rehabilitation is per-server (see suspicion): suspects
// older than ttl are optimistically forgiven, and when suspicion
// exhausts the quorum space each suspect is probed once and only the
// responders readmitted — a genuinely dead server stays suspected, and
// if no suspect responds the error wraps ErrNoLiveQuorum: the system has
// crashed (Definition 3.10) as far as this client can see.
func (cc *clientCore) pickQuorumTTL(ctx context.Context, ttl time.Duration) (bitset.Set, error) {
	m := &cc.cluster.met
	var start time.Time
	if m.on {
		start = time.Now()
	}
	cc.mu.Lock()
	// A reconfiguration changes the universe the suspicion set indexes;
	// on the first pick of a new epoch the detector restarts empty,
	// sized for the new fleet (old suspicions name old-epoch ids).
	if st := cc.cluster.cur.Load(); st.epoch != cc.epoch {
		cc.epoch = st.epoch
		cc.suspected = newSuspicion(st.system.UniverseSize())
	}
	cc.suspected.ttl = ttl
	q, err := cc.cluster.pickQuorum(ctx, cc.rng, cc.suspected, cc.id)
	cc.mu.Unlock()
	if m.on {
		m.pickSeconds.ObserveDuration(time.Since(start))
	}
	return q, err
}

// noteReplies records unresponsive quorum members in the client's
// suspicion state and reports whether the whole quorum answered.
func (cc *clientCore) noteReplies(replies map[int]Response) bool {
	ok := true
	var fresh int64
	cc.mu.Lock()
	for id, resp := range replies {
		if !resp.OK {
			if cc.suspected.suspect(id) {
				fresh++
			}
			ok = false
		}
	}
	cc.mu.Unlock()
	if fresh > 0 {
		cc.cluster.met.suspicions.Add(fresh)
	}
	return ok
}

// nextTS mints the write timestamp: one past the largest timestamp
// observed in phase 1, bumped past every timestamp this client already
// minted for the key. The floor is what keeps CONCURRENT writes by one
// client to one key from colliding — both may observe the same quorum
// maximum, and (Seq, Writer) pairs must stay unique per value or the
// vouching rules could count votes for two different values under one
// timestamp.
func (cc *clientCore) nextTS(key string, observed Timestamp) Timestamp {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	seq := observed.Seq + 1
	if floor := cc.lastSeq[key]; seq <= floor {
		seq = floor + 1
	}
	cc.lastSeq[key] = seq
	return Timestamp{Seq: seq, Writer: cc.id}
}
