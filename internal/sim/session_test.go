package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bqs/internal/systems"
)

func newMGridCluster(t *testing.T, opts ...Option) *Cluster {
	t.Helper()
	sys, err := systems.NewMGrid(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(sys, 1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSessionKeyedConcurrent is the race-clean core of the keyed data
// plane: many sessions pipeline keyed reads and writes concurrently with
// a Byzantine fabricator inside the masking bound, and every read
// returns exactly what its own key holds — never another key's value,
// never a fabrication.
func TestSessionKeyedConcurrent(t *testing.T) {
	c := newMGridCluster(t, WithSeed(11))
	if err := c.InjectFault(ByzantineFabricate, 6); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const clients, keysPer, rounds = 8, 4, 5
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sess := c.NewClient(id).NewSession(WithSessionBatch(8))
			defer sess.Close()
			for r := 0; r < rounds; r++ {
				writes := make([]*WriteFuture, keysPer)
				for k := 0; k < keysPer; k++ {
					writes[k] = sess.WriteAsync(ctx, fmt.Sprintf("c%d/k%d", id, k), fmt.Sprintf("v%d-%d-%d", id, k, r))
				}
				for k, f := range writes {
					if err := f.Wait(); err != nil {
						t.Errorf("client %d write k%d round %d: %v", id, k, r, err)
						return
					}
				}
				reads := make([]*ReadFuture, keysPer)
				for k := 0; k < keysPer; k++ {
					reads[k] = sess.ReadAsync(ctx, fmt.Sprintf("c%d/k%d", id, k))
				}
				for k, f := range reads {
					tv, err := f.Wait()
					if err != nil {
						t.Errorf("client %d read k%d round %d: %v", id, k, r, err)
						return
					}
					if want := fmt.Sprintf("v%d-%d-%d", id, k, r); tv.Value != want {
						t.Errorf("client %d key k%d round %d: got %q want %q", id, k, r, tv.Value, want)
						return
					}
				}
			}
		}(id)
	}
	wg.Wait()
}

// TestSessionZipfLoadConvergence is the acceptance check for the keyed
// data plane's load story: with the LP-optimal strategy installed, a
// batched session workload over a HEAVILY skewed key space (zipf 1.1 —
// the hottest key absorbs a large fraction of operations) still measures
// peak per-server load within ±10% of the LP L(Q). The paper's load
// (Definition 3.8) counts quorum accesses, and quorum selection never
// looks at the key, so skew in the object space must not leak into the
// server load profile.
func TestSessionZipfLoadConvergence(t *testing.T) {
	c := newMGridCluster(t, WithSeed(3), WithOptimalStrategy())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const clients, ops, keys = 8, 300, 64
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 100))
			zipf := rand.NewZipf(rng, 1.1, 1, keys-1)
			sess := c.NewClient(id).NewSession(WithSessionBatch(16))
			defer sess.Close()
			for issued := 0; issued < ops; {
				n := 16
				if ops-issued < n {
					n = ops - issued
				}
				wfs := make([]*WriteFuture, 0, n)
				rfs := make([]*ReadFuture, 0, n)
				for j := 0; j < n; j++ {
					key := fmt.Sprintf("k%04d", zipf.Uint64())
					if (id+issued+j)%2 == 0 {
						wfs = append(wfs, sess.WriteAsync(ctx, key, fmt.Sprintf("c%d-%d", id, issued+j)))
					} else {
						rfs = append(rfs, sess.ReadAsync(ctx, key))
					}
				}
				issued += n
				for _, f := range wfs {
					if err := f.Wait(); err != nil {
						t.Errorf("client %d write: %v", id, err)
						return
					}
				}
				for _, f := range rfs {
					if _, err := f.Wait(); err != nil && !errors.Is(err, ErrNoCandidate) {
						t.Errorf("client %d read: %v", id, err)
						return
					}
				}
			}
		}(id)
	}
	wg.Wait()

	peak, lw := c.PeakLoad(), c.StrategyLoad()
	if math.IsNaN(lw) || lw <= 0 {
		t.Fatalf("strategy load not installed: %v", lw)
	}
	if dev := peak/lw - 1; math.Abs(dev) > 0.10 {
		t.Errorf("measured peak load %.4f is %+.1f%% from LP L(Q)=%.4f under zipf:1.1 skew (want within ±10%%)",
			peak, 100*dev, lw)
	}
}

// TestSessionBatcherCoalesces pins the batching mechanics: concurrently
// issued operations put multiple probes into single transport frames,
// and every probe is accounted — no frame carries more or fewer items
// than were enqueued.
func TestSessionBatcherCoalesces(t *testing.T) {
	var frames, items, maxBatch atomic.Int64
	c := newMGridCluster(t, WithSeed(5), WithTransport(func(servers []*Server) Transport {
		return &countingBatchTransport{inner: NewInMemoryTransport(servers, 1).(*memTransport),
			frames: &frames, items: &items, maxBatch: &maxBatch}
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	sess := c.NewClient(1).NewSession(WithSessionBatch(8), WithSessionLinger(50*time.Millisecond))
	defer sess.Close()
	futures := make([]*ReadFuture, 8)
	for i := range futures {
		futures[i] = sess.ReadAsync(ctx, fmt.Sprintf("k%d", i))
	}
	for i, f := range futures {
		if _, err := f.Wait(); err != nil && !errors.Is(err, ErrNoCandidate) {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if maxBatch.Load() < 2 {
		t.Errorf("8 concurrent session reads never shared a frame (max batch %d)", maxBatch.Load())
	}
	if frames.Load() >= items.Load() {
		t.Errorf("batching sent %d frames for %d probes — no coalescing at all", frames.Load(), items.Load())
	}
}

// countingBatchTransport wraps the in-memory transport, tallying frames
// and items.
type countingBatchTransport struct {
	inner                   *memTransport
	frames, items, maxBatch *atomic.Int64
}

func (t *countingBatchTransport) Invoke(ctx context.Context, server int, req Request) (Response, error) {
	t.frames.Add(1)
	t.items.Add(1)
	return t.inner.Invoke(ctx, server, req)
}

func (t *countingBatchTransport) InvokeBatch(ctx context.Context, batch []BatchItem) ([]Response, error) {
	t.frames.Add(1)
	t.items.Add(int64(len(batch)))
	for {
		cur := t.maxBatch.Load()
		if int64(len(batch)) <= cur || t.maxBatch.CompareAndSwap(cur, int64(len(batch))) {
			break
		}
	}
	return t.inner.InvokeBatch(ctx, batch)
}

// TestSessionLoadAccounting verifies batched probes feed the load
// profile exactly like unbatched ones: same workload, batched and not,
// same access totals.
func TestSessionLoadAccounting(t *testing.T) {
	run := func(batch int) []float64 {
		c := newMGridCluster(t, WithSeed(9))
		ctx := context.Background()
		sess := c.NewClient(1).NewSession(WithSessionBatch(batch))
		defer sess.Close()
		for i := 0; i < 10; i++ {
			if err := sess.Write(ctx, fmt.Sprintf("k%d", i%3), "v"); err != nil {
				t.Fatal(err)
			}
		}
		return c.LoadProfile()
	}
	// Sequential session ops are deterministic for a fixed seed, so the
	// profiles must be identical probe for probe.
	batched, unbatched := run(8), run(1)
	for i := range batched {
		if batched[i] != unbatched[i] {
			t.Fatalf("load profile diverges at server %d: batched %v vs unbatched %v", i, batched[i], unbatched[i])
		}
	}
}

// TestSessionClosed pins the Close contract: idempotent, and operations
// after Close fail with ErrSessionClosed without touching the cluster.
func TestSessionClosed(t *testing.T) {
	c := newMGridCluster(t, WithSeed(1))
	sess := c.NewClient(1).NewSession()
	ctx := context.Background()
	if err := sess.Write(ctx, "k", "v"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
	if _, err := sess.ReadAsync(ctx, "k").Wait(); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("read after Close: %v, want ErrSessionClosed", err)
	}
	if err := sess.WriteAsync(ctx, "k", "v").Wait(); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("write after Close: %v, want ErrSessionClosed", err)
	}
}

// TestKeyIsolation pins per-key register independence: writes land on
// their own key's register and timestamps advance per key.
func TestKeyIsolation(t *testing.T) {
	c := newMGridCluster(t, WithSeed(2))
	ctx := context.Background()
	cl := c.NewClient(1)
	if err := cl.WriteKey(ctx, "a", "va"); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteKey(ctx, "b", "vb"); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteKey(ctx, "a", "va2"); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadKey(ctx, "a")
	if err != nil || got.Value != "va2" {
		t.Fatalf("read a: %+v, %v", got, err)
	}
	got, err = cl.ReadKey(ctx, "b")
	if err != nil || got.Value != "vb" {
		t.Fatalf("read b: %+v, %v", got, err)
	}
	// The DefaultKey register is untouched by keyed traffic.
	got, err = cl.Read(ctx)
	if err != nil || got.Value != "" {
		t.Fatalf("default register should be empty: %+v, %v", got, err)
	}
	// Per-key timestamps are independent histories: the second write to
	// "a" advanced only "a"'s clock.
	for i := 0; i < c.N(); i++ {
		if tv := c.Server(i).SnapshotKey("b"); tv.Value == "vb" && tv.TS.Seq != 1 {
			t.Fatalf("key b's timestamp advanced with key a's writes: %+v", tv)
		}
	}
}

// TestNextTSConcurrentWritersDistinct pins the per-key sequence floor:
// concurrent writes by ONE client to ONE key must mint strictly distinct
// timestamps even when both observed the same quorum maximum, or two
// different values could collect votes under one (Seq, Writer) identity.
func TestNextTSConcurrentWritersDistinct(t *testing.T) {
	c := newMGridCluster(t, WithSeed(4))
	cl := c.NewClient(1)
	const writers = 64
	var wg sync.WaitGroup
	out := make([]Timestamp, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = cl.nextTS("hot", Timestamp{Seq: 17, Writer: 9}) // all observe the same max
		}(i)
	}
	wg.Wait()
	seen := make(map[Timestamp]bool, writers)
	for _, ts := range out {
		if seen[ts] {
			t.Fatalf("duplicate timestamp %+v minted for concurrent writes", ts)
		}
		seen[ts] = true
		if ts.Seq <= 17 {
			t.Fatalf("timestamp %+v not past the observed maximum", ts)
		}
	}
}

// TestAuthenticatorKeyBinding pins the dissemination signature binding:
// a value signed for one key must not verify for another, or a
// Byzantine server could replay key A's signed state as an answer about
// key B.
func TestAuthenticatorKeyBinding(t *testing.T) {
	auth := NewAuthenticator()
	tv := TaggedValue{Value: "signed", TS: Timestamp{Seq: 3, Writer: 1}}
	auth.Sign("a", tv)
	if !auth.Verify("a", tv) {
		t.Fatal("signed value fails verification under its own key")
	}
	if auth.Verify("b", tv) {
		t.Fatal("value signed for key a verifies for key b (cross-key replay)")
	}
}

// TestDisseminationSessionKeyed runs the dissemination protocol's keyed
// session path end to end on a b+1-intersecting threshold system.
func TestDisseminationSessionKeyed(t *testing.T) {
	sys, err := systems.NewDisseminationThreshold(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(sys, 0, WithSeed(6)) // dissemination masks via signatures, not b+1 votes
	if err != nil {
		t.Fatal(err)
	}
	auth := NewAuthenticator()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	sess := c.NewDisseminationClient(1, auth).NewSession(WithSessionBatch(4))
	defer sess.Close()
	writes := make([]*WriteFuture, 4)
	for k := range writes {
		writes[k] = sess.WriteAsync(ctx, fmt.Sprintf("d/k%d", k), fmt.Sprintf("dv%d", k))
	}
	for k, f := range writes {
		if err := f.Wait(); err != nil {
			t.Fatalf("write k%d: %v", k, err)
		}
	}
	for k := 0; k < 4; k++ {
		tv, err := sess.Read(ctx, fmt.Sprintf("d/k%d", k))
		if err != nil {
			t.Fatalf("read k%d: %v", k, err)
		}
		if want := fmt.Sprintf("dv%d", k); tv.Value != want {
			t.Fatalf("key d/k%d: got %q want %q", k, tv.Value, want)
		}
	}
}
