package sim

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"bqs/internal/core"
	"bqs/internal/reconfig"
)

// epochState is everything about a Cluster that one reconfiguration
// epoch owns: the quorum system, the servers it spans, the picker and
// strategy that select quorums from it, the load accounting measured
// against it, and the drain gate that empties it before a cutover.
// The Cluster holds the current epoch behind one atomic pointer; an
// operation runs entirely inside the epoch it entered (the drain gate
// guarantees no operation straddles a cutover), so everything here is
// read without locks on the hot path.
type epochState struct {
	epoch  uint64
	rec    reconfig.Record // the installed record; zero-valued at boot (epoch 0)
	system core.System
	b      int

	servers   []*Server
	picker    core.Picker
	strategy  *core.Strategy // nil under uniform selection
	stratLoad float64        // L_w(Q) of strategy; NaN under uniform selection

	// Empirical load accounting, per epoch so the measured load after a
	// resize converges to the NEW system's L(Q) instead of averaging two
	// epochs' traffic: phases counts quorum accesses, accesses[i] probes
	// that reached server i.
	phases   atomic.Int64
	accesses []atomic.Int64

	// Drain gate. ops counts client operations currently inside this
	// epoch. A reconfiguration sets draining and waits for ops to reach
	// zero; entering operations that observe draining back out and park
	// on gate() until the epoch resolves. On a successful cutover
	// draining stays set forever and the gate closes — late entrants
	// retry and land on the new epoch. On an abort draining clears and
	// the gate is closed-and-replaced, waking entrants back into this
	// epoch. Plain atomics (sequentially consistent in Go) make the
	// enter/drain handshake race-free: an entrant increments ops before
	// checking draining, the drainer sets draining before polling ops,
	// so either the entrant sees the drain or the drainer sees the op.
	ops      atomic.Int64
	draining atomic.Bool
	gateMu   sync.Mutex
	gateCh   chan struct{}
}

// newEpochState wires the drain gate; callers fill the configuration.
func newEpochState() *epochState {
	return &epochState{gateCh: make(chan struct{})}
}

// gate returns the channel a parked entrant waits on.
func (st *epochState) gate() <-chan struct{} {
	st.gateMu.Lock()
	defer st.gateMu.Unlock()
	return st.gateCh
}

// release closes the gate, waking every parked entrant. With replace,
// a fresh gate is installed for the next drain attempt (the abort
// path); without, the epoch is retired and the gate stays closed.
func (st *epochState) release(replace bool) {
	st.gateMu.Lock()
	defer st.gateMu.Unlock()
	close(st.gateCh)
	if replace {
		st.gateCh = make(chan struct{})
	}
}

// exit retires one operation from the epoch.
func (st *epochState) exit() { st.ops.Add(-1) }

// enterOp admits one client operation into the current epoch, parking
// it while a drain is in progress, and returns the epoch it entered.
// Callers MUST st.exit() when the operation completes — the drain gate
// counts on it.
func (c *Cluster) enterOp(ctx context.Context) (*epochState, error) {
	for {
		st := c.cur.Load()
		st.ops.Add(1)
		if !st.draining.Load() {
			return st, nil
		}
		st.ops.Add(-1)
		select {
		case <-st.gate():
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// drain parks new entrants and waits until every in-flight operation of
// the epoch has exited, polling the op counter (bounded by ctx — the
// caller aborts the reconfiguration on expiry). The returned duration
// is how long the quiesce took.
func (st *epochState) drain(ctx context.Context) (time.Duration, error) {
	start := time.Now()
	st.draining.Store(true)
	for st.ops.Load() != 0 {
		select {
		case <-ctx.Done():
			return time.Since(start), ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
	}
	return time.Since(start), nil
}

// abortDrain reopens the epoch after a failed reconfiguration: clear
// draining first, then cycle the gate so parked entrants re-check it.
func (st *epochState) abortDrain() {
	st.draining.Store(false)
	st.release(true)
}

// retiredTotals carries the load counters of all retired epochs, so the
// telemetry counters (bqs_cluster_phases_total,
// bqs_server_accesses_total) stay monotonic across cutovers even though
// each epoch's own accounting restarts at zero.
type retiredTotals struct {
	phases   int64
	accesses []int64
}
