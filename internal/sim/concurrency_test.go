package sim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bqs/internal/systems"
)

// TestConcurrentClientsStress drives ≥ 64 concurrent clients of mixed
// reads and writes against a cluster with exactly b Byzantine fabricators
// and checks the masking guarantee holds under contention: no read ever
// surfaces a fabricated value. Run with -race; the engine must be clean.
func TestConcurrentClientsStress(t *testing.T) {
	const (
		clients = 64
		ops     = 24
		b       = 3
	)
	sys, err := systems.NewMaskingThreshold(4*b+1, b)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(sys, b, WithSeed(101))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InjectFault(ByzantineFabricate, 0, 5, 9); err != nil { // exactly b
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var reads, writes, noCandidate atomic.Int64
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := c.NewClient(id)
			for op := 0; op < ops; op++ {
				if (id+op)%2 == 0 {
					if err := cl.Write(ctx, fmt.Sprintf("c%d-op%d", id, op)); err != nil {
						t.Errorf("client %d write %d: %v", id, op, err)
						return
					}
					writes.Add(1)
					continue
				}
				got, err := cl.Read(ctx)
				switch {
				case errors.Is(err, ErrNoCandidate):
					// Legitimate under concurrency: a read overlapping a
					// write in progress may find no value vouched b+1 times.
					noCandidate.Add(1)
				case err != nil:
					t.Errorf("client %d read %d: %v", id, op, err)
					return
				case strings.HasPrefix(got.Value, FabricatedValue):
					t.Errorf("client %d read fabricated value %q with only b=%d fabricators", id, got.Value, b)
					return
				case got.Value != "" && !strings.HasPrefix(got.Value, "c"):
					t.Errorf("client %d read unknown value %q", id, got.Value)
					return
				default:
					reads.Add(1)
				}
			}
		}(id)
	}
	wg.Wait()
	if reads.Load() == 0 || writes.Load() == 0 {
		t.Fatalf("degenerate workload: %d reads, %d writes", reads.Load(), writes.Load())
	}
	t.Logf("stress: %d reads, %d writes, %d no-candidate retries", reads.Load(), writes.Load(), noCandidate.Load())
}

// TestConcurrentDisseminationClients gives the second protocol the same
// -race workout: concurrent signed writers and readers must only ever
// observe verified values.
func TestConcurrentDisseminationClients(t *testing.T) {
	const b = 2
	sys, err := systems.NewDisseminationThreshold(3*b+1, b)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(sys, 0, WithSeed(103))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InjectFault(ByzantineFabricate, 0, 1); err != nil {
		t.Fatal(err)
	}
	auth := NewAuthenticator()
	var wg sync.WaitGroup
	for id := 0; id < 16; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			dc := c.NewDisseminationClient(id, auth)
			for op := 0; op < 10; op++ {
				if id%2 == 0 {
					if err := dc.Write(ctx, fmt.Sprintf("s%d-%d", id, op)); err != nil {
						t.Errorf("client %d: %v", id, err)
						return
					}
					continue
				}
				got, err := dc.Read(ctx)
				if err != nil && !errors.Is(err, ErrNoCandidate) {
					t.Errorf("client %d: %v", id, err)
					return
				}
				if err == nil && got.Value != "" && !auth.Verify(DefaultKey, got) {
					t.Errorf("client %d read unverified %q", id, got.Value)
					return
				}
			}
		}(id)
	}
	wg.Wait()
}

// TestCanceledContextAborts checks that an already-canceled context makes
// Read and Write fail immediately with context.Canceled.
func TestCanceledContextAborts(t *testing.T) {
	c, err := NewCluster(mustThreshold(t, 2), 2, WithSeed(107))
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	cl := c.NewClient(1)
	if _, err := cl.Read(canceled); !errors.Is(err, context.Canceled) {
		t.Errorf("read err = %v, want context.Canceled", err)
	}
	if err := cl.Write(canceled, "never"); !errors.Is(err, context.Canceled) {
		t.Errorf("write err = %v, want context.Canceled", err)
	}
	dc := c.NewDisseminationClient(2, NewAuthenticator())
	if _, err := dc.Read(canceled); !errors.Is(err, context.Canceled) {
		t.Errorf("dissemination read err = %v, want context.Canceled", err)
	}
	if err := dc.Write(canceled, "never"); !errors.Is(err, context.Canceled) {
		t.Errorf("dissemination write err = %v, want context.Canceled", err)
	}
}

// TestDeadlineAbortsSlowProbes models a slow fleet (50ms round trips) and
// checks that a 5ms deadline aborts the in-flight probes promptly with
// context.DeadlineExceeded instead of sleeping out the latency.
func TestDeadlineAbortsSlowProbes(t *testing.T) {
	c, err := NewCluster(mustThreshold(t, 2), 2,
		WithSeed(109), WithLatency(50*time.Millisecond, 0))
	if err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient(1)
	start := time.Now()
	deadlined, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := cl.Read(deadlined); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("read err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("read took %v; deadline should abort well before the 50ms latency", elapsed)
	}
}

// TestLoadProfileTracksPaperLoad is the acceptance experiment: balanced
// concurrent traffic against a fault-free M-Grid(7,3) must produce a
// busiest-server access frequency within 15% of the construction's
// analytic load L(Q) = c/n (Propositions 3.9 and 5.2).
func TestLoadProfileTracksPaperLoad(t *testing.T) {
	mg, err := systems.NewMGrid(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(mg, 3, WithSeed(113))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for id := 0; id < 32; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := c.NewClient(id)
			for op := 0; op < 60; op++ {
				if op%6 == 0 {
					if err := cl.Write(ctx, fmt.Sprintf("v%d-%d", id, op)); err != nil {
						t.Errorf("client %d: %v", id, err)
						return
					}
					continue
				}
				if _, err := cl.Read(ctx); err != nil && !errors.Is(err, ErrNoCandidate) {
					t.Errorf("client %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()

	want := mg.Load() // 24/49 ≈ 0.49, optimal per Proposition 5.2
	got := c.PeakLoad()
	if got < 0.85*want || got > 1.15*want {
		t.Fatalf("peak empirical load %.4f outside ±15%% of analytic L(Q) = %.4f", got, want)
	}
	profile := c.LoadProfile()
	if len(profile) != mg.UniverseSize() {
		t.Fatalf("profile has %d entries, want %d", len(profile), mg.UniverseSize())
	}
	sum := 0.0
	for _, f := range profile {
		sum += f
	}
	// Each quorum touches c(Q) = 24 of 49 servers, so fractions sum to ≈ c.
	if cQ := float64(mg.MinQuorumSize()); sum < 0.95*cQ || sum > 1.05*cQ {
		t.Fatalf("profile sums to %.2f, want ≈ c(Q) = %.0f", sum, cQ)
	}
	t.Logf("peak load %.4f vs analytic %.4f (%+.1f%%)", got, want, 100*(got/want-1))
}

// TestResetLoadProfile checks the counters can be zeroed (e.g. to discard
// a warm-up phase).
func TestResetLoadProfile(t *testing.T) {
	c, err := NewCluster(mustThreshold(t, 1), 1, WithSeed(127))
	if err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient(1)
	if err := cl.Write(ctx, "warm"); err != nil {
		t.Fatal(err)
	}
	if c.PeakLoad() == 0 {
		t.Fatal("expected non-zero load after a write")
	}
	c.ResetLoadProfile()
	if c.PeakLoad() != 0 {
		t.Fatal("expected zero load after reset")
	}
}

// TestDeterministicModeReproducible runs the same seeded workload twice in
// single-threaded mode over a lossy network and demands identical
// per-server access profiles — the reproducibility contract of
// WithDeterministic.
func TestDeterministicModeReproducible(t *testing.T) {
	run := func() []float64 {
		c, err := NewCluster(mustThreshold(t, 2), 2,
			WithSeed(131), WithDropRate(0.05), WithDeterministic())
		if err != nil {
			t.Fatal(err)
		}
		cl := c.NewClient(1)
		cl.MaxRetries = 64
		for i := 0; i < 20; i++ {
			if err := cl.Write(ctx, fmt.Sprintf("d%d", i)); err != nil {
				t.Fatal(err)
			}
			if _, err := cl.Read(ctx); err != nil {
				t.Fatal(err)
			}
		}
		return c.LoadProfile()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("server %d: %.6f vs %.6f — deterministic runs diverged", i, a[i], b[i])
		}
	}
}

// countingTransport wraps another Transport and tallies invocations, the
// middleware pattern WithTransport is designed for.
type countingTransport struct {
	inner Transport
	calls atomic.Int64
}

func (ct *countingTransport) Invoke(ctx context.Context, server int, req Request) (Response, error) {
	ct.calls.Add(1)
	return ct.inner.Invoke(ctx, server, req)
}

func TestWithTransportMiddleware(t *testing.T) {
	var counter *countingTransport
	c, err := NewCluster(mustThreshold(t, 2), 2,
		WithTransport(func(servers []*Server) Transport {
			counter = &countingTransport{inner: NewInMemoryTransport(servers, 7)}
			return counter
		}))
	if err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient(1)
	if err := cl.Write(ctx, "traced"); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Read(ctx)
	if err != nil || got.Value != "traced" {
		t.Fatalf("read %q (%v), want traced", got.Value, err)
	}
	// Write = timestamp quorum + store quorum, read = one quorum: with
	// quorums of 7 on Threshold(9,7), that is 21 probes.
	if calls := counter.calls.Load(); calls < 21 {
		t.Fatalf("middleware saw %d calls, want ≥ 21", calls)
	}
	// The custom transport owns loss behavior; runtime adjustment of the
	// built-in knob must refuse.
	if err := c.SetDropRate(0.5); err == nil {
		t.Fatal("SetDropRate should fail with a custom transport")
	}
}

func TestOptionValidation(t *testing.T) {
	sys := mustThreshold(t, 2)
	if _, err := NewCluster(sys, 2, WithDropRate(-0.1)); err == nil {
		t.Error("negative drop rate should fail")
	}
	if _, err := NewCluster(sys, 2, WithDropRate(1.5)); err == nil {
		t.Error("drop rate > 1 should fail")
	}
	if _, err := NewCluster(sys, 2, WithLatency(-time.Second, 0)); err == nil {
		t.Error("negative latency should fail")
	}
	if _, err := NewCluster(sys, 2, WithTransport(nil)); err == nil {
		t.Error("nil transport factory should fail")
	}
}

func TestOpString(t *testing.T) {
	for _, op := range []Op{OpReadTimestamps, OpRead, OpWrite, Op(42)} {
		if op.String() == "" {
			t.Errorf("empty name for op %d", int(op))
		}
	}
}

// mustThreshold returns the 4b+1-server masking threshold used throughout.
func mustThreshold(t *testing.T, b int) *systems.Threshold {
	t.Helper()
	sys, err := systems.NewMaskingThreshold(4*b+1, b)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}
