package sim

import (
	"context"
	"fmt"
	"sync"
	"time"

	"bqs/internal/bitset"
)

// This file implements the OTHER quorum variety of [MR98a] that the paper
// mentions in Section 3: dissemination quorum systems, used for
// self-verifying data (e.g. digitally signed values). Because a Byzantine
// server cannot forge a valid signature, quorum intersections only need
// b+1 servers — enough that at least one CORRECT server lies in every
// intersection and relays the newest authentic value; fabricated values
// simply fail verification. We simulate unforgeability with an
// authenticator registry: writers register the exact (key, value,
// timestamp) triples they produce, and readers accept only registered
// triples. Binding the key into the signature matters in the keyed data
// plane: without it a Byzantine server could replay key A's legitimately
// signed value as an answer for key B, and the replay would verify.

// signedEntry is the unit the simulated signature covers: the register
// key plus the tagged value, so a signature for one key cannot vouch for
// another key's state.
type signedEntry struct {
	Key string
	TV  TaggedValue
}

// Authenticator is the stand-in for a signature scheme: (key, value)
// pairs registered by writers verify; anything else does not. It is
// shared by all clients of a cluster (like a public-key directory).
type Authenticator struct {
	mu     sync.Mutex
	signed map[signedEntry]struct{}
}

// NewAuthenticator returns an empty registry.
func NewAuthenticator() *Authenticator {
	return &Authenticator{signed: make(map[signedEntry]struct{})}
}

// Sign registers a value as authentic for key.
func (a *Authenticator) Sign(key string, tv TaggedValue) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.signed[signedEntry{key, tv}] = struct{}{}
}

// Verify reports whether tv was produced by a legitimate writer for key.
func (a *Authenticator) Verify(key string, tv TaggedValue) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.signed[signedEntry{key, tv}]
	return ok
}

// DisseminationClient accesses the keyed object space with the
// dissemination protocol: reads return the highest-timestamped VERIFIED
// value from a quorum, with no b+1 vouching requirement. It needs the
// quorum system to have IS ≥ b+1 rather than 2b+1. Like Client (the two
// share clientCore), it owns its rng and suspicion state, guards them
// with a fine-grained mutex, and is safe for concurrent operations — on
// its own or through a Session.
type DisseminationClient struct {
	clientCore
	auth *Authenticator
	// MaxRetries bounds quorum re-selection on unresponsiveness.
	MaxRetries int
	// SuspicionTTL ages suspicion exactly as Client.SuspicionTTL does:
	// zero disables aging, a positive value lets recovered servers regain
	// traffic after at most that long.
	SuspicionTTL time.Duration
}

// NewDisseminationClient attaches a dissemination-protocol client.
func (c *Cluster) NewDisseminationClient(id int, auth *Authenticator) *DisseminationClient {
	return &DisseminationClient{clientCore: newClientCore(c, id), auth: auth, MaxRetries: 32}
}

// quorumOrForgive mirrors Client.quorumOrForgive; see
// clientCore.pickQuorumTTL for the full rehabilitation contract.
func (dc *DisseminationClient) quorumOrForgive(ctx context.Context) (bitset.Set, error) {
	return dc.pickQuorumTTL(ctx, dc.SuspicionTTL)
}

// Write signs and stores a value under the DefaultKey register — the
// original single-object API, now a thin wrapper over WriteKey.
func (dc *DisseminationClient) Write(ctx context.Context, value string) error {
	return dc.WriteKey(ctx, DefaultKey, value)
}

// WriteKey signs (key, value, ts) and stores it at every member of a
// quorum. The timestamp phase accepts the max VERIFIED timestamp seen —
// Byzantine servers cannot inflate the clock because they cannot sign.
func (dc *DisseminationClient) WriteKey(ctx context.Context, key, value string) error {
	return dc.writeKey(ctx, key, value, nil)
}

// writeKey is WriteKey with an explicit probe route (nil = the cluster's
// counting transport; a Session passes its batcher). Like Client, it is
// the epoch gate and the write-op telemetry span.
func (dc *DisseminationClient) writeKey(ctx context.Context, key, value string, via Transport) error {
	st, err := dc.cluster.enterOp(ctx)
	if err != nil {
		return fmt.Errorf("sim: dissemination write: %w", err)
	}
	defer st.exit()
	if m := &dc.cluster.met; m.on {
		start := time.Now()
		err := dc.doWriteKey(ctx, key, value, via)
		m.opDone(false, time.Since(start), err)
		return err
	}
	return dc.doWriteKey(ctx, key, value, via)
}

func (dc *DisseminationClient) doWriteKey(ctx context.Context, key, value string, via Transport) error {
	maxTS, err := dc.maxVerifiedTimestamp(ctx, key, via)
	if err != nil {
		return fmt.Errorf("sim: dissemination write: %w", err)
	}
	tv := TaggedValue{Value: value, TS: dc.nextTS(key, maxTS)}
	dc.auth.Sign(key, tv)
	for attempt := 0; attempt < dc.MaxRetries; attempt++ {
		if attempt > 0 {
			dc.cluster.met.retries.Inc()
		}
		q, err := dc.quorumOrForgive(ctx)
		if err != nil {
			return fmt.Errorf("sim: dissemination write: %w", err)
		}
		replies, err := dc.cluster.probeQuorum(ctx, q, Request{Op: OpWrite, Key: key, Value: tv}, via)
		if err != nil {
			return fmt.Errorf("sim: dissemination write: %w", err)
		}
		if dc.noteReplies(replies) {
			return nil
		}
	}
	return fmt.Errorf("sim: dissemination write: %w", ErrRetriesExhausted)
}

func (dc *DisseminationClient) maxVerifiedTimestamp(ctx context.Context, key string, via Transport) (Timestamp, error) {
	for attempt := 0; attempt < dc.MaxRetries; attempt++ {
		if attempt > 0 {
			dc.cluster.met.retries.Inc()
		}
		q, err := dc.quorumOrForgive(ctx)
		if err != nil {
			return Timestamp{}, err
		}
		replies, err := dc.cluster.probeQuorum(ctx, q, Request{Op: OpReadTimestamps, Key: key, ReaderID: dc.id}, via)
		if err != nil {
			return Timestamp{}, err
		}
		complete := dc.noteReplies(replies)
		var max Timestamp
		for _, resp := range replies {
			if resp.OK && dc.auth.Verify(key, resp.Value) && max.Less(resp.Value.TS) {
				max = resp.Value.TS
			}
		}
		if complete {
			return max, nil
		}
	}
	return Timestamp{}, ErrRetriesExhausted
}

// Read returns the highest-timestamped verified value of the DefaultKey
// register — the original single-object API, now a wrapper over ReadKey.
func (dc *DisseminationClient) Read(ctx context.Context) (TaggedValue, error) {
	return dc.ReadKey(ctx, DefaultKey)
}

// ReadKey returns the highest-timestamped verified value found in a
// quorum for key. With IS ≥ b+1 every read quorum shares a correct server
// with the last write quorum, so the newest authentic value is always
// present; values signed for other keys fail verification, which is what
// stops cross-key replay.
func (dc *DisseminationClient) ReadKey(ctx context.Context, key string) (TaggedValue, error) {
	return dc.readKey(ctx, key, nil)
}

// readKey is ReadKey with an explicit probe route (nil = the cluster's
// counting transport; a Session passes its batcher). Like Client, it is
// the epoch gate and the read-op telemetry span.
func (dc *DisseminationClient) readKey(ctx context.Context, key string, via Transport) (TaggedValue, error) {
	st, err := dc.cluster.enterOp(ctx)
	if err != nil {
		return TaggedValue{}, fmt.Errorf("sim: dissemination read: %w", err)
	}
	defer st.exit()
	if m := &dc.cluster.met; m.on {
		start := time.Now()
		tv, err := dc.doReadKey(ctx, key, via)
		m.opDone(true, time.Since(start), err)
		return tv, err
	}
	return dc.doReadKey(ctx, key, via)
}

func (dc *DisseminationClient) doReadKey(ctx context.Context, key string, via Transport) (TaggedValue, error) {
	for attempt := 0; attempt < dc.MaxRetries; attempt++ {
		if attempt > 0 {
			dc.cluster.met.retries.Inc()
		}
		q, err := dc.quorumOrForgive(ctx)
		if err != nil {
			return TaggedValue{}, fmt.Errorf("sim: dissemination read: %w", err)
		}
		replies, err := dc.cluster.probeQuorum(ctx, q, Request{Op: OpRead, Key: key, ReaderID: dc.id}, via)
		if err != nil {
			return TaggedValue{}, fmt.Errorf("sim: dissemination read: %w", err)
		}
		complete := dc.noteReplies(replies)
		var best TaggedValue
		found := false
		for _, resp := range replies {
			if resp.OK && dc.auth.Verify(key, resp.Value) {
				if !found || best.TS.Less(resp.Value.TS) {
					best, found = resp.Value, true
				}
			}
		}
		if !complete {
			continue
		}
		if !found {
			return TaggedValue{}, ErrNoCandidate
		}
		return best, nil
	}
	return TaggedValue{}, fmt.Errorf("sim: dissemination read: %w", ErrRetriesExhausted)
}
