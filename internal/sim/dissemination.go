package sim

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bqs/internal/bitset"
)

// This file implements the OTHER quorum variety of [MR98a] that the paper
// mentions in Section 3: dissemination quorum systems, used for
// self-verifying data (e.g. digitally signed values). Because a Byzantine
// server cannot forge a valid signature, quorum intersections only need
// b+1 servers — enough that at least one CORRECT server lies in every
// intersection and relays the newest authentic value; fabricated values
// simply fail verification. We simulate unforgeability with an
// authenticator registry: writers register the exact (value, timestamp)
// pairs they produce, and readers accept only registered pairs.

// Authenticator is the stand-in for a signature scheme: values registered
// by writers verify; anything else does not. It is shared by all clients
// of a cluster (like a public-key directory).
type Authenticator struct {
	mu     sync.Mutex
	signed map[TaggedValue]struct{}
}

// NewAuthenticator returns an empty registry.
func NewAuthenticator() *Authenticator {
	return &Authenticator{signed: make(map[TaggedValue]struct{})}
}

// Sign registers a value as authentic.
func (a *Authenticator) Sign(tv TaggedValue) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.signed[tv] = struct{}{}
}

// Verify reports whether tv was produced by a legitimate writer.
func (a *Authenticator) Verify(tv TaggedValue) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.signed[tv]
	return ok
}

// DisseminationClient accesses the replicated variable with the
// dissemination protocol: reads return the highest-timestamped VERIFIED
// value from a quorum, with no b+1 vouching requirement. It needs the
// quorum system to have IS ≥ b+1 rather than 2b+1. Like Client, it owns
// its rng and suspicion state and serializes its own operations, so any
// number of dissemination clients can run concurrently.
type DisseminationClient struct {
	id   int
	c    *Cluster
	auth *Authenticator
	// MaxRetries bounds quorum re-selection on unresponsiveness.
	MaxRetries int
	// SuspicionTTL ages suspicion exactly as Client.SuspicionTTL does:
	// zero disables aging, a positive value lets recovered servers regain
	// traffic after at most that long.
	SuspicionTTL time.Duration

	mu        sync.Mutex
	rng       *rand.Rand
	suspected *suspicion
}

// NewDisseminationClient attaches a dissemination-protocol client.
func (c *Cluster) NewDisseminationClient(id int, auth *Authenticator) *DisseminationClient {
	return &DisseminationClient{
		id: id, c: c, auth: auth,
		MaxRetries: 32,
		rng:        c.clientRNG(id),
		suspected:  newSuspicion(c.N()),
	}
}

// quorumOrForgive mirrors Client.quorumOrForgive: selection goes through
// the cluster's picker (strategy-aware when one is installed), with
// per-server rehabilitation — TTL aging plus probe-on-forgive when
// suspicion exhausts the quorum space; see suspicion and
// Cluster.pickQuorum for the full contract.
func (dc *DisseminationClient) quorumOrForgive(ctx context.Context) (bitset.Set, error) {
	dc.suspected.ttl = dc.SuspicionTTL
	return dc.c.pickQuorum(ctx, dc.rng, dc.suspected, dc.id)
}

// Write signs (value, ts) and stores it at every member of a quorum. The
// timestamp phase accepts the max VERIFIED timestamp seen — Byzantine
// servers cannot inflate the clock because they cannot sign.
func (dc *DisseminationClient) Write(ctx context.Context, value string) error {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	maxTS, err := dc.maxVerifiedTimestamp(ctx)
	if err != nil {
		return fmt.Errorf("sim: dissemination write: %w", err)
	}
	tv := TaggedValue{Value: value, TS: Timestamp{Seq: maxTS.Seq + 1, Writer: dc.id}}
	dc.auth.Sign(tv)
	for attempt := 0; attempt < dc.MaxRetries; attempt++ {
		q, err := dc.quorumOrForgive(ctx)
		if err != nil {
			return fmt.Errorf("sim: dissemination write: %w", err)
		}
		replies, err := dc.c.probeQuorum(ctx, q, Request{Op: OpWrite, Value: tv})
		if err != nil {
			return fmt.Errorf("sim: dissemination write: %w", err)
		}
		ok := true
		for id, resp := range replies {
			if !resp.OK {
				dc.suspected.suspect(id)
				ok = false
			}
		}
		if ok {
			return nil
		}
	}
	return fmt.Errorf("sim: dissemination write: %w", ErrRetriesExhausted)
}

func (dc *DisseminationClient) maxVerifiedTimestamp(ctx context.Context) (Timestamp, error) {
	for attempt := 0; attempt < dc.MaxRetries; attempt++ {
		q, err := dc.quorumOrForgive(ctx)
		if err != nil {
			return Timestamp{}, err
		}
		replies, err := dc.c.probeQuorum(ctx, q, Request{Op: OpReadTimestamps, ReaderID: dc.id})
		if err != nil {
			return Timestamp{}, err
		}
		var max Timestamp
		complete := true
		for id, resp := range replies {
			if !resp.OK {
				dc.suspected.suspect(id)
				complete = false
				continue
			}
			if dc.auth.Verify(resp.Value) && max.Less(resp.Value.TS) {
				max = resp.Value.TS
			}
		}
		if complete {
			return max, nil
		}
	}
	return Timestamp{}, ErrRetriesExhausted
}

// Read returns the highest-timestamped verified value found in a quorum.
// With IS ≥ b+1 every read quorum shares a correct server with the last
// write quorum, so the newest authentic value is always present.
func (dc *DisseminationClient) Read(ctx context.Context) (TaggedValue, error) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	for attempt := 0; attempt < dc.MaxRetries; attempt++ {
		q, err := dc.quorumOrForgive(ctx)
		if err != nil {
			return TaggedValue{}, fmt.Errorf("sim: dissemination read: %w", err)
		}
		replies, err := dc.c.probeQuorum(ctx, q, Request{Op: OpRead, ReaderID: dc.id})
		if err != nil {
			return TaggedValue{}, fmt.Errorf("sim: dissemination read: %w", err)
		}
		var best TaggedValue
		found := false
		complete := true
		for id, resp := range replies {
			if !resp.OK {
				dc.suspected.suspect(id)
				complete = false
				continue
			}
			if dc.auth.Verify(resp.Value) {
				if !found || best.TS.Less(resp.Value.TS) {
					best, found = resp.Value, true
				}
			}
		}
		if !complete {
			continue
		}
		if !found {
			return TaggedValue{}, ErrNoCandidate
		}
		return best, nil
	}
	return TaggedValue{}, fmt.Errorf("sim: dissemination read: %w", ErrRetriesExhausted)
}
