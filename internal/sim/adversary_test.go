package sim

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"
)

// fakeLoads is a settable LoadSource (and PhaseSource) for steering the
// targeted and timing schedulers in tests.
type fakeLoads struct {
	mu     sync.Mutex
	prof   []float64
	phases int64
}

func (f *fakeLoads) LoadProfile() []float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]float64(nil), f.prof...)
}

func (f *fakeLoads) Phases() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.phases
}

func (f *fakeLoads) set(prof []float64, phases int64) {
	f.mu.Lock()
	f.prof = append([]float64(nil), prof...)
	f.phases = phases
	f.mu.Unlock()
}

// trackingFlipper counts how many servers are corrupt at any instant and
// remembers the high-water mark — the budget invariant's witness.
type trackingFlipper struct {
	mu      sync.Mutex
	corrupt map[int]Behavior
	peak    int
}

func newTrackingFlipper() *trackingFlipper {
	return &trackingFlipper{corrupt: make(map[int]Behavior)}
}

func (tf *trackingFlipper) Flip(_ context.Context, server int, b Behavior) error {
	tf.mu.Lock()
	defer tf.mu.Unlock()
	if b == Correct {
		delete(tf.corrupt, server)
	} else {
		tf.corrupt[server] = b
		if len(tf.corrupt) > tf.peak {
			tf.peak = len(tf.corrupt)
		}
	}
	return nil
}

func (tf *trackingFlipper) snapshot() (map[int]Behavior, int) {
	tf.mu.Lock()
	defer tf.mu.Unlock()
	out := make(map[int]Behavior, len(tf.corrupt))
	for s, b := range tf.corrupt {
		out[s] = b
	}
	return out, tf.peak
}

func TestParseAdversary(t *testing.T) {
	cfg, err := ParseAdversary("targeted")
	if err != nil || cfg.Kind != AdversaryTargeted || cfg.B != 0 {
		t.Fatalf("cfg = %+v, err %v", cfg, err)
	}
	cfg, err = ParseAdversary("random, b=2, behavior=byz-fabricate, interval=100ms, seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Kind != AdversaryRandom || cfg.B != 2 || cfg.Behavior != ByzantineFabricate ||
		cfg.Interval != 100*time.Millisecond || cfg.Seed != 9 {
		t.Fatalf("cfg = %+v", cfg)
	}
	for _, bad := range []string{"", "nope", "random,b=-1", "timing,interval=-5ms", "targeted,x=1", "random,b"} {
		if _, err := ParseAdversary(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestAdversaryDefaults(t *testing.T) {
	tf := newTrackingFlipper()
	a, err := NewAdversary(AdversaryConfig{Kind: AdversaryRandom, B: 1}, tf, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.cfg.Behavior != Crashed || a.cfg.Interval != 25*time.Millisecond {
		t.Errorf("random defaults = %v/%v", a.cfg.Behavior, a.cfg.Interval)
	}
	a, err = NewAdversary(AdversaryConfig{Kind: AdversaryTiming, B: 1}, tf, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.cfg.Behavior != ByzantineStale {
		t.Errorf("timing default behavior = %v", a.cfg.Behavior)
	}
	// Validation.
	if _, err := NewAdversary(AdversaryConfig{Kind: AdversaryTargeted, B: 1}, tf, nil, 4); err == nil {
		t.Error("targeted without loads accepted")
	}
	if _, err := NewAdversary(AdversaryConfig{Kind: AdversaryRandom, B: 5}, tf, nil, 4); err == nil {
		t.Error("budget beyond universe accepted")
	}
	if _, err := NewAdversary(AdversaryConfig{Kind: AdversaryRandom, B: 1, Behavior: Correct}, tf, nil, 4); err == nil {
		t.Error("behavior=correct accepted")
	}
	if _, err := NewAdversary(AdversaryConfig{}, tf, nil, 4); err == nil {
		t.Error("zero kind accepted")
	}
}

func TestAdversaryPickTargeted(t *testing.T) {
	loads := &fakeLoads{}
	loads.set([]float64{0.1, 0.9, 0.5, 0.9}, 0)
	a, err := NewAdversary(AdversaryConfig{Kind: AdversaryTargeted, B: 2}, newTrackingFlipper(), loads, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.PickVictims(); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("targeted picks = %v, want [1 3]", got)
	}
	// Re-aims live when the profile moves.
	loads.set([]float64{0.9, 0.1, 0.8, 0.1}, 0)
	if got := a.PickVictims(); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("after shift picks = %v, want [0 2]", got)
	}
	// All-zero profile (no traffic yet): deterministic first-b fallback.
	loads.set([]float64{0, 0, 0, 0}, 0)
	if got := a.PickVictims(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("cold picks = %v, want [0 1]", got)
	}
}

func TestAdversaryPickRandom(t *testing.T) {
	a, err := NewAdversary(AdversaryConfig{Kind: AdversaryRandom, B: 2, Seed: 3}, newTrackingFlipper(), nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		picks := a.PickVictims()
		if len(picks) != 2 {
			t.Fatalf("picks = %v, want 2 victims", picks)
		}
		for _, s := range picks {
			if s < 0 || s >= 6 {
				t.Fatalf("victim %d outside universe", s)
			}
			seen[s] = true
		}
	}
	if len(seen) < 4 {
		t.Errorf("random adversary only ever picked %v", seen)
	}
}

func TestAdversaryBudgetInvariant(t *testing.T) {
	tf := newTrackingFlipper()
	a, err := NewAdversary(AdversaryConfig{
		Kind: AdversaryRandom, B: 2, Seed: 5, Interval: time.Millisecond,
	}, tf, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	runCtx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := a.Run(runCtx); err != context.DeadlineExceeded {
		t.Fatalf("Run = %v", err)
	}
	corrupt, peak := tf.snapshot()
	if peak > 2 {
		t.Errorf("budget exceeded: %d servers corrupt at once", peak)
	}
	if a.Ticks() < 10 {
		t.Errorf("only %d ticks in 100ms at 1ms interval", a.Ticks())
	}
	// Exit restores everyone.
	if len(corrupt) != 0 {
		t.Errorf("servers still corrupt after Run returned: %v", corrupt)
	}
	if len(a.Victims()) != 0 {
		t.Errorf("victims not cleared: %v", a.Victims())
	}
	if a.Misses() != 0 || a.FirstErr() != nil {
		t.Errorf("misses=%d firstErr=%v", a.Misses(), a.FirstErr())
	}
}

func TestAdversaryTimingAlternates(t *testing.T) {
	loads := &fakeLoads{}
	loads.set([]float64{0.9, 0.1, 0.1, 0.1}, 0)
	tf := newTrackingFlipper()
	a, err := NewAdversary(AdversaryConfig{Kind: AdversaryTiming, B: 1}, tf, loads, 4)
	if err != nil {
		t.Fatal(err)
	}
	bg := context.Background()
	a.step(bg)
	corrupt, _ := tf.snapshot()
	if corrupt[0] != ByzantineStale {
		t.Fatalf("even phases: corrupt = %v, want server 0 byz-stale", corrupt)
	}
	// Advance the phase counter to odd: the holdover victim is re-flipped
	// to the equivocating mode.
	loads.set([]float64{0.9, 0.1, 0.1, 0.1}, 1)
	a.step(bg)
	corrupt, _ = tf.snapshot()
	if corrupt[0] != ByzantineEquivocate {
		t.Fatalf("odd phases: corrupt = %v, want server 0 byz-equivocate", corrupt)
	}
}

func TestAdversaryAgainstCluster(t *testing.T) {
	// End to end against a real in-memory fleet: the targeted adversary
	// reads the cluster's own LoadProfile and must settle on the servers
	// the strategy actually loads.
	c := newThresholdCluster(t, 1, 13)
	defer c.Close()
	cl := c.NewClient(1)
	for i := 0; i < 20; i++ {
		if err := cl.Write(ctx, "warm"); err != nil {
			t.Fatal(err)
		}
	}
	a, err := NewAdversary(AdversaryConfig{Kind: AdversaryTargeted, B: 1}, c, c, c.N())
	if err != nil {
		t.Fatal(err)
	}
	a.step(ctx)
	victims := a.Victims()
	if len(victims) != 1 {
		t.Fatalf("victims = %v", victims)
	}
	prof := c.LoadProfile()
	for i, w := range prof {
		if w > prof[victims[0]]+1e-12 {
			t.Errorf("victim %d (weight %g) is not the heaviest; server %d has %g",
				victims[0], prof[victims[0]], i, w)
		}
	}
	// The flip really landed on the fleet.
	if _, byz := c.FaultCounts(); byz != 0 {
		t.Fatalf("targeted default should crash, not byzantine (got %d byzantine)", byz)
	}
	crashed, _ := c.FaultCounts()
	if crashed != 1 {
		t.Fatalf("crashed = %d, want 1", crashed)
	}
}
