package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"bqs/internal/bitset"
	"bqs/internal/core"
	"bqs/internal/measures"
	"bqs/internal/obs"
	"bqs/internal/store"
)

// config collects the NewCluster functional options.
type config struct {
	seed       int64
	dropRate   float64
	latBase    time.Duration
	latJitter  time.Duration
	sequential bool
	transport  func(servers []*Server) Transport
	strategy   *core.Strategy
	optimal    bool
	stores     func(id int) (store.Store, error)
	metrics    *obs.Registry
}

// strategyEnumLimit caps how many quorums WithStrategy/WithOptimalStrategy
// will materialize at construction; past it the LP would dominate startup
// anyway.
const strategyEnumLimit = 1 << 17

// Option configures a Cluster at construction time.
type Option func(*config) error

// WithSeed seeds every source of randomness the cluster derives: the
// transport's drop/latency rng and each client's quorum-selection rng
// (client i draws from a stream determined by seed and i; the same
// per-client stream drives strategy sampling when WithStrategy or
// WithOptimalStrategy installs a strategy-backed picker, so strategy runs
// are reproducible under the same discipline as uniform ones). The
// default seed is 1.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithDropRate makes the network lossy: every response is independently
// lost with probability p, which clients observe exactly like a crash
// (and handle by suspecting the server and re-selecting quorums). Use
// modest rates; suspected servers are only rehabilitated when suspicion
// exhausts the quorum space, so a very lossy network degenerates into
// retry churn, as a real fail-stop detector would.
func WithDropRate(p float64) Option {
	return func(c *config) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("sim: drop rate %g outside [0,1]", p)
		}
		c.dropRate = p
		return nil
	}
}

// WithLatency gives each server a fixed round-trip latency drawn uniformly
// from [base, base+jitter] when the cluster is built, modelling a
// heterogeneous fleet. Probes sleep out the latency (interruptibly — a
// done context aborts the wait), so deadlines and cancellation become
// observable in tests and benchmarks.
func WithLatency(base, jitter time.Duration) Option {
	return func(c *config) error {
		if base < 0 || jitter < 0 {
			return fmt.Errorf("sim: negative latency (base %v, jitter %v)", base, jitter)
		}
		c.latBase, c.latJitter = base, jitter
		return nil
	}
}

// WithTransport installs a custom Transport built by the given factory,
// which receives the cluster's freshly constructed servers (wrap them, or
// ignore them and route elsewhere). Overrides WithDropRate and WithLatency
// — loss and latency become the custom transport's business — and disables
// Cluster.SetDropRate.
func WithTransport(f func(servers []*Server) Transport) Option {
	return func(c *config) error {
		if f == nil {
			return errors.New("sim: nil transport factory")
		}
		c.transport = f
		return nil
	}
}

// WithStrategy drives quorum selection from the given access strategy
// (Definition 3.8) instead of uniform survivor selection. The strategy's
// weights must align index-by-index with the system's quorum list, so the
// system has to list its quorums (core.Enumerable) or materialize them
// (core.Enumerator); the list is enumerated once at construction and
// cached in the picker. Under suspicion the strategy is conditioned on
// the live set: weights renormalize over quorums disjoint from the
// suspected servers, falling back to uniform among survivors when all
// surviving weight is zero.
func WithStrategy(st *core.Strategy) Option {
	return func(c *config) error {
		if st == nil {
			return errors.New("sim: nil strategy")
		}
		if c.optimal {
			return errors.New("sim: WithStrategy conflicts with WithOptimalStrategy")
		}
		c.strategy = st
		return nil
	}
}

// WithOptimalStrategy solves the Definition 3.8 load LP (measures.Load)
// at construction and installs the optimal access strategy, so measured
// load can converge to L(Q) itself rather than the uniform strategy's
// load. The system must list (core.Enumerable) or materialize
// (core.Enumerator) its quorums.
func WithOptimalStrategy() Option {
	return func(c *config) error {
		if c.strategy != nil {
			return errors.New("sim: WithOptimalStrategy conflicts with WithStrategy")
		}
		c.optimal = true
		return nil
	}
}

// WithStores attaches a storage engine to every server: the factory is
// called once per server id and its engine is installed via WithStore,
// so writes persist before acking and the Restart behavior runs real
// crash recovery. The Cluster owns the engines it built — Close releases
// them. A factory returning (nil, nil) leaves that server memory-only.
func WithStores(factory func(id int) (store.Store, error)) Option {
	return func(c *config) error {
		if factory == nil {
			return errors.New("sim: nil store factory")
		}
		c.stores = factory
		return nil
	}
}

// WithDeterministic switches the cluster to single-threaded probing:
// quorum members are contacted sequentially in ascending server order from
// the calling goroutine instead of in parallel goroutines. With a fixed
// WithSeed and one client per goroutine, runs are exactly reproducible —
// the mode the original synchronous simulator provided.
func WithDeterministic() Option {
	return func(c *config) error {
		c.sequential = true
		return nil
	}
}

// Cluster is a set of servers fronted by a b-masking quorum system. It is
// safe for any number of concurrent clients: per-server bookkeeping is
// atomic, and all shared randomness lives behind the transport.
//
// Everything an epoch owns — system, servers, picker, strategy, load
// accounting, the drain gate — lives in the epochState behind cur;
// Reconfigure swaps it atomically at a cutover. The fields on Cluster
// itself are epoch-invariant: b (reconfiguration never changes the
// masking bound), the transport, seeds and factories.
type Cluster struct {
	b          int
	transport  Transport
	mem        *memTransport // non-nil when the built-in transport is in use
	seed       int64
	sequential bool
	optimal    bool // re-solve the load LP for each epoch's system
	fixedStrat bool // WithStrategy: weights are tied to the boot system

	// cur is the current epoch; every operation and every scrape reads
	// it with one atomic load.
	cur atomic.Pointer[epochState]

	// reconfigMu serializes Reconfigure calls; the data plane never
	// takes it.
	reconfigMu sync.Mutex

	// storeFactory and stores track the engines the cluster built
	// through WithStores, by server id, so a resize can attach engines
	// to new servers and Close/retire can release exactly the ones it
	// owns.
	storeFactory func(id int) (store.Store, error)
	storeMu      sync.Mutex
	stores       map[int]store.Store

	// retired accumulates the load counters of retired epochs so the
	// telemetry counters stay monotonic across cutovers.
	retired atomic.Pointer[retiredTotals]

	// met holds the pre-resolved telemetry instruments; zero (met.on
	// false, all instruments nil) without WithMetrics.
	met clusterMetrics
}

// NewCluster builds a cluster with one server per universe element. b is
// the masking bound the protocol should defend (usually the system's
// MaskingBound). Behavior is customized with functional options:
//
//	NewCluster(sys, b, WithSeed(42), WithDropRate(0.01), WithLatency(time.Millisecond, time.Millisecond))
func NewCluster(system core.System, b int, opts ...Option) (*Cluster, error) {
	if b < 0 {
		return nil, fmt.Errorf("sim: masking bound %d must be non-negative", b)
	}
	if m, ok := system.(core.Masking); ok && m.MaskingBound() < b {
		return nil, fmt.Errorf("sim: system %s masks only %d < requested b=%d",
			system.Name(), m.MaskingBound(), b)
	}
	cfg := config{seed: 1}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	c := &Cluster{
		b:            b,
		seed:         cfg.seed,
		sequential:   cfg.sequential,
		optimal:      cfg.optimal,
		fixedStrat:   cfg.strategy != nil,
		storeFactory: cfg.stores,
		stores:       make(map[int]store.Store),
	}
	c.retired.Store(&retiredTotals{})
	n := system.UniverseSize()
	servers := make([]*Server, n)
	for i := range servers {
		var err error
		if servers[i], err = c.buildServer(i); err != nil {
			c.Close()
			return nil, err
		}
	}
	st := newEpochState()
	st.system, st.b, st.servers = system, b, servers
	st.accesses = make([]atomic.Int64, n)
	if err := c.installSelection(st, cfg.strategy); err != nil {
		c.Close()
		return nil, err
	}
	c.cur.Store(st)
	if cfg.transport != nil {
		c.transport = cfg.transport(servers)
	} else {
		c.mem = newMemTransport(servers, cfg.seed, cfg.dropRate, cfg.latBase, cfg.latJitter)
		c.transport = c.mem
	}
	if cfg.metrics != nil {
		c.initMetrics(cfg.metrics)
	}
	return c, nil
}

// buildServer constructs one server, attaching a storage engine from
// the WithStores factory when one is configured. Engines are tracked by
// id so Close and epoch retirement release exactly what the cluster
// built.
func (c *Cluster) buildServer(id int) (*Server, error) {
	var sopts []ServerOption
	if c.storeFactory != nil {
		st, err := c.storeFactory(id)
		if err != nil {
			return nil, fmt.Errorf("sim: store for server %d: %w", id, err)
		}
		if st != nil {
			c.storeMu.Lock()
			c.stores[id] = st
			c.storeMu.Unlock()
			sopts = append(sopts, WithStore(st))
		}
	}
	return NewServer(id, sopts...), nil
}

// installSelection resolves the epoch's quorum-selection state: the
// uniform picker by default, a strategy-backed picker when an explicit
// strategy is given or the cluster runs -strategy optimal (the load LP
// is then re-solved against st.system — this is how a reconfiguration
// re-derives L(Q) for the new epoch's system).
func (c *Cluster) installSelection(st *epochState, strategy *core.Strategy) error {
	st.picker = core.NewUniformPicker(st.system)
	st.stratLoad = math.NaN()
	if strategy == nil && !c.optimal {
		return nil
	}
	en, err := core.AsEnumerable(st.system, strategyEnumLimit)
	if err != nil {
		return fmt.Errorf("sim: strategy-backed selection: %w", err)
	}
	if c.optimal {
		if _, strategy, err = measures.Load(en); err != nil {
			return fmt.Errorf("sim: optimal strategy: %w", err)
		}
	}
	p, err := core.NewStrategyPicker(en, strategy)
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	st.picker, st.strategy, st.stratLoad = p, strategy, p.InducedLoad()
	return nil
}

// Close releases the storage engines the cluster built through
// WithStores (a no-op for memory-only clusters). Callers that injected
// servers through WithTransport keep ownership of whatever those servers
// hold.
func (c *Cluster) Close() error {
	var first error
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	for id, st := range c.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
		delete(c.stores, id)
	}
	return first
}

// Strategy returns the current epoch's access strategy, or nil under
// uniform selection.
func (c *Cluster) Strategy() *core.Strategy { return c.cur.Load().strategy }

// StrategyLoad returns L_w(Q), the load induced by the current epoch's
// strategy — the LP optimum L(Q) under WithOptimalStrategy — or NaN under
// uniform selection. It is the analytic target the measured PeakLoad
// converges to under failure-free balanced traffic.
func (c *Cluster) StrategyLoad() float64 { return c.cur.Load().stratLoad }

// System returns the quorum system the cluster currently fronts.
func (c *Cluster) System() core.System { return c.cur.Load().system }

// B returns the masking bound b the protocol defends (Definition 3.5).
// Reconfiguration never changes it.
func (c *Cluster) B() int { return c.b }

// N returns the number of servers in the current epoch (the universe
// size of Definition 3.1).
func (c *Cluster) N() int { return len(c.cur.Load().servers) }

// Epoch returns the current configuration epoch (0 until the first
// reconfiguration).
func (c *Cluster) Epoch() uint64 { return c.cur.Load().epoch }

// Transport returns the installed message layer.
func (c *Cluster) Transport() Transport { return c.transport }

// Server returns server i of the current epoch (for fault injection and
// assertions).
func (c *Cluster) Server(i int) *Server { return c.cur.Load().servers[i] }

// InjectFault sets the behavior of the given servers.
func (c *Cluster) InjectFault(behavior Behavior, ids ...int) error {
	servers := c.cur.Load().servers
	for _, id := range ids {
		if id < 0 || id >= len(servers) {
			return fmt.Errorf("sim: server id %d out of range [0,%d)", id, len(servers))
		}
		servers[id].SetBehavior(behavior)
	}
	return nil
}

// FaultCounts returns (crashed, byzantine) tallies.
func (c *Cluster) FaultCounts() (crashed, byzantine int) {
	for _, s := range c.cur.Load().servers {
		switch b := s.Behavior(); {
		case b == Crashed:
			crashed++
		case b.IsByzantine():
			byzantine++
		}
	}
	return crashed, byzantine
}

// SetDropRate adjusts the built-in transport's message-loss probability at
// runtime. It fails when a custom transport was installed.
func (c *Cluster) SetDropRate(p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("sim: drop rate %g outside [0,1]", p)
	}
	if c.mem == nil {
		return errors.New("sim: SetDropRate: cluster uses a custom transport")
	}
	c.mem.setDropRate(p)
	return nil
}

// LoadProfile returns the empirical per-server access frequencies observed
// since construction (or the last ResetLoadProfile): entry i is the
// fraction of quorum accesses that touched server i. Under balanced
// fault-free traffic the maximum entry converges to the load induced by
// the system's selection strategy, which Theorem 4.1 lower-bounds by
// max{(2b+1)/c, c/n} — this is the live-traffic counterpart of
// measures.EmpiricalLoad's offline sampling.
func (c *Cluster) LoadProfile() []float64 {
	st := c.cur.Load()
	out := make([]float64, len(st.servers))
	phases := st.phases.Load()
	if phases == 0 {
		return out
	}
	for i := range out {
		out[i] = float64(st.accesses[i].Load()) / float64(phases)
	}
	return out
}

// PeakLoad returns the maximum entry of LoadProfile — the empirical load
// L(Q) of Definition 3.8 as measured from live traffic.
func (c *Cluster) PeakLoad() float64 {
	max := 0.0
	for _, f := range c.LoadProfile() {
		if f > max {
			max = f
		}
	}
	return max
}

// Phases returns how many quorum accesses have been charged in the
// current epoch since its cutover (or the last ResetLoadProfile) — the
// denominator of LoadProfile, exposed so the timing adversary can key
// its behavior flips to the protocol phase the fleet is around.
func (c *Cluster) Phases() int64 { return c.cur.Load().phases.Load() }

// ResetLoadProfile zeroes the current epoch's access counters (e.g.
// after a warm-up).
func (c *Cluster) ResetLoadProfile() {
	st := c.cur.Load()
	st.phases.Store(0)
	for i := range st.accesses {
		st.accesses[i].Store(0)
	}
}

// invoke routes one probe through the transport, counting it toward the
// load profile and, when instrumented, the per-server RTT histogram.
func (c *Cluster) invoke(ctx context.Context, server int, req Request) (Response, error) {
	if st := c.cur.Load(); server >= 0 && server < len(st.accesses) {
		st.accesses[server].Add(1)
	}
	if !c.met.on {
		return c.transport.Invoke(ctx, server, req)
	}
	start := time.Now()
	resp, err := c.transport.Invoke(ctx, server, req)
	c.met.probeSeconds.ObserveDuration(time.Since(start))
	return resp, err
}

// invokeBatch routes a whole frame of probes through the transport,
// counting each item toward the load profile — batching changes how many
// frames travel, never how many quorum accesses are charged, so the
// measured load stays the Definition 3.8 quantity. Transports without a
// batch fast path are driven item by item.
func (c *Cluster) invokeBatch(ctx context.Context, items []BatchItem) ([]Response, error) {
	st := c.cur.Load()
	for _, it := range items {
		if it.Server >= 0 && it.Server < len(st.accesses) {
			st.accesses[it.Server].Add(1)
		}
	}
	if bt, ok := c.transport.(BatchTransport); ok {
		if !c.met.on {
			return bt.InvokeBatch(ctx, items)
		}
		// One sample per wire round trip: the frame's RTT is every
		// item's RTT, so charging it once keeps the histogram a
		// distribution over network waits, not over items.
		c.met.batchOps.Observe(float64(len(items)))
		start := time.Now()
		out, err := bt.InvokeBatch(ctx, items)
		c.met.probeSeconds.ObserveDuration(time.Since(start))
		return out, err
	}
	out := make([]Response, len(items))
	for i, it := range items {
		resp, err := c.transport.Invoke(ctx, it.Server, it.Req)
		if err != nil {
			return nil, err
		}
		out[i] = resp
	}
	return out, nil
}

// probeQuorum sends req to every member of q — in parallel goroutines, or
// sequentially in ascending order under WithDeterministic — and returns
// the responses by server id. Probes travel through via when it is
// non-nil (the session batcher) and through the cluster's own counting
// path otherwise. The only error it returns is a transport failure
// (typically ctx cancellation or expiry); unresponsive servers appear as
// Response{OK: false}.
func (c *Cluster) probeQuorum(ctx context.Context, q bitset.Set, req Request, via Transport) (map[int]Response, error) {
	if !c.met.on {
		return c.probeQuorumUntimed(ctx, q, req, via)
	}
	start := time.Now()
	out, err := c.probeQuorumUntimed(ctx, q, req, via)
	c.met.phaseSeconds.ObserveDuration(time.Since(start))
	return out, err
}

// probeQuorumUntimed is probeQuorum without the fan-out span.
func (c *Cluster) probeQuorumUntimed(ctx context.Context, q bitset.Set, req Request, via Transport) (map[int]Response, error) {
	c.cur.Load().phases.Add(1)
	invoke := c.invoke
	if via != nil {
		invoke = via.Invoke
	}
	members := q.Elements()
	out := make(map[int]Response, len(members))
	if c.sequential {
		for _, i := range members {
			resp, err := invoke(ctx, i, req)
			if err != nil {
				return nil, err
			}
			out[i] = resp
		}
		return out, nil
	}
	type result struct {
		id   int
		resp Response
		err  error
	}
	results := make(chan result, len(members))
	for _, i := range members {
		go func(i int) {
			resp, err := invoke(ctx, i, req)
			results <- result{i, resp, err}
		}(i)
	}
	var firstErr error
	for range members {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		out[r.id] = r.resp
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// clientRNG derives an independent deterministic random stream for client
// id from the cluster seed.
func (c *Cluster) clientRNG(id int) *rand.Rand {
	// SplitMix64-style odd multiplier keeps nearby ids uncorrelated.
	return rand.New(rand.NewSource(c.seed + (int64(id)+1)*-0x61c8864680b583eb))
}

// Client accesses the keyed object space through quorums. Each client
// owns its rng and suspicion state, so distinct clients can run
// concurrently without sharing anything but the cluster; a single Client
// is also safe to share across goroutines — its internal mutex guards
// only the rng, suspicion and per-key sequence floors, so concurrent
// operations on one client genuinely overlap (which is what lets a
// Session pipeline many keyed operations at once).
type Client struct {
	clientCore
	// MaxRetries bounds quorum re-selection on unresponsiveness.
	MaxRetries int
	// SuspicionTTL ages the client's failure detector: a server suspected
	// longer than this is optimistically forgiven at the next quorum
	// selection (one failed probe re-suspects it if it is still dead).
	// Zero — the default — disables aging: suspicion then clears only
	// through probe-on-forgive when it exhausts the quorum space. Set it
	// for churn workloads, where servers recover and must regain traffic.
	SuspicionTTL time.Duration
}

// Protocol errors.
var (
	// ErrNoCandidate means no value was vouched for by b+1 quorum members
	// (possible under concurrency or excessive faults).
	ErrNoCandidate = errors.New("sim: read found no value vouched by b+1 servers")
	// ErrRetriesExhausted means live quorums kept containing unresponsive
	// servers beyond the retry budget.
	ErrRetriesExhausted = errors.New("sim: retries exhausted")
)

// NewClient attaches a client to the cluster.
func (c *Cluster) NewClient(id int) *Client {
	return &Client{clientCore: newClientCore(c, id), MaxRetries: 32}
}

// quorumOrForgive picks a quorum avoiding suspects, with the client's
// SuspicionTTL driving rehabilitation; see clientCore.pickQuorumTTL for
// the full contract.
func (cl *Client) quorumOrForgive(ctx context.Context) (bitset.Set, error) {
	return cl.pickQuorumTTL(ctx, cl.SuspicionTTL)
}

// Write performs the [MR98a] write on the DefaultKey register — the
// original single-object API, now a thin wrapper over WriteKey.
func (cl *Client) Write(ctx context.Context, value string) error {
	return cl.WriteKey(ctx, DefaultKey, value)
}

// WriteKey performs the [MR98a] write on key's register: obtain a
// timestamp greater than any vouched in some quorum, then store
// (value, ts) at every member of a quorum. Timestamps are per key, so
// the protocol's safety argument applies to each key independently. It
// returns as soon as ctx is done, with an error wrapping ctx.Err().
func (cl *Client) WriteKey(ctx context.Context, key, value string) error {
	return cl.writeKey(ctx, key, value, nil)
}

// writeKey is WriteKey with an explicit probe route (nil = the cluster's
// counting transport; a Session passes its batcher). It is also the
// epoch gate — the whole operation runs inside the epoch it entered, so
// a reconfiguration's drain can wait it out — and the write-op telemetry
// span: every completion lands in the epoch/crash counters, successful
// ones in the write-latency histogram.
func (cl *Client) writeKey(ctx context.Context, key, value string, via Transport) error {
	st, err := cl.cluster.enterOp(ctx)
	if err != nil {
		return fmt.Errorf("sim: write: %w", err)
	}
	defer st.exit()
	if m := &cl.cluster.met; m.on {
		start := time.Now()
		err := cl.doWriteKey(ctx, key, value, via)
		m.opDone(false, time.Since(start), err)
		return err
	}
	return cl.doWriteKey(ctx, key, value, via)
}

func (cl *Client) doWriteKey(ctx context.Context, key, value string, via Transport) error {
	// Phase 1: read timestamps from a quorum.
	maxTS, err := cl.maxTimestamp(ctx, key, via)
	if err != nil {
		return fmt.Errorf("sim: write: %w", err)
	}
	tv := TaggedValue{Value: value, TS: cl.nextTS(key, maxTS)}
	// Phase 2: push to every member of a quorum; on unresponsive members,
	// suspect them and retry with a fresh quorum.
	for attempt := 0; attempt < cl.MaxRetries; attempt++ {
		if attempt > 0 {
			cl.cluster.met.retries.Inc()
		}
		q, err := cl.quorumOrForgive(ctx)
		if err != nil {
			return fmt.Errorf("sim: write: %w", err)
		}
		replies, err := cl.cluster.probeQuorum(ctx, q, Request{Op: OpWrite, Key: key, Value: tv}, via)
		if err != nil {
			return fmt.Errorf("sim: write: %w", err)
		}
		if cl.noteReplies(replies) {
			return nil
		}
	}
	return fmt.Errorf("sim: write: %w", ErrRetriesExhausted)
}

// maxTimestamp collects key's timestamps from a full quorum. Byzantine
// servers may report inflated timestamps; that only pushes the clock
// forward, which is harmless for safety (MR98a discusses bounding this;
// we accept it as the paper's protocol does).
func (cl *Client) maxTimestamp(ctx context.Context, key string, via Transport) (Timestamp, error) {
	for attempt := 0; attempt < cl.MaxRetries; attempt++ {
		if attempt > 0 {
			cl.cluster.met.retries.Inc()
		}
		q, err := cl.quorumOrForgive(ctx)
		if err != nil {
			return Timestamp{}, err
		}
		replies, err := cl.cluster.probeQuorum(ctx, q, Request{Op: OpReadTimestamps, Key: key, ReaderID: cl.id}, via)
		if err != nil {
			return Timestamp{}, err
		}
		// To keep fabricated timestamps from exploding the clock, accept
		// only timestamps vouched by b+1 members — the same masking rule
		// reads use.
		votes := make(map[Timestamp]int)
		complete := cl.noteReplies(replies)
		for _, resp := range replies {
			if resp.OK {
				votes[resp.Value.TS]++
			}
		}
		if !complete {
			continue
		}
		// Under concurrency the quorum can catch several writes in flight,
		// each vouched by fewer than b+1 servers. Falling back to the zero
		// timestamp here would let this write be ordered before values
		// already committed — a silent lost update — so retry until some
		// timestamp (possibly the initial zero one) is properly vouched.
		var max Timestamp
		vouched := false
		for ts, n := range votes {
			if n >= cl.cluster.b+1 {
				vouched = true
				if max.Less(ts) {
					max = ts
				}
			}
		}
		if !vouched {
			continue
		}
		return max, nil
	}
	return Timestamp{}, ErrRetriesExhausted
}

// Read performs the [MR98a] masking read on the DefaultKey register — the
// original single-object API, now a thin wrapper over ReadKey.
func (cl *Client) Read(ctx context.Context) (TaggedValue, error) {
	return cl.ReadKey(ctx, DefaultKey)
}

// ReadKey performs the [MR98a] masking read on key's register: gather
// answers from a quorum in parallel, keep pairs vouched for by ≥ b+1
// members, return the one with the highest timestamp. It returns as soon
// as ctx is done, with an error wrapping ctx.Err().
func (cl *Client) ReadKey(ctx context.Context, key string) (TaggedValue, error) {
	return cl.readKey(ctx, key, nil)
}

// readKey is ReadKey with an explicit probe route (nil = the cluster's
// counting transport; a Session passes its batcher). It is also the
// epoch gate — the whole operation runs inside the epoch it entered, so
// a reconfiguration's drain can wait it out — and the read-op telemetry
// span: every completion lands in the epoch/crash counters, successful
// ones in the read-latency histogram.
func (cl *Client) readKey(ctx context.Context, key string, via Transport) (TaggedValue, error) {
	st, err := cl.cluster.enterOp(ctx)
	if err != nil {
		return TaggedValue{}, fmt.Errorf("sim: read: %w", err)
	}
	defer st.exit()
	if m := &cl.cluster.met; m.on {
		start := time.Now()
		tv, err := cl.doReadKey(ctx, key, via)
		m.opDone(true, time.Since(start), err)
		return tv, err
	}
	return cl.doReadKey(ctx, key, via)
}

func (cl *Client) doReadKey(ctx context.Context, key string, via Transport) (TaggedValue, error) {
	for attempt := 0; attempt < cl.MaxRetries; attempt++ {
		if attempt > 0 {
			cl.cluster.met.retries.Inc()
		}
		q, err := cl.quorumOrForgive(ctx)
		if err != nil {
			return TaggedValue{}, fmt.Errorf("sim: read: %w", err)
		}
		replies, err := cl.cluster.probeQuorum(ctx, q, Request{Op: OpRead, Key: key, ReaderID: cl.id}, via)
		if err != nil {
			return TaggedValue{}, fmt.Errorf("sim: read: %w", err)
		}
		complete := cl.noteReplies(replies)
		if !complete {
			continue
		}
		votes := make(map[TaggedValue]int)
		for _, resp := range replies {
			votes[resp.Value]++
		}
		best, found := TaggedValue{}, false
		for tv, n := range votes {
			if n >= cl.cluster.b+1 {
				if !found || best.TS.Less(tv.TS) {
					best, found = tv, true
				}
			}
		}
		if !found {
			return TaggedValue{}, ErrNoCandidate
		}
		return best, nil
	}
	return TaggedValue{}, fmt.Errorf("sim: read: %w", ErrRetriesExhausted)
}
