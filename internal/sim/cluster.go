package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"bqs/internal/bitset"
	"bqs/internal/core"
)

// Cluster is a set of servers fronted by a b-masking quorum system.
type Cluster struct {
	system  core.System
	b       int
	servers []*Server

	mu       sync.Mutex
	rng      *rand.Rand
	dropRate float64 // per-message response-loss probability
}

// NewCluster builds a cluster with one server per universe element. b is
// the masking bound the protocol should defend (usually the system's
// MaskingBound).
func NewCluster(system core.System, b int, seed int64) (*Cluster, error) {
	if b < 0 {
		return nil, fmt.Errorf("sim: masking bound %d must be non-negative", b)
	}
	if m, ok := system.(core.Masking); ok && m.MaskingBound() < b {
		return nil, fmt.Errorf("sim: system %s masks only %d < requested b=%d",
			system.Name(), m.MaskingBound(), b)
	}
	n := system.UniverseSize()
	servers := make([]*Server, n)
	for i := range servers {
		servers[i] = NewServer(i)
	}
	return &Cluster{
		system:  system,
		b:       b,
		servers: servers,
		rng:     rand.New(rand.NewSource(seed)),
	}, nil
}

// System returns the quorum system; B returns the masking bound; N the
// number of servers.
func (c *Cluster) System() core.System { return c.system }
func (c *Cluster) B() int              { return c.b }
func (c *Cluster) N() int              { return len(c.servers) }

// Server returns server i (for fault injection and assertions).
func (c *Cluster) Server(i int) *Server { return c.servers[i] }

// InjectFault sets the behavior of the given servers.
func (c *Cluster) InjectFault(behavior Behavior, ids ...int) error {
	for _, id := range ids {
		if id < 0 || id >= len(c.servers) {
			return fmt.Errorf("sim: server id %d out of range [0,%d)", id, len(c.servers))
		}
		c.servers[id].SetBehavior(behavior)
	}
	return nil
}

// FaultCounts returns (crashed, byzantine) tallies.
func (c *Cluster) FaultCounts() (crashed, byzantine int) {
	for _, s := range c.servers {
		switch b := s.Behavior(); {
		case b == Crashed:
			crashed++
		case b.IsByzantine():
			byzantine++
		}
	}
	return crashed, byzantine
}

// SetDropRate makes the network lossy: every response is independently
// lost with probability p, which clients observe exactly like a crash
// (and handle by suspecting the server and re-selecting quorums). Use
// modest rates; suspected servers are never rehabilitated, so a very
// lossy network eventually exhausts the quorum space, as a real
// fail-stop detector would.
func (c *Cluster) SetDropRate(p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("sim: drop rate %g outside [0,1]", p)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropRate = p
	return nil
}

// dropped rolls the message-loss dice.
func (c *Cluster) dropped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropRate > 0 && c.rng.Float64() < c.dropRate
}

// readFrom probes server i, subject to network loss.
func (c *Cluster) readFrom(i, readerID int) (TaggedValue, bool) {
	if c.dropped() {
		return TaggedValue{}, false
	}
	return c.servers[i].HandleRead(readerID)
}

// writeTo stores at server i, subject to network loss.
func (c *Cluster) writeTo(i int, tv TaggedValue) bool {
	if c.dropped() {
		return false
	}
	return c.servers[i].HandleWrite(tv)
}

// pickQuorum selects a quorum avoiding the suspected-dead set.
func (c *Cluster) pickQuorum(suspected bitset.Set) (bitset.Set, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.system.SelectQuorum(c.rng, suspected)
}

// Client accesses the replicated variable through quorums.
type Client struct {
	id        int
	cluster   *Cluster
	suspected bitset.Set // servers observed unresponsive
	// MaxRetries bounds quorum re-selection on unresponsiveness.
	MaxRetries int
}

// Protocol errors.
var (
	// ErrNoCandidate means no value was vouched for by b+1 quorum members
	// (possible under concurrency or excessive faults).
	ErrNoCandidate = errors.New("sim: read found no value vouched by b+1 servers")
	// ErrRetriesExhausted means live quorums kept containing unresponsive
	// servers beyond the retry budget.
	ErrRetriesExhausted = errors.New("sim: retries exhausted")
)

// NewClient attaches a client to the cluster.
func (c *Cluster) NewClient(id int) *Client {
	return &Client{id: id, cluster: c, suspected: bitset.New(c.N()), MaxRetries: 32}
}

// quorumOrForgive picks a quorum avoiding suspects; when suspicion has
// grown so large that no quorum survives, it forgives all suspects once
// and retries — transient message loss must not permanently shrink the
// live set (crashed servers will simply be re-suspected).
func (cl *Client) quorumOrForgive() (bitset.Set, error) {
	q, err := cl.cluster.pickQuorum(cl.suspected)
	if err == nil {
		return q, nil
	}
	if errors.Is(err, core.ErrNoLiveQuorum) && !cl.suspected.Empty() {
		cl.suspected = bitset.New(cl.cluster.N())
		return cl.cluster.pickQuorum(cl.suspected)
	}
	return bitset.Set{}, err
}

// Write performs the [MR98a] write: obtain a timestamp greater than any in
// some quorum, then store (value, ts) at every member of a quorum.
func (cl *Client) Write(value string) error {
	// Phase 1: read timestamps from a quorum.
	maxTS, err := cl.maxTimestamp()
	if err != nil {
		return fmt.Errorf("sim: write: %w", err)
	}
	tv := TaggedValue{Value: value, TS: Timestamp{Seq: maxTS.Seq + 1, Writer: cl.id}}
	// Phase 2: push to every member of a quorum; on unresponsive members,
	// suspect them and retry with a fresh quorum.
	for attempt := 0; attempt < cl.MaxRetries; attempt++ {
		q, err := cl.quorumOrForgive()
		if err != nil {
			return fmt.Errorf("sim: write: %w", err)
		}
		if cl.pushToQuorum(q, tv) {
			return nil
		}
	}
	return fmt.Errorf("sim: write: %w", ErrRetriesExhausted)
}

func (cl *Client) pushToQuorum(q bitset.Set, tv TaggedValue) bool {
	ok := true
	q.Range(func(i int) bool {
		if !cl.cluster.writeTo(i, tv) {
			cl.suspected.Add(i)
			ok = false
		}
		return true
	})
	return ok
}

// maxTimestamp collects timestamps from a full quorum. Byzantine servers
// may report inflated timestamps; that only pushes the clock forward,
// which is harmless for safety (MR98a discusses bounding this; we accept
// it as the paper's protocol does).
func (cl *Client) maxTimestamp() (Timestamp, error) {
	for attempt := 0; attempt < cl.MaxRetries; attempt++ {
		q, err := cl.quorumOrForgive()
		if err != nil {
			return Timestamp{}, err
		}
		var max Timestamp
		complete := true
		// To keep fabricated timestamps from exploding the clock, accept
		// only timestamps vouched by b+1 members — the same masking rule
		// reads use.
		votes := make(map[Timestamp]int)
		q.Range(func(i int) bool {
			tv, alive := cl.cluster.readFrom(i, cl.id)
			if !alive {
				cl.suspected.Add(i)
				complete = false
				return false
			}
			votes[tv.TS]++
			return true
		})
		if !complete {
			continue
		}
		for ts, n := range votes {
			if n >= cl.cluster.b+1 && max.Less(ts) {
				max = ts
			}
		}
		return max, nil
	}
	return Timestamp{}, ErrRetriesExhausted
}

// Read performs the [MR98a] masking read: gather answers from a quorum,
// keep pairs vouched for by ≥ b+1 members, return the one with the
// highest timestamp.
func (cl *Client) Read() (TaggedValue, error) {
	for attempt := 0; attempt < cl.MaxRetries; attempt++ {
		q, err := cl.quorumOrForgive()
		if err != nil {
			return TaggedValue{}, fmt.Errorf("sim: read: %w", err)
		}
		votes := make(map[TaggedValue]int)
		complete := true
		q.Range(func(i int) bool {
			tv, alive := cl.cluster.readFrom(i, cl.id)
			if !alive {
				cl.suspected.Add(i)
				complete = false
				return false
			}
			votes[tv]++
			return true
		})
		if !complete {
			continue
		}
		best, found := TaggedValue{}, false
		for tv, n := range votes {
			if n >= cl.cluster.b+1 {
				if !found || best.TS.Less(tv.TS) {
					best, found = tv, true
				}
			}
		}
		if !found {
			return TaggedValue{}, ErrNoCandidate
		}
		return best, nil
	}
	return TaggedValue{}, fmt.Errorf("sim: read: %w", ErrRetriesExhausted)
}
