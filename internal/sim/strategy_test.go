package sim

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"bqs/internal/measures"
	"bqs/internal/systems"
)

// TestOptimalStrategyTracksLPLoad is the acceptance experiment for
// strategy-backed selection: balanced concurrent traffic against a
// fault-free M-Grid(4,1) cluster under WithOptimalStrategy must measure a
// busiest-server frequency within 10% of the LP-computed L(Q) — tighter
// than the ±15% the uniform pin in TestLoadProfileTracksPaperLoad allows.
// Run with -race; the strategy picker is shared by every client.
func TestOptimalStrategyTracksLPLoad(t *testing.T) {
	mg, err := systems.NewMGrid(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(mg, 1, WithSeed(211), WithOptimalStrategy())
	if err != nil {
		t.Fatal(err)
	}

	// The cluster's strategy load must be the LP optimum itself.
	ex, err := mg.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	lp, _, err := measures.Load(ex)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.StrategyLoad(); math.Abs(got-lp) > 1e-9 {
		t.Fatalf("StrategyLoad = %.6f, want LP optimum %.6f", got, lp)
	}
	if st := c.Strategy(); st == nil || st.Len() != ex.NumQuorums() {
		t.Fatalf("installed strategy missing or misaligned")
	}

	var wg sync.WaitGroup
	for id := 0; id < 16; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := c.NewClient(id)
			for op := 0; op < 60; op++ {
				if op%6 == 0 {
					if err := cl.Write(ctx, fmt.Sprintf("v%d-%d", id, op)); err != nil {
						t.Errorf("client %d: %v", id, err)
						return
					}
					continue
				}
				if _, err := cl.Read(ctx); err != nil && !errors.Is(err, ErrNoCandidate) {
					t.Errorf("client %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()

	got := c.PeakLoad()
	if got < 0.90*lp || got > 1.10*lp {
		t.Fatalf("peak measured load %.4f outside ±10%% of LP L(Q) = %.4f", got, lp)
	}
	t.Logf("peak load %.4f vs LP %.4f (%+.1f%%)", got, lp, 100*(got/lp-1))
}

// TestStrategySelectionRenormalizesUnderSuspicion crashes one server and
// checks a strategy-driven client conditions on the live set: once the
// crash is suspected, selection renormalizes over surviving quorums
// instead of sampling dead ones, so operations keep succeeding and the
// dead server receives no further probes.
func TestStrategySelectionRenormalizesUnderSuspicion(t *testing.T) {
	mg, err := systems.NewMGrid(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(mg, 1, WithSeed(223), WithOptimalStrategy())
	if err != nil {
		t.Fatal(err)
	}
	const dead = 5 // row 1, col 1: kills 9 of the 36 quorums... their weight shifts
	if err := c.InjectFault(Crashed, dead); err != nil {
		t.Fatal(err)
	}

	cl := c.NewClient(1)
	// Warm-up: enough operations to stumble on the crash and suspect it.
	for i := 0; i < 10; i++ {
		if err := cl.Write(ctx, fmt.Sprintf("warm-%d", i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if !cl.suspected.contains(dead) {
		t.Skipf("client never touched server %d during warm-up (strategy avoids it)", dead)
	}

	// Post-suspicion traffic must never probe the dead server again: the
	// renormalized strategy has zero weight on quorums containing it.
	c.ResetLoadProfile()
	for i := 0; i < 30; i++ {
		if err := cl.Write(ctx, fmt.Sprintf("op-%d", i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if _, err := cl.Read(ctx); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if f := c.LoadProfile()[dead]; f != 0 {
		t.Fatalf("dead server still at %.4f of accesses after suspicion — picker sampled dead quorums", f)
	}
	if c.PeakLoad() == 0 {
		t.Fatal("no traffic measured")
	}
}
