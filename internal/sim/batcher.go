package sim

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrSessionClosed is returned by session operations issued after Close.
var ErrSessionClosed = errors.New("sim: session closed")

// batcher coalesces concurrently-issued probes destined for the same
// place into one transport frame. It implements Transport, so the client
// protocol code is oblivious to it: a probe enqueues and waits; the queue
// flushes when it reaches the batch size or when the linger expires,
// whichever is first, and the whole frame travels through
// Cluster.invokeBatch (one round trip, per-item load accounting).
//
// Grouping is per destination server by default; a transport that knows
// several servers share a frame — wire.Client, whose shards each host
// many replicas — exposes BatchGrouper and gets per-shard coalescing, so
// one TCP frame carries probes for every replica of the shard.
type batcher struct {
	c        *Cluster
	maxBatch int
	linger   time.Duration
	group    func(server int) int
	// inflight reports how many session operations are currently live,
	// and lowers the flush threshold to it: with k operations in flight
	// a queue holding k probes already has company from every operation
	// that could be in this wave, so flushing then trades some frame
	// fullness (an operation can contribute SEVERAL probes to one group
	// per phase — one per quorum member the group hosts — so the true
	// wave can be larger) for never stalling a wave on the linger. The
	// linger remains the fallback for waves where some operations skip
	// this group. nil means no such signal (flush on maxBatch or linger
	// only).
	inflight func() int

	mu     sync.Mutex
	queues map[int]*batchQueue
	closed bool
}

// batchQueue is the pending frame for one destination group.
type batchQueue struct {
	items   []BatchItem
	waiters []chan batchResult // index-aligned with items; each buffered(1)
	timer   *time.Timer        // armed while the queue lingers non-empty
}

// batchResult is what a flushed frame hands each waiter.
type batchResult struct {
	resp Response
	err  error
}

// newBatcher wires a batcher to the cluster's transport. maxBatch ≤ 1
// still batches correctly — every probe just flushes as a frame of one.
func newBatcher(c *Cluster, maxBatch int, linger time.Duration) *batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	b := &batcher{
		c:        c,
		maxBatch: maxBatch,
		linger:   linger,
		queues:   make(map[int]*batchQueue),
	}
	if g, ok := c.transport.(BatchGrouper); ok {
		b.group = g.GroupOf
	} else {
		b.group = func(server int) int { return server }
	}
	return b
}

// Invoke implements Transport: enqueue the probe for its destination
// group and wait for the frame carrying it to come back. The frame
// itself travels under a background context — it aggregates probes from
// operations with unrelated deadlines, so no single operation's
// cancellation may abort it — while each waiter still honors its own ctx.
func (b *batcher) Invoke(ctx context.Context, server int, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	ch := make(chan batchResult, 1)
	g := b.group(server)

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return Response{}, ErrSessionClosed
	}
	q := b.queues[g]
	if q == nil {
		q = &batchQueue{}
		b.queues[g] = q
	}
	q.items = append(q.items, BatchItem{Server: server, Req: req})
	q.waiters = append(q.waiters, ch)
	full := b.maxBatch
	if b.inflight != nil {
		if live := b.inflight(); live < full {
			full = live
		}
		if full < 1 {
			full = 1
		}
	}
	switch {
	case len(q.items) >= full:
		items, waiters := q.take()
		b.mu.Unlock()
		// Flush on a fresh goroutine, never synchronously in the issuing
		// probe's: the frame travels under a background context, and a
		// probe stuck inside a stalled flush would never reach the ctx
		// select below — its operation's deadline would silently stop
		// working the moment it triggered a flush.
		go b.flush(items, waiters)
	case len(q.items) == 1 && b.linger > 0:
		q.timer = time.AfterFunc(b.linger, func() { b.flushGroup(g) })
		b.mu.Unlock()
	case b.linger <= 0:
		// No linger: nothing later will flush this queue, so it must go
		// now (a frame of one — the degenerate unbatched configuration).
		items, waiters := q.take()
		b.mu.Unlock()
		go b.flush(items, waiters)
	default:
		b.mu.Unlock()
	}

	select {
	case r := <-ch:
		return r.resp, r.err
	case <-ctx.Done():
		// The probe stays in the frame (the flusher's send is buffered and
		// never blocks); only this waiter gives up.
		return Response{}, ctx.Err()
	}
}

// take empties the queue, handing ownership of the pending frame to the
// caller, and disarms the linger timer.
func (q *batchQueue) take() ([]BatchItem, []chan batchResult) {
	items, waiters := q.items, q.waiters
	q.items, q.waiters = nil, nil
	if q.timer != nil {
		q.timer.Stop()
		q.timer = nil
	}
	return items, waiters
}

// flushGroup is the linger-expiry path: flush whatever the group has
// accumulated.
func (b *batcher) flushGroup(g int) {
	b.mu.Lock()
	q := b.queues[g]
	if q == nil || len(q.items) == 0 {
		b.mu.Unlock()
		return
	}
	items, waiters := q.take()
	b.mu.Unlock()
	b.flush(items, waiters)
}

// flush sends one frame and distributes its responses to the waiters.
func (b *batcher) flush(items []BatchItem, waiters []chan batchResult) {
	resps, err := b.c.invokeBatch(context.Background(), items)
	for i, ch := range waiters {
		r := batchResult{err: err}
		if err == nil {
			r.resp = resps[i]
		}
		ch <- r // buffered; an abandoned waiter never blocks the flusher
	}
}

// close flushes anything still pending and refuses further probes.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	type pending struct {
		items   []BatchItem
		waiters []chan batchResult
	}
	var rest []pending
	for _, q := range b.queues {
		if len(q.items) > 0 {
			items, waiters := q.take()
			rest = append(rest, pending{items, waiters})
		}
	}
	b.mu.Unlock()
	for _, p := range rest {
		b.flush(p.items, p.waiters)
	}
}
