package sim

import (
	"math"
	"reflect"
	"testing"
	"time"
)

func TestChurnCorrelatedGroupFlipsTogether(t *testing.T) {
	cc := ChurnConfig{
		MTBF:   50 * time.Millisecond,
		MTTR:   20 * time.Millisecond,
		Groups: []ChurnGroup{{Servers: []int{1, 3, 5}, Correlated: true}},
	}
	sched, err := cc.Schedule(8, time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Group members' events come in (At, Behavior)-identical triples; the
	// domain process must produce the same timeline for each member.
	perServer := map[int][]FaultEvent{}
	for _, e := range sched.Events() {
		perServer[e.Server] = append(perServer[e.Server], e)
	}
	if len(perServer[1]) == 0 {
		t.Fatal("correlated group produced no events")
	}
	for _, s := range []int{3, 5} {
		if len(perServer[s]) != len(perServer[1]) {
			t.Fatalf("server %d has %d events, server 1 has %d", s, len(perServer[s]), len(perServer[1]))
		}
		for i, e := range perServer[s] {
			ref := perServer[1][i]
			if e.At != ref.At || e.Behavior != ref.Behavior {
				t.Fatalf("server %d event %d = %v, server 1 = %v", s, i, e, ref)
			}
		}
	}
	// Non-members keep their individual streams: same as a group-free run.
	plain, err := ChurnConfig{MTBF: cc.MTBF, MTTR: cc.MTTR}.Schedule(8, time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	pick := func(s *FaultSchedule, server int) []FaultEvent {
		var out []FaultEvent
		for _, e := range s.Events() {
			if e.Server == server {
				out = append(out, e)
			}
		}
		return out
	}
	for _, s := range []int{0, 2, 4, 6, 7} {
		if !reflect.DeepEqual(pick(sched, s), pick(plain, s)) {
			t.Fatalf("server %d stream perturbed by an unrelated domain group", s)
		}
	}
}

func TestChurnGroupRateOverride(t *testing.T) {
	// Servers 4-7 churn 10x faster than the base: they should show many
	// more events over the same horizon.
	cc := ChurnConfig{
		MTBF: time.Second,
		MTTR: 500 * time.Millisecond,
		Groups: []ChurnGroup{{
			Servers: []int{4, 5, 6, 7},
			MTBF:    100 * time.Millisecond,
			MTTR:    50 * time.Millisecond,
		}},
	}
	sched, err := cc.Schedule(8, 10*time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	slow, fast := 0, 0
	for _, e := range sched.Events() {
		if e.Server >= 4 {
			fast++
		} else {
			slow++
		}
	}
	if fast < 4*slow {
		t.Errorf("fast group has %d events vs %d base — override not applied", fast, slow)
	}
	// Reproducibility must extend to groups.
	again, err := cc.Schedule(8, 10*time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sched.Events(), again.Events()) {
		t.Error("grouped schedule not reproducible")
	}
}

func TestChurnGroupValidation(t *testing.T) {
	base := ChurnConfig{MTBF: time.Second, MTTR: time.Second}
	cases := []ChurnConfig{
		{MTBF: base.MTBF, MTTR: base.MTTR, Groups: []ChurnGroup{{}}},                                           // empty group
		{MTBF: base.MTBF, MTTR: base.MTTR, Groups: []ChurnGroup{{Servers: []int{9}}}},                          // out of universe
		{MTBF: base.MTBF, MTTR: base.MTTR, Groups: []ChurnGroup{{Servers: []int{1}}, {Servers: []int{1}}}},     // double claim
		{MTBF: base.MTBF, MTTR: base.MTTR, Groups: []ChurnGroup{{Servers: []int{1}, MTBF: -time.Millisecond}}}, // bad rate
	}
	for i, cc := range cases {
		if _, err := cc.Schedule(8, time.Second, 1); err == nil {
			t.Errorf("config %d accepted", i)
		}
		if _, err := cc.StationaryDown(8); err == nil {
			t.Errorf("config %d StationaryDown accepted", i)
		}
		if _, err := cc.FailureModel(8); err == nil {
			t.Errorf("config %d FailureModel accepted", i)
		}
	}
}

func TestStationaryDownAndFailureModel(t *testing.T) {
	cc := ChurnConfig{
		MTBF: 300 * time.Millisecond,
		MTTR: 100 * time.Millisecond, // base: down 0.25
		Groups: []ChurnGroup{
			{Servers: []int{2, 3}, MTBF: 100 * time.Millisecond, MTTR: 100 * time.Millisecond}, // down 0.5
			{Servers: []int{4, 5}, Correlated: true, MTBF: 900 * time.Millisecond},             // domain, down 0.1
		},
	}
	down, err := cc.StationaryDown(6)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.25, 0.5, 0.5, 0.1, 0.1}
	for i := range want {
		if math.Abs(down[i]-want[i]) > 1e-12 {
			t.Errorf("StationaryDown[%d] = %g, want %g", i, down[i], want[i])
		}
	}
	m, err := cc.FailureModel(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Domains) != 1 || m.Domains[0].P != 0.1 || !reflect.DeepEqual(m.Domains[0].Members, []int{4, 5}) {
		t.Fatalf("domains = %+v", m.Domains)
	}
	// Correlated members carry no independent term; the domain is their
	// whole marginal, so the model's marginals equal StationaryDown.
	marginals := m.DownProbabilities(6)
	for i := range want {
		if math.Abs(marginals[i]-want[i]) > 1e-12 {
			t.Errorf("model marginal[%d] = %g, want %g", i, marginals[i], want[i])
		}
	}
}

func TestParseChurnGroups(t *testing.T) {
	cc, err := ParseChurn("mtbf=1s,mttr=100ms; servers=4-7,mtbf=300ms; domain=0-1+3,mttr=200ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(cc.Groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(cc.Groups))
	}
	g0, g1 := cc.Groups[0], cc.Groups[1]
	if g0.Correlated || !reflect.DeepEqual(g0.Servers, []int{4, 5, 6, 7}) || g0.MTBF != 300*time.Millisecond || g0.MTTR != 0 {
		t.Errorf("group 0 = %+v", g0)
	}
	if !g1.Correlated || !reflect.DeepEqual(g1.Servers, []int{0, 1, 3}) || g1.MTTR != 200*time.Millisecond {
		t.Errorf("group 1 = %+v", g1)
	}
	// Trailing empty clause is fine; single-clause specs unchanged.
	if _, err := ParseChurn("mtbf=1s,mttr=1s;"); err != nil {
		t.Errorf("trailing semicolon rejected: %v", err)
	}
	bad := []string{
		"mtbf=1s,mttr=1s; mtbf=2s",                // group without members
		"mtbf=1s,mttr=1s; servers=0,domain=1",     // members twice
		"mtbf=1s,mttr=1s; servers=0,down=crashed", // down is base-only
		"mtbf=1s,mttr=1s; domain=0+0",             // duplicate member
		"mtbf=1s,mttr=1s; domain=x",               // bad member
		"; servers=0",                             // no base
	}
	for _, spec := range bad {
		if _, err := ParseChurn(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func FuzzParseChurn(f *testing.F) {
	for _, seed := range []string{
		"mtbf=300ms,mttr=100ms",
		"mtbf=300ms, mttr=100ms, down=byz-stale, servers=2-4",
		"mtbf=1s,mttr=100ms; servers=4-7,mtbf=300ms; domain=0-1+3,mttr=200ms",
		"mtbf=1s,mttr=1s,recover=restart",
		"", ";", "mtbf=1s", "mtbf=1s,mttr=1s;servers=0,servers=1",
		"mtbf=1s,mttr=1s;domain=0+0", "mtbf=-1s,mttr=1s", "a=b",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cc, err := ParseChurn(spec)
		if err != nil {
			return
		}
		// Anything accepted must survive model conversion and scheduling
		// over a universe that covers it, or fail with an error — never
		// panic. Universe: the largest index mentioned plus one.
		n := 1
		for _, s := range cc.Servers {
			if s >= n {
				n = s + 1
			}
		}
		for _, g := range cc.Groups {
			for _, s := range g.Servers {
				if s >= n {
					n = s + 1
				}
			}
		}
		if n > 1024 {
			t.Skip("universe too large to schedule")
		}
		if m, err := cc.FailureModel(n); err == nil {
			if err := m.Validate(n); err != nil {
				t.Fatalf("ParseChurn(%q) produced invalid FailureModel: %v", spec, err)
			}
		}
		if _, err := cc.StationaryDown(n); err == nil {
			if _, err := cc.Schedule(n, 50*time.Millisecond, 1); err != nil {
				// Schedule may still reject behaviors (e.g. down=correct);
				// that's an error path, not a crash.
				_ = err
			}
		}
	})
}
