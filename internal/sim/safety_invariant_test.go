package sim

// The safety-invariant checker: record concurrent read/write histories
// while an adversary corrupts servers within the masking budget, then
// assert the [MR98a] safe-register semantics offline —
//
//  1. no fabricated value is ever returned (masking must filter every
//     value the Byzantine servers invent), and
//  2. reads never travel backwards past a completed write: a read that
//     STARTS after write i COMPLETED returns write j ≥ i.
//
// Two scoping rules make the check sound.
//
// First, [MR98a] implements a SAFE variable: the freshness guarantee
// holds only for reads that overlap no write. A read concurrent with an
// in-flight write can legitimately see honest votes split between the
// old and new value, letting a single within-budget stale server's
// replay become the only b+1-voted candidate — so assertion 2 applies
// only to write-free reads (failed write attempts count as writes here;
// their windows are in the history too). Assertion 1 is unconditional
// for within-budget reads: any b+1 identical votes include an honest
// server, and honest servers only serve values a writer actually wrote,
// concurrency or not.
//
// Second, [MR98a] assumes a STATIC set of at most b faulty servers,
// while our adversary is mobile — it migrates corruption between ticks.
// An operation whose window straddles a migration can see two different
// servers answer Byzantine even though at most b were corrupt at any
// instant; from that operation's perspective the fault budget was
// exceeded and the protocol promises nothing. The checker therefore
// tracks each server's corruption intervals (via a Flipper wrapper with
// conservative timestamps) and asserts the register semantics exactly
// for the operations whose fault EXPOSURE — distinct servers corrupt at
// any point inside the op's window — stays ≤ b, requiring that a healthy
// share of reads qualify so the run proves something. Single-writer
// writes need no such filter: nextTS's per-key floor keeps their
// timestamps monotone no matter what phase 1 saw.
//
// The histories are recorded under real concurrency (several reader
// goroutines against a writer), so CI's -race pass over this package
// doubles as a data-race audit of the adversary seam itself.

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// histEntry is one operation of a recorded history. Failed write
// attempts are recorded too (ok=false): their values may partially land
// on servers, and their windows mark reads as write-concurrent.
type histEntry struct {
	start, end time.Time
	read       bool
	ok         bool   // operation completed successfully
	value      string // written value, or value a read returned
}

// corruptionLog reconstructs per-server corruption intervals from
// adversary flips.
type corruptionLog struct {
	mu    sync.Mutex
	spans map[int][]corruptionSpan
}

type corruptionSpan struct {
	from time.Time
	to   time.Time // zero while still corrupt
}

func newCorruptionLog() *corruptionLog {
	return &corruptionLog{spans: make(map[int][]corruptionSpan)}
}

// open starts a corruption span; a corrupt→corrupt re-flip (the timing
// adversary switching modes) keeps its single open span.
func (cl *corruptionLog) open(server int, at time.Time) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	spans := cl.spans[server]
	if len(spans) > 0 && spans[len(spans)-1].to.IsZero() {
		return
	}
	cl.spans[server] = append(spans, corruptionSpan{from: at})
}

// close ends the open corruption span, if any.
func (cl *corruptionLog) close(server int, at time.Time) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if spans := cl.spans[server]; len(spans) > 0 && spans[len(spans)-1].to.IsZero() {
		spans[len(spans)-1].to = at
	}
}

// spanFlipper wraps the fleet's Flipper to record conservative corruption
// spans: opened BEFORE a corrupting flip lands and closed AFTER a restore
// lands. Timestamping on the far side of each flip (as an after-the-fact
// hook would) leaves a sliver during which a server already answers
// corruptly but the log still reads clean — exactly the kind of window
// the exposure filter exists to catch.
type spanFlipper struct {
	inner Flipper
	log   *corruptionLog
}

func (sf spanFlipper) Flip(ctx context.Context, server int, b Behavior) error {
	if b != Correct {
		sf.log.open(server, time.Now())
	}
	err := sf.inner.Flip(ctx, server, b)
	switch {
	case b == Correct && err == nil:
		sf.log.close(server, time.Now())
	case b != Correct && err != nil:
		// The corruption never landed; retract the span immediately.
		sf.log.close(server, time.Now())
	}
	return err
}

// exposure counts the distinct servers corrupt at any instant within
// [start, end].
func (cl *corruptionLog) exposure(start, end time.Time) int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	n := 0
	for _, spans := range cl.spans {
		for _, sp := range spans {
			if sp.from.After(end) {
				continue
			}
			if sp.to.IsZero() || !sp.to.Before(start) {
				n++
				break
			}
		}
	}
	return n
}

// writeIndex parses the "w-<i>" values the histories use; the empty
// value (register never written) maps to -1.
func writeIndex(t *testing.T, value string) int {
	t.Helper()
	if value == "" {
		return -1
	}
	num, ok := strings.CutPrefix(value, "w-")
	if !ok {
		t.Fatalf("read returned a value no writer wrote: %q", value)
	}
	i, err := strconv.Atoi(num)
	if err != nil {
		t.Fatalf("read returned a value no writer wrote: %q", value)
	}
	return i
}

// checkHistory asserts the register semantics over a recorded history
// for every read within the fault budget b; log may be nil when the
// whole run kept a static fault set (then every read qualifies). It
// returns how many reads got the full safe-register freshness check
// (within budget AND write-free).
func checkHistory(t *testing.T, hist []histEntry, log *corruptionLog, b int) int {
	t.Helper()
	checked := 0
	for _, e := range hist {
		if !e.read {
			continue
		}
		if log != nil && log.exposure(e.start, e.end) > b {
			// Mobile-adversary window: the op saw more than b distinct
			// corrupt servers, outside the [MR98a] model. No guarantee.
			continue
		}
		// Masking is unconditional within budget: fabricated values must
		// never surface, concurrent writes or not.
		if strings.Contains(e.value, FabricatedValue) {
			t.Fatalf("fabricated value returned to a reader: %q", e.value)
		}
		// The safe-register freshness guarantee covers only write-free
		// reads: a read overlapping any write attempt may see honest votes
		// split across old and new values and return something older.
		concurrent := false
		floor := -1
		for _, w := range hist {
			if w.read {
				continue
			}
			if w.start.Before(e.end) && e.start.Before(w.end) {
				concurrent = true
				break
			}
			if w.ok && w.end.Before(e.start) {
				if i := writeIndex(t, w.value); i > floor {
					floor = i
				}
			}
		}
		if concurrent {
			continue
		}
		checked++
		if got := writeIndex(t, e.value); got < floor {
			t.Fatalf("read travelled backwards: returned w-%d, but w-%d completed before it started", got, floor)
		}
	}
	return checked
}

// runAdversarialHistory drives writer+readers against a b=1 masking
// fleet while the given adversary corrupts servers, and returns the
// completed-operation history plus the corruption log.
func runAdversarialHistory(t *testing.T, cfg AdversaryConfig) ([]histEntry, *corruptionLog) {
	t.Helper()
	c := newThresholdCluster(t, 1, 31)
	defer c.Close()

	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	log := newCorruptionLog()
	adv, err := NewAdversary(cfg, spanFlipper{c, log}, c, c.N())
	if err != nil {
		t.Fatal(err)
	}
	var advDone sync.WaitGroup
	advDone.Add(1)
	go func() {
		defer advDone.Done()
		_ = adv.Run(runCtx)
	}()

	var mu sync.Mutex
	var hist []histEntry
	record := func(e histEntry) {
		mu.Lock()
		hist = append(hist, e)
		mu.Unlock()
	}

	var ops sync.WaitGroup
	const (
		writes  = 40
		readers = 3
	)
	ops.Add(1)
	go func() {
		defer ops.Done()
		w := c.NewClient(100)
		w.MaxRetries = 4 * c.N()
		w.SuspicionTTL = 5 * time.Millisecond
		for i := 0; i < writes; i++ {
			start := time.Now()
			err := w.Write(runCtx, fmt.Sprintf("w-%d", i))
			// Liveness hiccups under corruption are not safety bugs, but a
			// failed attempt may still have landed its value on some
			// servers and its window still makes overlapping reads
			// write-concurrent — record it as a non-ok write.
			record(histEntry{start: start, end: time.Now(), ok: err == nil, value: fmt.Sprintf("w-%d", i)})
		}
	}()
	readLoop := func(id, count int) {
		cl := c.NewClient(200 + id)
		cl.MaxRetries = 4 * c.N()
		cl.SuspicionTTL = 5 * time.Millisecond
		for i := 0; i < count; i++ {
			start := time.Now()
			got, err := cl.Read(runCtx)
			if err != nil {
				if errors.Is(err, context.Canceled) {
					return
				}
				continue
			}
			record(histEntry{start: start, end: time.Now(), read: true, ok: true, value: got.Value})
		}
	}
	for r := 0; r < readers; r++ {
		ops.Add(1)
		go func(id int) {
			defer ops.Done()
			readLoop(id, writes)
		}(r)
	}
	ops.Wait()
	// Read-only tail: the writer is done, so every within-budget read here
	// is write-free and receives the full safe-register freshness check
	// (the concurrent phase above mostly exercises the masking check — its
	// reads overlap write windows).
	var tail sync.WaitGroup
	for r := 0; r < readers; r++ {
		tail.Add(1)
		go func(id int) {
			defer tail.Done()
			readLoop(100+id, writes)
		}(r)
	}
	tail.Wait()
	cancel()
	advDone.Wait()
	if adv.Ticks() == 0 {
		t.Fatal("adversary never ran")
	}
	return hist, log
}

// assertSafeHistory runs the checker and demands the run actually
// exercised it: a healthy share of reads must have received the full
// freshness check (within budget and write-free — readers outlive the
// writer by design so plenty of write-free reads exist).
func assertSafeHistory(t *testing.T, hist []histEntry, log *corruptionLog, b int) {
	t.Helper()
	reads := 0
	for _, e := range hist {
		if e.read {
			reads++
		}
	}
	checked := checkHistory(t, hist, log, b)
	if reads == 0 || checked < reads/4 {
		t.Fatalf("only %d of %d reads got the full check — the run proves too little", checked, reads)
	}
}

func TestSafetyUnderRandomFabricatingAdversary(t *testing.T) {
	hist, log := runAdversarialHistory(t, AdversaryConfig{
		Kind: AdversaryRandom, B: 1, Behavior: ByzantineFabricate,
		Interval: 2 * time.Millisecond, Seed: 1,
	})
	assertSafeHistory(t, hist, log, 1)
}

func TestSafetyUnderTargetedStaleAdversary(t *testing.T) {
	hist, log := runAdversarialHistory(t, AdversaryConfig{
		Kind: AdversaryTargeted, B: 1, Behavior: ByzantineStale,
		Interval: 2 * time.Millisecond,
	})
	assertSafeHistory(t, hist, log, 1)
}

func TestSafetyUnderTimingAdversary(t *testing.T) {
	// Timing alternates ByzantineStale and ByzantineEquivocate on its
	// own, completing the three-behavior coverage the suite promises.
	hist, log := runAdversarialHistory(t, AdversaryConfig{
		Kind: AdversaryTiming, B: 1, Interval: 2 * time.Millisecond,
	})
	assertSafeHistory(t, hist, log, 1)
}

// checkHistory itself is under test here: it must actually catch both
// violation classes when fed a poisoned history.
func TestHistoryCheckerCatchesViolations(t *testing.T) {
	now := time.Now()
	at := func(ms int) time.Time { return now.Add(time.Duration(ms) * time.Millisecond) }
	okWrite := histEntry{start: at(0), end: at(10), ok: true, value: "w-0"}

	fabricated := []histEntry{okWrite, {start: at(20), end: at(30), read: true, ok: true, value: FabricatedValue}}
	backwards := []histEntry{okWrite, {start: at(20), end: at(30), read: true, ok: true, value: ""}}
	for name, hist := range map[string][]histEntry{"fabricated": fabricated, "backwards": backwards} {
		mock := &testing.T{}
		var caught bool
		func() {
			defer func() {
				caught = mock.Failed()
			}()
			// checkHistory fails via t.Fatalf → runtime.Goexit; run it on
			// its own goroutine and inspect the mock after it exits.
			done := make(chan struct{})
			go func() {
				defer close(done)
				checkHistory(mock, hist, nil, 1)
			}()
			<-done
		}()
		if !caught {
			t.Errorf("checker missed the %s violation", name)
		}
	}
}

// The exposure filter is load-bearing; pin its arithmetic.
func TestCorruptionLogExposure(t *testing.T) {
	log := newCorruptionLog()
	base := time.Now()
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	log.spans[0] = []corruptionSpan{{from: at(0), to: at(10)}}
	log.spans[1] = []corruptionSpan{{from: at(8), to: at(20)}}
	log.spans[2] = []corruptionSpan{{from: at(30)}} // still corrupt

	cases := []struct {
		s, e int
		want int
	}{
		{0, 5, 1},   // only server 0
		{9, 9, 2},   // overlap window: both 0 and 1
		{12, 25, 1}, // only server 1
		{21, 29, 0}, // gap
		{35, 40, 1}, // open span counts
	}
	for _, c := range cases {
		if got := log.exposure(at(c.s), at(c.e)); got != c.want {
			t.Errorf("exposure(%d,%d) = %d, want %d", c.s, c.e, got, c.want)
		}
	}
}
