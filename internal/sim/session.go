package sim

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// sessionOps is what a Session needs from a client: the keyed protocol
// operations with an explicit probe route. Client and
// DisseminationClient both satisfy it, so one Session type serves both
// protocols.
type sessionOps interface {
	readKey(ctx context.Context, key string, via Transport) (TaggedValue, error)
	writeKey(ctx context.Context, key, value string, via Transport) error
}

// sessionConfig collects the Session functional options.
type sessionConfig struct {
	maxBatch int
	linger   time.Duration
}

// Session batching defaults: frames flush at DefaultSessionBatch probes
// or after DefaultSessionLinger, whichever comes first. The linger is
// deliberately tiny — it only needs to be long enough for concurrently
// issued operations to land in the same frame, and it bounds the latency
// a lone probe pays for the chance to share one.
const (
	DefaultSessionBatch  = 32
	DefaultSessionLinger = 50 * time.Microsecond
)

// SessionOption configures a Session at construction.
type SessionOption func(*sessionConfig)

// WithSessionBatch sets how many probes a destination's frame holds
// before it flushes (default DefaultSessionBatch). 1 disables
// coalescing: every probe travels alone, the unbatched baseline.
func WithSessionBatch(n int) SessionOption {
	return func(c *sessionConfig) {
		if n > 0 {
			c.maxBatch = n
		}
	}
}

// WithSessionLinger sets how long a non-full frame waits for company
// before flushing (default DefaultSessionLinger). Zero flushes every
// probe immediately.
func WithSessionLinger(d time.Duration) SessionOption {
	return func(c *sessionConfig) {
		if d >= 0 {
			c.linger = d
		}
	}
}

// Session is the asynchronous, batching face of a client: ReadAsync and
// WriteAsync return immediately with futures, and the quorum probes of
// every operation in flight are coalesced per destination into batched
// transport frames (flush on size or linger). The protocol underneath is
// exactly the client's — same per-key timestamps, same masking rule,
// same suspicion handling — so batching changes throughput, never
// semantics. The wrapped client's blocking calls remain usable while a
// session is open; they simply bypass the batcher.
//
// A Session is safe for concurrent use. Close waits for in-flight
// operations and flushes the batcher; operations issued after Close fail
// with ErrSessionClosed.
type Session struct {
	ops sessionOps
	b   *batcher  // nil when the transport is not worth batching
	via Transport // probe route for operations: b, or nil for direct

	inflight atomic.Int64 // live operations; the batcher's wave size

	mu     sync.Mutex
	wg     sync.WaitGroup
	closed bool
}

// NewSession opens a batching session over the client.
func (cl *Client) NewSession(opts ...SessionOption) *Session {
	return newSession(cl, cl.cluster, opts)
}

// NewSession opens a batching session over the dissemination client.
func (dc *DisseminationClient) NewSession(opts ...SessionOption) *Session {
	return newSession(dc, dc.cluster, opts)
}

func newSession(ops sessionOps, c *Cluster, opts []SessionOption) *Session {
	cfg := sessionConfig{maxBatch: DefaultSessionBatch, linger: DefaultSessionLinger}
	for _, opt := range opts {
		opt(&cfg)
	}
	s := &Session{ops: ops}
	// Only put the batcher between operations and the transport when the
	// transport has a per-frame cost to amortize (see FrameCoster): the
	// default in-memory transport does not, and there queueing behind the
	// linger was measured at 0.70× the unbatched throughput. The async
	// future API is unchanged either way — operations still overlap, their
	// probes just travel directly.
	if fc, ok := c.transport.(FrameCoster); !ok || fc.WorthBatching() {
		s.b = newBatcher(c, cfg.maxBatch, cfg.linger)
		s.b.inflight = func() int { return int(s.inflight.Load()) }
		s.via = s.b
	}
	return s
}

// Batching reports whether the session's probes ride coalesced frames —
// false when the transport declared batching not worth its cost and the
// session issues probes directly.
func (s *Session) Batching() bool { return s.b != nil }

// ReadFuture is the pending result of Session.ReadAsync.
type ReadFuture struct {
	done chan struct{}
	tv   TaggedValue
	err  error
}

// Wait blocks until the read completes and returns its result.
func (f *ReadFuture) Wait() (TaggedValue, error) {
	<-f.done
	return f.tv, f.err
}

// Done returns a channel closed when the read has completed, for select
// loops; after it closes, Wait returns immediately.
func (f *ReadFuture) Done() <-chan struct{} { return f.done }

// WriteFuture is the pending result of Session.WriteAsync.
type WriteFuture struct {
	done chan struct{}
	err  error
}

// Wait blocks until the write completes and returns its error, if any.
func (f *WriteFuture) Wait() error {
	<-f.done
	return f.err
}

// Done returns a channel closed when the write has completed, for select
// loops; after it closes, Wait returns immediately.
func (f *WriteFuture) Done() <-chan struct{} { return f.done }

// begin registers one in-flight operation, refusing after Close.
func (s *Session) begin() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.wg.Add(1)
	s.inflight.Add(1)
	return true
}

// done retires one in-flight operation.
func (s *Session) done() {
	s.inflight.Add(-1)
	s.wg.Done()
}

// ReadAsync starts a masking read of key and returns its future. The
// operation runs in its own goroutine; its probes ride the session's
// batched frames alongside every other operation in flight.
func (s *Session) ReadAsync(ctx context.Context, key string) *ReadFuture {
	f := &ReadFuture{done: make(chan struct{})}
	if !s.begin() {
		f.err = ErrSessionClosed
		close(f.done)
		return f
	}
	go func() {
		defer s.done()
		f.tv, f.err = s.ops.readKey(ctx, key, s.via)
		close(f.done)
	}()
	return f
}

// WriteAsync starts a write of (key, value) and returns its future. The
// operation runs in its own goroutine; its probes ride the session's
// batched frames alongside every other operation in flight.
func (s *Session) WriteAsync(ctx context.Context, key, value string) *WriteFuture {
	f := &WriteFuture{done: make(chan struct{})}
	if !s.begin() {
		f.err = ErrSessionClosed
		close(f.done)
		return f
	}
	go func() {
		defer s.done()
		f.err = s.ops.writeKey(ctx, key, value, s.via)
		close(f.done)
	}()
	return f
}

// Read is the synchronous convenience form of ReadAsync: issue and wait.
func (s *Session) Read(ctx context.Context, key string) (TaggedValue, error) {
	return s.ReadAsync(ctx, key).Wait()
}

// Write is the synchronous convenience form of WriteAsync: issue and
// wait.
func (s *Session) Write(ctx context.Context, key, value string) error {
	return s.WriteAsync(ctx, key, value).Wait()
}

// Close waits for in-flight operations to finish, flushes the batcher,
// and marks the session closed. It is idempotent; operations issued
// after Close fail with ErrSessionClosed.
func (s *Session) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
	if s.b != nil {
		s.b.close()
	}
	return nil
}
