package sim

import (
	"fmt"
	"testing"

	"bqs/internal/systems"
)

// newDisseminationCluster builds a cluster over the [MR98a] dissemination
// threshold (IS = b+1). The cluster's own b is set to 0 because the
// masking vouching rule is not used by the dissemination protocol.
func newDisseminationCluster(t *testing.T, b int, seed int64) (*Cluster, int) {
	t.Helper()
	n := 3*b + 1
	sys, err := systems.NewDisseminationThreshold(n, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.MinIntersection(); got < b+1 {
		t.Fatalf("dissemination threshold IS = %d < b+1", got)
	}
	c, err := NewCluster(sys, 0, WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c, n
}

func TestDisseminationThresholdParams(t *testing.T) {
	for b := 0; b <= 5; b++ {
		n := 3*b + 1
		sys, err := systems.NewDisseminationThreshold(n, b)
		if err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}
		if sys.MinIntersection() != b+1 {
			t.Errorf("b=%d: IS = %d, want exactly b+1 at n=3b+1", b, sys.MinIntersection())
		}
		if sys.MinTransversal() < b+1 {
			t.Errorf("b=%d: MT = %d < b+1", b, sys.MinTransversal())
		}
	}
	if _, err := systems.NewDisseminationThreshold(6, 2); err == nil {
		t.Error("n < 3b+1 should fail")
	}
	if _, err := systems.NewDisseminationThreshold(7, -1); err == nil {
		t.Error("negative b should fail")
	}
}

func TestDisseminationRoundTrip(t *testing.T) {
	c, _ := newDisseminationCluster(t, 3, 81)
	auth := NewAuthenticator()
	w := c.NewDisseminationClient(1, auth)
	r := c.NewDisseminationClient(2, auth)
	for i := 0; i < 5; i++ {
		want := fmt.Sprintf("signed-%d", i)
		if err := w.Write(ctx, want); err != nil {
			t.Fatal(err)
		}
		got, err := r.Read(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got.Value != want {
			t.Fatalf("read %q, want %q", got.Value, want)
		}
	}
}

func TestDisseminationMasksFabricationWithSmallIntersection(t *testing.T) {
	// IS = b+1 suffices for self-verifying data: fabricators return
	// unsigned junk that fails verification, so even b of them in every
	// intersection cannot win.
	b := 3
	c, _ := newDisseminationCluster(t, b, 83)
	if err := c.InjectFault(ByzantineFabricate, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	auth := NewAuthenticator()
	w := c.NewDisseminationClient(1, auth)
	if err := w.Write(ctx, "authentic"); err != nil {
		t.Fatal(err)
	}
	got, err := c.NewDisseminationClient(2, auth).Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != "authentic" {
		t.Fatalf("read %q, want authentic", got.Value)
	}
}

func TestDisseminationDefeatsStaleReplay(t *testing.T) {
	// Stale replay returns a GENUINELY signed old value; the b+1
	// intersection guarantees at least one correct server holds the newer
	// one, and max-timestamp selection prefers it.
	b := 2
	c, _ := newDisseminationCluster(t, b, 85)
	auth := NewAuthenticator()
	w := c.NewDisseminationClient(1, auth)
	if err := w.Write(ctx, "old"); err != nil {
		t.Fatal(err)
	}
	if err := c.InjectFault(ByzantineStale, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(ctx, "new"); err != nil {
		t.Fatal(err)
	}
	got, err := c.NewDisseminationClient(2, auth).Read(ctx)
	if err != nil || got.Value != "new" {
		t.Fatalf("read %q (%v), want new", got.Value, err)
	}
}

func TestMaskingProtocolNeedsBiggerIntersections(t *testing.T) {
	// Contrast experiment: the same dissemination-sized system (IS = b+1)
	// breaks the MASKING protocol's b+1-vouching rule once b Byzantine
	// servers sit in the write/read intersection — reads can fail to find
	// any properly vouched candidate or return stale data. This is the
	// operational reason masking systems need 2b+1 (Definition 3.5).
	b := 3
	c, n := newDisseminationCluster(t, b, 87)
	_ = n
	// The masking client vouching threshold is cluster.b+1; rebuild the
	// cluster claiming b=3 masking on a system that cannot support it.
	sys, err := systems.NewDisseminationThreshold(3*b+1, b)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCluster(sys, 0, WithSeed(89)) // cluster b=0 so construction passes
	if err != nil {
		t.Fatal(err)
	}
	_ = c
	// Simulate the masking client manually: with IS = b+1 and b stale
	// servers planted in the intersection, only 1 correct intersection
	// server vouches the newest value — below the b+1 = 4 the masking rule
	// would demand. Verify the count directly.
	auth := NewAuthenticator()
	w := c2.NewDisseminationClient(1, auth)
	if err := w.Write(ctx, "v1"); err != nil {
		t.Fatal(err)
	}
	if err := c2.InjectFault(ByzantineStale, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(ctx, "v2"); err != nil {
		t.Fatal(err)
	}
	// Dissemination read still succeeds...
	got, err := c2.NewDisseminationClient(2, auth).Read(ctx)
	if err != nil || got.Value != "v2" {
		t.Fatalf("dissemination read %q (%v), want v2", got.Value, err)
	}
	// ...but fewer than 2b+1 servers in some quorum hold v2 vouchable by
	// the masking rule with b=3: count v2 holders in the worst quorum the
	// adversary can arrange (the three stale servers plus the write
	// quorum's complement).
	holders := 0
	for i := 0; i < c2.N(); i++ {
		if c2.Server(i).Snapshot().Value == "v2" && c2.Server(i).Behavior() == Correct {
			holders++
		}
	}
	// v2 went to a quorum of ⌈(n+b+1)/2⌉ = 7 of 10, up to 3 of which are
	// stale-replaying: a masking read quorum intersecting it in only b+1=4
	// servers can see as few as 1 honest v2 holder < b+1.
	if holders > c2.N() {
		t.Fatal("impossible holder count")
	}
	minHonestIntersection := sys.MinIntersection() - b // = 1
	if minHonestIntersection >= b+1 {
		t.Fatalf("test setup wrong: honest intersection %d ≥ b+1", minHonestIntersection)
	}
}
