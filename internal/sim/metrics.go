package sim

import (
	"errors"
	"strconv"
	"time"

	"bqs/internal/core"
	"bqs/internal/measures"
	"bqs/internal/obs"
)

// WithMetrics wires the cluster into an obs.Registry: per-server load
// gauges alongside the analytic L(Q) and Theorem 4.1 gauges, per-op
// latency spans (quorum pick, phase fan-out, per-server RTT), suspicion
// and retry counters, and the epoch/crash counters that turn
// ErrNoLiveQuorum sightings into a live crash-rate gauge comparable
// against CrashProbabilityExact. A nil registry leaves the cluster
// un-instrumented (the Noop path, identical to omitting the option).
func WithMetrics(reg *obs.Registry) Option {
	return func(c *config) error {
		c.metrics = reg
		return nil
	}
}

// clusterMetrics is the cluster's pre-resolved instrument set. Every
// field is nil when no registry is installed, and every obs method is a
// no-op on nil, so un-instrumented clusters pay one `on` check — never a
// map lookup or a time.Now — on the hot paths.
type clusterMetrics struct {
	on  bool
	reg *obs.Registry

	// Per-op spans.
	pickSeconds  *obs.Histogram // quorum selection, incl. rehabilitation probes
	phaseSeconds *obs.Histogram // one quorum fan-out (probe all members)
	probeSeconds *obs.Histogram // one server round trip (or one batch frame)
	readSeconds  *obs.Histogram // whole read op, successful only
	writeSeconds *obs.Histogram // whole write op, successful only
	batchOps     *obs.Histogram // items per batch frame

	// Failure-detector and retry traffic.
	retries       *obs.Counter
	suspicions    *obs.Counter
	forgivesTTL   *obs.Counter
	forgivesProbe *obs.Counter

	// Op outcomes: epochs counts every completed client operation, and
	// crashes the ones that died with core.ErrNoLiveQuorum — the live
	// numerator and denominator of the Definition 3.10 crash rate.
	epochs       *obs.Counter
	crashes      *obs.Counter
	failures     *obs.Counter
	noCandidates *obs.Counter

	// Reconfiguration plane: the current configuration epoch and
	// two-phase-install phase as gauges, plus per-resize counters and
	// durations (drain = the quiesce wait alone, duration = the whole
	// propose→retire span).
	epochGauge     *obs.Gauge     // bqs_cluster_epoch
	reconfigPhase  *obs.Gauge     // bqs_reconfig_phase (reconfig.Phase ordinal)
	installs       *obs.Counter   // bqs_reconfig_installs_total
	reconfigAborts *obs.Counter   // bqs_reconfig_aborts_total
	drainSeconds   *obs.Histogram // bqs_reconfig_drain_seconds
	reconfigSecs   *obs.Histogram // bqs_reconfig_duration_seconds
	handoffKeys    *obs.Counter   // bqs_reconfig_handoff_keys_total
}

// initMetrics resolves the cluster's instruments and registers the
// scrape-time gauges that read state the cluster already maintains.
func (c *Cluster) initMetrics(reg *obs.Registry) {
	m := &c.met
	m.on, m.reg = true, reg

	m.pickSeconds = reg.Histogram("bqs_quorum_pick_seconds", obs.DurationBuckets)
	m.phaseSeconds = reg.Histogram("bqs_quorum_phase_seconds", obs.DurationBuckets)
	m.probeSeconds = reg.Histogram("bqs_quorum_probe_seconds", obs.DurationBuckets)
	m.readSeconds = reg.Histogram("bqs_client_read_seconds", obs.DurationBuckets)
	m.writeSeconds = reg.Histogram("bqs_client_write_seconds", obs.DurationBuckets)
	m.batchOps = reg.Histogram("bqs_cluster_batch_ops", obs.SizeBuckets)

	m.retries = reg.Counter("bqs_client_retries_total")
	m.suspicions = reg.Counter("bqs_client_suspicions_total")
	m.forgivesTTL = reg.Counter("bqs_client_forgives_total", "reason", "ttl")
	m.forgivesProbe = reg.Counter("bqs_client_forgives_total", "reason", "probe")

	m.epochs = reg.Counter("bqs_system_epochs_total")
	m.crashes = reg.Counter("bqs_system_crash_epochs_total")
	m.failures = reg.Counter("bqs_client_failures_total")
	m.noCandidates = reg.Counter("bqs_client_no_candidate_total")

	m.epochGauge = reg.Gauge("bqs_cluster_epoch")
	m.reconfigPhase = reg.Gauge("bqs_reconfig_phase")
	m.installs = reg.Counter("bqs_reconfig_installs_total")
	m.reconfigAborts = reg.Counter("bqs_reconfig_aborts_total")
	m.drainSeconds = reg.Histogram("bqs_reconfig_drain_seconds", obs.DurationBuckets)
	m.reconfigSecs = reg.Histogram("bqs_reconfig_duration_seconds", obs.DurationBuckets)
	m.handoffKeys = reg.Counter("bqs_reconfig_handoff_keys_total")
	m.epochGauge.Set(float64(c.cur.Load().epoch))

	// Live load profile: bqs_server_load{server=i} is accesses[i]/phases,
	// the Definition 3.8 access frequency measured from live traffic; its
	// max is what should converge to the strategy-load gauge.
	for i := range c.cur.Load().servers {
		c.registerServerSeries(i)
	}
	reg.CounterFunc("bqs_cluster_phases_total", func() int64 {
		return c.retired.Load().phases + c.cur.Load().phases.Load()
	})
	reg.GaugeFunc("bqs_cluster_peak_load", c.PeakLoad)

	// Analytic gauges: L_w(Q) of the installed strategy (NaN under
	// uniform) and the Theorem 4.1 lower bound when the system knows its
	// parameters. Both track the current epoch.
	reg.GaugeFunc("bqs_cluster_strategy_load", func() float64 { return c.cur.Load().stratLoad })
	c.setLowerBoundGauge()

	// Live fault mix, read from server state at scrape time.
	reg.GaugeFunc("bqs_cluster_crashed_servers", func() float64 {
		crashed, _ := c.FaultCounts()
		return float64(crashed)
	})
	reg.GaugeFunc("bqs_cluster_byzantine_servers", func() float64 {
		_, byz := c.FaultCounts()
		return float64(byz)
	})

	// Measured crash rate: the fraction of completed operations that
	// found no live quorum. In availability runs (one op per epoch) this
	// is exactly the Definition 3.10 empirical F_p(Q).
	reg.GaugeFunc("bqs_system_crash_rate", func() float64 {
		epochs := m.epochs.Value()
		if epochs == 0 {
			return 0
		}
		return float64(m.crashes.Value()) / float64(epochs)
	})
}

// registerServerSeries registers (or re-binds, after a resize) server
// i's scrape-time series. The closures hold the index, not the counter:
// they re-resolve the current epoch at every scrape, read 0 when the
// index has been resized away, and fold retired epochs' totals into the
// access counter so it stays monotonic across cutovers.
func (c *Cluster) registerServerSeries(i int) {
	reg, label := c.met.reg, strconv.Itoa(i)
	reg.GaugeFunc("bqs_server_load", func() float64 {
		st := c.cur.Load()
		if i >= len(st.accesses) {
			return 0
		}
		phases := st.phases.Load()
		if phases == 0 {
			return 0
		}
		return float64(st.accesses[i].Load()) / float64(phases)
	}, "server", label)
	reg.CounterFunc("bqs_server_accesses_total", func() int64 {
		var total int64
		if rt := c.retired.Load(); i < len(rt.accesses) {
			total = rt.accesses[i]
		}
		if st := c.cur.Load(); i < len(st.accesses) {
			total += st.accesses[i].Load()
		}
		return total
	}, "server", label)
}

// setLowerBoundGauge publishes the Theorem 4.1 lower bound for the
// current epoch's system, when it knows its parameters.
func (c *Cluster) setLowerBoundGauge() {
	st := c.cur.Load()
	if p, ok := st.system.(core.Parameterized); ok {
		lower := measures.LoadLowerBound(st.system.UniverseSize(), c.b, p.MinQuorumSize())
		c.met.reg.Gauge("bqs_cluster_load_lower_bound").Set(lower)
	}
}

// Registry returns the registry installed with WithMetrics, or nil.
func (c *Cluster) Registry() *obs.Registry { return c.met.reg }

// opDone settles one completed client operation into the op-outcome
// counters and, on success, the per-op latency histogram. Callers guard
// with m.on so the un-instrumented path never reads the clock.
func (m *clusterMetrics) opDone(read bool, d time.Duration, err error) {
	m.epochs.Inc()
	switch {
	case err == nil:
		if read {
			m.readSeconds.ObserveDuration(d)
		} else {
			m.writeSeconds.ObserveDuration(d)
		}
	case errors.Is(err, core.ErrNoLiveQuorum):
		m.crashes.Inc()
		m.failures.Inc()
	case errors.Is(err, ErrNoCandidate):
		m.noCandidates.Inc()
	default:
		m.failures.Inc()
	}
}
