package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"bqs/internal/core"
	"bqs/internal/measures"
	"bqs/internal/systems"
)

func TestParseFaultSchedule(t *testing.T) {
	s, err := ParseFaultSchedule("600ms:3:correct, 100ms:1-2:crashed ,250ms:0:byz-fabricate")
	if err != nil {
		t.Fatal(err)
	}
	want := []FaultEvent{
		{At: 100 * time.Millisecond, Server: 1, Behavior: Crashed},
		{At: 100 * time.Millisecond, Server: 2, Behavior: Crashed},
		{At: 250 * time.Millisecond, Server: 0, Behavior: ByzantineFabricate},
		{At: 600 * time.Millisecond, Server: 3, Behavior: Correct},
	}
	if got := s.Events(); !reflect.DeepEqual(got, want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	if s.Horizon() != 600*time.Millisecond {
		t.Fatalf("horizon = %v", s.Horizon())
	}
	if s.MaxServer() != 3 {
		t.Fatalf("max server = %d", s.MaxServer())
	}
	if s.FaultFree() {
		t.Fatal("schedule with crashes reported fault-free")
	}
	ff, err := ParseFaultSchedule("10ms:0:correct,20ms:5:recover")
	if err != nil {
		t.Fatal(err)
	}
	if !ff.FaultFree() {
		t.Fatal("all-correct schedule not fault-free")
	}
	for _, bad := range []string{
		"100ms:1",            // missing behavior
		"abc:1:crashed",      // bad duration
		"100ms:-1:crashed",   // negative server
		"100ms:5-2:crashed",  // inverted range
		"100ms:1:exploded",   // unknown behavior
		"-5ms:1:crashed",     // negative offset
		"100ms:1:crashed:xx", // too many fields
	} {
		if _, err := ParseFaultSchedule(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestParseBehavior(t *testing.T) {
	cases := map[string]Behavior{
		"correct": Correct, "CRASHED": Crashed, " down ": Crashed,
		"byz-fabricate": ByzantineFabricate, "stale": ByzantineStale,
		"equivocate": ByzantineEquivocate, "recover": Correct,
	}
	for in, want := range cases {
		got, err := ParseBehavior(in)
		if err != nil || got != want {
			t.Errorf("ParseBehavior(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseBehavior("bogus"); err == nil {
		t.Error("unknown behavior accepted")
	}
	if KnownBehavior(Behavior(0)) || KnownBehavior(Behavior(99)) {
		t.Error("KnownBehavior accepted out-of-range values")
	}
}

// TestChurnScheduleReproducible pins the stochastic model's determinism
// contract: same seed, identical timeline; different seed, a different
// one; and per-server streams, so restricting Servers does not perturb
// the retained servers' events.
func TestChurnScheduleReproducible(t *testing.T) {
	cc := ChurnConfig{MTBF: 50 * time.Millisecond, MTTR: 20 * time.Millisecond}
	a, err := cc.Schedule(8, time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cc.Schedule(8, time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same seed produced different schedules")
	}
	c, err := cc.Schedule(8, time.Second, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events(), c.Events()) {
		t.Fatal("different seeds produced identical schedules")
	}
	if a.Len() == 0 {
		t.Fatal("1s horizon at 50ms MTBF produced no churn")
	}

	// Per-server alternation: every server's event sequence must be
	// down, up, down, up, … starting from Correct.
	perServer := map[int][]Behavior{}
	for _, e := range a.Events() {
		perServer[e.Server] = append(perServer[e.Server], e.Behavior)
	}
	for s, seq := range perServer {
		for i, behavior := range seq {
			wantDown := i%2 == 0
			if wantDown && behavior != Crashed || !wantDown && behavior != Correct {
				t.Fatalf("server %d event %d = %v, want alternation from Crashed", s, i, behavior)
			}
		}
	}

	// Restricting to a subset keeps that subset's stream unchanged.
	cc.Servers = []int{3}
	only3, err := cc.Schedule(8, time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	var want []FaultEvent
	for _, e := range a.Events() {
		if e.Server == 3 {
			want = append(want, e)
		}
	}
	if !reflect.DeepEqual(only3.Events(), want) {
		t.Fatal("per-server stream perturbed by restricting Servers")
	}
}

func TestParseChurn(t *testing.T) {
	cc, err := ParseChurn("mtbf=300ms, mttr=100ms, down=byz-stale, servers=2-4")
	if err != nil {
		t.Fatal(err)
	}
	if cc.MTBF != 300*time.Millisecond || cc.MTTR != 100*time.Millisecond ||
		cc.Down != ByzantineStale || !reflect.DeepEqual(cc.Servers, []int{2, 3, 4}) {
		t.Fatalf("cc = %+v", cc)
	}
	if f := cc.DownFraction(); math.Abs(f-0.25) > 1e-12 {
		t.Fatalf("down fraction = %g, want 0.25", f)
	}
	for _, bad := range []string{"mtbf=300ms", "mttr=1s", "mtbf=1s,mttr=0", "mtbf=1s,mttr=1s,bogus=1", "mtbf"} {
		if _, err := ParseChurn(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	// down=correct is rejected at generation time: churn must churn.
	cc, err = ParseChurn("mtbf=1s,mttr=1s,down=correct")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Schedule(4, time.Second, 1); err == nil {
		t.Error("down=correct schedule accepted")
	}
}

// recordingFlipper captures flips with their arrival order, failing those
// directed at servers in failOn.
type recordingFlipper struct {
	mu     sync.Mutex
	events []FaultEvent
	failOn map[int]bool
}

func (rf *recordingFlipper) Flip(_ context.Context, server int, b Behavior) error {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	if rf.failOn[server] {
		return errors.New("flip refused")
	}
	rf.events = append(rf.events, FaultEvent{Server: server, Behavior: b})
	return nil
}

func TestFaultControllerReplaysSchedule(t *testing.T) {
	s, err := ParseFaultSchedule("1ms:0:crashed,5ms:1:byz-fabricate,10ms:0:correct,12ms:9:crashed")
	if err != nil {
		t.Fatal(err)
	}
	rf := &recordingFlipper{failOn: map[int]bool{9: true}}
	fc := NewFaultController(rf, s)
	var hooked int
	fc.OnFlip = func(FaultEvent, error) { hooked++ }
	if err := fc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []FaultEvent{
		{Server: 0, Behavior: Crashed},
		{Server: 1, Behavior: ByzantineFabricate},
		{Server: 0, Behavior: Correct},
	}
	if !reflect.DeepEqual(rf.events, want) {
		t.Fatalf("flips = %v, want %v", rf.events, want)
	}
	if fc.Flips() != 3 || fc.Misses() != 1 {
		t.Fatalf("flips = %d, misses = %d", fc.Flips(), fc.Misses())
	}
	if fc.FirstErr() == nil {
		t.Fatal("miss left no FirstErr")
	}
	if hooked != 4 {
		t.Fatalf("OnFlip saw %d events, want 4", hooked)
	}
}

func TestFaultControllerHonorsContext(t *testing.T) {
	s, err := ParseFaultSchedule("1ms:0:crashed,10s:1:crashed")
	if err != nil {
		t.Fatal(err)
	}
	rf := &recordingFlipper{}
	fc := NewFaultController(rf, s)
	cctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := fc.Run(cctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Run blocked %v past cancellation", elapsed)
	}
	if fc.Flips() != 1 {
		t.Fatalf("flips before cancel = %d, want 1", fc.Flips())
	}
}

// TestForgivenessIsPerServer is the regression test for the old
// forgive-all bug: when suspicion exhausts the quorum space, only
// suspects that answer a probe may be forgiven — a genuinely dead server
// must stay suspected, not have its record erased along with everyone
// else's.
func TestForgivenessIsPerServer(t *testing.T) {
	mg, err := systems.NewMGrid(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(mg, 1, WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	const dead = 5
	if err := c.InjectFault(Crashed, dead); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient(1)
	// Drive suspicion into exhaustion by hand: suspect everything.
	for i := 0; i < c.N(); i++ {
		cl.suspected.suspect(i)
	}
	q, err := cl.quorumOrForgive(ctx)
	if err != nil {
		t.Fatalf("quorumOrForgive after probe-on-forgive: %v", err)
	}
	if cl.suspected.contains(dead) == false {
		t.Fatal("dead server was forgiven without responding — forgive-all regression")
	}
	if n := cl.suspected.set.Count(); n != 1 {
		t.Fatalf("%d servers still suspected after rehabilitation, want only the dead one", n)
	}
	if q.Contains(dead) {
		t.Fatal("picked quorum contains the still-suspected dead server")
	}

	// When EVERY quorum depends on genuinely dead servers the client must
	// report a system crash, not spin: crash a full row — each M-Grid
	// quorum includes columns, and every column crosses row 0.
	if err := c.InjectFault(Crashed, 0, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	cl2 := c.NewClient(2)
	if err := cl2.Write(ctx, "doomed"); !errors.Is(err, core.ErrNoLiveQuorum) {
		t.Fatalf("write against a dead transversal = %v, want ErrNoLiveQuorum", err)
	}
}

// TestRecoveryRegainsTraffic is the churn acceptance test for suspicion
// aging: a crashed server that recovers mid-run must re-enter the
// client's candidate set after SuspicionTTL and — under the LP-optimal
// strategy, whose renormalization had shifted its weight away — regain a
// nonzero share of accesses. Run with -race: flips race against live
// clients.
func TestRecoveryRegainsTraffic(t *testing.T) {
	mg, err := systems.NewMGrid(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(mg, 1, WithSeed(97), WithOptimalStrategy())
	if err != nil {
		t.Fatal(err)
	}
	const victim = 6
	const ttl = 20 * time.Millisecond

	cl := c.NewClient(1)
	cl.SuspicionTTL = ttl
	if err := c.Flip(ctx, victim, Crashed); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50 && !cl.suspected.contains(victim); i++ {
		if err := cl.Write(ctx, fmt.Sprintf("crash-phase-%d", i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if !cl.suspected.contains(victim) {
		t.Skipf("client never touched server %d while it was down", victim)
	}

	// Recover, let the suspicion age out, and run concurrent traffic: the
	// recovered server must see probes again.
	if err := c.Flip(ctx, victim, Correct); err != nil {
		t.Fatal(err)
	}
	time.Sleep(ttl + 5*time.Millisecond)
	c.ResetLoadProfile()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := c.NewClient(10 + w)
			worker.SuspicionTTL = ttl
			for i := 0; i < 40; i++ {
				if err := worker.Write(ctx, fmt.Sprintf("recovered-%d-%d", w, i)); err != nil {
					t.Errorf("worker %d write %d: %v", w, i, err)
					return
				}
				if _, err := worker.Read(ctx); err != nil && !errors.Is(err, ErrNoCandidate) {
					t.Errorf("worker %d read %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	// The originally-suspicious client too — aging must clear ITS record.
	for i := 0; i < 40; i++ {
		if err := cl.Write(ctx, fmt.Sprintf("post-recovery-%d", i)); err != nil {
			t.Fatalf("post-recovery write %d: %v", i, err)
		}
	}
	wg.Wait()
	if f := c.LoadProfile()[victim]; f == 0 {
		t.Fatal("recovered server got zero accesses — still suspected forever")
	}
	if cl.suspected.contains(victim) {
		t.Fatal("original client still suspects the recovered server after TTL + successful traffic")
	}
}

// TestChurnFaultFreeKeepsLPConvergence pins the acceptance criterion that
// instrumenting a run with the churn engine must not move the
// measurement: a schedule that never leaves Correct, replayed live while
// 16 clients hammer an LP-strategy M-Grid, still converges to L(Q)
// within the same ±10% the un-churned acceptance test uses.
func TestChurnFaultFreeKeepsLPConvergence(t *testing.T) {
	mg, err := systems.NewMGrid(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(mg, 1, WithSeed(211), WithOptimalStrategy())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := mg.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	lp, _, err := measures.Load(ex)
	if err != nil {
		t.Fatal(err)
	}

	s, err := ParseFaultSchedule("1ms:0-15:correct,5ms:0-15:correct,9ms:3:recover")
	if err != nil {
		t.Fatal(err)
	}
	if !s.FaultFree() {
		t.Fatal("test schedule must be fault-free")
	}
	fc := NewFaultController(c, s)
	done := make(chan error, 1)
	go func() { done <- fc.Run(context.Background()) }()

	var wg sync.WaitGroup
	for id := 0; id < 16; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := c.NewClient(id)
			cl.SuspicionTTL = 50 * time.Millisecond
			for op := 0; op < 60; op++ {
				if op%6 == 0 {
					if err := cl.Write(ctx, fmt.Sprintf("v%d-%d", id, op)); err != nil {
						t.Errorf("client %d: %v", id, err)
						return
					}
					continue
				}
				if _, err := cl.Read(ctx); err != nil && !errors.Is(err, ErrNoCandidate) {
					t.Errorf("client %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("controller: %v", err)
	}
	if fc.Flips() != int64(s.Len()) {
		t.Fatalf("controller applied %d of %d flips", fc.Flips(), s.Len())
	}
	got := c.PeakLoad()
	if got < 0.90*lp || got > 1.10*lp {
		t.Fatalf("peak measured load %.4f outside ±10%% of LP L(Q) = %.4f under fault-free churn", got, lp)
	}
	t.Logf("peak load %.4f vs LP %.4f (%+.1f%%) with %d fault-free flips", got, lp, 100*(got/lp-1), fc.Flips())
}
