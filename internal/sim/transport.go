package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Op identifies a protocol message. The [MR98a] register protocol needs
// exactly three: collect timestamps (the first phase of a write), read the
// register, and store a tagged value.
type Op int

// Protocol operations.
const (
	// OpReadTimestamps asks a server for its current tagged value so the
	// writer can pick a timestamp greater than any it sees.
	OpReadTimestamps Op = iota + 1
	// OpRead asks a server for its current tagged value on behalf of a
	// reader.
	OpRead
	// OpWrite asks a server to store Request.Value.
	OpWrite
)

// String names the operation for logs and errors.
func (o Op) String() string {
	switch o {
	case OpReadTimestamps:
		return "read-timestamps"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Request is a protocol message addressed to one server. Key names the
// register the operation targets; the zero value (DefaultKey) is the
// single-register key the original blocking API uses.
type Request struct {
	Op       Op
	Key      string      // register the operation targets
	ReaderID int         // client id, for OpReadTimestamps and OpRead
	Value    TaggedValue // payload, for OpWrite
}

// Response is a server's answer. OK = false means the server was
// unresponsive (crashed, or its reply was lost in transit); clients treat
// that exactly like a crash and re-select quorums around it. Value carries
// the answer to OpRead and OpReadTimestamps.
type Response struct {
	OK    bool
	Value TaggedValue
}

// Transport delivers protocol messages to servers. Implementations must be
// safe for concurrent use by many client goroutines and must honor ctx:
// once the context is done, Invoke returns promptly with ctx.Err().
//
// A non-nil error aborts the client operation outright (cancellation,
// deadline, or a transport-level failure); server unresponsiveness is NOT
// an error — report it with Response{OK: false} so clients can suspect the
// server and retry with a different quorum.
type Transport interface {
	Invoke(ctx context.Context, server int, req Request) (Response, error)
}

// BatchItem is one operation of a batched transport frame, addressed to
// one server. A frame may carry items for different servers — over the
// wire that means different replicas of the same shard share one frame,
// and the receiving shard fans the items across its replicas.
type BatchItem struct {
	Server int
	Req    Request
}

// BatchTransport is the optional fast path a Transport can offer the
// session batcher: deliver a whole frame of operations in one call, with
// responses aligned index-by-index with items. The contract mirrors
// Invoke — unresponsiveness is Response{OK: false} per item (a dead
// destination fails the whole frame that way, fast, as a unit), and the
// error return is reserved for aborts. Transports without it still batch
// correctly: the cluster falls back to per-item Invoke.
type BatchTransport interface {
	Transport
	InvokeBatch(ctx context.Context, items []BatchItem) ([]Response, error)
}

// BatchGrouper is the optional coalescing hint a Transport can offer the
// session batcher: GroupOf returns a stable identifier of the frame a
// probe to the given server can share — the address's index for a
// sharded TCP transport, so probes to different replicas of one shard
// ride one frame. Without it the batcher groups per server, which is
// always correct.
type BatchGrouper interface {
	GroupOf(server int) int
}

// FrameCoster is the optional economics hint a Transport can offer the
// session layer: WorthBatching reports whether coalescing probes into
// frames actually amortizes a per-frame cost (a TCP round trip, a
// modelled latency sleep). When a transport says no, a Session issues
// probes directly instead of queueing them behind the batcher — with no
// frame cost to amortize, the queue's linger and wakeups are pure
// overhead (the measured in-memory regression: batch=32 at 0.70× of
// batch=1). Transports that do not implement the interface are assumed
// worth batching.
type FrameCoster interface {
	WorthBatching() bool
}

// memTransport is the built-in Transport: direct in-memory delivery to the
// cluster's servers, with optional message loss (dropRate) and a fixed
// per-server round-trip latency drawn at construction time.
type memTransport struct {
	// state holds the server and latency tables behind one atomic pointer:
	// every probe of every concurrent client reads them, and a live resize
	// (Cluster.Reconfigure growing or shrinking the universe) swaps them,
	// so the hot path must not serialize on a lock.
	state atomic.Pointer[memState]

	latBase, latJitter time.Duration // resize() draws new servers' latency from these

	// dropRate holds math.Float64bits of the loss probability. The common
	// case is a lossless network, and dropped() sits on every probe of
	// every concurrent client, so the zero-rate path must not serialize on
	// a mutex: it is a single atomic load. Only when the rate is positive
	// is the rng (which is not concurrency-safe) taken under mu.
	dropRate atomic.Uint64

	mu  sync.Mutex // guards rng; taken when dropRate > 0 and by resize
	rng *rand.Rand
}

// memState is one epoch's view of the in-memory network: the servers and
// their modelled round-trip delays, index-aligned.
type memState struct {
	servers []*Server
	latency []time.Duration // per-server round-trip delay; nil when zero
}

// newMemTransport builds the in-memory transport. When base or jitter is
// positive, each server's round-trip latency is drawn once, uniformly from
// [base, base+jitter], modelling a heterogeneous fleet.
func newMemTransport(servers []*Server, seed int64, dropRate float64, base, jitter time.Duration) *memTransport {
	t := &memTransport{
		latBase:   base,
		latJitter: jitter,
		rng:       rand.New(rand.NewSource(seed)),
	}
	t.dropRate.Store(math.Float64bits(dropRate))
	st := &memState{servers: servers}
	if base > 0 || jitter > 0 {
		st.latency = make([]time.Duration, len(servers))
		for i := range st.latency {
			st.latency[i] = t.drawLatency()
		}
	}
	t.state.Store(st)
	return t
}

// drawLatency rolls one server's modelled round trip from
// [latBase, latBase+latJitter]. Callers hold mu or are construction.
func (t *memTransport) drawLatency() time.Duration {
	d := t.latBase
	if t.latJitter > 0 {
		d += time.Duration(t.rng.Int63n(int64(t.latJitter) + 1))
	}
	return d
}

// resize swaps in a new server table at an epoch cutover. Servers
// retained across the resize (same index) keep their modelled latency —
// a resize does not reshuffle the surviving fleet's geography — and
// added servers draw fresh delays from the same distribution. In-flight
// probes that loaded the old state finish against the old table.
func (t *memTransport) resize(servers []*Server) {
	old := t.state.Load()
	st := &memState{servers: servers}
	if t.latBase > 0 || t.latJitter > 0 {
		st.latency = make([]time.Duration, len(servers))
		t.mu.Lock()
		for i := range st.latency {
			if i < len(old.latency) {
				st.latency[i] = old.latency[i]
				continue
			}
			st.latency[i] = t.drawLatency()
		}
		t.mu.Unlock()
	}
	t.state.Store(st)
}

// NewInMemoryTransport returns the transport NewCluster installs by
// default, minus loss and latency: lossless, instantaneous delivery to the
// given servers. It is exported so WithTransport factories can wrap the
// stock behavior with middleware (tracing, fault proxies, counters).
func NewInMemoryTransport(servers []*Server, seed int64) Transport {
	return newMemTransport(servers, seed, 0, 0, 0)
}

func (t *memTransport) setDropRate(p float64) {
	t.dropRate.Store(math.Float64bits(p))
}

// dropped rolls the message-loss dice. Lock-free when the network is
// lossless.
func (t *memTransport) dropped() bool {
	p := math.Float64frombits(t.dropRate.Load())
	if p <= 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rng.Float64() < p
}

// Invoke delivers req to the given server, sleeping out the server's
// modelled latency (interruptible by ctx) and losing the reply with the
// configured drop probability.
func (t *memTransport) Invoke(ctx context.Context, server int, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	st := t.state.Load()
	if server < 0 || server >= len(st.servers) {
		return Response{}, fmt.Errorf("sim: transport: server %d out of range [0,%d)", server, len(st.servers))
	}
	if err := t.sleep(ctx, st.latencyOf(server)); err != nil {
		return Response{}, err
	}
	if t.dropped() {
		return Response{OK: false}, nil
	}
	return st.servers[server].HandleRequest(req)
}

// InvokeBatch implements BatchTransport: the frame pays ONE round trip —
// the slowest destination's modelled latency — and one loss roll (a lost
// frame loses every reply in it), which is exactly the economics that make
// session batching worthwhile. Items are then dispatched to their servers
// in order.
func (t *memTransport) InvokeBatch(ctx context.Context, items []BatchItem) ([]Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st := t.state.Load()
	var worst time.Duration
	for _, it := range items {
		if it.Server < 0 || it.Server >= len(st.servers) {
			return nil, fmt.Errorf("sim: transport: server %d out of range [0,%d)", it.Server, len(st.servers))
		}
		if d := st.latencyOf(it.Server); d > worst {
			worst = d
		}
	}
	if err := t.sleep(ctx, worst); err != nil {
		return nil, err
	}
	out := make([]Response, len(items))
	if t.dropped() {
		return out, nil // whole frame lost: every item reads unresponsive
	}
	for i, it := range items {
		resp, err := st.servers[it.Server].HandleRequest(it.Req)
		if err != nil {
			resp = Response{OK: false}
		}
		out[i] = resp
	}
	return out, nil
}

// GroupOf implements BatchGrouper: in-memory delivery has no per-server
// framing cost, so every server shares one group and a session wave
// flushes as a single frame — the batcher's bookkeeping is paid once per
// wave instead of once per server. (The frame still sleeps the slowest
// member's latency and rolls loss once, like a real shard frame would.)
func (t *memTransport) GroupOf(int) int { return 0 }

// WorthBatching implements FrameCoster: in-memory delivery only has a
// per-frame cost worth amortizing when round-trip latency is modelled —
// a lossless, instantaneous map call gains nothing from queueing behind
// a linger.
func (t *memTransport) WorthBatching() bool { return t.state.Load().latency != nil }

// latencyOf returns the server's modelled round-trip delay.
func (st *memState) latencyOf(server int) time.Duration {
	if st.latency == nil {
		return 0
	}
	return st.latency[server]
}

// sleep waits out d, interruptibly by ctx.
func (t *memTransport) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}
