package sim

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSessionBypassesBatcherInMemory pins the mechanism behind the
// in-memory batching regression fix: on a transport with no per-frame
// cost to amortize (the default memTransport), a session issues probes
// directly; once latency is modelled, or the transport does not declare
// its economics, the batcher is back in the path.
func TestSessionBypassesBatcherInMemory(t *testing.T) {
	c := newThresholdCluster(t, 1, 5)
	s := c.NewClient(1).NewSession()
	defer s.Close()
	if s.Batching() {
		t.Fatal("session batches on the zero-latency in-memory transport")
	}
	// Direct probes must still run the full protocol.
	if err := s.Write(ctx, "k", "direct"); err != nil {
		t.Fatal(err)
	}
	if tv, err := s.Read(ctx, "k"); err != nil || tv.Value != "direct" {
		t.Fatalf("read over direct session: %+v, %v", tv, err)
	}

	sys := c.System()
	lat, err := NewCluster(sys, 1, WithSeed(5), WithLatency(time.Microsecond, 0))
	if err != nil {
		t.Fatal(err)
	}
	ls := lat.NewClient(1).NewSession()
	defer ls.Close()
	if !ls.Batching() {
		t.Fatal("session bypasses the batcher despite modelled latency")
	}

	// A custom transport that stays silent about frame economics keeps
	// the batcher — bypassing is strictly opt-in via FrameCoster.
	plain, err := NewCluster(sys, 1, WithSeed(5), WithTransport(func(servers []*Server) Transport {
		return opaqueTransport{NewInMemoryTransport(servers, 5)}
	}))
	if err != nil {
		t.Fatal(err)
	}
	ps := plain.NewClient(1).NewSession()
	defer ps.Close()
	if !ps.Batching() {
		t.Fatal("session bypasses the batcher on a transport without FrameCoster")
	}
}

// opaqueTransport hides every optional interface of the transport it
// wraps, leaving only Invoke — a transport that says nothing about its
// frame economics.
type opaqueTransport struct{ t Transport }

// Invoke forwards to the wrapped transport.
func (o opaqueTransport) Invoke(ctx context.Context, server int, req Request) (Response, error) {
	return o.t.Invoke(ctx, server, req)
}

// TestInMemoryBatchedThroughputNoRegression is the benchmark-backed pin
// on the regression itself: before the bypass, an in-memory session at
// batch=32 ran at ~0.70× the throughput of batch=1 (probes queued behind
// a linger with nothing to amortize). With the bypass both
// configurations take the identical direct path, so batch=32 must stay
// within noise of batch=1. The 0.85 floor is far above the broken 0.70
// and far below anything the shared code path can produce except
// scheduling noise; trials interleave and the best of each side is
// compared to cancel machine-load skew.
func TestInMemoryBatchedThroughputNoRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive regression gauge")
	}
	if raceEnabled {
		// The race detector's synchronization overhead penalizes the 32
		// concurrent protocol runs far more than the sequential batch=1
		// waves, inverting the ratio this gauge pins. The uninstrumented
		// test step enforces it.
		t.Skip("throughput ratio is not meaningful under the race detector")
	}
	c := newThresholdCluster(t, 1, 9)
	const ops = 4000
	run := func(batch int) time.Duration {
		s := c.NewClient(1).NewSession(WithSessionBatch(batch))
		defer s.Close()
		start := time.Now()
		var wg sync.WaitGroup
		for issued := 0; issued < ops; issued += batch {
			n := min(batch, ops-issued)
			wg.Add(n)
			for i := range n {
				// Spread keys as the session benchmark does: piling a whole
				// batch onto one key would measure per-key lock contention,
				// not the frame economics this test pins.
				key := fmt.Sprintf("k%02d", (issued+i)%64)
				go func() {
					defer wg.Done()
					s.WriteAsync(ctx, key, "v").Wait()
				}()
			}
			wg.Wait()
		}
		return time.Since(start)
	}
	best1, best32 := time.Duration(1<<62), time.Duration(1<<62)
	for range 3 {
		if d := run(1); d < best1 {
			best1 = d
		}
		if d := run(32); d < best32 {
			best32 = d
		}
	}
	ratio := float64(best1) / float64(best32) // >1 means batch=32 is faster
	t.Logf("in-memory throughput ratio batch32/batch1 = %.2f (batch1 %v, batch32 %v)", ratio, best1, best32)
	if ratio < 0.85 {
		t.Fatalf("batch=32 at %.2f× of batch=1 in-memory; the linger bypass regressed", ratio)
	}
}
