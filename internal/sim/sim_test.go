package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"bqs/internal/core"
	"bqs/internal/systems"
)

// ctx is the no-deadline context the non-cancellation tests share.
var ctx = context.Background()

// newThresholdCluster builds a cluster over Threshold(n=4b+1, ℓ=3b+1).
func newThresholdCluster(t *testing.T, b int, seed int64) *Cluster {
	t.Helper()
	sys, err := systems.NewMaskingThreshold(4*b+1, b)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(sys, b, WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterValidation(t *testing.T) {
	sys, _ := systems.NewMaskingThreshold(9, 2)
	if _, err := NewCluster(sys, -1); err == nil {
		t.Error("negative b should fail")
	}
	if _, err := NewCluster(sys, 3); err == nil {
		t.Error("b beyond the system's masking bound should fail")
	}
	c, err := NewCluster(sys, 2)
	if err != nil || c.N() != 9 || c.B() != 2 {
		t.Fatalf("cluster = %+v, err %v", c, err)
	}
	if err := c.InjectFault(Crashed, 99); err == nil {
		t.Error("out-of-range fault injection should fail")
	}
}

func TestWriteReadRoundTripNoFaults(t *testing.T) {
	c := newThresholdCluster(t, 2, 7)
	w := c.NewClient(1)
	r := c.NewClient(2)
	if err := w.Write(ctx, "hello"); err != nil {
		t.Fatal(err)
	}
	got, err := r.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != "hello" {
		t.Fatalf("read %q, want hello", got.Value)
	}
	// Overwrite and read again.
	if err := w.Write(ctx, "world"); err != nil {
		t.Fatal(err)
	}
	got, err = r.Read(ctx)
	if err != nil || got.Value != "world" {
		t.Fatalf("read %q (%v), want world", got.Value, err)
	}
}

func TestTimestampOrdering(t *testing.T) {
	a := Timestamp{Seq: 1, Writer: 2}
	b := Timestamp{Seq: 1, Writer: 3}
	c := Timestamp{Seq: 2, Writer: 0}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Fatal("timestamp ordering broken")
	}
}

func TestSurvivesCrashesUpToResilience(t *testing.T) {
	b := 2
	c := newThresholdCluster(t, b, 11)
	// Threshold(9, 7): MT = 3, f = 2 crashes tolerated.
	if err := c.InjectFault(Crashed, 0, 4); err != nil {
		t.Fatal(err)
	}
	w := c.NewClient(1)
	if err := w.Write(ctx, "alive"); err != nil {
		t.Fatal(err)
	}
	got, err := c.NewClient(2).Read(ctx)
	if err != nil || got.Value != "alive" {
		t.Fatalf("read %q (%v), want alive", got.Value, err)
	}
	crashed, byz := c.FaultCounts()
	if crashed != 2 || byz != 0 {
		t.Fatalf("fault counts = (%d,%d)", crashed, byz)
	}
}

func TestFailsPastResilience(t *testing.T) {
	b := 2
	c := newThresholdCluster(t, b, 13)
	// f+1 = 3 crashes: no quorum of 7 among 6 alive.
	if err := c.InjectFault(Crashed, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	w := c.NewClient(1)
	err := w.Write(ctx, "doomed")
	if err == nil {
		t.Fatal("write should fail past resilience")
	}
	if !errors.Is(err, core.ErrNoLiveQuorum) && !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v", err)
	}
}

func TestMasksByzantineFabrication(t *testing.T) {
	b := 2
	c := newThresholdCluster(t, b, 17)
	if err := c.InjectFault(ByzantineFabricate, 3, 6); err != nil { // exactly b
		t.Fatal(err)
	}
	w := c.NewClient(1)
	if err := w.Write(ctx, "truth"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		got, err := c.NewClient(100 + i).Read(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got.Value != "truth" {
			t.Fatalf("read %q, want truth (fabrication leaked)", got.Value)
		}
	}
}

func TestMasksStaleReplay(t *testing.T) {
	b := 2
	c := newThresholdCluster(t, b, 19)
	w := c.NewClient(1)
	if err := w.Write(ctx, "v1"); err != nil {
		t.Fatal(err)
	}
	// Servers 0,1 now replay v1 forever.
	if err := c.InjectFault(ByzantineStale, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(ctx, "v2"); err != nil {
		t.Fatal(err)
	}
	got, err := c.NewClient(2).Read(ctx)
	if err != nil || got.Value != "v2" {
		t.Fatalf("read %q (%v), want v2", got.Value, err)
	}
}

func TestMasksEquivocation(t *testing.T) {
	b := 2
	c := newThresholdCluster(t, b, 23)
	if err := c.InjectFault(ByzantineEquivocate, 2, 7); err != nil {
		t.Fatal(err)
	}
	w := c.NewClient(1)
	if err := w.Write(ctx, "stable"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		got, err := c.NewClient(50 + i).Read(ctx)
		if err != nil || got.Value != "stable" {
			t.Fatalf("read %q (%v), want stable", got.Value, err)
		}
	}
}

func TestHybridFaults(t *testing.T) {
	// The paper's hybrid model: b Byzantine plus extra crashes, up to f.
	// Threshold(13, 10) with b=3: MT = 4, f = 3. Inject 2 Byzantine + 1
	// crash (within both budgets... b counts Byzantine only; crashes can
	// add up to f total failures for liveness).
	sys, err := systems.NewMaskingThreshold(13, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(sys, 3, WithSeed(29))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InjectFault(ByzantineFabricate, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.InjectFault(Crashed, 9); err != nil {
		t.Fatal(err)
	}
	w := c.NewClient(1)
	if err := w.Write(ctx, "hybrid"); err != nil {
		t.Fatal(err)
	}
	got, err := c.NewClient(2).Read(ctx)
	if err != nil || got.Value != "hybrid" {
		t.Fatalf("read %q (%v), want hybrid", got.Value, err)
	}
}

func TestViolationPast2bPlus1(t *testing.T) {
	// Demonstrates why Definition 3.5 needs 2b+1: with 2b+1 colluding
	// fabricators, every quorum of the 3b+1-of-4b+1 threshold contains at
	// least b+1 of them, so their fake pair gets vouched and wins.
	b := 2
	c := newThresholdCluster(t, b, 31)
	w := c.NewClient(1)
	if err := w.Write(ctx, "truth"); err != nil {
		t.Fatal(err)
	}
	if err := c.InjectFault(ByzantineFabricate, 0, 1, 2, 3, 4); err != nil { // 2b+1 = 5
		t.Fatal(err)
	}
	got, err := c.NewClient(2).Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != FabricatedValue {
		t.Fatalf("read %q — expected the fabricated value to win once faults exceed b", got.Value)
	}
}

func TestMultipleWritersLastWins(t *testing.T) {
	c := newThresholdCluster(t, 1, 37)
	w1 := c.NewClient(1)
	w2 := c.NewClient(2)
	for i := 0; i < 5; i++ {
		if err := w1.Write(ctx, fmt.Sprintf("w1-%d", i)); err != nil {
			t.Fatal(err)
		}
		if err := w2.Write(ctx, fmt.Sprintf("w2-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.NewClient(3).Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != "w2-4" {
		t.Fatalf("read %q, want w2-4 (the last completed write)", got.Value)
	}
	if got.TS.Writer != 2 {
		t.Fatalf("winning writer = %d, want 2", got.TS.Writer)
	}
}

func TestRegisterOverMGrid(t *testing.T) {
	sys, err := systems.NewMGrid(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(sys, 3, WithSeed(41))
	if err != nil {
		t.Fatal(err)
	}
	// 3 Byzantine servers anywhere.
	if err := c.InjectFault(ByzantineFabricate, 5, 17, 33); err != nil {
		t.Fatal(err)
	}
	w := c.NewClient(1)
	if err := w.Write(ctx, "grid-value"); err != nil {
		t.Fatal(err)
	}
	got, err := c.NewClient(2).Read(ctx)
	if err != nil || got.Value != "grid-value" {
		t.Fatalf("read %q (%v), want grid-value", got.Value, err)
	}
}

func TestRegisterOverMPath(t *testing.T) {
	sys, err := systems.NewMPath(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(sys, 4, WithSeed(43))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InjectFault(ByzantineFabricate, 10, 40); err != nil {
		t.Fatal(err)
	}
	if err := c.InjectFault(Crashed, 60, 61); err != nil {
		t.Fatal(err)
	}
	w := c.NewClient(1)
	if err := w.Write(ctx, "path-value"); err != nil {
		t.Fatal(err)
	}
	got, err := c.NewClient(2).Read(ctx)
	if err != nil || got.Value != "path-value" {
		t.Fatalf("read %q (%v), want path-value", got.Value, err)
	}
}

func TestRandomizedSafetyWithinB(t *testing.T) {
	// Property: across random fault placements with ≤ b Byzantine and ≤
	// f − b extra crashes, a read after a write returns exactly the
	// written value.
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 40; trial++ {
		b := 1 + rng.Intn(3)
		sys, err := systems.NewMaskingThreshold(4*b+1+2*rng.Intn(3), b)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCluster(sys, b, WithSeed(rng.Int63()))
		if err != nil {
			t.Fatal(err)
		}
		n := c.N()
		perm := rng.Perm(n)
		byz := perm[:b]
		behaviors := []Behavior{ByzantineFabricate, ByzantineStale, ByzantineEquivocate}
		for _, id := range byz {
			if err := c.InjectFault(behaviors[rng.Intn(len(behaviors))], id); err != nil {
				t.Fatal(err)
			}
		}
		extraCrashes := core.Resilience(sys) - b
		if extraCrashes > 0 {
			crash := perm[b : b+1] // one extra crash keeps liveness comfortable
			if err := c.InjectFault(Crashed, crash...); err != nil {
				t.Fatal(err)
			}
		}
		w := c.NewClient(1)
		want := fmt.Sprintf("payload-%d", trial)
		if err := w.Write(ctx, want); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := c.NewClient(2).Read(ctx)
		if err != nil {
			t.Fatalf("trial %d: read: %v", trial, err)
		}
		if got.Value != want {
			t.Fatalf("trial %d: read %q, want %q", trial, got.Value, want)
		}
	}
}

func TestBehaviorString(t *testing.T) {
	for _, b := range []Behavior{Correct, Crashed, ByzantineFabricate, ByzantineStale, ByzantineEquivocate, Behavior(99)} {
		if b.String() == "" {
			t.Errorf("empty string for %d", int(b))
		}
	}
	if Correct.IsByzantine() || Crashed.IsByzantine() {
		t.Error("correct/crashed misclassified as Byzantine")
	}
	if !ByzantineFabricate.IsByzantine() {
		t.Error("fabricate should be Byzantine")
	}
}

func TestLossyNetworkStillSafe(t *testing.T) {
	// With a mildly lossy network, clients suspect droppers and retry;
	// operations must stay correct (dropped responses look like crashes).
	c := newThresholdCluster(t, 2, 59)
	if err := c.SetDropRate(0.03); err != nil {
		t.Fatal(err)
	}
	if err := c.InjectFault(ByzantineFabricate, 3); err != nil {
		t.Fatal(err)
	}
	w := c.NewClient(1)
	w.MaxRetries = 64
	r := c.NewClient(2)
	r.MaxRetries = 64
	for i := 0; i < 10; i++ {
		want := fmt.Sprintf("lossy-%d", i)
		if err := w.Write(ctx, want); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		got, err := r.Read(ctx)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Value != want {
			t.Fatalf("read %q, want %q", got.Value, want)
		}
	}
}

func TestFullyLossyNetworkFails(t *testing.T) {
	c := newThresholdCluster(t, 1, 61)
	if err := c.SetDropRate(1.0); err != nil {
		t.Fatal(err)
	}
	w := c.NewClient(1)
	if err := w.Write(ctx, "void"); err == nil {
		t.Fatal("write should fail on a dead network")
	}
}

func TestSetDropRateValidation(t *testing.T) {
	c := newThresholdCluster(t, 1, 62)
	if err := c.SetDropRate(-0.1); err == nil {
		t.Error("negative rate should fail")
	}
	if err := c.SetDropRate(1.1); err == nil {
		t.Error("rate > 1 should fail")
	}
}
