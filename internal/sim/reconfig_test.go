package sim

// Live-reconfiguration tests: the epoch-numbered cutover protocol of
// Cluster.Reconfigure. The rolling-resize test reuses the PR 9 history
// checker (safety_invariant_test.go) so CI's -race pass audits the
// epoch gate itself: histories recorded across two cutovers must still
// satisfy the [MR98a] safe-register semantics with zero violations.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"bqs/internal/core"
	"bqs/internal/obs"
	"bqs/internal/reconfig"
	"bqs/internal/systems"
)

func mustTarget(t *testing.T, spec string, b int) reconfig.Record {
	t.Helper()
	rec, err := reconfig.ParseTarget(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestReconfigureResizeHandsOffState grows MGrid 25 → 36 and shrinks
// back, checking the epoch counter, the universe, the key handoff, and
// the telemetry that rides along.
func TestReconfigureResizeHandsOffState(t *testing.T) {
	reg := obs.NewRegistry()
	mg, err := systems.NewMGrid(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(mg, 1, WithSeed(7), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	w := c.NewClient(1)
	const keys = 10
	for i := 0; i < keys; i++ {
		if err := w.WriteKey(ctx, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := c.Reconfigure(ctx, mustTarget(t, "mgrid:36", 1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Record.Epoch != 1 || c.Epoch() != 1 {
		t.Fatalf("epoch after first resize: record %d, cluster %d; want 1", rep.Record.Epoch, c.Epoch())
	}
	if c.N() != 36 || c.System().UniverseSize() != 36 {
		t.Fatalf("universe after resize: N=%d, system n=%d; want 36", c.N(), c.System().UniverseSize())
	}
	if rep.HandoffKeys != keys {
		t.Fatalf("handed off %d keys, want %d", rep.HandoffKeys, keys)
	}
	r := c.NewClient(2)
	for i := 0; i < keys; i++ {
		got, err := r.ReadKey(ctx, fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatalf("read k%d after resize: %v", i, err)
		}
		if want := fmt.Sprintf("v%d", i); got.Value != want {
			t.Fatalf("k%d after resize: got %q, want %q", i, got.Value, want)
		}
	}
	if err := w.WriteKey(ctx, "post", "resize"); err != nil {
		t.Fatal(err)
	}

	// Shrink back to 25; values written in both epochs must survive.
	if _, err := c.Reconfigure(ctx, mustTarget(t, "mgrid:25", 1)); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != 2 || c.N() != 25 {
		t.Fatalf("after shrink: epoch %d, N=%d; want epoch 2, N=25", c.Epoch(), c.N())
	}
	got, err := r.ReadKey(ctx, "post")
	if err != nil || got.Value != "resize" {
		t.Fatalf("read post-resize key after shrink: %q, %v", got.Value, err)
	}
	if got, _ := r.ReadKey(ctx, "k3"); got.Value != "v3" {
		t.Fatalf("k3 after shrink: got %q, want v3", got.Value)
	}

	if v, ok := reg.Value("bqs_cluster_epoch"); !ok || v != 2 {
		t.Fatalf("bqs_cluster_epoch = %v, %v; want 2", v, ok)
	}
	if v, _ := reg.Value("bqs_reconfig_installs_total"); v != 2 {
		t.Fatalf("bqs_reconfig_installs_total = %v, want 2", v)
	}
	if v, _ := reg.Value("bqs_reconfig_phase"); v != float64(reconfig.Idle) {
		t.Fatalf("bqs_reconfig_phase = %v, want idle (%d)", v, reconfig.Idle)
	}
}

// TestRollingResizeHistoryStaysSafe is the -race rolling-resize safety
// test: a writer and three readers run while the cluster resizes twice
// (threshold:5 → mgrid:36 → compose:5x5), with each resize triggered at
// a writer checkpoint so the drains demonstrably overlap live traffic.
// The recorded history must pass the full safe-register check — no
// fabricated values, no read travelling backwards past a completed
// write — with a nil corruption log (no adversary: every read is within
// budget, so assertSafeHistory's coverage floor bites).
func TestRollingResizeHistoryStaysSafe(t *testing.T) {
	c := newThresholdCluster(t, 1, 53)
	defer c.Close()
	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu sync.Mutex
	var hist []histEntry
	record := func(e histEntry) {
		mu.Lock()
		hist = append(hist, e)
		mu.Unlock()
	}

	// The writer releases one checkpoint per resize target mid-stream.
	const writes = 120
	checkpoints := []int{writes / 3, 2 * writes / 3}
	checkpoint := make(chan struct{}, len(checkpoints))
	resizeDone := make(chan error, 1)
	go func() {
		for _, spec := range []string{"mgrid:36", "compose:5x5"} {
			select {
			case <-checkpoint:
			case <-runCtx.Done():
				resizeDone <- runCtx.Err()
				return
			}
			rec, err := reconfig.ParseTarget(spec, 1)
			if err != nil {
				resizeDone <- err
				return
			}
			rctx, rcancel := context.WithTimeout(runCtx, 10*time.Second)
			_, err = c.Reconfigure(rctx, rec)
			rcancel()
			if err != nil {
				resizeDone <- fmt.Errorf("resize to %s: %w", spec, err)
				return
			}
		}
		resizeDone <- nil
	}()

	var ops sync.WaitGroup
	ops.Add(1)
	go func() {
		defer ops.Done()
		w := c.NewClient(100)
		w.MaxRetries = 64
		w.SuspicionTTL = 5 * time.Millisecond
		next := 0
		for i := 0; i < writes; i++ {
			start := time.Now()
			err := w.Write(runCtx, fmt.Sprintf("w-%d", i))
			record(histEntry{start: start, end: time.Now(), ok: err == nil, value: fmt.Sprintf("w-%d", i)})
			if next < len(checkpoints) && i == checkpoints[next] {
				checkpoint <- struct{}{}
				next++
			}
		}
	}()
	readLoop := func(id, count int) {
		cl := c.NewClient(200 + id)
		cl.MaxRetries = 64
		cl.SuspicionTTL = 5 * time.Millisecond
		for i := 0; i < count; i++ {
			start := time.Now()
			got, err := cl.Read(runCtx)
			if err != nil {
				if errors.Is(err, context.Canceled) {
					return
				}
				continue
			}
			record(histEntry{start: start, end: time.Now(), read: true, ok: true, value: got.Value})
		}
	}
	const readers = 3
	for r := 0; r < readers; r++ {
		ops.Add(1)
		go func(id int) {
			defer ops.Done()
			readLoop(id, writes)
		}(r)
	}
	ops.Wait()
	if err := <-resizeDone; err != nil {
		t.Fatal(err)
	}
	// Read-only tail in the final epoch: these reads are write-free, so
	// they all receive the full freshness check.
	var tail sync.WaitGroup
	for r := 0; r < readers; r++ {
		tail.Add(1)
		go func(id int) {
			defer tail.Done()
			readLoop(100+id, writes/2)
		}(r)
	}
	tail.Wait()

	if c.Epoch() != 2 {
		t.Fatalf("after two resizes: epoch %d, want 2", c.Epoch())
	}
	if c.N() != 25 || !strings.Contains(c.System().Name(), "∘") {
		t.Fatalf("final system %s (n=%d), want the 25-server composition", c.System().Name(), c.N())
	}
	assertSafeHistory(t, hist, nil, 1)
}

// TestReconfigureLoadConvergesToNewLP pins the acceptance criterion:
// under -strategy optimal, a resize re-solves the load LP and the
// measured post-resize load converges to the NEW system's L(Q) within
// 10%.
func TestReconfigureLoadConvergesToNewLP(t *testing.T) {
	mg, err := systems.NewMGrid(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(mg, 1, WithSeed(11), WithOptimalStrategy())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	cl := c.NewClient(1)
	if err := cl.Write(ctx, "v"); err != nil {
		t.Fatal(err)
	}
	oldLoad := c.StrategyLoad()

	if _, err := c.Reconfigure(ctx, mustTarget(t, "mgrid:36", 1)); err != nil {
		t.Fatal(err)
	}
	want := c.StrategyLoad()
	if math.IsNaN(want) || want <= 0 {
		t.Fatalf("post-resize strategy load %v; want the re-solved LP optimum", want)
	}
	if want >= oldLoad {
		t.Fatalf("L(MGrid 36) = %g not below L(MGrid 25) = %g — the resize should shed load", want, oldLoad)
	}

	// Load accounting is per-epoch, so this traffic measures the new
	// system alone.
	for i := 0; i < 4000; i++ {
		if _, err := cl.Read(ctx); err != nil {
			t.Fatal(err)
		}
	}
	got := c.PeakLoad()
	if diff := math.Abs(got-want) / want; diff > 0.10 {
		t.Fatalf("measured post-resize load %g vs LP optimum %g: off by %.1f%% > 10%%", got, want, 100*diff)
	}
}

// TestReconfigureDrainTimeoutAborts wedges an operation in the current
// epoch so the drain cannot complete, and checks the abort path: the
// reconfiguration fails with the deadline error, the old epoch resumes
// serving, and the same resize succeeds once the op exits.
func TestReconfigureDrainTimeoutAborts(t *testing.T) {
	reg := obs.NewRegistry()
	mg, err := systems.NewMGrid(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(mg, 1, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	stuck, err := c.enterOp(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	_, err = c.Reconfigure(ctx, mustTarget(t, "mgrid:36", 1))
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("reconfigure with a wedged op: err = %v, want DeadlineExceeded", err)
	}
	if c.Epoch() != 0 || c.N() != 25 {
		t.Fatalf("after aborted resize: epoch %d, N=%d; want the old epoch intact", c.Epoch(), c.N())
	}
	if v, _ := reg.Value("bqs_reconfig_aborts_total"); v != 1 {
		t.Fatalf("bqs_reconfig_aborts_total = %v, want 1", v)
	}

	// The abort reopened the gate: the old epoch serves again.
	cl := c.NewClient(1)
	if err := cl.Write(context.Background(), "still-serving"); err != nil {
		t.Fatalf("write after aborted resize: %v", err)
	}

	stuck.exit()
	rep, err := c.Reconfigure(context.Background(), mustTarget(t, "mgrid:36", 1))
	if err != nil {
		t.Fatalf("resize after the op exited: %v", err)
	}
	if rep.Record.Epoch != 1 || c.N() != 36 {
		t.Fatalf("after retry: epoch %d, N=%d; want epoch 1 over 36 servers", rep.Record.Epoch, c.N())
	}
	if got, err := cl.Read(context.Background()); err != nil || got.Value != "still-serving" {
		t.Fatalf("read after retried resize: %q, %v", got.Value, err)
	}
}

// TestReconfigureEpochRules covers the record arbitration: idempotent
// re-install of the current epoch, rejection of stale epochs, of a
// changed masking bound, of unknown constructions, and of clusters
// running a fixed WithStrategy strategy.
func TestReconfigureEpochRules(t *testing.T) {
	c := newThresholdCluster(t, 1, 7)
	defer c.Close()
	ctx := context.Background()

	rec := mustTarget(t, "mgrid:36", 1)
	rep, err := c.Reconfigure(ctx, rec)
	if err != nil || rep.Record.Epoch != 1 {
		t.Fatalf("first resize: %+v, %v", rep, err)
	}

	// Idempotent: a record at the current epoch is the follower path.
	same := rec
	same.Epoch = 1
	rep, err = c.Reconfigure(ctx, same)
	if err != nil || rep.Record.Epoch != 1 || c.Epoch() != 1 {
		t.Fatalf("idempotent re-install: %+v, %v (epoch %d)", rep, err, c.Epoch())
	}
	if v := c.N(); v != 36 {
		t.Fatalf("idempotent re-install resized to N=%d", v)
	}

	if _, err := c.Reconfigure(ctx, mustTarget(t, "mgrid:25", 1)); err != nil {
		t.Fatal(err)
	}
	stale := rec
	stale.Epoch = 1
	if _, err := c.Reconfigure(ctx, stale); err == nil || !strings.Contains(err.Error(), "behind") {
		t.Fatalf("stale epoch: err = %v, want a behind-current error", err)
	}

	if _, err := c.Reconfigure(ctx, mustTarget(t, "threshold:9", 2)); err == nil || !strings.Contains(err.Error(), "masking bound") {
		t.Fatalf("b change: err = %v, want the immutable-b error", err)
	}

	if _, err := c.Reconfigure(ctx, reconfig.Record{Kind: "bogus", Universe: 9, B: 1}); err == nil {
		t.Fatal("unknown construction kind accepted")
	}

	// A fixed WithStrategy strategy indexes the boot system's quorum
	// list; reconfiguring under it must refuse.
	sys, err := systems.NewMaskingThreshold(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	en, err := core.AsEnumerable(sys, 100)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := NewCluster(sys, 1, WithStrategy(core.UniformStrategy(len(en.Quorums()))))
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	if _, err := fixed.Reconfigure(ctx, mustTarget(t, "mgrid:36", 1)); err == nil || !strings.Contains(err.Error(), "WithStrategy") {
		t.Fatalf("fixed-strategy cluster: err = %v, want a refusal", err)
	}
}

// TestReconfigureComposeSwapIn swaps a 5-server threshold for the
// Theorem 4.7 composition threshold:5 ∘ threshold:5 under -strategy
// optimal, and pins the re-solved LP at L(S)·L(R) = 0.8 · 0.8 = 0.64.
func TestReconfigureComposeSwapIn(t *testing.T) {
	sys, err := systems.NewMaskingThreshold(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(sys, 1, WithSeed(3), WithOptimalStrategy())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	cl := c.NewClient(9)
	if err := cl.Write(ctx, "before"); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Reconfigure(ctx, mustTarget(t, "compose:5x5", 1)); err != nil {
		t.Fatal(err)
	}
	if c.N() != 25 || !strings.Contains(c.System().Name(), "∘") {
		t.Fatalf("after swap-in: %s over %d servers, want the 25-server composition", c.System().Name(), c.N())
	}
	if got := c.StrategyLoad(); math.Abs(got-0.64) > 1e-9 {
		t.Fatalf("L(S∘R) = %g, want 0.64 = L(S)·L(R) per Theorem 4.7", got)
	}
	if got, err := cl.Read(ctx); err != nil || got.Value != "before" {
		t.Fatalf("pre-swap value through composed quorums: %q, %v", got.Value, err)
	}
	if err := cl.Write(ctx, "after"); err != nil {
		t.Fatal(err)
	}
	if got, err := cl.Read(ctx); err != nil || got.Value != "after" {
		t.Fatalf("post-swap write/read: %q, %v", got.Value, err)
	}
}
