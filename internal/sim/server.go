// Package sim is the distributed substrate the paper's quorum systems are
// built for: an in-memory keyed object space served by n servers, accessed
// through a b-masking quorum system with the read/write protocol of
// [MR98a] run independently per key. Clients write a timestamped value to
// every member of a quorum; readers collect answers from a quorum and
// accept only value/timestamp pairs vouched for by at least b+1 members,
// which the 2b+1-intersection property guarantees filters out anything
// fabricated by at most b Byzantine servers. Each key is its own register
// with its own timestamp history, so the Theorem-safety invariant holds
// key by key. Fault injection covers crashes (silent servers) and several
// Byzantine behaviors (fabrication, stale replay, equivocation), so tests
// can demonstrate both the protocol's guarantees at ≤ b faults and its
// collapse past the 2b+1 bound.
//
// The access layer is a concurrent engine: clients take a context.Context,
// fan probes out to quorum members in parallel goroutines through a
// pluggable Transport (the built-in one models message loss and
// per-server latency), and any number of clients may run concurrently —
// each owns its rng and suspicion state, and per-server access counters
// feed Cluster.LoadProfile, the live-traffic counterpart of the paper's
// load measure (Definition 3.8). On top of the blocking single-key
// Client.Read/Client.Write sits the Session API: ReadAsync/WriteAsync
// futures whose quorum probes are coalesced per destination by a batcher
// (flush on size or linger), so heavy multi-key traffic amortizes
// transport round trips without changing the per-key protocol.
package sim

import (
	"fmt"
	"strings"
	"sync"

	"bqs/internal/store"
)

// Timestamp orders writes: lexicographic on (Seq, Writer).
type Timestamp struct {
	Seq    int64
	Writer int
}

// Less reports t < u.
func (t Timestamp) Less(u Timestamp) bool {
	if t.Seq != u.Seq {
		return t.Seq < u.Seq
	}
	return t.Writer < u.Writer
}

// TaggedValue is a value with its write timestamp.
type TaggedValue struct {
	Value string
	TS    Timestamp
}

// Behavior is a server fault mode.
type Behavior int

// Server behaviors. Crashed servers never respond; Byzantine ones respond
// with adversarial content.
const (
	Correct Behavior = iota + 1
	Crashed
	// ByzantineFabricate answers reads with a fabricated value carrying a
	// timestamp far in the future (the classic attack masking quorums
	// defend against).
	ByzantineFabricate
	// ByzantineStale answers reads with the oldest value it ever stored,
	// hiding newer writes.
	ByzantineStale
	// ByzantineEquivocate answers alternate reads with alternating
	// fabricated values, so different readers see different states.
	ByzantineEquivocate
	// Restart is not a steady state but a transition: applying it kills
	// and recovers the server in place. The attached store's Reopen runs
	// the crash-recovery boundary (a durable engine replays its snapshot
	// and WAL; the in-memory engine comes back empty), the registers are
	// reloaded from whatever survived, and the server lands on Correct —
	// or Crashed, if recovery itself fails. Flowing through SetBehavior
	// lets the existing churn schedules and the wire control frame drive
	// process-level kill-and-recover cycles on remote servers.
	Restart
)

// String names the behavior for logs and tables.
func (b Behavior) String() string {
	switch b {
	case Correct:
		return "correct"
	case Crashed:
		return "crashed"
	case ByzantineFabricate:
		return "byz-fabricate"
	case ByzantineStale:
		return "byz-stale"
	case ByzantineEquivocate:
		return "byz-equivocate"
	case Restart:
		return "restart"
	default:
		return fmt.Sprintf("behavior(%d)", int(b))
	}
}

// IsByzantine reports whether the behavior is adversarial (responsive but
// lying). Crashed is benign per the paper's hybrid fault model: the b of
// Definition 3.5 counts only arbitrary faults, while crashes are the
// failures availability (Definition 3.10) is measured against.
func (b Behavior) IsByzantine() bool {
	return b == ByzantineFabricate || b == ByzantineStale || b == ByzantineEquivocate
}

// KnownBehavior reports whether b is one of the defined fault modes —
// the validity check fault schedules and the wire control frame apply
// before flipping a server.
func KnownBehavior(b Behavior) bool {
	return b >= Correct && b <= Restart
}

// ParseBehavior maps a behavior name (as printed by Behavior.String, plus
// common aliases) to its constant, for CLI fault-schedule and churn specs.
func ParseBehavior(s string) (Behavior, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "correct", "ok", "recover":
		return Correct, nil
	case "crashed", "crash", "down":
		return Crashed, nil
	case "byz-fabricate", "fabricate", "byzantine":
		return ByzantineFabricate, nil
	case "byz-stale", "stale":
		return ByzantineStale, nil
	case "byz-equivocate", "equivocate":
		return ByzantineEquivocate, nil
	case "restart", "reboot":
		return Restart, nil
	}
	return 0, fmt.Errorf("sim: unknown behavior %q (want correct, crashed, byz-fabricate, byz-stale, byz-equivocate or restart)", s)
}

// FabricatedValue is what fabricating servers return; tests assert reads
// never surface it while faults stay within b.
const FabricatedValue = "FABRICATED"

// DefaultKey is the key the single-register API (Client.Read,
// Client.Write, Server.Snapshot) operates on. The keyed object space is a
// strict superset of the original one-register data plane: the old API is
// exactly the keyed API at this key.
const DefaultKey = ""

// register is one key's replicated state on one server: the [MR98a]
// timestamped value plus the earliest write, which ByzantineStale replays.
// Every key has an independent register, so the per-key timestamp protocol
// keeps the masking invariant key by key.
type register struct {
	current  TaggedValue
	first    TaggedValue
	hasFirst bool
}

// Server is one replica of the keyed object space.
type Server struct {
	id    int
	store store.Store // nil: registers live only in memory

	mu       sync.Mutex
	behavior Behavior
	regs     map[string]*register
	reads    int // served read count, drives equivocation alternation
	writes   int
	// colludeTS lets a test coordinate fabricators on one fake timestamp.
	colludeTS Timestamp
}

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithStore attaches a storage engine: every applied write is persisted
// to st before it is acknowledged, the Restart behavior recovers through
// st.Reopen, and state st already holds (a durable engine opened on an
// existing data dir) seeds the registers at construction. Without it the
// server keeps the original memory-only semantics.
func WithStore(st store.Store) ServerOption {
	return func(s *Server) { s.store = st }
}

// NewServer returns a correct server whose object space is whatever its
// store recovered — empty when no store (or a fresh one) is attached.
func NewServer(id int, opts ...ServerOption) *Server {
	s := &Server{
		id:        id,
		behavior:  Correct,
		regs:      make(map[string]*register),
		colludeTS: Timestamp{Seq: 1 << 40, Writer: -1},
	}
	for _, opt := range opts {
		opt(s)
	}
	s.loadFromStore()
	return s
}

// Store returns the attached storage engine, or nil.
func (s *Server) Store() store.Store { return s.store }

// loadFromStore rebuilds the registers from the store's current state —
// the recovery half of a restart, and the startup path for a server
// reopening an existing data dir. With no store attached the registers
// come back empty (restart means amnesia without a durable engine). The
// earliest-write history is gone after a restart, so first is reset to
// current.
func (s *Server) loadFromStore() {
	regs := make(map[string]*register)
	if s.store != nil {
		s.store.Range(func(rec store.Record) bool {
			tv := TaggedValue{Value: rec.Value, TS: Timestamp{Seq: rec.Seq, Writer: int(rec.Writer)}}
			regs[rec.Key] = &register{current: tv, first: tv, hasFirst: true}
			return true
		})
	}
	s.mu.Lock()
	s.regs = regs
	s.mu.Unlock()
}

// reg returns key's register, creating it when create is set; a read of a
// never-written key sees the zero register without allocating state.
func (s *Server) reg(key string, create bool) *register {
	r := s.regs[key]
	if r == nil && create {
		r = &register{}
		s.regs[key] = r
	}
	return r
}

// ID returns the server id.
func (s *Server) ID() int { return s.id }

// SetBehavior switches the server's fault mode. Restart is special: it
// is the kill-and-recover transition, not a state — see restart.
func (s *Server) SetBehavior(b Behavior) {
	if b == Restart {
		s.restart()
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.behavior = b
}

// restart simulates a process kill and recovery in place: the store's
// Reopen runs the crash-recovery boundary, the registers reload from
// whatever survived it, and the server comes back Correct. A server with
// no store restarts into amnesia, exactly as the pre-store churn engine
// behaved. If recovery itself fails the server stays Crashed — a replica
// that cannot read its own log must not serve.
func (s *Server) restart() {
	s.mu.Lock()
	s.behavior = Crashed
	s.mu.Unlock()
	if s.store != nil {
		if err := s.store.Reopen(); err != nil {
			return
		}
	}
	s.loadFromStore()
	s.mu.Lock()
	s.behavior = Correct
	s.mu.Unlock()
}

// Behavior returns the current fault mode.
func (s *Server) Behavior() Behavior {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.behavior
}

// HandleWrite applies a timestamped write to key's register. It returns
// false when the server is unresponsive (crashed), or when an attached
// store could not make the write durable — to the client both read as
// unresponsiveness, the protocol's correct signal for a write whose
// durability is unknown. Byzantine servers acknowledge but may discard.
//
// Persistence happens before the register update and outside the server
// lock: holding mu across a disk fsync would serialize concurrent
// writers and defeat the store's group commit, and applying the register
// only after Apply returns keeps memory from getting ahead of the log.
func (s *Server) HandleWrite(key string, tv TaggedValue) bool {
	s.mu.Lock()
	if s.behavior == Crashed {
		s.mu.Unlock()
		return false
	}
	// ByzantineFabricate/ByzantineEquivocate acknowledge without storing
	// faithfully (they store anyway; responses are fabricated regardless).
	s.writes++
	s.mu.Unlock()

	if s.store != nil {
		rec := store.Record{Key: key, Value: tv.Value, Seq: tv.TS.Seq, Writer: int64(tv.TS.Writer)}
		if err := s.store.Apply(rec); err != nil {
			return false
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.reg(key, true)
	if !r.hasFirst {
		r.first = tv
		r.hasFirst = true
	}
	if r.current.TS.Less(tv.TS) {
		r.current = tv
	}
	return true
}

// HandleRead returns the server's answer to a read probe of key's
// register, and false when unresponsive. A never-written key reads as the
// zero TaggedValue, like the empty register it is.
func (s *Server) HandleRead(readerID int, key string) (TaggedValue, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reads++
	switch s.behavior {
	case Crashed:
		return TaggedValue{}, false
	case ByzantineFabricate:
		return TaggedValue{Value: FabricatedValue, TS: s.colludeTS}, true
	case ByzantineStale:
		if r := s.reg(key, false); r != nil && r.hasFirst {
			return r.first, true
		}
		return TaggedValue{}, true
	case ByzantineEquivocate:
		v := fmt.Sprintf("%s-%d", FabricatedValue, s.reads%2)
		return TaggedValue{Value: v, TS: Timestamp{Seq: s.colludeTS.Seq + int64(s.reads%2), Writer: -1}}, true
	default:
		if r := s.reg(key, false); r != nil {
			return r.current, true
		}
		return TaggedValue{}, true
	}
}

// HandleRequest dispatches a protocol message to the server and returns
// its answer. This is the hook a message layer needs to host a replica:
// the in-memory transport calls it directly, and the wire package's TCP
// listener calls it for each decoded frame. A server that is unresponsive
// (crashed) answers Response{OK: false}; the error return is reserved for
// malformed requests (an Op the protocol doesn't define).
func (s *Server) HandleRequest(req Request) (Response, error) {
	switch req.Op {
	case OpRead, OpReadTimestamps:
		tv, ok := s.HandleRead(req.ReaderID, req.Key)
		return Response{OK: ok, Value: tv}, nil
	case OpWrite:
		return Response{OK: s.HandleWrite(req.Key, req.Value)}, nil
	default:
		return Response{}, fmt.Errorf("sim: server %d: unknown %v", s.id, req.Op)
	}
}

// Snapshot returns the faithfully stored value of the DefaultKey register
// (for test assertions, not part of the protocol).
func (s *Server) Snapshot() TaggedValue { return s.SnapshotKey(DefaultKey) }

// SnapshotKey returns the faithfully stored value of key's register (for
// test assertions, not part of the protocol).
func (s *Server) SnapshotKey(key string) TaggedValue {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r := s.reg(key, false); r != nil {
		return r.current
	}
	return TaggedValue{}
}

// Keys returns the keys this replica has faithfully stored at least one
// write for, in no particular order (for test assertions).
func (s *Server) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.regs))
	for k := range s.regs {
		out = append(out, k)
	}
	return out
}
