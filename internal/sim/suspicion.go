package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"bqs/internal/bitset"
	"bqs/internal/core"
)

// suspicion is the per-client failure-detector state shared by Client and
// DisseminationClient: which servers the client currently believes are
// unresponsive, and since when. It exists because the paper's availability
// story (Section 4, Definition 3.10) is about crashes that COME AND GO —
// a server that recovers must be forgiven and re-probed, never suspected
// forever, or measured availability would drift arbitrarily below F_p(Q)
// under churn.
//
// Two rehabilitation paths re-admit servers:
//
//   - age-based (ttl > 0): a suspect older than ttl is optimistically
//     forgiven at the next quorum selection; if it is still dead, one
//     failed probe re-suspects it. This is what lets churned clients
//     track recovery while live quorums still exist.
//   - probe-on-forgive: when suspicion has grown so large that no quorum
//     survives, each suspect is probed once and exactly the responders
//     are forgiven. Genuinely dead servers stay suspected — forgetting
//     them (as the old forgive-all path did) erased real knowledge every
//     time — and if NO suspect responds, the system has actually crashed
//     for this client and ErrNoLiveQuorum propagates.
//
// suspicion is guarded by its owner's mutex, like the rng it sits next to.
type suspicion struct {
	set bitset.Set
	at  []time.Time // per-server suspicion time; meaningful while in set
	ttl time.Duration
}

func newSuspicion(n int) *suspicion {
	return &suspicion{set: bitset.New(n), at: make([]time.Time, n)}
}

// suspect marks a server unresponsive as of now, reporting whether the
// suspicion is new (false when it merely refreshes the age of an
// existing suspect) — the distinction the suspicion counter wants.
func (s *suspicion) suspect(id int) bool {
	fresh := !s.set.Contains(id)
	s.set.Add(id)
	s.at[id] = time.Now()
	return fresh
}

// forgive clears one server's suspicion.
func (s *suspicion) forgive(id int) {
	s.set.Remove(id)
}

// contains reports whether the server is currently suspected.
func (s *suspicion) contains(id int) bool { return s.set.Contains(id) }

// forgiveAged optimistically forgives every suspect older than ttl,
// returning how many it forgave; a no-op when aging is disabled
// (ttl ≤ 0).
func (s *suspicion) forgiveAged() int {
	if s.ttl <= 0 || s.set.Empty() {
		return 0
	}
	cutoff := time.Now().Add(-s.ttl)
	forgiven := 0
	for _, id := range s.set.Elements() {
		if s.at[id].Before(cutoff) {
			s.set.Remove(id)
			forgiven++
		}
	}
	return forgiven
}

// pickQuorum is the quorum-selection path both client types share: ask
// the cluster's picker (strategy-aware when one is installed) for a
// quorum avoiding the suspects, after retiring suspicions older than the
// client's TTL. When suspicion has exhausted the quorum space it probes
// every suspect once — off the load books, these are failure-detector
// messages rather than quorum accesses in the Definition 3.8 sense — and
// forgives exactly the responders. If none respond, every quorum
// intersects a set of genuinely unresponsive servers: the live system is
// in the crashed state of Definition 3.10 as far as this client can
// observe, and the error wraps core.ErrNoLiveQuorum so harnesses can
// count it against F_p(Q).
func (c *Cluster) pickQuorum(ctx context.Context, rng *rand.Rand, sus *suspicion, readerID int) (bitset.Set, error) {
	if aged := sus.forgiveAged(); aged > 0 {
		c.met.forgivesTTL.Add(int64(aged))
	}
	picker := c.cur.Load().picker
	q, err := picker.PickQuorum(rng, sus.set)
	if err == nil {
		return q, nil
	}
	if !errors.Is(err, core.ErrNoLiveQuorum) || sus.set.Empty() {
		return bitset.Set{}, err
	}
	forgiven := 0
	for _, id := range sus.set.Elements() {
		// Each suspect gets a few probes, not one: a single dropped reply on
		// a lossy network must not leave a live server suspected — or, worse,
		// let pure message loss masquerade as a system crash. A crashed
		// server answers OK: false deterministically, so the retries change
		// nothing about genuine-crash detection (availability runs are
		// lossless anyway); they only push the false-negative probability for
		// live suspects to dropRate^rehabProbes per exhaustion event.
		for attempt := 0; attempt < rehabProbes; attempt++ {
			resp, perr := c.transport.Invoke(ctx, id, Request{Op: OpReadTimestamps, ReaderID: readerID})
			if perr != nil {
				return bitset.Set{}, perr // transport abort: ctx done, client closed
			}
			if resp.OK {
				sus.forgive(id)
				forgiven++
				break
			}
		}
	}
	if forgiven == 0 {
		c.met.reg.Eventf("client %d: system crash: all %d suspects unresponsive, no live quorum", readerID, sus.set.Count())
		return bitset.Set{}, fmt.Errorf("sim: all %d suspects unresponsive: %w", sus.set.Count(), core.ErrNoLiveQuorum)
	}
	c.met.forgivesProbe.Add(int64(forgiven))
	c.met.reg.Eventf("client %d: probe-on-forgive readmitted %d suspects", readerID, forgiven)
	return picker.PickQuorum(rng, sus.set)
}

// rehabProbes is how many times a probe-on-forgive sweep retries each
// suspect before leaving it suspected. Rehabilitation only runs when
// suspicion has exhausted the quorum space — rare — so the extra probes
// are cheap, and they keep transient message loss from reading as death.
const rehabProbes = 3
