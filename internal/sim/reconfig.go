package sim

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"bqs/internal/core"
	"bqs/internal/reconfig"
)

// ReconfigReport summarizes one completed reconfiguration: the record
// installed, how long the drain (quiesce of old-epoch operations) took
// within the total propose→retire span, and how many keys were handed
// to the new universe (0 over a wire transport — the shard daemons
// merge their own state at install).
type ReconfigReport struct {
	Record      reconfig.Record
	Drain       time.Duration
	Total       time.Duration
	HandoffKeys int
}

// Reconfigure moves the cluster to a new epoch running rec's quorum
// system — the two-phase protocol of the reconfig package:
//
//  1. Propose: validate the record (b is immutable; the new system must
//     mask b), build the new system, re-solve the load LP for it when
//     the cluster runs -strategy optimal, and construct servers for any
//     universe growth.
//  2. Drain: park entering operations at the epoch gate and wait for
//     in-flight old-epoch operations to finish, bounded by ctx — on
//     expiry the gate reopens, traffic resumes on the old epoch, and an
//     error reports the aborted resize.
//  3. Cut over: with the old epoch quiesced, hand the keyed state to
//     the new universe (in-memory: merge the newest tagged value per
//     key into every new-universe server; over a wire transport: the
//     transport's InstallEpoch pushes the record and each shard daemon
//     merges its own replicas), then atomically publish the new epoch.
//     Parked operations wake and enter it.
//  4. Retire: release servers outside the new universe and their
//     cluster-built stores.
//
// rec.Epoch 0 means "next": the epoch after the current one. A record
// at the current epoch is an idempotent no-op (the follower path — a
// client told about an epoch it already adopted); an older record is an
// error. Reconfigure calls serialize; the data plane never blocks
// except while its epoch drains.
func (c *Cluster) Reconfigure(ctx context.Context, rec reconfig.Record) (ReconfigReport, error) {
	c.reconfigMu.Lock()
	defer c.reconfigMu.Unlock()
	start := time.Now()

	old := c.cur.Load()
	if rec.Epoch == 0 {
		rec.Epoch = old.epoch + 1
	}
	if rec.Epoch == old.epoch {
		return ReconfigReport{Record: old.rec}, nil
	}
	if rec.Epoch < old.epoch {
		return ReconfigReport{}, fmt.Errorf("sim: reconfigure: record epoch %d is behind current epoch %d", rec.Epoch, old.epoch)
	}
	if rec.B != c.b {
		return ReconfigReport{}, fmt.Errorf("sim: reconfigure: cannot change masking bound b=%d to %d — clients vouch values with b+1 replies and a cross-epoch change would mix vouch thresholds", c.b, rec.B)
	}
	if c.fixedStrat {
		return ReconfigReport{}, errors.New("sim: reconfigure: cluster runs a fixed WithStrategy strategy whose weights index the boot system's quorum list; use uniform selection or WithOptimalStrategy")
	}

	// Phase 1 — propose: build and validate the new epoch's state before
	// touching the data plane.
	system, err := reconfig.BuildSystem(rec)
	if err != nil {
		return ReconfigReport{}, fmt.Errorf("sim: reconfigure: %w", err)
	}
	if m, ok := core.System(system).(core.Masking); ok && m.MaskingBound() < c.b {
		return ReconfigReport{}, fmt.Errorf("sim: reconfigure: system %s masks only %d < b=%d",
			system.Name(), m.MaskingBound(), c.b)
	}
	st := newEpochState()
	st.epoch, st.rec, st.system, st.b = rec.Epoch, rec, system, c.b
	n := system.UniverseSize()
	st.accesses = make([]atomic.Int64, n)
	if err := c.installSelection(st, nil); err != nil {
		return ReconfigReport{}, fmt.Errorf("sim: reconfigure: %w", err)
	}
	c.met.reconfigPhase.Set(float64(reconfig.Proposed))
	servers := make([]*Server, n)
	var created []int
	abort := func() {
		c.releaseStores(created)
		c.met.reconfigAborts.Inc()
		c.met.reconfigPhase.Set(float64(reconfig.Idle))
	}
	for i := 0; i < n; i++ {
		if i < len(old.servers) {
			servers[i] = old.servers[i]
			continue
		}
		s, err := c.buildServer(i)
		if err != nil {
			abort()
			return ReconfigReport{}, fmt.Errorf("sim: reconfigure: %w", err)
		}
		servers[i] = s
		created = append(created, i)
	}
	st.servers = servers

	// Phase 2 — drain the old epoch, bounded by ctx.
	c.met.reconfigPhase.Set(float64(reconfig.Draining))
	drainDur, err := old.drain(ctx)
	if err != nil {
		old.abortDrain()
		abort()
		return ReconfigReport{}, fmt.Errorf("sim: reconfigure: drain: %w", err)
	}
	c.met.drainSeconds.ObserveDuration(drainDur)

	// Phase 3 — cut over. With a wire transport the record travels to
	// every shard (each daemon merges its replicas' state under the new
	// universe before acking); locally the quiesced state is merged into
	// the new universe directly.
	handoff := 0
	if inst, ok := c.transport.(reconfig.Installer); ok {
		if err := inst.InstallEpoch(ctx, rec); err != nil {
			old.abortDrain()
			abort()
			return ReconfigReport{}, fmt.Errorf("sim: reconfigure: install: %w", err)
		}
	} else {
		handoff = mergeState(old.servers, servers)
	}
	c.met.reconfigPhase.Set(float64(reconfig.CutOver))
	if c.mem != nil {
		c.mem.resize(servers)
	}
	c.accumulateRetired(old)
	if c.met.on {
		for _, i := range created {
			c.registerServerSeries(i)
		}
	}
	c.cur.Store(st)
	old.release(false) // wake parked operations into the new epoch
	c.setLowerBoundGauge()
	c.met.epochGauge.Set(float64(rec.Epoch))

	// Phase 4 — retire: servers beyond the new universe are dropped;
	// close the storage engines the cluster built for them.
	if n < len(old.servers) {
		var dropped []int
		for i := n; i < len(old.servers); i++ {
			dropped = append(dropped, i)
		}
		c.releaseStores(dropped)
	}
	c.met.installs.Inc()
	c.met.handoffKeys.Add(int64(handoff))
	c.met.reconfigPhase.Set(float64(reconfig.Idle))
	total := time.Since(start)
	c.met.reconfigSecs.ObserveDuration(total)
	c.met.reg.Eventf("reconfig: epoch %d installed (%s, n=%d, drain %v, %d keys handed off)",
		rec.Epoch, system.Name(), n, drainDur, handoff)
	return ReconfigReport{Record: rec, Drain: drainDur, Total: total, HandoffKeys: handoff}, nil
}

// releaseStores closes and forgets the cluster-built storage engines of
// the given server ids (no-op for ids without one).
func (c *Cluster) releaseStores(ids []int) {
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	for _, id := range ids {
		if st, ok := c.stores[id]; ok {
			st.Close()
			delete(c.stores, id)
		}
	}
}

// accumulateRetired folds the retiring epoch's load counters into the
// running totals the monotonic telemetry counters read.
func (c *Cluster) accumulateRetired(old *epochState) {
	rt := c.retired.Load()
	nt := &retiredTotals{phases: rt.phases + old.phases.Load()}
	size := len(rt.accesses)
	if len(old.accesses) > size {
		size = len(old.accesses)
	}
	nt.accesses = make([]int64, size)
	copy(nt.accesses, rt.accesses)
	for i := range old.accesses {
		nt.accesses[i] += old.accesses[i].Load()
	}
	c.retired.Store(nt)
}

// mergeState hands the quiesced keyed state to the new universe: the
// newest tagged value of every key across the old servers is written to
// every new-universe server that does not already hold something at
// least as new. Completing a partially-written value this way is legal
// for the [MR98a] safe register — the write happened; handoff merely
// finishes its propagation — and reading stored state (not asking the
// servers) sidesteps Byzantine reply behaviors, which corrupt answers,
// not registers. Returns how many keys moved.
func mergeState(from, to []*Server) int {
	best := make(map[string]TaggedValue)
	for _, s := range from {
		for _, key := range s.Keys() {
			tv := s.SnapshotKey(key)
			if cur, ok := best[key]; !ok || cur.TS.Less(tv.TS) {
				best[key] = tv
			}
		}
	}
	for key, tv := range best {
		for _, s := range to {
			if s.SnapshotKey(key).TS.Less(tv.TS) {
				s.HandleWrite(key, tv)
			}
		}
	}
	return len(best)
}
