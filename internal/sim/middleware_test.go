package sim

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"bqs/internal/systems"
)

// faultProxy is the WithTransport middleware pattern the option's docs
// promise works: wrap NewInMemoryTransport, count every probe, and
// optionally rewrite outcomes per server. It pins the documented
// contract — Response{OK: false} is suspicion (the client re-selects a
// quorum around the server), a non-nil error is an abort (the operation
// fails outright).
type faultProxy struct {
	inner    Transport
	invokes  atomic.Int64
	perSrv   []atomic.Int64
	unresp   atomic.Int64 // server id whose responses become OK: false (−1 none)
	unrespN  atomic.Int64 // how many more probes to rewrite
	abortErr atomic.Value // error every probe to abortSrv returns
	abortSrv atomic.Int64 // −1 none, −2 every server
}

func newFaultProxy(servers []*Server) *faultProxy {
	p := &faultProxy{
		inner:  NewInMemoryTransport(servers, 1),
		perSrv: make([]atomic.Int64, len(servers)),
	}
	p.unresp.Store(-1)
	p.abortSrv.Store(-1)
	return p
}

func (p *faultProxy) Invoke(ctx context.Context, server int, req Request) (Response, error) {
	p.invokes.Add(1)
	p.perSrv[server].Add(1)
	if sel := p.abortSrv.Load(); sel == int64(server) || sel == -2 {
		return Response{}, p.abortErr.Load().(error)
	}
	if int64(server) == p.unresp.Load() && p.unrespN.Add(-1) >= 0 {
		return Response{OK: false}, nil
	}
	return p.inner.Invoke(ctx, server, req)
}

// TestWithTransportFaultInjection extends TestWithTransportMiddleware
// (the plain counting wrapper) with outcome rewriting, pinning the two
// halves of the Transport contract that quorum re-selection depends on.
func TestWithTransportFaultInjection(t *testing.T) {
	sys, err := systems.NewMaskingThreshold(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	var proxy *faultProxy
	cluster, err := NewCluster(sys, 2, WithTransport(func(servers []*Server) Transport {
		proxy = newFaultProxy(servers)
		return proxy
	}))
	if err != nil {
		t.Fatal(err)
	}
	if proxy == nil {
		t.Fatal("WithTransport factory was never called")
	}
	if cluster.Transport() != Transport(proxy) {
		t.Fatal("cluster did not install the middleware transport")
	}
	ctx := context.Background()

	// Plain traffic flows through the middleware: every probe is counted,
	// and the counts agree with the cluster's own load accounting.
	cl := cluster.NewClient(1)
	if err := cl.Write(ctx, "v1"); err != nil {
		t.Fatalf("write through middleware: %v", err)
	}
	if tv, err := cl.Read(ctx); err != nil || tv.Value != "v1" {
		t.Fatalf("read through middleware: tv=%+v err=%v", tv, err)
	}
	seen := proxy.invokes.Load()
	if seen == 0 {
		t.Fatal("middleware saw no probes")
	}
	total := int64(0)
	for i := range proxy.perSrv {
		total += proxy.perSrv[i].Load()
	}
	if total != seen {
		t.Fatalf("per-server counts sum to %d, want %d", total, seen)
	}

	// Contract half 1: OK:false is suspicion. Make server 0 unresponsive
	// for a bounded number of probes; operations keep succeeding because
	// the client re-selects quorums around the suspect, never erroring.
	proxy.unrespN.Store(4)
	proxy.unresp.Store(0)
	if err := cl.Write(ctx, "v2"); err != nil {
		t.Fatalf("write with transient unresponsiveness must retry, got: %v", err)
	}
	if tv, err := cl.Read(ctx); err != nil || tv.Value != "v2" {
		t.Fatalf("read after suspicion recovery: tv=%+v err=%v", tv, err)
	}
	proxy.unresp.Store(-1)

	// Contract half 2: an error is an abort. The client must not swallow
	// it into retries — the operation fails and wraps the exact error.
	sentinel := errors.New("middleware: injected transport failure")
	proxy.abortErr.Store(sentinel)
	proxy.abortSrv.Store(-2) // every probe errors, whatever quorum is drawn
	w := cluster.NewClient(2)
	w.MaxRetries = 100 // prove failure is immediate, not retry exhaustion
	err = w.Write(ctx, "v3")
	if !errors.Is(err, sentinel) {
		t.Fatalf("write through erroring middleware: err=%v, want wrapped sentinel", err)
	}
	if _, err := w.Read(ctx); !errors.Is(err, sentinel) {
		t.Fatalf("read through erroring middleware: err=%v, want wrapped sentinel", err)
	}
	if errors.Is(err, ErrRetriesExhausted) {
		t.Fatal("abort must not be reported as retry exhaustion")
	}

	// Clearing the fault restores service on the same cluster.
	proxy.abortSrv.Store(-1)
	if err := w.Write(ctx, "v4"); err != nil {
		t.Fatalf("write after clearing abort: %v", err)
	}
	if tv, err := cl.Read(ctx); err != nil || tv.Value != "v4" {
		t.Fatalf("final read: tv=%+v err=%v", tv, err)
	}
}
