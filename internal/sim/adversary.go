package sim

// The adversary is the scheduling counterpart of the churn engine: where
// FaultController replays a fixed timeline of WHO fails WHEN, an
// Adversary decides live WHICH servers to corrupt — the paper's failure
// model lets the b Byzantine servers be chosen by an adversary, and this
// seam makes that choice a pluggable strategy instead of the oblivious
// uniform draw every experiment so far used. Three schedulers ship:
//
//   - random: corrupt a fresh uniform b-subset each tick — the oblivious
//     baseline, matching what a static InjectFault pattern samples.
//   - targeted: corrupt the servers carrying the most access weight,
//     read live from the same atomics LoadProfile reports — the
//     worst-case adversary Definition 3.10's availability analysis must
//     survive, and the one that separates balanced systems (Paths, M-Grid)
//     from load-concentrating ones (Wheel hubs).
//   - timing: hold the victim set fixed but flip its behavior between
//     ByzantineStale and ByzantineEquivocate keyed to the protocol's
//     phase counter, so corruption lands around the timestamp-collection
//     phase where stale replays hurt reads the most.
//
// Like FaultController, an Adversary drives any Flipper — the in-memory
// Cluster or the wire package's TCP client — so remote fleets face the
// same adversaries over control frames. It never corrupts more than B
// servers at once: victims leaving the set are restored to Correct
// before new ones are corrupted.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// AdversaryKind names a victim-selection strategy.
type AdversaryKind int

const (
	// AdversaryRandom migrates the fault budget to a fresh uniform subset
	// each re-targeting round — the stochastic baseline.
	AdversaryRandom AdversaryKind = iota + 1
	// AdversaryTargeted concentrates the budget on the servers carrying
	// the most strategy weight, read live from the load profile.
	AdversaryTargeted
	// AdversaryTiming aims like targeted but keys the Byzantine mode to
	// the protocol phase: stale replays around timestamp collection,
	// equivocation around the store phase.
	AdversaryTiming
)

// String renders the kind in the form ParseAdversary accepts.
func (k AdversaryKind) String() string {
	switch k {
	case AdversaryRandom:
		return "random"
	case AdversaryTargeted:
		return "targeted"
	case AdversaryTiming:
		return "timing"
	}
	return fmt.Sprintf("AdversaryKind(%d)", int(k))
}

// LoadSource exposes live per-server access frequencies; Cluster's
// LoadProfile satisfies it, and the targeted adversary reads it each
// tick to re-aim at whoever the strategy is loading most right now.
type LoadSource interface {
	LoadProfile() []float64
}

// PhaseSource exposes the live quorum-access counter; the timing
// adversary uses its parity to land behavior flips around the
// timestamp-collection phase.
type PhaseSource interface {
	Phases() int64
}

// AdversaryConfig shapes an Adversary.
type AdversaryConfig struct {
	Kind AdversaryKind
	// B is how many servers are corrupt at any instant (the b of the
	// b-masking budget the experiment grants the adversary).
	B int
	// Behavior is the corruption mode. Zero picks the kind's default:
	// Crashed for random and targeted (availability pressure),
	// ByzantineStale for timing (which then alternates with
	// ByzantineEquivocate on its own).
	Behavior Behavior
	// Interval is the re-targeting period (default 25ms).
	Interval time.Duration
	// Seed drives the random scheduler's victim draws.
	Seed int64
}

// ParseAdversary parses the CLI form: a kind name optionally followed by
// comma-separated key=value fields b=<int>, behavior=<ParseBehavior
// name>, interval=<duration>, seed=<int>. Examples:
//
//	"targeted"
//	"random,b=2,behavior=byz-fabricate,interval=100ms"
func ParseAdversary(spec string) (AdversaryConfig, error) {
	var cfg AdversaryConfig
	fields := strings.Split(spec, ",")
	switch strings.TrimSpace(fields[0]) {
	case "random":
		cfg.Kind = AdversaryRandom
	case "targeted":
		cfg.Kind = AdversaryTargeted
	case "timing":
		cfg.Kind = AdversaryTiming
	default:
		return AdversaryConfig{}, fmt.Errorf("sim: unknown adversary %q (want random, targeted, timing)", strings.TrimSpace(fields[0]))
	}
	for _, field := range fields[1:] {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, value, ok := strings.Cut(field, "=")
		if !ok {
			return AdversaryConfig{}, fmt.Errorf("sim: adversary field %q is not key=value", field)
		}
		value = strings.TrimSpace(value)
		var err error
		switch strings.TrimSpace(key) {
		case "b":
			cfg.B, err = strconv.Atoi(value)
		case "behavior":
			cfg.Behavior, err = ParseBehavior(value)
		case "interval":
			cfg.Interval, err = time.ParseDuration(value)
		case "seed":
			cfg.Seed, err = strconv.ParseInt(value, 10, 64)
		default:
			return AdversaryConfig{}, fmt.Errorf("sim: unknown adversary key %q (want b, behavior, interval, seed)", key)
		}
		if err != nil {
			return AdversaryConfig{}, fmt.Errorf("sim: adversary field %q: %w", field, err)
		}
	}
	if cfg.B < 0 {
		return AdversaryConfig{}, fmt.Errorf("sim: adversary budget b=%d must be non-negative", cfg.B)
	}
	if cfg.Interval < 0 {
		return AdversaryConfig{}, fmt.Errorf("sim: adversary interval %v must be non-negative", cfg.Interval)
	}
	return cfg, nil
}

// Adversary corrupts up to B servers of an n-server fleet through a
// Flipper, re-choosing victims every Interval per its Kind. Construct
// with NewAdversary, start with Run.
type Adversary struct {
	cfg     AdversaryConfig
	flipper Flipper
	loads   LoadSource
	n       int

	rng     *rand.Rand
	current map[int]bool
	mode    Behavior // what the current victims are corrupted as

	flips  atomic.Int64
	misses atomic.Int64
	ticks  atomic.Int64

	mu       sync.Mutex
	firstErr error
	victims  []int

	// OnFlip, when set before Run, observes every attempted flip — the
	// hook the safety-checker tests use to know exactly who was corrupt
	// when.
	OnFlip func(server int, behavior Behavior, err error)
	// FlipTimeout bounds each flip, as in FaultController (default 2s).
	FlipTimeout time.Duration
}

// NewAdversary builds an adversary over an n-server fleet. loads may be
// nil except for the targeted kind, which re-aims off it; the timing
// kind uses it when present (for both aim and phase parity, if the
// source is also a PhaseSource) and falls back to fixed low indices and
// per-tick alternation otherwise.
func NewAdversary(cfg AdversaryConfig, f Flipper, loads LoadSource, n int) (*Adversary, error) {
	if f == nil {
		return nil, fmt.Errorf("sim: adversary needs a flipper")
	}
	if n <= 0 {
		return nil, fmt.Errorf("sim: adversary universe %d must be positive", n)
	}
	switch cfg.Kind {
	case AdversaryRandom, AdversaryTargeted, AdversaryTiming:
	default:
		return nil, fmt.Errorf("sim: unknown adversary kind %v", cfg.Kind)
	}
	if cfg.Kind == AdversaryTargeted && loads == nil {
		return nil, fmt.Errorf("sim: targeted adversary needs a load source")
	}
	if cfg.B < 0 || cfg.B > n {
		return nil, fmt.Errorf("sim: adversary budget b=%d outside [0,%d]", cfg.B, n)
	}
	if cfg.Behavior != 0 && (!KnownBehavior(cfg.Behavior) || cfg.Behavior == Correct || cfg.Behavior == Restart) {
		return nil, fmt.Errorf("sim: adversary behavior %v must be a fault mode", cfg.Behavior)
	}
	if cfg.Behavior == 0 {
		if cfg.Kind == AdversaryTiming {
			cfg.Behavior = ByzantineStale
		} else {
			cfg.Behavior = Crashed
		}
	}
	if cfg.Interval == 0 {
		cfg.Interval = 25 * time.Millisecond
	}
	return &Adversary{
		cfg:         cfg,
		flipper:     f,
		loads:       loads,
		n:           n,
		rng:         rand.New(rand.NewSource(cfg.Seed + adversaryStreamSalt)),
		current:     make(map[int]bool),
		mode:        cfg.Behavior,
		FlipTimeout: 2 * time.Second,
	}, nil
}

// adversaryStreamSalt keeps the adversary's victim draws off the churn
// and client PRNG streams derived from the same run seed.
const adversaryStreamSalt = 0x510e527fade682d1

// PickVictims returns the next victim set (sorted, at most B servers)
// without applying it — exposed so tests can pin each scheduler's
// choice.
func (a *Adversary) PickVictims() []int {
	k := a.cfg.B
	if k > a.n {
		k = a.n
	}
	if k <= 0 {
		return nil
	}
	if a.cfg.Kind == AdversaryRandom {
		picks := append([]int(nil), a.rng.Perm(a.n)[:k]...)
		sort.Ints(picks)
		return picks
	}
	// targeted / timing: heaviest-loaded first, index as tie-break. An
	// all-zero profile (no traffic yet, or no load source) degrades to
	// the deterministic first k indices.
	weights := make([]float64, a.n)
	if a.loads != nil {
		if prof := a.loads.LoadProfile(); len(prof) == a.n {
			copy(weights, prof)
		}
	}
	order := make([]int, a.n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return weights[order[x]] > weights[order[y]]
	})
	picks := append([]int(nil), order[:k]...)
	sort.Ints(picks)
	return picks
}

// nextMode returns the corruption behavior for this tick: fixed for
// random/targeted, phase-keyed (or per-tick) stale/equivocate
// alternation for timing.
func (a *Adversary) nextMode() Behavior {
	if a.cfg.Kind != AdversaryTiming {
		return a.cfg.Behavior
	}
	if ps, ok := a.loads.(PhaseSource); ok && ps != nil {
		// Phases counts one per quorum access; a write is timestamp
		// collection then store, so parity tracks which protocol phase the
		// fleet is around. Stale replays bite hardest when reads land on
		// the timestamp phase.
		if ps.Phases()%2 == 0 {
			return ByzantineStale
		}
		return ByzantineEquivocate
	}
	if a.ticks.Load()%2 == 0 {
		return ByzantineStale
	}
	return ByzantineEquivocate
}

// step applies one re-targeting round: restore victims leaving the set
// to Correct FIRST, then corrupt the newcomers, so the corrupt set never
// exceeds B at any instant.
func (a *Adversary) step(ctx context.Context) {
	next := a.PickVictims()
	mode := a.nextMode()
	nextSet := make(map[int]bool, len(next))
	for _, s := range next {
		nextSet[s] = true
	}
	for s := range a.current {
		if !nextSet[s] {
			a.flip(ctx, s, Correct)
			delete(a.current, s)
		}
	}
	for _, s := range next {
		// Newcomers always need the flip; holdovers only when the timing
		// adversary switched modes under them.
		if !a.current[s] || mode != a.mode {
			a.flip(ctx, s, mode)
		}
		a.current[s] = true
	}
	a.mode = mode
	a.ticks.Add(1)
	a.mu.Lock()
	a.victims = next
	a.mu.Unlock()
}

func (a *Adversary) flip(ctx context.Context, server int, b Behavior) {
	flipCtx, cancel := ctx, context.CancelFunc(func() {})
	if a.FlipTimeout > 0 {
		flipCtx, cancel = context.WithTimeout(ctx, a.FlipTimeout)
	}
	err := a.flipper.Flip(flipCtx, server, b)
	cancel()
	if err != nil && ctx.Err() == nil {
		a.misses.Add(1)
		a.mu.Lock()
		if a.firstErr == nil {
			a.firstErr = fmt.Errorf("sim: adversary flip server %d to %v: %w", server, b, err)
		}
		a.mu.Unlock()
	} else if err == nil {
		a.flips.Add(1)
	}
	if a.OnFlip != nil {
		a.OnFlip(server, b, err)
	}
}

// Run corrupts immediately, then re-targets every Interval until ctx is
// done. On exit it restores its victims to Correct with a short grace
// context, so a cancelled adversary leaves the fleet clean — the
// experiment boundary, not the adversary, decides when corruption ends.
func (a *Adversary) Run(ctx context.Context) error {
	a.step(ctx)
	ticker := time.NewTicker(a.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			grace, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			for s := range a.current {
				a.flip(grace, s, Correct)
				delete(a.current, s)
			}
			cancel()
			a.mu.Lock()
			a.victims = nil
			a.mu.Unlock()
			return ctx.Err()
		case <-ticker.C:
			a.step(ctx)
		}
	}
}

// Victims returns the current victim set (sorted).
func (a *Adversary) Victims() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]int(nil), a.victims...)
}

// Flips returns how many flips have been applied successfully.
func (a *Adversary) Flips() int64 { return a.flips.Load() }

// Misses returns how many flips failed (and were skipped).
func (a *Adversary) Misses() int64 { return a.misses.Load() }

// Ticks returns how many re-targeting rounds have run.
func (a *Adversary) Ticks() int64 { return a.ticks.Load() }

// Mode returns the corruption behavior the next step would apply —
// fixed for random/targeted, the live stale/equivocate alternation for
// timing. Epoch-style drivers use it to apply PickVictims themselves.
func (a *Adversary) Mode() Behavior { return a.nextMode() }

// Interval returns the re-targeting period (after defaulting).
func (a *Adversary) Interval() time.Duration { return a.cfg.Interval }

// FirstErr returns the error of the first failed flip, or nil.
func (a *Adversary) FirstErr() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.firstErr
}
