package harness

import (
	"math"
	"strings"
	"testing"
	"time"

	"bqs"
)

func TestBuildSystem(t *testing.T) {
	cases := []struct {
		kind string
		b    int
		n    int
	}{
		{"threshold", 3, 13},
		{"grid", 3, 100},
		{"mgrid", 3, 64},
		{"boostfpp", 3, 169}, // FPP(3): 13 lines, each a Thresh over 4b+1 = 13 servers
		{"mpath", 3, 100},
	}
	for _, tc := range cases {
		sys, err := BuildSystem(tc.kind, tc.b)
		if err != nil {
			t.Errorf("BuildSystem(%q, %d): %v", tc.kind, tc.b, err)
			continue
		}
		if sys.UniverseSize() != tc.n {
			t.Errorf("BuildSystem(%q, %d): n=%d, want %d", tc.kind, tc.b, sys.UniverseSize(), tc.n)
		}
	}
	if _, err := BuildSystem("bogus", 1); err == nil {
		t.Error("BuildSystem accepted an unknown kind")
	}
	// The wheel is the unbalanced regular system: b = 0 only.
	if sys, err := BuildSystem("wheel", 0); err != nil {
		t.Errorf("BuildSystem(wheel, 0): %v", err)
	} else if sys.UniverseSize() != 12 {
		t.Errorf("wheel n = %d, want 12", sys.UniverseSize())
	}
	if _, err := BuildSystem("wheel", 1); err == nil {
		t.Error("wheel with b > 0 must be rejected")
	}
}

func TestStrategyOption(t *testing.T) {
	if opt, err := StrategyOption("uniform"); err != nil || opt != nil {
		t.Errorf("uniform: opt=%v err=%v, want nil option", opt, err)
	}
	if opt, err := StrategyOption("optimal"); err != nil || opt == nil {
		t.Errorf("optimal: opt=%v err=%v, want non-nil option", opt, err)
	}
	if _, err := StrategyOption("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

// TestOptimalStrategyEndToEnd drives the full harness path — BuildSystem,
// StrategyOption, Run, Report — and checks the measured peak sits within
// 10% of the LP value the Report prints.
func TestOptimalStrategyEndToEnd(t *testing.T) {
	sys, err := BuildSystem("mgrid", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := StrategyOption("optimal")
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := bqs.NewCluster(sys, 1, bqs.WithSeed(9), opt)
	if err != nil {
		t.Fatal(err)
	}
	c := Run(cluster, Workload{Clients: 8, Ops: 100})
	if c.Failures != 0 || c.Violations != 0 {
		t.Fatalf("fault-free run reported failures: %+v", c)
	}
	sum := Report(cluster, sys, 1, c)
	if math.IsNaN(sum.StrategyLoad) {
		t.Fatal("Report lost the strategy load")
	}
	if dev := math.Abs(sum.Peak/sum.StrategyLoad - 1); dev > 0.10 {
		t.Fatalf("measured peak %.4f is %.1f%% from LP L(Q) %.4f", sum.Peak, 100*dev, sum.StrategyLoad)
	}
}

func TestRunOpBounded(t *testing.T) {
	sys, err := BuildSystem("threshold", 2)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := bqs.NewCluster(sys, 2, bqs.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{Clients: 4, Ops: 10}
	c := Run(cluster, w)
	if got, want := c.Total(), int64(4*10); got != want {
		t.Fatalf("Total = %d, want %d", got, want)
	}
	// Fault-free: every op succeeds, split exactly by the (id+op) parity.
	if c.Failures != 0 || c.Violations != 0 || c.NoCandidates != 0 {
		t.Fatalf("fault-free run reported failures: %+v", c)
	}
	if c.Reads+c.Writes != c.Total() || c.Writes != c.Reads {
		t.Fatalf("mix skewed: %d reads, %d writes", c.Reads, c.Writes)
	}
	if c.Elapsed <= 0 {
		t.Fatal("Elapsed not measured")
	}
	if !strings.Contains(w.Describe(), "4 clients × 10 ops") {
		t.Fatalf("Describe() = %q", w.Describe())
	}
}

func TestRunTimeBounded(t *testing.T) {
	sys, err := BuildSystem("threshold", 1)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := bqs.NewCluster(sys, 1, bqs.WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{Clients: 2, Ops: 1, Duration: 50 * time.Millisecond}
	c := Run(cluster, w)
	if c.Total() <= 2 {
		t.Fatalf("time-bounded run stopped after Ops (%d ops) — Duration must override -ops", c.Total())
	}
	if c.Elapsed < w.Duration {
		t.Fatalf("run ended after %v, before the %v budget", c.Elapsed, w.Duration)
	}
	if !strings.Contains(w.Describe(), "2 clients for 50ms") {
		t.Fatalf("Describe() = %q", w.Describe())
	}
}

// TestRunDurationEndsAtBoundary pins the duration-mode fix: with a slow
// fleet and no per-op timeout, the run-wide deadline must cut the last
// operation at the stop boundary instead of letting it run a full
// multi-phase round trip past it, and the cut-off operation must be
// counted neither as a success nor as a failure.
func TestRunDurationEndsAtBoundary(t *testing.T) {
	sys, err := BuildSystem("threshold", 1)
	if err != nil {
		t.Fatal(err)
	}
	const latency = 100 * time.Millisecond
	cluster, err := bqs.NewCluster(sys, 1, bqs.WithSeed(7), bqs.WithLatency(latency, 0))
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{Clients: 2, Duration: 150 * time.Millisecond} // Timeout: 0
	c := Run(cluster, w)
	// A write is two quorum phases (timestamps + store) of 100ms each, so
	// the old between-ops stop check overshot by up to ~200ms. The
	// deadline-derived contexts abort mid-probe at the boundary.
	if c.Elapsed > w.Duration+latency {
		t.Fatalf("run overshot the boundary: elapsed %v for a %v duration", c.Elapsed, w.Duration)
	}
	if c.Elapsed < w.Duration {
		t.Fatalf("run ended after %v, before the %v budget", c.Elapsed, w.Duration)
	}
	if c.Failures != 0 {
		t.Fatalf("boundary-cut operations were miscounted as failures: %+v", c)
	}
	if c.Succeeded() == 0 {
		t.Fatal("no operation completed inside the window")
	}
}

func TestCountersSucceededVsTotal(t *testing.T) {
	c := Counters{Reads: 3, Writes: 4, NoCandidates: 2, Failures: 5, Violations: 1}
	if got := c.Succeeded(); got != 7 {
		t.Errorf("Succeeded = %d, want 7", got)
	}
	if got := c.Total(); got != 15 {
		t.Errorf("Total = %d, want 15", got)
	}
}
