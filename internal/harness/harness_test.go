package harness

import (
	"strings"
	"testing"
	"time"

	"bqs"
)

func TestBuildSystem(t *testing.T) {
	cases := []struct {
		kind string
		b    int
		n    int
	}{
		{"threshold", 3, 13},
		{"grid", 3, 100},
		{"mgrid", 3, 64},
		{"boostfpp", 3, 169}, // FPP(3): 13 lines, each a Thresh over 4b+1 = 13 servers
		{"mpath", 3, 100},
	}
	for _, tc := range cases {
		sys, err := BuildSystem(tc.kind, tc.b)
		if err != nil {
			t.Errorf("BuildSystem(%q, %d): %v", tc.kind, tc.b, err)
			continue
		}
		if sys.UniverseSize() != tc.n {
			t.Errorf("BuildSystem(%q, %d): n=%d, want %d", tc.kind, tc.b, sys.UniverseSize(), tc.n)
		}
	}
	if _, err := BuildSystem("bogus", 1); err == nil {
		t.Error("BuildSystem accepted an unknown kind")
	}
}

func TestRunOpBounded(t *testing.T) {
	sys, err := BuildSystem("threshold", 2)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := bqs.NewCluster(sys, 2, bqs.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{Clients: 4, Ops: 10}
	c := Run(cluster, w)
	if got, want := c.Total(), int64(4*10); got != want {
		t.Fatalf("Total = %d, want %d", got, want)
	}
	// Fault-free: every op succeeds, split exactly by the (id+op) parity.
	if c.Failures != 0 || c.Violations != 0 || c.NoCandidates != 0 {
		t.Fatalf("fault-free run reported failures: %+v", c)
	}
	if c.Reads+c.Writes != c.Total() || c.Writes != c.Reads {
		t.Fatalf("mix skewed: %d reads, %d writes", c.Reads, c.Writes)
	}
	if c.Elapsed <= 0 {
		t.Fatal("Elapsed not measured")
	}
	if !strings.Contains(w.Describe(), "4 clients × 10 ops") {
		t.Fatalf("Describe() = %q", w.Describe())
	}
}

func TestRunTimeBounded(t *testing.T) {
	sys, err := BuildSystem("threshold", 1)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := bqs.NewCluster(sys, 1, bqs.WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{Clients: 2, Ops: 1, Duration: 50 * time.Millisecond}
	c := Run(cluster, w)
	if c.Total() <= 2 {
		t.Fatalf("time-bounded run stopped after Ops (%d ops) — Duration must override -ops", c.Total())
	}
	if c.Elapsed < w.Duration {
		t.Fatalf("run ended after %v, before the %v budget", c.Elapsed, w.Duration)
	}
	if !strings.Contains(w.Describe(), "2 clients for 50ms") {
		t.Fatalf("Describe() = %q", w.Describe())
	}
}
