package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"bqs"
)

// ReconfigStep is one scheduled resize: at offset At from workload
// start, move the cluster to the quorum system Rec describes. Target
// keeps the user's spelling for logs.
type ReconfigStep struct {
	At     time.Duration
	Target string
	Rec    bqs.ReconfigRecord
}

// DefaultReconfigTimeout bounds each scheduled step end to end —
// propose, drain, cut over, retire. A drain that cannot quiesce within
// it aborts the step (traffic resumes on the old epoch) instead of
// stalling the driver forever; the ISSUE's "bounded drain" acceptance
// check rides on this.
const DefaultReconfigTimeout = 30 * time.Second

// ParseReconfigSchedule parses the -reconfig flag, identically in both
// binaries: comma-separated "at=DURATION:TARGET" steps, where TARGET is
// a ParseReconfigTarget spec — "at=5s:mgrid:36,at=20s:compose:6x6".
// Steps must be in strictly increasing time order. Every target is
// built once here, so a typo fails at flag parsing, not mid-run. The
// empty spec parses to a nil schedule (no reconfiguration).
func ParseReconfigSchedule(spec string, b int) ([]ReconfigStep, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var steps []ReconfigStep
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		rest, ok := strings.CutPrefix(entry, "at=")
		if !ok {
			return nil, fmt.Errorf("reconfig step %q: want at=DURATION:TARGET (e.g. at=5s:mgrid:36)", entry)
		}
		durStr, target, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("reconfig step %q: missing target after the duration", entry)
		}
		at, err := time.ParseDuration(durStr)
		if err != nil {
			return nil, fmt.Errorf("reconfig step %q: %w", entry, err)
		}
		if at < 0 {
			return nil, fmt.Errorf("reconfig step %q: negative offset", entry)
		}
		rec, err := bqs.ParseReconfigTarget(target, b)
		if err != nil {
			return nil, fmt.Errorf("reconfig step %q: %w", entry, err)
		}
		if len(steps) > 0 && at <= steps[len(steps)-1].At {
			return nil, fmt.Errorf("reconfig step %q: offsets must strictly increase", entry)
		}
		steps = append(steps, ReconfigStep{At: at, Target: target, Rec: rec})
	}
	return steps, nil
}

// MaxReconfigUniverse is the largest universe the run will ever address:
// the boot system's n or any scheduled target's, whichever is bigger.
// bqs-client checks route coverage against it, so a resize never
// discovers a missing shard address mid-drain.
func MaxReconfigUniverse(n int, steps []ReconfigStep) int {
	for _, s := range steps {
		if s.Rec.Universe > n {
			n = s.Rec.Universe
		}
	}
	return n
}

// ReconfigDriver replays a resize schedule against a live cluster
// beside a workload, mirroring ChurnDriver: StartReconfig launches the
// goroutine, Stop cancels whatever remains at the run boundary and
// reports what was applied. Unlike churn — where a missed flip is
// telemetry — an aborted resize is a failed acceptance criterion, so
// Stop returns the first abort.
type ReconfigDriver struct {
	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	applied  int
	aborted  int
	missed   int // steps still pending (or cancelled mid-flight) at Stop
	firstErr error
}

// StartReconfig prints the schedule banner and starts replaying it. On
// an empty schedule it returns a nil driver whose Stop is a no-op, so
// call sites need no reconfig-or-not branching. Each applied step
// prints the canonical cutover line
//
//	reconfig: epoch E cutover to TARGET (n=N) — drain D, total T, K keys handed off
//
// which the CI rolling-resize smoke greps for.
func StartReconfig(cluster *bqs.Cluster, steps []ReconfigStep) *ReconfigDriver {
	if len(steps) == 0 {
		return nil
	}
	fmt.Printf("reconfig: %d resizes scheduled, first at +%v, last at +%v\n",
		len(steps), steps[0].At, steps[len(steps)-1].At)
	ctx, cancel := context.WithCancel(context.Background())
	d := &ReconfigDriver{cancel: cancel, done: make(chan struct{})}
	start := time.Now()
	go func() {
		defer close(d.done)
		for _, step := range steps {
			timer := time.NewTimer(time.Until(start.Add(step.At)))
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				d.mu.Lock()
				d.missed++
				d.mu.Unlock()
				return
			}
			stepCtx, stepCancel := context.WithTimeout(ctx, DefaultReconfigTimeout)
			rep, err := cluster.Reconfigure(stepCtx, step.Rec)
			stepCancel()
			d.mu.Lock()
			switch {
			case err == nil:
				d.applied++
			case errors.Is(err, context.Canceled):
				// The run boundary interrupted the step; counted as missed,
				// not aborted — the workload simply ended first.
				d.missed++
			default:
				d.aborted++
				if d.firstErr == nil {
					d.firstErr = fmt.Errorf("reconfig to %s at +%v: %w", step.Target, step.At, err)
				}
			}
			d.mu.Unlock()
			if err != nil {
				fmt.Printf("reconfig: step to %s at +%v failed: %v\n", step.Target, step.At, err)
				continue
			}
			fmt.Printf("reconfig: epoch %d cutover to %s (n=%d) — drain %v, total %v, %d keys handed off\n",
				rep.Record.Epoch, step.Target, rep.Record.Universe,
				rep.Drain.Round(time.Millisecond), rep.Total.Round(time.Millisecond), rep.HandoffKeys)
		}
	}()
	return d
}

// Stop ends the driver at the run boundary, waits the goroutine out and
// prints the applied/aborted/missed summary. The returned error is the
// first aborted resize, if any — an abort means the cluster is still on
// the old epoch and the run's acceptance claims about the new system do
// not hold. Nil drivers (no schedule) are a no-op.
func (d *ReconfigDriver) Stop() error {
	if d == nil {
		return nil
	}
	d.cancel()
	<-d.done
	d.mu.Lock()
	defer d.mu.Unlock()
	fmt.Printf("reconfig: %d applied, %d aborted, %d missed\n", d.applied, d.aborted, d.missed)
	return d.firstErr
}

// Applied reports how many scheduled resizes completed.
func (d *ReconfigDriver) Applied() int {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.applied
}

// EpochFollower self-heals the epoch plane of a wire-backed client: its
// OnStale method is the WithWireEpochs callback, and once Bind has
// handed it the transport and cluster it reacts to wrongepoch bounces
// in the background. A shard ahead of us (another coordinator resized
// the fleet) is caught up to by adopting its record locally; a shard
// behind us (it restarted and lost its epoch) gets the current record
// re-pushed. Before Bind, bounces are ignored — the dial happens before
// the cluster exists, and nothing can be stale that early.
type EpochFollower struct {
	mu      sync.Mutex
	tr      *bqs.WireClient
	cluster *bqs.Cluster
	busy    bool
}

// Bind hands the follower the live transport and cluster; OnStale is
// inert until then.
func (f *EpochFollower) Bind(tr *bqs.WireClient, cluster *bqs.Cluster) {
	f.mu.Lock()
	f.tr, f.cluster = tr, cluster
	f.mu.Unlock()
}

// OnStale is the WithWireEpochs callback. It runs on a connection read
// loop, so it only inspects state and hands real work to a goroutine;
// at most one repair runs at a time, and repeated bounces while one is
// in flight are dropped (the repair will re-announce everything anyway).
func (f *EpochFollower) OnStale(rec bqs.ReconfigRecord) {
	f.mu.Lock()
	tr, cluster := f.tr, f.cluster
	if cluster == nil || f.busy {
		f.mu.Unlock()
		return
	}
	f.busy = true
	f.mu.Unlock()
	go func() {
		defer func() {
			f.mu.Lock()
			f.busy = false
			f.mu.Unlock()
		}()
		ctx, cancel := context.WithTimeout(context.Background(), DefaultReconfigTimeout)
		defer cancel()
		if rec.Epoch > cluster.Epoch() {
			if _, err := cluster.Reconfigure(ctx, rec); err != nil {
				fmt.Printf("reconfig: follower could not adopt epoch %d: %v\n", rec.Epoch, err)
				return
			}
			fmt.Printf("reconfig: follower adopted %s from a shard ahead of us\n", rec.String())
			return
		}
		// A shard answered with an older epoch than ours: re-push the
		// record we are on so it rejoins the current configuration.
		cur, ok := tr.CurrentRecord()
		if !ok || cur.Epoch <= rec.Epoch {
			return
		}
		if err := tr.InstallEpoch(ctx, cur); err != nil {
			fmt.Printf("reconfig: follower could not re-push %s: %v\n", cur.String(), err)
			return
		}
		fmt.Printf("reconfig: follower re-pushed %s to a lagging shard\n", cur.String())
	}()
}
