package harness

import (
	"strings"
	"testing"
	"time"

	"bqs"
)

func TestParseReconfigSchedule(t *testing.T) {
	steps, err := ParseReconfigSchedule("at=5s:mgrid:36,at=20s:compose:6x6", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 {
		t.Fatalf("got %d steps, want 2", len(steps))
	}
	if steps[0].At != 5*time.Second || steps[0].Target != "mgrid:36" || steps[0].Rec.Universe != 36 {
		t.Errorf("step 0 = %+v", steps[0])
	}
	if steps[1].At != 20*time.Second || steps[1].Rec.Kind != "compose" || steps[1].Rec.Outer != 6 {
		t.Errorf("step 1 = %+v", steps[1])
	}
	for _, s := range steps {
		if s.Rec.B != 1 {
			t.Errorf("step %+v lost the masking bound", s)
		}
		if s.Rec.Epoch != 0 {
			t.Errorf("step %+v pinned an epoch; 0 (\"next\") expected", s)
		}
	}
	if got, err := ParseReconfigSchedule("", 1); err != nil || got != nil {
		t.Errorf("empty spec: %v, %v; want nil, nil", got, err)
	}
}

func TestParseReconfigScheduleRejects(t *testing.T) {
	cases := map[string]string{
		"no-at-prefix":     "5s:mgrid:36",
		"no-target":        "at=5s",
		"bad-duration":     "at=soon:mgrid:36",
		"negative-offset":  "at=-1s:mgrid:36",
		"bad-target":       "at=5s:mgrid:37", // not a perfect square
		"unknown-kind":     "at=5s:pyramid:36",
		"unordered-steps":  "at=5s:mgrid:36,at=5s:mgrid:25",
		"decreasing-steps": "at=5s:mgrid:36,at=1s:mgrid:25",
	}
	for name, spec := range cases {
		if _, err := ParseReconfigSchedule(spec, 1); err == nil {
			t.Errorf("%s: accepted %q", name, spec)
		}
	}
}

func TestMaxReconfigUniverse(t *testing.T) {
	steps, err := ParseReconfigSchedule("at=1s:mgrid:36,at=2s:threshold:25", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := MaxReconfigUniverse(16, steps); got != 36 {
		t.Errorf("MaxReconfigUniverse(16) = %d, want 36", got)
	}
	if got := MaxReconfigUniverse(49, steps); got != 49 {
		t.Errorf("MaxReconfigUniverse(49) = %d, want 49", got)
	}
	if got := MaxReconfigUniverse(16, nil); got != 16 {
		t.Errorf("MaxReconfigUniverse(16, nil) = %d, want 16", got)
	}
}

// TestReconfigDriverEndToEnd replays a two-step schedule against a live
// in-memory cluster under a concurrent workload and checks the driver's
// bookkeeping, the cluster's final epoch, and that the run stayed safe.
func TestReconfigDriverEndToEnd(t *testing.T) {
	sys, err := BuildSystem("mgrid", 1)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := bqs.NewCluster(sys, 1, bqs.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	steps, err := ParseReconfigSchedule("at=50ms:mgrid:36,at=150ms:threshold:25", 1)
	if err != nil {
		t.Fatal(err)
	}
	d := StartReconfig(cluster, steps)
	c := Run(cluster, Workload{Clients: 4, Duration: 400 * time.Millisecond, Keys: 8, Seed: 7})
	if err := d.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if d.Applied() != 2 {
		t.Fatalf("applied %d steps, want 2", d.Applied())
	}
	if got := cluster.Epoch(); got != 2 {
		t.Fatalf("final epoch %d, want 2", got)
	}
	if name := cluster.System().Name(); !strings.Contains(name, "Thresh") {
		t.Fatalf("final system %q, want the threshold target", name)
	}
	if c.Violations != 0 {
		t.Fatalf("%d safety violations across the resizes", c.Violations)
	}
	if c.Failures != 0 {
		t.Fatalf("%d operations failed across the resizes", c.Failures)
	}
	sum := Report(cluster, sys, 1, c)
	if sum.Epoch != 2 {
		t.Fatalf("Summary.Epoch = %d, want 2", sum.Epoch)
	}
	snap := Snapshot("test", sys, 1, "memory", Workload{Clients: 4}, c, sum)
	if snap.Epoch != 2 {
		t.Fatalf("BenchSnapshot.Epoch = %d, want 2", snap.Epoch)
	}
}

// TestReconfigDriverNil pins the no-schedule contract: a nil driver
// whose methods are no-ops, so call sites need no branching.
func TestReconfigDriverNil(t *testing.T) {
	var d *ReconfigDriver
	if err := d.Stop(); err != nil {
		t.Fatalf("nil Stop: %v", err)
	}
	if d.Applied() != 0 {
		t.Fatal("nil Applied != 0")
	}
	if StartReconfig(nil, nil) != nil {
		t.Fatal("empty schedule must return a nil driver")
	}
}
