package harness

// The availability experiment closes the measurement loop for the paper's
// second headline quantity. PR 3 made measured load converge to the LP
// value L(Q); this file does the same for crash probability F_p(Q)
// (Definition 3.10): many seeded epochs each draw an i.i.d. crash pattern
// at probability p, a client runs the real protocol against it, and an
// epoch counts as a system crash exactly when the engine reports
// ErrNoLiveQuorum — every quorum intersects a set of servers the client
// probed and found dead. The empirical rate is then laid next to the
// analytic ladder: CrashProbabilityExact (universes ≤ 24), the Monte
// Carlo estimate, and the lower bounds of Propositions 4.3–4.5.
//
// The detection is exact, not approximate: client suspicion only ever
// contains genuinely crashed servers (the epoch network is lossless), the
// picker declares ErrNoLiveQuorum precisely when every quorum intersects
// the suspects, and probe-on-forgive re-admits any suspect that answers —
// so an epoch crashes if and only if its sampled pattern kills every
// quorum, the same event Definition 3.10 integrates over. That is what
// makes the binomial 3σ acceptance check against the exact F_p sound.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"bqs"
)

// AvailabilityConfig shapes an availability experiment.
type AvailabilityConfig struct {
	// P is the i.i.d. per-server crash probability of Definition 3.10.
	// ParseAvailabilitySpec leaves it at -1 when the spec has no p= field,
	// so heterogeneous and adversarial configs can omit it.
	P float64
	// PVec, when non-empty, replaces the scalar P with a per-server crash
	// probability vector (the heterogeneous generalization of 3.10).
	PVec []float64
	// Domains adds correlated failure domains on top of the independent
	// per-server probabilities: each domain fires as one Bernoulli and
	// takes all its members down together.
	Domains []bqs.Domain
	// Adversary, when set, replaces the stochastic crash draws entirely:
	// each epoch the adversary places its budget of faults itself (random
	// placement, targeted at the loaded servers, or timing-keyed), and the
	// measured rate is the availability under that placement strategy.
	Adversary *bqs.AdversaryConfig
	// Epochs is how many crash patterns are drawn and driven.
	Epochs int
	// Seed makes the whole experiment reproducible (pattern draws, quorum
	// selection, and the Monte Carlo companion estimate).
	Seed int64
	// MCTrials sizes the CrashProbabilityMC companion (default 100000).
	MCTrials int
	// Registry, when set, instruments the experiment's cluster: every
	// epoch bumps bqs_system_epochs_total, every ErrNoLiveQuorum epoch
	// bumps bqs_system_crash_epochs_total, and the live
	// bqs_system_crash_rate gauge is their ratio — Definition 3.10
	// observed in real time. When the exact F_p(Q) is computable the
	// bqs_system_exact_crash_rate gauge is set next to it, so a /metrics
	// scrape shows the empirical rate converging on the analytic value.
	Registry *bqs.MetricsRegistry
}

// ParseAvailabilitySpec parses the CLI form "p=0.1,epochs=2000" with
// optional seed=N and mctrials=N fields. defaultSeed seeds the experiment
// when the spec has no seed= field, so the binaries' global -seed flag
// keeps meaning what it means everywhere else.
func ParseAvailabilitySpec(spec string, defaultSeed int64) (AvailabilityConfig, error) {
	cfg := AvailabilityConfig{P: -1, Epochs: 2000, Seed: defaultSeed, MCTrials: 100000}
	seenP := false
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, value, ok := strings.Cut(field, "=")
		if !ok {
			return AvailabilityConfig{}, fmt.Errorf("availability field %q is not key=value", field)
		}
		value = strings.TrimSpace(value)
		var err error
		switch strings.TrimSpace(key) {
		case "p":
			cfg.P, err = strconv.ParseFloat(value, 64)
			seenP = true
		case "epochs":
			cfg.Epochs, err = strconv.Atoi(value)
		case "seed":
			cfg.Seed, err = strconv.ParseInt(value, 10, 64)
		case "mctrials":
			cfg.MCTrials, err = strconv.Atoi(value)
		default:
			return AvailabilityConfig{}, fmt.Errorf("unknown availability key %q (want p, epochs, seed, mctrials)", key)
		}
		if err != nil {
			return AvailabilityConfig{}, fmt.Errorf("availability field %q: %w", field, err)
		}
	}
	// The inverted comparison also rejects NaN, which `< 0 || > 1` lets
	// through. A missing p= is legal here — the caller may still supply a
	// -p-vector, -domains, or -adversary; RunAvailability enforces that at
	// least one crash regime is configured.
	if seenP && !(cfg.P >= 0 && cfg.P <= 1) {
		return AvailabilityConfig{}, errors.New("availability spec needs p=<probability in [0,1]>")
	}
	if cfg.Epochs <= 0 {
		return AvailabilityConfig{}, errors.New("availability spec needs epochs > 0")
	}
	return cfg, nil
}

// failureModel assembles the heterogeneous failure model the config
// describes, or hetero=false when the config is the classic scalar
// regime (or adversarial, which draws no crashes at all).
func (cfg AvailabilityConfig) failureModel(n int) (model bqs.FailureModel, hetero bool, err error) {
	if len(cfg.PVec) == 0 && len(cfg.Domains) == 0 {
		return bqs.FailureModel{}, false, nil
	}
	model = bqs.FailureModel{P: cfg.PVec, Domains: cfg.Domains}
	if len(model.P) == 0 {
		// Domains alone ride on an independent base of p (or 0) everywhere.
		base := 0.0
		if cfg.P >= 0 {
			base = cfg.P
		}
		model.P = bqs.UniformFailureModel(n, base).P
	} else if cfg.P >= 0 {
		return bqs.FailureModel{}, false, errors.New("availability: give either p= or a p-vector, not both")
	}
	if err := model.Validate(n); err != nil {
		return bqs.FailureModel{}, false, err
	}
	return model, true, nil
}

// AvailabilityResult is the outcome of an availability experiment: the
// measured system-crash rate with its analytic companions.
type AvailabilityResult struct {
	Epochs  int     // epochs driven
	Crashes int     // epochs the engine reported ErrNoLiveQuorum
	Rate    float64 // Crashes/Epochs — the empirical F_p(Q)
	StdErr  float64 // binomial standard error of Rate

	Exact   float64 // CrashProbabilityExact, when the universe allows it
	ExactOK bool    // whether Exact is populated (n ≤ 24 and enumerable)

	MC   bqs.MCResult // Monte Carlo companion estimate
	MCOK bool

	LowerMT      float64 // Proposition 4.3: F_p ≥ p^MT
	LowerMasking float64 // Proposition 4.4: F_p ≥ p^(c−2b)
	LowerB       float64 // Proposition 4.5: F_p ≥ p^(b+1), when it applies
	Prop45       bool    // whether the Prop. 4.5 precondition holds

	// Hetero is true when the epochs drew from a per-server vector or
	// correlated-domain model rather than the scalar p; Exact/MC are then
	// the generalized F computed under that same model.
	Hetero bool
	// Adversary names the placement strategy when the epochs ran under an
	// adversary instead of stochastic draws ("" otherwise). Exact is then
	// only populated for the random adversary (uniform B-subsets), whose
	// crash rate is still an enumerable quantity.
	Adversary string
}

// WithinSigma reports whether the empirical rate lands within k binomial
// standard deviations of the exact F_p — the acceptance criterion the
// availability smoke test asserts with k = 3. It is false when no exact
// value is available.
func (r AvailabilityResult) WithinSigma(k float64) bool {
	if !r.ExactOK {
		return false
	}
	sigma := math.Sqrt(r.Exact * (1 - r.Exact) / float64(r.Epochs))
	return math.Abs(r.Rate-r.Exact) <= k*sigma
}

// availabilityEnumLimit caps quorum materialization for the exact F_p
// companion; small universes (≤ 24 servers) stay far under it.
const availabilityEnumLimit = 1 << 17

// RunAvailability drives the availability experiment against the real
// engine: one deterministic in-memory cluster, cfg.Epochs seeded epochs,
// each resetting every server to Correct, crashing each independently
// with probability cfg.P, and running one full write (both protocol
// phases) with a fresh client. Epochs whose write fails with
// ErrNoLiveQuorum are the system-crash count; any other failure is a bug
// and aborts the experiment.
func RunAvailability(sys System, b int, cfg AvailabilityConfig) (AvailabilityResult, error) {
	n := sys.UniverseSize()
	model, hetero, err := cfg.failureModel(n)
	if err != nil {
		return AvailabilityResult{}, err
	}
	switch {
	case cfg.Adversary != nil:
		if hetero || cfg.P >= 0 {
			return AvailabilityResult{}, errors.New("availability: an adversary replaces the p / p-vector / domain crash draws — give one or the other")
		}
	case !hetero && !(cfg.P >= 0 && cfg.P <= 1):
		return AvailabilityResult{}, errors.New("availability spec needs p=<probability in [0,1]> (or a p-vector, domains, or an adversary)")
	}
	opts := []bqs.ClusterOption{bqs.WithSeed(cfg.Seed), bqs.WithDeterministic()}
	if cfg.Registry != nil {
		opts = append(opts, bqs.WithMetrics(cfg.Registry))
	}
	cluster, err := bqs.NewCluster(sys, b, opts...)
	if err != nil {
		return AvailabilityResult{}, err
	}
	var adv *bqs.Adversary
	if cfg.Adversary != nil {
		// Built once over the live cluster: the targeted scheduler reads the
		// LoadProfile the epochs themselves accumulate, so it homes in on
		// the servers the strategy actually uses as the experiment runs.
		adv, err = bqs.NewAdversary(*cfg.Adversary, cluster, cluster, n)
		if err != nil {
			return AvailabilityResult{}, err
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := AvailabilityResult{Epochs: cfg.Epochs, Hetero: hetero}
	if cfg.Adversary != nil {
		res.Adversary = cfg.Adversary.Kind.String()
	}
	ctx := context.Background()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		switch {
		case adv != nil:
			mode := adv.Mode()
			victims := adv.PickVictims()
			isVictim := make(map[int]bool, len(victims))
			for _, v := range victims {
				isVictim[v] = true
			}
			for i := 0; i < n; i++ {
				behavior := bqs.Correct
				if isVictim[i] {
					behavior = mode
				}
				cluster.Server(i).SetBehavior(behavior)
			}
		case hetero:
			dead := model.SampleDead(n, rng)
			for i := 0; i < n; i++ {
				behavior := bqs.Correct
				if dead.Contains(i) {
					behavior = bqs.Crashed
				}
				cluster.Server(i).SetBehavior(behavior)
			}
		default:
			for i := 0; i < n; i++ {
				behavior := bqs.Correct
				if rng.Float64() < cfg.P {
					behavior = bqs.Crashed
				}
				cluster.Server(i).SetBehavior(behavior)
			}
		}
		cl := cluster.NewClient(epoch)
		// Suspicion grows by at least one genuinely dead server per failed
		// attempt, so n+2 retries always suffice per phase; the margin keeps
		// the experiment honest rather than masking protocol regressions.
		cl.MaxRetries = 2*n + 8
		err := cl.Write(ctx, fmt.Sprintf("epoch-%d", epoch))
		switch {
		case err == nil:
		case errors.Is(err, bqs.ErrNoLiveQuorum):
			res.Crashes++
		default:
			return res, fmt.Errorf("availability epoch %d: unexpected failure: %w", epoch, err)
		}
	}
	res.Rate = float64(res.Crashes) / float64(res.Epochs)
	res.StdErr = math.Sqrt(res.Rate * (1 - res.Rate) / float64(res.Epochs))

	mcTrials := cfg.MCTrials
	if mcTrials <= 0 {
		mcTrials = 100000
	}
	setExact := func(exact float64) {
		res.Exact, res.ExactOK = exact, true
		if cfg.Registry != nil {
			cfg.Registry.Gauge("bqs_system_exact_crash_rate").Set(exact)
		}
	}
	switch {
	case adv != nil:
		// Only the random adversary has an enumerable crash rate: victims
		// are a uniform B-subset, so the rate is the fraction of B-subsets
		// that kill every quorum. Targeted and timing placements depend on
		// the live load profile, so they get no analytic companion.
		if cfg.Adversary.Kind == bqs.AdversaryRandom && adv.Mode() == bqs.Crashed {
			if exact, ok := adversaryExactRandom(sys, cfg.Adversary.B); ok {
				setExact(exact)
			}
		}
	case hetero:
		if en, err := bqs.AsEnumerable(sys, availabilityEnumLimit); err == nil {
			if exact, err := bqs.CrashProbabilityExactModel(en, model); err == nil {
				setExact(exact)
			}
		}
		if mc, err := bqs.CrashProbabilityMCModel(sys, model, mcTrials, rand.New(rand.NewSource(cfg.Seed+1))); err == nil {
			res.MC, res.MCOK = mc, true
		}
	default:
		if en, err := bqs.AsEnumerable(sys, availabilityEnumLimit); err == nil {
			if exact, err := bqs.CrashProbabilityExact(en, cfg.P); err == nil {
				setExact(exact)
			}
		}
		if mc, err := bqs.CrashProbabilityMC(sys, cfg.P, mcTrials, rand.New(rand.NewSource(cfg.Seed+1))); err == nil {
			res.MC, res.MCOK = mc, true
		}
		// The Prop. 4.3–4.5 ladder is stated for the i.i.d. model only.
		res.LowerMT = bqs.CrashLowerBoundMT(sys.MinTransversal(), cfg.P)
		res.LowerMasking = bqs.CrashLowerBoundMasking(sys.MinQuorumSize(), b, cfg.P)
		res.Prop45 = bqs.Prop45Applies(sys)
		if res.Prop45 {
			res.LowerB = bqs.CrashLowerBoundB(b, cfg.P)
		}
	}
	return res, nil
}

// adversaryExactRandom enumerates the random adversary's exact crash
// rate: the fraction of budget-sized victim subsets whose crash kills
// every quorum. ok is false when the system cannot be enumerated or the
// subset count is unreasonable.
func adversaryExactRandom(sys System, budget int) (float64, bool) {
	n := sys.UniverseSize()
	if budget < 0 || budget > n {
		return 0, false
	}
	en, err := bqs.AsEnumerable(sys, availabilityEnumLimit)
	if err != nil {
		return 0, false
	}
	subsets := 1.0
	for i := 0; i < budget; i++ {
		subsets *= float64(n-i) / float64(i+1)
	}
	if subsets > float64(availabilityEnumLimit) {
		return 0, false
	}
	quorums := en.Quorums()
	total, killed := 0, 0
	victims := bqs.NewSet(n)
	var walk func(start, left int)
	walk = func(start, left int) {
		if left == 0 {
			total++
			dead := true
			for _, q := range quorums {
				if !q.Intersects(victims) {
					dead = false
					break
				}
			}
			if dead {
				killed++
			}
			return
		}
		for i := start; i <= n-left; i++ {
			victims.Add(i)
			walk(i+1, left-1)
			victims.Remove(i)
		}
	}
	walk(0, budget)
	return float64(killed) / float64(total), true
}

// ReportAvailability prints the shared availability result block: the
// empirical system-crash rate next to the analytic F_p ladder, and — when
// the exact value exists — the distance in binomial standard deviations
// the 3σ acceptance check is applied to.
func ReportAvailability(res AvailabilityResult) {
	regime := ""
	switch {
	case res.Adversary != "":
		regime = fmt.Sprintf(" under the %s adversary", res.Adversary)
	case res.Hetero:
		regime = " (heterogeneous model)"
	}
	fmt.Printf("availability: %d/%d epochs crashed%s — empirical F_p = %.4f (±%.4f binomial SE)\n",
		res.Crashes, res.Epochs, regime, res.Rate, res.StdErr)
	if res.ExactOK {
		sigma := math.Sqrt(res.Exact * (1 - res.Exact) / float64(res.Epochs))
		dist := math.Inf(1)
		if sigma > 0 {
			dist = math.Abs(res.Rate-res.Exact) / sigma
		} else if res.Rate == res.Exact {
			dist = 0
		}
		label := "F_p(Q) = %.4f exact (Definition 3.10), measured %.2fσ away\n"
		if res.Adversary != "" {
			label = "crash rate = %.4f exact (uniform victim subsets), measured %.2fσ away\n"
		}
		fmt.Printf("analytic:     "+label, res.Exact, dist)
	}
	if res.MCOK {
		fmt.Printf("monte carlo:  F_p ≈ %.4f ± %.4f (%d trials)\n", res.MC.Estimate, res.MC.StdErr, res.MC.Trials)
	}
	if res.Adversary == "" && !res.Hetero {
		fmt.Printf("lower bounds: F_p ≥ %.2e (Prop 4.3, p^MT)", res.LowerMT)
		fmt.Printf(", ≥ %.2e (Prop 4.4, p^(c−2b))", res.LowerMasking)
		if res.Prop45 {
			fmt.Printf(", ≥ %.2e (Prop 4.5, p^(b+1))", res.LowerB)
		}
		fmt.Println()
	}
}
