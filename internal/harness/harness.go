// Package harness is the workload driver shared by cmd/bqs-sim (in-memory
// clusters) and cmd/bqs-client (networked clusters over the wire
// protocol). Both binaries advertise comparable measurements — same
// read/write mix, same counters, same report — so the code that produces
// them lives here once: a change to the workload shape or the load report
// changes both harnesses together, and their numbers stay commensurable.
package harness

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bqs"
	"bqs/internal/obs"
)

// System is what the harnesses need from a construction: quorum selection
// plus the c(Q)/IS/MT parameters the load bounds are computed from.
type System interface {
	bqs.System
	bqs.Parameterized
}

// BuildSystem maps the CLI -system/-b pair to a construction sized for
// masking bound b, identically in both binaries.
func BuildSystem(kind string, b int) (System, error) {
	switch kind {
	case "threshold":
		return bqs.NewMaskingThreshold(4*b+1, b)
	case "grid":
		return bqs.NewGrid(3*b+1, b)
	case "mgrid":
		return bqs.NewMGrid(2*b+2, b)
	case "rt":
		// Depth chosen so RT(4,3) masks at least b: b = (2^h − 1)/2.
		h := 1
		for (1<<uint(h)-1)/2 < b {
			h++
		}
		return bqs.NewRT(4, 3, h)
	case "boostfpp":
		return bqs.NewBoostFPP(3, b)
	case "mpath":
		d := 2 * (b + 2)
		return bqs.NewMPath(d, b)
	case "wheel":
		// The unbalanced regular system of [NW98]: the hub sits in n−1 of
		// the n quorums, so the uniform strategy loads it at ≈ 1 while the
		// LP strategy shifts weight to the rim — the starkest live demo of
		// the uniform-vs-optimal gap. Regular means b = 0 only.
		if b != 0 {
			return nil, fmt.Errorf("wheel is a regular (b=0) system; got -b %d", b)
		}
		return bqs.NewWheel(12)
	default:
		return nil, fmt.Errorf("unknown system %q", kind)
	}
}

// StrategyOption maps the CLI -strategy flag to a cluster option,
// identically in both binaries. "uniform" returns a nil option — the
// default uniform survivor selection; "optimal" installs the LP-optimal
// access strategy (the system must be able to enumerate its quorums).
func StrategyOption(name string) (bqs.ClusterOption, error) {
	switch name {
	case "uniform":
		return nil, nil
	case "optimal":
		return bqs.WithOptimalStrategy(), nil
	}
	return nil, fmt.Errorf("unknown strategy %q (want uniform or optimal)", name)
}

// BuildSchedule merges the CLI's deterministic -fault-schedule timeline
// with its stochastic -churn model (which needs the -duration horizon to
// know how much timeline to generate) into one validated schedule bounded
// by the n-server universe, identically in both binaries. It returns nil
// when neither spec is given. For a churn spec it prints the model's
// steady-state down fraction — the p to hold the run against when
// comparing with the analytic F_p(Q).
func BuildSchedule(scheduleSpec, churnSpec string, n int, horizon time.Duration, seed int64) (*bqs.FaultSchedule, error) {
	var events []bqs.FaultEvent
	if scheduleSpec != "" {
		s, err := bqs.ParseFaultSchedule(scheduleSpec)
		if err != nil {
			return nil, err
		}
		events = append(events, s.Events()...)
	}
	if churnSpec != "" {
		if horizon <= 0 {
			return nil, errors.New("-churn needs -duration for its horizon")
		}
		cc, err := bqs.ParseChurn(churnSpec)
		if err != nil {
			return nil, err
		}
		s, err := cc.Schedule(n, horizon, seed)
		if err != nil {
			return nil, err
		}
		fmt.Printf("churn: stochastic model down %.1f%% of the time in steady state (compare F_p at p=%.3f)\n",
			100*cc.DownFraction(), cc.DownFraction())
		events = append(events, s.Events()...)
	}
	if events == nil {
		return nil, nil
	}
	s, err := bqs.NewFaultSchedule(events)
	if err != nil {
		return nil, err
	}
	if max := s.MaxServer(); max >= n {
		return nil, fmt.Errorf("fault schedule touches server %d outside the %d-server universe", max, n)
	}
	return s, nil
}

// DefaultChurnSuspicionTTL is the suspicion TTL both binaries hand their
// clients when churn is active and the user did not set -suspicion-ttl:
// short enough that recovered servers regain traffic within a typical
// run, long enough that a still-dead server is not hammered with
// optimistic re-probes.
const DefaultChurnSuspicionTTL = 50 * time.Millisecond

// ChurnTTL resolves the -suspicion-ttl flag against the schedule,
// identically in both binaries: an explicit user value wins, otherwise
// the default kicks in exactly when there is churn for it to matter.
func ChurnTTL(s *bqs.FaultSchedule, userTTL time.Duration) time.Duration {
	if userTTL == 0 && s.Len() > 0 {
		return DefaultChurnSuspicionTTL
	}
	return userTTL
}

// ChurnDriver runs a FaultController beside a workload, identically in
// both binaries: StartChurn launches the controller goroutine, Stop
// cancels whatever timeline remains at the run boundary, waits it out,
// and prints the applied/missed summary.
type ChurnDriver struct {
	fc     *bqs.FaultController
	cancel context.CancelFunc
	done   chan error
}

// StartChurn prints the schedule banner and starts replaying it against
// the Flipper (a Cluster in bqs-sim, the wire transport in bqs-client).
// With no churn configured (a nil or empty schedule) it returns a nil
// driver, whose Stop is a no-op — call sites need no churn-or-not
// branching. A non-nil registry gets the live fault-injection series:
// bqs_churn_flips_total{to=<behavior>} per applied flip (so the version
// mix of crash/restart/byzantine transitions is scrapable mid-run),
// bqs_churn_misses_total per flip the controller could not deliver, and
// an annotated event per miss.
func StartChurn(f bqs.Flipper, s *bqs.FaultSchedule, ttl time.Duration, reg *bqs.MetricsRegistry) *ChurnDriver {
	if s.Len() == 0 {
		return nil
	}
	fmt.Printf("churn: driving %d flips over %v (suspicion-ttl %v)\n", s.Len(), s.Horizon(), ttl)
	ctx, cancel := context.WithCancel(context.Background())
	d := &ChurnDriver{fc: bqs.NewFaultController(f, s), cancel: cancel, done: make(chan error, 1)}
	if reg != nil {
		misses := reg.Counter("bqs_churn_misses_total")
		d.fc.OnFlip = func(ev bqs.FaultEvent, err error) {
			if err != nil {
				misses.Inc()
				reg.Eventf("churn: flip %v missed: %v", ev, err)
				return
			}
			reg.Counter("bqs_churn_flips_total", "to", ev.Behavior.String()).Inc()
		}
	}
	go func() { d.done <- d.fc.Run(ctx) }()
	return d
}

// Stop ends the driver at the run boundary and reports what it applied;
// on a nil driver (no churn) it is a no-op. The error is the controller's
// own failure, if any — cancellation at the boundary is the normal way a
// schedule outliving the workload ends and is not an error.
func (d *ChurnDriver) Stop() error {
	if d == nil {
		return nil
	}
	d.cancel()
	err := <-d.done
	fmt.Printf("churn: %d flips applied, %d missed\n", d.fc.Flips(), d.fc.Misses())
	if ferr := d.fc.FirstErr(); ferr != nil {
		fmt.Printf("churn: first miss: %v\n", ferr)
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		return fmt.Errorf("fault controller: %w", err)
	}
	return nil
}

// AdversaryDriver owns a live adversary for a workload run, mirroring
// ChurnDriver: StartAdversary launches the scheduler goroutine, Stop
// cancels it at the run boundary (restoring every victim) and prints the
// flip summary.
type AdversaryDriver struct {
	adv    *bqs.Adversary
	cancel context.CancelFunc
	done   chan error
}

// StartAdversary builds the adversary over the given Flipper (a Cluster
// in bqs-sim, the wire transport in bqs-client) and starts its
// re-targeting loop. loads feeds the targeted and timing schedulers and
// may be nil for the random one. A non-nil registry gets the live series
// bqs_adversary_flips_total{to=<behavior>} and
// bqs_adversary_misses_total, plus an annotated event per miss.
func StartAdversary(cfg bqs.AdversaryConfig, f bqs.Flipper, loads bqs.LoadSource, n int, reg *bqs.MetricsRegistry) (*AdversaryDriver, error) {
	adv, err := bqs.NewAdversary(cfg, f, loads, n)
	if err != nil {
		return nil, err
	}
	fmt.Printf("adversary: %s scheduler, budget %d, re-targeting every %v\n", cfg.Kind, cfg.B, adv.Interval())
	if reg != nil {
		misses := reg.Counter("bqs_adversary_misses_total")
		adv.OnFlip = func(server int, b bqs.Behavior, err error) {
			if err != nil {
				misses.Inc()
				reg.Eventf("adversary: flip of server %d to %v missed: %v", server, b, err)
				return
			}
			reg.Counter("bqs_adversary_flips_total", "to", b.String()).Inc()
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := &AdversaryDriver{adv: adv, cancel: cancel, done: make(chan error, 1)}
	go func() { d.done <- adv.Run(ctx) }()
	return d, nil
}

// Stop ends the adversary at the run boundary — Run restores every
// victim to Correct on its way out — and reports what it did. Nil
// drivers (no adversary) are a no-op.
func (d *AdversaryDriver) Stop() error {
	if d == nil {
		return nil
	}
	d.cancel()
	err := <-d.done
	fmt.Printf("adversary: %d flips over %d rounds, %d missed\n", d.adv.Flips(), d.adv.Ticks(), d.adv.Misses())
	if ferr := d.adv.FirstErr(); ferr != nil {
		fmt.Printf("adversary: first miss: %v\n", ferr)
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		return fmt.Errorf("adversary: %w", err)
	}
	return nil
}

// Workload shapes a mixed ~50/50 read/write run over a keyed object
// space.
type Workload struct {
	Clients  int
	Ops      int           // per client; ignored when Duration > 0
	Duration time.Duration // > 0: time-bounded run instead of op-bounded
	Timeout  time.Duration // per-operation deadline; 0 = none
	// SuspicionTTL is handed to every client (Client.SuspicionTTL): under
	// churn it is what lets recovered servers regain traffic instead of
	// staying suspected forever. Zero keeps the default (no aging).
	SuspicionTTL time.Duration
	// Keys sizes the key space: each operation targets a key drawn from
	// Dist. 0 keeps the original single-object workload (every operation
	// on the DefaultKey register).
	Keys int
	// Dist is the key-popularity distribution (uniform unless set).
	Dist KeyDist
	// Batch > 1 drives each client through a Session with that many
	// operations in flight, so concurrently issued probes coalesce into
	// batched transport frames; ≤ 1 keeps blocking one-at-a-time calls.
	Batch int
	// Seed decorrelates key sampling across runs (combined with the
	// client id, so clients draw independent key streams).
	Seed int64
}

// Describe returns the one-line workload summary both binaries print.
func (w Workload) Describe() string {
	shape := fmt.Sprintf("%d clients × %d ops", w.Clients, w.Ops)
	if w.Duration > 0 {
		shape = fmt.Sprintf("%d clients for %v", w.Clients, w.Duration)
	}
	if w.Keys > 0 {
		shape += fmt.Sprintf(", %d keys %s", w.Keys, w.Dist)
	}
	if w.Batch > 1 {
		shape += fmt.Sprintf(", batch %d", w.Batch)
	}
	return shape
}

// Counters tallies workload outcomes.
type Counters struct {
	Reads, Writes int64 // successful operations
	NoCandidates  int64 // reads with no b+1-vouched value
	Failures      int64 // errored operations (deadline, retries exhausted, …)
	Violations    int64 // reads that surfaced a fabricated value
	Elapsed       time.Duration
	// ReadLatency and WriteLatency are the cluster registry's per-op
	// latency histograms (bqs_client_read_seconds /
	// bqs_client_write_seconds), captured by Run so reports and bench
	// snapshots read quantiles from the same instruments the /metrics
	// endpoint exposes — one data source, no private reservoir. Nil when
	// the cluster was built without bqs.WithMetrics; quantiles then
	// report 0. Note the histograms span the cluster's lifetime: a second
	// Run over the same cluster folds the first run's samples in.
	ReadLatency, WriteLatency *obs.Histogram
}

// LatencyQuantile returns the q-quantile (0 ≤ q ≤ 1) of the merged
// read+write operation-latency distribution, or 0 when the cluster was
// not instrumented. q=0.5 is the median p50, q=0.99 the tail p99 of the
// bench snapshots. The estimate is histogram-backed, exact to within one
// bucket (≤19% relative with obs.DurationBuckets).
func (c Counters) LatencyQuantile(q float64) time.Duration {
	return obs.DurationQuantile(q, c.ReadLatency, c.WriteLatency)
}

// Total is every operation that ran to an outcome — the attempted count.
// It folds failures, no-candidates and violations in, so it must NOT be
// the throughput headline: a run that mostly times out would still report
// a high number. Use Succeeded for delivered throughput.
func (c Counters) Total() int64 {
	return c.Reads + c.Writes + c.NoCandidates + c.Failures + c.Violations
}

// Succeeded is every operation that completed its protocol — the
// throughput headline.
func (c Counters) Succeeded() int64 { return c.Reads + c.Writes }

// Run drives the workload against the cluster: w.Clients concurrent
// clients alternating writes and reads (client id + op index parity, so
// the fleet is always mixed) over keys drawn from w.Dist, each operation
// under its own deadline. With w.Batch > 1 every client works through a
// Session, keeping Batch operations in flight at once so their quorum
// probes coalesce into batched transport frames; otherwise it issues
// blocking calls one at a time. In duration mode every operation's
// context additionally derives from a run-wide deadline at
// start+Duration, so the run actually ends at the boundary instead of
// letting each client's last operation drift past it; an operation cut
// off by that run deadline is counted neither as a success nor as a
// failure — it simply did not fit in the window.
func Run(cluster *bqs.Cluster, w Workload) Counters {
	var (
		wg                       sync.WaitGroup
		reads, writes            atomic.Int64
		violations, noCandidates atomic.Int64
		failures                 atomic.Int64
	)
	start := time.Now()
	runCtx, endRun := context.Background(), context.CancelFunc(func() {})
	if w.Duration > 0 {
		runCtx, endRun = context.WithDeadline(context.Background(), start.Add(w.Duration))
	}
	defer endRun()
	for id := 0; id < w.Clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := cluster.NewClient(id)
			cl.SuspicionTTL = w.SuspicionTTL
			// Per-client key stream: independent across clients, stable
			// for a given seed.
			rng := rand.New(rand.NewSource(w.Seed + (int64(id)+1)*0x9e3779b9))
			keyOf := w.Dist.Sampler(w.Keys, rng)
			// record tallies one completed operation (latency is observed
			// inside the client protocol itself, into the cluster registry's
			// histograms); it reports true when the operation was cut off at
			// the run boundary, which ends the client without counting the
			// op as an outcome.
			record := func(read bool, got bqs.TaggedValue, err error) bool {
				switch {
				case read && errors.Is(err, bqs.ErrNoCandidate):
					noCandidates.Add(1)
				case err != nil && runCtx.Err() != nil:
					return true // cut off at the run boundary; not an outcome
				case err != nil:
					failures.Add(1)
				case read && strings.HasPrefix(got.Value, bqs.FabricatedValue):
					violations.Add(1)
				case read:
					reads.Add(1)
				default:
					writes.Add(1)
				}
				return false
			}
			if w.Batch > 1 {
				runSession(runCtx, cl, w, id, keyOf, record)
				return
			}
			for op := 0; ; op++ {
				if w.Duration > 0 {
					if runCtx.Err() != nil {
						return
					}
				} else if op >= w.Ops {
					return
				}
				key := KeyName(w.Keys, keyOf())
				opCtx, cancel := runCtx, context.CancelFunc(func() {})
				if w.Timeout > 0 {
					opCtx, cancel = context.WithTimeout(runCtx, w.Timeout)
				}
				if (id+op)%2 == 0 {
					err := cl.WriteKey(opCtx, key, fmt.Sprintf("c%d-op%04d", id, op))
					cancel()
					if record(false, bqs.TaggedValue{}, err) {
						return
					}
					continue
				}
				got, err := cl.ReadKey(opCtx, key)
				cancel()
				if record(true, got, err) {
					return
				}
			}
		}(id)
	}
	wg.Wait()
	c := Counters{
		Reads:        reads.Load(),
		Writes:       writes.Load(),
		NoCandidates: noCandidates.Load(),
		Failures:     failures.Load(),
		Violations:   violations.Load(),
		Elapsed:      time.Since(start),
	}
	if reg := cluster.Registry(); reg != nil {
		// Get-or-create returns the very histograms the clients observed
		// into, so the quantiles below and a /metrics scrape agree exactly.
		c.ReadLatency = reg.Histogram("bqs_client_read_seconds", obs.DurationBuckets)
		c.WriteLatency = reg.Histogram("bqs_client_write_seconds", obs.DurationBuckets)
	}
	return c
}

// runSession is Run's batched mode for one client: keep w.Batch
// operations in flight through a Session, wait the window out, tally,
// repeat. Window boundaries are also flush boundaries, so every frame
// the batcher sends is as full as the workload allows.
func runSession(runCtx context.Context, cl *bqs.Client, w Workload, id int,
	keyOf func() int, record func(bool, bqs.TaggedValue, error) bool) {
	sess := cl.NewSession(bqs.WithSessionBatch(w.Batch))
	defer sess.Close()
	type pendingOp struct {
		read   bool
		rf     *bqs.ReadFuture
		wf     *bqs.WriteFuture
		cancel context.CancelFunc
	}
	// Latency is stamped inside the client protocol at op completion (not
	// at Wait-return, which retires the window in issue order and would
	// inflate every fast op stuck behind a slow one), so this loop only
	// tallies outcomes.
	for op := 0; ; {
		if w.Duration > 0 {
			if runCtx.Err() != nil {
				return
			}
		} else if op >= w.Ops {
			return
		}
		k := w.Batch
		if w.Duration <= 0 && w.Ops-op < k {
			k = w.Ops - op
		}
		window := make([]pendingOp, 0, k)
		for j := 0; j < k; j++ {
			key := KeyName(w.Keys, keyOf())
			opCtx, cancel := runCtx, context.CancelFunc(func() {})
			if w.Timeout > 0 {
				opCtx, cancel = context.WithTimeout(runCtx, w.Timeout)
			}
			if (id+op+j)%2 == 0 {
				wf := sess.WriteAsync(opCtx, key, fmt.Sprintf("c%d-op%04d", id, op+j))
				window = append(window, pendingOp{wf: wf, cancel: cancel})
			} else {
				rf := sess.ReadAsync(opCtx, key)
				window = append(window, pendingOp{read: true, rf: rf, cancel: cancel})
			}
		}
		op += k
		stop := false
		for _, p := range window {
			if p.read {
				got, err := p.rf.Wait()
				p.cancel()
				stop = record(true, got, err) || stop
				continue
			}
			err := p.wf.Wait()
			p.cancel()
			stop = record(false, bqs.TaggedValue{}, err) || stop
		}
		if stop {
			return
		}
	}
}

// Summary is the result block Report printed, returned so
// harness-specific acceptance checks compare against exactly the numbers
// the user saw.
type Summary struct {
	Peak         float64 // measured busiest-server access frequency
	Lower        float64 // Theorem 4.1 lower bound on L(Q)
	StrategyLoad float64 // L_w(Q) of the installed strategy (the LP optimum under -strategy optimal); NaN under uniform selection
	Epoch        uint64  // configuration epoch the run ended on (0: never reconfigured)
}

// Report prints the shared result block: outcome counts, successful
// throughput (with the attempted rate alongside, so a run that mostly
// times out cannot masquerade as fast), and the measured busiest-server
// frequency next to the paper's L(Q) lower bounds — plus, when a
// strategy-backed picker is installed, the L_w(Q) the strategy actually
// in use induces, which is what the measurement should converge to.
func Report(cluster *bqs.Cluster, sys System, b int, c Counters) Summary {
	fmt.Printf("result: %d reads ok, %d writes ok, %d no-candidate, %d failed, %d VIOLATIONS\n",
		c.Reads, c.Writes, c.NoCandidates, c.Failures, c.Violations)
	secs := c.Elapsed.Seconds()
	fmt.Printf("throughput: %d ok ops in %v = %.0f ops/s (%d attempted = %.0f ops/s)\n",
		c.Succeeded(), c.Elapsed.Round(time.Millisecond), float64(c.Succeeded())/secs,
		c.Total(), float64(c.Total())/secs)
	if c.ReadLatency.Count()+c.WriteLatency.Count() > 0 {
		fmt.Printf("latency:    p50 %v, p95 %v, p99 %v\n",
			c.LatencyQuantile(0.50).Round(time.Microsecond),
			c.LatencyQuantile(0.95).Round(time.Microsecond),
			c.LatencyQuantile(0.99).Round(time.Microsecond))
	}
	n := sys.UniverseSize()
	s := Summary{
		Peak:         cluster.PeakLoad(),
		Lower:        bqs.LoadLowerBound(n, b, sys.MinQuorumSize()),
		StrategyLoad: cluster.StrategyLoad(),
		Epoch:        cluster.Epoch(),
	}
	if s.Epoch > 0 {
		fmt.Printf("epoch:      %d (%s, n=%d)\n", s.Epoch, sys.Name(), n)
	}
	fmt.Printf("measured load: busiest server at %.4f of quorum accesses\n", s.Peak)
	fmt.Printf("paper bounds:  L(Q) ≥ %.4f (Thm 4.1), ≥ %.4f (Cor 4.2)\n",
		s.Lower, bqs.GlobalLoadLowerBound(n, b))
	if !math.IsNaN(s.StrategyLoad) {
		fmt.Printf("strategy:      L_w(Q) = %.4f, measured %+.1f%% from it\n",
			s.StrategyLoad, 100*(s.Peak/s.StrategyLoad-1))
	}
	return s
}
