// Package harness is the workload driver shared by cmd/bqs-sim (in-memory
// clusters) and cmd/bqs-client (networked clusters over the wire
// protocol). Both binaries advertise comparable measurements — same
// read/write mix, same counters, same report — so the code that produces
// them lives here once: a change to the workload shape or the load report
// changes both harnesses together, and their numbers stay commensurable.
package harness

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bqs"
)

// System is what the harnesses need from a construction: quorum selection
// plus the c(Q)/IS/MT parameters the load bounds are computed from.
type System interface {
	bqs.System
	bqs.Parameterized
}

// BuildSystem maps the CLI -system/-b pair to a construction sized for
// masking bound b, identically in both binaries.
func BuildSystem(kind string, b int) (System, error) {
	switch kind {
	case "threshold":
		return bqs.NewMaskingThreshold(4*b+1, b)
	case "grid":
		return bqs.NewGrid(3*b+1, b)
	case "mgrid":
		return bqs.NewMGrid(2*b+2, b)
	case "rt":
		// Depth chosen so RT(4,3) masks at least b: b = (2^h − 1)/2.
		h := 1
		for (1<<uint(h)-1)/2 < b {
			h++
		}
		return bqs.NewRT(4, 3, h)
	case "boostfpp":
		return bqs.NewBoostFPP(3, b)
	case "mpath":
		d := 2 * (b + 2)
		return bqs.NewMPath(d, b)
	case "wheel":
		// The unbalanced regular system of [NW98]: the hub sits in n−1 of
		// the n quorums, so the uniform strategy loads it at ≈ 1 while the
		// LP strategy shifts weight to the rim — the starkest live demo of
		// the uniform-vs-optimal gap. Regular means b = 0 only.
		if b != 0 {
			return nil, fmt.Errorf("wheel is a regular (b=0) system; got -b %d", b)
		}
		return bqs.NewWheel(12)
	default:
		return nil, fmt.Errorf("unknown system %q", kind)
	}
}

// StrategyOption maps the CLI -strategy flag to a cluster option,
// identically in both binaries. "uniform" returns a nil option — the
// default uniform survivor selection; "optimal" installs the LP-optimal
// access strategy (the system must be able to enumerate its quorums).
func StrategyOption(name string) (bqs.ClusterOption, error) {
	switch name {
	case "uniform":
		return nil, nil
	case "optimal":
		return bqs.WithOptimalStrategy(), nil
	}
	return nil, fmt.Errorf("unknown strategy %q (want uniform or optimal)", name)
}

// Workload shapes a mixed ~50/50 read/write run.
type Workload struct {
	Clients  int
	Ops      int           // per client; ignored when Duration > 0
	Duration time.Duration // > 0: time-bounded run instead of op-bounded
	Timeout  time.Duration // per-operation deadline; 0 = none
}

// Describe returns the one-line workload summary both binaries print.
func (w Workload) Describe() string {
	if w.Duration > 0 {
		return fmt.Sprintf("%d clients for %v", w.Clients, w.Duration)
	}
	return fmt.Sprintf("%d clients × %d ops", w.Clients, w.Ops)
}

// Counters tallies workload outcomes.
type Counters struct {
	Reads, Writes int64 // successful operations
	NoCandidates  int64 // reads with no b+1-vouched value
	Failures      int64 // errored operations (deadline, retries exhausted, …)
	Violations    int64 // reads that surfaced a fabricated value
	Elapsed       time.Duration
}

// Total is every operation that ran to an outcome — the attempted count.
// It folds failures, no-candidates and violations in, so it must NOT be
// the throughput headline: a run that mostly times out would still report
// a high number. Use Succeeded for delivered throughput.
func (c Counters) Total() int64 {
	return c.Reads + c.Writes + c.NoCandidates + c.Failures + c.Violations
}

// Succeeded is every operation that completed its protocol — the
// throughput headline.
func (c Counters) Succeeded() int64 { return c.Reads + c.Writes }

// Run drives the workload against the cluster: w.Clients concurrent
// clients alternating writes and reads (client id + op index parity, so
// the fleet is always mixed), each operation under its own deadline. In
// duration mode every operation's context additionally derives from a
// run-wide deadline at start+Duration, so the run actually ends at the
// boundary instead of letting each client's last operation drift past it;
// an operation cut off by that run deadline is counted neither as a
// success nor as a failure — it simply did not fit in the window.
func Run(cluster *bqs.Cluster, w Workload) Counters {
	var (
		wg                       sync.WaitGroup
		reads, writes            atomic.Int64
		violations, noCandidates atomic.Int64
		failures                 atomic.Int64
	)
	start := time.Now()
	runCtx, endRun := context.Background(), context.CancelFunc(func() {})
	if w.Duration > 0 {
		runCtx, endRun = context.WithDeadline(context.Background(), start.Add(w.Duration))
	}
	defer endRun()
	for id := 0; id < w.Clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := cluster.NewClient(id)
			for op := 0; ; op++ {
				if w.Duration > 0 {
					if runCtx.Err() != nil {
						return
					}
				} else if op >= w.Ops {
					return
				}
				opCtx, cancel := runCtx, context.CancelFunc(func() {})
				if w.Timeout > 0 {
					opCtx, cancel = context.WithTimeout(runCtx, w.Timeout)
				}
				if (id+op)%2 == 0 {
					err := cl.Write(opCtx, fmt.Sprintf("c%d-op%04d", id, op))
					cancel()
					switch {
					case err == nil:
						writes.Add(1)
					case runCtx.Err() != nil:
						return // cut off at the run boundary; not an outcome
					default:
						failures.Add(1)
					}
					continue
				}
				got, err := cl.Read(opCtx)
				cancel()
				switch {
				case errors.Is(err, bqs.ErrNoCandidate):
					noCandidates.Add(1)
				case err != nil && runCtx.Err() != nil:
					return // cut off at the run boundary; not an outcome
				case err != nil:
					failures.Add(1)
				case strings.HasPrefix(got.Value, bqs.FabricatedValue):
					violations.Add(1)
				default:
					reads.Add(1)
				}
			}
		}(id)
	}
	wg.Wait()
	return Counters{
		Reads:        reads.Load(),
		Writes:       writes.Load(),
		NoCandidates: noCandidates.Load(),
		Failures:     failures.Load(),
		Violations:   violations.Load(),
		Elapsed:      time.Since(start),
	}
}

// Summary is the result block Report printed, returned so
// harness-specific acceptance checks compare against exactly the numbers
// the user saw.
type Summary struct {
	Peak         float64 // measured busiest-server access frequency
	Lower        float64 // Theorem 4.1 lower bound on L(Q)
	StrategyLoad float64 // L_w(Q) of the installed strategy (the LP optimum under -strategy optimal); NaN under uniform selection
}

// Report prints the shared result block: outcome counts, successful
// throughput (with the attempted rate alongside, so a run that mostly
// times out cannot masquerade as fast), and the measured busiest-server
// frequency next to the paper's L(Q) lower bounds — plus, when a
// strategy-backed picker is installed, the L_w(Q) the strategy actually
// in use induces, which is what the measurement should converge to.
func Report(cluster *bqs.Cluster, sys System, b int, c Counters) Summary {
	fmt.Printf("result: %d reads ok, %d writes ok, %d no-candidate, %d failed, %d VIOLATIONS\n",
		c.Reads, c.Writes, c.NoCandidates, c.Failures, c.Violations)
	secs := c.Elapsed.Seconds()
	fmt.Printf("throughput: %d ok ops in %v = %.0f ops/s (%d attempted = %.0f ops/s)\n",
		c.Succeeded(), c.Elapsed.Round(time.Millisecond), float64(c.Succeeded())/secs,
		c.Total(), float64(c.Total())/secs)
	n := sys.UniverseSize()
	s := Summary{
		Peak:         cluster.PeakLoad(),
		Lower:        bqs.LoadLowerBound(n, b, sys.MinQuorumSize()),
		StrategyLoad: cluster.StrategyLoad(),
	}
	fmt.Printf("measured load: busiest server at %.4f of quorum accesses\n", s.Peak)
	fmt.Printf("paper bounds:  L(Q) ≥ %.4f (Thm 4.1), ≥ %.4f (Cor 4.2)\n",
		s.Lower, bqs.GlobalLoadLowerBound(n, b))
	if !math.IsNaN(s.StrategyLoad) {
		fmt.Printf("strategy:      L_w(Q) = %.4f, measured %+.1f%% from it\n",
			s.StrategyLoad, 100*(s.Peak/s.StrategyLoad-1))
	}
	return s
}
