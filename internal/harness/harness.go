// Package harness is the workload driver shared by cmd/bqs-sim (in-memory
// clusters) and cmd/bqs-client (networked clusters over the wire
// protocol). Both binaries advertise comparable measurements — same
// read/write mix, same counters, same report — so the code that produces
// them lives here once: a change to the workload shape or the load report
// changes both harnesses together, and their numbers stay commensurable.
package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bqs"
)

// System is what the harnesses need from a construction: quorum selection
// plus the c(Q)/IS/MT parameters the load bounds are computed from.
type System interface {
	bqs.System
	bqs.Parameterized
}

// BuildSystem maps the CLI -system/-b pair to a construction sized for
// masking bound b, identically in both binaries.
func BuildSystem(kind string, b int) (System, error) {
	switch kind {
	case "threshold":
		return bqs.NewMaskingThreshold(4*b+1, b)
	case "grid":
		return bqs.NewGrid(3*b+1, b)
	case "mgrid":
		return bqs.NewMGrid(2*b+2, b)
	case "rt":
		// Depth chosen so RT(4,3) masks at least b: b = (2^h − 1)/2.
		h := 1
		for (1<<uint(h)-1)/2 < b {
			h++
		}
		return bqs.NewRT(4, 3, h)
	case "boostfpp":
		return bqs.NewBoostFPP(3, b)
	case "mpath":
		d := 2 * (b + 2)
		return bqs.NewMPath(d, b)
	default:
		return nil, fmt.Errorf("unknown system %q", kind)
	}
}

// Workload shapes a mixed ~50/50 read/write run.
type Workload struct {
	Clients  int
	Ops      int           // per client; ignored when Duration > 0
	Duration time.Duration // > 0: time-bounded run instead of op-bounded
	Timeout  time.Duration // per-operation deadline; 0 = none
}

// Describe returns the one-line workload summary both binaries print.
func (w Workload) Describe() string {
	if w.Duration > 0 {
		return fmt.Sprintf("%d clients for %v", w.Clients, w.Duration)
	}
	return fmt.Sprintf("%d clients × %d ops", w.Clients, w.Ops)
}

// Counters tallies workload outcomes.
type Counters struct {
	Reads, Writes int64 // successful operations
	NoCandidates  int64 // reads with no b+1-vouched value
	Failures      int64 // errored operations (deadline, retries exhausted, …)
	Violations    int64 // reads that surfaced a fabricated value
	Elapsed       time.Duration
}

// Total is every operation issued.
func (c Counters) Total() int64 {
	return c.Reads + c.Writes + c.NoCandidates + c.Failures + c.Violations
}

// Run drives the workload against the cluster: w.Clients concurrent
// clients alternating writes and reads (client id + op index parity, so
// the fleet is always mixed), each operation under its own deadline.
func Run(cluster *bqs.Cluster, w Workload) Counters {
	var (
		wg                       sync.WaitGroup
		reads, writes            atomic.Int64
		violations, noCandidates atomic.Int64
		failures                 atomic.Int64
	)
	start := time.Now()
	var stopAt time.Time
	if w.Duration > 0 {
		stopAt = start.Add(w.Duration)
	}
	for id := 0; id < w.Clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := cluster.NewClient(id)
			for op := 0; ; op++ {
				if w.Duration > 0 {
					if !time.Now().Before(stopAt) {
						return
					}
				} else if op >= w.Ops {
					return
				}
				opCtx, cancel := context.Background(), context.CancelFunc(func() {})
				if w.Timeout > 0 {
					opCtx, cancel = context.WithTimeout(context.Background(), w.Timeout)
				}
				if (id+op)%2 == 0 {
					if err := cl.Write(opCtx, fmt.Sprintf("c%d-op%04d", id, op)); err != nil {
						failures.Add(1)
					} else {
						writes.Add(1)
					}
					cancel()
					continue
				}
				got, err := cl.Read(opCtx)
				cancel()
				switch {
				case errors.Is(err, bqs.ErrNoCandidate):
					noCandidates.Add(1)
				case err != nil:
					failures.Add(1)
				case strings.HasPrefix(got.Value, bqs.FabricatedValue):
					violations.Add(1)
				default:
					reads.Add(1)
				}
			}
		}(id)
	}
	wg.Wait()
	return Counters{
		Reads:        reads.Load(),
		Writes:       writes.Load(),
		NoCandidates: noCandidates.Load(),
		Failures:     failures.Load(),
		Violations:   violations.Load(),
		Elapsed:      time.Since(start),
	}
}

// Report prints the shared result block — outcome counts, throughput,
// and the measured busiest-server frequency next to the paper's L(Q)
// lower bounds — and returns the measured peak load together with the
// printed Theorem 4.1 bound, so harness-specific checks compare against
// exactly the number the user saw.
func Report(cluster *bqs.Cluster, sys System, b int, c Counters) (peak, lower float64) {
	fmt.Printf("result: %d reads ok, %d writes ok, %d no-candidate, %d failed, %d VIOLATIONS\n",
		c.Reads, c.Writes, c.NoCandidates, c.Failures, c.Violations)
	fmt.Printf("throughput: %d ops in %v = %.0f ops/s\n",
		c.Total(), c.Elapsed.Round(time.Millisecond), float64(c.Total())/c.Elapsed.Seconds())
	peak = cluster.PeakLoad()
	n := sys.UniverseSize()
	lower = bqs.LoadLowerBound(n, b, sys.MinQuorumSize())
	fmt.Printf("measured load: busiest server at %.4f of quorum accesses\n", peak)
	fmt.Printf("paper bounds:  L(Q) ≥ %.4f (Thm 4.1), ≥ %.4f (Cor 4.2)\n",
		lower, bqs.GlobalLoadLowerBound(n, b))
	return peak, lower
}
