package harness

import (
	"math"
	"testing"
	"time"

	"bqs"
)

func TestParseAvailabilitySpec(t *testing.T) {
	cfg, err := ParseAvailabilitySpec("p=0.1,epochs=500,seed=7,mctrials=1000", 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.P != 0.1 || cfg.Epochs != 500 || cfg.Seed != 7 || cfg.MCTrials != 1000 {
		t.Fatalf("cfg = %+v", cfg)
	}
	// A spec without p= is legal now — the caller may add a p-vector,
	// domains, or an adversary; the sentinel records that p was absent.
	cfg, err = ParseAvailabilitySpec("epochs=100", 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.P != -1 || cfg.Epochs != 100 {
		t.Fatalf("p-less spec = %+v", cfg)
	}
	if _, err := ParseAvailabilitySpec("p=1.5", 1); err == nil {
		t.Fatal("p outside [0,1] accepted")
	}
	if _, err := ParseAvailabilitySpec("p=0.1,epochs=0", 1); err == nil {
		t.Fatal("zero epochs accepted")
	}
	if _, err := ParseAvailabilitySpec("p=0.1,bogus=1", 1); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := ParseAvailabilitySpec("p=NaN", 1); err == nil {
		t.Fatal("p=NaN accepted")
	}
	cfg, err = ParseAvailabilitySpec("p=0.25", 42)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Epochs != 2000 || cfg.Seed != 42 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

// TestAvailabilityMatchesExactFp is the acceptance experiment for the
// availability loop: on M-Grid(4,1) at p = 0.1, the empirical system-crash
// rate measured by driving the real protocol through seeded crash epochs
// must land within 3 binomial standard deviations of the exact F_p(Q) of
// Definition 3.10 — the same assertion the CI smoke step makes through
// bqs-sim -availability.
func TestAvailabilityMatchesExactFp(t *testing.T) {
	sys, err := BuildSystem("mgrid", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := AvailabilityConfig{P: 0.1, Epochs: 2000, Seed: 1, MCTrials: 20000}
	res, err := RunAvailability(sys, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ExactOK {
		t.Fatal("no exact F_p for a 16-server universe")
	}
	sigma := math.Sqrt(res.Exact * (1 - res.Exact) / float64(res.Epochs))
	t.Logf("empirical %.4f vs exact %.4f (σ = %.4f, %.2fσ away; MC %.4f)",
		res.Rate, res.Exact, sigma, math.Abs(res.Rate-res.Exact)/sigma, res.MC.Estimate)
	if !res.WithinSigma(3) {
		t.Fatalf("empirical crash rate %.4f outside 3σ of exact F_p = %.4f (σ = %.4f)",
			res.Rate, res.Exact, sigma)
	}
	// The lower-bound ladder must hold for the exact value too.
	if res.Exact < res.LowerMT || res.Exact < res.LowerMasking {
		t.Fatalf("exact F_p = %.4g below a paper lower bound (MT %.4g, masking %.4g)",
			res.Exact, res.LowerMT, res.LowerMasking)
	}
	if res.Prop45 && res.Exact < res.LowerB {
		t.Fatalf("exact F_p = %.4g below Prop 4.5 bound %.4g", res.Exact, res.LowerB)
	}
}

// TestAvailabilityReproducible pins that the experiment is a pure function
// of its seed: same seed, same crash count; different seed, (almost
// surely) a different epoch trace but a statistically compatible rate.
func TestAvailabilityReproducible(t *testing.T) {
	sys, err := BuildSystem("mgrid", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := AvailabilityConfig{P: 0.3, Epochs: 300, Seed: 5, MCTrials: 1000}
	a, err := RunAvailability(sys, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAvailability(sys, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Crashes != b.Crashes {
		t.Fatalf("same seed, different crash counts: %d vs %d", a.Crashes, b.Crashes)
	}
	if a.Crashes == 0 {
		t.Fatalf("p=0.3 on MGrid(4,1) produced no crashed epochs in %d — detection broken?", cfg.Epochs)
	}
	// Sanity: at p = 0 the system never crashes; at p = 1 it always does.
	zero, err := RunAvailability(sys, 1, AvailabilityConfig{P: 0, Epochs: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if zero.Crashes != 0 {
		t.Fatalf("p=0 crashed %d epochs", zero.Crashes)
	}
	one, err := RunAvailability(sys, 1, AvailabilityConfig{P: 1, Epochs: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if one.Crashes != 20 {
		t.Fatalf("p=1 crashed only %d/20 epochs", one.Crashes)
	}
}

// TestAvailabilityRegimeValidation pins the mutual-exclusion rules: a
// config must pick exactly one crash regime.
func TestAvailabilityRegimeValidation(t *testing.T) {
	sys, err := BuildSystem("mgrid", 1)
	if err != nil {
		t.Fatal(err)
	}
	n := sys.UniverseSize()
	adv := &bqs.AdversaryConfig{Kind: bqs.AdversaryRandom, B: 2}
	bad := []AvailabilityConfig{
		{P: -1, Epochs: 10},                                           // no regime at all
		{P: 0.1, PVec: make([]float64, n), Epochs: 10},                // scalar and vector
		{P: 0.1, Adversary: adv, Epochs: 10},                          // scalar and adversary
		{P: -1, PVec: make([]float64, n), Adversary: adv, Epochs: 10}, // vector and adversary
		{P: -1, PVec: []float64{0.1}, Epochs: 10},                     // wrong-length vector
	}
	for i, cfg := range bad {
		if _, err := RunAvailability(sys, 1, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestHeterogeneousAvailabilityMatchesExactF is the acceptance experiment
// for the heterogeneous failure model: on the 16-server M-Grid(4,1) with
// a ramped per-server probability vector and one correlated domain, the
// empirical crash rate measured through the live protocol must land
// within 3 binomial standard deviations of the generalized exact F
// computed by CrashProbabilityExactModel — the heterogeneous analogue of
// the Definition 3.10 check above.
func TestHeterogeneousAvailabilityMatchesExactF(t *testing.T) {
	sys, err := BuildSystem("mgrid", 1)
	if err != nil {
		t.Fatal(err)
	}
	n := sys.UniverseSize()
	pvec, err := bqs.ParsePVector("*:0.08,0-3:0.3", n)
	if err != nil {
		t.Fatal(err)
	}
	doms, err := bqs.ParseDomains("4-7:0.1", n)
	if err != nil {
		t.Fatal(err)
	}
	cfg := AvailabilityConfig{P: -1, PVec: pvec, Domains: doms, Epochs: 2000, Seed: 3, MCTrials: 20000}
	res, err := RunAvailability(sys, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hetero || !res.ExactOK {
		t.Fatalf("hetero=%v exactOK=%v — generalized exact companion missing", res.Hetero, res.ExactOK)
	}
	sigma := math.Sqrt(res.Exact * (1 - res.Exact) / float64(res.Epochs))
	t.Logf("hetero empirical %.4f vs exact %.4f (%.2fσ away; MC %.4f)",
		res.Rate, res.Exact, math.Abs(res.Rate-res.Exact)/sigma, res.MC.Estimate)
	if !res.WithinSigma(3) {
		t.Fatalf("hetero empirical crash rate %.4f outside 3σ of exact F = %.4f (σ = %.4f)",
			res.Rate, res.Exact, sigma)
	}
	if !res.MCOK {
		t.Fatal("no Monte Carlo companion under the heterogeneous model")
	}
	if mcDist := math.Abs(res.MC.Estimate - res.Exact); mcDist > 5*res.MC.StdErr {
		t.Fatalf("MC companion %.4f is %.4f from exact %.4f (> 5 SE)", res.MC.Estimate, mcDist, res.Exact)
	}
}

// TestHeterogeneousUniformMatchesScalarRun pins the legacy-path contract:
// a uniform p-vector draws the same per-server Bernoullis in the same rng
// order as the scalar path, so the two experiments produce the identical
// epoch trace, not merely compatible rates.
func TestHeterogeneousUniformMatchesScalarRun(t *testing.T) {
	sys, err := BuildSystem("mgrid", 1)
	if err != nil {
		t.Fatal(err)
	}
	n := sys.UniverseSize()
	scalar, err := RunAvailability(sys, 1, AvailabilityConfig{P: 0.3, Epochs: 300, Seed: 5, MCTrials: 1000})
	if err != nil {
		t.Fatal(err)
	}
	vec, err := RunAvailability(sys, 1, AvailabilityConfig{
		P: -1, PVec: bqs.UniformFailureModel(n, 0.3).P, Epochs: 300, Seed: 5, MCTrials: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if scalar.Crashes != vec.Crashes {
		t.Fatalf("uniform vector diverged from scalar path: %d vs %d crashes", vec.Crashes, scalar.Crashes)
	}
	if math.Abs(scalar.Exact-vec.Exact) > 1e-12 {
		t.Fatalf("exact companions diverged: %g vs %g", scalar.Exact, vec.Exact)
	}
}

// TestAvailabilityTargetedBeatsRandom is the adversarial acceptance
// experiment: on the 12-server Wheel — the paper's minimal-load,
// fragile-availability extreme — a targeted adversary that aims its
// 2-crash budget at the most-loaded servers (the hub, under the default
// strategy) kills the system essentially every epoch, while the random
// adversary with the same budget only crashes it when the hub happens to
// be drawn (11/66 of subsets). The gap is the Section 5 trade-off made
// adversarial: load concentration is exactly what a targeted adversary
// exploits.
func TestAvailabilityTargetedBeatsRandom(t *testing.T) {
	sys, err := BuildSystem("wheel", 0)
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 400
	run := func(kind bqs.AdversaryKind) AvailabilityResult {
		t.Helper()
		res, err := RunAvailability(sys, 0, AvailabilityConfig{
			P: -1, Epochs: epochs, Seed: 9, MCTrials: 1,
			Adversary: &bqs.AdversaryConfig{Kind: kind, B: 2, Seed: 9},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	random := run(bqs.AdversaryRandom)
	targeted := run(bqs.AdversaryTargeted)
	t.Logf("random rate %.4f (exact %.4f, ok=%v) vs targeted rate %.4f",
		random.Rate, random.Exact, random.ExactOK, targeted.Rate)

	// The random adversary's crash rate is still an enumerable quantity —
	// the 3σ machinery stays armed for it.
	if !random.ExactOK {
		t.Fatal("no exact crash rate for the random adversary on an enumerable system")
	}
	if math.Abs(random.Exact-11.0/66.0) > 1e-12 {
		t.Fatalf("random exact = %g, want 11/66 (hub in a uniform 2-subset of 12)", random.Exact)
	}
	if !random.WithinSigma(3) {
		t.Fatalf("random empirical %.4f outside 3σ of exact %.4f", random.Rate, random.Exact)
	}
	// Targeted finds the hub and kills the system almost every epoch
	// (crash-epoch retries shift a little load onto the rim, so the aim can
	// wobble off the hub for an occasional epoch); random only ever reaches
	// 1/6 in expectation. The margin is enormous by design — this is the
	// measurable degradation the adversary seam must deliver.
	if targeted.Rate < 0.9 {
		t.Fatalf("targeted adversary only crashed %.4f of epochs — it failed to find the hub", targeted.Rate)
	}
	if targeted.Rate <= random.Rate+0.5 {
		t.Fatalf("targeted (%.4f) does not measurably degrade availability vs random (%.4f)",
			targeted.Rate, random.Rate)
	}
	if targeted.Adversary != "targeted" || random.Adversary != "random" {
		t.Fatalf("adversary labels = %q / %q", targeted.Adversary, random.Adversary)
	}
}

// TestWorkloadUnderTargetedByzantineAdversaryIsSafe closes the loop at
// the harness level: a live targeted adversary turning servers into
// colluding fabricators must never get a fabricated value past a reader
// during a real mixed workload. The budget is 1 under b = 3: a mobile
// adversary migrating mid-operation can expose a window to roughly one
// extra fabricator per straddled re-targeting, so B = 1 keeps even
// straddled windows far below the b+1 identical votes masking requires —
// the deterministic version of the exposure-scoped history checks in
// internal/sim, and the shape the CI TCP smoke mirrors.
func TestWorkloadUnderTargetedByzantineAdversaryIsSafe(t *testing.T) {
	sys, err := BuildSystem("threshold", 3)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := bqs.NewCluster(sys, 3, bqs.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	driver, err := StartAdversary(bqs.AdversaryConfig{
		Kind: bqs.AdversaryTargeted, B: 1, Behavior: bqs.ByzantineFabricate,
		Interval: 5 * time.Millisecond,
	}, cluster, cluster, sys.UniverseSize(), nil)
	if err != nil {
		t.Fatal(err)
	}
	c := Run(cluster, Workload{Clients: 4, Ops: 150, SuspicionTTL: 5 * time.Millisecond, Seed: 11})
	if err := driver.Stop(); err != nil {
		t.Fatal(err)
	}
	if c.Violations != 0 {
		t.Fatalf("%d reads surfaced fabricated values under a within-budget adversary", c.Violations)
	}
	if c.Reads+c.Writes == 0 {
		t.Fatal("workload made no progress under the adversary")
	}
}
