package harness

import (
	"math"
	"testing"
)

func TestParseAvailabilitySpec(t *testing.T) {
	cfg, err := ParseAvailabilitySpec("p=0.1,epochs=500,seed=7,mctrials=1000", 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.P != 0.1 || cfg.Epochs != 500 || cfg.Seed != 7 || cfg.MCTrials != 1000 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if _, err := ParseAvailabilitySpec("epochs=100", 1); err == nil {
		t.Fatal("spec without p accepted")
	}
	if _, err := ParseAvailabilitySpec("p=1.5", 1); err == nil {
		t.Fatal("p outside [0,1] accepted")
	}
	if _, err := ParseAvailabilitySpec("p=0.1,epochs=0", 1); err == nil {
		t.Fatal("zero epochs accepted")
	}
	if _, err := ParseAvailabilitySpec("p=0.1,bogus=1", 1); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := ParseAvailabilitySpec("p=NaN", 1); err == nil {
		t.Fatal("p=NaN accepted")
	}
	cfg, err = ParseAvailabilitySpec("p=0.25", 42)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Epochs != 2000 || cfg.Seed != 42 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

// TestAvailabilityMatchesExactFp is the acceptance experiment for the
// availability loop: on M-Grid(4,1) at p = 0.1, the empirical system-crash
// rate measured by driving the real protocol through seeded crash epochs
// must land within 3 binomial standard deviations of the exact F_p(Q) of
// Definition 3.10 — the same assertion the CI smoke step makes through
// bqs-sim -availability.
func TestAvailabilityMatchesExactFp(t *testing.T) {
	sys, err := BuildSystem("mgrid", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := AvailabilityConfig{P: 0.1, Epochs: 2000, Seed: 1, MCTrials: 20000}
	res, err := RunAvailability(sys, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ExactOK {
		t.Fatal("no exact F_p for a 16-server universe")
	}
	sigma := math.Sqrt(res.Exact * (1 - res.Exact) / float64(res.Epochs))
	t.Logf("empirical %.4f vs exact %.4f (σ = %.4f, %.2fσ away; MC %.4f)",
		res.Rate, res.Exact, sigma, math.Abs(res.Rate-res.Exact)/sigma, res.MC.Estimate)
	if !res.WithinSigma(3) {
		t.Fatalf("empirical crash rate %.4f outside 3σ of exact F_p = %.4f (σ = %.4f)",
			res.Rate, res.Exact, sigma)
	}
	// The lower-bound ladder must hold for the exact value too.
	if res.Exact < res.LowerMT || res.Exact < res.LowerMasking {
		t.Fatalf("exact F_p = %.4g below a paper lower bound (MT %.4g, masking %.4g)",
			res.Exact, res.LowerMT, res.LowerMasking)
	}
	if res.Prop45 && res.Exact < res.LowerB {
		t.Fatalf("exact F_p = %.4g below Prop 4.5 bound %.4g", res.Exact, res.LowerB)
	}
}

// TestAvailabilityReproducible pins that the experiment is a pure function
// of its seed: same seed, same crash count; different seed, (almost
// surely) a different epoch trace but a statistically compatible rate.
func TestAvailabilityReproducible(t *testing.T) {
	sys, err := BuildSystem("mgrid", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := AvailabilityConfig{P: 0.3, Epochs: 300, Seed: 5, MCTrials: 1000}
	a, err := RunAvailability(sys, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAvailability(sys, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Crashes != b.Crashes {
		t.Fatalf("same seed, different crash counts: %d vs %d", a.Crashes, b.Crashes)
	}
	if a.Crashes == 0 {
		t.Fatalf("p=0.3 on MGrid(4,1) produced no crashed epochs in %d — detection broken?", cfg.Epochs)
	}
	// Sanity: at p = 0 the system never crashes; at p = 1 it always does.
	zero, err := RunAvailability(sys, 1, AvailabilityConfig{P: 0, Epochs: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if zero.Crashes != 0 {
		t.Fatalf("p=0 crashed %d epochs", zero.Crashes)
	}
	one, err := RunAvailability(sys, 1, AvailabilityConfig{P: 1, Epochs: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if one.Crashes != 20 {
		t.Fatalf("p=1 crashed only %d/20 epochs", one.Crashes)
	}
}
