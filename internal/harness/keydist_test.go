package harness

import (
	"math/rand"
	"testing"

	"bqs"
)

func TestParseKeyDist(t *testing.T) {
	for spec, want := range map[string]KeyDist{
		"":         {Kind: "uniform"},
		"uniform":  {Kind: "uniform"},
		"zipf:1.1": {Kind: "zipf", S: 1.1},
		"zipf:2":   {Kind: "zipf", S: 2},
	} {
		got, err := ParseKeyDist(spec)
		if err != nil || got != want {
			t.Errorf("ParseKeyDist(%q) = %+v, %v; want %+v", spec, got, err, want)
		}
	}
	for _, bad := range []string{"zipf", "zipf:1", "zipf:0.9", "zipf:x", "pareto"} {
		if _, err := ParseKeyDist(bad); err == nil {
			t.Errorf("ParseKeyDist(%q) accepted", bad)
		}
	}
}

func TestKeyDistSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z, err := ParseKeyDist("zipf:1.2")
	if err != nil {
		t.Fatal(err)
	}
	draw := z.Sampler(16, rng)
	counts := make([]int, 16)
	for i := 0; i < 4000; i++ {
		k := draw()
		if k < 0 || k >= 16 {
			t.Fatalf("zipf draw %d outside [0,16)", k)
		}
		counts[k]++
	}
	// Rank-ordered: the hottest key is key 0, and the skew is real.
	if counts[0] <= counts[15] {
		t.Errorf("zipf:1.2 shows no skew: counts[0]=%d counts[15]=%d", counts[0], counts[15])
	}
	// keys ≤ 1 collapses to a single register.
	if one := z.Sampler(1, rng)(); one != 0 {
		t.Errorf("single-key sampler drew %d", one)
	}
	if KeyName(0, 3) != "" {
		t.Error("Keys=0 must map to the DefaultKey register")
	}
	if KeyName(8, 3) != "k0003" {
		t.Errorf("KeyName(8,3) = %q", KeyName(8, 3))
	}
}

// TestRunKeyedBatchedWorkload drives the shared harness in its keyed,
// batched session mode against an in-memory cluster and checks the
// counters add up with no failures or violations.
func TestRunKeyedBatchedWorkload(t *testing.T) {
	sys, err := BuildSystem("mgrid", 1)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := bqs.NewCluster(sys, 1, bqs.WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	dist, err := ParseKeyDist("zipf:1.1")
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{Clients: 4, Ops: 48, Keys: 32, Dist: dist, Batch: 8, Seed: 21}
	c := Run(cluster, w)
	if got, want := c.Total(), int64(4*48); got != want {
		t.Errorf("total outcomes %d, want %d", got, want)
	}
	if c.Failures != 0 || c.Violations != 0 {
		t.Errorf("fault-free keyed run had %d failures, %d violations", c.Failures, c.Violations)
	}
	if c.Reads == 0 || c.Writes == 0 {
		t.Errorf("workload not mixed: %d reads, %d writes", c.Reads, c.Writes)
	}
}
