package harness

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"
)

// BenchSnapshot is one benchmark observation in the machine-readable
// form the CI trajectory stores (BENCH_*.json artifacts): enough context
// to identify the configuration (system, store engine, workload shape)
// next to the measured throughput, latency quantiles and load. Fields
// use JSON-friendly scalar units — seconds and milliseconds — so
// trajectory tooling needs no Go duration parsing.
type BenchSnapshot struct {
	Label      string  `json:"label"`           // which harness produced it (sim, client, test name)
	System     string  `json:"system"`          // quorum system name
	B          int     `json:"b"`               // masking bound
	Store      string  `json:"store"`           // "memory" or "durable"
	Epoch      uint64  `json:"epoch,omitempty"` // configuration epoch the run ended on (0: never reconfigured)
	Clients    int     `json:"clients"`
	Batch      int     `json:"batch"`
	Keys       int     `json:"keys"`
	Ok         int64   `json:"ok_ops"` // operations that completed their protocol
	Attempted  int64   `json:"attempted_ops"`
	Failures   int64   `json:"failures"`
	Violations int64   `json:"violations"`
	ElapsedSec float64 `json:"elapsed_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	// PeakLoad is the measured busiest-server access frequency;
	// LoadLower the Theorem 4.1 lower bound it is held against.
	PeakLoad  float64 `json:"peak_load"`
	LoadLower float64 `json:"load_lower_bound"`
}

// Snapshot assembles a BenchSnapshot from the pieces a harness already
// has: the workload it ran, the counters it got back and the summary it
// reported. store should name the engine behind the servers ("memory" or
// "durable").
func Snapshot(label string, sys System, b int, store string, w Workload, c Counters, s Summary) BenchSnapshot {
	secs := c.Elapsed.Seconds()
	snap := BenchSnapshot{
		Label:      label,
		System:     sys.Name(),
		B:          b,
		Store:      store,
		Epoch:      s.Epoch,
		Clients:    w.Clients,
		Batch:      w.Batch,
		Keys:       w.Keys,
		Ok:         c.Succeeded(),
		Attempted:  c.Total(),
		Failures:   c.Failures,
		Violations: c.Violations,
		ElapsedSec: secs,
		P50Ms:      float64(c.LatencyQuantile(0.50)) / float64(time.Millisecond),
		P99Ms:      float64(c.LatencyQuantile(0.99)) / float64(time.Millisecond),
		PeakLoad:   s.Peak,
		LoadLower:  s.Lower,
	}
	if secs > 0 {
		snap.OpsPerSec = float64(c.Succeeded()) / secs
	}
	if math.IsNaN(snap.PeakLoad) {
		snap.PeakLoad = 0
	}
	return snap
}

// ReadBenchJSON reads back a snapshot file written by WriteBenchJSON,
// for tests and trajectory tooling.
func ReadBenchJSON(path string) ([]BenchSnapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snaps []BenchSnapshot
	if err := json.Unmarshal(buf, &snaps); err != nil {
		return nil, fmt.Errorf("harness: decoding %s: %w", path, err)
	}
	return snaps, nil
}

// WriteBenchJSON writes the snapshots as an indented JSON array to path
// — the -bench-json output both binaries share, uploaded by CI as a
// BENCH_*.json artifact.
func WriteBenchJSON(path string, snaps []BenchSnapshot) error {
	buf, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: encoding bench snapshot: %w", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("harness: %w", err)
	}
	return nil
}
