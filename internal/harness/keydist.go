package harness

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// KeyDist is the CLI's -key-dist spec: how a workload spreads operations
// over its key space. Supported forms are "uniform" and "zipf:S" with
// exponent S > 1 (e.g. "zipf:1.1"), the standard skewed-popularity
// model. The paper's load measure (Definition 3.8) is per quorum access
// and key-oblivious, so measured load must converge to L(Q) under ANY
// key distribution — the zipf forms exist to verify exactly that under
// heavy skew.
type KeyDist struct {
	Kind string  // "uniform" or "zipf"
	S    float64 // zipf exponent; meaningful when Kind == "zipf"
}

// ParseKeyDist parses "uniform" or "zipf:S" (S > 1).
func ParseKeyDist(spec string) (KeyDist, error) {
	switch {
	case spec == "" || spec == "uniform":
		return KeyDist{Kind: "uniform"}, nil
	case strings.HasPrefix(spec, "zipf:"):
		s, err := strconv.ParseFloat(strings.TrimPrefix(spec, "zipf:"), 64)
		if err != nil {
			return KeyDist{}, fmt.Errorf("bad zipf exponent in %q: %v", spec, err)
		}
		if s <= 1 {
			return KeyDist{}, fmt.Errorf("zipf exponent %g must be > 1", s)
		}
		return KeyDist{Kind: "zipf", S: s}, nil
	}
	return KeyDist{}, fmt.Errorf("unknown key distribution %q (want uniform or zipf:S)", spec)
}

// String formats the distribution as its CLI spec.
func (d KeyDist) String() string {
	if d.Kind == "zipf" {
		return fmt.Sprintf("zipf:%g", d.S)
	}
	return "uniform"
}

// Sampler returns a draw function over key indices [0, keys). keys ≤ 1
// always draws 0. The zipf sampler is rank-ordered: key 0 is the hottest.
func (d KeyDist) Sampler(keys int, rng *rand.Rand) func() int {
	if keys <= 1 {
		return func() int { return 0 }
	}
	if d.Kind == "zipf" {
		z := rand.NewZipf(rng, d.S, 1, uint64(keys-1))
		return func() int { return int(z.Uint64()) }
	}
	return func() int { return rng.Intn(keys) }
}

// KeyName formats key index i as the workload's register key. Keys ≤ 0
// map everything to the DefaultKey register, preserving the original
// single-object workload.
func KeyName(keys, i int) string {
	if keys <= 0 {
		return ""
	}
	return fmt.Sprintf("k%04d", i)
}
