package wire

import (
	"context"
	"net"
	"testing"
	"time"

	"bqs/internal/obs"
	"bqs/internal/sim"
)

// TestWireMetricsEndToEnd drives real frames over loopback with both
// sides instrumented into separate registries and pins the series: frame
// and byte counters by direction, the negotiated-version mix, batch-op
// distributions, dial outcomes, and the server's open-connection gauge.
// The client and server views must be mirror images — every frame the
// client sends is a frame the server receives.
func TestWireMetricsEndToEnd(t *testing.T) {
	regS := obs.NewRegistry()
	regC := obs.NewRegistry()

	reps := newReplicas([]int{0, 1, 2})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reps, WithServerMetrics(regS))
	go srv.Serve(lis)
	defer srv.Close()

	routes := map[int]string{0: lis.Addr().String(), 1: lis.Addr().String(), 2: lis.Addr().String()}
	cl, err := Dial(routes, WithMetrics(regC))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx := context.Background()
	const ops = 20
	for i := 0; i < ops; i++ {
		resp, err := cl.Invoke(ctx, i%3, sim.Request{Op: sim.OpWrite, Value: sim.TaggedValue{
			Value: "v", TS: sim.Timestamp{Seq: int64(i)},
		}})
		if err != nil || !resp.OK {
			t.Fatalf("op %d: resp %+v err %v", i, resp, err)
		}
	}

	if v, _ := regC.Value("bqs_wire_dials_total", "result", "ok"); v < 1 {
		t.Fatalf("client dials ok = %v, want >= 1", v)
	}
	if v, _ := regC.Value("bqs_wire_dials_total", "result", "err"); v != 0 {
		t.Fatalf("client dial errors = %v, want 0", v)
	}
	// Hello + 20 requests out; hello-ack + 20 responses in.
	cOut, _ := regC.Value("bqs_wire_frames_total", "side", "client", "dir", "out")
	cIn, _ := regC.Value("bqs_wire_frames_total", "side", "client", "dir", "in")
	sIn, _ := regS.Value("bqs_wire_frames_total", "side", "server", "dir", "in")
	sOut, _ := regS.Value("bqs_wire_frames_total", "side", "server", "dir", "out")
	if cOut < ops+1 || cIn < ops+1 {
		t.Fatalf("client frames out=%v in=%v, want >= %d each", cOut, cIn, ops+1)
	}
	if cOut != sIn || cIn != sOut {
		t.Fatalf("mirror broken: client out=%v server in=%v, client in=%v server out=%v",
			cOut, sIn, cIn, sOut)
	}
	cBytesOut, _ := regC.Value("bqs_wire_bytes_total", "side", "client", "dir", "out")
	sBytesIn, _ := regS.Value("bqs_wire_bytes_total", "side", "server", "dir", "in")
	if cBytesOut <= 0 || cBytesOut != sBytesIn {
		t.Fatalf("bytes mirror broken: client out=%v server in=%v", cBytesOut, sBytesIn)
	}

	// Both sides saw one connection negotiate the current version.
	ver := "2"
	if v, _ := regC.Value("bqs_wire_conns_total", "side", "client", "version", ver); v != 1 {
		t.Fatalf("client conns at v%s = %v, want 1", ver, v)
	}
	if v, _ := regS.Value("bqs_wire_conns_total", "side", "server", "version", ver); v != 1 {
		t.Fatalf("server conns at v%s = %v, want 1", ver, v)
	}
	if v, _ := regS.Value("bqs_wire_open_conns_count"); v != 1 {
		t.Fatalf("open conns gauge = %v, want 1", v)
	}

	// Batch frames feed the per-frame op-count distributions on both
	// sides.
	items := []sim.BatchItem{
		{Server: 0, Req: sim.Request{Op: sim.OpRead}},
		{Server: 1, Req: sim.Request{Op: sim.OpRead}},
		{Server: 2, Req: sim.Request{Op: sim.OpRead}},
	}
	if _, err := cl.InvokeBatch(ctx, items); err != nil {
		t.Fatal(err)
	}
	ch := regC.Histogram("bqs_wire_batch_ops", obs.SizeBuckets, "side", "client")
	sh := regS.Histogram("bqs_wire_batch_ops", obs.SizeBuckets, "side", "server")
	if ch.Count() != 1 || int(ch.Sum()) != len(items) {
		t.Fatalf("client batch hist count=%d sum=%v, want 1 frame of %d ops", ch.Count(), ch.Sum(), len(items))
	}
	if sh.Count() != 1 || int(sh.Sum()) != len(items) {
		t.Fatalf("server batch hist count=%d sum=%v, want 1 frame of %d ops", sh.Count(), sh.Sum(), len(items))
	}

	// Closing the client drains the server's open-connection gauge.
	cl.Close()
	deadline := 200
	for ; deadline > 0; deadline-- {
		if v, _ := regS.Value("bqs_wire_open_conns_count"); v == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if deadline == 0 {
		t.Fatal("open-conns gauge never drained after client close")
	}
}

// TestWireMetricsDialError pins the failure counter and its event-log
// companion: a dial to a dead address counts result="err" and leaves a
// scrapeable trace in /events.
func TestWireMetricsDialError(t *testing.T) {
	// Reserve an address, then close it so the dial fails fast.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	reg := obs.NewRegistry()
	cl, err := Dial(map[int]string{0: addr}, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Invoke(context.Background(), 0, sim.Request{Op: sim.OpRead})
	if err != nil || resp.OK {
		t.Fatalf("dead address: resp %+v err %v, want OK=false", resp, err)
	}
	if v, _ := reg.Value("bqs_wire_dials_total", "result", "err"); v < 1 {
		t.Fatalf("dial errors = %v, want >= 1", v)
	}
	evs := reg.Events()
	if len(evs) == 0 {
		t.Fatal("dial failure left no event")
	}
}

// TestWireMetricsV1 pins the version-mix label under a capped client: a
// v1 connection shows up as version="1" on the client side.
func TestWireMetricsV1(t *testing.T) {
	reps := newReplicas([]int{0})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reps)
	go srv.Serve(lis)
	defer srv.Close()

	reg := obs.NewRegistry()
	cl, err := Dial(map[int]string{0: lis.Addr().String()}, WithMetrics(reg), WithVersion(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if resp, err := cl.Invoke(context.Background(), 0, sim.Request{Op: sim.OpRead}); err != nil || !resp.OK {
		t.Fatalf("v1 read: resp %+v err %v", resp, err)
	}
	if v, _ := reg.Value("bqs_wire_conns_total", "side", "client", "version", "1"); v != 1 {
		t.Fatalf(`conns{version="1"} = %v, want 1`, v)
	}
}
