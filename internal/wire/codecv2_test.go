package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"bqs/internal/sim"
)

var batchRequestCases = []struct {
	name  string
	id    uint64
	items []sim.BatchItem
}{
	{"single-keyless", 1, []sim.BatchItem{
		{Server: 0, Req: sim.Request{Op: sim.OpRead, ReaderID: 7}},
	}},
	{"single-keyed", 2, []sim.BatchItem{
		{Server: 3, Req: sim.Request{Op: sim.OpWrite, Key: "user/42", Value: sim.TaggedValue{Value: "v", TS: sim.Timestamp{Seq: 9, Writer: 2}}}},
	}},
	{"mixed-servers", math.MaxUint64, []sim.BatchItem{
		{Server: 0, Req: sim.Request{Op: sim.OpReadTimestamps, Key: "a", ReaderID: -1}},
		{Server: 5, Req: sim.Request{Op: sim.OpWrite, Key: "b", Value: sim.TaggedValue{Value: "x", TS: sim.Timestamp{Seq: 1 << 40, Writer: -1}}}},
		{Server: math.MaxUint32, Req: sim.Request{Op: sim.OpRead, Key: strings.Repeat("k", MaxKeyLen), ReaderID: math.MinInt32}},
	}},
	{"full-batch", 3, func() []sim.BatchItem {
		items := make([]sim.BatchItem, MaxBatchOps)
		for i := range items {
			items[i] = sim.BatchItem{Server: i, Req: sim.Request{Op: sim.OpRead, Key: "k", ReaderID: i}}
		}
		return items
	}()},
	{"utf8-key-and-value", 4, []sim.BatchItem{
		{Server: 1, Req: sim.Request{Op: sim.OpWrite, Key: "clé/ключ ✓", Value: sim.TaggedValue{Value: "\x00\xff", TS: sim.Timestamp{Seq: math.MinInt64, Writer: math.MaxInt32}}}},
	}},
}

func TestBatchRequestRoundTrip(t *testing.T) {
	for _, tc := range batchRequestCases {
		t.Run(tc.name, func(t *testing.T) {
			frame, err := AppendBatchRequest(nil, tc.id, tc.items)
			if err != nil {
				t.Fatal(err)
			}
			payload, err := ReadFrame(bytes.NewReader(frame), nil)
			if err != nil {
				t.Fatal(err)
			}
			id, items, err := DecodeBatchRequest(payload)
			if err != nil {
				t.Fatal(err)
			}
			if id != tc.id || len(items) != len(tc.items) {
				t.Fatalf("round trip mangled frame: id=%d n=%d, want id=%d n=%d", id, len(items), tc.id, len(tc.items))
			}
			for i := range items {
				if items[i] != tc.items[i] {
					t.Fatalf("item %d mangled:\n got %+v\nwant %+v", i, items[i], tc.items[i])
				}
			}
		})
	}
}

var batchResponseCases = []struct {
	name  string
	id    uint64
	resps []sim.Response
}{
	{"one-down", 1, []sim.Response{{}}},
	{"mixed", 2, []sim.Response{
		{OK: true, Value: sim.TaggedValue{Value: "v", TS: sim.Timestamp{Seq: 3, Writer: 1}}},
		{OK: false},
		{OK: true},
	}},
	{"extremes", math.MaxUint64, []sim.Response{
		{OK: true, Value: sim.TaggedValue{Value: strings.Repeat("\xfe", 999), TS: sim.Timestamp{Seq: math.MinInt64, Writer: math.MinInt32}}},
	}},
}

func TestBatchResponseRoundTrip(t *testing.T) {
	for _, tc := range batchResponseCases {
		t.Run(tc.name, func(t *testing.T) {
			frame, err := AppendBatchResponse(nil, tc.id, tc.resps)
			if err != nil {
				t.Fatal(err)
			}
			payload, err := ReadFrame(bytes.NewReader(frame), nil)
			if err != nil {
				t.Fatal(err)
			}
			id, resps, err := DecodeBatchResponse(payload)
			if err != nil {
				t.Fatal(err)
			}
			if id != tc.id || len(resps) != len(tc.resps) {
				t.Fatalf("round trip mangled frame: id=%d n=%d, want id=%d n=%d", id, len(resps), tc.id, len(tc.resps))
			}
			for i := range resps {
				if resps[i] != tc.resps[i] {
					t.Fatalf("item %d mangled:\n got %+v\nwant %+v", i, resps[i], tc.resps[i])
				}
			}
		})
	}
}

func TestHelloRoundTrip(t *testing.T) {
	for _, v := range []byte{1, 2, 255} {
		frame := AppendHello(nil, v)
		payload, err := ReadFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeHello(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("hello version mangled: got %d want %d", got, v)
		}
	}
	if _, err := DecodeHello([]byte{tagHello, 0}); err == nil {
		t.Error("DecodeHello accepted version 0")
	}
	if _, err := DecodeHello([]byte{tagHello}); err == nil {
		t.Error("DecodeHello accepted a truncated payload")
	}
	if _, err := DecodeHello([]byte{tagRequest, 2}); err == nil {
		t.Error("DecodeHello accepted a non-hello tag")
	}
}

func TestAppendBatchRequestRejects(t *testing.T) {
	if _, err := AppendBatchRequest(nil, 1, nil); err == nil {
		t.Error("accepted an empty batch")
	}
	over := make([]sim.BatchItem, MaxBatchOps+1)
	for i := range over {
		over[i] = sim.BatchItem{Server: i, Req: sim.Request{Op: sim.OpRead}}
	}
	if _, err := AppendBatchRequest(nil, 1, over); err == nil {
		t.Error("accepted a batch beyond MaxBatchOps")
	}
	if _, err := AppendBatchRequest(nil, 1, []sim.BatchItem{
		{Server: 0, Req: sim.Request{Op: sim.OpRead, Key: strings.Repeat("k", MaxKeyLen+1)}},
	}); err == nil {
		t.Error("accepted a key beyond MaxKeyLen")
	}
	if _, err := AppendBatchRequest(nil, 1, []sim.BatchItem{
		{Server: -1, Req: sim.Request{Op: sim.OpRead}},
	}); err == nil {
		t.Error("accepted a negative server index")
	}
	if _, err := AppendBatchRequest(nil, 1, []sim.BatchItem{
		{Server: 0, Req: sim.Request{Op: sim.OpWrite, Value: sim.TaggedValue{Value: strings.Repeat("v", MaxValueLen+1)}}},
	}); err == nil {
		t.Error("accepted a value beyond MaxValueLen")
	}
	// Two near-limit values overflow the frame even though each fits.
	big := strings.Repeat("v", MaxValueLen)
	if _, err := AppendBatchRequest(nil, 1, []sim.BatchItem{
		{Server: 0, Req: sim.Request{Op: sim.OpWrite, Value: sim.TaggedValue{Value: big}}},
		{Server: 1, Req: sim.Request{Op: sim.OpWrite, Value: sim.TaggedValue{Value: big}}},
	}); err == nil {
		t.Error("accepted a batch whose total exceeds MaxFrame")
	}
}

func TestDecodeBatchRejectsMalformed(t *testing.T) {
	good, err := AppendBatchRequest(nil, 9, []sim.BatchItem{
		{Server: 2, Req: sim.Request{Op: sim.OpWrite, Key: "k", Value: sim.TaggedValue{Value: "ok"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := good[4:]
	cases := map[string][]byte{
		"empty":        {},
		"short-header": payload[:5],
		"wrong-tag":    append([]byte{tagRequest}, payload[1:]...),
		"trailing":     append(append([]byte{}, payload...), 0xAA),
		"zero-count": func() []byte {
			p := append([]byte{}, payload...)
			binary.BigEndian.PutUint16(p[9:], 0)
			return p
		}(),
		"count-overrun": func() []byte {
			p := append([]byte{}, payload...)
			binary.BigEndian.PutUint16(p[9:], 7) // promises 7 items, carries 1
			return p
		}(),
		"key-overrun": func() []byte {
			p := append([]byte{}, payload...)
			// Inflate the declared key length past the actual bytes.
			binary.BigEndian.PutUint16(p[batchHeaderLen+13:], 5000)
			return p
		}(),
	}
	for name, p := range cases {
		if _, _, err := DecodeBatchRequest(p); err == nil {
			t.Errorf("%s: DecodeBatchRequest accepted malformed payload", name)
		}
	}
	if _, _, err := DecodeBatchResponse(payload); err == nil {
		t.Error("DecodeBatchResponse accepted a batch-request payload")
	}

	goodResp, err := AppendBatchResponse(nil, 9, []sim.Response{{OK: true}})
	if err != nil {
		t.Fatal(err)
	}
	rp := append([]byte{}, goodResp[4:]...)
	rp[batchHeaderLen] |= 0x80 // unknown flag bit
	if _, _, err := DecodeBatchResponse(rp); err == nil {
		t.Error("DecodeBatchResponse accepted unknown response flags")
	}
}

// FuzzDecodeBatchRequest asserts the v2 batch decoder never panics on
// arbitrary payloads, and that anything it does accept re-encodes to an
// identical frame — the same decode/re-encode identity the three v1
// fuzz targets pin. The corpus seeds version-negotiation edges too: a
// hello payload and a v1 request payload must both be rejected here.
func FuzzDecodeBatchRequest(f *testing.F) {
	for _, tc := range batchRequestCases {
		if len(tc.items) > 8 {
			continue // keep the seed corpus small
		}
		frame, err := AppendBatchRequest(nil, tc.id, tc.items)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	f.Add([]byte{})
	f.Add([]byte{tagBatchRequest})
	f.Add(AppendHello(nil, 2)[4:])
	f.Add(AppendHello(nil, 1)[4:])
	if v1, err := AppendRequest(nil, 3, 1, sim.Request{Op: sim.OpRead, ReaderID: 1}); err == nil {
		f.Add(v1[4:])
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		id, items, err := DecodeBatchRequest(payload)
		if err != nil {
			return
		}
		frame, err := AppendBatchRequest(nil, id, items)
		if err != nil {
			t.Fatalf("decoded batch fails to re-encode: %v", err)
		}
		if !bytes.Equal(frame[4:], payload) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", frame[4:], payload)
		}
	})
}

// FuzzDecodeBatchResponse is the response-side twin of
// FuzzDecodeBatchRequest.
func FuzzDecodeBatchResponse(f *testing.F) {
	for _, tc := range batchResponseCases {
		frame, err := AppendBatchResponse(nil, tc.id, tc.resps)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	f.Add([]byte{})
	f.Add([]byte{tagBatchResponse})
	f.Add(AppendHello(nil, 2)[4:])
	f.Fuzz(func(t *testing.T, payload []byte) {
		id, resps, err := DecodeBatchResponse(payload)
		if err != nil {
			return
		}
		frame, err := AppendBatchResponse(nil, id, resps)
		if err != nil {
			t.Fatalf("decoded batch fails to re-encode: %v", err)
		}
		if !bytes.Equal(frame[4:], payload) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", frame[4:], payload)
		}
	})
}

// FuzzDecodeHello pins the negotiation frame: decode never panics, and
// accepted payloads re-encode identically.
func FuzzDecodeHello(f *testing.F) {
	f.Add(AppendHello(nil, 1)[4:])
	f.Add(AppendHello(nil, 2)[4:])
	f.Add([]byte{tagHello, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		v, err := DecodeHello(payload)
		if err != nil {
			return
		}
		if !bytes.Equal(AppendHello(nil, v)[4:], payload) {
			t.Fatalf("re-encode mismatch for hello %d", v)
		}
	})
}
