package wire

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"bqs/internal/sim"
)

func TestControlRoundTrip(t *testing.T) {
	for _, behavior := range []sim.Behavior{
		sim.Correct, sim.Crashed, sim.ByzantineFabricate, sim.ByzantineStale, sim.ByzantineEquivocate,
	} {
		frame, err := AppendControl(nil, 42, 7, behavior)
		if err != nil {
			t.Fatalf("%v: %v", behavior, err)
		}
		// Strip the length prefix like ReadFrame would.
		id, server, got, err := DecodeControl(frame[4:])
		if err != nil {
			t.Fatalf("%v: %v", behavior, err)
		}
		if id != 42 || server != 7 || got != behavior {
			t.Fatalf("round trip (%d, %d, %v), want (42, 7, %v)", id, server, got, behavior)
		}
	}
}

func TestControlRejectsMalformed(t *testing.T) {
	if _, err := AppendControl(nil, 1, 0, sim.Behavior(99)); err == nil {
		t.Fatal("unknown behavior encoded")
	}
	good, err := AppendControl(nil, 1, 0, sim.Crashed)
	if err != nil {
		t.Fatal(err)
	}
	payload := good[4:]
	if _, _, _, err := DecodeControl(payload[:len(payload)-1]); err == nil {
		t.Fatal("truncated control decoded")
	}
	if _, _, _, err := DecodeControl(append(append([]byte(nil), payload...), 0)); err == nil {
		t.Fatal("oversized control decoded")
	}
	bad := append([]byte(nil), payload...)
	bad[0] = tagRequest
	if _, _, _, err := DecodeControl(bad); err == nil {
		t.Fatal("wrong tag decoded")
	}
	bad = append([]byte(nil), payload...)
	bad[13] = 0 // behavior byte below Correct
	if _, _, _, err := DecodeControl(bad); err == nil {
		t.Fatal("unknown behavior byte decoded")
	}
}

func FuzzDecodeControl(f *testing.F) {
	seed, err := AppendControl(nil, 99, 3, sim.ByzantineStale)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed[4:])
	f.Add([]byte{tagControl})
	f.Fuzz(func(t *testing.T, p []byte) {
		id, server, behavior, err := DecodeControl(p)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode to the identical payload.
		out, err := AppendControl(nil, id, server, behavior)
		if err != nil {
			t.Fatalf("decoded control did not re-encode: %v", err)
		}
		if string(out[4:]) != string(p) {
			t.Fatalf("re-encode mismatch: %x vs %x", out[4:], p)
		}
	})
}

// TestFlipOverLoopback drives the full remote-churn path: a control frame
// from Client.Flip must change the behavior of the replica on a live TCP
// shard, flips to recover must restore it, and flips for servers the
// shard does not host must error without killing the connection.
func TestFlipOverLoopback(t *testing.T) {
	replicas := map[int]*sim.Server{0: sim.NewServer(0), 1: sim.NewServer(1), 2: sim.NewServer(2)}
	srv := NewServer(replicas)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Close()
	addr := lis.Addr().String()

	cl, err := Dial(map[int]string{0: addr, 1: addr, 2: addr, 3: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	if err := cl.Flip(ctx, 1, sim.Crashed); err != nil {
		t.Fatalf("flip to crashed: %v", err)
	}
	if got := replicas[1].Behavior(); got != sim.Crashed {
		t.Fatalf("replica behavior = %v after remote flip", got)
	}
	// The crashed replica must answer probes with OK: false — the flip is
	// visible through the data path, not just the accessor.
	resp, err := cl.Invoke(ctx, 1, sim.Request{Op: sim.OpRead, ReaderID: 9})
	if err != nil || resp.OK {
		t.Fatalf("read from crashed replica = (%+v, %v), want OK: false", resp, err)
	}
	if err := cl.Flip(ctx, 1, sim.Correct); err != nil {
		t.Fatalf("flip to correct: %v", err)
	}
	resp, err = cl.Invoke(ctx, 1, sim.Request{Op: sim.OpRead, ReaderID: 9})
	if err != nil || !resp.OK {
		t.Fatalf("read from recovered replica = (%+v, %v), want OK: true", resp, err)
	}

	// Server 3 is routed here but not hosted: the shard answers OK: false
	// and Flip surfaces it as an error, leaving the connection usable.
	if err := cl.Flip(ctx, 3, sim.Crashed); err == nil || !strings.Contains(err.Error(), "not hosting") {
		t.Fatalf("flip of unhosted server = %v, want not-hosting error", err)
	}
	if err := cl.Flip(ctx, 4, sim.Crashed); err == nil {
		t.Fatal("flip of unrouted server succeeded")
	}
	if _, err := cl.Invoke(ctx, 0, sim.Request{Op: sim.OpRead}); err != nil {
		t.Fatalf("connection unusable after failed flips: %v", err)
	}

	// A cancelled context aborts instead of reporting a flip outcome.
	gone, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if err := cl.Flip(gone, 0, sim.Crashed); !errors.Is(err, context.Canceled) {
		t.Fatalf("flip with cancelled ctx = %v", err)
	}
}

// TestFlipUnreachableShard pins the miss contract: a flip whose shard is
// down must return an error promptly (so schedule drivers count a miss
// and move on), not hang or panic.
func TestFlipUnreachableShard(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close() // nothing is listening now

	cl, err := Dial(map[int]string{0: addr}, WithDialTimeout(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.Flip(ctx, 0, sim.Crashed); err == nil {
		t.Fatal("flip to dead address succeeded")
	}
}
