package wire

import (
	"fmt"
	"strings"

	"bqs/internal/sim"
)

// MaxIDRange bounds how many server indices one range spec may name. It
// is far above any universe this repo builds (the largest is ~10⁴
// servers); its job is turning a typo'd spec like "0-4294967295" into a
// diagnostic instead of a multi-gigabyte allocation.
const MaxIDRange = 1 << 20

// ParseIDRange parses a shard spec like "0-24" or "7" into the inclusive
// list of global server indices it names.
func ParseIDRange(spec string) ([]int, error) {
	lo, hi, err := parseRange(spec)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out, nil
}

// parseRange delegates the shared "lo-hi"/"id" syntax to sim's parser
// (fault schedules and churn specs use the identical form) and adds the
// wire-level size cap.
func parseRange(spec string) (lo, hi int, err error) {
	lo, hi, err = sim.ParseServerRange(spec)
	if err != nil {
		return 0, 0, fmt.Errorf("wire: bad id range %q (want \"lo-hi\" or \"id\")", spec)
	}
	if hi-lo+1 > MaxIDRange {
		return 0, 0, fmt.Errorf("wire: id range %q names %d servers, above the %d sanity cap", spec, hi-lo+1, MaxIDRange)
	}
	return lo, hi, nil
}

// ParseRoutes parses a route table spec of comma-separated
// "range=address" entries, e.g.
//
//	0-8=10.0.0.1:7000,9-16=10.0.0.2:7000,17-24=10.0.0.3:7000
//
// into the server-index → address map wire.Dial consumes. Ranges must not
// overlap.
func ParseRoutes(spec string) (map[int]string, error) {
	routes := make(map[int]string)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		rangeSpec, addr, ok := strings.Cut(entry, "=")
		if !ok || addr == "" {
			return nil, fmt.Errorf("wire: bad route %q (want \"lo-hi=host:port\")", entry)
		}
		ids, err := ParseIDRange(rangeSpec)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			if prev, dup := routes[id]; dup {
				return nil, fmt.Errorf("wire: server %d routed to both %s and %s", id, prev, addr)
			}
			routes[id] = addr
		}
	}
	if len(routes) == 0 {
		return nil, fmt.Errorf("wire: empty route spec %q", spec)
	}
	return routes, nil
}

// CheckCoverage verifies that routes assign an address to every server of
// an n-element universe — the footgun check a client should run before
// driving a quorum system whose selection assumes all of {0,…,n−1} exist.
func CheckCoverage(routes map[int]string, n int) error {
	var missing []int
	for i := 0; i < n; i++ {
		if _, ok := routes[i]; !ok {
			missing = append(missing, i)
			if len(missing) >= 8 {
				break
			}
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("wire: route table misses servers %v (universe size %d)", missing, n)
	}
	for id := range routes {
		if id >= n {
			return fmt.Errorf("wire: route for server %d outside universe of size %d", id, n)
		}
	}
	return nil
}
