package wire

import (
	"bytes"
	"math"
	"testing"

	"bqs/internal/reconfig"
	"bqs/internal/sim"
)

var reconfigFrameCases = []struct {
	name string
	id   uint64
	f    ReconfigFrame
}{
	{"announce-zero", 1, ReconfigFrame{Kind: ReconfigAnnounce, Epoch: 0}},
	{"announce-max", 2, ReconfigFrame{Kind: ReconfigAnnounce, Epoch: math.MaxUint64}},
	{"query", 3, ReconfigFrame{Kind: ReconfigQuery}},
	{"install-mgrid", 4, ReconfigFrame{Kind: ReconfigInstall,
		Rec: reconfig.Record{Epoch: 1, Kind: "mgrid", Universe: 36, B: 1}}},
	{"install-compose", 5, ReconfigFrame{Kind: ReconfigInstall,
		Rec: reconfig.Record{Epoch: 2, Kind: "compose", Universe: 25, B: 1, Outer: 5}}},
	{"install-extremes", math.MaxUint64, ReconfigFrame{Kind: ReconfigInstall,
		Rec: reconfig.Record{Epoch: math.MaxUint64, Kind: "threshold", Universe: reconfig.MaxUniverse, B: math.MaxUint16}}},
	{"state-record", 6, ReconfigFrame{Kind: ReconfigState,
		Rec: reconfig.Record{Epoch: 3, Kind: "wheel", Universe: 7}}},
	{"state-empty", 7, ReconfigFrame{Kind: ReconfigState}},
	{"wrongepoch-record", 8, ReconfigFrame{Kind: ReconfigWrongEpoch,
		Rec: reconfig.Record{Epoch: 4, Kind: "grid", Universe: 49, B: 2}}},
	{"wrongepoch-empty", 9, ReconfigFrame{Kind: ReconfigWrongEpoch}},
}

func TestReconfigFrameRoundTrip(t *testing.T) {
	for _, tc := range reconfigFrameCases {
		t.Run(tc.name, func(t *testing.T) {
			frame, err := AppendReconfig(nil, tc.id, tc.f)
			if err != nil {
				t.Fatal(err)
			}
			payload, err := ReadFrame(bytes.NewReader(frame), nil)
			if err != nil {
				t.Fatal(err)
			}
			id, f, err := DecodeReconfig(payload)
			if err != nil {
				t.Fatal(err)
			}
			if id != tc.id || f != tc.f {
				t.Fatalf("round trip mangled frame:\n got id=%d %+v\nwant id=%d %+v", id, f, tc.id, tc.f)
			}
		})
	}
}

func TestAppendReconfigRejects(t *testing.T) {
	cases := map[string]ReconfigFrame{
		"unknown-kind":  {Kind: ReconfigKind(99)},
		"zero-kind":     {Kind: ReconfigKind(0)},
		"empty-install": {Kind: ReconfigInstall}, // install must carry a record
		"bad-universe": {Kind: ReconfigInstall,
			Rec: reconfig.Record{Epoch: 1, Kind: "mgrid", Universe: reconfig.MaxUniverse + 1}},
		"bad-kind-name": {Kind: ReconfigInstall,
			Rec: reconfig.Record{Epoch: 1, Kind: "MGrid", Universe: 36}},
		"oversized-b": {Kind: ReconfigInstall,
			Rec: reconfig.Record{Epoch: 1, Kind: "threshold", Universe: reconfig.MaxUniverse, B: math.MaxUint16 + 1}},
		"bad-state-record": {Kind: ReconfigState,
			Rec: reconfig.Record{Epoch: 1, Kind: "", Universe: 36}},
	}
	for name, f := range cases {
		if _, err := AppendReconfig(nil, 1, f); err == nil {
			t.Errorf("%s: AppendReconfig accepted %+v", name, f)
		}
	}
}

func TestDecodeReconfigRejectsMalformed(t *testing.T) {
	install, err := AppendReconfig(nil, 9, ReconfigFrame{Kind: ReconfigInstall,
		Rec: reconfig.Record{Epoch: 1, Kind: "mgrid", Universe: 36, B: 1}})
	if err != nil {
		t.Fatal(err)
	}
	payload := install[4:]
	announce, err := AppendReconfig(nil, 9, ReconfigFrame{Kind: ReconfigAnnounce, Epoch: 5})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"short-header": payload[:5],
		"wrong-tag":    append([]byte{tagRequest}, payload[1:]...),
		"unknown-kind": func() []byte {
			p := append([]byte{}, payload...)
			p[9] = 99
			return p
		}(),
		"zero-kind": func() []byte {
			p := append([]byte{}, payload...)
			p[9] = 0
			return p
		}(),
		"install-empty-body": payload[:reconfigHeaderLen],
		"truncated-record":   payload[:reconfigHeaderLen+recordWireLen-1],
		"truncated-kindname": payload[:len(payload)-1],
		"trailing-bytes":     append(append([]byte{}, payload...), 0xAA),
		"zero-universe": func() []byte {
			p := append([]byte{}, payload...)
			p[reconfigHeaderLen+8], p[reconfigHeaderLen+9], p[reconfigHeaderLen+10], p[reconfigHeaderLen+11] = 0, 0, 0, 0
			return p
		}(),
		"uppercase-kindname": func() []byte {
			p := append([]byte{}, payload...)
			p[len(p)-5] = 'M'
			return p
		}(),
		"announce-short":    announce[4 : len(announce)-1],
		"announce-trailing": append(append([]byte{}, announce[4:]...), 0),
		"query-trailing":    {tagReconfig, 0, 0, 0, 0, 0, 0, 0, 1, byte(ReconfigQuery), 0xAA},
	}
	for name, p := range cases {
		if _, _, err := DecodeReconfig(p); err == nil {
			t.Errorf("%s: DecodeReconfig accepted malformed payload", name)
		}
	}
}

// FuzzReconfigFrame asserts the reconfig decoder never panics on
// arbitrary payloads and that anything it accepts re-encodes to an
// identical frame — the epoch plane keeps the decode/re-encode identity
// every other frame kind pins. Seeds cover all five kinds, the
// empty-body state/wrongepoch encoding of the zero record, and
// cross-kind payloads (hello, v1 request, v2 batch) that must be
// rejected here.
func FuzzReconfigFrame(f *testing.F) {
	for _, tc := range reconfigFrameCases {
		frame, err := AppendReconfig(nil, tc.id, tc.f)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	f.Add([]byte{})
	f.Add([]byte{tagReconfig})
	f.Add([]byte{tagReconfig, 0, 0, 0, 0, 0, 0, 0, 1, 99})
	f.Add(AppendHello(nil, 2)[4:])
	if v1, err := AppendRequest(nil, 3, 1, sim.Request{Op: sim.OpRead, ReaderID: 1}); err == nil {
		f.Add(v1[4:])
	}
	if batch, err := AppendBatchRequest(nil, 4, []sim.BatchItem{{Server: 0, Req: sim.Request{Op: sim.OpRead, Key: "k"}}}); err == nil {
		f.Add(batch[4:])
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		id, fr, err := DecodeReconfig(payload)
		if err != nil {
			return
		}
		frame, err := AppendReconfig(nil, id, fr)
		if err != nil {
			t.Fatalf("decoded reconfig frame fails to re-encode: %v", err)
		}
		if !bytes.Equal(frame[4:], payload) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", frame[4:], payload)
		}
	})
}
