package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bqs/internal/sim"
	"bqs/internal/systems"
)

// TestBatchedSessionOverLoopback runs keyed Session traffic over real
// TCP: an MGrid(4,1) universe split across two shards, concurrent
// sessions writing and reading distinct keys through batched v2 frames,
// with a Byzantine fabricator inside the masking bound. Every read must
// return the value written under its own key.
func TestBatchedSessionOverLoopback(t *testing.T) {
	sys, err := systems.NewMGrid(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	const b = 1 // 16-server universe, two shards of 8

	routes := make(map[int]string)
	replicas := make(map[int]*sim.Server)
	for _, ids := range [][]int{{0, 1, 2, 3, 4, 5, 6, 7}, {8, 9, 10, 11, 12, 13, 14, 15}} {
		reps := newReplicas(ids)
		addr, _ := startShard(t, reps)
		for id, rep := range reps {
			routes[id] = addr
			replicas[id] = rep
		}
	}
	replicas[5].SetBehavior(sim.ByzantineFabricate)

	tr, err := Dial(routes)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cluster, err := sim.NewCluster(sys, b,
		sim.WithTransport(func([]*sim.Server) sim.Transport { return tr }))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const clients, keysPer = 4, 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sess := cluster.NewClient(id).NewSession(sim.WithSessionBatch(8))
			defer sess.Close()
			writes := make([]*sim.WriteFuture, keysPer)
			for k := 0; k < keysPer; k++ {
				writes[k] = sess.WriteAsync(ctx, fmt.Sprintf("c%d/k%d", id, k), fmt.Sprintf("v%d-%d", id, k))
			}
			for k, f := range writes {
				if err := f.Wait(); err != nil {
					errs <- fmt.Errorf("client %d write k%d: %w", id, k, err)
					return
				}
			}
			reads := make([]*sim.ReadFuture, keysPer)
			for k := 0; k < keysPer; k++ {
				reads[k] = sess.ReadAsync(ctx, fmt.Sprintf("c%d/k%d", id, k))
			}
			for k, f := range reads {
				tv, err := f.Wait()
				if err != nil {
					errs <- fmt.Errorf("client %d read k%d: %w", id, k, err)
					return
				}
				if want := fmt.Sprintf("v%d-%d", id, k); tv.Value != want {
					errs <- fmt.Errorf("client %d key k%d: got %q want %q", id, k, tv.Value, want)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The keyed data really landed per key on the correct replicas.
	found := 0
	for _, rep := range replicas {
		if rep.Behavior() != sim.Correct {
			continue
		}
		if tv := rep.SnapshotKey("c0/k0"); tv.Value == "v0-0" {
			found++
		}
	}
	if found == 0 {
		t.Error("no correct replica holds key c0/k0 after the run")
	}
}

// TestWireBatchMixedServers exercises the shard fan-out directly: one
// batch frame carrying operations for several replicas of one shard,
// plus an item for a server the shard does not host, which must answer
// OK: false without disturbing its neighbors.
func TestWireBatchMixedServers(t *testing.T) {
	reps := newReplicas([]int{0, 1, 2})
	addr, _ := startShard(t, reps)
	tr, err := Dial(map[int]string{0: addr, 1: addr, 2: addr, 9: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tv := sim.TaggedValue{Value: "shared-frame", TS: sim.Timestamp{Seq: 1, Writer: 1}}
	items := []sim.BatchItem{
		{Server: 0, Req: sim.Request{Op: sim.OpWrite, Key: "a", Value: tv}},
		{Server: 1, Req: sim.Request{Op: sim.OpWrite, Key: "a", Value: tv}},
		{Server: 9, Req: sim.Request{Op: sim.OpRead, Key: "a", ReaderID: 1}}, // not hosted
		{Server: 2, Req: sim.Request{Op: sim.OpWrite, Key: "a", Value: tv}},
	}
	resps, err := tr.InvokeBatch(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []bool{true, true, false, true} {
		if resps[i].OK != want {
			t.Errorf("item %d: OK=%v, want %v", i, resps[i].OK, want)
		}
	}
	for _, id := range []int{0, 1, 2} {
		if got := reps[id].SnapshotKey("a"); got != tv {
			t.Errorf("replica %d stored %+v, want %+v", id, got, tv)
		}
	}

	// An unrouted server is an abort, exactly as in Invoke.
	if _, err := tr.InvokeBatch(ctx, []sim.BatchItem{{Server: 77, Req: sim.Request{Op: sim.OpRead}}}); err == nil {
		t.Error("InvokeBatch accepted an unrouted server")
	}
}

// TestWireBatchFailFast is the regression test for batched frames
// failing fast as a unit: a batch to a dead shard pays ONE connection
// attempt for the whole frame — not one per operation — and while the
// redial backoff holds, further batches answer immediately off the gate.
func TestWireBatchFailFast(t *testing.T) {
	// A shard that accepts and instantly hangs up: every op that dials
	// individually would burn its own accept, so the accept count is a
	// direct measurement of how many connection attempts the batch cost.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	var accepts atomic.Int64
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			nc.Close()
		}
	}()

	routes := map[int]string{}
	items := make([]sim.BatchItem, 32)
	for i := range items {
		routes[i] = addr
		items[i] = sim.BatchItem{Server: i, Req: sim.Request{Op: sim.OpRead, Key: "k", ReaderID: 1}}
	}
	tr, err := Dial(routes, WithRedialBackoff(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resps, err := tr.InvokeBatch(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if r.OK {
			t.Fatalf("item %d answered OK from a dead shard", i)
		}
	}
	// The whole 32-op frame must have cost one connection attempt (allow
	// one extra for an unlucky teardown/redial race), not one per op.
	if got := accepts.Load(); got > 2 {
		t.Errorf("32-op batch to a dying shard cost %d connection attempts; want 1 (fail fast as a unit)", got)
	}

	// Kill the listener: the next attempt is a genuine dial failure, which
	// arms the hour-long backoff...
	lis.Close()
	if _, err := tr.InvokeBatch(ctx, items); err != nil {
		t.Fatal(err)
	}
	// ...and inside the backoff window the gate answers the whole batch at
	// once, with no network activity at all.
	start := time.Now()
	if _, err := tr.InvokeBatch(ctx, items); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("backoff-gated batch took %v; want immediate", elapsed)
	}
}

// serveV1 emulates an old (pre-v2) daemon: request and control frames
// are answered, anything else — a hello, a batch frame — kills the
// connection, which is exactly what the v1 serveConn did with an
// unknown tag.
func serveV1(t *testing.T, reps map[int]*sim.Server) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				var buf []byte
				for {
					frame, err := ReadFrame(nc, buf)
					if err != nil {
						return
					}
					buf = frame
					if len(frame) == 0 || frame[0] != tagRequest {
						return // v1 server: unknown frame kind drops the conn
					}
					id, server, req, err := DecodeRequest(frame)
					if err != nil {
						return
					}
					resp := sim.Response{OK: false}
					if rep, ok := reps[int(server)]; ok {
						if r, err := rep.HandleRequest(req); err == nil {
							resp = r
						}
					}
					out, _ := AppendResponse(nil, id, resp)
					if _, err := nc.Write(out); err != nil {
						return
					}
				}
			}(nc)
		}
	}()
	return lis.Addr().String()
}

// TestWireVersionNegotiation pins the interop edges of the connect-time
// hello:
//
//   - a WithVersion(1) client against a v2 server: keyless single
//     frames work, keyed operations answer OK: false (the v1 frame
//     cannot carry a key), batches fall back to pipelined singles;
//   - a v2 client against a v1 server: the hello kills the connection,
//     which reads as a crashed shard (OK: false), never a hang or a
//     wrong answer.
func TestWireVersionNegotiation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	t.Run("v1-client-v2-server", func(t *testing.T) {
		reps := newReplicas([]int{0, 1})
		addr, _ := startShard(t, reps)
		tr, err := Dial(map[int]string{0: addr, 1: addr}, WithVersion(1))
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()

		tv := sim.TaggedValue{Value: "legacy", TS: sim.Timestamp{Seq: 1, Writer: 0}}
		resp, err := tr.Invoke(ctx, 0, sim.Request{Op: sim.OpWrite, Value: tv})
		if err != nil || !resp.OK {
			t.Fatalf("keyless v1 write: resp=%+v err=%v", resp, err)
		}
		resp, err = tr.Invoke(ctx, 0, sim.Request{Op: sim.OpRead, ReaderID: 1})
		if err != nil || !resp.OK || resp.Value != tv {
			t.Fatalf("keyless v1 read: resp=%+v err=%v", resp, err)
		}
		// Keyed operation: no frame for it at v1 — reads as crashed.
		resp, err = tr.Invoke(ctx, 0, sim.Request{Op: sim.OpRead, Key: "k", ReaderID: 1})
		if err != nil {
			t.Fatalf("keyed op on v1 conn must not error, got %v", err)
		}
		if resp.OK {
			t.Fatal("keyed op on v1 conn answered OK")
		}
		// Batch: falls back to pipelined singles; keyed item stays OK: false.
		resps, err := tr.InvokeBatch(ctx, []sim.BatchItem{
			{Server: 0, Req: sim.Request{Op: sim.OpRead, ReaderID: 1}},
			{Server: 1, Req: sim.Request{Op: sim.OpRead, Key: "k", ReaderID: 1}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !resps[0].OK || resps[0].Value != tv {
			t.Errorf("batch fallback keyless item: %+v", resps[0])
		}
		if resps[1].OK {
			t.Error("batch fallback keyed item answered OK on a v1 connection")
		}
	})

	t.Run("v2-client-v1-server", func(t *testing.T) {
		reps := newReplicas([]int{0})
		addr := serveV1(t, reps)
		tr, err := Dial(map[int]string{0: addr})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()

		// The hello kills the conn; the op must come back OK: false
		// promptly (a crash signal), not hang on the dead exchange.
		opCtx, opCancel := context.WithTimeout(ctx, 5*time.Second)
		defer opCancel()
		resp, err := tr.Invoke(opCtx, 0, sim.Request{Op: sim.OpRead, Key: "k", ReaderID: 1})
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("unexpected error: %v", err)
		}
		if err != nil {
			t.Fatal("keyed op against a v1 server hung until the deadline instead of failing fast")
		}
		if resp.OK {
			t.Fatal("keyed op against a v1 server answered OK")
		}
	})
}
