package wire

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"

	"bqs/internal/obs"
	"bqs/internal/reconfig"
	"bqs/internal/sim"
)

// ErrServerClosed is returned by Serve and ListenAndServe after Shutdown
// or Close, mirroring net/http's contract.
var ErrServerClosed = errors.New("wire: server closed")

// Server hosts a shard of the universe: a set of sim.Server replicas,
// keyed by their global server index, reachable over TCP. Connections are
// handled concurrently, and each request on a connection is served in its
// own goroutine, so a pipelining client sees true parallelism even over a
// single socket. Replica behavior (crash and Byzantine fault injection)
// stays the business of the underlying sim.Server objects.
type Server struct {
	replicas map[int]*sim.Server
	met      *wireMetrics

	// epochMu guards the installed configuration record. Request
	// handlers on epoch-announced connections hold the read side for the
	// whole replica operation, so an install (exclusive) doubles as the
	// shard's drain: it waits out in-flight gated work, merges replica
	// state on a quiesced shard, and every request admitted afterwards
	// sees the new epoch. rec is zero until the first install — the
	// shard then runs whatever configuration it booted with, at epoch 0.
	epochMu sync.RWMutex
	rec     reconfig.Record

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool

	inflight sync.WaitGroup // outstanding request handlers, for Shutdown
}

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithServerMetrics wires the daemon into an obs.Registry: frames and
// bytes in each direction, batch-frame op counts, negotiated-version
// counts, and a live open-connection gauge. A nil registry is a no-op.
func WithServerMetrics(reg *obs.Registry) ServerOption {
	return func(s *Server) {
		if reg == nil {
			return
		}
		s.met = newWireMetrics(reg, "server")
		reg.GaugeFunc("bqs_wire_open_conns_count", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.conns))
		})
	}
}

// NewServer returns a Server hosting the given replicas. The map is
// copied; mutate replica behavior through the *sim.Server values.
func NewServer(replicas map[int]*sim.Server, opts ...ServerOption) *Server {
	m := make(map[int]*sim.Server, len(replicas))
	for id, s := range replicas {
		m[id] = s
	}
	srv := &Server{
		replicas:  m,
		met:       &wireMetrics{},
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	for _, opt := range opts {
		opt(srv)
	}
	return srv
}

// Replica returns the hosted replica with the given global index, or nil.
func (s *Server) Replica(id int) *sim.Server { return s.replicas[id] }

// IDs returns the global indices this server hosts, in no particular
// order.
func (s *Server) IDs() []int {
	out := make([]int, 0, len(s.replicas))
	for id := range s.replicas {
		out = append(out, id)
	}
	return out
}

// ListenAndServe listens on addr ("host:port") and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Serve accepts connections on lis until Shutdown or Close, handling each
// in its own goroutine. It always returns a non-nil error; after a clean
// shutdown that error is ErrServerClosed.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return ErrServerClosed
	}
	s.listeners[lis] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, lis)
		s.mu.Unlock()
		lis.Close()
	}()
	for {
		nc, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return ErrServerClosed
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(nc)
	}
}

// serveConn reads request, batch, control and hello frames and answers
// them. Version negotiation is stateless on this side: a hello is
// answered with min(ProtoVersion, client's version), and every frame
// kind is accepted at any time — a connection that never says hello is
// simply a v1 peer sending v1 frames. A malformed frame is a protocol
// error: the connection is dropped (a well-behaved peer never sends one,
// and there is no way to re-synchronize a corrupt stream).
func (s *Server) serveConn(nc net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		nc.Close()
	}()
	var wmu sync.Mutex // serializes response frames from concurrent handlers
	bw := bufio.NewWriter(nc)
	br := bufio.NewReader(nc)
	send := func(out []byte) {
		wmu.Lock()
		_, werr := bw.Write(out)
		if werr == nil {
			werr = bw.Flush()
		}
		wmu.Unlock()
		if werr != nil {
			nc.Close() // unblocks the read loop
			return
		}
		s.met.framesOut.Inc()
		s.met.bytesOut.Add(int64(len(out)))
	}
	// The connection's announced epoch: set by an announce frame, unset
	// until then. Announce frames are processed in stream order on this
	// loop, so every request frame is gated at the epoch announced
	// before it; handlers capture the values by copy since they run on
	// their own goroutines.
	var announced uint64
	var annSet bool
	var buf []byte
	for {
		frame, err := ReadFrame(br, buf)
		if err != nil {
			return
		}
		buf = frame
		s.met.framesIn.Inc()
		s.met.bytesIn.Add(int64(len(frame)) + 4) // +4: the length prefix is wire bytes too
		var encode func() []byte                 // deferred so it runs on the handler goroutine
		switch frame[0] {
		case tagHello:
			cv, err := DecodeHello(frame)
			if err != nil {
				return
			}
			s.met.connNegotiated(min(ProtoVersion, int(cv)))
			send(AppendHello(nil, byte(min(ProtoVersion, int(cv)))))
			continue
		case tagReconfig:
			recID, rf, err := DecodeReconfig(frame)
			if err != nil {
				return
			}
			switch rf.Kind {
			case ReconfigAnnounce:
				announced, annSet = rf.Epoch, true
				continue // no reply; the next frames are gated at this epoch
			case ReconfigInstall:
				rec := rf.Rec
				encode = func() []byte {
					out, err := AppendReconfig(nil, recID, ReconfigFrame{Kind: ReconfigState, Rec: s.install(rec)})
					if err != nil {
						out, _ = AppendResponse(nil, recID, sim.Response{OK: false})
					}
					return out
				}
			case ReconfigQuery:
				encode = func() []byte {
					cur, _ := s.CurrentRecord()
					// A zero record travels as an empty state body: "no
					// install yet".
					out, err := AppendReconfig(nil, recID, ReconfigFrame{Kind: ReconfigState, Rec: cur})
					if err != nil {
						out, _ = AppendResponse(nil, recID, sim.Response{OK: false})
					}
					return out
				}
			default:
				return // state/wrongepoch are server→client only: protocol error
			}
		case tagRequest:
			reqID, server, req, err := DecodeRequest(frame)
			if err != nil {
				return
			}
			ann, set := announced, annSet
			encode = func() []byte {
				return s.gated(set, ann, reqID, func() []byte {
					out, err := AppendResponse(nil, reqID, s.handle(server, req))
					if err != nil {
						// A response that cannot be encoded (oversized value from
						// a Byzantine replica) degrades to unresponsiveness.
						out, _ = AppendResponse(nil, reqID, sim.Response{OK: false})
					}
					return out
				})
			}
		case tagBatchRequest:
			batchID, items, err := DecodeBatchRequest(frame)
			if err != nil {
				return
			}
			ann, set := announced, annSet
			encode = func() []byte {
				return s.gated(set, ann, batchID, func() []byte {
					// handleBatch guarantees the responses fit one frame, so
					// this encode cannot fail.
					out, _ := AppendBatchResponse(nil, batchID, s.handleBatch(items))
					return out
				})
			}
		case tagControl:
			ctlID, server, behavior, err := DecodeControl(frame)
			if err != nil {
				return
			}
			encode = func() []byte {
				out, _ := AppendResponse(nil, ctlID, s.control(server, behavior))
				return out
			}
		default:
			return // unknown frame kind: protocol error
		}
		if !s.beginRequest() {
			return // shutting down: stop consuming new frames
		}
		go func() {
			defer s.inflight.Done()
			send(encode())
		}()
	}
}

// handleBatch fans a batch frame across the shard's replicas: each item
// is dispatched to the replica hosting its server — concurrently, because
// a durable replica may park an item on its store's group commit, and
// serializing the frame would turn one fsync per frame into one per item
// — and the responses align index-by-index with the items. An item for a
// server this shard does not host — or one whose value cannot travel
// back — answers Response{OK: false}, per item, exactly as the
// single-frame path does; degradation is always per item, never per
// frame, so one huge stored value cannot make the shard's other replicas
// read as crashed. The returned responses are guaranteed to fit one
// frame: values are dropped item by item once the running total would
// exceed MaxFrame (the flags+header floor of every item fits MaxBatchOps
// many times over).
func (s *Server) handleBatch(items []sim.BatchItem) []sim.Response {
	s.met.batchOps.Observe(float64(len(items)))
	out := make([]sim.Response, len(items))
	var wg sync.WaitGroup
	for i, it := range items {
		if it.Server < 0 {
			continue // out[i] stays Response{OK: false}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = s.handle(uint32(it.Server), it.Req)
		}()
	}
	wg.Wait()
	total := batchHeaderLen
	for i, resp := range out {
		if len(resp.Value.Value) > MaxValueLen || total+respItemMinLen+len(resp.Value.Value) > MaxFrame {
			resp = sim.Response{OK: false}
			out[i] = resp
		}
		total += respItemMinLen + len(resp.Value.Value)
	}
	return out
}

// beginRequest registers an in-flight request handler, refusing once
// shutdown has begun. Gating the Add on s.closed under the mutex keeps
// inflight.Add from racing Shutdown's inflight.Wait — the sync.WaitGroup
// documentation forbids an Add from zero concurrent with a Wait.
func (s *Server) beginRequest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.inflight.Add(1)
	return true
}

// handle applies one request to the addressed replica. A request for a
// server this shard does not host answers Response{OK: false}: to the
// client that is indistinguishable from a crash, which is the correct
// suspicion signal for a misconfigured route.
func (s *Server) handle(server uint32, req sim.Request) sim.Response {
	rep, ok := s.replicas[int(server)]
	if !ok {
		return sim.Response{OK: false}
	}
	resp, err := rep.HandleRequest(req)
	if err != nil {
		return sim.Response{OK: false}
	}
	return resp
}

// CurrentRecord returns the shard's installed configuration record; ok
// is false while the shard still runs its boot configuration (epoch 0,
// nothing installed yet).
func (s *Server) CurrentRecord() (reconfig.Record, bool) {
	s.epochMu.RLock()
	defer s.epochMu.RUnlock()
	return s.rec, s.rec.Epoch != 0
}

// install adopts rec if it is news and returns the shard's (possibly
// updated) record; a record at or behind the shard's epoch acks without
// changing state, which is what makes the coordinator's per-shard fan-
// out idempotent. The exclusive lock doubles as the shard's drain:
// in-flight gated requests hold the read side, so the merge below runs
// on a quiesced shard and every request admitted afterwards is gated
// at the new epoch.
func (s *Server) install(rec reconfig.Record) reconfig.Record {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	if rec.Epoch <= s.rec.Epoch {
		return s.rec
	}
	s.rec = rec
	s.mergeReplicasLocked(rec.Universe)
	return s.rec
}

// mergeReplicasLocked hands the shard's keyed state to the replicas
// that remain in the new universe: the newest stored value of every key
// across all hosted replicas is written to each hosted replica with
// id < universe that holds something older — the shard-local half of
// the cluster handoff. Reading stored state (not asking the replicas)
// sidesteps Byzantine reply behaviors, which corrupt answers, not
// registers; completing a partially-written value is legal for the
// safe register — the write happened, the merge finishes its
// propagation. Called with epochMu held exclusively.
func (s *Server) mergeReplicasLocked(universe int) {
	best := make(map[string]sim.TaggedValue)
	for _, rep := range s.replicas {
		for _, key := range rep.Keys() {
			tv := rep.SnapshotKey(key)
			if cur, ok := best[key]; !ok || cur.TS.Less(tv.TS) {
				best[key] = tv
			}
		}
	}
	for key, tv := range best {
		for id, rep := range s.replicas {
			if id < universe && rep.SnapshotKey(key).TS.Less(tv.TS) {
				rep.HandleWrite(key, tv)
			}
		}
	}
}

// gated runs one request handler under the epoch gate. Connections
// that announced an epoch are served only while it is the shard's
// current one — the work runs under the epoch read-lock, so it cannot
// straddle an install — and a mismatch answers a wrongepoch frame
// carrying the shard's record (the retriable OK: false signal on the
// client side, never an abort). Connections that never announced are
// served ungated, exactly like v1 peers.
func (s *Server) gated(annSet bool, announced, id uint64, work func() []byte) []byte {
	if !annSet {
		return work()
	}
	s.epochMu.RLock()
	defer s.epochMu.RUnlock()
	if announced != s.rec.Epoch {
		s.met.wrongEpoch.Inc()
		out, err := AppendReconfig(nil, id, ReconfigFrame{Kind: ReconfigWrongEpoch, Rec: s.rec})
		if err != nil {
			out, _ = AppendResponse(nil, id, sim.Response{OK: false})
		}
		return out
	}
	return work()
}

// control applies a remote behavior flip to the addressed replica — the
// server half of the churn engine's fault-injection channel, which is how
// a sim.FaultController behind a wire.Client crashes and recovers remote
// servers mid-run. A flip for a server this shard does not host answers
// Response{OK: false}, so the driver learns the route was wrong without
// the connection dying.
func (s *Server) control(server uint32, behavior sim.Behavior) sim.Response {
	rep, ok := s.replicas[int(server)]
	if !ok {
		return sim.Response{OK: false}
	}
	rep.SetBehavior(behavior)
	return sim.Response{OK: true}
}

// Shutdown gracefully stops the server: it closes the listeners (so Serve
// returns ErrServerClosed), waits for in-flight requests to drain, then
// closes the connections. If ctx expires first the remaining connections
// are closed immediately and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	for lis := range s.listeners {
		lis.Close()
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.closeConns()
	return err
}

// Close force-closes the listeners and every open connection.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for lis := range s.listeners {
		lis.Close()
	}
	s.mu.Unlock()
	s.closeConns()
	return nil
}

func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for nc := range s.conns {
		nc.Close()
	}
}
