package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"bqs/internal/sim"
	"bqs/internal/systems"
)

// startShard serves the given replicas on a fresh loopback listener and
// returns its address. The server is shut down when the test ends.
func startShard(t *testing.T, replicas map[int]*sim.Server) (string, *Server) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(replicas)
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	return lis.Addr().String(), srv
}

// newReplicas builds fresh sim.Servers for the given global ids.
func newReplicas(ids []int) map[int]*sim.Server {
	m := make(map[int]*sim.Server, len(ids))
	for _, id := range ids {
		m[id] = sim.NewServer(id)
	}
	return m
}

// TestLoopbackMGridCluster is the acceptance scenario: an MGrid(5,1)
// universe (25 servers, masking b = 1) sharded across three TCP servers
// on loopback, with one crashed and b Byzantine replicas injected
// server-side. Concurrent clients read and write the replicated variable
// through wire.Dial transports; masking must hold exactly as over the
// in-memory transport — no read ever surfaces a fabricated value.
func TestLoopbackMGridCluster(t *testing.T) {
	sys, err := systems.NewMGrid(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	const b = 1
	n := sys.UniverseSize() // 25

	// Shard the universe across three daemons: 0-8, 9-16, 17-24.
	shards := [][]int{}
	for lo := 0; lo < n; lo += 9 {
		hi := lo + 9
		if hi > n {
			hi = n
		}
		ids := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			ids = append(ids, i)
		}
		shards = append(shards, ids)
	}
	routes := make(map[int]string)
	replicas := make(map[int]*sim.Server)
	for _, ids := range shards {
		reps := newReplicas(ids)
		addr, _ := startShard(t, reps)
		for id, rep := range reps {
			routes[id] = addr
			replicas[id] = rep
		}
	}
	if err := CheckCoverage(routes, n); err != nil {
		t.Fatal(err)
	}

	// Fault injection happens on the server side, as it would in a real
	// deployment: one crash plus b fabricators, in different shards.
	replicas[3].SetBehavior(sim.Crashed)
	replicas[12].SetBehavior(sim.ByzantineFabricate)

	tr, err := Dial(routes)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cluster, err := sim.NewCluster(sys, b,
		sim.WithTransport(func([]*sim.Server) sim.Transport { return tr }))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const clients, ops = 4, 12
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := cluster.NewClient(id)
			for op := 0; op < ops; op++ {
				if op%2 == 0 {
					if err := cl.Write(ctx, fmt.Sprintf("c%d-op%d", id, op)); err != nil {
						errs <- fmt.Errorf("client %d write %d: %w", id, op, err)
						return
					}
					continue
				}
				tv, err := cl.Read(ctx)
				if err != nil && !errors.Is(err, sim.ErrNoCandidate) {
					errs <- fmt.Errorf("client %d read %d: %w", id, op, err)
					return
				}
				if err == nil && strings.HasPrefix(tv.Value, sim.FabricatedValue) {
					errs <- fmt.Errorf("client %d read %d surfaced fabricated value %q", id, op, tv.Value)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// A final read must return one of the written values, vouched past the
	// masking bound, through real sockets.
	tv, err := cluster.NewClient(99).Read(ctx)
	if err != nil {
		t.Fatalf("final read: %v", err)
	}
	if !strings.HasPrefix(tv.Value, "c") {
		t.Fatalf("final read returned %q, want a client-written value", tv.Value)
	}
	if peak := cluster.PeakLoad(); peak <= 0 || peak > 1 {
		t.Fatalf("peak load %v outside (0,1]", peak)
	}
}

// TestWireReconnect kills one shard mid-run (its single server starts
// answering OK: false, so quorums re-select around it), then restarts it
// on the same address and verifies the client transport re-establishes
// the connection and uses the server again.
func TestWireReconnect(t *testing.T) {
	sys, err := systems.NewMaskingThreshold(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Shard A: servers 0-3; shard B: server 4, on its own daemon.
	repsA := newReplicas([]int{0, 1, 2, 3})
	addrA, _ := startShard(t, repsA)
	lisB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := lisB.Addr().String()
	srvB := NewServer(newReplicas([]int{4}))
	go srvB.Serve(lisB)

	routes := map[int]string{0: addrA, 1: addrA, 2: addrA, 3: addrA, 4: addrB}
	tr, err := Dial(routes, WithRedialBackoff(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cluster, err := sim.NewCluster(sys, 1,
		sim.WithTransport(func([]*sim.Server) sim.Transport { return tr }))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	cl := cluster.NewClient(1)
	if err := cl.Write(ctx, "before"); err != nil {
		t.Fatalf("write with all shards up: %v", err)
	}

	// Kill shard B. Probes to server 4 now answer OK: false; the 4-of-5
	// quorums that avoid it keep the register available.
	srvB.Close()
	if resp, err := tr.Invoke(ctx, 4, sim.Request{Op: sim.OpRead, ReaderID: 1}); err != nil || resp.OK {
		t.Fatalf("probe to killed shard: resp=%+v err=%v, want OK:false and nil error", resp, err)
	}
	if err := cl.Write(ctx, "during"); err != nil {
		t.Fatalf("write with shard B down: %v", err)
	}

	// Restart shard B on the same address with a fresh replica. After the
	// redial backoff the transport must reconnect transparently.
	lisB2, err := net.Listen("tcp", addrB)
	if err != nil {
		t.Fatalf("rebind %s: %v", addrB, err)
	}
	srvB2 := NewServer(newReplicas([]int{4}))
	go srvB2.Serve(lisB2)
	defer srvB2.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := tr.Invoke(ctx, 4, sim.Request{Op: sim.OpRead, ReaderID: 1})
		if err != nil {
			t.Fatalf("probe to restarted shard: %v", err)
		}
		if resp.OK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("transport never reconnected to the restarted shard")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cl.Write(ctx, "after"); err != nil {
		t.Fatalf("write after restart: %v", err)
	}
	tv, err := cluster.NewClient(2).Read(ctx)
	if err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if tv.Value != "after" {
		t.Fatalf("read %q, want %q", tv.Value, "after")
	}
}

// TestWirePipelining verifies many concurrent operations share one
// connection: pool size 1, many goroutines, all must complete.
func TestWirePipelining(t *testing.T) {
	reps := newReplicas([]int{0})
	addr, _ := startShard(t, reps)
	tr, err := Dial(map[int]string{0: addr}, WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const goroutines, perG = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tv := sim.TaggedValue{Value: "v", TS: sim.Timestamp{Seq: int64(g*perG + i), Writer: g}}
				resp, err := tr.Invoke(ctx, 0, sim.Request{Op: sim.OpWrite, Value: tv})
				if err != nil || !resp.OK {
					errs <- fmt.Errorf("goroutine %d op %d: resp=%+v err=%v", g, i, resp, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if tv := reps[0].Snapshot(); tv.TS.Seq != goroutines*perG-1 {
		t.Fatalf("server saw highest seq %d, want %d", tv.TS.Seq, goroutines*perG-1)
	}
}

// TestWireInvokeContract pins the transport error contract: ctx done is
// an error, unrouted servers are an error, probes to a live daemon for a
// server it does not host are OK: false (suspicion, not abort).
func TestWireInvokeContract(t *testing.T) {
	addr, _ := startShard(t, newReplicas([]int{0}))
	tr, err := Dial(map[int]string{0: addr, 1: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ctx := context.Background()

	if _, err := tr.Invoke(ctx, 9, sim.Request{Op: sim.OpRead}); err == nil {
		t.Fatal("Invoke on an unrouted server must abort with an error")
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := tr.Invoke(canceled, 0, sim.Request{Op: sim.OpRead}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Invoke with done ctx: err=%v, want context.Canceled", err)
	}
	// Server 1 is routed to a daemon that hosts only server 0: misroutes
	// read as crashes so quorum re-selection can work around them.
	resp, err := tr.Invoke(ctx, 1, sim.Request{Op: sim.OpRead})
	if err != nil || resp.OK {
		t.Fatalf("misrouted probe: resp=%+v err=%v, want OK:false and nil error", resp, err)
	}
	// An undefined opcode is rejected by the replica, not the stream.
	resp, err = tr.Invoke(ctx, 0, sim.Request{Op: sim.Op(99)})
	if err != nil || resp.OK {
		t.Fatalf("unknown-op probe: resp=%+v err=%v, want OK:false and nil error", resp, err)
	}
	// The connection survived all of the above.
	resp, err = tr.Invoke(ctx, 0, sim.Request{Op: sim.OpRead})
	if err != nil || !resp.OK {
		t.Fatalf("healthy probe after misroutes: resp=%+v err=%v", resp, err)
	}
}

// TestServerGracefulShutdown verifies Shutdown unblocks Serve with
// ErrServerClosed, drains in-flight work, and leaves the address
// rebindable.
func TestServerGracefulShutdown(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(newReplicas([]int{0}))
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	tr, err := Dial(map[int]string{0: lis.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ctx := context.Background()
	if resp, err := tr.Invoke(ctx, 0, sim.Request{Op: sim.OpRead}); err != nil || !resp.OK {
		t.Fatalf("probe before shutdown: resp=%+v err=%v", resp, err)
	}

	sdCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sdCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if !errors.Is(err, ErrServerClosed) {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	// The shut-down server now reads as crashed.
	if resp, err := tr.Invoke(ctx, 0, sim.Request{Op: sim.OpRead}); err != nil || resp.OK {
		t.Fatalf("probe after shutdown: resp=%+v err=%v, want OK:false", resp, err)
	}
	// And its address is immediately reusable.
	lis2, err := net.Listen("tcp", lis.Addr().String())
	if err != nil {
		t.Fatalf("rebind after shutdown: %v", err)
	}
	lis2.Close()
}

// TestServerRejectsGarbage verifies a malformed stream just drops the
// connection without wedging the server.
func TestServerRejectsGarbage(t *testing.T) {
	addr, _ := startShard(t, newReplicas([]int{0}))
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("server answered a garbage frame instead of dropping the connection")
	}
	nc.Close()
	// The server still serves well-formed clients.
	tr, err := Dial(map[int]string{0: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if resp, err := tr.Invoke(context.Background(), 0, sim.Request{Op: sim.OpRead}); err != nil || !resp.OK {
		t.Fatalf("probe after garbage conn: resp=%+v err=%v", resp, err)
	}
}
