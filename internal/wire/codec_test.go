package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"

	"bqs/internal/sim"
)

var requestCases = []struct {
	name   string
	id     uint64
	server uint32
	req    sim.Request
}{
	{"zero", 0, 0, sim.Request{}},
	{"read", 7, 3, sim.Request{Op: sim.OpRead, ReaderID: 42}},
	{"read-timestamps", 1, 1021, sim.Request{Op: sim.OpReadTimestamps, ReaderID: -1}},
	{"write", math.MaxUint64, math.MaxUint32, sim.Request{
		Op:    sim.OpWrite,
		Value: sim.TaggedValue{Value: "hello", TS: sim.Timestamp{Seq: 9, Writer: 2}},
	}},
	{"write-negative-writer", 5, 0, sim.Request{
		Op:    sim.OpWrite,
		Value: sim.TaggedValue{Value: "x", TS: sim.Timestamp{Seq: 1 << 40, Writer: -1}},
	}},
	{"write-extremes", 6, 1, sim.Request{
		Op:       sim.OpWrite,
		ReaderID: math.MinInt32,
		Value:    sim.TaggedValue{Value: "\x00\xff\xfe utf8 ✓", TS: sim.Timestamp{Seq: math.MinInt64, Writer: math.MaxInt32}},
	}},
	{"write-empty-value", 8, 2, sim.Request{
		Op:    sim.OpWrite,
		Value: sim.TaggedValue{TS: sim.Timestamp{Seq: math.MaxInt64, Writer: math.MinInt32}},
	}},
	{"write-large-value", 9, 3, sim.Request{
		Op:    sim.OpWrite,
		Value: sim.TaggedValue{Value: strings.Repeat("v", 1<<16), TS: sim.Timestamp{Seq: 2, Writer: 0}},
	}},
}

func TestRequestRoundTrip(t *testing.T) {
	for _, tc := range requestCases {
		t.Run(tc.name, func(t *testing.T) {
			frame, err := AppendRequest(nil, tc.id, tc.server, tc.req)
			if err != nil {
				t.Fatal(err)
			}
			payload, err := ReadFrame(bytes.NewReader(frame), nil)
			if err != nil {
				t.Fatal(err)
			}
			id, server, req, err := DecodeRequest(payload)
			if err != nil {
				t.Fatal(err)
			}
			if id != tc.id || server != tc.server || req != tc.req {
				t.Fatalf("round trip mangled message:\n got (%d, %d, %+v)\nwant (%d, %d, %+v)",
					id, server, req, tc.id, tc.server, tc.req)
			}
		})
	}
}

var responseCases = []struct {
	name string
	id   uint64
	resp sim.Response
}{
	{"zero", 0, sim.Response{}},
	{"unresponsive", 3, sim.Response{OK: false}},
	{"ok-empty", 4, sim.Response{OK: true}},
	{"ok-value", 5, sim.Response{OK: true, Value: sim.TaggedValue{Value: "v", TS: sim.Timestamp{Seq: 12, Writer: 3}}}},
	{"fabricated", 6, sim.Response{OK: true, Value: sim.TaggedValue{Value: sim.FabricatedValue, TS: sim.Timestamp{Seq: 1 << 40, Writer: -1}}}},
	{"extremes", math.MaxUint64, sim.Response{OK: true, Value: sim.TaggedValue{Value: strings.Repeat("\xff", 999), TS: sim.Timestamp{Seq: math.MinInt64, Writer: math.MinInt32}}}},
}

func TestResponseRoundTrip(t *testing.T) {
	for _, tc := range responseCases {
		t.Run(tc.name, func(t *testing.T) {
			frame, err := AppendResponse(nil, tc.id, tc.resp)
			if err != nil {
				t.Fatal(err)
			}
			payload, err := ReadFrame(bytes.NewReader(frame), nil)
			if err != nil {
				t.Fatal(err)
			}
			id, resp, err := DecodeResponse(payload)
			if err != nil {
				t.Fatal(err)
			}
			if id != tc.id || resp != tc.resp {
				t.Fatalf("round trip mangled message:\n got (%d, %+v)\nwant (%d, %+v)", id, resp, tc.id, tc.resp)
			}
		})
	}
}

func TestAppendRejectsOversizedValue(t *testing.T) {
	huge := strings.Repeat("x", MaxValueLen+1)
	if _, err := AppendRequest(nil, 1, 0, sim.Request{Op: sim.OpWrite, Value: sim.TaggedValue{Value: huge}}); err == nil {
		t.Fatal("AppendRequest accepted a value longer than MaxValueLen")
	}
	if _, err := AppendResponse(nil, 1, sim.Response{OK: true, Value: sim.TaggedValue{Value: huge}}); err == nil {
		t.Fatal("AppendResponse accepted a value longer than MaxValueLen")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	good, err := AppendRequest(nil, 1, 2, sim.Request{Op: sim.OpWrite, Value: sim.TaggedValue{Value: "ok"}})
	if err != nil {
		t.Fatal(err)
	}
	payload := good[4:]
	cases := map[string][]byte{
		"empty":        {},
		"short-header": payload[:10],
		"wrong-tag":    append([]byte{tagResponse}, payload[1:]...),
		"trailing":     append(append([]byte{}, payload...), 0xAA),
		"value-overrun": func() []byte {
			p := append([]byte{}, payload...)
			// Inflate the declared value length past the actual bytes.
			binary.BigEndian.PutUint32(p[requestOverhead+16:], 1000)
			return p
		}(),
	}
	for name, p := range cases {
		if _, _, _, err := DecodeRequest(p); err == nil {
			t.Errorf("%s: DecodeRequest accepted malformed payload", name)
		}
	}
	if _, _, err := DecodeResponse(payload); err == nil {
		t.Error("DecodeResponse accepted a request payload")
	}
}

func TestReadFrameLimits(t *testing.T) {
	var tooBig [4]byte
	binary.BigEndian.PutUint32(tooBig[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(tooBig[:]), nil); err == nil {
		t.Fatal("ReadFrame accepted an over-limit length prefix")
	}
	var zero [4]byte
	if _, err := ReadFrame(bytes.NewReader(zero[:]), nil); err == nil {
		t.Fatal("ReadFrame accepted a zero-length frame")
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0}), nil); err == nil {
		t.Fatal("ReadFrame accepted a truncated prefix")
	}
	// Truncated payload: prefix promises more than the stream holds.
	frame, err := AppendResponse(nil, 1, sim.Response{OK: true, Value: sim.TaggedValue{Value: "abc"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-1]), nil); err == nil {
		t.Fatal("ReadFrame accepted a truncated payload")
	}
}

func TestReadFrameReusesBuffer(t *testing.T) {
	var stream bytes.Buffer
	for i := 0; i < 3; i++ {
		frame, err := AppendResponse(nil, uint64(i), sim.Response{OK: true, Value: sim.TaggedValue{Value: "abc"}})
		if err != nil {
			t.Fatal(err)
		}
		stream.Write(frame)
	}
	var buf []byte
	for i := 0; i < 3; i++ {
		payload, err := ReadFrame(&stream, buf)
		if err != nil {
			t.Fatal(err)
		}
		id, resp, err := DecodeResponse(payload)
		if err != nil {
			t.Fatal(err)
		}
		if id != uint64(i) || resp.Value.Value != "abc" {
			t.Fatalf("frame %d mangled: id=%d resp=%+v", i, id, resp)
		}
		buf = payload
	}
	if _, err := ReadFrame(&stream, buf); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

// FuzzDecodeRequest asserts decode never panics on arbitrary payloads,
// and that anything it does accept re-encodes to an identical frame.
func FuzzDecodeRequest(f *testing.F) {
	for _, tc := range requestCases {
		frame, err := AppendRequest(nil, tc.id, tc.server, tc.req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	f.Add([]byte{})
	f.Add([]byte{tagRequest})
	f.Fuzz(func(t *testing.T, payload []byte) {
		id, server, req, err := DecodeRequest(payload)
		if err != nil {
			return
		}
		frame, err := AppendRequest(nil, id, server, req)
		if err != nil {
			t.Fatalf("decoded request fails to re-encode: %v", err)
		}
		if !bytes.Equal(frame[4:], payload) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", frame[4:], payload)
		}
	})
}

// FuzzDecodeResponse is the response-side twin of FuzzDecodeRequest.
func FuzzDecodeResponse(f *testing.F) {
	for _, tc := range responseCases {
		frame, err := AppendResponse(nil, tc.id, tc.resp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	f.Add([]byte{})
	f.Add([]byte{tagResponse})
	f.Fuzz(func(t *testing.T, payload []byte) {
		id, resp, err := DecodeResponse(payload)
		if err != nil {
			return
		}
		frame, err := AppendResponse(nil, id, resp)
		if err != nil {
			t.Fatalf("decoded response fails to re-encode: %v", err)
		}
		if !bytes.Equal(frame[4:], payload) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", frame[4:], payload)
		}
	})
}

// FuzzRequestRoundTrip drives the encoder with arbitrary field values and
// asserts the decoder returns them bit-for-bit.
func FuzzRequestRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint32(3), byte(sim.OpWrite), int64(42), int64(7), int64(2), "value")
	f.Add(uint64(0), uint32(0), byte(0), int64(-1), int64(math.MinInt64), int64(-1), "")
	f.Fuzz(func(t *testing.T, id uint64, server uint32, op byte, reader, seq, writer int64, value string) {
		req := sim.Request{
			Op:       sim.Op(op),
			ReaderID: int(reader),
			Value:    sim.TaggedValue{Value: value, TS: sim.Timestamp{Seq: seq, Writer: int(writer)}},
		}
		frame, err := AppendRequest(nil, id, server, req)
		if err != nil {
			if len(value) > MaxValueLen {
				return // correctly rejected
			}
			t.Fatal(err)
		}
		payload, err := ReadFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatal(err)
		}
		gotID, gotServer, gotReq, err := DecodeRequest(payload)
		if err != nil {
			t.Fatal(err)
		}
		// ReaderID and Writer travel as 64-bit, so they survive exactly on
		// 64-bit platforms (int == int64 everywhere this repo targets).
		if gotID != id || gotServer != server || gotReq != req {
			t.Fatalf("round trip mangled message:\n got (%d, %d, %+v)\nwant (%d, %d, %+v)",
				gotID, gotServer, gotReq, id, server, req)
		}
	})
}
