package wire

import (
	"reflect"
	"testing"
)

func TestParseIDRange(t *testing.T) {
	cases := []struct {
		spec string
		want []int
	}{
		{"0-3", []int{0, 1, 2, 3}},
		{"7", []int{7}},
		{"5-5", []int{5}},
	}
	for _, tc := range cases {
		got, err := ParseIDRange(tc.spec)
		if err != nil {
			t.Errorf("ParseIDRange(%q): %v", tc.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseIDRange(%q) = %v, want %v", tc.spec, got, tc.want)
		}
	}
	for _, bad := range []string{"", "x", "3-1", "-2", "1-", "-", "1-2-3", "1.5", "0-4294967295"} {
		if _, err := ParseIDRange(bad); err == nil {
			t.Errorf("ParseIDRange(%q) accepted a bad spec", bad)
		}
	}
}

func TestParseRoutes(t *testing.T) {
	routes, err := ParseRoutes("0-2=a:1, 3=b:2 ,4-5=c:3")
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{0: "a:1", 1: "a:1", 2: "a:1", 3: "b:2", 4: "c:3", 5: "c:3"}
	if !reflect.DeepEqual(routes, want) {
		t.Fatalf("ParseRoutes = %v, want %v", routes, want)
	}
	if err := CheckCoverage(routes, 6); err != nil {
		t.Fatalf("CheckCoverage rejected a full table: %v", err)
	}
	if err := CheckCoverage(routes, 7); err == nil {
		t.Fatal("CheckCoverage accepted a table missing server 6")
	}
	if err := CheckCoverage(routes, 5); err == nil {
		t.Fatal("CheckCoverage accepted a route outside the universe")
	}
	for _, bad := range []string{"", "0-2", "0-2=", "=a:1", "0-2=a:1,2=b:9", "x=a:1"} {
		if _, err := ParseRoutes(bad); err == nil {
			t.Errorf("ParseRoutes(%q) accepted a bad spec", bad)
		}
	}
}
