package wire

import (
	"context"
	"fmt"
	"testing"
	"time"

	"bqs/internal/obs"
	"bqs/internal/reconfig"
	"bqs/internal/sim"
	"bqs/internal/systems"
)

// TestWireStaleEpochRefresh pins the epoch gate end to end at the
// transport level: a client pinned to a stale epoch has its requests
// answered with wrongepoch — which reads as the retriable
// Response{OK: false}, never an abort — hears the shard's current
// record through its onStale callback, refreshes via FetchConfig +
// InstallEpoch, and completes.
func TestWireStaleEpochRefresh(t *testing.T) {
	regB := obs.NewRegistry()
	reps := newReplicas([]int{0, 1})
	addr, srv := startShard(t, reps)

	routes := map[int]string{0: addr, 1: addr}
	trA, err := Dial(routes, WithEpochs(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer trA.Close()
	stale := make(chan reconfig.Record, 16)
	trB, err := Dial(routes, WithEpochs(func(rec reconfig.Record) {
		select {
		case stale <- rec:
		default:
		}
	}), WithMetrics(regB))
	if err != nil {
		t.Fatal(err)
	}
	defer trB.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Before any install both clients announce epoch 0, matching the
	// shard's boot state: everything is served.
	for _, tr := range []*Client{trA, trB} {
		resp, err := tr.Invoke(ctx, 0, sim.Request{Op: sim.OpWrite, Value: sim.TaggedValue{Value: "v0", TS: sim.Timestamp{Seq: 1}}})
		if err != nil || !resp.OK {
			t.Fatalf("epoch-0 write: resp=%+v err=%v", resp, err)
		}
	}
	if _, found, err := trB.FetchConfig(ctx); err != nil || found {
		t.Fatalf("FetchConfig before any install: found=%v err=%v, want none", found, err)
	}

	// Client A moves the shard to epoch 1. A keeps being served; B is now
	// pinned to the retired epoch 0.
	rec := reconfig.Record{Epoch: 1, Kind: "mgrid", Universe: 36, B: 1}
	if err := trA.InstallEpoch(ctx, rec); err != nil {
		t.Fatalf("InstallEpoch: %v", err)
	}
	if got := trA.Epoch(); got != 1 {
		t.Fatalf("installer epoch = %d, want 1", got)
	}
	if got, ok := srv.CurrentRecord(); !ok || got != rec {
		t.Fatalf("shard record = %+v ok=%v, want %+v", got, ok, rec)
	}
	resp, err := trA.Invoke(ctx, 0, sim.Request{Op: sim.OpRead, ReaderID: 1})
	if err != nil || !resp.OK {
		t.Fatalf("installer read at epoch 1: resp=%+v err=%v", resp, err)
	}

	// The stale client's request is rejected as retriable suspicion, and
	// the shard's record arrives on the callback.
	resp, err = trB.Invoke(ctx, 0, sim.Request{Op: sim.OpRead, ReaderID: 2})
	if err != nil || resp.OK {
		t.Fatalf("stale-epoch read: resp=%+v err=%v, want OK:false and nil error", resp, err)
	}
	select {
	case got := <-stale:
		if got != rec {
			t.Fatalf("onStale record = %+v, want %+v", got, rec)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("onStale never fired for the stale-epoch rejection")
	}
	if v, _ := regB.Value("bqs_wire_wrong_epoch_total", "side", "client"); v < 1 {
		t.Fatalf("client wrong-epoch counter = %v, want >= 1", v)
	}

	// Refresh: fetch the current record, adopt it (the install is
	// idempotent at the shard), and complete the operation.
	cur, found, err := trB.FetchConfig(ctx)
	if err != nil || !found || cur != rec {
		t.Fatalf("FetchConfig: rec=%+v found=%v err=%v, want %+v", cur, found, err, rec)
	}
	if err := trB.InstallEpoch(ctx, cur); err != nil {
		t.Fatalf("refresh InstallEpoch: %v", err)
	}
	if got := trB.Epoch(); got != 1 {
		t.Fatalf("refreshed epoch = %d, want 1", got)
	}
	resp, err = trB.Invoke(ctx, 0, sim.Request{Op: sim.OpRead, ReaderID: 2})
	if err != nil || !resp.OK {
		t.Fatalf("read after refresh: resp=%+v err=%v", resp, err)
	}
	if resp.Value.Value != "v0" {
		t.Fatalf("read after refresh returned %q, want %q", resp.Value.Value, "v0")
	}
}

// TestWireUnannouncedConnsUngated pins v1 compatibility: a client that
// never announces an epoch (no WithEpochs) is served across installs,
// exactly like a v1 peer — the epoch plane is opt-in.
func TestWireUnannouncedConnsUngated(t *testing.T) {
	addr, srv := startShard(t, newReplicas([]int{0}))
	tr, err := Dial(map[int]string{0: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if resp, err := tr.Invoke(ctx, 0, sim.Request{Op: sim.OpRead}); err != nil || !resp.OK {
		t.Fatalf("read before install: resp=%+v err=%v", resp, err)
	}
	if got := srv.install(reconfig.Record{Epoch: 5, Kind: "threshold", Universe: 5, B: 1}); got.Epoch != 5 {
		t.Fatalf("install returned epoch %d, want 5", got.Epoch)
	}
	if resp, err := tr.Invoke(ctx, 0, sim.Request{Op: sim.OpRead}); err != nil || !resp.OK {
		t.Fatalf("un-announced read after install: resp=%+v err=%v, want served ungated", resp, err)
	}
	if tr.Epoch() != 0 {
		t.Fatalf("epoch-unaware client reports epoch %d, want 0", tr.Epoch())
	}
	if err := tr.InstallEpoch(ctx, reconfig.Record{Epoch: 6, Kind: "threshold", Universe: 5, B: 1}); err == nil {
		t.Fatal("InstallEpoch on an epoch-unaware client must error")
	}
}

// TestWireInstallIdempotentAndMerge pins the shard-side install
// semantics: adopting a newer record merges the newest stored value of
// every key into the replicas that remain in the new universe, while
// stale and repeated installs ack without changing state.
func TestWireInstallIdempotentAndMerge(t *testing.T) {
	reps := newReplicas([]int{0, 1, 2, 5})
	srv := NewServer(reps)

	// Replica 5 (about to leave the universe) holds the newest value;
	// replica 0 an older one; 1 and 2 nothing.
	reps[5].HandleWrite("k", sim.TaggedValue{Value: "new", TS: sim.Timestamp{Seq: 9, Writer: 1}})
	reps[0].HandleWrite("k", sim.TaggedValue{Value: "old", TS: sim.Timestamp{Seq: 1, Writer: 1}})

	rec := reconfig.Record{Epoch: 1, Kind: "threshold", Universe: 5, B: 1}
	if got := srv.install(rec); got != rec {
		t.Fatalf("install returned %+v, want %+v", got, rec)
	}
	for _, id := range []int{0, 1, 2} {
		if tv := reps[id].SnapshotKey("k"); tv.Value != "new" || tv.TS.Seq != 9 {
			t.Fatalf("replica %d after merge holds %+v, want the newest value", id, tv)
		}
	}

	// Same epoch again, and an older epoch: both ack with the current
	// record, no state change.
	if got := srv.install(rec); got != rec {
		t.Fatalf("re-install returned %+v, want %+v", got, rec)
	}
	older := reconfig.Record{Epoch: 0, Kind: "mgrid", Universe: 36, B: 1}
	if got := srv.install(older); got != rec {
		t.Fatalf("stale install returned %+v, want current %+v", got, rec)
	}
	if got, ok := srv.CurrentRecord(); !ok || got != rec {
		t.Fatalf("CurrentRecord = %+v ok=%v, want %+v", got, ok, rec)
	}
}

// TestWireRollingResize is the end-to-end acceptance path over sockets:
// a cluster running MGrid(5,1) across two TCP shards resizes to
// MGrid(6,1) via Cluster.Reconfigure while an epoch-aware transport
// carries its traffic. The wire client is the reconfig.Installer, so
// the cutover pushes the record to both shard daemons (each merges its
// own replica state — HandoffKeys stays 0 on the coordinator) and the
// pre-resize value must be readable in the new epoch.
func TestWireRollingResize(t *testing.T) {
	sys, err := systems.NewMGrid(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	const b, maxUniverse = 1, 36

	// Two shard daemons provisioned for the post-resize universe: the
	// resize target must already be addressable, exactly as a real
	// deployment racks servers before cutting traffic over.
	shards := [][]int{{}, {}}
	for id := 0; id < maxUniverse; id++ {
		shards[id/18] = append(shards[id/18], id)
	}
	routes := make(map[int]string)
	srvs := make([]*Server, 0, len(shards))
	for _, ids := range shards {
		reps := newReplicas(ids)
		addr, srv := startShard(t, reps)
		srvs = append(srvs, srv)
		for id := range reps {
			routes[id] = addr
		}
	}
	if err := CheckCoverage(routes, maxUniverse); err != nil {
		t.Fatal(err)
	}

	tr, err := Dial(routes, WithEpochs(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cluster, err := sim.NewCluster(sys, b,
		sim.WithTransport(func([]*sim.Server) sim.Transport { return tr }))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	cl := cluster.NewClient(1)
	if err := cl.WriteKey(ctx, "cfg", "before-resize"); err != nil {
		t.Fatalf("write before resize: %v", err)
	}

	rec, err := reconfig.ParseTarget("mgrid:36", b)
	if err != nil {
		t.Fatal(err)
	}
	report, err := cluster.Reconfigure(ctx, rec)
	if err != nil {
		t.Fatalf("Reconfigure over wire: %v", err)
	}
	if report.HandoffKeys != 0 {
		t.Fatalf("coordinator handed off %d keys; shard daemons own the merge over a wire transport", report.HandoffKeys)
	}
	if cluster.Epoch() != 1 || tr.Epoch() != 1 {
		t.Fatalf("epochs after resize: cluster=%d transport=%d, want 1", cluster.Epoch(), tr.Epoch())
	}
	for i, srv := range srvs {
		got, ok := srv.CurrentRecord()
		if !ok || got.Epoch != 1 || got.Universe != maxUniverse {
			t.Fatalf("shard %d record = %+v ok=%v, want epoch 1 universe %d", i, got, ok, maxUniverse)
		}
	}

	// The new epoch serves reads spanning the grown universe, including
	// the pre-resize state the shards merged locally at install.
	tv, err := cl.ReadKey(ctx, "cfg")
	if err != nil {
		t.Fatalf("read after resize: %v", err)
	}
	if tv.Value != "before-resize" {
		t.Fatalf("read after resize returned %q, want %q", tv.Value, "before-resize")
	}
	if err := cl.WriteKey(ctx, "cfg", "after-resize"); err != nil {
		t.Fatalf("write after resize: %v", err)
	}
	tv, err = cluster.NewClient(2).ReadKey(ctx, "cfg")
	if err != nil || tv.Value != "after-resize" {
		t.Fatalf("final read: tv=%+v err=%v, want after-resize", tv, err)
	}
	if cluster.N() != maxUniverse {
		t.Fatalf("post-resize universe %d, want %d (%s)", cluster.N(), maxUniverse, cluster.System().Name())
	}
}

// TestWireResizeUnderLoad runs concurrent keyed traffic through the
// rolling resize and requires every operation to complete — wrongepoch
// rejections surface only as quorum re-selection, never as client
// errors — and the written history to stay safe.
func TestWireResizeUnderLoad(t *testing.T) {
	const b, maxUniverse = 1, 36
	sys, err := systems.NewMGrid(5, b)
	if err != nil {
		t.Fatal(err)
	}
	shards := [][]int{{}, {}}
	for id := 0; id < maxUniverse; id++ {
		shards[id/18] = append(shards[id/18], id)
	}
	routes := make(map[int]string)
	for _, ids := range shards {
		reps := newReplicas(ids)
		addr, _ := startShard(t, reps)
		for id := range reps {
			routes[id] = addr
		}
	}
	tr, err := Dial(routes, WithEpochs(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cluster, err := sim.NewCluster(sys, b,
		sim.WithTransport(func([]*sim.Server) sim.Transport { return tr }))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const writers, ops = 3, 30
	errs := make(chan error, writers)
	resized := make(chan struct{})
	for w := 0; w < writers; w++ {
		go func(w int) {
			cl := cluster.NewClient(w)
			for i := 0; i < ops; i++ {
				if i == ops/3 && w == 0 {
					// Writer 0 paces the resize to land mid-traffic.
					close(resized)
				}
				if err := cl.WriteKey(ctx, fmt.Sprintf("key-%d", w), fmt.Sprintf("w%d-%d", w, i)); err != nil {
					errs <- fmt.Errorf("writer %d op %d: %w", w, i, err)
					return
				}
				if _, err := cl.ReadKey(ctx, fmt.Sprintf("key-%d", w)); err != nil {
					errs <- fmt.Errorf("reader %d op %d: %w", w, i, err)
					return
				}
			}
			errs <- nil
		}(w)
	}
	<-resized
	rec, err := reconfig.ParseTarget("mgrid:36", b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Reconfigure(ctx, rec); err != nil {
		t.Fatalf("Reconfigure under load: %v", err)
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if cluster.Epoch() != 1 {
		t.Fatalf("epoch after resize = %d, want 1", cluster.Epoch())
	}
	// Every writer's last value must be intact in the new epoch.
	for w := 0; w < writers; w++ {
		tv, err := cluster.NewClient(99).ReadKey(ctx, fmt.Sprintf("key-%d", w))
		if err != nil {
			t.Fatalf("final read key-%d: %v", w, err)
		}
		if want := fmt.Sprintf("w%d-%d", w, ops-1); tv.Value != want {
			t.Fatalf("key-%d = %q, want %q", w, tv.Value, want)
		}
	}
}
