package wire

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bqs/internal/sim"
)

// DialOption configures a Client.
type DialOption func(*dialConfig)

type dialConfig struct {
	poolSize      int
	dialTimeout   time.Duration
	redialBackoff time.Duration
}

// WithPoolSize sets how many TCP connections the client keeps per address
// (default 1). Requests are pipelined, so one connection already carries
// any number of concurrent operations; extra connections only help when a
// single socket's throughput saturates.
func WithPoolSize(n int) DialOption {
	return func(c *dialConfig) {
		if n > 0 {
			c.poolSize = n
		}
	}
}

// WithDialTimeout bounds each connection attempt (default 2s).
func WithDialTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) {
		if d > 0 {
			c.dialTimeout = d
		}
	}
}

// WithRedialBackoff sets how long an address stays marked down after a
// failed connection attempt (default 100ms). While it is down, probes to
// its servers answer Response{OK: false} immediately instead of paying
// the dial timeout again, so quorum re-selection stays fast.
func WithRedialBackoff(d time.Duration) DialOption {
	return func(c *dialConfig) {
		if d > 0 {
			c.redialBackoff = d
		}
	}
}

// Client is a sim.Transport that carries probes over TCP. Each global
// server index is routed to the address hosting it; per address the
// client keeps a small pool of connections, multiplexing concurrent
// requests over each by request ID. A server whose address cannot be
// reached — connection refused, dial timeout, connection dropped
// mid-flight — answers Response{OK: false}, the same suspicion signal the
// in-memory transport uses for crashed servers, so clients re-select
// quorums around network failures exactly as they do around crashes.
// Connections re-establish automatically on the next probe after the
// redial backoff, so a restarted server rejoins the fleet untouched.
type Client struct {
	routes map[int]string
	cfg    dialConfig

	mu     sync.Mutex
	pools  map[string]*pool
	closed bool
}

var _ sim.Transport = (*Client)(nil)

// Dial validates the route table (global server index → "host:port") and
// returns a Client. Connections are established lazily, on first use per
// address, and re-established as needed; Dial itself does not touch the
// network, so it succeeds even while servers are still starting.
func Dial(routes map[int]string, opts ...DialOption) (*Client, error) {
	if len(routes) == 0 {
		return nil, fmt.Errorf("wire: empty route table")
	}
	m := make(map[int]string, len(routes))
	for id, addr := range routes {
		if id < 0 {
			return nil, fmt.Errorf("wire: negative server index %d in route table", id)
		}
		if addr == "" {
			return nil, fmt.Errorf("wire: empty address for server %d", id)
		}
		m[id] = addr
	}
	cfg := dialConfig{
		poolSize:      1,
		dialTimeout:   2 * time.Second,
		redialBackoff: 100 * time.Millisecond,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return &Client{
		routes: m,
		cfg:    cfg,
		pools:  make(map[string]*pool),
	}, nil
}

// Routes returns a copy of the route table.
func (c *Client) Routes() map[int]string {
	out := make(map[int]string, len(c.routes))
	for id, addr := range c.routes {
		out[id] = addr
	}
	return out
}

// Invoke implements sim.Transport: it routes req to the address hosting
// the given server and waits for the matching response. Unreachable or
// dropped connections answer Response{OK: false}; the error return is
// reserved for aborts (ctx done, closed client, unrouted server).
func (c *Client) Invoke(ctx context.Context, server int, req sim.Request) (sim.Response, error) {
	if err := ctx.Err(); err != nil {
		return sim.Response{}, err
	}
	addr, ok := c.routes[server]
	if !ok {
		return sim.Response{}, fmt.Errorf("wire: no route for server %d", server)
	}
	p, err := c.pool(addr)
	if err != nil {
		return sim.Response{}, err
	}
	return p.pick().roundTrip(ctx, uint32(server), req)
}

// Flip implements sim.Flipper over the network: it sends a control frame
// to the shard hosting the given server, asking it to switch that replica
// to behavior. This is the remote half of the churn engine — a
// sim.FaultController driving a wire.Client replays its fault schedule
// against a live TCP deployment exactly as it would against an in-memory
// Cluster. The error reports an unreachable shard or a server the
// addressed shard does not host; a schedule driver counts such flips as
// misses and keeps going.
func (c *Client) Flip(ctx context.Context, server int, behavior sim.Behavior) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	addr, ok := c.routes[server]
	if !ok {
		return fmt.Errorf("wire: no route for server %d", server)
	}
	p, err := c.pool(addr)
	if err != nil {
		return err
	}
	resp, err := p.pick().roundTripControl(ctx, uint32(server), behavior)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("wire: flip server %d to %v: shard %s unreachable or not hosting it", server, behavior, addr)
	}
	return nil
}

var _ sim.Flipper = (*Client)(nil)

func (c *Client) pool(addr string) (*pool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("wire: client closed")
	}
	p, ok := c.pools[addr]
	if !ok {
		p = newPool(addr, &c.cfg)
		c.pools[addr] = p
	}
	return p, nil
}

// Close tears down every connection. In-flight operations observe
// Response{OK: false}; subsequent Invokes fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	pools := c.pools
	c.pools = make(map[string]*pool)
	c.mu.Unlock()
	for _, p := range pools {
		p.close()
	}
	return nil
}

// pool is the fixed set of connections the client keeps to one address.
type pool struct {
	conns []*conn
	next  atomic.Uint64
}

func newPool(addr string, cfg *dialConfig) *pool {
	p := &pool{conns: make([]*conn, cfg.poolSize)}
	for i := range p.conns {
		p.conns[i] = &conn{addr: addr, cfg: cfg}
	}
	return p
}

// pick round-robins across the pool.
func (p *pool) pick() *conn {
	return p.conns[p.next.Add(1)%uint64(len(p.conns))]
}

func (p *pool) close() {
	for _, cn := range p.conns {
		cn.shutdown()
	}
}

// conn is one pipelined connection slot: a TCP connection (re-established
// on demand) plus the table of in-flight requests awaiting responses.
type conn struct {
	addr string
	cfg  *dialConfig

	// wmu serializes socket writes, separately from mu: a blocking flush
	// must not hold the state mutex, or readLoop could not drain responses
	// while the kernel send buffer is full — with both sides stalled on
	// flow control, that is a distributed deadlock.
	wmu sync.Mutex

	mu         sync.Mutex
	nc         net.Conn
	bw         *bufio.Writer
	nextID     uint64
	pending    map[uint64]chan sim.Response
	nextDialAt time.Time     // backoff gate after a failed dial
	dialDone   chan struct{} // non-nil while a goroutine is dialing; closed when done
	closed     bool
}

// errDown is the internal signal that the remote end is unreachable; the
// caller translates it into Response{OK: false}.
var errDown = fmt.Errorf("wire: server down")

// roundTrip sends req and waits for its response, ctx, or connection
// death (which counts as Response{OK: false}).
func (cn *conn) roundTrip(ctx context.Context, server uint32, req sim.Request) (sim.Response, error) {
	return cn.roundTripFrame(ctx, func(id uint64) ([]byte, error) {
		return AppendRequest(nil, id, server, req)
	})
}

// roundTripControl sends a behavior flip and waits for its acknowledgement
// under the same contract as roundTrip: an unreachable shard answers
// Response{OK: false} rather than erroring, because a churn schedule must
// keep running over a partially dead deployment.
func (cn *conn) roundTripControl(ctx context.Context, server uint32, behavior sim.Behavior) (sim.Response, error) {
	return cn.roundTripFrame(ctx, func(id uint64) ([]byte, error) {
		return AppendControl(nil, id, server, behavior)
	})
}

// roundTripFrame sends the frame built by encode (called with the fresh
// request ID under the connection's state mutex) and waits for the
// matching response, ctx, or connection death (which counts as
// Response{OK: false}).
func (cn *conn) roundTripFrame(ctx context.Context, encode func(id uint64) ([]byte, error)) (sim.Response, error) {
	id, ch, err := cn.send(ctx, encode)
	if err == errDown {
		return sim.Response{OK: false}, nil
	}
	if err != nil {
		return sim.Response{}, err
	}
	select {
	case resp := <-ch:
		// Connection teardown answers all pending requests with OK: false,
		// so a response always arrives; dead servers read as crashed.
		return resp, nil
	case <-ctx.Done():
		cn.forget(id)
		return sim.Response{}, ctx.Err()
	}
}

// send ensures the connection is up, registers a pending entry, and
// writes the frame built by encode. The write itself happens outside the
// state mutex (under wmu) so responses keep flowing while it blocks.
func (cn *conn) send(ctx context.Context, encode func(id uint64) ([]byte, error)) (uint64, chan sim.Response, error) {
	if err := cn.ensureConn(ctx); err != nil {
		return 0, nil, err
	}
	cn.mu.Lock()
	if cn.closed {
		cn.mu.Unlock()
		return 0, nil, fmt.Errorf("wire: client closed")
	}
	if cn.nc == nil {
		// The connection died between ensureConn and here; treat the
		// servers behind it as down rather than re-dialing in a loop.
		cn.mu.Unlock()
		return 0, nil, errDown
	}
	cn.nextID++
	id := cn.nextID
	frame, err := encode(id)
	if err != nil {
		cn.mu.Unlock()
		return 0, nil, err // unencodable frame (oversized value): caller bug, abort
	}
	ch := make(chan sim.Response, 1)
	cn.pending[id] = ch
	nc, bw := cn.nc, cn.bw
	cn.mu.Unlock()

	cn.wmu.Lock()
	_, werr := bw.Write(frame)
	if werr == nil {
		werr = bw.Flush()
	}
	cn.wmu.Unlock()
	if werr != nil {
		cn.mu.Lock()
		cn.teardownLocked(nc)
		cn.mu.Unlock()
		// Teardown (ours, or a concurrent one that beat us to it) already
		// answered the pending entry with OK: false if it was still
		// registered; reporting errDown here reads the same to the caller.
		return 0, nil, errDown
	}
	return id, ch, nil
}

// ensureConn returns once a connection is established (by this goroutine
// or a concurrent one), the address is in redial backoff (errDown), or
// ctx is done. The dial itself runs outside cn.mu so concurrent probes —
// and the response readLoop — are never blocked behind a slow connect;
// they either wait interruptibly on the dialer's completion channel or
// fail fast on the backoff gate.
func (cn *conn) ensureConn(ctx context.Context) error {
	for {
		cn.mu.Lock()
		switch {
		case cn.closed:
			cn.mu.Unlock()
			return fmt.Errorf("wire: client closed")
		case cn.nc != nil:
			cn.mu.Unlock()
			return nil
		case cn.dialDone != nil:
			// Another goroutine is dialing; wait for its outcome without
			// holding the mutex, then re-examine the state.
			done := cn.dialDone
			cn.mu.Unlock()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-done:
				continue
			}
		case time.Now().Before(cn.nextDialAt):
			cn.mu.Unlock()
			return errDown
		}
		done := make(chan struct{})
		cn.dialDone = done
		cn.mu.Unlock()

		d := net.Dialer{Timeout: cn.cfg.dialTimeout}
		nc, err := d.DialContext(ctx, "tcp", cn.addr)

		cn.mu.Lock()
		cn.dialDone = nil
		close(done)
		if err != nil {
			// Arm the backoff only for genuine dial failures: a dial cut
			// short by the caller's own ctx says nothing about the address,
			// and must not mark a healthy shard down.
			ctxErr := ctx.Err()
			if ctxErr == nil {
				cn.nextDialAt = time.Now().Add(cn.cfg.redialBackoff)
			}
			cn.mu.Unlock()
			if ctxErr != nil {
				return ctxErr
			}
			return errDown
		}
		if cn.closed {
			cn.mu.Unlock()
			nc.Close()
			return fmt.Errorf("wire: client closed")
		}
		cn.nc = nc
		cn.bw = bufio.NewWriter(nc)
		cn.pending = make(map[uint64]chan sim.Response)
		go cn.readLoop(nc)
		cn.mu.Unlock()
		return nil
	}
}

// readLoop dispatches response frames to their pending channels until the
// connection dies, then fails whatever is still in flight.
func (cn *conn) readLoop(nc net.Conn) {
	br := bufio.NewReader(nc)
	var buf []byte
	for {
		frame, err := ReadFrame(br, buf)
		if err != nil {
			break
		}
		buf = frame
		id, resp, err := DecodeResponse(frame)
		if err != nil {
			break // corrupt stream: no way to re-synchronize
		}
		cn.mu.Lock()
		ch, ok := cn.pending[id]
		if ok {
			delete(cn.pending, id)
		}
		cn.mu.Unlock()
		if ok {
			ch <- resp // buffered; never blocks
		}
	}
	cn.mu.Lock()
	cn.teardownLocked(nc)
	cn.mu.Unlock()
}

// teardownLocked closes nc and, if it is still the active connection,
// answers every pending request with OK: false so waiters treat the
// remote servers as crashed. Called with cn.mu held.
func (cn *conn) teardownLocked(nc net.Conn) {
	nc.Close()
	if cn.nc != nc {
		return
	}
	cn.nc = nil
	cn.bw = nil
	for id, ch := range cn.pending {
		delete(cn.pending, id)
		ch <- sim.Response{OK: false}
	}
}

// forget drops a pending entry after ctx cancellation; a late response
// for it is discarded by readLoop.
func (cn *conn) forget(id uint64) {
	cn.mu.Lock()
	delete(cn.pending, id)
	cn.mu.Unlock()
}

func (cn *conn) shutdown() {
	cn.mu.Lock()
	cn.closed = true
	if cn.nc != nil {
		cn.teardownLocked(cn.nc)
	}
	cn.mu.Unlock()
}
