package wire

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bqs/internal/obs"
	"bqs/internal/reconfig"
	"bqs/internal/sim"
)

// DialOption configures a Client.
type DialOption func(*dialConfig)

type dialConfig struct {
	poolSize      int
	dialTimeout   time.Duration
	redialBackoff time.Duration
	version       int
	met           *wireMetrics

	// Epoch awareness (WithEpochs): epoch is the configuration epoch the
	// client announces ahead of its requests, rec the record it last
	// adopted, onStale the callback for wrongepoch rejections. All nil
	// for epoch-unaware clients, whose connections are served ungated
	// like v1 peers.
	epoch   *atomic.Uint64
	rec     *atomic.Pointer[reconfig.Record]
	onStale func(reconfig.Record)
}

// WithPoolSize sets how many TCP connections the client keeps per address
// (default 1). Requests are pipelined, so one connection already carries
// any number of concurrent operations; extra connections only help when a
// single socket's throughput saturates.
func WithPoolSize(n int) DialOption {
	return func(c *dialConfig) {
		if n > 0 {
			c.poolSize = n
		}
	}
}

// WithDialTimeout bounds each connection attempt (default 2s).
func WithDialTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) {
		if d > 0 {
			c.dialTimeout = d
		}
	}
}

// WithRedialBackoff sets how long an address stays marked down after a
// failed connection attempt (default 100ms). While it is down, probes to
// its servers answer Response{OK: false} immediately instead of paying
// the dial timeout again, so quorum re-selection stays fast.
func WithRedialBackoff(d time.Duration) DialOption {
	return func(c *dialConfig) {
		if d > 0 {
			c.redialBackoff = d
		}
	}
}

// WithMetrics wires the client into an obs.Registry: frames and bytes in
// each direction, batch-frame op counts, dial outcomes (the redial
// stream of a flapping shard), and the per-connection negotiated version
// mix. A nil registry is a no-op.
func WithMetrics(reg *obs.Registry) DialOption {
	return func(c *dialConfig) {
		if reg != nil {
			c.met = newWireMetrics(reg, "client")
		}
	}
}

// WithEpochs makes the client epoch-aware: every request frame is
// preceded (when needed) by an announce frame naming the configuration
// epoch the client routed it with, so servers can reject requests built
// against a retired quorum system. A rejection reads as
// Response{OK: false} — the retriable suspicion signal — and onStale is
// called with the shard's current record (zero if the shard has nothing
// installed) so the embedding layer can refresh: re-derive its quorum
// system via the record, then adopt the epoch through InstallEpoch. The
// client deliberately does NOT bump its announced epoch on its own —
// announcing a new epoch while still routing with the old system's
// quorums would let old-shape quorums through the new epoch's gate,
// which is exactly the unsafety the gate exists to stop. onStale may be
// nil; it must not block (it runs on connection read loops).
func WithEpochs(onStale func(reconfig.Record)) DialOption {
	return func(c *dialConfig) {
		c.epoch = new(atomic.Uint64)
		c.rec = new(atomic.Pointer[reconfig.Record])
		c.onStale = onStale
	}
}

// WithVersion caps the protocol version the client speaks (default
// ProtoVersion). At 1 the client sends no hello and frames every
// operation as a v1 single — the mode for talking to a fleet of old
// daemons, where keyed operations answer Response{OK: false} because the
// v1 frame cannot carry a key.
func WithVersion(v int) DialOption {
	return func(c *dialConfig) {
		if v >= 1 && v <= ProtoVersion {
			c.version = v
		}
	}
}

// Client is a sim.Transport that carries probes over TCP. Each global
// server index is routed to the address hosting it; per address the
// client keeps a small pool of connections, multiplexing concurrent
// requests over each by request ID. A server whose address cannot be
// reached — connection refused, dial timeout, connection dropped
// mid-flight — answers Response{OK: false}, the same suspicion signal the
// in-memory transport uses for crashed servers, so clients re-select
// quorums around network failures exactly as they do around crashes.
// Connections re-establish automatically on the next probe after the
// redial backoff, so a restarted server rejoins the fleet untouched.
type Client struct {
	routes    map[int]string
	addrGroup map[string]int // stable per-address index, for batch grouping
	cfg       dialConfig

	mu     sync.Mutex
	pools  map[string]*pool
	closed bool
}

var (
	_ sim.Transport      = (*Client)(nil)
	_ sim.BatchTransport = (*Client)(nil)
	_ sim.BatchGrouper   = (*Client)(nil)
)

// Dial validates the route table (global server index → "host:port") and
// returns a Client. Connections are established lazily, on first use per
// address, and re-established as needed; Dial itself does not touch the
// network, so it succeeds even while servers are still starting.
func Dial(routes map[int]string, opts ...DialOption) (*Client, error) {
	if len(routes) == 0 {
		return nil, fmt.Errorf("wire: empty route table")
	}
	m := make(map[int]string, len(routes))
	for id, addr := range routes {
		if id < 0 {
			return nil, fmt.Errorf("wire: negative server index %d in route table", id)
		}
		if addr == "" {
			return nil, fmt.Errorf("wire: empty address for server %d", id)
		}
		m[id] = addr
	}
	cfg := dialConfig{
		poolSize:      1,
		dialTimeout:   2 * time.Second,
		redialBackoff: 100 * time.Millisecond,
		version:       ProtoVersion,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.met == nil {
		cfg.met = &wireMetrics{}
	}
	groups := make(map[string]int)
	for _, addr := range m {
		if _, ok := groups[addr]; !ok {
			groups[addr] = len(groups)
		}
	}
	return &Client{
		routes:    m,
		addrGroup: groups,
		cfg:       cfg,
		pools:     make(map[string]*pool),
	}, nil
}

// GroupOf implements sim.BatchGrouper: probes whose servers live at the
// same address may share a frame, so the session batcher coalesces a
// whole shard's traffic — not just one replica's — into each round trip.
func (c *Client) GroupOf(server int) int {
	addr, ok := c.routes[server]
	if !ok {
		return -1 // unrouted servers group together and fail together
	}
	return c.addrGroup[addr]
}

// Routes returns a copy of the route table.
func (c *Client) Routes() map[int]string {
	out := make(map[int]string, len(c.routes))
	for id, addr := range c.routes {
		out[id] = addr
	}
	return out
}

// Invoke implements sim.Transport: it routes req to the address hosting
// the given server and waits for the matching response. Unreachable or
// dropped connections answer Response{OK: false}; the error return is
// reserved for aborts (ctx done, closed client, unrouted server).
func (c *Client) Invoke(ctx context.Context, server int, req sim.Request) (sim.Response, error) {
	if err := ctx.Err(); err != nil {
		return sim.Response{}, err
	}
	addr, ok := c.routes[server]
	if !ok {
		return sim.Response{}, fmt.Errorf("wire: no route for server %d", server)
	}
	p, err := c.pool(addr)
	if err != nil {
		return sim.Response{}, err
	}
	return p.pick().roundTrip(ctx, uint32(server), req)
}

// InvokeBatch implements sim.BatchTransport: items are grouped by the
// address hosting their servers and each group travels as one v2 batch
// frame. A group whose address is unreachable fails fast AS A UNIT — one
// backoff-gate check for the whole frame, every item answering
// Response{OK: false} — so a dead shard costs one redial-backoff window,
// not one per operation in the batch. Responses align index-by-index
// with items; the error return is reserved for aborts (ctx done, closed
// client, unrouted server).
func (c *Client) InvokeBatch(ctx context.Context, items []sim.BatchItem) ([]sim.Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]sim.Response, len(items))
	// The batcher already groups per address, so the common case is one
	// group; the grouping here keeps the contract honest for direct
	// callers.
	type group struct {
		idx   []int
		items []sim.BatchItem
	}
	groups := make(map[string]*group, 1)
	order := make([]string, 0, 1)
	for i, it := range items {
		addr, ok := c.routes[it.Server]
		if !ok {
			return nil, fmt.Errorf("wire: no route for server %d", it.Server)
		}
		g := groups[addr]
		if g == nil {
			g = &group{}
			groups[addr] = g
			order = append(order, addr)
		}
		g.idx = append(g.idx, i)
		g.items = append(g.items, it)
	}
	for _, addr := range order {
		g := groups[addr]
		p, err := c.pool(addr)
		if err != nil {
			return nil, err
		}
		cn := p.pick()
		// Chunk so no frame exceeds the op-count or byte limits; every
		// chunk of a group rides the same connection.
		for start := 0; start < len(g.items); {
			end := chunkEnd(g.items, start)
			resps, err := cn.roundTripBatch(ctx, g.items[start:end])
			if err != nil {
				return nil, err
			}
			for k, r := range resps {
				out[g.idx[start+k]] = r
			}
			start = end
		}
	}
	return out, nil
}

// chunkEnd returns the end index of the largest frame-sized chunk of
// items starting at start: at most MaxBatchOps operations and comfortably
// under the MaxFrame payload bound.
func chunkEnd(items []sim.BatchItem, start int) int {
	bytes := batchHeaderLen
	end := start
	for end < len(items) && end-start < MaxBatchOps {
		it := items[end]
		sz := reqItemOverhead + len(it.Req.Key) + valueHeaderLen + len(it.Req.Value.Value)
		if end > start && bytes+sz > MaxFrame {
			break
		}
		bytes += sz
		end++
	}
	if end == start {
		// A single item too big for any frame: give it its own chunk;
		// roundTripBatch's fitsFrame filter answers it OK: false without
		// ever encoding it.
		end = start + 1
	}
	return end
}

// Flip implements sim.Flipper over the network: it sends a control frame
// to the shard hosting the given server, asking it to switch that replica
// to behavior. This is the remote half of the churn engine — a
// sim.FaultController driving a wire.Client replays its fault schedule
// against a live TCP deployment exactly as it would against an in-memory
// Cluster. The error reports an unreachable shard or a server the
// addressed shard does not host; a schedule driver counts such flips as
// misses and keeps going.
func (c *Client) Flip(ctx context.Context, server int, behavior sim.Behavior) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	addr, ok := c.routes[server]
	if !ok {
		return fmt.Errorf("wire: no route for server %d", server)
	}
	p, err := c.pool(addr)
	if err != nil {
		return err
	}
	resp, err := p.pick().roundTripControl(ctx, uint32(server), behavior)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("wire: flip server %d to %v: shard %s unreachable or not hosting it", server, behavior, addr)
	}
	return nil
}

var _ sim.Flipper = (*Client)(nil)
var _ reconfig.Installer = (*Client)(nil)

// Epoch returns the configuration epoch the client announces ahead of
// its requests: 0 until it adopts a record through InstallEpoch, and
// always 0 for epoch-unaware clients.
func (c *Client) Epoch() uint64 {
	if c.cfg.epoch == nil {
		return 0
	}
	return c.cfg.epoch.Load()
}

// CurrentRecord returns the record the client last adopted; ok is false
// before the first InstallEpoch and on epoch-unaware clients.
func (c *Client) CurrentRecord() (reconfig.Record, bool) {
	if c.cfg.rec == nil {
		return reconfig.Record{}, false
	}
	if p := c.cfg.rec.Load(); p != nil {
		return *p, true
	}
	return reconfig.Record{}, false
}

// InstallEpoch implements reconfig.Installer: the record travels as an
// install frame to every distinct address in the route table, and once
// all shards acknowledge an epoch ≥ rec.Epoch the client adopts it —
// subsequent requests announce the new epoch. This is the cutover step
// of Cluster.Reconfigure over a wire transport; its position AFTER the
// drain and BEFORE the epoch publish is what keeps the adoption safe
// (no request routed with the old system ever announces the new epoch).
// Installs are idempotent at the shards, so retries and concurrent
// coordinators converge. Requires an epoch-aware client (WithEpochs).
func (c *Client) InstallEpoch(ctx context.Context, rec reconfig.Record) error {
	if c.cfg.epoch == nil {
		return fmt.Errorf("wire: InstallEpoch on an epoch-unaware client (dial with WithEpochs)")
	}
	if err := rec.Validate(); err != nil {
		return fmt.Errorf("wire: install: %w", err)
	}
	for _, addr := range c.addrs() {
		p, err := c.pool(addr)
		if err != nil {
			return err
		}
		got, err := p.pick().roundTripReconfig(ctx, ReconfigFrame{Kind: ReconfigInstall, Rec: rec})
		if err != nil {
			return err
		}
		if !got.ok {
			return fmt.Errorf("wire: install epoch %d: shard %s unreachable", rec.Epoch, addr)
		}
		if got.rec.Epoch < rec.Epoch {
			return fmt.Errorf("wire: install epoch %d: shard %s acked epoch %d", rec.Epoch, addr, got.rec.Epoch)
		}
	}
	for {
		cur := c.cfg.epoch.Load()
		if rec.Epoch < cur {
			return nil // a newer adoption raced us; keep it
		}
		if c.cfg.epoch.CompareAndSwap(cur, rec.Epoch) {
			r := rec
			c.cfg.rec.Store(&r)
			return nil
		}
	}
}

// FetchConfig queries every shard for its current record and returns
// the newest one found — the refresh path for a client told it is
// stale. ok is false when no shard has a record installed; the error
// return is reserved for aborts (ctx done, closed client) — an
// unreachable shard is simply skipped, exactly as quorum probes treat
// it.
func (c *Client) FetchConfig(ctx context.Context) (reconfig.Record, bool, error) {
	var best reconfig.Record
	found := false
	for _, addr := range c.addrs() {
		p, err := c.pool(addr)
		if err != nil {
			return reconfig.Record{}, false, err
		}
		got, err := p.pick().roundTripReconfig(ctx, ReconfigFrame{Kind: ReconfigQuery})
		if err != nil {
			return reconfig.Record{}, false, err
		}
		if got.ok && got.rec.Epoch >= best.Epoch && got.rec != (reconfig.Record{}) {
			best, found = got.rec, true
		}
	}
	return best, found, nil
}

// addrs returns the distinct addresses of the route table, sorted for
// deterministic fan-out order.
func (c *Client) addrs() []string {
	out := make([]string, 0, len(c.addrGroup))
	for addr := range c.addrGroup {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

func (c *Client) pool(addr string) (*pool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("wire: client closed")
	}
	p, ok := c.pools[addr]
	if !ok {
		p = newPool(addr, &c.cfg)
		c.pools[addr] = p
	}
	return p, nil
}

// Close tears down every connection. In-flight operations observe
// Response{OK: false}; subsequent Invokes fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	pools := c.pools
	c.pools = make(map[string]*pool)
	c.mu.Unlock()
	for _, p := range pools {
		p.close()
	}
	return nil
}

// pool is the fixed set of connections the client keeps to one address.
type pool struct {
	conns []*conn
	next  atomic.Uint64
}

func newPool(addr string, cfg *dialConfig) *pool {
	p := &pool{conns: make([]*conn, cfg.poolSize)}
	for i := range p.conns {
		p.conns[i] = &conn{addr: addr, cfg: cfg}
	}
	return p
}

// pick round-robins across the pool.
func (p *pool) pick() *conn {
	return p.conns[p.next.Add(1)%uint64(len(p.conns))]
}

func (p *pool) close() {
	for _, cn := range p.conns {
		cn.shutdown()
	}
}

// conn is one pipelined connection slot: a TCP connection (re-established
// on demand) plus the table of in-flight requests awaiting responses.
type conn struct {
	addr string
	cfg  *dialConfig

	// wmu serializes socket writes, separately from mu: a blocking flush
	// must not hold the state mutex, or readLoop could not drain responses
	// while the kernel send buffer is full — with both sides stalled on
	// flow control, that is a distributed deadlock.
	wmu sync.Mutex

	// Announce state, guarded by wmu (NOT mu): the connection the last
	// announce preface was written to and the epoch it named. The decision
	// to preface and the write itself must be one critical section, or two
	// racing senders could order a request ahead of the announce that
	// covers it. Comparing annNC against the live connection makes a
	// reconnect re-announce naturally, with no teardown bookkeeping.
	annNC     net.Conn
	announced uint64

	mu         sync.Mutex
	nc         net.Conn
	bw         *bufio.Writer
	ver        int           // negotiated protocol version; 0 while the hello answer is pending
	helloWait  chan struct{} // non-nil while ver is pending; closed on answer or teardown
	nextID     uint64
	pending    map[uint64]*pendingCall
	nextDialAt time.Time     // backoff gate after a failed dial
	dialDone   chan struct{} // non-nil while a goroutine is dialing; closed when done
	closed     bool
}

// pendingCall is one in-flight frame awaiting its response: a single
// operation, a batch, or a reconfig install/query awaiting a state
// frame. Channels are buffered so teardown and readLoop never block on
// an abandoned waiter.
type pendingCall struct {
	single chan sim.Response   // non-nil for single-operation frames
	batch  chan []sim.Response // non-nil for batch frames
	state  chan stateReply     // non-nil for reconfig install/query frames
	n      int                 // expected batch response count
}

// stateReply is the outcome of a reconfig install or query round trip:
// the shard's record (zero when it has nothing installed) and whether
// the shard answered at all.
type stateReply struct {
	rec reconfig.Record
	ok  bool
}

// fail answers the call the way a crashed peer would. Called with the
// conn state mutex held.
func (pc *pendingCall) fail() {
	switch {
	case pc.single != nil:
		pc.single <- sim.Response{OK: false}
	case pc.state != nil:
		pc.state <- stateReply{}
	default:
		pc.batch <- make([]sim.Response, pc.n) // zero Responses: all OK: false
	}
}

// errDown is the internal signal that the remote end is unreachable; the
// caller translates it into Response{OK: false}.
var errDown = fmt.Errorf("wire: server down")

// roundTrip sends req and waits for its response, ctx, or connection
// death (which counts as Response{OK: false}). Keyless requests travel as
// v1 single frames at every version; a keyed request needs v2 — against a
// v1 peer it answers Response{OK: false}, the suspicion signal, because a
// peer that cannot name the key cannot serve the data.
func (cn *conn) roundTrip(ctx context.Context, server uint32, req sim.Request) (sim.Response, error) {
	if req.Key == "" {
		return cn.roundTripFrame(ctx, func(id uint64) ([]byte, error) {
			return AppendRequest(nil, id, server, req)
		})
	}
	resps, err := cn.roundTripBatch(ctx, []sim.BatchItem{{Server: int(server), Req: req}})
	if err != nil {
		return sim.Response{}, err
	}
	return resps[0], nil
}

// roundTripControl sends a behavior flip and waits for its acknowledgement
// under the same contract as roundTrip: an unreachable shard answers
// Response{OK: false} rather than erroring, because a churn schedule must
// keep running over a partially dead deployment.
func (cn *conn) roundTripControl(ctx context.Context, server uint32, behavior sim.Behavior) (sim.Response, error) {
	return cn.roundTripFrame(ctx, func(id uint64) ([]byte, error) {
		return AppendControl(nil, id, server, behavior)
	})
}

// roundTripReconfig sends a reconfig install or query frame and waits
// for the shard's state reply. An unreachable shard — or a negotiated v1
// peer, which cannot speak the epoch plane — answers stateReply{ok:
// false} rather than erroring; the error return is reserved for aborts
// (ctx done, closed client).
func (cn *conn) roundTripReconfig(ctx context.Context, f ReconfigFrame) (stateReply, error) {
	ver, err := cn.version(ctx)
	if err == errDown {
		return stateReply{}, nil
	}
	if err != nil {
		return stateReply{}, err
	}
	if ver < 2 {
		return stateReply{}, nil
	}
	pc := &pendingCall{state: make(chan stateReply, 1)}
	id, err := cn.send(ctx, func(id uint64) ([]byte, error) {
		return AppendReconfig(nil, id, f)
	}, pc)
	if err == errDown {
		return stateReply{}, nil
	}
	if err != nil {
		return stateReply{}, err
	}
	select {
	case got := <-pc.state:
		// Connection teardown answers pending calls with the zero reply,
		// so an answer always arrives; dead shards read as unreachable.
		return got, nil
	case <-ctx.Done():
		cn.forget(id)
		return stateReply{}, ctx.Err()
	}
}

// roundTripFrame sends the single-operation frame built by encode (called
// with the fresh request ID under the connection's state mutex) and waits
// for the matching response, ctx, or connection death (which counts as
// Response{OK: false}).
func (cn *conn) roundTripFrame(ctx context.Context, encode func(id uint64) ([]byte, error)) (sim.Response, error) {
	pc := &pendingCall{single: make(chan sim.Response, 1)}
	id, err := cn.send(ctx, encode, pc)
	if err == errDown {
		return sim.Response{OK: false}, nil
	}
	if err != nil {
		return sim.Response{}, err
	}
	select {
	case resp := <-pc.single:
		// Connection teardown answers all pending requests with OK: false,
		// so a response always arrives; dead servers read as crashed.
		return resp, nil
	case <-ctx.Done():
		cn.forget(id)
		return sim.Response{}, ctx.Err()
	}
}

// roundTripBatch sends one batch frame and waits for its aligned
// responses. An unreachable peer fails the WHOLE batch fast, as a unit:
// one dial attempt or one backoff-gate check answers every item with
// Response{OK: false} — this is what keeps a dead shard's cost at one
// redial-backoff window instead of one per operation. Against a
// negotiated v1 peer there are no batch frames; items fall back to
// pipelined v1 singles, and keyed items answer Response{OK: false}.
func (cn *conn) roundTripBatch(ctx context.Context, items []sim.BatchItem) ([]sim.Response, error) {
	ver, err := cn.version(ctx)
	if err == errDown {
		return make([]sim.Response, len(items)), nil // whole frame down, as a unit
	}
	if err != nil {
		return nil, err
	}
	if ver < 2 {
		// Legacy peer: no batch frames. Items travel as concurrent v1
		// singles pipelined on this connection, so batching against a v1
		// daemon costs what not batching costs; keyed items answer
		// OK: false (the v1 frame cannot carry a key).
		out := make([]sim.Response, len(items))
		errs := make(chan error, len(items))
		sent := 0
		for i, it := range items {
			if it.Req.Key != "" {
				continue
			}
			sent++
			go func(i int, server uint32, req sim.Request) {
				resp, rerr := cn.roundTrip(ctx, server, req)
				if rerr == nil {
					out[i] = resp
				}
				errs <- rerr
			}(i, uint32(it.Server), it.Req)
		}
		var firstErr error
		for ; sent > 0; sent-- {
			if rerr := <-errs; rerr != nil && firstErr == nil {
				firstErr = rerr
			}
		}
		if firstErr != nil {
			return nil, firstErr
		}
		return out, nil
	}
	// An item no frame can carry (key or value past the per-frame bounds)
	// answers OK: false on its own; it must not poison the frame with an
	// encode error that would fail every innocent operation sharing it.
	out := make([]sim.Response, len(items))
	sendable := make([]sim.BatchItem, 0, len(items))
	idx := make([]int, 0, len(items))
	for i, it := range items {
		if fitsFrame(it) {
			sendable = append(sendable, it)
			idx = append(idx, i)
		}
	}
	if len(sendable) == 0 {
		return out, nil
	}
	pc := &pendingCall{batch: make(chan []sim.Response, 1), n: len(sendable)}
	cn.cfg.met.batchOps.Observe(float64(len(sendable)))
	id, err := cn.send(ctx, func(id uint64) ([]byte, error) {
		return AppendBatchRequest(nil, id, sendable)
	}, pc)
	if err == errDown {
		return out, nil
	}
	if err != nil {
		return nil, err
	}
	select {
	case resps := <-pc.batch:
		for k, r := range resps {
			out[idx[k]] = r
		}
		return out, nil
	case <-ctx.Done():
		cn.forget(id)
		return nil, ctx.Err()
	}
}

// fitsFrame reports whether the item can be encoded in a batch frame at
// all, even alone. v1's MaxValueLen is sized for the smaller v1 header,
// so a handful of maximum-length values that were legal as v1 single
// frames do not fit the roomier v2 item encoding; they read as
// unresponsive rather than as an abort.
func fitsFrame(it sim.BatchItem) bool {
	return it.Server >= 0 &&
		len(it.Req.Key) <= MaxKeyLen &&
		batchHeaderLen+reqItemOverhead+len(it.Req.Key)+valueHeaderLen+len(it.Req.Value.Value) <= MaxFrame
}

// version returns the connection's negotiated protocol version,
// establishing the connection and waiting out the hello exchange as
// needed. errDown reports an unreachable peer — including a v1 peer that
// dropped the connection at our hello, which is indistinguishable from a
// crash and handled the same way.
func (cn *conn) version(ctx context.Context) (int, error) {
	if err := cn.ensureConn(ctx); err != nil {
		return 0, err
	}
	for {
		cn.mu.Lock()
		switch {
		case cn.closed:
			cn.mu.Unlock()
			return 0, fmt.Errorf("wire: client closed")
		case cn.ver != 0 && cn.nc != nil:
			v := cn.ver
			cn.mu.Unlock()
			return v, nil
		case cn.nc == nil:
			cn.mu.Unlock()
			return 0, errDown // died before (or during) the hello exchange
		}
		wait := cn.helloWait
		cn.mu.Unlock()
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-wait:
		}
	}
}

// send ensures the connection is up, registers the pending call, and
// writes the frame built by encode. The write itself happens outside the
// state mutex (under wmu) so responses keep flowing while it blocks.
func (cn *conn) send(ctx context.Context, encode func(id uint64) ([]byte, error), pc *pendingCall) (uint64, error) {
	if err := cn.ensureConn(ctx); err != nil {
		return 0, err
	}
	cn.mu.Lock()
	if cn.closed {
		cn.mu.Unlock()
		return 0, fmt.Errorf("wire: client closed")
	}
	if cn.nc == nil {
		// The connection died between ensureConn and here; treat the
		// servers behind it as down rather than re-dialing in a loop.
		cn.mu.Unlock()
		return 0, errDown
	}
	cn.nextID++
	id := cn.nextID
	frame, err := encode(id)
	if err != nil {
		cn.mu.Unlock()
		return 0, err // unencodable frame (oversized value): caller bug, abort
	}
	cn.pending[id] = pc
	nc, bw, ver := cn.nc, cn.bw, cn.ver
	cn.mu.Unlock()

	cn.wmu.Lock()
	var werr error
	frames, bytes := 1, len(frame)
	if cn.cfg.epoch != nil && ver != 1 {
		// Epoch-aware clients preface the frame with an announce whenever
		// this connection has not yet named the current epoch — on first
		// use, after a reconnect, and after each InstallEpoch adoption.
		// Negotiated v1 peers are exempt: they cannot parse the frame, and
		// their servers serve un-announced connections ungated anyway.
		if cur := cn.cfg.epoch.Load(); cn.annNC != nc || cn.announced != cur {
			preface, perr := AppendReconfig(nil, 0, ReconfigFrame{Kind: ReconfigAnnounce, Epoch: cur})
			if perr == nil {
				if _, werr = bw.Write(preface); werr == nil {
					cn.annNC, cn.announced = nc, cur
					frames, bytes = frames+1, bytes+len(preface)
				}
			}
		}
	}
	if werr == nil {
		_, werr = bw.Write(frame)
	}
	if werr == nil {
		werr = bw.Flush()
	}
	cn.wmu.Unlock()
	if werr == nil {
		cn.cfg.met.framesOut.Add(int64(frames))
		cn.cfg.met.bytesOut.Add(int64(bytes))
	}
	if werr != nil {
		cn.mu.Lock()
		cn.teardownLocked(nc)
		cn.mu.Unlock()
		// Teardown (ours, or a concurrent one that beat us to it) already
		// answered the pending entry with OK: false if it was still
		// registered; reporting errDown here reads the same to the caller.
		return 0, errDown
	}
	return id, nil
}

// ensureConn returns once a connection is established (by this goroutine
// or a concurrent one), the address is in redial backoff (errDown), or
// ctx is done. The dial itself runs outside cn.mu so concurrent probes —
// and the response readLoop — are never blocked behind a slow connect;
// they either wait interruptibly on the dialer's completion channel or
// fail fast on the backoff gate.
func (cn *conn) ensureConn(ctx context.Context) error {
	for {
		cn.mu.Lock()
		switch {
		case cn.closed:
			cn.mu.Unlock()
			return fmt.Errorf("wire: client closed")
		case cn.nc != nil:
			cn.mu.Unlock()
			return nil
		case cn.dialDone != nil:
			// Another goroutine is dialing; wait for its outcome without
			// holding the mutex, then re-examine the state.
			done := cn.dialDone
			cn.mu.Unlock()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-done:
				continue
			}
		case time.Now().Before(cn.nextDialAt):
			cn.mu.Unlock()
			return errDown
		}
		done := make(chan struct{})
		cn.dialDone = done
		cn.mu.Unlock()

		d := net.Dialer{Timeout: cn.cfg.dialTimeout}
		nc, err := d.DialContext(ctx, "tcp", cn.addr)

		cn.mu.Lock()
		cn.dialDone = nil
		close(done)
		if err != nil {
			// Arm the backoff only for genuine dial failures: a dial cut
			// short by the caller's own ctx says nothing about the address,
			// and must not mark a healthy shard down.
			ctxErr := ctx.Err()
			if ctxErr == nil {
				cn.nextDialAt = time.Now().Add(cn.cfg.redialBackoff)
				cn.cfg.met.dialsErr.Inc()
				cn.cfg.met.reg.Eventf("wire: dial %s failed: %v", cn.addr, err)
			}
			cn.mu.Unlock()
			if ctxErr != nil {
				return ctxErr
			}
			return errDown
		}
		if cn.closed {
			cn.mu.Unlock()
			nc.Close()
			return fmt.Errorf("wire: client closed")
		}
		cn.cfg.met.dialsOK.Inc()
		cn.nc = nc
		cn.bw = bufio.NewWriter(nc)
		cn.pending = make(map[uint64]*pendingCall)
		if cn.cfg.version >= 2 {
			// Open with the version hello; the negotiated answer arrives on
			// the readLoop. No other writer can exist yet — the connection
			// becomes visible only when cn.mu is released — so writing here
			// cannot interleave with a request frame.
			cn.ver = 0
			cn.helloWait = make(chan struct{})
			hello := AppendHello(nil, byte(cn.cfg.version))
			cn.bw.Write(hello)
			if err := cn.bw.Flush(); err != nil {
				cn.teardownLocked(nc)
				cn.mu.Unlock()
				return errDown
			}
			// The hello travels outside sendFrame, so it is counted here —
			// keeping the client's out-frame count the mirror image of the
			// server's in-frame count.
			cn.cfg.met.framesOut.Inc()
			cn.cfg.met.bytesOut.Add(int64(len(hello)))
		} else {
			cn.ver = 1
			cn.helloWait = nil
			cn.cfg.met.connNegotiated(1)
		}
		go cn.readLoop(nc)
		cn.mu.Unlock()
		return nil
	}
}

// readLoop dispatches response frames to their pending calls until the
// connection dies, then fails whatever is still in flight.
func (cn *conn) readLoop(nc net.Conn) {
	br := bufio.NewReader(nc)
	var buf []byte
	for {
		frame, err := ReadFrame(br, buf)
		if err != nil {
			break
		}
		buf = frame
		if len(frame) == 0 {
			break
		}
		cn.cfg.met.framesIn.Inc()
		cn.cfg.met.bytesIn.Add(int64(len(frame)) + 4) // +4: the length prefix is wire bytes too
		switch frame[0] {
		case tagHello:
			sv, err := DecodeHello(frame)
			if err != nil {
				goto done // corrupt stream: no way to re-synchronize
			}
			cn.mu.Lock()
			if cn.nc == nc && cn.helloWait != nil {
				cn.ver = min(cn.cfg.version, int(sv))
				cn.cfg.met.connNegotiated(cn.ver)
				close(cn.helloWait)
				cn.helloWait = nil
			}
			cn.mu.Unlock()
		case tagReconfig:
			rid, rf, err := DecodeReconfig(frame)
			if err != nil {
				goto done
			}
			switch rf.Kind {
			case ReconfigState:
				cn.mu.Lock()
				pc, ok := cn.pending[rid]
				if ok && pc.state != nil {
					delete(cn.pending, rid)
					cn.mu.Unlock()
					pc.state <- stateReply{rec: rf.Rec, ok: true} // buffered; never blocks
					continue
				}
				cn.mu.Unlock()
				if ok {
					goto done // a non-reconfig call answered with a state frame
				}
			case ReconfigWrongEpoch:
				// The shard refused the request because this connection's
				// announced epoch is not its own. The rejection answers the
				// call the retriable way — Response{OK: false}, never an
				// abort — and the embedding layer hears about the shard's
				// record so it can refresh.
				cn.cfg.met.wrongEpoch.Inc()
				cn.mu.Lock()
				pc, ok := cn.pending[rid]
				if ok {
					delete(cn.pending, rid)
					pc.fail()
				}
				cn.mu.Unlock()
				if h := cn.cfg.onStale; h != nil {
					h(rf.Rec)
				}
			default:
				goto done // announce/install/query from a server: protocol error
			}
		case tagBatchResponse:
			id, resps, err := DecodeBatchResponse(frame)
			if err != nil {
				goto done
			}
			cn.mu.Lock()
			pc, ok := cn.pending[id]
			if ok && pc.batch != nil && len(resps) == pc.n {
				delete(cn.pending, id)
				cn.mu.Unlock()
				pc.batch <- resps // buffered; never blocks
				continue
			}
			cn.mu.Unlock()
			if ok {
				goto done // kind or count mismatch: protocol error
			}
			// Unknown id: a late response for a forgotten call; drop it.
		default:
			id, resp, err := DecodeResponse(frame)
			if err != nil {
				goto done
			}
			cn.mu.Lock()
			pc, ok := cn.pending[id]
			if ok && pc.single != nil {
				delete(cn.pending, id)
				cn.mu.Unlock()
				pc.single <- resp // buffered; never blocks
				continue
			}
			cn.mu.Unlock()
			if ok {
				goto done // a batch call answered with a single frame: protocol error
			}
		}
	}
done:
	cn.mu.Lock()
	cn.teardownLocked(nc)
	cn.mu.Unlock()
}

// teardownLocked closes nc and, if it is still the active connection,
// answers every pending call with OK: false so waiters treat the remote
// servers as crashed, and releases any goroutine parked on the hello
// exchange. Called with cn.mu held.
func (cn *conn) teardownLocked(nc net.Conn) {
	nc.Close()
	if cn.nc != nc {
		return
	}
	cn.nc = nil
	cn.bw = nil
	if cn.helloWait != nil {
		close(cn.helloWait)
		cn.helloWait = nil
	}
	cn.ver = 0
	for id, pc := range cn.pending {
		delete(cn.pending, id)
		pc.fail()
	}
}

// forget drops a pending entry after ctx cancellation; a late response
// for it is discarded by readLoop.
func (cn *conn) forget(id uint64) {
	cn.mu.Lock()
	delete(cn.pending, id)
	cn.mu.Unlock()
}

func (cn *conn) shutdown() {
	cn.mu.Lock()
	cn.closed = true
	if cn.nc != nil {
		cn.teardownLocked(cn.nc)
	}
	cn.mu.Unlock()
}
