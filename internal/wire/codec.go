// Package wire runs the [MR98a] register protocol over real TCP. It
// supplies the three pieces the in-memory simulator deliberately left
// pluggable behind sim.Transport:
//
//   - a length-prefixed binary wire format for sim.Request/sim.Response
//     frames, with request IDs so one connection can carry many
//     outstanding operations (this file);
//   - Server, a TCP listener hosting a shard of sim.Server replicas
//     behind concurrent connection handlers with graceful shutdown
//     (server.go);
//   - Client, a sim.Transport that routes each probe to the address
//     hosting that server, with per-address connection pooling, request
//     pipelining and automatic reconnect (client.go). A server that is
//     unreachable answers Response{OK: false} — exactly the suspicion
//     signal the quorum re-selection logic expects — so a Cluster built
//     over a wire.Client behaves like one over the in-memory transport.
//
// The combination turns the reproduction into an actual distributed
// system: cmd/bqs-server hosts shards of the universe, cmd/bqs-client
// drives the mixed workload against them, and the measured peak load is
// directly comparable to the paper's L(Q) bounds (Theorem 4.1).
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"bqs/internal/sim"
)

// Frame layout. Every message is a 4-byte big-endian payload length
// followed by the payload; the first payload byte tags the message kind.
// This file defines the protocol v1 frames (one keyless operation each)
// plus the version-independent control frame; codecv2.go adds the v2
// hello and keyed batch frames.
//
//	request  := tagRequest id:u64 server:u32 op:u8 reader:i64 value
//	response := tagResponse id:u64 flags:u8 value
//	control  := tagControl id:u64 server:u32 behavior:u8
//	value    := seq:i64 writer:i64 len:u32 bytes
//
// id is the pipelining correlation token: the client picks it, the server
// echoes it, and responses may arrive in any order. flags bit 0 is
// Response.OK. All integers are big-endian; Timestamp.Writer and
// Request.ReaderID travel as 64-bit two's complement so negative sentinel
// writers (the collusion timestamps use Writer = −1) survive the trip.
//
// The control frame is the fault-injection channel of the churn engine:
// it asks the shard hosting the addressed server to flip that replica to
// the given sim.Behavior, and is answered with an ordinary response frame
// (OK reports whether the replica is hosted here). It is what lets a
// remote schedule driver (sim.FaultController over a wire.Client) crash
// and recover servers mid-run, so live availability can be measured
// against F_p(Q) (Definition 3.10) over real TCP.
const (
	tagRequest  = 0x51
	tagResponse = 0x52
	tagControl  = 0x53

	// MaxFrame bounds a payload so a corrupt or hostile length prefix
	// cannot make a peer allocate unboundedly. It also caps the value a
	// write can carry (MaxValueLen).
	MaxFrame = 1 << 20

	valueHeaderLen   = 8 + 8 + 4         // seq + writer + len
	requestOverhead  = 1 + 8 + 4 + 1 + 8 // tag + id + server + op + reader
	responseOverhead = 1 + 8 + 1         // tag + id + flags
	reqHeaderLen     = requestOverhead + valueHeaderLen
	respHeaderLen    = responseOverhead + valueHeaderLen
	controlLen       = 1 + 8 + 4 + 1 // tag + id + server + behavior

	// MaxValueLen is the longest register value a frame can carry.
	MaxValueLen = MaxFrame - reqHeaderLen
)

const flagOK = 1 << 0

func appendValue(dst []byte, tv sim.TaggedValue) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(tv.TS.Seq))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(tv.TS.Writer)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(tv.Value)))
	return append(dst, tv.Value...)
}

func decodeValue(p []byte) (sim.TaggedValue, []byte, error) {
	if len(p) < valueHeaderLen {
		return sim.TaggedValue{}, nil, fmt.Errorf("wire: truncated value header (%d bytes)", len(p))
	}
	var tv sim.TaggedValue
	tv.TS.Seq = int64(binary.BigEndian.Uint64(p))
	tv.TS.Writer = int(int64(binary.BigEndian.Uint64(p[8:])))
	n := binary.BigEndian.Uint32(p[16:])
	p = p[valueHeaderLen:]
	if n > MaxValueLen {
		return sim.TaggedValue{}, nil, fmt.Errorf("wire: value length %d exceeds %d", n, MaxValueLen)
	}
	if uint32(len(p)) < n {
		return sim.TaggedValue{}, nil, fmt.Errorf("wire: truncated value (%d of %d bytes)", len(p), n)
	}
	tv.Value = string(p[:n])
	return tv, p[n:], nil
}

// AppendRequest appends a complete request frame (length prefix included)
// for req addressed to the given global server index, correlated by id.
// This is the v1 single-operation frame, which has no room for a register
// key: a keyed request is rejected rather than silently collapsed onto
// the default key (that would be data corruption, not interop) — keyed
// operations need the v2 batch frames of codecv2.go.
func AppendRequest(dst []byte, id uint64, server uint32, req sim.Request) ([]byte, error) {
	if req.Key != "" {
		return dst, fmt.Errorf("wire: v1 request frame cannot carry key %q", req.Key)
	}
	if len(req.Value.Value) > MaxValueLen {
		return dst, fmt.Errorf("wire: value of %d bytes exceeds %d", len(req.Value.Value), MaxValueLen)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(reqHeaderLen+len(req.Value.Value)))
	dst = append(dst, tagRequest)
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = binary.BigEndian.AppendUint32(dst, server)
	dst = append(dst, byte(req.Op))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(req.ReaderID)))
	return appendValue(dst, req.Value), nil
}

// DecodeRequest parses a request payload (the frame minus its length
// prefix, as returned by ReadFrame).
func DecodeRequest(p []byte) (id uint64, server uint32, req sim.Request, err error) {
	if len(p) < reqHeaderLen {
		return 0, 0, sim.Request{}, fmt.Errorf("wire: request payload of %d bytes shorter than header %d", len(p), reqHeaderLen)
	}
	if p[0] != tagRequest {
		return 0, 0, sim.Request{}, fmt.Errorf("wire: payload tag %#x is not a request", p[0])
	}
	id = binary.BigEndian.Uint64(p[1:])
	server = binary.BigEndian.Uint32(p[9:])
	req.Op = sim.Op(p[13])
	req.ReaderID = int(int64(binary.BigEndian.Uint64(p[14:])))
	tv, rest, err := decodeValue(p[requestOverhead:])
	if err != nil {
		return 0, 0, sim.Request{}, err
	}
	if len(rest) != 0 {
		return 0, 0, sim.Request{}, fmt.Errorf("wire: %d trailing bytes after request", len(rest))
	}
	req.Value = tv
	return id, server, req, nil
}

// AppendResponse appends a complete response frame answering request id.
func AppendResponse(dst []byte, id uint64, resp sim.Response) ([]byte, error) {
	if len(resp.Value.Value) > MaxValueLen {
		return dst, fmt.Errorf("wire: value of %d bytes exceeds %d", len(resp.Value.Value), MaxValueLen)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(respHeaderLen+len(resp.Value.Value)))
	dst = append(dst, tagResponse)
	dst = binary.BigEndian.AppendUint64(dst, id)
	var flags byte
	if resp.OK {
		flags |= flagOK
	}
	dst = append(dst, flags)
	return appendValue(dst, resp.Value), nil
}

// DecodeResponse parses a response payload.
func DecodeResponse(p []byte) (id uint64, resp sim.Response, err error) {
	if len(p) < respHeaderLen {
		return 0, sim.Response{}, fmt.Errorf("wire: response payload of %d bytes shorter than header %d", len(p), respHeaderLen)
	}
	if p[0] != tagResponse {
		return 0, sim.Response{}, fmt.Errorf("wire: payload tag %#x is not a response", p[0])
	}
	id = binary.BigEndian.Uint64(p[1:])
	if p[9]&^flagOK != 0 {
		return 0, sim.Response{}, fmt.Errorf("wire: unknown response flags %#x", p[9])
	}
	resp.OK = p[9]&flagOK != 0
	tv, rest, err := decodeValue(p[responseOverhead:])
	if err != nil {
		return 0, sim.Response{}, err
	}
	if len(rest) != 0 {
		return 0, sim.Response{}, fmt.Errorf("wire: %d trailing bytes after response", len(rest))
	}
	resp.Value = tv
	return id, resp, nil
}

// AppendControl appends a complete control frame (length prefix included)
// asking the shard hosting the given global server index to flip that
// replica to behavior, correlated by id. Unknown behaviors are rejected at
// encode time, mirroring the decoder, so a bad flip fails at the caller
// instead of poisoning the stream.
func AppendControl(dst []byte, id uint64, server uint32, behavior sim.Behavior) ([]byte, error) {
	if !sim.KnownBehavior(behavior) {
		return dst, fmt.Errorf("wire: unknown behavior %d", int(behavior))
	}
	dst = binary.BigEndian.AppendUint32(dst, controlLen)
	dst = append(dst, tagControl)
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = binary.BigEndian.AppendUint32(dst, server)
	return append(dst, byte(behavior)), nil
}

// DecodeControl parses a control payload. Like the response decoder's
// flag check, it rejects behavior bytes outside the defined range, so a
// hostile or corrupt peer cannot flip a replica into an undefined mode.
func DecodeControl(p []byte) (id uint64, server uint32, behavior sim.Behavior, err error) {
	if len(p) != controlLen {
		return 0, 0, 0, fmt.Errorf("wire: control payload of %d bytes, want %d", len(p), controlLen)
	}
	if p[0] != tagControl {
		return 0, 0, 0, fmt.Errorf("wire: payload tag %#x is not a control frame", p[0])
	}
	id = binary.BigEndian.Uint64(p[1:])
	server = binary.BigEndian.Uint32(p[9:])
	behavior = sim.Behavior(p[13])
	if !sim.KnownBehavior(behavior) {
		return 0, 0, 0, fmt.Errorf("wire: unknown behavior %d in control frame", int(behavior))
	}
	return id, server, behavior, nil
}

// ReadFrame reads one length-prefixed payload from r, reusing buf when it
// is large enough. The prefix counts the payload only (not itself), and
// ReadFrame refuses payloads larger than MaxFrame, so a garbage prefix
// fails fast instead of forcing a huge allocation.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("wire: frame length %d outside [1,%d]", n, MaxFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
