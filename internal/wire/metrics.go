package wire

import (
	"strconv"

	"bqs/internal/obs"
)

// wireMetrics is the pre-resolved instrument set for one side of the
// protocol. Client and server register the same series distinguished by
// the side label, so a test process hosting both keeps the directions
// separate. All fields are nil without a registry; obs instruments are
// nil-safe, so call sites need no guards.
type wireMetrics struct {
	on   bool
	reg  *obs.Registry
	side string

	framesIn   *obs.Counter   // bqs_wire_frames_total{side,dir="in"}
	framesOut  *obs.Counter   // bqs_wire_frames_total{side,dir="out"}
	bytesIn    *obs.Counter   // bqs_wire_bytes_total{side,dir="in"}
	bytesOut   *obs.Counter   // bqs_wire_bytes_total{side,dir="out"}
	batchOps   *obs.Histogram // bqs_wire_batch_ops{side}: items per batch frame
	dialsOK    *obs.Counter   // bqs_wire_dials_total{result="ok"} (client side)
	dialsErr   *obs.Counter   // bqs_wire_dials_total{result="err"} (client side)
	wrongEpoch *obs.Counter   // bqs_wire_wrong_epoch_total{side}: epoch-gated rejections
}

func newWireMetrics(reg *obs.Registry, side string) *wireMetrics {
	if reg == nil {
		return &wireMetrics{}
	}
	return &wireMetrics{
		on:         true,
		reg:        reg,
		side:       side,
		framesIn:   reg.Counter("bqs_wire_frames_total", "side", side, "dir", "in"),
		framesOut:  reg.Counter("bqs_wire_frames_total", "side", side, "dir", "out"),
		bytesIn:    reg.Counter("bqs_wire_bytes_total", "side", side, "dir", "in"),
		bytesOut:   reg.Counter("bqs_wire_bytes_total", "side", side, "dir", "out"),
		batchOps:   reg.Histogram("bqs_wire_batch_ops", obs.SizeBuckets, "side", side),
		dialsOK:    reg.Counter("bqs_wire_dials_total", "result", "ok"),
		dialsErr:   reg.Counter("bqs_wire_dials_total", "result", "err"),
		wrongEpoch: reg.Counter("bqs_wire_wrong_epoch_total", "side", side),
	}
}

// connNegotiated counts one connection at its negotiated protocol
// version — the live version-mix series for a fleet mid-upgrade.
// Registration is get-or-create, so the registry lookup per connection
// is a cold-path map hit, not a new series each time.
func (m *wireMetrics) connNegotiated(ver int) {
	if m == nil || !m.on {
		return
	}
	m.reg.Counter("bqs_wire_conns_total", "side", m.side, "version", strconv.Itoa(ver)).Inc()
}
