package wire

import (
	"encoding/binary"
	"fmt"

	"bqs/internal/sim"
)

// Protocol v2: keyed, batched frames. The v1 frames of codec.go carry one
// keyless operation each; v2 adds
//
//	hello     := tagHello ver:u8
//	batchReq  := tagBatchRequest id:u64 count:u16 reqItem*
//	reqItem   := server:u32 op:u8 reader:i64 keylen:u16 key value
//	batchResp := tagBatchResponse id:u64 count:u16 respItem*
//	respItem  := flags:u8 value
//
// (value as in codec.go: seq:i64 writer:i64 len:u32 bytes). A batch frame
// carries operations for any mix of servers, so one frame serves a whole
// shard: the receiving daemon fans the items across the replicas it hosts
// and answers with a batchResp whose items align index-by-index with the
// request. id is the same pipelining correlation token v1 uses; batch and
// single frames share one id space per connection.
//
// Version negotiation happens at connect: the client's first frame is a
// hello carrying the highest version it speaks, and the server answers
// with min(its own highest, the client's). Keyless single operations are
// valid v1 frames and may be pipelined behind the hello immediately;
// anything that needs v2 framing (keys, batches) waits for the answer
// and is framed at the negotiated version — against a v1 peer that means
// single keyless v1 frames only (keyed operations answer
// Response{OK: false}, indistinguishable from a crashed server, so
// quorum re-selection routes around the downgrade). A
// v1 server drops the connection at the unknown hello tag, which tears
// down the pending hello wait exactly like a crash; a v2 server that
// receives an ordinary v1 frame first simply serves the connection as v1
// — old clients interoperate without ever knowing v2 exists.
const (
	tagHello         = 0x54
	tagBatchRequest  = 0x55
	tagBatchResponse = 0x56

	// ProtoVersion is the highest protocol version this build speaks.
	ProtoVersion = 2

	helloLen        = 1 + 1              // tag + version
	batchHeaderLen  = 1 + 8 + 2          // tag + id + count
	reqItemOverhead = 4 + 1 + 8 + 2      // server + op + reader + keylen
	respItemMinLen  = 1 + valueHeaderLen // flags + value header

	// MaxKeyLen bounds a register key on the wire, so a hostile keylen
	// cannot push the item header past the frame.
	MaxKeyLen = 1 << 12

	// MaxBatchOps bounds how many operations one batch frame may carry.
	MaxBatchOps = 1 << 10
)

// AppendHello appends a complete hello frame advertising version ver.
func AppendHello(dst []byte, ver byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, helloLen)
	dst = append(dst, tagHello, ver)
	return dst
}

// DecodeHello parses a hello payload and returns the advertised version.
// A version of 0 is rejected: no peer speaks it, so it can only be
// corruption.
func DecodeHello(p []byte) (byte, error) {
	if len(p) != helloLen {
		return 0, fmt.Errorf("wire: hello payload of %d bytes, want %d", len(p), helloLen)
	}
	if p[0] != tagHello {
		return 0, fmt.Errorf("wire: payload tag %#x is not a hello", p[0])
	}
	if p[1] == 0 {
		return 0, fmt.Errorf("wire: hello advertises version 0")
	}
	return p[1], nil
}

// AppendBatchRequest appends a complete v2 batch-request frame carrying
// items, correlated by id. Items may address different servers — the
// shard hosting them fans the batch across its replicas. Oversized keys,
// values, batches, or a total payload past MaxFrame are rejected at
// encode time, mirroring the decoder.
func AppendBatchRequest(dst []byte, id uint64, items []sim.BatchItem) ([]byte, error) {
	if len(items) == 0 || len(items) > MaxBatchOps {
		return dst, fmt.Errorf("wire: batch of %d operations outside [1,%d]", len(items), MaxBatchOps)
	}
	total := batchHeaderLen
	for _, it := range items {
		if it.Server < 0 || int64(it.Server) > int64(^uint32(0)) {
			return dst, fmt.Errorf("wire: server index %d does not fit a frame", it.Server)
		}
		if len(it.Req.Key) > MaxKeyLen {
			return dst, fmt.Errorf("wire: key of %d bytes exceeds %d", len(it.Req.Key), MaxKeyLen)
		}
		if len(it.Req.Value.Value) > MaxValueLen {
			return dst, fmt.Errorf("wire: value of %d bytes exceeds %d", len(it.Req.Value.Value), MaxValueLen)
		}
		total += reqItemOverhead + len(it.Req.Key) + valueHeaderLen + len(it.Req.Value.Value)
	}
	if total > MaxFrame {
		return dst, fmt.Errorf("wire: batch frame of %d bytes exceeds %d", total, MaxFrame)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(total))
	dst = append(dst, tagBatchRequest)
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(items)))
	for _, it := range items {
		dst = binary.BigEndian.AppendUint32(dst, uint32(it.Server))
		dst = append(dst, byte(it.Req.Op))
		dst = binary.BigEndian.AppendUint64(dst, uint64(int64(it.Req.ReaderID)))
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(it.Req.Key)))
		dst = append(dst, it.Req.Key...)
		dst = appendValue(dst, it.Req.Value)
	}
	return dst, nil
}

// DecodeBatchRequest parses a batch-request payload.
func DecodeBatchRequest(p []byte) (id uint64, items []sim.BatchItem, err error) {
	if len(p) < batchHeaderLen {
		return 0, nil, fmt.Errorf("wire: batch payload of %d bytes shorter than header %d", len(p), batchHeaderLen)
	}
	if p[0] != tagBatchRequest {
		return 0, nil, fmt.Errorf("wire: payload tag %#x is not a batch request", p[0])
	}
	id = binary.BigEndian.Uint64(p[1:])
	count := int(binary.BigEndian.Uint16(p[9:]))
	if count == 0 || count > MaxBatchOps {
		return 0, nil, fmt.Errorf("wire: batch count %d outside [1,%d]", count, MaxBatchOps)
	}
	p = p[batchHeaderLen:]
	items = make([]sim.BatchItem, 0, count)
	for i := 0; i < count; i++ {
		if len(p) < reqItemOverhead {
			return 0, nil, fmt.Errorf("wire: truncated batch item %d (%d bytes)", i, len(p))
		}
		var it sim.BatchItem
		it.Server = int(binary.BigEndian.Uint32(p))
		it.Req.Op = sim.Op(p[4])
		it.Req.ReaderID = int(int64(binary.BigEndian.Uint64(p[5:])))
		klen := int(binary.BigEndian.Uint16(p[13:]))
		if klen > MaxKeyLen {
			return 0, nil, fmt.Errorf("wire: key length %d exceeds %d", klen, MaxKeyLen)
		}
		p = p[reqItemOverhead:]
		if len(p) < klen {
			return 0, nil, fmt.Errorf("wire: truncated key (%d of %d bytes)", len(p), klen)
		}
		it.Req.Key = string(p[:klen])
		tv, rest, err := decodeValue(p[klen:])
		if err != nil {
			return 0, nil, err
		}
		it.Req.Value = tv
		p = rest
		items = append(items, it)
	}
	if len(p) != 0 {
		return 0, nil, fmt.Errorf("wire: %d trailing bytes after batch request", len(p))
	}
	return id, items, nil
}

// AppendBatchResponse appends a complete v2 batch-response frame
// answering batch id; resps must align index-by-index with the request's
// items. A response value too large for a frame is the caller's bug at
// this layer (the server degrades oversized replica answers to
// unresponsiveness before encoding).
func AppendBatchResponse(dst []byte, id uint64, resps []sim.Response) ([]byte, error) {
	if len(resps) == 0 || len(resps) > MaxBatchOps {
		return dst, fmt.Errorf("wire: batch of %d responses outside [1,%d]", len(resps), MaxBatchOps)
	}
	total := batchHeaderLen
	for _, r := range resps {
		if len(r.Value.Value) > MaxValueLen {
			return dst, fmt.Errorf("wire: value of %d bytes exceeds %d", len(r.Value.Value), MaxValueLen)
		}
		total += respItemMinLen + len(r.Value.Value)
	}
	if total > MaxFrame {
		return dst, fmt.Errorf("wire: batch frame of %d bytes exceeds %d", total, MaxFrame)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(total))
	dst = append(dst, tagBatchResponse)
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(resps)))
	for _, r := range resps {
		var flags byte
		if r.OK {
			flags |= flagOK
		}
		dst = append(dst, flags)
		dst = appendValue(dst, r.Value)
	}
	return dst, nil
}

// DecodeBatchResponse parses a batch-response payload. Like the v1
// response decoder, unknown flag bits are rejected so a future protocol
// revision cannot be half-understood silently.
func DecodeBatchResponse(p []byte) (id uint64, resps []sim.Response, err error) {
	if len(p) < batchHeaderLen {
		return 0, nil, fmt.Errorf("wire: batch payload of %d bytes shorter than header %d", len(p), batchHeaderLen)
	}
	if p[0] != tagBatchResponse {
		return 0, nil, fmt.Errorf("wire: payload tag %#x is not a batch response", p[0])
	}
	id = binary.BigEndian.Uint64(p[1:])
	count := int(binary.BigEndian.Uint16(p[9:]))
	if count == 0 || count > MaxBatchOps {
		return 0, nil, fmt.Errorf("wire: batch count %d outside [1,%d]", count, MaxBatchOps)
	}
	p = p[batchHeaderLen:]
	resps = make([]sim.Response, 0, count)
	for i := 0; i < count; i++ {
		if len(p) < respItemMinLen {
			return 0, nil, fmt.Errorf("wire: truncated batch response item %d (%d bytes)", i, len(p))
		}
		if p[0]&^flagOK != 0 {
			return 0, nil, fmt.Errorf("wire: unknown response flags %#x", p[0])
		}
		var r sim.Response
		r.OK = p[0]&flagOK != 0
		tv, rest, err := decodeValue(p[1:])
		if err != nil {
			return 0, nil, err
		}
		r.Value = tv
		p = rest
		resps = append(resps, r)
	}
	if len(p) != 0 {
		return 0, nil, fmt.Errorf("wire: %d trailing bytes after batch response", len(p))
	}
	return id, resps, nil
}
