package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"bqs/internal/reconfig"
)

// Reconfiguration control frames. Protocol v2 clients and servers agree
// on the current configuration epoch with one extra frame kind:
//
//	reconfig   := tagReconfig id:u64 kind:u8 body
//	body       := epoch:u64            (kind announce)
//	            | record               (kind install)
//	            | record | ε           (kinds state, wrongepoch: an empty
//	            |                       body means "nothing installed")
//	            | ε                    (kind query)
//	record     := epoch:u64 universe:u32 b:u16 outer:u32 kindlen:u8 kindname
//
// The kinds, and who sends them:
//
//   - announce (client → server, no reply): "every request I pipeline
//     after this frame was routed with epoch E's quorum system." The
//     server gates announced connections: a request arriving at a
//     different epoch is answered with wrongepoch instead of reaching a
//     replica. Connections that never announce are served ungated,
//     exactly like v1 peers — the epoch plane is opt-in.
//   - install (coordinator → server, answered with state): adopt the
//     record if its epoch is newer, merging the shard's replica state
//     into the replicas that remain in the new universe. Idempotent: a
//     record at or behind the shard's epoch just acks.
//   - query (client → server, answered with state): read the shard's
//     current record; the refresh path for a client told it is stale.
//   - state (server → client): the shard's current record, answering an
//     install or query by id.
//   - wrongepoch (server → client): the request with this id was
//     rejected because the connection's announced epoch is not the
//     shard's; the body carries the shard's current record so the
//     client can refresh. To the quorum protocol the rejection reads as
//     Response{OK: false} — the retriable suspicion signal — never an
//     abort.
//
// The record's masking bound travels as u16: bounds past 65535 are
// rejected at encode time (a b that large needs a universe past
// MaxUniverse anyway). Both directions validate strictly — unknown kind
// bytes, out-of-range record fields and trailing bytes all reject the
// frame, mirroring the other decoders.
const (
	tagReconfig = 0x57

	reconfigHeaderLen = 1 + 8 + 1         // tag + id + kind
	recordWireLen     = 8 + 4 + 2 + 4 + 1 // epoch + universe + b + outer + kindlen
)

// ReconfigKind tags the role of a reconfig frame.
type ReconfigKind byte

const (
	// ReconfigAnnounce (client → server) pins the connection's epoch:
	// subsequent requests are served only while it is the shard's.
	ReconfigAnnounce ReconfigKind = 1
	// ReconfigInstall (coordinator → server) delivers a record to adopt;
	// answered with a state frame carrying the shard's record after.
	ReconfigInstall ReconfigKind = 2
	// ReconfigQuery (client → server) reads the shard's current record;
	// answered with a state frame.
	ReconfigQuery ReconfigKind = 3
	// ReconfigState (server → client) answers an install or query with
	// the shard's current record (empty body: nothing installed).
	ReconfigState ReconfigKind = 4
	// ReconfigWrongEpoch (server → client) rejects the request with this
	// id: the connection's announced epoch is not the shard's. Carries
	// the shard's record so the client can refresh.
	ReconfigWrongEpoch ReconfigKind = 5
)

// String names the kind for logs.
func (k ReconfigKind) String() string {
	switch k {
	case ReconfigAnnounce:
		return "announce"
	case ReconfigInstall:
		return "install"
	case ReconfigQuery:
		return "query"
	case ReconfigState:
		return "state"
	case ReconfigWrongEpoch:
		return "wrongepoch"
	}
	return fmt.Sprintf("reconfig(%d)", byte(k))
}

// ReconfigFrame is the decoded payload of a tagReconfig frame. Epoch is
// meaningful for announce only; Rec for install, state and wrongepoch.
type ReconfigFrame struct {
	Kind  ReconfigKind
	Epoch uint64
	Rec   reconfig.Record
}

func appendRecord(dst []byte, rec reconfig.Record) ([]byte, error) {
	if err := rec.Validate(); err != nil {
		return dst, fmt.Errorf("wire: %w", err)
	}
	if rec.B > math.MaxUint16 {
		return dst, fmt.Errorf("wire: masking bound %d does not fit a record frame", rec.B)
	}
	dst = binary.BigEndian.AppendUint64(dst, rec.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, uint32(rec.Universe))
	dst = binary.BigEndian.AppendUint16(dst, uint16(rec.B))
	dst = binary.BigEndian.AppendUint32(dst, uint32(rec.Outer))
	dst = append(dst, byte(len(rec.Kind)))
	return append(dst, rec.Kind...), nil
}

func decodeRecord(p []byte) (reconfig.Record, []byte, error) {
	if len(p) < recordWireLen {
		return reconfig.Record{}, nil, fmt.Errorf("wire: truncated record header (%d bytes)", len(p))
	}
	var rec reconfig.Record
	rec.Epoch = binary.BigEndian.Uint64(p)
	rec.Universe = int(binary.BigEndian.Uint32(p[8:]))
	rec.B = int(binary.BigEndian.Uint16(p[12:]))
	rec.Outer = int(binary.BigEndian.Uint32(p[14:]))
	klen := int(p[18])
	p = p[recordWireLen:]
	if len(p) < klen {
		return reconfig.Record{}, nil, fmt.Errorf("wire: truncated record kind (%d of %d bytes)", len(p), klen)
	}
	rec.Kind = string(p[:klen])
	if err := rec.Validate(); err != nil {
		return reconfig.Record{}, nil, fmt.Errorf("wire: %w", err)
	}
	return rec, p[klen:], nil
}

// AppendReconfig appends a complete reconfig frame (length prefix
// included) correlated by id. Records are validated at encode time,
// mirroring the decoder, so a malformed record fails at the caller
// instead of poisoning the stream.
func AppendReconfig(dst []byte, id uint64, f ReconfigFrame) ([]byte, error) {
	body := make([]byte, 0, recordWireLen+reconfig.MaxKindLen)
	switch f.Kind {
	case ReconfigAnnounce:
		body = binary.BigEndian.AppendUint64(body, f.Epoch)
	case ReconfigQuery:
	case ReconfigState, ReconfigWrongEpoch:
		// The zero record travels as an empty body: a shard that has not
		// installed anything yet still answers queries and gates stale
		// announcements.
		if f.Rec == (reconfig.Record{}) {
			break
		}
		fallthrough
	case ReconfigInstall:
		var err error
		if body, err = appendRecord(body, f.Rec); err != nil {
			return dst, err
		}
	default:
		return dst, fmt.Errorf("wire: unknown reconfig kind %d", byte(f.Kind))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(reconfigHeaderLen+len(body)))
	dst = append(dst, tagReconfig)
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = append(dst, byte(f.Kind))
	return append(dst, body...), nil
}

// DecodeReconfig parses a reconfig payload. Unknown kind bytes, invalid
// record fields and trailing bytes are all rejected — a future protocol
// revision must not be half-understood silently.
func DecodeReconfig(p []byte) (id uint64, f ReconfigFrame, err error) {
	if len(p) < reconfigHeaderLen {
		return 0, ReconfigFrame{}, fmt.Errorf("wire: reconfig payload of %d bytes shorter than header %d", len(p), reconfigHeaderLen)
	}
	if p[0] != tagReconfig {
		return 0, ReconfigFrame{}, fmt.Errorf("wire: payload tag %#x is not a reconfig frame", p[0])
	}
	id = binary.BigEndian.Uint64(p[1:])
	f.Kind = ReconfigKind(p[9])
	body := p[reconfigHeaderLen:]
	switch f.Kind {
	case ReconfigAnnounce:
		if len(body) != 8 {
			return 0, ReconfigFrame{}, fmt.Errorf("wire: announce body of %d bytes, want 8", len(body))
		}
		f.Epoch = binary.BigEndian.Uint64(body)
		return id, f, nil
	case ReconfigQuery:
		if len(body) != 0 {
			return 0, ReconfigFrame{}, fmt.Errorf("wire: %d trailing bytes after query", len(body))
		}
		return id, f, nil
	case ReconfigInstall, ReconfigState, ReconfigWrongEpoch:
		if len(body) == 0 && f.Kind != ReconfigInstall {
			return id, f, nil // empty state/wrongepoch: nothing installed
		}
		rec, rest, err := decodeRecord(body)
		if err != nil {
			return 0, ReconfigFrame{}, err
		}
		if len(rest) != 0 {
			return 0, ReconfigFrame{}, fmt.Errorf("wire: %d trailing bytes after record", len(rest))
		}
		f.Rec = rec
		return id, f, nil
	}
	return 0, ReconfigFrame{}, fmt.Errorf("wire: unknown reconfig kind %d", p[9])
}
