package reconfig

import (
	"fmt"
	"strings"
	"time"
)

// Step is one scheduled resize: at offset At from the start of the run,
// reconfigure to Target. The Target's epoch is 0 — the coordinator
// assigns the next epoch number when the step fires.
type Step struct {
	At     time.Duration
	Target Record
}

// ParseSchedule parses a -reconfig flag: semicolon-separated steps of
// the form "at=<offset>:<target>", e.g.
//
//	at=5s:mgrid:36
//	at=3s:mgrid:36;at=8s:compose:9x9
//
// Every target carries the masking bound b (reconfiguration never
// changes b), is built once to validate feasibility, and steps must be
// strictly increasing in time so epochs install in schedule order.
func ParseSchedule(spec string, b int) ([]Step, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var steps []Step
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, ok := strings.CutPrefix(part, "at=")
		if !ok {
			return nil, fmt.Errorf("reconfig: step %q: want at=<offset>:<kind>:<universe>", part)
		}
		ds, target, ok := strings.Cut(v, ":")
		if !ok {
			return nil, fmt.Errorf("reconfig: step %q: missing target after offset", part)
		}
		at, err := time.ParseDuration(ds)
		if err != nil {
			return nil, fmt.Errorf("reconfig: step %q: bad offset: %w", part, err)
		}
		if at < 0 {
			return nil, fmt.Errorf("reconfig: step %q: negative offset", part)
		}
		rec, err := ParseTarget(target, b)
		if err != nil {
			return nil, err
		}
		if n := len(steps); n > 0 && at <= steps[n-1].At {
			return nil, fmt.Errorf("reconfig: step %q: offsets must be strictly increasing", part)
		}
		steps = append(steps, Step{At: at, Target: rec})
	}
	if steps == nil {
		return nil, fmt.Errorf("reconfig: schedule %q has no steps", spec)
	}
	return steps, nil
}
