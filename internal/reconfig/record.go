// Package reconfig defines the control-plane state a Byzantine quorum
// cluster must agree on to change shape while serving traffic: an
// epoch-numbered configuration Record naming the quorum construction and
// universe size, and the two-phase install protocol around it — propose
// the new epoch, drain in-flight operations of the old epoch, cut over,
// retire. The paper's Theorem 4.7 motivates the package: composition
// S∘R multiplies capacity (n = nS·nR, L(S∘R) = L(S)·L(R)), so a live
// resize that swaps a small system for a composed one is the
// horizontal-scale path — but only if every client and server agrees on
// which system is current, which is what the epoch number arbitrates.
//
// The package owns pure data and construction only. The drain/cutover
// machinery lives with the data plane (sim.Cluster.Reconfigure); the
// wire encoding of Records lives in the wire codec. Both depend on this
// package, never the reverse.
package reconfig

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"bqs/internal/compose"
	"bqs/internal/core"
	"bqs/internal/systems"
)

// MaxUniverse bounds the universe size a Record may name, matching the
// wire layer's server-id range so every server in any epoch is
// addressable by a route table.
const MaxUniverse = 1 << 20

// MaxKindLen bounds the construction-kind name in a Record; the wire
// codec enforces it on both encode and decode.
const MaxKindLen = 32

// Record is one epoch's configuration: which quorum construction the
// cluster runs, over how many servers, masking how many Byzantine
// faults. Records are totally ordered by Epoch; a client or server at
// epoch e treats any Record with a larger epoch as news and anything
// smaller as stale. The zero Record (epoch 0) stands for "the
// configuration the process booted with" — reconfiguration always moves
// to an epoch ≥ 1.
type Record struct {
	// Epoch numbers the configuration; strictly increasing per install.
	Epoch uint64
	// Kind names the construction: threshold, grid, mgrid, wheel, or
	// compose (threshold∘threshold per Theorem 4.7).
	Kind string
	// Universe is n, the number of servers the construction spans.
	Universe int
	// B is the masking bound the construction must meet. Reconfiguration
	// never changes b: clients vouch values with b+1 matching replies,
	// and a cross-epoch change of b would let an old-epoch vouch count
	// satisfy a new-epoch read.
	B int
	// Outer is the outer-system universe size for Kind "compose"
	// (inner size is Universe/Outer); 0 otherwise.
	Outer int
}

// Validate checks the bounds the wire codec and BuildSystem both rely
// on. It does not check construction-specific feasibility (e.g. that a
// grid universe is square) — BuildSystem does, with a better error.
func (r Record) Validate() error {
	if r.Universe < 1 || r.Universe > MaxUniverse {
		return fmt.Errorf("reconfig: universe %d out of range [1, %d]", r.Universe, MaxUniverse)
	}
	if r.B < 0 || r.B > r.Universe {
		return fmt.Errorf("reconfig: masking bound %d out of range [0, %d]", r.B, r.Universe)
	}
	if r.Outer < 0 || r.Outer > r.Universe {
		return fmt.Errorf("reconfig: outer size %d out of range [0, %d]", r.Outer, r.Universe)
	}
	if r.Kind == "" || len(r.Kind) > MaxKindLen {
		return fmt.Errorf("reconfig: kind %q empty or longer than %d bytes", r.Kind, MaxKindLen)
	}
	for i := 0; i < len(r.Kind); i++ {
		c := r.Kind[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return fmt.Errorf("reconfig: kind %q: byte %d is not lowercase alphanumeric", r.Kind, i)
		}
	}
	return nil
}

// String renders the record the way ParseTarget reads it, prefixed with
// the epoch: "e3 mgrid:36".
func (r Record) String() string {
	if r.Kind == "compose" {
		return fmt.Sprintf("e%d compose:%dx%d", r.Epoch, r.Outer, r.Universe/max(r.Outer, 1))
	}
	return fmt.Sprintf("e%d %s:%d", r.Epoch, r.Kind, r.Universe)
}

// System is what a Record builds: quorum selection plus the c(Q)/IS/MT
// parameters the masking bound and load bounds are computed from.
type System interface {
	core.System
	core.Parameterized
}

// BuildSystem constructs the quorum system a Record names, sized to its
// universe. Unlike the boot-time harness builder (which sizes the
// universe from b), the Record fixes the universe and the construction
// must fit it — that is the whole point of a resize.
func BuildSystem(rec Record) (System, error) {
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	n, b := rec.Universe, rec.B
	switch rec.Kind {
	case "threshold":
		return systems.NewMaskingThreshold(n, b)
	case "grid":
		d, err := side(rec.Kind, n)
		if err != nil {
			return nil, err
		}
		return systems.NewGrid(d, b)
	case "mgrid":
		d, err := side(rec.Kind, n)
		if err != nil {
			return nil, err
		}
		return systems.NewMGrid(d, b)
	case "wheel":
		if b != 0 {
			return nil, fmt.Errorf("reconfig: wheel is a regular (b=0) system; record has b=%d", b)
		}
		return systems.NewWheel(n)
	case "compose":
		// Theorem 4.7 composition of two masking thresholds: the outer
		// system's elements are shards, each running an inner threshold.
		if rec.Outer < 1 || n%rec.Outer != 0 {
			return nil, fmt.Errorf("reconfig: compose universe %d is not a multiple of outer size %d", n, rec.Outer)
		}
		outer, err := systems.NewMaskingThreshold(rec.Outer, b)
		if err != nil {
			return nil, fmt.Errorf("reconfig: compose outer: %w", err)
		}
		inner, err := systems.NewMaskingThreshold(n/rec.Outer, b)
		if err != nil {
			return nil, fmt.Errorf("reconfig: compose inner: %w", err)
		}
		return compose.New(outer, inner), nil
	}
	return nil, fmt.Errorf("reconfig: unknown construction kind %q", rec.Kind)
}

// side resolves a square universe to its grid side.
func side(kind string, n int) (int, error) {
	for d := 1; d*d <= n; d++ {
		if d*d == n {
			return d, nil
		}
	}
	return 0, fmt.Errorf("reconfig: %s universe %d is not a perfect square", kind, n)
}

// ParseTarget parses a resize target "kind:universe" (or
// "compose:OUTERxINNER" for a Theorem 4.7 composition, universe =
// outer·inner) into an epoch-less Record carrying the given masking
// bound. The epoch is assigned at install time by whoever coordinates
// the reconfiguration.
func ParseTarget(spec string, b int) (Record, error) {
	kind, arg, ok := strings.Cut(spec, ":")
	if !ok || kind == "" || arg == "" {
		return Record{}, fmt.Errorf("reconfig: target %q: want kind:universe (e.g. mgrid:36) or compose:OUTERxINNER", spec)
	}
	rec := Record{Kind: kind, B: b}
	if kind == "compose" {
		so, si, ok := strings.Cut(arg, "x")
		if !ok {
			return Record{}, fmt.Errorf("reconfig: compose target %q: want compose:OUTERxINNER (e.g. compose:5x5)", spec)
		}
		outer, err := strconv.Atoi(so)
		if err != nil {
			return Record{}, fmt.Errorf("reconfig: compose outer size %q: %w", so, err)
		}
		inner, err := strconv.Atoi(si)
		if err != nil {
			return Record{}, fmt.Errorf("reconfig: compose inner size %q: %w", si, err)
		}
		if outer < 1 || inner < 1 {
			return Record{}, fmt.Errorf("reconfig: compose sizes %dx%d must be positive", outer, inner)
		}
		rec.Outer, rec.Universe = outer, outer*inner
	} else {
		n, err := strconv.Atoi(arg)
		if err != nil {
			return Record{}, fmt.Errorf("reconfig: universe %q: %w", arg, err)
		}
		rec.Universe = n
	}
	// Build once now so a bad target fails at flag-parse time, not
	// mid-run at the cutover point.
	if _, err := BuildSystem(rec); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// Installer is the transport seam Cluster.Reconfigure uses to push a
// Record to remote servers: the wire client implements it by fanning an
// install frame to every shard; in-memory clusters have no remote side
// and hand state over directly.
type Installer interface {
	// InstallEpoch delivers the record to every shard and returns once
	// all of them acknowledge an epoch ≥ rec.Epoch (installs are
	// idempotent: a shard already at or past the epoch acks without
	// changing state).
	InstallEpoch(ctx context.Context, rec Record) error
}

// Phase names the stations of the two-phase install, in order. A
// reconfiguration that aborts (drain deadline, install failure) returns
// to Idle; Retired is the terminal success state, at which point the
// new epoch is Idle again for the next resize.
//
//	Idle → Proposed → Draining → CutOver → Retired
type Phase int

const (
	// Idle: no reconfiguration in progress; the current epoch serves.
	Idle Phase = iota
	// Proposed: the target record is validated and the new system built;
	// nothing observable has changed yet.
	Proposed
	// Draining: new operations are parked at the epoch gate; in-flight
	// operations of the old epoch run to completion.
	Draining
	// CutOver: the quiesced state is handed to the new universe and the
	// record installed on every shard; the new epoch starts serving.
	CutOver
	// Retired: old-epoch resources (servers outside the new universe,
	// their stores) are released.
	Retired
)

// String names the phase for logs and the bqs_reconfig_phase gauge.
func (p Phase) String() string {
	switch p {
	case Idle:
		return "idle"
	case Proposed:
		return "proposed"
	case Draining:
		return "draining"
	case CutOver:
		return "cutover"
	case Retired:
		return "retired"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}
