package reconfig

import (
	"strings"
	"testing"
	"time"
)

func TestParseTargetBuilds(t *testing.T) {
	cases := []struct {
		spec     string
		b        int
		universe int
		name     string
	}{
		{"mgrid:36", 1, 36, "M-Grid"},
		{"grid:25", 1, 25, "Grid"},
		{"threshold:9", 2, 9, "Threshold"},
		{"wheel:12", 0, 12, "Wheel"},
		{"compose:5x5", 1, 25, "∘"},
	}
	for _, tc := range cases {
		rec, err := ParseTarget(tc.spec, tc.b)
		if err != nil {
			t.Fatalf("ParseTarget(%q, b=%d): %v", tc.spec, tc.b, err)
		}
		if rec.Universe != tc.universe || rec.B != tc.b || rec.Epoch != 0 {
			t.Fatalf("ParseTarget(%q) = %+v, want universe %d b %d epoch 0", tc.spec, rec, tc.universe, tc.b)
		}
		sys, err := BuildSystem(rec)
		if err != nil {
			t.Fatalf("BuildSystem(%+v): %v", rec, err)
		}
		if sys.UniverseSize() != tc.universe {
			t.Fatalf("%q: universe %d, want %d", tc.spec, sys.UniverseSize(), tc.universe)
		}
		if !strings.Contains(sys.Name(), tc.name) {
			t.Fatalf("%q: system name %q does not mention %q", tc.spec, sys.Name(), tc.name)
		}
	}
}

func TestParseTargetRejects(t *testing.T) {
	cases := []struct {
		spec string
		b    int
	}{
		{"mgrid:35", 1},     // not a square
		{"grid:10", 1},      // not a square
		{"threshold:4", 1},  // n < 4b+1
		{"wheel:12", 1},     // wheel is regular, b must be 0
		{"compose:5x4", 1},  // inner threshold 4 < 4b+1
		{"compose:55", 1},   // missing x
		{"mgrid", 1},        // no universe
		{"mgrid:", 1},       // empty universe
		{"mgrid:abc", 1},    // non-numeric
		{"nosuch:25", 1},    // unknown kind
		{"compose:0x5", 1},  // zero outer
		{"compose:-1x5", 1}, // negative outer
	}
	for _, tc := range cases {
		if _, err := ParseTarget(tc.spec, tc.b); err == nil {
			t.Errorf("ParseTarget(%q, b=%d) accepted, want error", tc.spec, tc.b)
		}
	}
}

func TestRecordValidateBounds(t *testing.T) {
	good := Record{Epoch: 7, Kind: "mgrid", Universe: 36, B: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate(%+v): %v", good, err)
	}
	bad := []Record{
		{Kind: "mgrid", Universe: 0, B: 0},
		{Kind: "mgrid", Universe: MaxUniverse + 1, B: 0},
		{Kind: "mgrid", Universe: 36, B: -1},
		{Kind: "mgrid", Universe: 36, B: 37},
		{Kind: "mgrid", Universe: 36, B: 1, Outer: -1},
		{Kind: "mgrid", Universe: 36, B: 1, Outer: 37},
		{Kind: "", Universe: 36, B: 1},
		{Kind: strings.Repeat("m", MaxKindLen+1), Universe: 36, B: 1},
		{Kind: "MGrid", Universe: 36, B: 1},  // uppercase
		{Kind: "m-grid", Universe: 36, B: 1}, // punctuation
	}
	for _, rec := range bad {
		if err := rec.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted, want error", rec)
		}
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Epoch: 3, Kind: "mgrid", Universe: 36, B: 1}
	if got := r.String(); got != "e3 mgrid:36" {
		t.Fatalf("String() = %q", got)
	}
	c := Record{Epoch: 2, Kind: "compose", Universe: 25, Outer: 5, B: 1}
	if got := c.String(); got != "e2 compose:5x5" {
		t.Fatalf("String() = %q", got)
	}
}

func TestParseSchedule(t *testing.T) {
	steps, err := ParseSchedule("at=3s:mgrid:36; at=8s:compose:5x5", 1)
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	if len(steps) != 2 {
		t.Fatalf("got %d steps, want 2", len(steps))
	}
	if steps[0].At != 3*time.Second || steps[0].Target.Kind != "mgrid" {
		t.Fatalf("step 0 = %+v", steps[0])
	}
	if steps[1].At != 8*time.Second || steps[1].Target.Universe != 25 {
		t.Fatalf("step 1 = %+v", steps[1])
	}
	if s, err := ParseSchedule("", 1); err != nil || s != nil {
		t.Fatalf("empty spec: %v %v", s, err)
	}
	for _, bad := range []string{
		"mgrid:36",                     // missing at=
		"at=3s",                        // missing target
		"at=-1s:mgrid:36",              // negative offset
		"at=3s:mgrid:36;at=3s:grid:25", // not strictly increasing
		"at=x:mgrid:36",                // bad duration
		";",                            // no steps
	} {
		if _, err := ParseSchedule(bad, 1); err == nil {
			t.Errorf("ParseSchedule(%q) accepted, want error", bad)
		}
	}
}

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{Idle: "idle", Proposed: "proposed", Draining: "draining", CutOver: "cutover", Retired: "retired"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Phase(%d).String() = %q, want %q", int(p), p.String(), s)
		}
	}
	if got := Phase(99).String(); got != "phase(99)" {
		t.Errorf("unknown phase = %q", got)
	}
}
