// Package compose implements quorum-system composition S ∘ R
// (Definition 4.6): each element of the outer system S is replaced by a
// distinct copy of the inner system R, and a composed quorum is a quorum of
// S with each of its elements expanded to a quorum of the corresponding
// copy of R. Theorem 4.7 gives the composed parameters:
//
//	n = nS·nR   c = cS·cR   IS = IS_S·IS_R   MT = MT_S·MT_R
//	L = L_S·L_R and F_p(S∘R) = s(r(p)).
//
// The package offers an explicit composition (materializing all quorums,
// for exact analysis of small systems) and a lazy Composite that scales to
// the paper's boostFPP sizes. Element (i, j) — copy i of R, element j —
// maps to global index i·nR + j.
package compose

import (
	"errors"
	"fmt"
	"math/rand"

	"bqs/internal/bitset"
	"bqs/internal/core"
)

// ErrTooManyQuorums is returned by Explicit when materialization would
// exceed the given limit.
var ErrTooManyQuorums = errors.New("compose: explicit composition exceeds quorum limit")

// Explicit materializes S ∘ R as an ExplicitSystem. The number of composed
// quorums is Σ_{S∈𝒮} |𝓡|^|S|, which grows fast; limit guards against
// accidental blow-ups (≤ 0 means a default of 100000).
func Explicit(outer, inner core.Enumerable, limit int) (*core.ExplicitSystem, error) {
	if limit <= 0 {
		limit = 100000
	}
	nR := inner.UniverseSize()
	n := outer.UniverseSize() * nR
	innerQs := inner.Quorums()

	var composed []bitset.Set
	for _, oq := range outer.Quorums() {
		members := oq.Elements()
		// Enumerate the cartesian product of inner-quorum choices.
		idx := make([]int, len(members))
		for {
			q := bitset.New(n)
			for pos, module := range members {
				innerQs[idx[pos]].Range(func(e int) bool {
					q.Add(module*nR + e)
					return true
				})
			}
			composed = append(composed, q)
			if len(composed) > limit {
				return nil, fmt.Errorf("compose: %d quorums: %w", len(composed), ErrTooManyQuorums)
			}
			// Advance the odometer.
			pos := len(idx) - 1
			for pos >= 0 {
				idx[pos]++
				if idx[pos] < len(innerQs) {
					break
				}
				idx[pos] = 0
				pos--
			}
			if pos < 0 {
				break
			}
		}
	}
	name := fmt.Sprintf("%s∘%s", outer.Name(), inner.Name())
	return core.NewExplicit(name, n, composed)
}

// Composite is the lazy composition S ∘ R. It implements core.System, and
// core.Sampler / core.Parameterized when both components do.
type Composite struct {
	outer core.System
	inner core.System
	nR    int
}

var _ core.System = (*Composite)(nil)
var _ core.Parameterized = (*Composite)(nil)
var _ core.Enumerator = (*Composite)(nil)

// New returns the lazy composition of outer over inner.
func New(outer, inner core.System) *Composite {
	return &Composite{outer: outer, inner: inner, nR: inner.UniverseSize()}
}

// Name returns "outer∘inner".
func (c *Composite) Name() string {
	return fmt.Sprintf("%s∘%s", c.outer.Name(), c.inner.Name())
}

// UniverseSize returns nS·nR.
func (c *Composite) UniverseSize() int {
	return c.outer.UniverseSize() * c.nR
}

// SelectQuorum implements the modular-decomposition semantics: copy i of R
// is failed exactly when no quorum of that copy survives, and a composed
// quorum survives iff a quorum of S survives over the live copies.
func (c *Composite) SelectQuorum(rng *rand.Rand, dead bitset.Set) (bitset.Set, error) {
	nS := c.outer.UniverseSize()
	// Split the dead set by module.
	moduleDead := make([]bitset.Set, nS)
	for i := range moduleDead {
		moduleDead[i] = bitset.New(c.nR)
	}
	dead.Range(func(e int) bool {
		module := e / c.nR
		if module < nS {
			moduleDead[module].Add(e % c.nR)
		}
		return true
	})
	// A module is dead for the outer system when its copy has no live
	// quorum. Inner selections are memoized so each copy is queried once.
	deadModules := bitset.New(nS)
	innerChoice := make([]bitset.Set, nS)
	for i := 0; i < nS; i++ {
		q, err := c.inner.SelectQuorum(rng, moduleDead[i])
		if err != nil {
			if errors.Is(err, core.ErrNoLiveQuorum) {
				deadModules.Add(i)
				continue
			}
			return bitset.Set{}, fmt.Errorf("compose: inner copy %d: %w", i, err)
		}
		innerChoice[i] = q
	}
	outerQ, err := c.outer.SelectQuorum(rng, deadModules)
	if err != nil {
		return bitset.Set{}, err // preserves ErrNoLiveQuorum
	}
	result := bitset.New(c.UniverseSize())
	outerQ.Range(func(i int) bool {
		innerChoice[i].Range(func(e int) bool {
			result.Add(i*c.nR + e)
			return true
		})
		return true
	})
	return result, nil
}

// SampleQuorum implements the product strategy from the proof of
// Theorem 4.7: sample an outer quorum from S's strategy, then an inner
// quorum per selected copy. This achieves L(S)·L(R). Both components must
// be Samplers; otherwise SampleQuorum panics by contract (callers check
// with the core.Sampler type assertion).
func (c *Composite) SampleQuorum(rng *rand.Rand) bitset.Set {
	outerS, ok := c.outer.(core.Sampler)
	if !ok {
		return bitset.Set{}
	}
	innerS, ok := c.inner.(core.Sampler)
	if !ok {
		return bitset.Set{}
	}
	outerQ := outerS.SampleQuorum(rng)
	result := bitset.New(c.UniverseSize())
	outerQ.Range(func(i int) bool {
		innerS.SampleQuorum(rng).Range(func(e int) bool {
			result.Add(i*c.nR + e)
			return true
		})
		return true
	})
	return result
}

// MinQuorumSize returns c(S)·c(R) per Theorem 4.7 (0 when a component
// lacks parameters).
func (c *Composite) MinQuorumSize() int {
	o, i := params(c.outer), params(c.inner)
	if o == nil || i == nil {
		return 0
	}
	return o.MinQuorumSize() * i.MinQuorumSize()
}

// MinIntersection returns IS(S)·IS(R) per Theorem 4.7.
func (c *Composite) MinIntersection() int {
	o, i := params(c.outer), params(c.inner)
	if o == nil || i == nil {
		return 0
	}
	return o.MinIntersection() * i.MinIntersection()
}

// MinTransversal returns MT(S)·MT(R) per Theorem 4.7.
func (c *Composite) MinTransversal() int {
	o, i := params(c.outer), params(c.inner)
	if o == nil || i == nil {
		return 0
	}
	return o.MinTransversal() * i.MinTransversal()
}

// MaskingBound applies Corollary 3.7 to the composed parameters.
func (c *Composite) MaskingBound() int { return core.MaskingBoundFromParams(c) }

// Enumerate materializes the composed quorum list so the Definition 3.8
// load LP (and with it -strategy optimal and measures.Load) runs on a
// composition: both constituents are materialized via core.AsEnumerable
// — so compositions nest — and the product is expanded by Explicit
// under the same quorum-count limit. The count grows as |R|^|S-quorum|
// per outer quorum, so the limit is load-bearing: a composition past it
// reports ErrTooManyQuorums rather than materializing gigabytes.
func (c *Composite) Enumerate(limit int) (*core.ExplicitSystem, error) {
	outer, err := core.AsEnumerable(c.outer, limit)
	if err != nil {
		return nil, fmt.Errorf("compose: outer: %w", err)
	}
	inner, err := core.AsEnumerable(c.inner, limit)
	if err != nil {
		return nil, fmt.Errorf("compose: inner: %w", err)
	}
	return Explicit(outer, inner, limit)
}

func params(s core.System) core.Parameterized {
	if p, ok := s.(core.Parameterized); ok {
		return p
	}
	return nil
}

// CrashFn maps an element crash probability to a system crash probability.
type CrashFn func(p float64) float64

// Crash composes crash-probability functions per Theorem 4.7:
// F_p(S∘R) = s(r(p)).
func Crash(outer, inner CrashFn) CrashFn {
	return func(p float64) float64 { return outer(inner(p)) }
}
