package compose

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"bqs/internal/bitset"
	"bqs/internal/core"
	"bqs/internal/measures"
)

func majority3(t *testing.T) *core.ExplicitSystem {
	t.Helper()
	s, err := core.NewExplicit("maj3", 3, []bitset.Set{
		bitset.FromSlice([]int{0, 1}),
		bitset.FromSlice([]int{0, 2}),
		bitset.FromSlice([]int{1, 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func threeOfFour(t *testing.T) *core.ExplicitSystem {
	t.Helper()
	var quorums []bitset.Set
	for skip := 0; skip < 4; skip++ {
		q := bitset.FromRange(0, 4)
		q.Remove(skip)
		quorums = append(quorums, q)
	}
	s, err := core.NewExplicit("3of4", 4, quorums)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExplicitCompositionParameters(t *testing.T) {
	// Theorem 4.7 on maj3 ∘ maj3: n=9, c=4, IS=1, MT=4.
	m := majority3(t)
	comp, err := Explicit(m, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if comp.UniverseSize() != 9 {
		t.Errorf("n = %d, want 9", comp.UniverseSize())
	}
	if comp.NumQuorums() != 27 { // 3 outer quorums × 3² inner choices
		t.Errorf("|Q| = %d, want 27", comp.NumQuorums())
	}
	if got := comp.MinQuorumSize(); got != 4 {
		t.Errorf("c = %d, want 4", got)
	}
	if got := comp.MinIntersection(); got != 1 {
		t.Errorf("IS = %d, want 1", got)
	}
	if got := comp.MinTransversal(); got != 4 {
		t.Errorf("MT = %d, want 4", got)
	}
}

func TestExplicitCompositionLoadMultiplies(t *testing.T) {
	// L(maj3 ∘ maj3) = (2/3)² = 4/9 by Theorem 4.7; verify with the LP.
	m := majority3(t)
	comp, err := Explicit(m, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	load, _, err := measures.Load(comp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(load-4.0/9) > 1e-6 {
		t.Errorf("composed load = %g, want 4/9", load)
	}
}

func TestExplicitCompositionCrashComposes(t *testing.T) {
	// F_p(S∘R) = s(r(p)) exactly (Theorem 4.7), checked against the 2^n
	// enumeration of the composed system.
	m := majority3(t)
	comp, err := Explicit(m, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	mCrash := func(p float64) float64 { return 3*p*p*(1-p) + p*p*p }
	composed := Crash(mCrash, mCrash)
	for _, p := range []float64{0.1, 0.3, 0.5, 0.8} {
		want := composed(p)
		got, err := measures.CrashProbabilityExact(comp, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("F_%g = %g, want s(r(p)) = %g", p, got, want)
		}
	}
}

func TestExplicitCompositionMixed(t *testing.T) {
	// maj3 ∘ 3of4: n = 12, c = 2·3 = 6, IS = 1·2 = 2, MT = 2·2 = 4.
	comp, err := Explicit(majority3(t), threeOfFour(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if comp.UniverseSize() != 12 || comp.MinQuorumSize() != 6 ||
		comp.MinIntersection() != 2 || comp.MinTransversal() != 4 {
		t.Errorf("params (n,c,IS,MT) = (%d,%d,%d,%d), want (12,6,2,4)",
			comp.UniverseSize(), comp.MinQuorumSize(), comp.MinIntersection(), comp.MinTransversal())
	}
}

func TestExplicitLimit(t *testing.T) {
	m := majority3(t)
	if _, err := Explicit(m, m, 10); !errors.Is(err, ErrTooManyQuorums) {
		t.Errorf("err = %v, want ErrTooManyQuorums", err)
	}
}

func TestCompositeMatchesExplicitOnSelection(t *testing.T) {
	m := majority3(t)
	lazy := New(m, m)
	explicit, err := Explicit(m, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lazy.UniverseSize() != explicit.UniverseSize() {
		t.Fatal("universe mismatch")
	}
	rng := rand.New(rand.NewSource(9))
	// Lazy selection must return sets that are quorums of the explicit
	// composition (supersets suffice: same construction, so equality).
	for trial := 0; trial < 200; trial++ {
		dead := bitset.New(9)
		for i := 0; i < 9; i++ {
			if rng.Intn(4) == 0 {
				dead.Add(i)
			}
		}
		lq, lerr := lazy.SelectQuorum(rng, dead)
		_, eerr := explicit.SelectQuorum(rng, dead)
		if (lerr == nil) != (eerr == nil) {
			t.Fatalf("trial %d: lazy err %v vs explicit err %v (dead=%v)", trial, lerr, eerr, dead)
		}
		if lerr != nil {
			continue
		}
		if lq.Intersects(dead) {
			t.Fatalf("lazy quorum intersects dead set")
		}
		found := false
		for _, q := range explicit.Quorums() {
			if q.Equal(lq) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("lazy quorum %v is not a quorum of the explicit composition", lq)
		}
	}
}

func TestCompositeParameters(t *testing.T) {
	lazy := New(majority3(t), threeOfFour(t))
	if lazy.MinQuorumSize() != 6 || lazy.MinIntersection() != 2 || lazy.MinTransversal() != 4 {
		t.Errorf("lazy params = (%d,%d,%d), want (6,2,4)",
			lazy.MinQuorumSize(), lazy.MinIntersection(), lazy.MinTransversal())
	}
	if got := lazy.MaskingBound(); got != 0 {
		// IS=2 → (2−1)/2 = 0.
		t.Errorf("masking bound = %d, want 0", got)
	}
	if lazy.Name() != "maj3∘3of4" {
		t.Errorf("name = %q", lazy.Name())
	}
}

func TestCompositeSampleQuorumIsQuorum(t *testing.T) {
	m := majority3(t)
	lazy := New(m, m)
	explicit, _ := Explicit(m, m, 0)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		q := lazy.SampleQuorum(rng)
		found := false
		for _, eq := range explicit.Quorums() {
			if eq.Equal(q) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("sampled %v is not a composed quorum", q)
		}
	}
}

func TestCompositeCrashMCMatchesComposedFn(t *testing.T) {
	m := majority3(t)
	lazy := New(m, m)
	rng := rand.New(rand.NewSource(13))
	mCrash := func(p float64) float64 { return 3*p*p*(1-p) + p*p*p }
	p := 0.3
	want := Crash(mCrash, mCrash)(p)
	mc, err := measures.CrashProbabilityMC(lazy, p, 100000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc.Estimate-want) > 5*mc.StdErr+1e-3 {
		t.Errorf("MC = %g ± %g, want %g", mc.Estimate, mc.StdErr, want)
	}
}
