package compose_test

// External test package: the in-package tests cannot import
// bqs/internal/systems (systems itself composes via this package), but
// the Theorem 4.7 pin wants the real masking-threshold constituents the
// live engine uses.

import (
	"errors"
	"math"
	"testing"

	"bqs/internal/compose"
	"bqs/internal/core"
	"bqs/internal/measures"
	"bqs/internal/systems"
)

// opaque hides a system's Enumerate method, modelling a constituent
// that cannot materialize its quorum list.
type opaque struct{ core.System }

// TestCompositeEnumerateTheorem47 pins the satellite contract: a lazy
// Composite materializes through core.AsEnumerable (so -strategy
// optimal works on composed systems), and the LP load of the
// materialized product is exactly L(S)·L(R) per Theorem 4.7.
func TestCompositeEnumerateTheorem47(t *testing.T) {
	thr, err := systems.NewMaskingThreshold(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := compose.New(thr, thr)
	en, err := core.AsEnumerable(c, 5000)
	if err != nil {
		t.Fatalf("AsEnumerable(Composite): %v", err)
	}
	// Threshold(5,1) has C(5,4) = 5 quorums of size 4, so the product
	// has Σ 5^4 = 5·625 composed quorums over a 25-element universe.
	if n := en.UniverseSize(); n != 25 {
		t.Fatalf("universe = %d, want 25", n)
	}
	if got := len(en.Quorums()); got != 3125 {
		t.Fatalf("composed quorum count = %d, want 3125", got)
	}
	load, _, err := measures.Load(en)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	want := thr.Load() * thr.Load() // L(S)·L(R) = 0.8·0.8
	if math.Abs(load-want) > 1e-9 {
		t.Fatalf("L(S∘R) = %g, want L(S)·L(R) = %g", load, want)
	}
	// The Explicit limit still guards the expansion.
	if _, err := c.Enumerate(100); !errors.Is(err, compose.ErrTooManyQuorums) {
		t.Fatalf("Enumerate(limit=100) = %v, want ErrTooManyQuorums", err)
	}
	// A constituent that cannot enumerate surfaces ErrNotEnumerable.
	if _, err := compose.New(opaque{thr}, thr).Enumerate(5000); !errors.Is(err, core.ErrNotEnumerable) {
		t.Fatalf("opaque outer: err = %v, want ErrNotEnumerable", err)
	}
	if _, err := compose.New(thr, opaque{thr}).Enumerate(5000); !errors.Is(err, core.ErrNotEnumerable) {
		t.Fatalf("opaque inner: err = %v, want ErrNotEnumerable", err)
	}
}
