package lp

import (
	"errors"
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestBasicMinimization(t *testing.T) {
	// minimize -x - 2y s.t. x + y <= 4, x <= 2, y <= 3 → x=1? optimum at
	// (x=1,y=3): value -7. Check: x+y<=4 binds with y=3 → x=1.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-1, -2},
		Constraint: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: LE, RHS: 4},
			{Coeffs: []float64{1, 0}, Sense: LE, RHS: 2},
			{Coeffs: []float64{0, 1}, Sense: LE, RHS: 3},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Value, -7) {
		t.Fatalf("value = %g, want -7 (x=%v)", s.Value, s.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// minimize x + y s.t. x + 2y = 3, x,y >= 0 → y=1.5, x=0, value 1.5.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraint: []Constraint{
			{Coeffs: []float64{1, 2}, Sense: EQ, RHS: 3},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Value, 1.5) {
		t.Fatalf("value = %g, want 1.5", s.Value)
	}
}

func TestGEConstraints(t *testing.T) {
	// Diet-style LP: minimize 3x + 2y s.t. x + y >= 4, x + 3y >= 6.
	// Vertices: (4,0)→12, (3,1)→11, (0,4)→8; optimum is (0,4) with value 8.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{3, 2},
		Constraint: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: GE, RHS: 4},
			{Coeffs: []float64{1, 3}, Sense: GE, RHS: 6},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Value, 8) {
		t.Fatalf("value = %g, want 8 (x=%v)", s.Value, s.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraint: []Constraint{
			{Coeffs: []float64{1}, Sense: LE, RHS: 1},
			{Coeffs: []float64{1}, Sense: GE, RHS: 2},
		},
	}
	if _, err := Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{-1},
		Constraint: []Constraint{
			{Coeffs: []float64{1}, Sense: GE, RHS: 1},
		},
	}
	if _, err := Solve(p); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -1 with minimize x+y → y >= x+1, so (0,1), value 1.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraint: []Constraint{
			{Coeffs: []float64{1, -1}, Sense: LE, RHS: -1},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Value, 1) {
		t.Fatalf("value = %g, want 1 (x=%v)", s.Value, s.X)
	}
}

func TestRedundantEquality(t *testing.T) {
	// Duplicated equality rows must not break phase 1.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 2},
		Constraint: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: EQ, RHS: 2},
			{Coeffs: []float64{2, 2}, Sense: EQ, RHS: 4},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Value, 2) { // x=2, y=0
		t.Fatalf("value = %g, want 2", s.Value)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(&Problem{NumVars: 0}); err == nil {
		t.Error("NumVars=0 should error")
	}
	if _, err := Solve(&Problem{NumVars: 2, Objective: []float64{1}}); err == nil {
		t.Error("short objective should error")
	}
	p := &Problem{
		NumVars:    1,
		Objective:  []float64{1},
		Constraint: []Constraint{{Coeffs: []float64{1, 2}, Sense: LE, RHS: 1}},
	}
	if _, err := Solve(p); err == nil {
		t.Error("mismatched constraint width should error")
	}
	p2 := &Problem{
		NumVars:    1,
		Objective:  []float64{1},
		Constraint: []Constraint{{Coeffs: []float64{1}, Sense: 0, RHS: 1}},
	}
	if _, err := Solve(p2); err == nil {
		t.Error("invalid sense should error")
	}
}

// loadLP builds the Definition 3.8 load LP for an explicit quorum system
// given as element lists, mirroring what internal/measures does.
func loadLP(n int, quorums [][]int) *Problem {
	m := len(quorums)
	// Variables: w_0..w_{m-1}, t.
	obj := make([]float64, m+1)
	obj[m] = 1
	cons := make([]Constraint, 0, n+1)
	sum := make([]float64, m+1)
	for j := 0; j < m; j++ {
		sum[j] = 1
	}
	cons = append(cons, Constraint{Coeffs: sum, Sense: EQ, RHS: 1})
	for u := 0; u < n; u++ {
		row := make([]float64, m+1)
		for j, q := range quorums {
			for _, e := range q {
				if e == u {
					row[j] = 1
					break
				}
			}
		}
		row[m] = -1
		cons = append(cons, Constraint{Coeffs: row, Sense: LE, RHS: 0})
	}
	return &Problem{NumVars: m + 1, Objective: obj, Constraint: cons}
}

func TestLoadLPMajority3(t *testing.T) {
	// Majority over 3 elements: quorums of size 2, load = 2/3 (Prop 3.9).
	q := [][]int{{0, 1}, {0, 2}, {1, 2}}
	s, err := Solve(loadLP(3, q))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Value, 2.0/3) {
		t.Fatalf("majority-3 load = %g, want 2/3", s.Value)
	}
}

func TestLoadLPSingleton(t *testing.T) {
	s, err := Solve(loadLP(1, [][]int{{0}}))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Value, 1) {
		t.Fatalf("singleton load = %g, want 1", s.Value)
	}
}

func TestLoadLPFano(t *testing.T) {
	// Fano plane (FPP of order 2): 7 points, 7 lines of size 3. Fair, so
	// load = c/n = 3/7 (Prop 3.9), matching NW98's optimal 1/√n ≈ q+1/n.
	lines := [][]int{
		{0, 1, 2}, {0, 3, 4}, {0, 5, 6},
		{1, 3, 5}, {1, 4, 6}, {2, 3, 6}, {2, 4, 5},
	}
	s, err := Solve(loadLP(7, lines))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Value, 3.0/7) {
		t.Fatalf("Fano load = %g, want 3/7", s.Value)
	}
}

func TestLoadLPWheel(t *testing.T) {
	// Wheel system over n=5: hub {0} with spokes {0,i} and rim {1,2,3,4}.
	// Quorums: {0,1},{0,2},{0,3},{0,4},{1,2,3,4}. Known load: the optimal
	// strategy mixes hub-spoke and rim quorums; LP should find ≤ 1/2 on the
	// hub. Optimal load for wheel is 1/2 (put weight 1/2 on rim, 1/8 each
	// spoke: hub load 1/2, rim element load 1/2+1/8 = 5/8 — not balanced;
	// better: weight x on rim, (1-x)/4 per spoke: hub = 1-x, rim elem =
	// x + (1-x)/4. Equalize: 1-x = x + (1-x)/4 → 3(1-x)/4 = x → x = 3/7,
	// load = 4/7.
	q := [][]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2, 3, 4}}
	s, err := Solve(loadLP(5, q))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Value, 4.0/7) {
		t.Fatalf("wheel load = %g, want 4/7", s.Value)
	}
}

func TestLoadLPUnbalancedSystem(t *testing.T) {
	// A system where one element is in every quorum: load must be 1 on it.
	q := [][]int{{0, 1}, {0, 2}}
	s, err := Solve(loadLP(3, q))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Value, 1) {
		t.Fatalf("dictator load = %g, want 1", s.Value)
	}
}
