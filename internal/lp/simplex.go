// Package lp implements a dense two-phase primal simplex solver for small
// linear programs. The library uses it to compute the exact load of a
// quorum system (Definition 3.8 of the paper), which is the optimum of the
// min-max LP
//
//	minimize  t
//	s.t.      Σ_Q w(Q) = 1
//	          Σ_{Q ∋ u} w(Q) ≤ t   for every element u
//	          w ≥ 0.
//
// The solver is general purpose (min c·x, Ax {≤,=,≥} b, x ≥ 0) so tests can
// exercise it independently of quorum systems. Bland's rule guarantees
// termination on the degenerate LPs that fair quorum systems produce.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the direction of a linear constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota + 1 // Σ a_j x_j ≤ b
	GE                  // Σ a_j x_j ≥ b
	EQ                  // Σ a_j x_j = b
)

// Errors reported by Solve.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
)

const (
	eps          = 1e-9
	maxPivots    = 200000
	phase1Thresh = 1e-7
)

// Constraint is one row of the program: Coeffs·x Sense RHS.
type Constraint struct {
	Coeffs []float64
	Sense  Sense
	RHS    float64
}

// Problem is a minimization LP over non-negative variables.
type Problem struct {
	NumVars    int
	Objective  []float64 // length NumVars; minimize Objective·x
	Constraint []Constraint
}

// Solution holds an optimal basic feasible solution.
type Solution struct {
	X     []float64 // length NumVars
	Value float64   // Objective·X
}

// tableau is the dense simplex tableau. Column layout:
// [0, numCols) variables (structural, slack/surplus, artificial),
// column numCols holds the RHS. Row numRows holds the objective row.
type tableau struct {
	a       [][]float64
	basis   []int // basis[r] = variable basic in row r
	rows    int
	cols    int // number of variable columns (excl. RHS)
	numArt  int
	artBase int // first artificial column index
}

// Solve returns an optimal solution to p, or ErrInfeasible/ErrUnbounded.
func Solve(p *Problem) (*Solution, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	m := len(p.Constraint)
	n := p.NumVars

	// Count slack/surplus columns and artificial columns.
	numSlack := 0
	for _, c := range p.Constraint {
		if c.Sense == LE || c.Sense == GE {
			numSlack++
		}
	}
	// Pessimistically one artificial per row; unneeded ones are skipped.
	t := &tableau{
		rows:    m,
		cols:    n + numSlack, // artificials appended below
		artBase: n + numSlack,
	}

	// Build rows with b ≥ 0.
	rowsData := make([][]float64, m)
	slackIdx := n
	basis := make([]int, m)
	var artRows []int
	for i, c := range p.Constraint {
		row := make([]float64, n+numSlack+m+1)
		copy(row, c.Coeffs)
		rhs := c.RHS
		sense := c.Sense
		if rhs < 0 {
			for j := range row[:n] {
				row[j] = -row[j]
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		switch sense {
		case LE:
			row[slackIdx] = 1
			basis[i] = slackIdx
			slackIdx++
		case GE:
			row[slackIdx] = -1
			slackIdx++
			artRows = append(artRows, i)
			basis[i] = -1
		case EQ:
			artRows = append(artRows, i)
			basis[i] = -1
		}
		row[len(row)-1] = rhs
		rowsData[i] = row
	}

	// Assign artificial columns.
	art := t.artBase
	for _, r := range artRows {
		rowsData[r][art] = 1
		basis[r] = art
		art++
	}
	t.numArt = art - t.artBase
	totalCols := t.artBase + t.numArt
	// Trim rows to actual width (vars + slack + art + rhs).
	for i := range rowsData {
		row := rowsData[i]
		trimmed := make([]float64, totalCols+1)
		copy(trimmed, row[:totalCols])
		trimmed[totalCols] = row[len(row)-1]
		rowsData[i] = trimmed
	}
	t.a = rowsData
	t.cols = totalCols
	t.basis = basis

	// Phase 1: minimize sum of artificials.
	if t.numArt > 0 {
		obj := make([]float64, t.cols)
		for j := t.artBase; j < t.artBase+t.numArt; j++ {
			obj[j] = 1
		}
		val, err := t.optimize(obj)
		if err != nil {
			// Phase-1 objective is bounded below by 0, so unbounded cannot
			// occur; any error is internal.
			return nil, err
		}
		if val > phase1Thresh {
			return nil, ErrInfeasible
		}
		t.driveOutArtificials()
	}

	// Phase 2: minimize the real objective with artificial columns frozen.
	obj := make([]float64, t.cols)
	copy(obj, p.Objective)
	for j := t.artBase; j < t.artBase+t.numArt; j++ {
		obj[j] = math.Inf(1) // sentinel: never enter
	}
	val, err := t.optimize(obj)
	if err != nil {
		return nil, err
	}

	x := make([]float64, p.NumVars)
	for r, b := range t.basis {
		if b < p.NumVars {
			x[b] = t.a[r][t.cols]
		}
	}
	return &Solution{X: x, Value: val}, nil
}

func validate(p *Problem) error {
	if p.NumVars <= 0 {
		return fmt.Errorf("lp: NumVars = %d, must be positive", p.NumVars)
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("lp: objective has %d coefficients, want %d", len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraint {
		if len(c.Coeffs) != p.NumVars {
			return fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(c.Coeffs), p.NumVars)
		}
		if c.Sense != LE && c.Sense != GE && c.Sense != EQ {
			return fmt.Errorf("lp: constraint %d has invalid sense %d", i, c.Sense)
		}
	}
	return nil
}

// optimize runs primal simplex with Bland's rule on the current basis for
// the given objective (length t.cols; +Inf marks forbidden columns).
// It returns the optimal objective value.
func (t *tableau) optimize(obj []float64) (float64, error) {
	// Reduced-cost row: z_j - c_j computed from scratch each iteration is
	// O(rows·cols); we instead maintain it incrementally via an explicit
	// objective row seeded with -c and updated by pivots.
	z := make([]float64, t.cols+1)
	for j := 0; j < t.cols; j++ {
		if math.IsInf(obj[j], 1) {
			z[j] = 0 // forbidden columns never examined for entering
		} else {
			z[j] = -obj[j]
		}
	}
	// Price out the initial basis so reduced costs of basic vars are 0.
	for r, b := range t.basis {
		cb := 0.0
		if !math.IsInf(obj[b], 1) {
			cb = obj[b]
		}
		if cb == 0 {
			continue
		}
		for j := 0; j <= t.cols; j++ {
			z[j] += cb * t.a[r][j]
		}
	}

	forbidden := func(j int) bool { return math.IsInf(obj[j], 1) }

	for iter := 0; iter < maxPivots; iter++ {
		// Bland's rule: entering variable = lowest index with positive
		// reduced cost (we maximize -objective internally: pick z_j > eps).
		enter := -1
		for j := 0; j < t.cols; j++ {
			if forbidden(j) {
				continue
			}
			if z[j] > eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			// Optimal. z[rhs] was seeded with c_B·b and updated by
			// ΔV = −(z_enter−c_enter)·θ on every pivot, so it holds the
			// current objective value directly.
			return z[t.cols], nil
		}
		// Ratio test with Bland's tie-break on basis variable index.
		leave := -1
		best := math.Inf(1)
		for r := 0; r < t.rows; r++ {
			arj := t.a[r][enter]
			if arj > eps {
				ratio := t.a[r][t.cols] / arj
				if ratio < best-eps || (math.Abs(ratio-best) <= eps &&
					(leave < 0 || t.basis[r] < t.basis[leave])) {
					best = ratio
					leave = r
				}
			}
		}
		if leave < 0 {
			return 0, ErrUnbounded
		}
		t.pivot(leave, enter, z)
	}
	return 0, errors.New("lp: pivot limit exceeded (cycling?)")
}

// pivot performs a Gauss-Jordan pivot on (row, col), updating the basis
// bookkeeping and the objective row z alongside.
func (t *tableau) pivot(row, col int, z []float64) {
	t.basis[row] = col
	piv := t.a[row][col]
	inv := 1 / piv
	for j := 0; j <= t.cols; j++ {
		t.a[row][j] *= inv
	}
	t.a[row][col] = 1 // exact
	for r := 0; r < t.rows; r++ {
		if r == row {
			continue
		}
		f := t.a[r][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= t.cols; j++ {
			t.a[r][j] -= f * t.a[row][j]
		}
		t.a[r][col] = 0 // exact
	}
	f := z[col]
	if f != 0 {
		for j := 0; j <= t.cols; j++ {
			z[j] -= f * t.a[row][j]
		}
		z[col] = 0
	}
}

// driveOutArtificials pivots any artificial variable that remains basic at
// level zero out of the basis (or leaves it if its row is all zeros, which
// indicates a redundant constraint).
func (t *tableau) driveOutArtificials() {
	for r := 0; r < t.rows; r++ {
		if t.basis[r] < t.artBase {
			continue
		}
		// Find a non-artificial column with nonzero coefficient to pivot in.
		pivoted := false
		for j := 0; j < t.artBase; j++ {
			if math.Abs(t.a[r][j]) > eps {
				dummy := make([]float64, t.cols+1)
				t.pivot(r, j, dummy)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: zero it so it cannot affect later pivots.
			for j := 0; j <= t.cols; j++ {
				t.a[r][j] = 0
			}
		}
	}
}
