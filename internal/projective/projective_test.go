package projective

import (
	"errors"
	"testing"

	"bqs/internal/gf"
)

func TestPlaneOrders(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7, 8, 9} {
		p, err := New(q)
		if err != nil {
			t.Fatalf("New(%d): %v", q, err)
		}
		want := q*q + q + 1
		if p.NumPoints() != want || p.NumLines() != want {
			t.Errorf("PG(2,%d): %d points, %d lines, want %d",
				q, p.NumPoints(), p.NumLines(), want)
		}
		if p.Order() != q {
			t.Errorf("Order = %d, want %d", p.Order(), q)
		}
	}
}

func TestNonPrimePowerOrderRejected(t *testing.T) {
	for _, q := range []int{1, 6, 10, 12} {
		if _, err := New(q); !errors.Is(err, gf.ErrNotPrimePower) {
			t.Errorf("New(%d) err = %v, want ErrNotPrimePower", q, err)
		}
	}
}

func TestFanoPlaneStructure(t *testing.T) {
	// PG(2,2) is the Fano plane: 7 points, 7 lines of 3 points each.
	p, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	lines := p.Lines()
	if len(lines) != 7 {
		t.Fatalf("Fano has %d lines", len(lines))
	}
	for _, ln := range lines {
		if len(ln) != 3 {
			t.Fatalf("Fano line %v has size %d", ln, len(ln))
		}
	}
}

func TestTwoPointsDetermineALine(t *testing.T) {
	// Dual axiom to line-intersection: every pair of points lies on exactly
	// one common line.
	for _, q := range []int{2, 3, 4, 5} {
		p, _ := New(q)
		n := p.NumPoints()
		onLine := make([][]int, n) // point → line indices
		for li := 0; li < p.NumLines(); li++ {
			for _, pt := range p.Line(li) {
				onLine[pt] = append(onLine[pt], li)
			}
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				common := 0
				for _, la := range onLine[a] {
					for _, lb := range onLine[b] {
						if la == lb {
							common++
						}
					}
				}
				if common != 1 {
					t.Fatalf("PG(2,%d): points %d,%d share %d lines, want 1", q, a, b, common)
				}
			}
		}
	}
}

func TestLineReturnsCopy(t *testing.T) {
	p, _ := New(2)
	l1 := p.Line(0)
	l1[0] = -99
	l2 := p.Line(0)
	if l2[0] == -99 {
		t.Fatal("Line exposes internal state")
	}
}

func TestTransversalPropertyOfLines(t *testing.T) {
	// In an FPP the lines themselves are minimal transversals: every line
	// meets every other line (IS=1 system where quorums are self-dual).
	for _, q := range []int{2, 3, 4} {
		p, _ := New(q)
		lines := p.Lines()
		for i, a := range lines {
			for j, b := range lines {
				if i == j {
					continue
				}
				if intersectSorted(a, b) == 0 {
					t.Fatalf("PG(2,%d): line %d misses line %d", q, i, j)
				}
			}
		}
	}
}
