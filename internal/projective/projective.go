// Package projective constructs finite projective planes PG(2, q), the
// regular quorum systems at the heart of the paper's boostFPP construction
// (Section 6). An FPP of order q has n = q²+q+1 points; its lines are the
// quorums: any two lines meet in exactly one point (IS = 1), every line has
// q+1 points, and the minimal transversals are exactly the lines
// (MT = q+1). The load is (q+1)/n ≈ 1/√n, optimal for regular systems
// [NW98].
//
// The construction is the standard one over GF(q): points are the
// one-dimensional subspaces of GF(q)³, lines the two-dimensional ones, and
// incidence is orthogonality of homogeneous coordinates.
package projective

import (
	"fmt"
	"sort"

	"bqs/internal/gf"
)

// Plane is a finite projective plane of order q.
type Plane struct {
	order  int
	points [][3]int // normalized homogeneous coordinates
	lines  [][]int  // lines[i] = sorted indices of incident points
}

// New constructs PG(2, q). It fails if q is not a prime power (planes of
// non-prime-power order are not known to exist; the construction needs
// GF(q)).
func New(q int) (*Plane, error) {
	field, err := gf.New(q)
	if err != nil {
		return nil, fmt.Errorf("projective: order %d: %w", q, err)
	}

	points := normalizedTriples(q)
	index := make(map[[3]int]int, len(points))
	for i, pt := range points {
		index[pt] = i
	}

	// Lines have the same normalized coordinate representatives (duality):
	// point (x:y:z) lies on line [l:m:n] iff lx+my+nz = 0.
	lineCoords := normalizedTriples(q)
	lines := make([][]int, len(lineCoords))
	for li, lc := range lineCoords {
		var incident []int
		for pi, pt := range points {
			s := field.Add(field.Add(field.Mul(lc[0], pt[0]), field.Mul(lc[1], pt[1])), field.Mul(lc[2], pt[2]))
			if s == 0 {
				incident = append(incident, pi)
			}
		}
		sort.Ints(incident)
		lines[li] = incident
	}

	p := &Plane{order: q, points: points, lines: lines}
	if err := p.Verify(); err != nil {
		return nil, err
	}
	return p, nil
}

// normalizedTriples enumerates canonical representatives of the projective
// points of GF(q)³: (1,a,b), (0,1,a), (0,0,1).
func normalizedTriples(q int) [][3]int {
	out := make([][3]int, 0, q*q+q+1)
	for a := 0; a < q; a++ {
		for b := 0; b < q; b++ {
			out = append(out, [3]int{1, a, b})
		}
	}
	for a := 0; a < q; a++ {
		out = append(out, [3]int{0, 1, a})
	}
	out = append(out, [3]int{0, 0, 1})
	return out
}

// Order returns q.
func (p *Plane) Order() int { return p.order }

// NumPoints returns q²+q+1.
func (p *Plane) NumPoints() int { return len(p.points) }

// NumLines returns q²+q+1.
func (p *Plane) NumLines() int { return len(p.lines) }

// Line returns the sorted point indices of line i. The returned slice is a
// copy.
func (p *Plane) Line(i int) []int {
	out := make([]int, len(p.lines[i]))
	copy(out, p.lines[i])
	return out
}

// Lines returns all lines as sorted point-index slices (deep copy).
func (p *Plane) Lines() [][]int {
	out := make([][]int, len(p.lines))
	for i := range p.lines {
		out[i] = p.Line(i)
	}
	return out
}

// Verify checks the projective plane axioms: point/line counts, uniform
// line size q+1, uniform point degree q+1, and pairwise line intersections
// of exactly one point.
func (p *Plane) Verify() error {
	q := p.order
	want := q*q + q + 1
	if len(p.points) != want || len(p.lines) != want {
		return fmt.Errorf("projective: PG(2,%d) has %d points and %d lines, want %d",
			q, len(p.points), len(p.lines), want)
	}
	degree := make([]int, len(p.points))
	for _, ln := range p.lines {
		if len(ln) != q+1 {
			return fmt.Errorf("projective: line size %d, want %d", len(ln), q+1)
		}
		for _, pt := range ln {
			degree[pt]++
		}
	}
	for pt, d := range degree {
		if d != q+1 {
			return fmt.Errorf("projective: point %d has degree %d, want %d", pt, d, q+1)
		}
	}
	for i := 0; i < len(p.lines); i++ {
		for j := i + 1; j < len(p.lines); j++ {
			if c := intersectSorted(p.lines[i], p.lines[j]); c != 1 {
				return fmt.Errorf("projective: lines %d,%d intersect in %d points, want 1", i, j, c)
			}
		}
	}
	return nil
}

func intersectSorted(a, b []int) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}
