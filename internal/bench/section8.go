package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"bqs/internal/core"
	"bqs/internal/measures"
	"bqs/internal/systems"
)

// Section8Row compares one system of the Section 8 worked example (fixed
// n ≈ 1024, target load ≈ 1/4, element crash probability p = 1/8) against
// the paper's reported numbers.
type Section8Row struct {
	System     string
	N          int
	B          int
	F          int
	Load       float64
	PaperB     int
	PaperF     int
	PaperFp    string  // the bound as printed in the paper
	MeasuredFp float64 // our exact / Monte Carlo value
	StdErr     float64 // 0 for exact values
	Method     string
}

// Section8 reproduces the worked example with the paper's exact
// parameters: M-Grid (n=1024, b=15), boostFPP (n=1001, q=3, b=19), M-Path
// (4 LR + 4 TB paths, b=7), RT(4,3) depth 5 (b=15).
func Section8(trials int, seed int64) ([]Section8Row, error) {
	if trials <= 0 {
		trials = 10000
	}
	rng := rand.New(rand.NewSource(seed))
	const p = 0.125
	rows := make([]Section8Row, 0, 4)

	// M-Grid, n = 1024, b = 15 → 4 rows + 4 columns per quorum.
	mg, err := systems.NewMGrid(32, 15)
	if err != nil {
		return nil, err
	}
	mgMC, err := measures.CrashProbabilityMC(mg, p, trials, rng)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Section8Row{
		System: mg.Name(), N: mg.UniverseSize(),
		B: core.MaskingBoundFromParams(mg), F: core.Resilience(mg), Load: mg.Load(),
		PaperB: 15, PaperF: 28, PaperFp: "≥ 0.638",
		MeasuredFp: mgMC.Estimate, StdErr: mgMC.StdErr, Method: "mc",
	})

	// boostFPP, q = 3, b = 19, n = 1001.
	bf, err := systems.NewBoostFPP(3, 19)
	if err != nil {
		return nil, err
	}
	bfFp, err := bf.CrashProbability(p)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Section8Row{
		System: bf.Name(), N: bf.UniverseSize(),
		B: core.MaskingBoundFromParams(bf), F: core.Resilience(bf), Load: bf.Load(),
		PaperB: 19, PaperF: 79, PaperFp: "≤ 0.372",
		MeasuredFp: bfFp, Method: "exact",
	})

	// M-Path, 4 LR + 4 TB paths per quorum → b = 7, on the same 32×32 grid.
	mp, err := systems.NewMPath(32, 7)
	if err != nil {
		return nil, err
	}
	// M-Path crash events are rare at p = 1/8; Monte Carlo with the full
	// budget. A zero estimate means "below 1/trials resolution".
	mpTrials := trials / 4
	if mpTrials < 500 {
		mpTrials = 500
	}
	mpMC, err := measures.CrashProbabilityMC(mp, p, mpTrials, rng)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Section8Row{
		System: mp.Name(), N: mp.UniverseSize(),
		B: core.MaskingBoundFromParams(mp), F: core.Resilience(mp), Load: mp.Load(),
		PaperB: 7, PaperF: 29, PaperFp: "≤ 0.001",
		MeasuredFp: mpMC.Estimate, StdErr: mpMC.StdErr, Method: "mc",
	})

	// RT(4,3) of depth 5, n = 1024.
	rt, err := systems.NewRT(4, 3, 5)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Section8Row{
		System: rt.Name(), N: rt.UniverseSize(),
		B: core.MaskingBoundFromParams(rt), F: core.Resilience(rt), Load: rt.Load(),
		PaperB: 15, PaperF: 31, PaperFp: "≤ 0.0001",
		MeasuredFp: rt.CrashProbability(p), Method: "recurrence",
	})

	return rows, nil
}

// FormatSection8 renders the comparison table.
func FormatSection8(rows []Section8Row) string {
	var sb strings.Builder
	sb.WriteString("Section 8 worked example: n ≈ 1024, L ≈ 1/4, p = 1/8\n")
	fmt.Fprintf(&sb, "%-20s %6s %9s %9s %8s %12s %14s %-10s\n",
		"System", "n", "b(paper)", "f(paper)", "L", "Fp(paper)", "Fp(measured)", "method")
	sb.WriteString(strings.Repeat("-", 96) + "\n")
	for _, r := range rows {
		fp := fmt.Sprintf("%.2e", r.MeasuredFp)
		if r.StdErr > 0 {
			fp = fmt.Sprintf("%.2e±%.0e", r.MeasuredFp, r.StdErr)
		}
		fmt.Fprintf(&sb, "%-20s %6d %3d (%3d) %3d (%3d) %8.4f %12s %14s %-10s\n",
			r.System, r.N, r.B, r.PaperB, r.F, r.PaperF, r.Load, r.PaperFp, fp, r.Method)
	}
	return sb.String()
}
