package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"bqs/internal/bitset"
	"bqs/internal/lattice"
	"bqs/internal/systems"
)

// Figure1MGrid renders the paper's Figure 1: the multi-grid on a 7×7
// universe with b = 3, one quorum (2 rows + 2 columns) shaded.
func Figure1MGrid(seed int64) (string, error) {
	m, err := systems.NewMGrid(7, 3)
	if err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(seed))
	q := m.SampleQuorum(rng)
	var sb strings.Builder
	sb.WriteString("Figure 1: M-Grid, n = 7×7, b = 3 (quorum = 2 rows ∪ 2 columns)\n")
	sb.WriteString(renderGrid(7, q, bitset.Set{}))
	fmt.Fprintf(&sb, "quorum size %d = c(M-Grid) = %d\n", q.Count(), m.MinQuorumSize())
	return sb.String(), nil
}

// Figure2RT renders Figure 2: an RT(4,3) system of depth 2 with one
// quorum shaded, as a two-level tree over 16 leaves.
func Figure2RT(seed int64) (string, error) {
	rt, err := systems.NewRT(4, 3, 2)
	if err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(seed))
	q := rt.SampleQuorum(rng)
	var sb strings.Builder
	sb.WriteString("Figure 2: RT(4,3) of depth h = 2 (3-of-4 over 3-of-4), one quorum shaded\n")
	sb.WriteString("                     [ 3 of 4 ]\n")
	for block := 0; block < 4; block++ {
		used := 0
		cells := make([]string, 4)
		for leaf := 0; leaf < 4; leaf++ {
			idx := block*4 + leaf
			if q.Contains(idx) {
				cells[leaf] = "█"
				used++
			} else {
				cells[leaf] = "·"
			}
		}
		marker := " "
		if used > 0 {
			marker = "*"
		}
		fmt.Fprintf(&sb, "  block %d %s [3 of 4]: %s\n", block, marker, strings.Join(cells, " "))
	}
	fmt.Fprintf(&sb, "quorum size %d = c(RT) = %d; blocks used: 3 of 4\n", q.Count(), rt.MinQuorumSize())
	return sb.String(), nil
}

// Figure3MPath renders Figure 3: the multi-path construction on a 9×9
// triangulated grid with b = 4, one quorum (3 disjoint LR paths + 3
// disjoint TB paths) shaded. Unlike the straight-line strategy, this picks
// the quorum with the max-flow machinery under a few injected failures so
// the paths genuinely wiggle.
func Figure3MPath(seed int64) (string, error) {
	m, err := systems.NewMPath(9, 4)
	if err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(seed))
	// Inject a handful of failures to force non-straight paths.
	dead := bitset.New(81)
	g := m.Grid()
	for _, rc := range [][2]int{{1, 1}, {4, 4}, {6, 2}, {3, 7}} {
		dead.Add(g.Index(rc[0], rc[1]))
	}
	q, err := m.SelectQuorum(rng, dead)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Figure 3: M-Path, 9×9 triangulated grid, b = 4\n")
	sb.WriteString("(3 disjoint LR + 3 disjoint TB paths; x = crashed site)\n")
	sb.WriteString(renderGrid(9, q, dead))
	fmt.Fprintf(&sb, "quorum size %d (≤ paper bound 2√(n(2b+1)) = %.0f)\n",
		q.Count(), 2*sqrtF(81*9))
	return sb.String(), nil
}

func sqrtF(x int) float64 {
	f := float64(x)
	lo, hi := 0.0, f
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if mid*mid < f {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// renderGrid draws a d×d universe: █ quorum member, x dead, · other.
func renderGrid(d int, quorum, dead bitset.Set) string {
	var sb strings.Builder
	for r := 0; r < d; r++ {
		for c := 0; c < d; c++ {
			v := r*d + c
			switch {
			case dead.Contains(v):
				sb.WriteString("x ")
			case quorum.Contains(v):
				sb.WriteString("█ ")
			default:
				sb.WriteString("· ")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// PercolationFigure tabulates the Appendix B crossing probability
// P_p(LR_k) on a d×d triangulated grid across p, showing the sharp
// threshold at the site-percolation critical probability 1/2.
func PercolationFigure(d, k, trials int, seed int64) (string, error) {
	g, err := lattice.New(d)
	if err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	fmt.Fprintf(&sb, "Appendix B: P_p(LR_%d) on the %d×%d triangulated grid (p_c = 1/2)\n", k, d, d)
	fmt.Fprintf(&sb, "%6s %12s\n", "p", "P_p(LR_k)")
	for _, p := range []float64{0.1, 0.2, 0.3, 0.4, 0.45, 0.5, 0.55, 0.6, 0.7} {
		prob, err := g.CrossingProbability(lattice.LeftRight, p, k, trials, rng)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%6.2f %12.3f\n", p, prob)
	}
	return sb.String(), nil
}
