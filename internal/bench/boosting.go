package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"bqs/internal/bitset"
	"bqs/internal/combin"
	"bqs/internal/core"
	"bqs/internal/measures"
	"bqs/internal/projective"
	"bqs/internal/systems"
)

// BoostRow records the §6 boosting technique applied to one regular
// system: the composed parameters and a Monte Carlo availability check.
type BoostRow struct {
	Input    string
	B        int
	N        int
	IS, MT   int
	Masks    int // Corollary 3.7 bound of the composition
	SurviveP float64
	Fp       float64
}

// BoostingTable applies Boost(S, b) = S ∘ Thresh(3b+1 of 4b+1) to four
// regular systems — majority, the NW grid, a projective plane, and a
// crumbling wall — demonstrating the paper's claim that the technique
// makes every known benign construction available for Byzantine
// environments.
func BoostingTable(p float64, trials int, seed int64) ([]BoostRow, error) {
	rng := rand.New(rand.NewSource(seed))
	var rows []BoostRow

	inputs := make([]core.System, 0, 4)
	maj, err := systems.NewMajority(5)
	if err != nil {
		return nil, err
	}
	inputs = append(inputs, maj)
	grid, err := systems.NewNWGrid(4)
	if err != nil {
		return nil, err
	}
	inputs = append(inputs, grid)
	plane, err := projective.New(2)
	if err != nil {
		return nil, err
	}
	fpp, err := systems.NewFPP(plane)
	if err != nil {
		return nil, err
	}
	inputs = append(inputs, fpp)
	wall, err := systems.NewCrumblingWall([]int{1, 2, 3}, 0)
	if err != nil {
		return nil, err
	}
	inputs = append(inputs, wall)

	for _, in := range inputs {
		for _, b := range []int{1, 2} {
			boosted, err := systems.Boost(in, b)
			if err != nil {
				return nil, err
			}
			mc, err := measures.CrashProbabilityMC(boosted, p, trials, rng)
			if err != nil {
				return nil, err
			}
			rows = append(rows, BoostRow{
				Input:    in.Name(),
				B:        b,
				N:        boosted.UniverseSize(),
				IS:       boosted.MinIntersection(),
				MT:       boosted.MinTransversal(),
				Masks:    boosted.MaskingBound(),
				SurviveP: p,
				Fp:       mc.Estimate,
			})
		}
	}
	return rows, nil
}

// FormatBoosting renders the boosting table.
func FormatBoosting(rows []BoostRow) string {
	var sb strings.Builder
	sb.WriteString("Boosting (§6): regular system ∘ Thresh(3b+1 of 4b+1)\n")
	fmt.Fprintf(&sb, "%-14s %3s %6s %5s %5s %7s %10s\n", "input", "b", "n", "IS", "MT", "masks", "F_p")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %3d %6d %5d %5d %7d %10.4f\n",
			r.Input, r.B, r.N, r.IS, r.MT, r.Masks, r.Fp)
	}
	return sb.String()
}

// AblationRow compares the load of a construction's proper strategy
// against a deliberately naive one, quantifying how much Definition 3.8's
// "best possible strategy" matters.
type AblationRow struct {
	System     string
	Optimal    float64 // analytic load of the paper's strategy
	OptimalEmp float64 // measured busiest-server frequency
	NaiveEmp   float64 // measured with the biased strategy
	Penalty    float64 // NaiveEmp / OptimalEmp
}

// biasedMGrid samples M-Grid quorums only from the top half of the rows
// and left half of the columns — a plausible-looking but load-hostile
// strategy.
type biasedMGrid struct {
	*systems.MGrid
}

func (b biasedMGrid) SampleQuorum(rng *rand.Rand) bitset.Set {
	d := b.Side()
	r := b.LinesPerAxis()
	half := d / 2
	if half < r {
		half = r
	}
	q := bitset.New(d * d)
	for _, row := range combin.RandomKSubset(rng, half, r) {
		for c := 0; c < d; c++ {
			q.Add(row*d + c)
		}
	}
	for _, col := range combin.RandomKSubset(rng, half, r) {
		for rr := 0; rr < d; rr++ {
			q.Add(rr*d + col)
		}
	}
	return q
}

// StrategyAblation measures the load penalty of the biased strategy on
// M-Grid instances (the paper's load optimality claims are about the
// strategy, not just the quorum sets).
func StrategyAblation(trials int, seed int64) ([]AblationRow, error) {
	rng := rand.New(rand.NewSource(seed))
	var rows []AblationRow
	for _, cfg := range []struct{ d, b int }{{16, 7}, {32, 15}} {
		mg, err := systems.NewMGrid(cfg.d, cfg.b)
		if err != nil {
			return nil, err
		}
		optEmp := measures.EmpiricalLoad(mg, trials, rng)
		naiveEmp := measures.EmpiricalLoad(biasedMGrid{mg}, trials, rng)
		rows = append(rows, AblationRow{
			System:     mg.Name(),
			Optimal:    mg.Load(),
			OptimalEmp: optEmp,
			NaiveEmp:   naiveEmp,
			Penalty:    naiveEmp / optEmp,
		})
	}
	return rows, nil
}

// FormatAblation renders the strategy ablation.
func FormatAblation(rows []AblationRow) string {
	var sb strings.Builder
	sb.WriteString("Strategy ablation: uniform (paper) vs biased quorum choice on M-Grid\n")
	fmt.Fprintf(&sb, "%-20s %10s %12s %12s %8s\n", "system", "L(analytic)", "L(uniform)", "L(biased)", "penalty")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-20s %10.4f %12.4f %12.4f %7.2fx\n",
			r.System, r.Optimal, r.OptimalEmp, r.NaiveEmp, r.Penalty)
	}
	return sb.String()
}
