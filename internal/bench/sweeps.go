package bench

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"bqs/internal/core"
	"bqs/internal/measures"
	"bqs/internal/systems"
)

// LoadRow compares a construction's load against the Theorem 4.1 /
// Corollary 4.2 lower bounds.
type LoadRow struct {
	System     string
	N, B, C    int
	Load       float64
	BoundThm41 float64 // max{(2b+1)/c, c/n}
	BoundCor42 float64 // √((2b+1)/n)
	Ratio      float64 // Load / BoundCor42
}

// LoadVsLowerBound sweeps each construction family across sizes and
// reports how close its load sits to the masking lower bounds — the
// quantitative content of the optimality claims in Propositions 5.2, 5.5,
// 6.2 and 7.2.
func LoadVsLowerBound() ([]LoadRow, error) {
	var rows []LoadRow
	add := func(s paramSystem, load float64) {
		b := core.MaskingBoundFromParams(s)
		c := s.MinQuorumSize()
		n := s.UniverseSize()
		cor := measures.GlobalLoadLowerBound(n, b)
		rows = append(rows, LoadRow{
			System: s.Name(), N: n, B: b, C: c,
			Load:       load,
			BoundThm41: measures.LoadLowerBound(n, b, c),
			BoundCor42: cor,
			Ratio:      load / cor,
		})
	}
	for _, bb := range []int{4, 16, 64} {
		th, err := systems.NewMaskingThreshold(4*bb+1, bb)
		if err != nil {
			return nil, err
		}
		add(th, th.Load())
	}
	for _, d := range []int{16, 32, 64} {
		g, err := systems.NewGrid(d, (d-1)/6)
		if err != nil {
			return nil, err
		}
		add(g, g.Load())
		mg, err := systems.NewMGrid(d, d/2-1)
		if err != nil {
			return nil, err
		}
		add(mg, mg.Load())
		mp, err := systems.NewMPath(d, d/3)
		if err != nil {
			return nil, err
		}
		add(mp, mp.Load())
	}
	for _, h := range []int{3, 4, 5} {
		rt, err := systems.NewRT(4, 3, h)
		if err != nil {
			return nil, err
		}
		add(rt, rt.Load())
	}
	for _, qb := range [][2]int{{2, 3}, {3, 7}, {5, 19}} {
		bf, err := systems.NewBoostFPP(qb[0], qb[1])
		if err != nil {
			return nil, err
		}
		add(bf, bf.Load())
	}
	return rows, nil
}

// FormatLoadRows renders the sweep.
func FormatLoadRows(rows []LoadRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %7s %5s %6s %8s %9s %9s %7s\n",
		"System", "n", "b", "c", "L", "Thm4.1", "Cor4.2", "L/bound")
	sb.WriteString(strings.Repeat("-", 80) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %7d %5d %6d %8.4f %9.4f %9.4f %7.2f\n",
			r.System, r.N, r.B, r.C, r.Load, r.BoundThm41, r.BoundCor42, r.Ratio)
	}
	return sb.String()
}

// CrashRow holds a crash-probability sweep point with its lower bounds.
type CrashRow struct {
	System   string
	P        float64
	Fp       float64
	StdErr   float64
	BoundMT  float64 // Prop 4.3: p^MT
	BoundB   float64 // Prop 4.5: p^(b+1), when applicable
	Applies  bool    // Prop 4.5 precondition
	Condorce bool    // whether F_p < p (availability actually amplified)
}

// CrashSweep evaluates F_p across p for one system, via the supplied
// evaluator (exact, recurrence, or Monte Carlo).
func CrashSweep(s paramSystem, eval func(p float64) (float64, float64, error), ps []float64) ([]CrashRow, error) {
	rows := make([]CrashRow, 0, len(ps))
	for _, p := range ps {
		fp, se, err := eval(p)
		if err != nil {
			return nil, err
		}
		b := core.MaskingBoundFromParams(s)
		rows = append(rows, CrashRow{
			System:   s.Name(),
			P:        p,
			Fp:       fp,
			StdErr:   se,
			BoundMT:  measures.CrashLowerBoundMT(s.MinTransversal(), p),
			BoundB:   measures.CrashLowerBoundB(b, p),
			Applies:  measures.Prop45Applies(s),
			Condorce: fp < p,
		})
	}
	return rows, nil
}

// MCEvaluator adapts Monte Carlo estimation to CrashSweep's signature.
func MCEvaluator(s core.System, trials int, rng *rand.Rand) func(p float64) (float64, float64, error) {
	return func(p float64) (float64, float64, error) {
		mc, err := measures.CrashProbabilityMC(s, p, trials, rng)
		if err != nil {
			return 0, 0, err
		}
		return mc.Estimate, mc.StdErr, nil
	}
}

// FormatCrashRows renders a crash sweep.
func FormatCrashRows(rows []CrashRow) string {
	var sb strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&sb, "Crash sweep: %s\n", rows[0].System)
	}
	fmt.Fprintf(&sb, "%6s %12s %12s %12s %10s\n", "p", "F_p", "p^MT", "p^(b+1)", "F_p<p?")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%6.3f %12.3e %12.3e %12.3e %10v\n",
			r.P, r.Fp, r.BoundMT, r.BoundB, r.Condorce)
	}
	return sb.String()
}

// RTCriticalRow reports the Proposition 5.6 fixed point for an RT family.
type RTCriticalRow struct {
	K, L   int
	Pc     float64
	FBelow float64 // F at p = pc·0.8, depth 6 — should be tiny
	FAbove float64 // F at p = pc·1.2, depth 6 — should be near 1
}

// RTCriticalProbabilities computes p_c for several RT block shapes,
// including the paper's RT(4,3) with p_c = 0.2324.
func RTCriticalProbabilities() ([]RTCriticalRow, error) {
	shapes := [][2]int{{3, 2}, {4, 3}, {5, 3}, {5, 4}, {7, 4}}
	rows := make([]RTCriticalRow, 0, len(shapes))
	for _, kl := range shapes {
		rt, err := systems.NewRT(kl[0], kl[1], 6)
		if err != nil {
			return nil, err
		}
		pc := rt.CriticalProbability()
		rows = append(rows, RTCriticalRow{
			K: kl[0], L: kl[1], Pc: pc,
			FBelow: rt.CrashProbability(pc * 0.8),
			FAbove: rt.CrashProbability(math.Min(pc*1.2, 0.999)),
		})
	}
	return rows, nil
}

// FormatRTCritical renders the critical probability table.
func FormatRTCritical(rows []RTCriticalRow) string {
	var sb strings.Builder
	sb.WriteString("RT critical probabilities (Proposition 5.6); F at depth 6\n")
	fmt.Fprintf(&sb, "%8s %8s %12s %12s\n", "RT(k,ℓ)", "p_c", "F(0.8·pc)", "F(1.2·pc)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "RT(%d,%d) %8.4f %12.3e %12.6f\n", r.K, r.L, r.Pc, r.FBelow, r.FAbove)
	}
	return sb.String()
}

// TradeoffRow checks the Section 8 closing observation f ≤ n·L(Q): load
// and resilience cannot both be optimized.
type TradeoffRow struct {
	System string
	N, F   int
	Load   float64
	NL     float64
	Holds  bool
}

// ResilienceLoadTradeoff evaluates f ≤ nL across all constructions.
func ResilienceLoadTradeoff() ([]TradeoffRow, error) {
	var rows []TradeoffRow
	add := func(s paramSystem, load float64) {
		f := core.Resilience(s)
		nl := float64(s.UniverseSize()) * load
		rows = append(rows, TradeoffRow{
			System: s.Name(), N: s.UniverseSize(), F: f, Load: load,
			NL: nl, Holds: float64(f) <= nl+1e-9,
		})
	}
	th, err := systems.NewMaskingThreshold(1021, 255)
	if err != nil {
		return nil, err
	}
	add(th, th.Load())
	g, err := systems.NewGrid(32, 10)
	if err != nil {
		return nil, err
	}
	add(g, g.Load())
	mg, err := systems.NewMGrid(32, 15)
	if err != nil {
		return nil, err
	}
	add(mg, mg.Load())
	rt, err := systems.NewRT(4, 3, 5)
	if err != nil {
		return nil, err
	}
	add(rt, rt.Load())
	bf, err := systems.NewBoostFPP(3, 19)
	if err != nil {
		return nil, err
	}
	add(bf, bf.Load())
	mp, err := systems.NewMPath(32, 15)
	if err != nil {
		return nil, err
	}
	add(mp, mp.Load())
	return rows, nil
}

// FormatTradeoff renders the tradeoff table.
func FormatTradeoff(rows []TradeoffRow) string {
	var sb strings.Builder
	sb.WriteString("Resilience–load tradeoff (Section 8): f ≤ n·L(Q)\n")
	fmt.Fprintf(&sb, "%-22s %7s %5s %8s %9s %6s\n", "System", "n", "f", "L", "n·L", "f≤nL")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %7d %5d %8.4f %9.1f %6v\n", r.System, r.N, r.F, r.Load, r.NL, r.Holds)
	}
	return sb.String()
}
