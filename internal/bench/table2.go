// Package bench regenerates every table and figure in the paper's
// evaluation: Table 2 (the properties of all six constructions), the
// Section 8 worked example (n ≈ 1024, p = 1/8), Figures 1–3 (construction
// diagrams), and the per-proposition sweeps (load vs the Theorem 4.1 /
// Corollary 4.2 bounds, crash probability vs the Propositions 4.3–4.5
// bounds, the RT critical probability, percolation behavior of M-Path, and
// the Section 8 resilience–load tradeoff). The cmd/ tools print these
// tables; bench_test.go at the module root wraps each one in a Go
// benchmark.
package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"bqs/internal/core"
	"bqs/internal/measures"
	"bqs/internal/systems"
)

// Table2Row is one construction's measured properties, mirroring the
// columns of Table 2 (b, f, L, F_p) plus the raw parameters they derive
// from.
type Table2Row struct {
	System    string
	N         int
	B         int     // masking bound (Corollary 3.7)
	F         int     // resilience f = MT − 1
	C         int     // smallest quorum
	Load      float64 // exact load of the construction's strategy
	LoadLower float64 // Corollary 4.2 bound √((2b+1)/n)
	Fp        float64 // measured/analytic crash probability at P
	FpMethod  string  // "exact", "recurrence", "mc", "row-bound"
	P         float64
}

// Table2Config fixes the instance sizes used to realize the asymptotic
// Table 2. Defaults (via DefaultTable2Config) target n ≈ 1024 so the rows
// are directly comparable with the Section 8 discussion.
type Table2Config struct {
	P        float64 // element crash probability for the F_p column
	Trials   int     // Monte Carlo trials where no closed form exists
	Seed     int64
	Side     int // grid side d (n = d²) for Grid/M-Grid/M-Path
	ThreshB  int // b for Threshold (n = 4b+1)
	GridB    int
	MGridB   int
	RTDepth  int
	MPathB   int
	FPPOrder int // q for boostFPP
	FPPB     int
}

// DefaultTable2Config reproduces the paper's n ≈ 1024 regime.
func DefaultTable2Config() Table2Config {
	return Table2Config{
		P:        0.125,
		Trials:   4000,
		Seed:     1,
		Side:     32,  // n = 1024
		ThreshB:  255, // n = 1021
		GridB:    10,  // ≤ (d−1)/3
		MGridB:   15,  // ≤ (√n−1)/2
		RTDepth:  5,   // RT(4,3), n = 1024
		MPathB:   15,
		FPPOrder: 3, // boostFPP(3, 19): n = 1001
		FPPB:     19,
	}
}

// Table2 builds all six rows.
func Table2(cfg Table2Config) ([]Table2Row, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rows := make([]Table2Row, 0, 6)

	// Threshold [MR98a].
	th, err := systems.NewMaskingThreshold(4*cfg.ThreshB+1, cfg.ThreshB)
	if err != nil {
		return nil, fmt.Errorf("bench: table2 threshold: %w", err)
	}
	rows = append(rows, rowFromParams(th, th.Load(), th.CrashProbability(cfg.P), "exact", cfg.P))

	// Grid [MR98a]: F_p via Monte Carlo (no closed form).
	grid, err := systems.NewGrid(cfg.Side, cfg.GridB)
	if err != nil {
		return nil, fmt.Errorf("bench: table2 grid: %w", err)
	}
	gmc, err := measures.CrashProbabilityMC(grid, cfg.P, cfg.Trials, rng)
	if err != nil {
		return nil, err
	}
	rows = append(rows, rowFromParams(grid, grid.Load(), gmc.Estimate, "mc", cfg.P))

	// M-Grid (§5.1).
	mgrid, err := systems.NewMGrid(cfg.Side, cfg.MGridB)
	if err != nil {
		return nil, fmt.Errorf("bench: table2 m-grid: %w", err)
	}
	mmc, err := measures.CrashProbabilityMC(mgrid, cfg.P, cfg.Trials, rng)
	if err != nil {
		return nil, err
	}
	rows = append(rows, rowFromParams(mgrid, mgrid.Load(), mmc.Estimate, "mc", cfg.P))

	// RT(4,3) (§5.2): exact recurrence.
	rt, err := systems.NewRT(4, 3, cfg.RTDepth)
	if err != nil {
		return nil, fmt.Errorf("bench: table2 rt: %w", err)
	}
	rows = append(rows, rowFromParams(rt, rt.Load(), rt.CrashProbability(cfg.P), "recurrence", cfg.P))

	// boostFPP (§6): exact via Theorem 4.7 composition (plane enumerable).
	bf, err := systems.NewBoostFPP(cfg.FPPOrder, cfg.FPPB)
	if err != nil {
		return nil, fmt.Errorf("bench: table2 boostFPP: %w", err)
	}
	bfp, err := bf.CrashProbability(cfg.P)
	method := "exact"
	if err != nil {
		bfp = bf.CrashUpperBound(cfg.P)
		method = "upper-bound"
	}
	rows = append(rows, rowFromParams(bf, bf.Load(), bfp, method, cfg.P))

	// M-Path (§7): Monte Carlo.
	mp, err := systems.NewMPath(cfg.Side, cfg.MPathB)
	if err != nil {
		return nil, fmt.Errorf("bench: table2 m-path: %w", err)
	}
	pmc, err := measures.CrashProbabilityMC(mp, cfg.P, cfg.Trials/4+1, rng)
	if err != nil {
		return nil, err
	}
	rows = append(rows, rowFromParams(mp, mp.Load(), pmc.Estimate, "mc", cfg.P))

	return rows, nil
}

type paramSystem interface {
	core.System
	core.Parameterized
}

func rowFromParams(s paramSystem, load, fp float64, method string, p float64) Table2Row {
	b := core.MaskingBoundFromParams(s)
	return Table2Row{
		System:    s.Name(),
		N:         s.UniverseSize(),
		B:         b,
		F:         core.Resilience(s),
		C:         s.MinQuorumSize(),
		Load:      load,
		LoadLower: measures.GlobalLoadLowerBound(s.UniverseSize(), b),
		Fp:        fp,
		FpMethod:  method,
		P:         p,
	}
}

// FormatTable2 renders rows as a paper-style text table.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %6s %5s %5s %6s %8s %8s %10s %-10s\n",
		"System", "n", "b", "f", "c", "L", "L-bound", "F_p", "method")
	sb.WriteString(strings.Repeat("-", 92) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %6d %5d %5d %6d %8.4f %8.4f %10.3e %-10s\n",
			r.System, r.N, r.B, r.F, r.C, r.Load, r.LoadLower, r.Fp, r.FpMethod)
	}
	fmt.Fprintf(&sb, "(F_p at element crash probability p = %.3f)\n", rows[0].P)
	return sb.String()
}
