package bench

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"bqs/internal/systems"
)

func TestTable2ShapeMatchesPaper(t *testing.T) {
	cfg := DefaultTable2Config()
	cfg.Trials = 800 // keep the unit test quick; benches use more
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		key := r.System[:strings.IndexAny(r.System, "(")]
		byName[key] = r
		// Universal sanity: load ≥ Corollary 4.2 bound for every system.
		if r.Load < r.LoadLower-1e-9 {
			t.Errorf("%s: load %g below lower bound %g", r.System, r.Load, r.LoadLower)
		}
		if r.Fp < 0 || r.Fp > 1 {
			t.Errorf("%s: F_p = %g outside [0,1]", r.System, r.Fp)
		}
	}
	th, mg, rt, bf, mp := byName["Threshold"], byName["M-Grid"], byName["RT"], byName["boostFPP"], byName["M-Path"]
	grid := byName["Grid"]

	// Table 2 qualitative shape at n ≈ 1024, p = 1/8:
	// Threshold: highest masking, load > 1/2.
	if th.B < 4*grid.B || th.Load <= 0.5 {
		t.Errorf("Threshold row off: b=%d load=%g", th.B, th.Load)
	}
	// Threshold & boostFPP mask the most; boostFPP load ≪ threshold load.
	if bf.Load >= th.Load/2 {
		t.Errorf("boostFPP load %g should be well below threshold load %g", bf.Load, th.Load)
	}
	// M-Grid and M-Path have optimal-order load: within 2.2× of the bound.
	if mg.Load > 2.2*mg.LoadLower || mp.Load > 2.2*mp.LoadLower {
		t.Errorf("M-Grid/M-Path load not near bound: %g/%g, %g/%g",
			mg.Load, mg.LoadLower, mp.Load, mp.LoadLower)
	}
	// Availability ordering at p = 1/8: grids fail badly, RT and M-Path
	// are excellent, boostFPP in between.
	if mg.Fp < 0.3 {
		t.Errorf("M-Grid F_p = %g, expected ≥ 0.3 (paper: ≥ 0.638 row bound)", mg.Fp)
	}
	if rt.Fp > 1e-4 {
		t.Errorf("RT F_p = %g, expected ≤ 1e-4", rt.Fp)
	}
	if mp.Fp > 0.01 {
		t.Errorf("M-Path F_p = %g, expected ≈ 0", mp.Fp)
	}
	if bf.Fp > 0.372 {
		t.Errorf("boostFPP F_p = %g, paper bound ≤ 0.372", bf.Fp)
	}
	// Formatting shouldn't blow up.
	if s := FormatTable2(rows); !strings.Contains(s, "Threshold") {
		t.Error("FormatTable2 missing rows")
	}
}

func TestSection8MatchesPaperNumbers(t *testing.T) {
	rows, err := Section8(2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		switch {
		case strings.HasPrefix(r.System, "M-Grid"):
			if r.B < r.PaperB {
				t.Errorf("M-Grid b = %d < paper %d", r.B, r.PaperB)
			}
			if r.F != r.PaperF {
				t.Errorf("M-Grid f = %d, paper %d", r.F, r.PaperF)
			}
			if r.MeasuredFp < 0.638-5*r.StdErr-0.02 {
				t.Errorf("M-Grid F_p = %g, paper says ≥ 0.638", r.MeasuredFp)
			}
		case strings.HasPrefix(r.System, "boostFPP"):
			if r.B != 19 || r.F != 79 {
				t.Errorf("boostFPP b=%d f=%d, paper 19/79", r.B, r.F)
			}
			if r.MeasuredFp > 0.372 {
				t.Errorf("boostFPP F_p = %g exceeds paper bound 0.372", r.MeasuredFp)
			}
		case strings.HasPrefix(r.System, "M-Path"):
			if r.B != 7 {
				t.Errorf("M-Path b = %d, paper 7", r.B)
			}
			// Paper reports f = 29 from √(2b+1) ≈ 3.87; the integral path
			// count gives MT = d−4+1 = 29, f = 28 — allow both.
			if r.F != 28 && r.F != 29 {
				t.Errorf("M-Path f = %d, paper ≈ 29", r.F)
			}
			if r.MeasuredFp > 0.001+5*r.StdErr {
				t.Errorf("M-Path F_p = %g, paper says ≤ 0.001", r.MeasuredFp)
			}
		case strings.HasPrefix(r.System, "RT"):
			if r.B != 15 || r.F != 31 {
				t.Errorf("RT b=%d f=%d, paper 15/31", r.B, r.F)
			}
			if r.MeasuredFp > 1e-4 {
				t.Errorf("RT F_p = %g, paper says ≤ 1e-4", r.MeasuredFp)
			}
		}
		// The scenario pins L ≈ 1/4 for all four systems.
		if math.Abs(r.Load-0.25) > 0.06 {
			t.Errorf("%s: load %g not ≈ 1/4", r.System, r.Load)
		}
	}
	if s := FormatSection8(rows); !strings.Contains(s, "Section 8") {
		t.Error("FormatSection8 broken")
	}
}

func TestFiguresRender(t *testing.T) {
	f1, err := Figure1MGrid(3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f1, "Figure 1") || strings.Count(f1, "\n") < 8 {
		t.Errorf("figure 1 malformed:\n%s", f1)
	}
	f2, err := Figure2RT(3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f2, "block 3") {
		t.Errorf("figure 2 malformed:\n%s", f2)
	}
	f3, err := Figure3MPath(3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f3, "x ") {
		t.Errorf("figure 3 should mark crashed sites:\n%s", f3)
	}
}

func TestPercolationFigureShape(t *testing.T) {
	out, err := PercolationFigure(12, 1, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "p_c = 1/2") {
		t.Error("percolation figure missing header")
	}
}

func TestLoadVsLowerBound(t *testing.T) {
	rows, err := LoadVsLowerBound()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 15 {
		t.Fatalf("only %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Load < r.BoundCor42-1e-9 {
			t.Errorf("%s: load %g below Cor 4.2 bound %g — impossible", r.System, r.Load, r.BoundCor42)
		}
		if r.Load < r.BoundThm41-1e-9 {
			t.Errorf("%s: load %g below Thm 4.1 bound %g — impossible", r.System, r.Load, r.BoundThm41)
		}
		if r.Ratio > 10 {
			t.Errorf("%s: load %gx above bound — suspicious for these constructions", r.System, r.Ratio)
		}
	}
	if s := FormatLoadRows(rows); !strings.Contains(s, "Cor4.2") {
		t.Error("FormatLoadRows broken")
	}
}

func TestRTCriticalProbabilities(t *testing.T) {
	rows, err := RTCriticalProbabilities()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.K == 4 && r.L == 3 {
			if math.Abs(r.Pc-0.2324) > 1e-3 {
				t.Errorf("RT(4,3) p_c = %g, paper says 0.2324", r.Pc)
			}
		}
		if r.Pc <= 0 || r.Pc >= 1 {
			t.Errorf("RT(%d,%d): p_c = %g out of range", r.K, r.L, r.Pc)
		}
		if r.FBelow > 0.05 {
			t.Errorf("RT(%d,%d): F below p_c = %g, want ≈ 0", r.K, r.L, r.FBelow)
		}
		if r.FAbove < r.FBelow {
			t.Errorf("RT(%d,%d): F not increasing across p_c", r.K, r.L)
		}
	}
	if s := FormatRTCritical(rows); !strings.Contains(s, "0.2324") && !strings.Contains(s, "0.232") {
		t.Errorf("FormatRTCritical missing RT(4,3):\n%s", s)
	}
}

func TestResilienceLoadTradeoff(t *testing.T) {
	rows, err := ResilienceLoadTradeoff()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if !r.Holds {
			t.Errorf("%s: f = %d > nL = %g — violates Theorem 4.1's corollary", r.System, r.F, r.NL)
		}
	}
	if s := FormatTradeoff(rows); !strings.Contains(s, "f ≤ n·L") {
		t.Error("FormatTradeoff broken")
	}
}

func TestBoostingTable(t *testing.T) {
	rows, err := BoostingTable(0.05, 400, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Masks < r.B {
			t.Errorf("%s b=%d: composition masks only %d", r.Input, r.B, r.Masks)
		}
		if r.IS < 2*r.B+1 {
			t.Errorf("%s b=%d: IS = %d < 2b+1", r.Input, r.B, r.IS)
		}
		if r.Fp > 0.2 {
			t.Errorf("%s b=%d: F_0.05 = %g unexpectedly high", r.Input, r.B, r.Fp)
		}
	}
	if s := FormatBoosting(rows); !strings.Contains(s, "Boosting") {
		t.Error("FormatBoosting broken")
	}
}

func TestStrategyAblation(t *testing.T) {
	rows, err := StrategyAblation(4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Penalty < 1.3 {
			t.Errorf("%s: biased strategy penalty %.2fx, expected ≥ 1.3x", r.System, r.Penalty)
		}
		if math.Abs(r.OptimalEmp-r.Optimal) > 0.05 {
			t.Errorf("%s: uniform empirical %g far from analytic %g", r.System, r.OptimalEmp, r.Optimal)
		}
	}
	if s := FormatAblation(rows); !strings.Contains(s, "penalty") {
		t.Error("FormatAblation broken")
	}
}

func TestCrashSweepRTAgainstBounds(t *testing.T) {
	rt, err := systems.NewRT(4, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := CrashSweep(rt, func(p float64) (float64, float64, error) {
		return rt.CrashProbability(p), 0, nil
	}, []float64{0.05, 0.15, 0.2324, 0.35})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Fp < r.BoundMT-1e-15 {
			t.Errorf("p=%g: F_p %g below p^MT %g", r.P, r.Fp, r.BoundMT)
		}
		if r.Applies && r.Fp < r.BoundB-1e-15 {
			t.Errorf("p=%g: F_p %g below p^(b+1) %g", r.P, r.Fp, r.BoundB)
		}
	}
	// Below p_c the system amplifies availability (Condorcet-style).
	if !rows[0].Condorce {
		t.Error("RT at p=0.05 should have F_p < p")
	}
	if s := FormatCrashRows(rows); !strings.Contains(s, "RT(4,3,h=4)") {
		t.Error("FormatCrashRows missing header")
	}
}

func TestCrashSweepMCEvaluator(t *testing.T) {
	mg, err := systems.NewMGrid(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	rows, err := CrashSweep(mg, MCEvaluator(mg, 300, rng), []float64{0.1, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].StdErr <= 0 {
		t.Fatalf("MC sweep malformed: %+v", rows)
	}
	if rows[1].Fp < rows[0].Fp {
		t.Error("F_p should not decrease in p for M-Grid at these points")
	}
}
