package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram: observations are counted into
// the bucket whose upper bound is the smallest bound >= v, with an
// implicit +Inf overflow bucket. Observe is lock-free (one atomic add
// plus a CAS loop for the running sum) and never allocates; quantile
// extraction is a cold path. All methods are no-ops on a nil receiver.
type Histogram struct {
	bounds []float64 // sorted upper bounds; bucket i counts v <= bounds[i]
	counts []atomic.Int64
	n      atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram returns a histogram over the given sorted upper bounds.
// Most callers want DurationBuckets or SizeBuckets.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Inlined binary search: sort.SearchFloat64s would work but this
	// keeps the fast path free of interface and closure machinery.
	i, j := 0, len(h.bounds)
	for i < j {
		m := (i + j) / 2
		if v > h.bounds[m] {
			i = m + 1
		} else {
			j = m
		}
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations, or 0 on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observed values, or 0 on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile returns an upper estimate of the q-quantile (q in [0, 1]): the
// upper bound of the bucket holding the rank-⌈q·n⌉ sample. The estimate
// is exact to within one bucket's resolution; with the default
// exponential buckets that is a ≤19% relative error. Returns 0 with no
// observations or on a nil receiver.
func (h *Histogram) Quantile(q float64) float64 { return QuantileOf(q, h) }

// QuantileOf returns the q-quantile of the merged distribution of the
// given histograms, which must share one bucket layout (nil histograms
// are skipped). This is how read- and write-latency histograms combine
// into a single per-op quantile without double accounting.
func QuantileOf(q float64, hs ...*Histogram) float64 {
	var bounds []float64
	var total int64
	for _, h := range hs {
		if h == nil {
			continue
		}
		if bounds == nil {
			bounds = h.bounds
		} else if len(bounds) != len(h.bounds) {
			panic("obs: QuantileOf over histograms with different bucket layouts")
		}
		total += h.Count()
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i <= len(bounds); i++ {
		for _, h := range hs {
			if h != nil {
				cum += h.counts[i].Load()
			}
		}
		if cum >= rank {
			if i == len(bounds) {
				return bounds[len(bounds)-1] // overflow bucket: clamp to the last bound
			}
			return bounds[i]
		}
	}
	return bounds[len(bounds)-1]
}

// DurationQuantile is QuantileOf converted to a time.Duration.
func DurationQuantile(q float64, hs ...*Histogram) time.Duration {
	return time.Duration(QuantileOf(q, hs...) * float64(time.Second))
}

// buckets returns a point-in-time copy of the per-bucket cumulative
// counts in Prometheus le-semantics: cums[i] counts samples <= bounds[i],
// with one extra +Inf entry equal to Count().
func (h *Histogram) buckets() (bounds []float64, cums []int64) {
	if h == nil {
		return nil, nil
	}
	cums = make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cums[i] = run
	}
	return h.bounds, cums
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets spans 1µs to ~115s with 2^(1/4) growth (108 buckets),
// so latency quantiles resolve to within ~19%: fine enough to compare
// p50/p95/p99 across runs, coarse enough that a histogram costs under
// 1KB.
var DurationBuckets = ExpBuckets(1e-6, math.Pow(2, 0.25), 108)

// SizeBuckets spans 1 to 4096 in powers of two — sized for batch-frame
// op counts and group-commit fsync batches.
var SizeBuckets = ExpBuckets(1, 2, 13)
