//go:build !race

// The allocation pins live behind !race: the race detector instruments
// memory accesses in ways that can charge bookkeeping allocations to the
// measured function, so AllocsPerRun is only meaningful in a normal
// build. The race build still runs every functional test.

package obs

import (
	"testing"
	"time"
)

// TestHotPathZeroAllocs pins the telemetry contract the ISSUE requires:
// both the Noop (nil-instrument) path and the enabled path of every hot
// instrument allocate nothing. A regression here silently taxes every
// probe of every workload.
func TestHotPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bqs_test_ops_total")
	g := r.Gauge("bqs_test_level_count")
	h := r.Histogram("bqs_test_lat_seconds", DurationBuckets)

	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram

	cases := []struct {
		name string
		fn   func()
	}{
		{"nil Counter.Add", func() { nilC.Add(1) }},
		{"nil Gauge.Set", func() { nilG.Set(1) }},
		{"nil Histogram.Observe", func() { nilH.Observe(1) }},
		{"Counter.Add", func() { c.Add(1) }},
		{"Counter.Inc", func() { c.Inc() }},
		{"Gauge.Set", func() { g.Set(2.5) }},
		{"Gauge.Add", func() { g.Add(1) }},
		{"Histogram.Observe", func() { h.Observe(0.001) }},
		{"Histogram.ObserveDuration", func() { h.ObserveDuration(time.Millisecond) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}
