package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety pins the Noop contract: every instrument method is a
// no-op on a nil receiver and every Registry method is safe on a nil
// *Registry — this is what lets un-instrumented layers hold nil pointers
// with no guards at the call sites.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil Counter.Value != 0")
	}
	var g *Gauge
	g.Set(1)
	g.Add(2)
	if g.Value() != 0 {
		t.Fatal("nil Gauge.Value != 0")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(0)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil Histogram is not a no-op")
	}
	var l *EventLog
	l.Add("x")
	l.Addf("%d", 1)
	if l.Total() != 0 || l.Snapshot() != nil {
		t.Fatal("nil EventLog is not a no-op")
	}

	var r *Registry
	if r.Counter("bqs_test_things_total") != nil {
		t.Fatal("nil Registry.Counter != nil")
	}
	if r.Gauge("bqs_test_things_count") != nil {
		t.Fatal("nil Registry.Gauge != nil")
	}
	if r.Histogram("bqs_test_lat_seconds", DurationBuckets) != nil {
		t.Fatal("nil Registry.Histogram != nil")
	}
	r.GaugeFunc("bqs_test_fn_count", func() float64 { return 1 })
	r.CounterFunc("bqs_test_fn_total", func() int64 { return 1 })
	r.Eventf("ignored")
	if ev := r.Events(); ev != nil {
		t.Fatalf("nil Registry.Events = %v", ev)
	}
	if _, ok := r.Value("bqs_test_things_total"); ok {
		t.Fatal("nil Registry.Value reported a series")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil WritePrometheus: %q, %v", sb.String(), err)
	}
	sb.Reset()
	if err := r.WriteJSON(&sb); err != nil || strings.TrimSpace(sb.String()) != "{}" {
		t.Fatalf("nil WriteJSON: %q, %v", sb.String(), err)
	}
}

// TestGetOrCreate pins the sharing semantics several layers rely on: the
// same (name, labels) returns the same instrument, different label sets
// are distinct series, and a kind conflict panics.
func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("bqs_test_frames_total", "dir", "in")
	b := r.Counter("bqs_test_frames_total", "dir", "in")
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c := r.Counter("bqs_test_frames_total", "dir", "out")
	if a == c {
		t.Fatal("different labels returned the same counter")
	}
	a.Add(2)
	if v, ok := r.Value("bqs_test_frames_total", "dir", "in"); !ok || v != 2 {
		t.Fatalf("Value = %v, %v; want 2, true", v, ok)
	}
	if _, ok := r.Value("bqs_test_frames_total"); ok {
		t.Fatal("unlabeled lookup matched a labeled series")
	}

	h1 := r.Histogram("bqs_test_lat_seconds", DurationBuckets)
	h2 := r.Histogram("bqs_test_lat_seconds", SizeBuckets) // bounds ignored on re-registration
	if h1 != h2 {
		t.Fatal("histogram re-registration returned a distinct instrument")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("bqs_test_frames_total", "dir", "in")
}

// TestFuncSeries covers scrape-time series: GaugeFunc and CounterFunc
// read their closure at Value time, and re-registration replaces the
// closure (how a rebuilt cluster re-points the live gauges).
func TestFuncSeries(t *testing.T) {
	r := NewRegistry()
	x := 1.5
	r.GaugeFunc("bqs_test_live_load", func() float64 { return x })
	if v, ok := r.Value("bqs_test_live_load"); !ok || v != 1.5 {
		t.Fatalf("GaugeFunc Value = %v, %v", v, ok)
	}
	x = 2.5
	if v, _ := r.Value("bqs_test_live_load"); v != 2.5 {
		t.Fatalf("GaugeFunc did not track closure: %v", v)
	}
	r.GaugeFunc("bqs_test_live_load", func() float64 { return -1 })
	if v, _ := r.Value("bqs_test_live_load"); v != -1 {
		t.Fatalf("GaugeFunc re-registration did not replace fn: %v", v)
	}

	var n int64 = 7
	r.CounterFunc("bqs_test_live_total", func() int64 { return n })
	if v, ok := r.Value("bqs_test_live_total"); !ok || v != 7 {
		t.Fatalf("CounterFunc Value = %v, %v", v, ok)
	}
}

// TestValidateName pins the registration-time metric-name lint.
func TestValidateName(t *testing.T) {
	valid := []string{
		"bqs_server_load",
		"bqs_client_read_seconds",
		"bqs_wire_frames_total",
		"bqs_store_fsync_batch_size",
		"bqs_system_crash_rate",
		"bqs_cluster_load_lower_bound",
		"bqs_wire_open_conns_count",
		"bqs_cluster_byzantine_servers",
		"bqs_cluster_batch_ops",
		"bqs_wire_bytes_total",
	}
	for _, name := range valid {
		if err := ValidateName(name); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", name, err)
		}
	}
	invalid := []string{
		"",
		"bqs",
		"bqs_total",                  // no layer token
		"server_load",                // missing bqs_ prefix
		"bqs_server_requests",        // unknown unit
		"bqs_Server_load",            // uppercase
		"bqs_server__load",           // empty token
		"bqs_server_load_",           // trailing empty token
		"bqs_server_latency-seconds", // non-alphanumeric
	}
	for _, name := range invalid {
		if err := ValidateName(name); err == nil {
			t.Errorf("ValidateName(%q) = nil, want error", name)
		}
	}
}

// TestRegisterLintPanics pins that a bad name dies at registration, not
// at scrape time.
func TestRegisterLintPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("registering an unlintable name did not panic")
		}
	}()
	r.Counter("bqs_server_requests")
}

// TestOddLabelsPanics pins the misuse guard on label pairs.
func TestOddLabelsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("odd label list did not panic")
		}
	}()
	r.Counter("bqs_test_things_total", "keyonly")
}

// TestConcurrentExactCounts hammers one counter, one gauge and one
// histogram from 64 goroutines and asserts the totals are exact — run
// under -race this is the data-race certification of the whole
// instrument fast path.
func TestConcurrentExactCounts(t *testing.T) {
	const goroutines = 64
	const perG = 5000
	r := NewRegistry()
	c := r.Counter("bqs_test_ops_total")
	g := r.Gauge("bqs_test_level_count")
	h := r.Histogram("bqs_test_batch_ops", SizeBuckets)

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(0.5)
				// Observed values are small integers so the CAS-summed
				// float64 total is exact, not approximately equal.
				h.Observe(float64(1 + (id+j)%8))
			}
		}(i)
	}
	// Concurrent readers assert invariants mid-hammer: counts never
	// decrease and quantiles stay ordered.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastCount int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := h.Count()
				if n < lastCount {
					t.Error("histogram count went backwards")
					return
				}
				lastCount = n
				p50, p95, p99 := h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
				if p50 > p95 || p95 > p99 {
					t.Errorf("quantiles out of order: p50=%v p95=%v p99=%v", p50, p95, p99)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	const total = goroutines * perG
	if c.Value() != total {
		t.Fatalf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != total*0.5 {
		t.Fatalf("gauge = %v, want %v", g.Value(), total*0.5)
	}
	if h.Count() != total {
		t.Fatalf("histogram count = %d, want %d", h.Count(), total)
	}
	var wantSum float64
	for i := 0; i < goroutines; i++ {
		for j := 0; j < perG; j++ {
			wantSum += float64(1 + (i+j)%8)
		}
	}
	if h.Sum() != wantSum {
		t.Fatalf("histogram sum = %v, want %v (CAS sum must be exact on integers)", h.Sum(), wantSum)
	}
}

// TestConcurrentRegistration hammers get-or-create from 64 goroutines:
// all must land on the same instrument, and the count stays exact.
func TestConcurrentRegistration(t *testing.T) {
	const goroutines = 64
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("bqs_test_shared_total", "side", "a").Inc()
			}
		}()
	}
	wg.Wait()
	if v, _ := r.Value("bqs_test_shared_total", "side", "a"); v != goroutines*500 {
		t.Fatalf("shared counter = %v, want %d", v, goroutines*500)
	}
}

// TestEventLog pins ring semantics: capacity bounds retention, eviction
// is oldest-first, Total counts evicted entries.
func TestEventLog(t *testing.T) {
	l := NewEventLog(3)
	for _, msg := range []string{"a", "b", "c", "d", "e"} {
		l.Add(msg)
	}
	if l.Total() != 5 {
		t.Fatalf("Total = %d, want 5", l.Total())
	}
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot len = %d, want 3", len(snap))
	}
	for i, want := range []string{"c", "d", "e"} {
		if snap[i].Msg != want {
			t.Fatalf("Snapshot[%d] = %q, want %q", i, snap[i].Msg, want)
		}
		if snap[i].At.IsZero() {
			t.Fatal("event has no timestamp")
		}
	}

	r := NewRegistry()
	r.Eventf("flip server %d", 3)
	ev := r.Events()
	if len(ev) != 1 || ev[0].Msg != "flip server 3" {
		t.Fatalf("registry events = %v", ev)
	}
}

// TestGaugeSetNaN pins that gauges carry NaN (the strategy-load gauge
// under uniform selection) without poisoning anything else.
func TestGaugeSetNaN(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("bqs_test_strategy_load")
	g.Set(math.NaN())
	if v, ok := r.Value("bqs_test_strategy_load"); !ok || !math.IsNaN(v) {
		t.Fatalf("Value = %v, %v; want NaN, true", v, ok)
	}
}
