package obs

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestRepoMetricNamesLint sweeps every Go source file in the repository
// for quoted bqs_* identifiers and runs each through ValidateName. The
// Registry already panics on a bad name at registration time, but only
// when that code path runs; this sweep catches a typo'd series in a
// branch no test exercises — e.g. a miss counter behind a rare error.
func TestRepoMetricNamesLint(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	// A quoted metric name: "bqs_..." with at least two more tokens.
	// Names built from parts (e.g. the sweep skips formatted strings) are
	// covered by the registration-time panic instead.
	pat := regexp.MustCompile(`"(bqs_[a-z0-9_]+)"`)
	checked := map[string]bool{}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		// Test files are excluded: lint tables (this package's) quote
		// deliberately invalid names, and every production series is
		// registered from a non-test file.
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range pat.FindAllStringSubmatch(string(src), -1) {
			name := m[1]
			if checked[name] {
				continue
			}
			checked[name] = true
			if err := ValidateName(name); err != nil {
				rel, _ := filepath.Rel(root, path)
				t.Errorf("%s: %v", rel, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The sweep must actually be seeing the instrumented layers, or a
	// future refactor that breaks the walk would pass vacuously.
	for _, want := range []string{
		"bqs_server_load",
		"bqs_quorum_probe_seconds",
		"bqs_store_fsync_batch_size",
		"bqs_system_crash_epochs_total",
		"bqs_wire_frames_total",
	} {
		if !checked[want] {
			t.Errorf("sweep did not find %s — walk broken or series renamed", want)
		}
	}
}
