package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4), sorted by name then label set, with
// one # TYPE line per metric name. Safe on a nil Registry (writes
// nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	lastName := ""
	for _, s := range r.snapshot() {
		if s.name != lastName {
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, s.kind)
			lastName = s.name
		}
		if s.kind == kindHistogram {
			writeHistogram(&b, s)
			continue
		}
		b.WriteString(s.name)
		b.WriteString(s.labels)
		b.WriteByte(' ')
		b.WriteString(formatFloat(s.value()))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series as cumulative _bucket
// lines plus _sum and _count, folding the le label into any series
// labels.
func writeHistogram(b *strings.Builder, s *series) {
	bounds, cums := s.hist.buckets()
	for i, cum := range cums {
		le := "+Inf"
		if i < len(bounds) {
			le = formatFloat(bounds[i])
		}
		b.WriteString(s.name)
		b.WriteString("_bucket")
		if s.labels == "" {
			fmt.Fprintf(b, `{le="%s"}`, le)
		} else {
			b.WriteString(s.labels[:len(s.labels)-1]) // open the existing block
			fmt.Fprintf(b, `,le="%s"}`, le)
		}
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(cum, 10))
		b.WriteByte('\n')
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", s.name, s.labels, formatFloat(s.hist.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", s.name, s.labels, s.hist.Count())
}

// WriteJSON renders the registry as a single JSON object — the expvar
// flavor of the same data. Scalar series map to numbers keyed by
// name{labels}; histograms map to {count, sum, p50, p95, p99}. Safe on a
// nil Registry (writes "{}").
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]any)
	if r != nil {
		for _, s := range r.snapshot() {
			key := s.name + s.labels
			if s.kind == kindHistogram {
				out[key] = map[string]any{
					"count": s.hist.Count(),
					"sum":   s.hist.Sum(),
					"p50":   s.hist.Quantile(0.50),
					"p95":   s.hist.Quantile(0.95),
					"p99":   s.hist.Quantile(0.99),
				}
				continue
			}
			out[key] = jsonNumber(s.value())
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// jsonNumber keeps NaN/Inf gauges (e.g. strategy load under the uniform
// strategy) encodable: encoding/json rejects them as numbers.
func jsonNumber(v float64) any {
	if v != v || v > 1e308 || v < -1e308 {
		return formatFloat(v)
	}
	return v
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
