// Package obs is the repo's telemetry plane: allocation-conscious
// instruments (atomic counters and gauges, fixed-bucket histograms, a
// ring-buffer event log) behind a Registry that renders Prometheus text,
// expvar-style JSON, and — via Serve — a live HTTP endpoint with pprof.
//
// The design optimizes for two things the hot paths demand:
//
//   - Nil safety. Every instrument method is a no-op on a nil receiver,
//     and every Registry method is safe on a nil *Registry (returning nil
//     instruments). A layer built without telemetry holds nil pointers and
//     pays one predictable branch per call — the "Noop registry" the
//     benchmarks pin at zero allocations.
//   - Zero allocations on the fast path. Counter.Add, Gauge.Set and
//     Histogram.Observe never allocate; rendering and quantile extraction
//     are cold paths and may.
//
// Metric names are linted at registration time: they must follow the
// bqs_<layer>_<name>_<unit> convention (see ValidateName), so a typo'd or
// unconventional series panics in the first test that registers it rather
// than shipping an unscrapable name.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. All methods are no-ops on
// a nil receiver, so code paths instrumented against a Noop registry pay
// only the nil check.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count, or 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value. All methods are no-ops on a
// nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta via a compare-and-swap loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge value, or 0 on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

type seriesKind int

const (
	kindCounter seriesKind = iota
	kindGauge
	kindGaugeFunc
	kindCounterFunc
	kindHistogram
)

func (k seriesKind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one registered time series: a metric name plus a rendered
// label set, bound to exactly one instrument.
type series struct {
	name   string
	labels string // rendered `{k="v",...}`, or "" when unlabeled
	kind   seriesKind

	counter *Counter
	gauge   *Gauge
	gfn     func() float64
	cfn     func() int64
	hist    *Histogram
}

// value returns the series' scalar value (histograms report their count).
func (s *series) value() float64 {
	switch s.kind {
	case kindCounter:
		return float64(s.counter.Value())
	case kindGauge:
		return s.gauge.Value()
	case kindGaugeFunc:
		return s.gfn()
	case kindCounterFunc:
		return float64(s.cfn())
	default:
		return float64(s.hist.Count())
	}
}

// Registry is a set of named instruments plus an event log. The zero
// value of *Registry — nil — is the Noop registry: registration returns
// nil instruments whose methods are no-ops, and exposition renders
// nothing. Registration is get-or-create: asking twice for the same name
// and label set returns the same instrument, which is how layers with
// many instances (several Disk stores, several clients) share one series.
type Registry struct {
	mu     sync.Mutex
	byKey  map[string]*series
	order  []*series
	events *EventLog
}

// NewRegistry returns an empty Registry with a 256-event ring log.
func NewRegistry() *Registry {
	return &Registry{
		byKey:  make(map[string]*series),
		events: NewEventLog(256),
	}
}

// register finds or creates the series for (name, labels); build is
// called under the lock to attach the instrument to a fresh series.
func (r *Registry) register(name string, kind seriesKind, labels []string, build func(*series)) *series {
	if err := ValidateName(name); err != nil {
		panic(fmt.Sprintf("obs: %v", err))
	}
	lbl := renderLabels(labels)
	key := name + lbl
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byKey[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: series %s re-registered as %s (was %s)", key, kind, s.kind))
		}
		return s
	}
	s := &series{name: name, labels: lbl, kind: kind}
	build(s)
	r.byKey[key] = s
	r.order = append(r.order, s)
	return s
}

// Counter returns the counter for name and the optional key/value label
// pairs, creating it on first use. Returns nil on a nil Registry.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, kindCounter, labels, func(s *series) { s.counter = &Counter{} }).counter
}

// Gauge returns the gauge for name and the optional key/value label
// pairs, creating it on first use. Returns nil on a nil Registry.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, kindGauge, labels, func(s *series) { s.gauge = &Gauge{} }).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — the natural fit for values another layer already maintains
// (per-server access counters, live fault counts). Re-registering the
// same series replaces fn. No-op on a nil Registry.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	s := r.register(name, kindGaugeFunc, labels, func(s *series) {})
	r.mu.Lock()
	s.gfn = fn
	r.mu.Unlock()
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time; fn must be monotonic (typically an atomic the hot path already
// bumps). Re-registering the same series replaces fn. No-op on a nil
// Registry.
func (r *Registry) CounterFunc(name string, fn func() int64, labels ...string) {
	if r == nil {
		return
	}
	s := r.register(name, kindCounterFunc, labels, func(s *series) {})
	r.mu.Lock()
	s.cfn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram for name and the optional key/value
// label pairs, creating it with the given bucket bounds on first use
// (later calls return the existing histogram regardless of bounds).
// Returns nil on a nil Registry.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, kindHistogram, labels, func(s *series) { s.hist = NewHistogram(bounds) }).hist
}

// Value returns the current scalar value of the series with the given
// name and label pairs (histograms report their observation count), and
// whether that series exists. Safe on a nil Registry.
func (r *Registry) Value(name string, labels ...string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	key := name + renderLabels(labels)
	r.mu.Lock()
	s, ok := r.byKey[key]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	return s.value(), true
}

// Eventf appends a formatted entry to the registry's ring-buffer event
// log. Safe on a nil Registry.
func (r *Registry) Eventf(format string, args ...any) {
	if r == nil {
		return
	}
	r.events.Addf(format, args...)
}

// Events returns the retained event log entries, oldest first. Safe on a
// nil Registry.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events.Snapshot()
}

// snapshot returns the registered series sorted by name then label set.
func (r *Registry) snapshot() []*series {
	r.mu.Lock()
	out := make([]*series, len(r.order))
	copy(out, r.order)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// renderLabels renders key/value pairs as a Prometheus label block,
// preserving caller order: {k="v",k2="v2"}. Empty input renders "".
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: odd label list; want key/value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(labels[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// allowedUnits is the closed set of terminal name tokens: the unit (or
// unit-like kind) every metric name must end in.
var allowedUnits = map[string]bool{
	"total":   true, // monotonic counters
	"seconds": true, // durations (histograms or gauges)
	"bytes":   true,
	"size":    true, // dimensionless size distributions (histograms)
	"ops":     true, // operation-count distributions (histograms)
	"load":    true, // paper quantities: Definition 3.8 load values
	"bound":   true, // analytic bounds (Theorem 4.1)
	"rate":    true, // dimensionless rates in [0, 1]
	"ratio":   true,
	"count":   true, // instantaneous counts (gauges)
	"servers": true, // universe subset sizes
	"epoch":   true, // configuration epoch number (reconfig control plane)
	"phase":   true, // state-machine ordinal (reconfig.Phase)
}

// ValidateName checks the bqs_<layer>_<name>_<unit> convention: the name
// is lowercase [a-z0-9_], starts with "bqs_", has at least three "_"
// separated tokens, and its final token is a recognized unit. Registration
// panics on violation — this is the registration-time metric-name lint.
func ValidateName(name string) error {
	toks := strings.Split(name, "_")
	if len(toks) < 3 || toks[0] != "bqs" {
		return fmt.Errorf("metric %q: want bqs_<layer>_<name>_<unit>", name)
	}
	for _, t := range toks {
		if t == "" {
			return fmt.Errorf("metric %q: empty name token", name)
		}
		for _, c := range t {
			if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
				return fmt.Errorf("metric %q: token %q is not lowercase alphanumeric", name, t)
			}
		}
	}
	if unit := toks[len(toks)-1]; !allowedUnits[unit] {
		return fmt.Errorf("metric %q: unknown unit suffix %q", name, unit)
	}
	return nil
}
