package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("bqs_test_frames_total", "dir", "in").Add(3)
	r.Counter("bqs_test_frames_total", "dir", "out").Add(5)
	r.Gauge("bqs_test_strategy_load").Set(math.NaN())
	r.GaugeFunc("bqs_test_live_count", func() float64 { return 2 })
	h := r.Histogram("bqs_test_batch_ops", []float64{1, 2, 4}, "side", "client")
	h.Observe(1)
	h.Observe(3)
	r.Eventf("something happened")
	return r
}

// TestWritePrometheus pins the exposition format the CI smoke greps:
// TYPE lines, labeled samples, histogram buckets with the le label
// folded into the existing label block, and _sum/_count companions.
func TestWritePrometheus(t *testing.T) {
	var sb strings.Builder
	if err := buildTestRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE bqs_test_frames_total counter\n",
		`bqs_test_frames_total{dir="in"} 3` + "\n",
		`bqs_test_frames_total{dir="out"} 5` + "\n",
		"# TYPE bqs_test_strategy_load gauge\n",
		"bqs_test_strategy_load NaN\n",
		"bqs_test_live_count 2\n",
		"# TYPE bqs_test_batch_ops histogram\n",
		`bqs_test_batch_ops_bucket{side="client",le="1"} 1` + "\n",
		`bqs_test_batch_ops_bucket{side="client",le="4"} 2` + "\n",
		`bqs_test_batch_ops_bucket{side="client",le="+Inf"} 2` + "\n",
		`bqs_test_batch_ops_sum{side="client"} 4` + "\n",
		`bqs_test_batch_ops_count{side="client"} 2` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// One TYPE line per metric name, not per series.
	if strings.Count(text, "# TYPE bqs_test_frames_total") != 1 {
		t.Errorf("duplicate TYPE lines:\n%s", text)
	}
}

// TestWriteJSON pins the /vars flavor: scalars as numbers, NaN as a
// string (encoding/json rejects it as a number), histograms as
// {count, sum, p50, p95, p99}.
func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	if err := buildTestRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, sb.String())
	}
	if v, ok := out[`bqs_test_frames_total{dir="in"}`].(float64); !ok || v != 3 {
		t.Fatalf("counter in JSON = %v", out[`bqs_test_frames_total{dir="in"}`])
	}
	if v, ok := out["bqs_test_strategy_load"].(string); !ok || v != "NaN" {
		t.Fatalf("NaN gauge in JSON = %v", out["bqs_test_strategy_load"])
	}
	hist, ok := out[`bqs_test_batch_ops{side="client"}`].(map[string]any)
	if !ok {
		t.Fatalf("histogram missing from JSON: %v", out)
	}
	if hist["count"].(float64) != 2 || hist["p99"].(float64) != 4 {
		t.Fatalf("histogram JSON = %v", hist)
	}
}

// TestHandler drives every endpoint through the mux.
func TestHandler(t *testing.T) {
	srv := httptest.NewServer(Handler(buildTestRegistry()))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "bqs_test_frames_total") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	body, _ = get("/vars")
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/vars not JSON: %v", err)
	}

	body, _ = get("/events")
	if !strings.Contains(body, "something happened") {
		t.Fatalf("/events body: %q", body)
	}

	body, _ = get("/debug/vars")
	var dv map[string]any
	if err := json.Unmarshal([]byte(body), &dv); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, body)
	}
	if _, ok := dv["bqs"]; !ok {
		t.Fatalf("/debug/vars missing bqs key: %v", dv)
	}
	if _, ok := dv["memstats"]; !ok {
		t.Fatalf("/debug/vars missing expvar memstats: %v", dv)
	}

	body, _ = get("/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index: %q", body)
	}

	body, _ = get("/")
	if !strings.Contains(body, "/metrics") {
		t.Fatalf("index page: %q", body)
	}

	if resp, err := http.Get(srv.URL + "/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET /nope: %s", resp.Status)
		}
	}
}

// TestServe covers the bind-and-serve wrapper the binaries use under
// -metrics-addr.
func TestServe(t *testing.T) {
	s, err := Serve("127.0.0.1:0", buildTestRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Addr() == "" {
		t.Fatal("no bound address")
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "bqs_test_frames_total") {
		t.Fatalf("served /metrics: %q", body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Fatal("endpoint still serving after Close")
	}
}
