package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the telemetry HTTP handler for r:
//
//	/metrics      Prometheus text exposition
//	/vars         registry as JSON (expvar flavor)
//	/events       the ring-buffer event log, oldest first
//	/debug/vars   standard expvar output (cmdline, memstats) + "bqs" key
//	/debug/pprof  net/http/pprof profiling endpoints
//
// The handler is safe with a nil Registry (endpoints render empty data).
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, ev := range r.Events() {
			fmt.Fprintf(w, "%s %s\n", ev.At.Format(time.RFC3339Nano), ev.Msg)
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		// Standard expvar members (cmdline, memstats) plus this registry
		// under "bqs". Rendered by hand because expvar.Handler cannot be
		// extended per-registry without global Publish state.
		fmt.Fprintf(w, "{\n")
		expvar.Do(func(kv expvar.KeyValue) {
			fmt.Fprintf(w, "%q: %s,\n", kv.Key, kv.Value)
		})
		fmt.Fprintf(w, "%q: ", "bqs")
		r.WriteJSON(w)
		fmt.Fprintf(w, "}\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "bqs telemetry\n\n/metrics\n/vars\n/events\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Server is a live telemetry endpoint started by Serve.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// Serve starts an HTTP server on addr (use ":0" or "127.0.0.1:0" for an
// ephemeral port) exposing Handler(r). It returns once the listener is
// bound; the accept loop runs in a background goroutine until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(lis)
	return &Server{lis: lis, srv: srv}, nil
}

// Addr returns the bound listen address, e.g. "127.0.0.1:9100".
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
