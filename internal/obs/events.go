package obs

import (
	"fmt"
	"sync"
	"time"
)

// Event is one entry in the ring-buffer event log: a timestamped,
// human-readable line recording a rare state transition (fault flip,
// rehabilitation, no-live-quorum epoch, recovery).
type Event struct {
	At  time.Time
	Msg string
}

// EventLog is a fixed-capacity ring buffer of Events. Writes are
// mutex-guarded — events are rare-path by design, so contention is not a
// concern the way it is for counters. All methods are no-ops on a nil
// receiver.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	next  int   // index of the slot the next Add writes
	total int64 // lifetime count, for the dropped-events arithmetic
}

// NewEventLog returns a ring buffer retaining the last capacity events.
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{buf: make([]Event, 0, capacity)}
}

// Add appends one event, evicting the oldest when full.
func (l *EventLog) Add(msg string) {
	if l == nil {
		return
	}
	ev := Event{At: time.Now(), Msg: msg}
	l.mu.Lock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, ev)
	} else {
		l.buf[l.next] = ev
	}
	l.next = (l.next + 1) % cap(l.buf)
	l.total++
	l.mu.Unlock()
}

// Addf formats and appends one event.
func (l *EventLog) Addf(format string, args ...any) {
	if l == nil {
		return
	}
	l.Add(fmt.Sprintf(format, args...))
}

// Total returns the lifetime number of events added, including evicted
// ones.
func (l *EventLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained events, oldest first.
func (l *EventLog) Snapshot() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	if len(l.buf) == cap(l.buf) {
		out = append(out, l.buf[l.next:]...)
		out = append(out, l.buf[:l.next]...)
	} else {
		out = append(out, l.buf...)
	}
	return out
}
