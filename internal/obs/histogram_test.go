package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestHistogramBuckets pins the boundary convention: bucket i counts
// v <= bounds[i] (Prometheus le-semantics), with an overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	bounds, cums := h.buckets()
	if len(bounds) != 3 || len(cums) != 4 {
		t.Fatalf("buckets: %v, %v", bounds, cums)
	}
	// le=1: {0.5, 1}; le=2: +{1.5, 2}; le=4: +{3, 4}; +Inf: +{100}.
	want := []int64{2, 4, 6, 7}
	for i, w := range want {
		if cums[i] != w {
			t.Fatalf("cums = %v, want %v", cums, want)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("Count = %d, want 7", h.Count())
	}
	if h.Sum() != 0.5+1+1.5+2+3+4+100 {
		t.Fatalf("Sum = %v", h.Sum())
	}
}

// TestQuantileAgainstExact is the quantile-agreement regression test: on
// a known distribution the histogram quantile must land within one
// bucket's resolution of the exact order-statistic quantile. With
// DurationBuckets (2^(1/4) growth) one bucket is ≤19% relative error.
func TestQuantileAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram(DurationBuckets)
	const n = 20000
	samples := make([]float64, n)
	for i := range samples {
		// Log-uniform over [100µs, 100ms] — latency-shaped, spanning many
		// buckets.
		v := 1e-4 * math.Pow(1000, rng.Float64())
		samples[i] = v
		h.Observe(v)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	exact := func(q float64) float64 {
		return sorted[int(math.Ceil(q*float64(n)))-1]
	}
	step := math.Pow(2, 0.25) // one bucket's growth factor
	for _, q := range []float64{0.50, 0.95, 0.99} {
		got, want := h.Quantile(q), exact(q)
		// The histogram reports the bucket's upper bound, so got >= want
		// always, and got < want * step (one bucket above).
		if got < want || got > want*step*1.0001 {
			t.Errorf("q=%v: histogram %v vs exact %v (allowed [%v, %v])",
				q, got, want, want, want*step)
		}
	}
}

// TestQuantileEdges pins the degenerate cases.
func TestQuantileEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	h.Observe(0.5)
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("q=0 with one sample in bucket le=1: got %v, want 1", q)
	}
	if q := h.Quantile(1); q != 1 {
		t.Fatalf("q=1: got %v, want 1", q)
	}
	// Overflow observations clamp to the last finite bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(50)
	if q := h2.Quantile(0.99); q != 2 {
		t.Fatalf("overflow quantile = %v, want clamp to 2", q)
	}
}

// TestQuantileOfMerged pins the merged read+write quantile used by
// harness.Counters.LatencyQuantile: merging must weight by count, skip
// nil histograms, and reject mismatched layouts.
func TestQuantileOfMerged(t *testing.T) {
	a := NewHistogram([]float64{1, 2, 4})
	b := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 90; i++ {
		a.Observe(0.5) // bucket le=1
	}
	for i := 0; i < 10; i++ {
		b.Observe(3) // bucket le=4
	}
	if q := QuantileOf(0.5, a, b); q != 1 {
		t.Fatalf("merged p50 = %v, want 1", q)
	}
	if q := QuantileOf(0.95, a, b); q != 4 {
		t.Fatalf("merged p95 = %v, want 4", q)
	}
	if q := QuantileOf(0.5, nil, a, nil); q != 1 {
		t.Fatalf("nil-skipping p50 = %v, want 1", q)
	}
	if q := QuantileOf(0.5); q != 0 {
		t.Fatalf("no histograms: %v, want 0", q)
	}
	if d := DurationQuantile(0.5, nil); d != 0 {
		t.Fatalf("DurationQuantile over nil = %v", d)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("mismatched layouts did not panic")
		}
	}()
	QuantileOf(0.5, a, NewHistogram([]float64{1}))
}

// TestObserveDuration pins the seconds conversion end to end.
func TestObserveDuration(t *testing.T) {
	h := NewHistogram(DurationBuckets)
	h.ObserveDuration(10 * time.Millisecond)
	got := DurationQuantile(0.5, h)
	if got < 10*time.Millisecond || got > 12*time.Millisecond {
		t.Fatalf("10ms observation reads back as %v", got)
	}
}

// TestExpBuckets pins the generator the default layouts come from.
func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 5)
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	if len(DurationBuckets) != 108 || len(SizeBuckets) != 13 {
		t.Fatalf("default layouts: %d duration, %d size buckets",
			len(DurationBuckets), len(SizeBuckets))
	}
	if SizeBuckets[len(SizeBuckets)-1] != 4096 {
		t.Fatalf("SizeBuckets top = %v, want 4096", SizeBuckets[len(SizeBuckets)-1])
	}
}
