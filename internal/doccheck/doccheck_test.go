package doccheck

import (
	"os"
	"path/filepath"
	"testing"
)

func TestMissingFindsUndocumentedExports(t *testing.T) {
	dir := t.TempDir()
	src := `package sample

// Documented is fine.
type Documented struct{}

type Undocumented struct{}

// DocumentedFunc is fine.
func DocumentedFunc() {}

func UndocumentedFunc() {}

func unexported() {}

// Method is fine.
func (Documented) Method() {}

func (Documented) Bare() {}

// Grouped constants share the group doc.
const (
	GroupedA = 1
	GroupedB = 2
)

const Loner = 3

var (
	WithDoc = 1 // a trailing comment counts
	Orphan  = 2
)
`
	if err := os.WriteFile(filepath.Join(dir, "sample.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Missing(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Documented.Bare", "Loner", "Orphan", "Undocumented", "UndocumentedFunc"}
	if len(got) != len(want) {
		t.Fatalf("missing = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("missing = %v, want %v", got, want)
		}
	}
}

func TestMissingSelf(t *testing.T) {
	missing, err := Missing(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("doccheck's own exported API is undocumented: %v", missing)
	}
}
