// Package doccheck enforces the repo's godoc discipline mechanically: a
// revive-style comment check that every exported top-level symbol of a
// package carries a doc comment. The sim and wire packages run it from
// their test suites, so an exported API without its paper anchor or
// contract documented fails CI rather than rotting silently.
package doccheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"sort"
	"strings"
)

// Missing parses the non-test Go files of the package in dir and returns
// the names of exported top-level declarations (functions, methods with
// exported receivers, types, and const/var specs) that have no doc
// comment, sorted for stable output. A grouped const/var declaration is
// considered documented when the group itself has a doc comment.
func Missing(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				missing = append(missing, missingInDecl(decl)...)
			}
		}
	}
	sort.Strings(missing)
	return missing, nil
}

// missingInDecl reports the undocumented exported names of one top-level
// declaration.
func missingInDecl(decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		if d.Recv != nil {
			recv, exported := receiverName(d.Recv)
			if !exported {
				return nil // method on an unexported type: internal API
			}
			return []string{fmt.Sprintf("%s.%s", recv, d.Name.Name)}
		}
		return []string{d.Name.Name}
	case *ast.GenDecl:
		if d.Tok == token.IMPORT {
			return nil
		}
		var missing []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					missing = append(missing, s.Name.Name)
				}
			case *ast.ValueSpec:
				// A documented group covers its specs; otherwise each
				// exported spec needs its own doc or trailing comment.
				if d.Doc != nil || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						missing = append(missing, name.Name)
					}
				}
			}
		}
		return missing
	}
	return nil
}

// receiverName extracts the receiver's type name and whether it is
// exported.
func receiverName(recv *ast.FieldList) (string, bool) {
	if len(recv.List) == 0 {
		return "", false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name, tt.IsExported()
		default:
			return "", false
		}
	}
}
