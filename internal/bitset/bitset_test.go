package bitset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var s Set
	if !s.Empty() || s.Count() != 0 {
		t.Fatalf("zero value should be empty, got count %d", s.Count())
	}
	s.Add(130)
	if !s.Contains(130) || s.Count() != 1 {
		t.Fatalf("after Add(130): contains=%v count=%d", s.Contains(130), s.Count())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(200)
	elems := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, e := range elems {
		s.Add(e)
	}
	for _, e := range elems {
		if !s.Contains(e) {
			t.Errorf("Contains(%d) = false, want true", e)
		}
	}
	if s.Count() != len(elems) {
		t.Fatalf("Count = %d, want %d", s.Count(), len(elems))
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Contains(64) after Remove = true")
	}
	if s.Count() != len(elems)-1 {
		t.Fatalf("Count after remove = %d, want %d", s.Count(), len(elems)-1)
	}
}

func TestNegativeIgnored(t *testing.T) {
	var s Set
	s.Add(-1)
	s.Remove(-5)
	if !s.Empty() {
		t.Fatal("negative Add should be ignored")
	}
	if s.Contains(-1) {
		t.Fatal("Contains(-1) should be false")
	}
}

func TestElementsSorted(t *testing.T) {
	s := FromSlice([]int{5, 1, 200, 64, 63})
	got := s.Elements()
	want := []int{1, 5, 63, 64, 200}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Elements = %v, want %v", got, want)
	}
}

func TestFromRange(t *testing.T) {
	s := FromRange(3, 7)
	if got := s.Elements(); !reflect.DeepEqual(got, []int{3, 4, 5, 6}) {
		t.Fatalf("FromRange(3,7) = %v", got)
	}
	if !FromRange(5, 5).Empty() {
		t.Fatal("FromRange(5,5) should be empty")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromSlice([]int{1, 2, 3, 64, 100})
	b := FromSlice([]int{3, 4, 64, 200})

	if got := a.Union(b).Elements(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 64, 100, 200}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b).Elements(); !reflect.DeepEqual(got, []int{3, 64}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Difference(b).Elements(); !reflect.DeepEqual(got, []int{1, 2, 100}) {
		t.Errorf("Difference = %v", got)
	}
	if got := a.IntersectionCount(b); got != 2 {
		t.Errorf("IntersectionCount = %d, want 2", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false, want true")
	}
	if a.Intersects(FromSlice([]int{7, 8})) {
		t.Error("Intersects disjoint = true, want false")
	}
}

func TestSubsetEqualDifferentLengths(t *testing.T) {
	short := FromSlice([]int{1, 2})
	long := FromSlice([]int{1, 2, 300})
	long.Remove(300) // long still has more backing words than short

	if !short.Equal(long) || !long.Equal(short) {
		t.Error("Equal should ignore trailing zero words")
	}
	if !short.SubsetOf(long) || !long.SubsetOf(short) {
		t.Error("SubsetOf should ignore trailing zero words")
	}
	long.Add(300)
	if short.Equal(long) {
		t.Error("Equal after re-adding 300 should be false")
	}
	if !short.SubsetOf(long) {
		t.Error("short ⊆ long should hold")
	}
	if long.SubsetOf(short) {
		t.Error("long ⊆ short should not hold")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromSlice([]int{1, 2, 3})
	b := a.Clone()
	b.Add(99)
	if a.Contains(99) {
		t.Fatal("Clone is not independent")
	}
}

func TestMin(t *testing.T) {
	if got := (Set{}).Min(); got != -1 {
		t.Errorf("Min of empty = %d, want -1", got)
	}
	if got := FromSlice([]int{100, 7, 64}).Min(); got != 7 {
		t.Errorf("Min = %d, want 7", got)
	}
}

func TestString(t *testing.T) {
	if got := FromSlice([]int{2, 0}).String(); got != "{0, 2}" {
		t.Errorf("String = %q, want {0, 2}", got)
	}
	if got := (Set{}).String(); got != "{}" {
		t.Errorf("String empty = %q, want {}", got)
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := FromRange(0, 100)
	seen := 0
	s.Range(func(i int) bool {
		seen++
		return seen < 5
	})
	if seen != 5 {
		t.Fatalf("Range visited %d elements, want 5", seen)
	}
}

// randomSet draws a pseudo-random set over [0, 192) from raw generator state.
func randomSet(r *rand.Rand) Set {
	s := New(192)
	for i := 0; i < 192; i++ {
		if r.Intn(3) == 0 {
			s.Add(i)
		}
	}
	return s
}

func TestQuickSetLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}

	// |A ∩ B| + |A ∪ B| = |A| + |B| (inclusion–exclusion).
	inclExcl := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		return a.IntersectionCount(b)+a.Union(b).Count() == a.Count()+b.Count()
	}
	if err := quick.Check(inclExcl, cfg); err != nil {
		t.Errorf("inclusion–exclusion: %v", err)
	}

	// A \ B, A ∩ B partition A.
	partition := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		diff, inter := a.Difference(b), a.Intersect(b)
		return diff.Count()+inter.Count() == a.Count() &&
			!diff.Intersects(inter) &&
			diff.Union(inter).Equal(a)
	}
	if err := quick.Check(partition, cfg); err != nil {
		t.Errorf("partition law: %v", err)
	}

	// De Morgan within a fixed universe: U \ (A ∪ B) = (U \ A) ∩ (U \ B).
	deMorgan := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		u := FromRange(0, 192)
		lhs := u.Difference(a.Union(b))
		rhs := u.Difference(a).Intersect(u.Difference(b))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(deMorgan, cfg); err != nil {
		t.Errorf("De Morgan: %v", err)
	}

	// Elements round-trips through FromSlice and stays sorted.
	roundTrip := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r)
		elems := a.Elements()
		if !sort.IntsAreSorted(elems) {
			return false
		}
		return FromSlice(elems).Equal(a)
	}
	if err := quick.Check(roundTrip, cfg); err != nil {
		t.Errorf("round trip: %v", err)
	}
}
