// Package bitset provides a compact set of small non-negative integers,
// used throughout the library to represent quorums (subsets of the server
// universe U = {0, …, n−1}). All quorum measures reduce to intersection,
// union and popcount over these sets, so the representation is packed
// 64-bit words with branch-free counting.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a set of non-negative integers backed by packed 64-bit words.
// The zero value is an empty set ready to use. Sets grow automatically on
// Add; all binary operations accept operands of different lengths.
type Set struct {
	words []uint64
}

// New returns an empty set with capacity for elements in [0, n).
func New(n int) Set {
	if n <= 0 {
		return Set{}
	}
	return Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromSlice returns a set containing exactly the given elements.
func FromSlice(elems []int) Set {
	s := Set{}
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// FromRange returns the set {lo, lo+1, …, hi−1}.
func FromRange(lo, hi int) Set {
	s := New(hi)
	for i := lo; i < hi; i++ {
		s.Add(i)
	}
	return s
}

func (s *Set) grow(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Add inserts i into the set. Negative values are ignored.
func (s *Set) Add(i int) {
	if i < 0 {
		return
	}
	w := i / wordBits
	s.grow(w)
	s.words[w] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set if present.
func (s *Set) Remove(i int) {
	if i < 0 {
		return
	}
	w := i / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << uint(i%wordBits)
	}
}

// Contains reports whether i is in the set.
func (s Set) Contains(i int) bool {
	if i < 0 {
		return false
	}
	w := i / wordBits
	return w < len(s.words) && s.words[w]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	if len(s.words) == 0 {
		return Set{}
	}
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w}
}

// Equal reports whether s and t contain the same elements.
func (s Set) Equal(t Set) bool {
	long, short := s.words, t.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// UnionWith adds every element of t to s.
func (s *Set) UnionWith(t Set) {
	s.grow(len(t.words) - 1)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// Union returns a new set s ∪ t.
func (s Set) Union(t Set) Set {
	u := s.Clone()
	u.UnionWith(t)
	return u
}

// IntersectWith removes from s every element not in t.
func (s *Set) IntersectWith(t Set) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &= t.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// Intersect returns a new set s ∩ t.
func (s Set) Intersect(t Set) Set {
	u := s.Clone()
	u.IntersectWith(t)
	return u
}

// DifferenceWith removes every element of t from s.
func (s *Set) DifferenceWith(t Set) {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= t.words[i]
	}
}

// Difference returns a new set s \ t.
func (s Set) Difference(t Set) Set {
	u := s.Clone()
	u.DifferenceWith(t)
	return u
}

// IntersectionCount returns |s ∩ t| without allocating.
func (s Set) IntersectionCount(t Set) int {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return c
}

// Intersects reports whether s ∩ t is non-empty.
func (s Set) Intersects(t Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every element of s is in t.
func (s Set) SubsetOf(t Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Elements returns the members of the set in increasing order.
func (s Set) Elements() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// Range calls fn for each element in increasing order until fn returns
// false or the elements are exhausted.
func (s Set) Range(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Min returns the smallest element, or -1 if the set is empty.
func (s Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// String renders the set as "{a, b, c}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.Range(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(strconv.Itoa(i))
		return true
	})
	b.WriteByte('}')
	return b.String()
}
