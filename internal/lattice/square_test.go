package lattice

import (
	"math/rand"
	"testing"

	"bqs/internal/bitset"
)

func TestSquareEdgeValidation(t *testing.T) {
	if _, err := NewSquareEdge(1); err == nil {
		t.Error("d=1 should fail")
	}
	g, err := NewSquareEdge(4)
	if err != nil || g.Side() != 4 || g.NumEdges() != 24 {
		t.Fatalf("NewSquareEdge(4) = %v, %v", g, err)
	}
}

func TestSquareEdgeIDsDisjoint(t *testing.T) {
	g, _ := NewSquareEdge(5)
	seen := make(map[int]bool)
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			id := g.HEdge(i, j)
			if id < 0 || id >= g.NumEdges() || seen[id] {
				t.Fatalf("H(%d,%d) id %d invalid/duplicate", i, j, id)
			}
			seen[id] = true
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			id := g.VEdge(i, j)
			if id < 0 || id >= g.NumEdges() || seen[id] {
				t.Fatalf("V(%d,%d) id %d invalid/duplicate", i, j, id)
			}
			seen[id] = true
		}
	}
	if len(seen) != g.NumEdges() {
		t.Fatalf("covered %d ids, want %d", len(seen), g.NumEdges())
	}
}

func TestSquareEdgeLRPathsFullAndBlocked(t *testing.T) {
	g, _ := NewSquareEdge(5)
	empty := bitset.New(g.NumEdges())
	paths, err := g.DisjointLRPaths(empty, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 5 {
		t.Fatalf("full grid LR paths = %d, want 5", len(paths))
	}
	// Paths consist of open edges and are edge-disjoint.
	used := map[int]bool{}
	for _, p := range paths {
		if len(p) < 4 {
			t.Fatalf("LR path %v shorter than grid width", p)
		}
		for _, e := range p {
			if used[e] {
				t.Fatal("edge reused")
			}
			used[e] = true
		}
	}
	// Cut a full column of H edges at j=2: no LR path survives unless it
	// detours — but every LR crossing must traverse some H edge in each
	// column index, so killing column 2 entirely blocks all LR paths.
	dead := bitset.New(g.NumEdges())
	for i := 0; i < 5; i++ {
		dead.Add(g.HEdge(i, 2))
	}
	blocked, err := g.DisjointLRPaths(dead, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocked) != 0 {
		t.Fatalf("LR paths through a dead H-column = %d, want 0", len(blocked))
	}
	if _, err := g.DisjointLRPaths(empty, 0); err == nil {
		t.Error("maxPaths=0 should fail")
	}
}

func TestSquareEdgeDualTBPaths(t *testing.T) {
	g, _ := NewSquareEdge(5)
	empty := bitset.New(g.NumEdges())
	paths, err := g.DisjointDualTBPaths(empty, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 { // d−1 cell columns
		t.Fatalf("dual TB paths = %d, want 4", len(paths))
	}
	used := map[int]bool{}
	for _, p := range paths {
		if len(p) != 5 { // straight dual path crosses d H edges
			// Non-straight decompositions can be longer; only disjointness
			// and validity are required.
			if len(p) < 5 {
				t.Fatalf("dual path %v crosses fewer than d edges", p)
			}
		}
		for _, e := range p {
			if e < 0 || e >= g.NumEdges() {
				t.Fatalf("crossed edge %d out of range", e)
			}
			if used[e] {
				t.Fatal("crossed edge reused")
			}
			used[e] = true
		}
	}
	if _, err := g.DisjointDualTBPaths(empty, 0); err == nil {
		t.Error("maxPaths=0 should fail")
	}
}

func TestSquareEdgeDualityCutArgument(t *testing.T) {
	// The percolation duality behind the construction: for any failure
	// pattern, an open LR primal path and an open dual TB path must share
	// an edge whenever both exist.
	g, _ := NewSquareEdge(6)
	rng := rand.New(rand.NewSource(90))
	for trial := 0; trial < 40; trial++ {
		dead := g.SampleDeadEdges(0.2, rng)
		lr, err := g.DisjointLRPaths(dead, 1)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := g.DisjointDualTBPaths(dead, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(lr) == 0 || len(tb) == 0 {
			continue
		}
		inLR := map[int]bool{}
		for _, e := range lr[0] {
			inLR[e] = true
		}
		shared := false
		for _, e := range tb[0] {
			if inLR[e] {
				shared = true
				break
			}
		}
		if !shared {
			t.Fatalf("trial %d: LR %v and dual TB %v share no edge", trial, lr[0], tb[0])
		}
	}
}

func TestSquareEdgeBondPercolationThreshold(t *testing.T) {
	// Bond percolation p_c = 1/2 [Kes80]: LR crossings abundant at
	// p = 0.3, rare at p = 0.7 on a 14×14 grid.
	g, _ := NewSquareEdge(14)
	rng := rand.New(rand.NewSource(91))
	count := func(p float64) int {
		hits := 0
		for i := 0; i < 60; i++ {
			dead := g.SampleDeadEdges(p, rng)
			paths, err := g.DisjointLRPaths(dead, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(paths) > 0 {
				hits++
			}
		}
		return hits
	}
	low, high := count(0.3), count(0.7)
	if low < 50 {
		t.Errorf("crossings at p=0.3: %d/60, want ≥ 50", low)
	}
	if high > 10 {
		t.Errorf("crossings at p=0.7: %d/60, want ≤ 10", high)
	}
}
