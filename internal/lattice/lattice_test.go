package lattice

import (
	"math/rand"
	"testing"

	"bqs/internal/bitset"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("d=0 should fail")
	}
	g, err := New(3)
	if err != nil || g.Side() != 3 || g.NumVertices() != 9 {
		t.Fatalf("New(3) = %v, %v", g, err)
	}
}

func TestIndexCoordsRoundTrip(t *testing.T) {
	g, _ := New(5)
	for v := 0; v < 25; v++ {
		r, c := g.Coords(v)
		if g.Index(r, c) != v {
			t.Fatalf("round trip fails at %d", v)
		}
	}
}

func TestNeighborsDegree(t *testing.T) {
	g, _ := New(4)
	// Interior vertex (1,1): 6 neighbors in the triangulation.
	nb := g.Neighbors(1, 1, nil)
	if len(nb) != 6 {
		t.Errorf("interior degree = %d, want 6", len(nb))
	}
	// Top-left corner (0,0): (0,1), (1,0) — the (−1,1) and (1,−1) drops.
	nb = g.Neighbors(0, 0, nil)
	if len(nb) != 2 {
		t.Errorf("corner (0,0) degree = %d, want 2", len(nb))
	}
	// Bottom-left corner (d−1,0): (d−1,1), (d−2,0), (d−2,1) → 3.
	nb = g.Neighbors(3, 0, nil)
	if len(nb) != 3 {
		t.Errorf("corner (3,0) degree = %d, want 3", len(nb))
	}
}

func TestNeighborSymmetry(t *testing.T) {
	g, _ := New(5)
	adj := make(map[[2]int]bool)
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			for _, nb := range g.Neighbors(r, c, nil) {
				adj[[2]int{g.Index(r, c), g.Index(nb[0], nb[1])}] = true
			}
		}
	}
	for e := range adj {
		if !adj[[2]int{e[1], e[0]}] {
			t.Fatalf("edge %v lacks reverse", e)
		}
	}
}

func TestHasOpenPathNoFailures(t *testing.T) {
	g, _ := New(6)
	empty := bitset.New(36)
	if !g.HasOpenPath(LeftRight, empty) || !g.HasOpenPath(TopBottom, empty) {
		t.Fatal("fully open grid must have crossings both ways")
	}
}

func TestHasOpenPathBlockedByColumn(t *testing.T) {
	g, _ := New(5)
	// A fully dead column blocks LR traffic...
	dead := bitset.New(25)
	for r := 0; r < 5; r++ {
		dead.Add(g.Index(r, 2))
	}
	if g.HasOpenPath(LeftRight, dead) {
		t.Error("dead column should block LR paths")
	}
	// ...but on the triangular lattice a dead column also blocks TB? No:
	// TB paths can run inside another column untouched.
	if !g.HasOpenPath(TopBottom, dead) {
		t.Error("dead column should not block TB paths")
	}
}

func TestDisjointPathsFullGrid(t *testing.T) {
	g, _ := New(6)
	empty := bitset.New(36)
	paths, err := g.DisjointPaths(LeftRight, empty, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 6 {
		t.Fatalf("open 6×6 grid supports %d disjoint LR paths, want 6", len(paths))
	}
	seen := bitset.New(36)
	for _, p := range paths {
		// Valid crossing: starts col 0, ends col d−1, consecutive neighbors.
		if _, c := g.Coords(p[0]); c != 0 {
			t.Fatalf("path %v does not start at left edge", p)
		}
		if _, c := g.Coords(p[len(p)-1]); c != 5 {
			t.Fatalf("path %v does not end at right edge", p)
		}
		for i := 1; i < len(p); i++ {
			r0, c0 := g.Coords(p[i-1])
			ok := false
			for _, nb := range g.Neighbors(r0, c0, nil) {
				if g.Index(nb[0], nb[1]) == p[i] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("path %v has non-adjacent step %d→%d", p, p[i-1], p[i])
			}
		}
		for _, v := range p {
			if seen.Contains(v) {
				t.Fatalf("vertex %d reused across paths", v)
			}
			seen.Add(v)
		}
	}
}

func TestDisjointPathsRespectDeadAndCap(t *testing.T) {
	g, _ := New(5)
	dead := bitset.New(25)
	// Kill rows 0 and 1 entirely: at most 3 disjoint LR paths remain.
	for c := 0; c < 5; c++ {
		dead.Add(g.Index(0, c))
		dead.Add(g.Index(1, c))
	}
	paths, err := g.DisjointPaths(LeftRight, dead, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	for _, p := range paths {
		for _, v := range p {
			if dead.Contains(v) {
				t.Fatalf("path uses dead vertex %d", v)
			}
		}
	}
	// maxPaths cap respected.
	capped, err := g.DisjointPaths(LeftRight, dead, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 2 {
		t.Fatalf("cap 2 returned %d paths", len(capped))
	}
	if _, err := g.DisjointPaths(LeftRight, dead, 0); err == nil {
		t.Error("maxPaths=0 should fail")
	}
}

func TestCountDisjointPaths(t *testing.T) {
	g, _ := New(4)
	n, err := g.CountDisjointPaths(TopBottom, bitset.New(16))
	if err != nil || n != 4 {
		t.Fatalf("count = %d, %v; want 4", n, err)
	}
}

func TestPercolationThresholdShape(t *testing.T) {
	// Site percolation on the triangular lattice has p_c = 1/2: crossing
	// probability should be near 1 for p = 0.3 and near 0 for p = 0.7 on a
	// modest grid. (p here is the closure probability.)
	g, _ := New(20)
	rng := rand.New(rand.NewSource(99))
	low, err := g.CrossingProbability(LeftRight, 0.3, 1, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	high, err := g.CrossingProbability(LeftRight, 0.7, 1, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	if low < 0.9 {
		t.Errorf("P_0.3(LR) = %g, want > 0.9", low)
	}
	if high > 0.1 {
		t.Errorf("P_0.7(LR) = %g, want < 0.1", high)
	}
	if _, err := g.CrossingProbability(LeftRight, 0.5, 1, 0, rng); err == nil {
		t.Error("0 trials should fail")
	}
}

func TestCrossingProbabilityMultiplePaths(t *testing.T) {
	// Needing more disjoint paths can only lower the probability.
	g, _ := New(12)
	rng := rand.New(rand.NewSource(17))
	p1, err := g.CrossingProbability(LeftRight, 0.25, 1, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := g.CrossingProbability(LeftRight, 0.25, 3, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p3 > p1+0.05 {
		t.Errorf("P(LR_3) = %g exceeds P(LR_1) = %g", p3, p1)
	}
}
