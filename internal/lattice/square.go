package lattice

import (
	"fmt"
	"math/rand"

	"bqs/internal/bitset"
	"bqs/internal/maxflow"
)

// SquareEdgeGrid is the square-lattice bond variant the paper mentions at
// the end of Section 7: servers correspond to the EDGES of a d×d vertex
// grid (as in [NW98]'s Paths construction), and bond percolation on the
// square lattice has critical probability 1/2 [Kes80]. Left-right quorum
// paths live in the primal lattice; top-bottom paths live in the planar
// dual, where each dual step crosses exactly one primal edge. By planar
// duality every LR primal path shares an edge with every TB dual path,
// which restores the intersection property with edge elements.
//
// Edge numbering: horizontal edge H(i,j) joins (i,j)–(i,j+1) for
// 0 ≤ i < d, 0 ≤ j < d−1, with id i·(d−1)+j. Vertical edge V(i,j) joins
// (i,j)–(i+1,j) for 0 ≤ i < d−1, 0 ≤ j < d, with id d(d−1) + i·d + j.
// The universe size is 2d(d−1).
type SquareEdgeGrid struct {
	d int
}

// NewSquareEdge returns the edge lattice on a d×d vertex grid (d ≥ 2).
func NewSquareEdge(d int) (*SquareEdgeGrid, error) {
	if d < 2 {
		return nil, fmt.Errorf("lattice: square-edge side %d must be at least 2", d)
	}
	return &SquareEdgeGrid{d: d}, nil
}

// Side returns d; NumEdges returns the universe size 2d(d−1).
func (g *SquareEdgeGrid) Side() int     { return g.d }
func (g *SquareEdgeGrid) NumEdges() int { return 2 * g.d * (g.d - 1) }

// HEdge returns the id of H(i,j); VEdge the id of V(i,j).
func (g *SquareEdgeGrid) HEdge(i, j int) int { return i*(g.d-1) + j }
func (g *SquareEdgeGrid) VEdge(i, j int) int { return g.d*(g.d-1) + i*g.d + j }

// DisjointLRPaths returns up to maxPaths edge-disjoint open left-right
// paths in the primal lattice, each as a list of edge ids.
func (g *SquareEdgeGrid) DisjointLRPaths(dead bitset.Set, maxPaths int) ([][]int, error) {
	if maxPaths < 1 {
		return nil, fmt.Errorf("lattice: maxPaths %d must be positive", maxPaths)
	}
	d := g.d
	// Flow nodes: primal vertices (i,j) = i·d+j, then src, gate, snk.
	src, gate, snk := d*d, d*d+1, d*d+2
	fg := maxflow.New(d*d + 3)
	if err := fg.AddEdge(src, gate, maxPaths); err != nil {
		return nil, err
	}
	vid := func(i, j int) int { return i*d + j }
	// Open edges become antiparallel unit arcs (standard reduction for
	// edge-disjoint undirected paths).
	for i := 0; i < d; i++ {
		for j := 0; j < d-1; j++ {
			if !dead.Contains(g.HEdge(i, j)) {
				if err := fg.AddEdge(vid(i, j), vid(i, j+1), 1); err != nil {
					return nil, err
				}
				if err := fg.AddEdge(vid(i, j+1), vid(i, j), 1); err != nil {
					return nil, err
				}
			}
		}
	}
	for i := 0; i < d-1; i++ {
		for j := 0; j < d; j++ {
			if !dead.Contains(g.VEdge(i, j)) {
				if err := fg.AddEdge(vid(i, j), vid(i+1, j), 1); err != nil {
					return nil, err
				}
				if err := fg.AddEdge(vid(i+1, j), vid(i, j), 1); err != nil {
					return nil, err
				}
			}
		}
	}
	for i := 0; i < d; i++ {
		if err := fg.AddEdge(gate, vid(i, 0), 1); err != nil {
			return nil, err
		}
		if err := fg.AddEdge(vid(i, d-1), snk, 1); err != nil {
			return nil, err
		}
	}
	if _, err := fg.MaxFlow(src, snk); err != nil {
		return nil, err
	}
	raw := fg.DecomposePaths(src, snk)
	paths := make([][]int, 0, len(raw))
	for _, rp := range raw {
		if len(paths) == maxPaths {
			break
		}
		// rp = src, gate, v0, v1, …, snk → translate vertex steps to edges.
		var edges []int
		for k := 2; k+1 < len(rp)-1; k++ {
			e, err := g.edgeBetween(rp[k], rp[k+1])
			if err != nil {
				return nil, err
			}
			edges = append(edges, e)
		}
		paths = append(paths, edges)
	}
	return paths, nil
}

func (g *SquareEdgeGrid) edgeBetween(u, v int) (int, error) {
	d := g.d
	iu, ju := u/d, u%d
	iv, jv := v/d, v%d
	switch {
	case iu == iv && jv == ju+1:
		return g.HEdge(iu, ju), nil
	case iu == iv && ju == jv+1:
		return g.HEdge(iu, jv), nil
	case ju == jv && iv == iu+1:
		return g.VEdge(iu, ju), nil
	case ju == jv && iu == iv+1:
		return g.VEdge(iv, ju), nil
	default:
		return 0, fmt.Errorf("lattice: vertices %d,%d not adjacent", u, v)
	}
}

// DisjointDualTBPaths returns up to maxPaths top-bottom paths in the
// planar dual whose crossed primal edges are all open and pairwise
// disjoint. Each path is returned as the list of crossed primal edge ids.
// Dual vertices are the (d−1)×(d−1) cells plus top/bottom boundary nodes;
// moving down from cell (i,j) crosses H(i+1,j), entering from the top
// crosses H(0,j), leaving at the bottom crosses H(d−1,j), and moving
// right from cell (i,j) crosses V(i,j+1).
func (g *SquareEdgeGrid) DisjointDualTBPaths(dead bitset.Set, maxPaths int) ([][]int, error) {
	if maxPaths < 1 {
		return nil, fmt.Errorf("lattice: maxPaths %d must be positive", maxPaths)
	}
	d := g.d
	c := d - 1 // cells per side
	cellID := func(i, j int) int { return i*c + j }
	top, bottom := c*c, c*c+1
	src, gate := c*c+2, c*c+3
	fg := maxflow.New(c*c + 4)
	if err := fg.AddEdge(src, gate, maxPaths); err != nil {
		return nil, err
	}
	if err := fg.AddEdge(gate, top, maxPaths); err != nil {
		return nil, err
	}
	// The crossed primal edge is the capacity carrier: since each dual
	// step crosses a distinct primal edge and each primal edge is crossed
	// by exactly one dual edge, unit arc capacities give edge-disjoint
	// crossed sets.
	for j := 0; j < c; j++ {
		if !dead.Contains(g.HEdge(0, j)) {
			if err := fg.AddEdge(top, cellID(0, j), 1); err != nil {
				return nil, err
			}
		}
		if !dead.Contains(g.HEdge(d-1, j)) {
			if err := fg.AddEdge(cellID(c-1, j), bottom, 1); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < c-1; i++ {
		for j := 0; j < c; j++ {
			if !dead.Contains(g.HEdge(i+1, j)) {
				if err := fg.AddEdge(cellID(i, j), cellID(i+1, j), 1); err != nil {
					return nil, err
				}
				if err := fg.AddEdge(cellID(i+1, j), cellID(i, j), 1); err != nil {
					return nil, err
				}
			}
		}
	}
	for i := 0; i < c; i++ {
		for j := 0; j < c-1; j++ {
			if !dead.Contains(g.VEdge(i, j+1)) {
				if err := fg.AddEdge(cellID(i, j), cellID(i, j+1), 1); err != nil {
					return nil, err
				}
				if err := fg.AddEdge(cellID(i, j+1), cellID(i, j), 1); err != nil {
					return nil, err
				}
			}
		}
	}
	if _, err := fg.MaxFlow(src, bottom); err != nil {
		return nil, err
	}
	raw := fg.DecomposePaths(src, bottom)
	paths := make([][]int, 0, len(raw))
	for _, rp := range raw {
		if len(paths) == maxPaths {
			break
		}
		// rp = src, gate, top, cell…, bottom → crossed primal edges.
		var edges []int
		for k := 2; k+1 < len(rp); k++ {
			e, err := g.crossedEdge(rp[k], rp[k+1], top, bottom)
			if err != nil {
				return nil, err
			}
			edges = append(edges, e)
		}
		paths = append(paths, edges)
	}
	return paths, nil
}

func (g *SquareEdgeGrid) crossedEdge(u, v, top, bottom int) (int, error) {
	c := g.d - 1
	switch {
	case u == top:
		return g.HEdge(0, v%c), nil
	case v == bottom:
		return g.HEdge(g.d-1, u%c), nil
	default:
		iu, ju := u/c, u%c
		iv, jv := v/c, v%c
		switch {
		case ju == jv && iv == iu+1:
			return g.HEdge(iu+1, ju), nil
		case ju == jv && iu == iv+1:
			return g.HEdge(iv+1, ju), nil
		case iu == iv && jv == ju+1:
			return g.VEdge(iu, jv), nil
		case iu == iv && ju == jv+1:
			return g.VEdge(iu, ju), nil
		default:
			return 0, fmt.Errorf("lattice: dual cells %d,%d not adjacent", u, v)
		}
	}
}

// SampleDeadEdges closes each edge independently with probability p.
func (g *SquareEdgeGrid) SampleDeadEdges(p float64, rng *rand.Rand) bitset.Set {
	dead := bitset.New(g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		if rng.Float64() < p {
			dead.Add(e)
		}
	}
	return dead
}
