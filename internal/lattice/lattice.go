// Package lattice implements the triangulated grid that underlies the
// M-Path construction (Section 7). Vertices are the integer points
// {(i,j) : 0 ≤ i,j < d}; edges connect (i,j)–(i,j+1), (i,j)–(i+1,j) and
// (i,j)–(i−1,j+1) (the paper's triangulation). A site is open when the
// corresponding server is alive; the package finds open left-right (LR)
// and top-bottom (TB) paths, counts vertex-disjoint families of them via
// max-flow (Menger's theorem), and samples site percolation for the
// Appendix B experiments (critical probability 1/2 on this lattice).
package lattice

import (
	"fmt"
	"math/rand"

	"bqs/internal/bitset"
	"bqs/internal/maxflow"
)

// Axis selects the traversal direction.
type Axis int

// Traversal directions.
const (
	LeftRight Axis = iota + 1 // paths from column 0 to column d−1
	TopBottom                 // paths from row 0 to row d−1
)

// Grid is a d×d triangulated lattice.
type Grid struct {
	d int
}

// New returns a d×d grid; d must be at least 1.
func New(d int) (*Grid, error) {
	if d < 1 {
		return nil, fmt.Errorf("lattice: side %d must be at least 1", d)
	}
	return &Grid{d: d}, nil
}

// Side returns d; NumVertices returns d².
func (g *Grid) Side() int        { return g.d }
func (g *Grid) NumVertices() int { return g.d * g.d }

// Index maps (row, col) to the vertex id row·d + col.
func (g *Grid) Index(row, col int) int { return row*g.d + col }

// Coords inverts Index.
func (g *Grid) Coords(v int) (row, col int) { return v / g.d, v % g.d }

// Neighbors appends the neighbors of (row, col) to buf and returns it.
// The triangulation gives interior vertices degree 6.
func (g *Grid) Neighbors(row, col int, buf [][2]int) [][2]int {
	d := g.d
	cand := [6][2]int{
		{row, col + 1}, {row, col - 1},
		{row + 1, col}, {row - 1, col},
		{row - 1, col + 1}, {row + 1, col - 1},
	}
	for _, c := range cand {
		if c[0] >= 0 && c[0] < d && c[1] >= 0 && c[1] < d {
			buf = append(buf, c)
		}
	}
	return buf
}

// HasOpenPath reports whether an open path crosses the grid along the axis
// (every vertex on the path avoids the dead set). BFS, O(d²).
func (g *Grid) HasOpenPath(axis Axis, dead bitset.Set) bool {
	d := g.d
	visited := bitset.New(d * d)
	var queue []int
	for k := 0; k < d; k++ {
		var v int
		if axis == LeftRight {
			v = g.Index(k, 0)
		} else {
			v = g.Index(0, k)
		}
		if !dead.Contains(v) {
			visited.Add(v)
			queue = append(queue, v)
		}
	}
	var buf [][2]int
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		row, col := g.Coords(v)
		if (axis == LeftRight && col == d-1) || (axis == TopBottom && row == d-1) {
			return true
		}
		buf = g.Neighbors(row, col, buf[:0])
		for _, nb := range buf {
			w := g.Index(nb[0], nb[1])
			if !dead.Contains(w) && !visited.Contains(w) {
				visited.Add(w)
				queue = append(queue, w)
			}
		}
	}
	return false
}

// DisjointPaths returns up to maxPaths vertex-disjoint open crossing paths
// along the axis, each as a sequence of vertex ids. It returns fewer when
// the dead set does not admit maxPaths of them; the second result is the
// attainable count (the full max-flow value, even when it exceeds
// maxPaths... capped by construction at maxPaths via source capacities).
func (g *Grid) DisjointPaths(axis Axis, dead bitset.Set, maxPaths int) ([][]int, error) {
	if maxPaths < 1 {
		return nil, fmt.Errorf("lattice: maxPaths %d must be positive", maxPaths)
	}
	d := g.d
	// Vertex-split graph: in(v) = 2v, out(v) = 2v+1; a gate node throttles
	// the source to maxPaths so the flow computation stops as soon as the
	// requested number of disjoint paths is established.
	src, gate, snk := 2*d*d, 2*d*d+1, 2*d*d+2
	fg := maxflow.New(2*d*d + 3)
	addEdge := func(u, v, c int) error { return fg.AddEdge(u, v, c) }
	if err := addEdge(src, gate, maxPaths); err != nil {
		return nil, err
	}

	for v := 0; v < d*d; v++ {
		if dead.Contains(v) {
			continue
		}
		if err := addEdge(2*v, 2*v+1, 1); err != nil {
			return nil, err
		}
		row, col := g.Coords(v)
		var buf [][2]int
		buf = g.Neighbors(row, col, buf)
		for _, nb := range buf {
			w := g.Index(nb[0], nb[1])
			if dead.Contains(w) {
				continue
			}
			if err := addEdge(2*v+1, 2*w, 1); err != nil {
				return nil, err
			}
		}
		isStart := (axis == LeftRight && col == 0) || (axis == TopBottom && row == 0)
		isEnd := (axis == LeftRight && col == d-1) || (axis == TopBottom && row == d-1)
		if isStart {
			if err := addEdge(gate, 2*v, 1); err != nil {
				return nil, err
			}
		}
		if isEnd {
			if err := addEdge(2*v+1, snk, 1); err != nil {
				return nil, err
			}
		}
	}
	if _, err := fg.MaxFlow(src, snk); err != nil {
		return nil, err
	}
	raw := fg.DecomposePaths(src, snk)
	paths := make([][]int, 0, len(raw))
	for _, rp := range raw {
		if len(paths) == maxPaths {
			break
		}
		// rp = src, in(a), out(a), in(b), out(b), …, snk.
		var p []int
		for _, node := range rp[1 : len(rp)-1] {
			if node%2 == 0 { // in-vertex
				p = append(p, node/2)
			}
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// CountDisjointPaths returns the maximum number of vertex-disjoint open
// crossing paths along the axis (unbounded by any quorum size).
func (g *Grid) CountDisjointPaths(axis Axis, dead bitset.Set) (int, error) {
	paths, err := g.DisjointPaths(axis, dead, g.d)
	if err != nil {
		return 0, err
	}
	return len(paths), nil
}

// SampleDead fills a fresh dead set where each site is closed independently
// with probability p (site percolation).
func (g *Grid) SampleDead(p float64, rng *rand.Rand) bitset.Set {
	dead := bitset.New(g.d * g.d)
	for v := 0; v < g.d*g.d; v++ {
		if rng.Float64() < p {
			dead.Add(v)
		}
	}
	return dead
}

// CrossingProbability estimates P_p(LR_k): the probability that k
// vertex-disjoint open crossings exist along the axis under site
// percolation with closure probability p. This is the quantity Appendix B
// bounds via Theorems B.1 and B.3.
func (g *Grid) CrossingProbability(axis Axis, p float64, k, trials int, rng *rand.Rand) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("lattice: trials must be positive")
	}
	success := 0
	for t := 0; t < trials; t++ {
		dead := g.SampleDead(p, rng)
		if k == 1 {
			if g.HasOpenPath(axis, dead) {
				success++
			}
			continue
		}
		paths, err := g.DisjointPaths(axis, dead, k)
		if err != nil {
			return 0, err
		}
		if len(paths) >= k {
			success++
		}
	}
	return float64(success) / float64(trials), nil
}
