// Package maxflow implements Dinic's maximum-flow algorithm on small
// integer-capacity graphs. The M-Path construction (Section 7 of the paper)
// needs it twice: a quorum is √(2b+1) vertex-disjoint left-right paths plus
// √(2b+1) vertex-disjoint top-bottom paths, and by Menger's theorem the
// maximum number of vertex-disjoint open paths equals the max-flow of the
// vertex-split lattice with unit vertex capacities.
package maxflow

import "fmt"

type edge struct {
	to, rev int
	cap     int
	isRev   bool // true for the auto-created residual counterpart
}

// Graph is a flow network under construction. Vertices are integers in
// [0, n). The zero value is not usable; create graphs with New.
type Graph struct {
	n   int
	adj [][]edge

	// scratch for Dinic
	level []int
	iter  []int
}

// New returns an empty flow network on n vertices.
func New(n int) *Graph {
	return &Graph{
		n:     n,
		adj:   make([][]edge, n),
		level: make([]int, n),
		iter:  make([]int, n),
	}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.n }

// AddEdge inserts a directed edge u→v with the given capacity (and the
// implicit residual reverse edge of capacity 0).
func (g *Graph) AddEdge(u, v, capacity int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("maxflow: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if capacity < 0 {
		return fmt.Errorf("maxflow: negative capacity %d", capacity)
	}
	g.adj[u] = append(g.adj[u], edge{to: v, rev: len(g.adj[v]), cap: capacity})
	g.adj[v] = append(g.adj[v], edge{to: u, rev: len(g.adj[u]) - 1, cap: 0, isRev: true})
	return nil
}

// MaxFlow computes the maximum s→t flow, mutating residual capacities.
// Calling it twice continues from the residual network (returns 0 more).
func (g *Graph) MaxFlow(s, t int) (int, error) {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		return 0, fmt.Errorf("maxflow: terminal out of range")
	}
	if s == t {
		return 0, fmt.Errorf("maxflow: source equals sink")
	}
	flow := 0
	for g.bfs(s, t) {
		for i := range g.iter {
			g.iter[i] = 0
		}
		for {
			f := g.dfs(s, t, int(^uint(0)>>1))
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow, nil
}

func (g *Graph) bfs(s, t int) bool {
	for i := range g.level {
		g.level[i] = -1
	}
	queue := make([]int, 0, g.n)
	queue = append(queue, s)
	g.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[u] {
			if e.cap > 0 && g.level[e.to] < 0 {
				g.level[e.to] = g.level[u] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return g.level[t] >= 0
}

func (g *Graph) dfs(u, t, f int) int {
	if u == t {
		return f
	}
	for ; g.iter[u] < len(g.adj[u]); g.iter[u]++ {
		e := &g.adj[u][g.iter[u]]
		if e.cap > 0 && g.level[e.to] == g.level[u]+1 {
			m := f
			if e.cap < m {
				m = e.cap
			}
			d := g.dfs(e.to, t, m)
			if d > 0 {
				e.cap -= d
				g.adj[e.to][e.rev].cap += d
				return d
			}
		}
	}
	return 0
}

// DecomposePaths extracts s→t paths from the current integral flow (call
// after MaxFlow). Each path is a vertex sequence s, …, t; the number of
// returned paths equals the flow value. Antiparallel flows are cancelled
// first, so graphs built with explicit edges in both directions decompose
// cleanly. Flow cycles not incident to s are ignored, as flow decomposition
// permits.
func (g *Graph) DecomposePaths(s, t int) [][]int {
	// Net shipped flow per ordered vertex pair. The shipped flow on a
	// forward edge equals the residual capacity of its auto-created
	// reverse edge (which started at 0).
	net := make(map[[2]int]int)
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if e.isRev {
				continue
			}
			if f := g.adj[e.to][e.rev].cap; f > 0 {
				net[[2]int{u, e.to}] += f
			}
		}
	}
	// Cancel antiparallel flow so walks cannot bounce between two vertices.
	for key, f := range net {
		rkey := [2]int{key[1], key[0]}
		if rf := net[rkey]; f > 0 && rf > 0 {
			c := f
			if rf < c {
				c = rf
			}
			net[key] -= c
			net[rkey] -= c
		}
	}
	succ := make(map[int][][2]int) // vertex → outgoing keys with flow
	for key, f := range net {
		if f > 0 {
			succ[key[0]] = append(succ[key[0]], key)
		}
	}

	take := func(u int) (int, bool) {
		for _, key := range succ[u] {
			if net[key] > 0 {
				net[key]--
				return key[1], true
			}
		}
		return 0, false
	}

	var paths [][]int
	for {
		v, ok := take(s)
		if !ok {
			return paths
		}
		path := []int{s, v}
		// Flow conservation guarantees an exit from every interior vertex;
		// capacities strictly decrease, so the walk terminates.
		for v != t {
			next, ok := take(v)
			if !ok {
				// Dead end: can only happen if flow is inconsistent;
				// abandon this partial path rather than loop.
				break
			}
			v = next
			path = append(path, v)
		}
		if v == t {
			paths = append(paths, path)
		}
	}
}
