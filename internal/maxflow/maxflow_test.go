package maxflow

import (
	"math/rand"
	"testing"
)

func mustAdd(t *testing.T, g *Graph, u, v, c int) {
	t.Helper()
	if err := g.AddEdge(u, v, c); err != nil {
		t.Fatal(err)
	}
}

func TestTrivialDirect(t *testing.T) {
	g := New(2)
	mustAdd(t, g, 0, 1, 5)
	f, err := g.MaxFlow(0, 1)
	if err != nil || f != 5 {
		t.Fatalf("flow = %d, %v; want 5", f, err)
	}
}

func TestClassicNetwork(t *testing.T) {
	// CLRS-style example with known max flow 23.
	g := New(6)
	mustAdd(t, g, 0, 1, 16)
	mustAdd(t, g, 0, 2, 13)
	mustAdd(t, g, 1, 2, 10)
	mustAdd(t, g, 2, 1, 4)
	mustAdd(t, g, 1, 3, 12)
	mustAdd(t, g, 3, 2, 9)
	mustAdd(t, g, 2, 4, 14)
	mustAdd(t, g, 4, 3, 7)
	mustAdd(t, g, 3, 5, 20)
	mustAdd(t, g, 4, 5, 4)
	f, err := g.MaxFlow(0, 5)
	if err != nil || f != 23 {
		t.Fatalf("flow = %d, %v; want 23", f, err)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	mustAdd(t, g, 0, 1, 3)
	mustAdd(t, g, 2, 3, 3)
	f, err := g.MaxFlow(0, 3)
	if err != nil || f != 0 {
		t.Fatalf("flow = %d, %v; want 0", f, err)
	}
}

func TestErrors(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(-1, 0, 1); err == nil {
		t.Error("negative vertex should error")
	}
	if err := g.AddEdge(0, 3, 1); err == nil {
		t.Error("out-of-range vertex should error")
	}
	if err := g.AddEdge(0, 1, -1); err == nil {
		t.Error("negative capacity should error")
	}
	if _, err := g.MaxFlow(0, 0); err == nil {
		t.Error("s==t should error")
	}
	if _, err := g.MaxFlow(0, 5); err == nil {
		t.Error("sink out of range should error")
	}
}

func TestUnitCapacityDisjointPaths(t *testing.T) {
	// Two vertex-disjoint paths 0→1→3 and 0→2→3 with unit capacities.
	g := New(4)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 0, 2, 1)
	mustAdd(t, g, 1, 3, 1)
	mustAdd(t, g, 2, 3, 1)
	f, err := g.MaxFlow(0, 3)
	if err != nil || f != 2 {
		t.Fatalf("flow = %d, %v; want 2", f, err)
	}
	paths := g.DecomposePaths(0, 3)
	if len(paths) != 2 {
		t.Fatalf("decomposed %d paths, want 2: %v", len(paths), paths)
	}
	// Paths must be edge-disjoint and valid.
	seen := map[[2]int]bool{}
	for _, p := range paths {
		if p[0] != 0 || p[len(p)-1] != 3 {
			t.Fatalf("path %v does not run s→t", p)
		}
		for i := 1; i < len(p); i++ {
			e := [2]int{p[i-1], p[i]}
			if seen[e] {
				t.Fatalf("edge %v reused", e)
			}
			seen[e] = true
		}
	}
}

func TestDecomposeAccountsForFullFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 8
		g := New(n)
		// Random unit-capacity DAG edges from lower to higher index.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(2) == 0 {
					mustAdd(t, g, u, v, 1)
				}
			}
		}
		f, err := g.MaxFlow(0, n-1)
		if err != nil {
			t.Fatal(err)
		}
		paths := g.DecomposePaths(0, n-1)
		if len(paths) != f {
			t.Fatalf("trial %d: flow %d but %d paths", trial, f, len(paths))
		}
	}
}

func TestRepeatedMaxFlowReturnsZero(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 0, 1, 2)
	mustAdd(t, g, 1, 2, 2)
	f1, _ := g.MaxFlow(0, 2)
	f2, _ := g.MaxFlow(0, 2)
	if f1 != 2 || f2 != 0 {
		t.Fatalf("flows = %d, %d; want 2, 0", f1, f2)
	}
}

// TestMengerOnGrid checks max-flow = vertex connectivity between sides on a
// k×k grid with split vertices, which is exactly how the M-Path system
// counts disjoint paths.
func TestMengerOnGrid(t *testing.T) {
	k := 5
	// Vertex split: in(i,j) = 2*(i*k+j), out = in+1. Source k*k*2, sink +1.
	in := func(i, j int) int { return 2 * (i*k + j) }
	out := func(i, j int) int { return 2*(i*k+j) + 1 }
	src, snk := 2*k*k, 2*k*k+1
	g := New(2*k*k + 2)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			mustAdd(t, g, in(i, j), out(i, j), 1)
			if j+1 < k {
				mustAdd(t, g, out(i, j), in(i, j+1), 1)
				mustAdd(t, g, out(i, j+1), in(i, j), 1)
			}
			if i+1 < k {
				mustAdd(t, g, out(i, j), in(i+1, j), 1)
				mustAdd(t, g, out(i+1, j), in(i, j), 1)
			}
		}
		mustAdd(t, g, src, in(i, 0), 1)
		mustAdd(t, g, out(i, k-1), snk, 1)
	}
	f, err := g.MaxFlow(src, snk)
	if err != nil {
		t.Fatal(err)
	}
	// A k×k grid has exactly k vertex-disjoint left-right paths (the rows).
	if f != k {
		t.Fatalf("grid disjoint paths = %d, want %d", f, k)
	}
}
