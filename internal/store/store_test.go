package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// engines lists the Store implementations under their interface, so the
// semantic tests run identically against both.
func engines(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := Open(t.TempDir(), WithFsync(false))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"mem": NewMem(), "disk": disk}
}

func TestStoreSemantics(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if _, ok := s.Get("x"); ok {
				t.Fatal("empty store has a record")
			}
			mustApply(t, s, Record{Key: "x", Value: "old", Seq: 1, Writer: 0})
			mustApply(t, s, Record{Key: "x", Value: "new", Seq: 2, Writer: 0})
			// Stale and tied timestamps must lose: replay order-insensitivity.
			mustApply(t, s, Record{Key: "x", Value: "stale", Seq: 1, Writer: 9})
			mustApply(t, s, Record{Key: "x", Value: "tied", Seq: 2, Writer: 0})
			if rec, _ := s.Get("x"); rec.Value != "new" {
				t.Fatalf("got %q, want last-writer-wins %q", rec.Value, "new")
			}
			// Same Seq, higher Writer wins (lexicographic timestamp order).
			mustApply(t, s, Record{Key: "x", Value: "peer", Seq: 2, Writer: 1})
			if rec, _ := s.Get("x"); rec.Value != "peer" {
				t.Fatalf("got %q, want writer-tiebreak %q", rec.Value, "peer")
			}
			mustApply(t, s, Record{Key: "y", Value: "other", Seq: 1, Writer: 0})
			var keys []string
			s.Range(func(rec Record) bool { keys = append(keys, rec.Key); return true })
			if len(keys) != 2 {
				t.Fatalf("Range saw %v, want 2 keys", keys)
			}
		})
	}
}

func TestStoreClose(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if err := s.Apply(Record{Key: "x"}); err != ErrClosed {
				t.Fatalf("Apply on closed store: %v, want ErrClosed", err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
		})
	}
}

// TestMemReopenWipes pins the amnesiac-restart semantics the churn engine
// had before this package: Mem's crash-recovery boundary loses everything.
func TestMemReopenWipes(t *testing.T) {
	s := NewMem()
	mustApply(t, s, Record{Key: "x", Value: "v", Seq: 1})
	if err := s.Reopen(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("x"); ok {
		t.Fatal("Mem survived Reopen; a process restart must lose memory")
	}
}

func TestDiskReopenRecovers(t *testing.T) {
	d, err := Open(t.TempDir(), WithFsync(false))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := range 100 {
		mustApply(t, d, Record{Key: fmt.Sprintf("k%02d", i%10), Value: fmt.Sprintf("v%d", i), Seq: int64(i), Writer: int64(i % 3)})
	}
	want := dump(d)
	if err := d.Reopen(); err != nil {
		t.Fatal(err)
	}
	if got := dump(d); got != want {
		t.Fatalf("state after Reopen:\n%s\nwant:\n%s", got, want)
	}
	st := d.Recovered()
	if st.Keys != 10 || st.WALRecords != 100 || st.TruncatedBytes != 0 {
		t.Fatalf("recovery stats %+v, want 10 keys from 100 wal records, nothing truncated", st)
	}
	// And recovery in a brand-new process (fresh Open on the same dir).
	d2, err := Open(d.dir, WithFsync(false))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := dump(d2); got != want {
		t.Fatalf("state after fresh Open:\n%s\nwant:\n%s", got, want)
	}
}

// TestDiskRecoveryEdges covers the crash shapes from the issue: truncated
// final WAL record, corrupt CRC mid-log, snapshot newer than the log
// tail, and an empty data dir. Each must recover the consistent prefix
// without panicking.
func TestDiskRecoveryEdges(t *testing.T) {
	seed := func(t *testing.T, n int) (string, *Disk) {
		t.Helper()
		dir := t.TempDir()
		d, err := Open(dir, WithFsync(false))
		if err != nil {
			t.Fatal(err)
		}
		for i := range n {
			mustApply(t, d, Record{Key: fmt.Sprintf("k%d", i), Value: "v", Seq: int64(i + 1)})
		}
		return dir, d
	}

	t.Run("empty data dir", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "does", "not", "exist")
		d, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		if st := d.Recovered(); st.Keys != 0 || st.TruncatedBytes != 0 {
			t.Fatalf("recovery from nothing: %+v", st)
		}
		mustApply(t, d, Record{Key: "x", Value: "v", Seq: 1})
	})

	t.Run("truncated final record", func(t *testing.T) {
		dir, d := seed(t, 5)
		d.Close()
		wal := filepath.Join(dir, walName)
		buf, err := os.ReadFile(wal)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(wal, buf[:len(buf)-3], 0o644); err != nil {
			t.Fatal(err)
		}
		d2, err := Open(dir, WithFsync(false))
		if err != nil {
			t.Fatal(err)
		}
		defer d2.Close()
		st := d2.Recovered()
		if st.WALRecords != 4 || st.Keys != 4 || st.TruncatedBytes == 0 {
			t.Fatalf("recovery %+v, want 4 intact records and a truncated tail", st)
		}
		if _, ok := d2.Get("k4"); ok {
			t.Fatal("torn final record resurrected")
		}
		// The tail was physically truncated: appends go to a clean boundary.
		mustApply(t, d2, Record{Key: "k4", Value: "rewritten", Seq: 9})
		if err := d2.Reopen(); err != nil {
			t.Fatal(err)
		}
		if rec, _ := d2.Get("k4"); rec.Value != "rewritten" {
			t.Fatalf("append after truncation lost: %+v", rec)
		}
	})

	t.Run("corrupt crc mid-log", func(t *testing.T) {
		dir, d := seed(t, 6)
		d.Close()
		wal := filepath.Join(dir, walName)
		buf, err := os.ReadFile(wal)
		if err != nil {
			t.Fatal(err)
		}
		buf[len(buf)/2] ^= 0xff // flip a bit in some middle record
		if err := os.WriteFile(wal, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		d2, err := Open(dir, WithFsync(false))
		if err != nil {
			t.Fatal(err)
		}
		defer d2.Close()
		st := d2.Recovered()
		if st.WALRecords >= 6 || st.TruncatedBytes == 0 {
			t.Fatalf("recovery %+v, want a proper prefix with the corrupt tail truncated", st)
		}
		for i := range st.WALRecords {
			if _, ok := d2.Get(fmt.Sprintf("k%d", i)); !ok {
				t.Fatalf("record %d in the intact prefix missing", i)
			}
		}
	})

	t.Run("snapshot newer than log tail", func(t *testing.T) {
		// A crash between compaction's snapshot rename and WAL truncate:
		// the snapshot already holds newer state than the log. Rebuild
		// that moment by hand and check last-writer-wins resolves it.
		dir, d := seed(t, 3)
		mustApply(t, d, Record{Key: "k1", Value: "newest", Seq: 100})
		if err := d.Snapshot(); err != nil {
			t.Fatal(err)
		}
		d.Close()
		stale, err := AppendRecord(nil, Record{Key: "k1", Value: "stale", Seq: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walName), stale, 0o644); err != nil {
			t.Fatal(err)
		}
		d2, err := Open(dir, WithFsync(false))
		if err != nil {
			t.Fatal(err)
		}
		defer d2.Close()
		if rec, _ := d2.Get("k1"); rec.Value != "newest" {
			t.Fatalf("stale log tail beat newer snapshot: %+v", rec)
		}
		if st := d2.Recovered(); st.SnapshotRecords != 3 || st.WALRecords != 1 {
			t.Fatalf("recovery %+v, want 3 snapshot records and 1 wal record", st)
		}
	})

	t.Run("corrupt snapshot fails loud", func(t *testing.T) {
		dir, d := seed(t, 3)
		if err := d.Snapshot(); err != nil {
			t.Fatal(err)
		}
		d.Close()
		snap := filepath.Join(dir, snapName)
		buf, err := os.ReadFile(snap)
		if err != nil {
			t.Fatal(err)
		}
		buf[recordHeaderLen] ^= 0xff
		if err := os.WriteFile(snap, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil {
			t.Fatal("Open silently dropped state from a corrupt snapshot")
		}
	})
}

// TestDiskCompaction drives the WAL past a tiny threshold and checks the
// log is truncated, the snapshot holds the state, and recovery still
// sees everything.
func TestDiskCompaction(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, WithFsync(false), WithSnapshotThreshold(512))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := range 200 {
		mustApply(t, d, Record{Key: fmt.Sprintf("k%02d", i%20), Value: "vvvvvvvvvvvvvvvv", Seq: int64(i)})
	}
	if d.Snapshots() == 0 {
		t.Fatal("200 writes past a 512B threshold never compacted")
	}
	if sz := d.WALSize(); sz > 4096 {
		t.Fatalf("WAL is %dB after compaction; truncation not happening", sz)
	}
	want := dump(d)
	d2, err := Open(dir, WithFsync(false))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := dump(d2); got != want {
		t.Fatalf("state after compacted recovery:\n%s\nwant:\n%s", got, want)
	}
}

// TestDiskGroupCommit runs many concurrent Applies and checks they were
// served by far fewer flush batches — the fsync amortization the durable
// throughput target depends on.
func TestDiskGroupCommit(t *testing.T) {
	d, err := Open(t.TempDir()) // real fsync: contention is the point
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const writers, each = 16, 32
	var wg sync.WaitGroup
	for w := range writers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range each {
				if err := d.Apply(Record{Key: fmt.Sprintf("k%d", w), Value: "v", Seq: int64(i + 1), Writer: int64(w)}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	applies := int64(writers * each)
	if f := d.Flushes(); f >= applies {
		t.Fatalf("%d applies took %d flushes; group commit is not batching", applies, f)
	} else {
		t.Logf("%d applies in %d flushes (%.1f writes/fsync)", applies, f, float64(applies)/float64(f))
	}
	if err := d.Reopen(); err != nil {
		t.Fatal(err)
	}
	for w := range writers {
		if rec, _ := d.Get(fmt.Sprintf("k%d", w)); rec.Seq != each {
			t.Fatalf("writer %d: recovered seq %d, want %d", w, rec.Seq, each)
		}
	}
}

// TestDiskConcurrentSnapshot races Applies against forced Snapshots; the
// race detector referees, and recovery must still be complete.
func TestDiskConcurrentSnapshot(t *testing.T) {
	d, err := Open(t.TempDir(), WithFsync(false))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := range 200 {
			if err := d.Apply(Record{Key: fmt.Sprintf("k%d", i%7), Value: "v", Seq: int64(i + 1)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for range 20 {
			if err := d.Snapshot(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if err := d.Reopen(); err != nil {
		t.Fatal(err)
	}
	if rec, _ := d.Get("k1"); rec.Seq == 0 {
		t.Fatal("writes lost across concurrent snapshots")
	}
}

// BenchmarkWALRecovery measures Open time against log length — the
// numbers behind the recovery-time table in EXPERIMENTS.md.
func BenchmarkWALRecovery(b *testing.B) {
	for _, records := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			dir := b.TempDir()
			d, err := Open(dir, WithFsync(false), WithSnapshotThreshold(1<<40))
			if err != nil {
				b.Fatal(err)
			}
			for i := range records {
				if err := d.Apply(Record{Key: fmt.Sprintf("k%04d", i%1024), Value: "some sixteen chars", Seq: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
			walBytes := d.WALSize()
			d.Close()
			b.ResetTimer()
			for range b.N {
				d, err := Open(dir, WithFsync(false), WithSnapshotThreshold(1<<40))
				if err != nil {
					b.Fatal(err)
				}
				d.Close()
			}
			b.ReportMetric(float64(walBytes), "walBytes")
		})
	}
}

func mustApply(t *testing.T, s Store, rec Record) {
	t.Helper()
	if err := s.Apply(rec); err != nil {
		t.Fatalf("Apply(%+v): %v", rec, err)
	}
}

func dump(s Store) string {
	out := ""
	s.Range(func(rec Record) bool {
		out += fmt.Sprintf("%s=%s@%d.%d\n", rec.Key, rec.Value, rec.Seq, rec.Writer)
		return true
	})
	return out
}
