package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"bqs/internal/obs"
)

// File names inside a Disk store's directory. The snapshot is only ever
// replaced atomically (written to the .tmp name, fsynced, renamed), so a
// crash at any instant leaves either the old snapshot or the new one,
// never a torn mix.
const (
	walName     = "wal.log"
	snapName    = "snapshot"
	snapTmpName = "snapshot.tmp"
)

// DefaultSnapshotThreshold is the WAL size at which the Disk engine
// compacts: the state is snapshotted and the log truncated, bounding
// both disk use and recovery replay time.
const DefaultSnapshotThreshold = 4 << 20

// DefaultCommitLinger is how long the flusher waits before each fsynced
// group commit, collecting the records of every Apply that lands in the
// window. A device sustains only a few thousand fsyncs per second no
// matter how small they are, so at high concurrency the linger is what
// turns one-fsync-per-write into one fsync per wave; at low concurrency
// it is a bounded latency tax on an operation that already pays an
// fsync.
const DefaultCommitLinger = 500 * time.Microsecond

// DiskOption configures Open.
type DiskOption func(*Disk)

// WithFsync controls whether group commits fsync the WAL before acking
// (default true). Disabling it trades crash durability (data survives a
// process kill via the OS page cache, but not a machine crash) for write
// latency — the standard production knob, exposed as bqs-server -fsync.
func WithFsync(on bool) DiskOption {
	return func(d *Disk) { d.fsync = on }
}

// WithSnapshotThreshold sets the WAL size in bytes that triggers a
// compaction (default DefaultSnapshotThreshold). Smaller thresholds mean
// shorter recovery replay at the cost of more frequent snapshot writes.
func WithSnapshotThreshold(bytes int64) DiskOption {
	return func(d *Disk) {
		if bytes > 0 {
			d.snapThreshold = bytes
		}
	}
}

// WithMetrics wires the engine into an obs.Registry: WAL appends,
// group-commit flushes and their batch sizes (records per fsync), bytes
// written, snapshot compactions, and recovery replay time. Instruments
// are get-or-create by name, so several stores in one process (one per
// replica) share the same series — the numbers are per process, like a
// real database's. A nil registry is a no-op.
func WithMetrics(reg *obs.Registry) DiskOption {
	return func(d *Disk) {
		if reg == nil {
			return
		}
		d.mAppends = reg.Counter("bqs_store_wal_appends_total")
		d.mFsyncs = reg.Counter("bqs_store_fsyncs_total")
		d.mWALBytes = reg.Counter("bqs_store_wal_bytes_total")
		d.mBatch = reg.Histogram("bqs_store_fsync_batch_size", obs.SizeBuckets)
		d.mSnapshots = reg.Counter("bqs_store_snapshots_total")
		d.mRecovery = reg.Histogram("bqs_store_recovery_seconds", obs.DurationBuckets)
	}
}

// WithCommitLinger sets the group-commit window (default
// DefaultCommitLinger; 0 disables it — every batch flushes the moment
// the flusher is free). The linger only applies while fsync is enabled:
// without the fsync there is no per-flush floor worth amortizing.
func WithCommitLinger(window time.Duration) DiskOption {
	return func(d *Disk) {
		if window >= 0 {
			d.linger = window
		}
	}
}

// RecoveryStats describes what Open (or Reopen) reconstructed: how much
// state came from the snapshot, how much from replaying the WAL tail,
// how many torn or corrupt trailing bytes were truncated away, and how
// long the whole recovery took — the numbers behind the recovery-time
// vs log-length measurements in EXPERIMENTS.md.
type RecoveryStats struct {
	SnapshotRecords int
	WALRecords      int
	WALBytes        int64
	TruncatedBytes  int64
	Keys            int
	Elapsed         time.Duration
}

// String renders the stats in the one-line form bqs-server logs at
// startup.
func (rs RecoveryStats) String() string {
	return fmt.Sprintf("%d keys (%d snapshot + %d wal records, %dB wal, %dB torn) in %v",
		rs.Keys, rs.SnapshotRecords, rs.WALRecords, rs.WALBytes, rs.TruncatedBytes, rs.Elapsed)
}

// Disk is the durable engine: current state in memory, every applied
// write appended to a CRC-checksummed WAL before it is acknowledged,
// fsyncs batched by group commit (concurrent Applies that arrive while a
// flush is in progress share the next one — one fsync amortized across
// the whole flush window), and a periodic snapshot + log truncation
// keeping recovery replay bounded. All file writes happen on a single
// flusher goroutine, so the WAL is strictly append-ordered.
type Disk struct {
	dir           string
	fsync         bool
	snapThreshold int64
	linger        time.Duration // group-commit window; only applies with fsync

	mu       sync.Mutex
	cond     *sync.Cond // signalled when the flusher goes idle
	mem      map[string]Record
	wal      *os.File
	walSize  int64
	pending  []byte       // encoded records awaiting write+fsync
	waiters  []chan error // one per Apply in the pending batch
	flushing bool         // a flusher goroutine owns the files
	closed   bool

	recovered RecoveryStats
	flushes   int64
	snapshots int64

	// Telemetry instruments from WithMetrics; nil (no-op) by default.
	mAppends   *obs.Counter
	mFsyncs    *obs.Counter
	mWALBytes  *obs.Counter
	mBatch     *obs.Histogram
	mSnapshots *obs.Counter
	mRecovery  *obs.Histogram
}

// Open opens (or creates) a durable store in dir, running recovery:
// load the snapshot if one exists, replay the WAL tail over it with
// last-writer-wins merge, and truncate any torn or corrupt suffix left
// by a crash mid-append. The directory must be private to this store.
func Open(dir string, opts ...DiskOption) (*Disk, error) {
	d := &Disk{dir: dir, fsync: true, snapThreshold: DefaultSnapshotThreshold, linger: DefaultCommitLinger}
	d.cond = sync.NewCond(&d.mu)
	for _, opt := range opts {
		opt(d)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := d.recover(); err != nil {
		return nil, err
	}
	return d, nil
}

// recover rebuilds mem from snapshot + WAL and leaves the WAL open for
// appending, truncated past the last intact record. Callers hold no
// locks (Open) or guarantee exclusivity (Reopen after the flusher has
// drained).
func (d *Disk) recover() error {
	start := time.Now()
	stats := RecoveryStats{}
	mem := make(map[string]Record)
	merge := func(rec Record) {
		if cur, ok := mem[rec.Key]; !ok || rec.After(cur) {
			mem[rec.Key] = rec
		}
	}

	snap, err := os.ReadFile(filepath.Join(d.dir, snapName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		// First open, or no compaction has happened yet.
	case err != nil:
		return fmt.Errorf("store: snapshot: %w", err)
	default:
		// A snapshot is written atomically, so unlike the WAL it has no
		// legitimate torn tail: any flaw is real corruption, and silently
		// dropping a prefix of the state would be worse than failing loud.
		n := 0
		if _, serr := scanRecords(snap, func(rec Record) { merge(rec); n++ }); serr != nil {
			return fmt.Errorf("store: corrupt snapshot: %w", serr)
		}
		stats.SnapshotRecords = n
	}

	walPath := filepath.Join(d.dir, walName)
	wal, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	buf, err := os.ReadFile(walPath)
	if err != nil {
		wal.Close()
		return fmt.Errorf("store: %w", err)
	}
	good, scanErr := scanRecords(buf, func(rec Record) { merge(rec); stats.WALRecords++ })
	if scanErr != nil {
		// Torn or corrupt tail: recover the consistent prefix and drop the
		// rest, so the next append starts at a clean record boundary.
		stats.TruncatedBytes = int64(len(buf)) - good
		if err := wal.Truncate(good); err != nil {
			wal.Close()
			return fmt.Errorf("store: truncating torn wal tail: %w", err)
		}
	}
	if _, err := wal.Seek(good, 0); err != nil {
		wal.Close()
		return fmt.Errorf("store: %w", err)
	}
	stats.WALBytes = good
	stats.Keys = len(mem)
	stats.Elapsed = time.Since(start)

	d.mem = mem
	d.wal = wal
	d.walSize = good
	d.recovered = stats
	d.mRecovery.ObserveDuration(stats.Elapsed)
	return nil
}

// Recovered returns what the most recent Open or Reopen reconstructed.
func (d *Disk) Recovered() RecoveryStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.recovered
}

// Flushes returns how many group-commit batches have been written (one
// fsync each when fsync is enabled) — compare against the number of
// Applies to see group commit amortizing.
func (d *Disk) Flushes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.flushes
}

// Snapshots returns how many compactions have run.
func (d *Disk) Snapshots() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapshots
}

// WALSize returns the current byte length of the log.
func (d *Disk) WALSize() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.walSize
}

// Get returns the current record for key. Reads are served from memory
// and never wait on the log.
func (d *Disk) Get(key string) (Record, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec, ok := d.mem[key]
	return rec, ok
}

// Range calls fn for every stored record, in key order, until fn
// returns false. The records are captured under the lock and delivered
// outside it, so fn may call back into the store.
func (d *Disk) Range(fn func(Record) bool) {
	d.mu.Lock()
	recs := make([]Record, 0, len(d.mem))
	for _, rec := range d.mem {
		recs = append(recs, rec)
	}
	d.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	for _, rec := range recs {
		if !fn(rec) {
			return
		}
	}
}

// Apply persists rec: merge into memory, append to the pending WAL
// batch, and wait for the group commit that carries it. The first Apply
// into an idle store becomes the flusher; everything arriving while a
// write+fsync is in flight shares the next one — that is the group
// commit window, and with a batching Session upstream it is what keeps
// durable throughput within a small factor of the in-memory engine.
func (d *Disk) Apply(rec Record) error {
	ch := make(chan error, 1)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	if cur, ok := d.mem[rec.Key]; !ok || rec.After(cur) {
		d.mem[rec.Key] = rec
	}
	var err error
	if d.pending, err = AppendRecord(d.pending, rec); err != nil {
		d.mu.Unlock()
		return err
	}
	d.waiters = append(d.waiters, ch)
	d.mAppends.Inc()
	if !d.flushing {
		d.flushing = true
		go d.flushLoop()
	}
	d.mu.Unlock()
	return <-ch
}

// flushLoop is the single goroutine with file access while it runs: it
// drains pending batches (write + one fsync each), compacts when the
// WAL passes the threshold, and exits when nothing is pending. Every
// waiter of a taken batch is always answered, success or not.
func (d *Disk) flushLoop() {
	d.mu.Lock()
	for {
		if d.walSize >= d.snapThreshold && !d.closed {
			d.compactLocked()
			continue
		}
		if d.fsync && d.linger > 0 && !d.closed && len(d.waiters) > 0 {
			// Group-commit window: hold the flush open so concurrent
			// Applies land in this batch instead of each paying their own
			// fsync. Skipped on close so shutdown drains promptly.
			d.mu.Unlock()
			time.Sleep(d.linger)
			d.mu.Lock()
		}
		buf, waiters := d.pending, d.waiters
		d.pending, d.waiters = nil, nil
		if len(waiters) == 0 {
			d.flushing = false
			d.cond.Broadcast()
			d.mu.Unlock()
			return
		}
		if d.closed {
			for _, ch := range waiters {
				ch <- ErrClosed
			}
			continue
		}
		wal := d.wal
		d.mu.Unlock()
		_, err := wal.Write(buf)
		if err == nil && d.fsync {
			err = wal.Sync()
		}
		for _, ch := range waiters {
			ch <- err
		}
		if err == nil {
			if d.fsync {
				d.mFsyncs.Inc()
			}
			d.mBatch.Observe(float64(len(waiters)))
			d.mWALBytes.Add(int64(len(buf)))
		}
		d.mu.Lock()
		d.flushes++
		if err == nil {
			d.walSize += int64(len(buf))
		}
	}
}

// compactLocked writes a snapshot of the current state and truncates the
// WAL. Called with mu held by the goroutine owning the files (the
// flusher, or Snapshot after claiming); the lock is dropped around the
// file IO and retaken before returning. A failed compaction leaves the
// WAL alone — the store keeps working, just with a longer log.
func (d *Disk) compactLocked() {
	buf := make([]byte, 0, 64+32*len(d.mem))
	for _, rec := range d.mem {
		// Records in mem round-tripped AppendRecord once already (or came
		// from a decoded file), so re-encoding cannot fail.
		buf, _ = AppendRecord(buf, rec)
	}
	wal := d.wal
	d.mu.Unlock()
	err := func() error {
		tmp := filepath.Join(d.dir, snapTmpName)
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if _, err = f.Write(buf); err == nil {
			err = f.Sync()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if err := os.Rename(tmp, filepath.Join(d.dir, snapName)); err != nil {
			return err
		}
		// A crash between the rename above and the truncate below leaves
		// the old records both in the snapshot and in the WAL; recovery's
		// last-writer-wins merge makes the duplication harmless.
		if err := wal.Truncate(0); err != nil {
			return err
		}
		if _, err := wal.Seek(0, 0); err != nil {
			return err
		}
		return wal.Sync()
	}()
	d.mu.Lock()
	if err == nil {
		d.walSize = 0
		d.snapshots++
		d.mSnapshots.Inc()
	}
}

// Snapshot forces a compaction, waiting for any in-flight group commit
// first.
func (d *Disk) Snapshot() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.claimFilesLocked(); err != nil {
		return err
	}
	d.compactLocked()
	d.releaseFilesLocked()
	return nil
}

// claimFilesLocked waits until no flusher owns the files and takes
// ownership (by setting flushing), failing if the store closes while
// waiting.
func (d *Disk) claimFilesLocked() error {
	for d.flushing && !d.closed {
		d.cond.Wait()
	}
	if d.closed {
		return ErrClosed
	}
	d.flushing = true
	return nil
}

// releaseFilesLocked hands file ownership back: if Applies queued up
// while the caller held the files, a fresh flusher drains them,
// otherwise the store goes idle.
func (d *Disk) releaseFilesLocked() {
	if len(d.waiters) > 0 && !d.closed {
		go d.flushLoop()
		return
	}
	d.flushing = false
	d.cond.Broadcast()
	if d.closed {
		for _, ch := range d.waiters {
			ch <- ErrClosed
		}
		d.pending, d.waiters = nil, nil
	}
}

// Reopen is the crash-recovery boundary: close the files and run the
// same recovery a fresh process would, keeping exactly what was durable.
// In-flight group commits are cut off with ErrClosed — their writes were
// acked to no one, so losing them is the torn-tail case recovery is
// built for. The engine's configuration (fsync, threshold) carries over.
func (d *Disk) Reopen() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.claimFilesLocked(); err != nil {
		return err
	}
	// Cut off queued Applies: a restart loses what was not yet committed.
	for _, ch := range d.waiters {
		ch <- ErrClosed
	}
	d.pending, d.waiters = nil, nil
	d.wal.Close()
	err := d.recover()
	if err != nil {
		// The store is unusable without its files; mark it closed so
		// Applies fail fast rather than queueing forever.
		d.closed = true
	}
	d.releaseFilesLocked()
	return err
}

// Close flushes nothing extra (every acked Apply is already on disk to
// the configured standard), cuts off queued Applies with ErrClosed, and
// closes the WAL.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	for d.flushing {
		d.cond.Wait()
	}
	d.closed = true
	for _, ch := range d.waiters {
		ch <- ErrClosed
	}
	d.pending, d.waiters = nil, nil
	d.cond.Broadcast()
	return d.wal.Close()
}
