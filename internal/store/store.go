// Package store is the durability seam behind sim.Server: a pluggable
// Store holds the replica's applied writes, so what survives a server
// restart is a property of the chosen engine rather than of the protocol
// code. The paper's availability model (Definition 3.10, Propositions
// 4.3-4.5) is about servers that crash and RECOVER; with the seed's bare
// in-memory map a "recovered" server came back amnesiac, safe only
// because the [MR98a] protocol re-vouches timestamps on every read. This
// package makes recovery real: Mem keeps the map semantics (state dies
// with the process, the zero-cost default), and Disk is a durable engine
// — an append-only, CRC-checksummed write-ahead log with group-commit
// fsync batching, periodic snapshots with log truncation, and a recovery
// path that replays snapshot + log tail, tolerating a torn final record.
//
// The unit of storage is a Record: one applied write of the keyed object
// space, carrying (key, value, timestamp, writerID, signature). Apply is
// last-writer-wins by timestamp — exactly the register merge rule the
// protocol runs — so replaying any superset of the log in any order
// converges to the same state, which is what makes the recovery path
// (snapshot possibly newer than the log tail, duplicated records after a
// crashed compaction) correct without coordination.
package store

import (
	"errors"
	"sort"
	"sync"
)

// Record is one applied write: the durable form of a key's timestamped
// register value. Seq and Writer are the [MR98a] timestamp (lexicographic
// order on the pair); Sig carries the self-verifying signature when the
// dissemination protocol's authenticated values are in use (empty for the
// masking protocol, whose values are vouched by quorum intersection
// instead).
type Record struct {
	Key    string
	Value  string
	Seq    int64
	Writer int64
	Sig    []byte
}

// After reports whether r's timestamp is strictly newer than u's —
// lexicographic on (Seq, Writer), the protocol's write order.
func (r Record) After(u Record) bool {
	if r.Seq != u.Seq {
		return r.Seq > u.Seq
	}
	return r.Writer > u.Writer
}

// ErrClosed is returned by operations on a closed store, and handed to
// writers whose group commit was cut off by Close or Reopen — to the
// server that means "do not ack", which the protocol reads as
// unresponsiveness, the correct signal for a write whose durability is
// unknown.
var ErrClosed = errors.New("store: closed")

// Store is what sim.Server needs from a storage engine. Implementations
// must be safe for concurrent use: Apply is called from concurrent
// request handlers, Get and Range from reads and recovery.
//
// Apply persists a record with last-writer-wins timestamp merge and
// returns only once the record is durable to the engine's standard (a
// map update for Mem, a group-committed log append for Disk) — the
// server acks the write after, never before. Snapshot forces a
// compaction (a no-op for engines without a log). Reopen is the
// crash-recovery boundary: it drops every process-local structure and
// rebuilds state exactly as a fresh process would, so a restarted server
// keeps what the engine made durable and loses what it did not. Close
// releases resources; a closed store refuses further operations.
type Store interface {
	Get(key string) (Record, bool)
	Apply(rec Record) error
	Range(fn func(Record) bool)
	Snapshot() error
	Reopen() error
	Close() error
}

// Mem is the in-memory engine: the seed's bare map behind the Store
// interface. Nothing is durable — Reopen, the crash-recovery boundary,
// wipes it — which makes Mem the explicit form of the amnesiac recovery
// the churn engine had before this package existed.
type Mem struct {
	mu     sync.RWMutex
	m      map[string]Record
	closed bool
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{m: make(map[string]Record)}
}

// Get returns the current record for key.
func (s *Mem) Get(key string) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.m[key]
	return rec, ok
}

// Apply merges rec by timestamp: the stored record only changes when rec
// is strictly newer.
func (s *Mem) Apply(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if cur, ok := s.m[rec.Key]; !ok || rec.After(cur) {
		s.m[rec.Key] = rec
	}
	return nil
}

// Range calls fn for every stored record, in key order, stopping early
// when fn returns false. Key order makes iteration deterministic, which
// recovery-comparison tests rely on.
func (s *Mem) Range(fn func(Record) bool) {
	s.mu.RLock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	recs := make([]Record, len(keys))
	for i, k := range keys {
		recs[i] = s.m[k]
	}
	s.mu.RUnlock()
	for _, rec := range recs {
		if !fn(rec) {
			return
		}
	}
}

// Snapshot is a no-op: the map has no log to compact.
func (s *Mem) Snapshot() error { return nil }

// Reopen simulates a process restart: memory is lost, so the store comes
// back empty.
func (s *Mem) Reopen() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.m = make(map[string]Record)
	return nil
}

// Close marks the store closed; further Applies fail with ErrClosed.
func (s *Mem) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
