package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// WAL and snapshot files are a sequence of framed records:
//
//	record  := size:u32 crc:u32 payload
//	payload := keylen:u16 key vallen:u32 value seq:i64 writer:i64 siglen:u16 sig
//
// size is the payload length and crc is the CRC-32C (Castagnoli) of the
// payload, so a torn write — a crash mid-append leaves a partial record
// at the tail — is detected either by the size outrunning the file or by
// the checksum failing, and recovery truncates back to the last intact
// record. All integers are big-endian, matching the wire codec's
// convention.
const (
	recordHeaderLen = 4 + 4 // size + crc

	// MaxKeyLen and MaxValueLen bound a record's fields, mirroring the
	// wire codec's limits so anything that travelled a frame can be
	// logged; MaxSigLen bounds the signature field. A size field past
	// MaxPayload can only be corruption and stops recovery without
	// attempting the allocation.
	MaxKeyLen   = 1 << 12
	MaxValueLen = 1 << 16
	MaxSigLen   = 1 << 10

	payloadOverhead = 2 + 4 + 8 + 8 + 2 // keylen + vallen + seq + writer + siglen

	// MaxPayload is the largest well-formed record payload.
	MaxPayload = payloadOverhead + MaxKeyLen + MaxValueLen + MaxSigLen
)

// castagnoli is the CRC-32C table; crc32.MakeTable memoizes it globally.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord appends the framed form of rec to dst and returns the
// extended slice, rejecting oversized fields (the encode-side mirror of
// DecodeRecord's checks, so nothing unreadable is ever written).
func AppendRecord(dst []byte, rec Record) ([]byte, error) {
	if len(rec.Key) > MaxKeyLen {
		return dst, fmt.Errorf("store: key of %d bytes exceeds %d", len(rec.Key), MaxKeyLen)
	}
	if len(rec.Value) > MaxValueLen {
		return dst, fmt.Errorf("store: value of %d bytes exceeds %d", len(rec.Value), MaxValueLen)
	}
	if len(rec.Sig) > MaxSigLen {
		return dst, fmt.Errorf("store: signature of %d bytes exceeds %d", len(rec.Sig), MaxSigLen)
	}
	size := payloadOverhead + len(rec.Key) + len(rec.Value) + len(rec.Sig)
	dst = binary.BigEndian.AppendUint32(dst, uint32(size))
	crcAt := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, 0) // checksum patched below
	payloadAt := len(dst)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(rec.Key)))
	dst = append(dst, rec.Key...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(rec.Value)))
	dst = append(dst, rec.Value...)
	dst = binary.BigEndian.AppendUint64(dst, uint64(rec.Seq))
	dst = binary.BigEndian.AppendUint64(dst, uint64(rec.Writer))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(rec.Sig)))
	dst = append(dst, rec.Sig...)
	crc := crc32.Checksum(dst[payloadAt:], castagnoli)
	binary.BigEndian.PutUint32(dst[crcAt:], crc)
	return dst, nil
}

// DecodeRecord parses one record payload (the bytes after the
// size+crc header, which the caller has already length- and
// checksum-verified against the frame). Every length field is
// bounds-checked against both its limit and the remaining payload, and
// trailing garbage after the signature is rejected, so a payload either
// decodes to exactly one well-formed record or errors.
func DecodeRecord(p []byte) (Record, error) {
	var rec Record
	if len(p) < payloadOverhead {
		return rec, fmt.Errorf("store: record payload of %d bytes, need at least %d", len(p), payloadOverhead)
	}
	keyLen := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	if keyLen > MaxKeyLen {
		return rec, fmt.Errorf("store: key length %d exceeds %d", keyLen, MaxKeyLen)
	}
	if len(p) < keyLen+4 {
		return rec, fmt.Errorf("store: record truncated inside key")
	}
	rec.Key = string(p[:keyLen])
	p = p[keyLen:]
	valLen := int(binary.BigEndian.Uint32(p))
	p = p[4:]
	if valLen > MaxValueLen {
		return rec, fmt.Errorf("store: value length %d exceeds %d", valLen, MaxValueLen)
	}
	if len(p) < valLen+8+8+2 {
		return rec, fmt.Errorf("store: record truncated inside value")
	}
	rec.Value = string(p[:valLen])
	p = p[valLen:]
	rec.Seq = int64(binary.BigEndian.Uint64(p))
	rec.Writer = int64(binary.BigEndian.Uint64(p[8:]))
	sigLen := int(binary.BigEndian.Uint16(p[16:]))
	p = p[18:]
	if sigLen > MaxSigLen {
		return rec, fmt.Errorf("store: signature length %d exceeds %d", sigLen, MaxSigLen)
	}
	if len(p) != sigLen {
		return rec, fmt.Errorf("store: record has %d signature bytes, header says %d", len(p), sigLen)
	}
	if sigLen > 0 {
		rec.Sig = append([]byte(nil), p...)
	}
	return rec, nil
}

// scanRecords walks the framed records in buf, calling fn for each
// intact one, and returns the byte offset of the first flaw — a size
// field outrunning the buffer or the limits, a checksum mismatch, or a
// payload that does not decode — along with a nil error when the whole
// buffer was intact, or a descriptive error for the flaw. The offset is
// the consistent prefix: everything before it replayed, everything from
// it on is a torn or corrupt tail the caller truncates away.
func scanRecords(buf []byte, fn func(Record)) (int64, error) {
	off := 0
	for off < len(buf) {
		rest := buf[off:]
		if len(rest) < recordHeaderLen {
			return int64(off), fmt.Errorf("store: torn record header (%d trailing bytes)", len(rest))
		}
		size := int(binary.BigEndian.Uint32(rest))
		if size < payloadOverhead || size > MaxPayload {
			return int64(off), fmt.Errorf("store: record size %d outside [%d,%d]", size, payloadOverhead, MaxPayload)
		}
		if len(rest) < recordHeaderLen+size {
			return int64(off), fmt.Errorf("store: torn record (%d of %d payload bytes)", len(rest)-recordHeaderLen, size)
		}
		payload := rest[recordHeaderLen : recordHeaderLen+size]
		if want, got := binary.BigEndian.Uint32(rest[4:]), crc32.Checksum(payload, castagnoli); want != got {
			return int64(off), fmt.Errorf("store: record checksum %#x, want %#x", got, want)
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			return int64(off), err
		}
		fn(rec)
		off += recordHeaderLen + size
	}
	return int64(off), nil
}
