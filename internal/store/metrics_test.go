package store

import (
	"testing"

	"bqs/internal/obs"
)

// TestDiskMetrics drives the durable engine with a registry attached and
// pins every series the telemetry plane exposes for it: WAL appends and
// bytes, fsync batches (count and records-per-fsync distribution),
// snapshots, and a recovery-time observation per Open/Reopen.
func TestDiskMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	d, err := Open(t.TempDir(), WithFsync(false), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	recovery := reg.Histogram("bqs_store_recovery_seconds", obs.DurationBuckets)
	if recovery.Count() != 1 {
		t.Fatalf("recovery observations after Open = %d, want 1", recovery.Count())
	}

	const records = 200
	for i := 0; i < records; i++ {
		mustApply(t, d, Record{Key: "k", Value: "v", Seq: int64(i), Writer: 0})
	}

	if v, _ := reg.Value("bqs_store_wal_appends_total"); v != records {
		t.Fatalf("bqs_store_wal_appends_total = %v, want %d", v, records)
	}
	if v, _ := reg.Value("bqs_store_wal_bytes_total"); v <= 0 {
		t.Fatalf("bqs_store_wal_bytes_total = %v, want > 0", v)
	}
	// fsync=false: flushes happen, fsyncs do not — the two series must
	// not be conflated.
	if v, _ := reg.Value("bqs_store_fsyncs_total"); v != 0 {
		t.Fatalf("bqs_store_fsyncs_total = %v under fsync=false, want 0", v)
	}
	batch := reg.Histogram("bqs_store_fsync_batch_size", obs.SizeBuckets)
	if batch.Count() != d.Flushes() {
		t.Fatalf("batch-size observations = %d, want one per flush (%d)", batch.Count(), d.Flushes())
	}
	// Every appended record sits in exactly one group-commit batch.
	if int64(batch.Sum()) != records {
		t.Fatalf("batch-size sum = %v, want %d records total", batch.Sum(), records)
	}

	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Value("bqs_store_snapshots_total"); v != 1 {
		t.Fatalf("bqs_store_snapshots_total = %v, want 1", v)
	}

	if err := d.Reopen(); err != nil {
		t.Fatal(err)
	}
	if recovery.Count() != 2 {
		t.Fatalf("recovery observations after Reopen = %d, want 2", recovery.Count())
	}

	// With fsync on, each flush counts one fsync.
	reg2 := obs.NewRegistry()
	d2, err := Open(t.TempDir(), WithFsync(true), WithMetrics(reg2))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for i := 0; i < 10; i++ {
		mustApply(t, d2, Record{Key: "k", Value: "v", Seq: int64(i)})
	}
	fsyncs, _ := reg2.Value("bqs_store_fsyncs_total")
	if fsyncs != float64(d2.Flushes()) {
		t.Fatalf("bqs_store_fsyncs_total = %v, want one per flush (%d)", fsyncs, d2.Flushes())
	}
	if fsyncs == 0 {
		t.Fatal("no fsyncs recorded under fsync=true")
	}
}

// TestDiskMetricsShared pins the get-or-create sharing the binaries rely
// on: many stores behind one registry fold into a single series set, so
// a 25-replica daemon exposes one WAL-append counter, not 25.
func TestDiskMetricsShared(t *testing.T) {
	reg := obs.NewRegistry()
	for i := 0; i < 3; i++ {
		d, err := Open(t.TempDir(), WithFsync(false), WithMetrics(reg))
		if err != nil {
			t.Fatal(err)
		}
		mustApply(t, d, Record{Key: "k", Value: "v", Seq: 1})
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := reg.Value("bqs_store_wal_appends_total"); v != 3 {
		t.Fatalf("shared bqs_store_wal_appends_total = %v, want 3 (one per store)", v)
	}
	if h := reg.Histogram("bqs_store_recovery_seconds", obs.DurationBuckets); h.Count() != 3 {
		t.Fatalf("recovery observations = %d, want 3", h.Count())
	}
}
