package store

import (
	"bytes"
	"strings"
	"testing"
)

var recordCases = []Record{
	{Key: "x", Value: "hello", Seq: 1, Writer: 0},
	{Key: "obj/17", Value: "", Seq: 42, Writer: 3},
	{Key: "", Value: "empty key is legal at this layer", Seq: -1, Writer: -1},
	{Key: "signed", Value: "v", Seq: 7, Writer: 2, Sig: []byte{0xde, 0xad, 0xbe, 0xef}},
	{Key: strings.Repeat("k", MaxKeyLen), Value: strings.Repeat("v", MaxValueLen), Seq: 1 << 60, Writer: 99, Sig: bytes.Repeat([]byte{1}, MaxSigLen)},
}

func TestRecordRoundTrip(t *testing.T) {
	for _, rec := range recordCases {
		buf, err := AppendRecord(nil, rec)
		if err != nil {
			t.Fatalf("AppendRecord(%q): %v", rec.Key, err)
		}
		var got []Record
		n, err := scanRecords(buf, func(r Record) { got = append(got, r) })
		if err != nil {
			t.Fatalf("scanRecords(%q): %v", rec.Key, err)
		}
		if n != int64(len(buf)) {
			t.Fatalf("scanRecords(%q) consumed %d of %d bytes", rec.Key, n, len(buf))
		}
		if len(got) != 1 || !recordsEqual(got[0], rec) {
			t.Fatalf("round trip of %+v: got %+v", rec, got)
		}
	}
}

func TestAppendRecordConcatenation(t *testing.T) {
	var buf []byte
	var err error
	for _, rec := range recordCases {
		if buf, err = AppendRecord(buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	var got []Record
	if _, err := scanRecords(buf, func(r Record) { got = append(got, r) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recordCases) {
		t.Fatalf("decoded %d records, wrote %d", len(got), len(recordCases))
	}
	for i, rec := range recordCases {
		if !recordsEqual(got[i], rec) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], rec)
		}
	}
}

func TestAppendRecordRejectsOversized(t *testing.T) {
	for _, rec := range []Record{
		{Key: strings.Repeat("k", MaxKeyLen+1)},
		{Value: strings.Repeat("v", MaxValueLen+1)},
		{Sig: make([]byte, MaxSigLen+1)},
	} {
		if _, err := AppendRecord(nil, rec); err == nil {
			t.Fatalf("AppendRecord accepted oversized record %+v", rec)
		}
	}
}

// TestScanRecordsFlaws feeds scanRecords every corruption class recovery
// must handle and asserts it stops exactly at the flaw with the intact
// prefix replayed — the contract the Disk engine's truncation relies on.
func TestScanRecordsFlaws(t *testing.T) {
	intact, err := AppendRecord(nil, Record{Key: "a", Value: "1", Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	second, err := AppendRecord(nil, Record{Key: "b", Value: "2", Seq: 2})
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(buf []byte, at int) []byte {
		out := append([]byte(nil), buf...)
		out[at] ^= 0xff
		return out
	}
	cases := []struct {
		name string
		buf  []byte
	}{
		{"torn header", append(append([]byte(nil), intact...), second[:3]...)},
		{"torn payload", append(append([]byte(nil), intact...), second[:len(second)-2]...)},
		{"corrupt crc", append(corrupt(intact, recordHeaderLen+1), second...)},
		{"absurd size", append(append([]byte(nil), 0xff, 0xff, 0xff, 0xff), intact...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var got []Record
			off, err := scanRecords(tc.buf, func(r Record) { got = append(got, r) })
			if err == nil {
				t.Fatal("scanRecords accepted corrupt input")
			}
			wantOff, wantRecs := int64(len(intact)), 1
			if tc.name == "corrupt crc" || tc.name == "absurd size" {
				wantOff, wantRecs = 0, 0
			}
			if off != wantOff || len(got) != wantRecs {
				t.Fatalf("recovered %d records to offset %d, want %d to %d (%v)", len(got), off, wantRecs, wantOff, err)
			}
		})
	}
}

func FuzzDecodeRecord(f *testing.F) {
	for _, rec := range recordCases {
		buf, err := AppendRecord(nil, rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[recordHeaderLen:]) // the payload DecodeRecord sees
		f.Add(buf)                   // framed bytes as raw payload: torn-write shape
		f.Add(buf[:len(buf)-1])      // torn tail
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := DecodeRecord(payload)
		if err != nil {
			return
		}
		buf, err := AppendRecord(nil, rec)
		if err != nil {
			t.Fatalf("decoded record fails to re-encode: %v", err)
		}
		if !bytes.Equal(buf[recordHeaderLen:], payload) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", buf[recordHeaderLen:], payload)
		}
	})
}

// FuzzScanRecords asserts the recovery scanner never panics and never
// claims an offset outside the buffer, whatever bytes a crash left
// behind.
func FuzzScanRecords(f *testing.F) {
	var all []byte
	for _, rec := range recordCases {
		buf, err := AppendRecord(nil, rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)-3])
		all = append(all, buf...)
	}
	f.Add(all)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, buf []byte) {
		off, err := scanRecords(buf, func(Record) {})
		if off < 0 || off > int64(len(buf)) {
			t.Fatalf("offset %d outside buffer of %d bytes", off, len(buf))
		}
		if err == nil && off != int64(len(buf)) {
			t.Fatalf("clean scan stopped at %d of %d bytes", off, len(buf))
		}
	})
}

func recordsEqual(a, b Record) bool {
	return a.Key == b.Key && a.Value == b.Value && a.Seq == b.Seq &&
		a.Writer == b.Writer && bytes.Equal(a.Sig, b.Sig)
}
