package store

import (
	"testing"

	"bqs/internal/doccheck"
)

// TestExportedAPIDocumented is the revive-style comment check of the
// godoc discipline: every exported symbol of the store package must
// carry a doc comment.
func TestExportedAPIDocumented(t *testing.T) {
	missing, err := doccheck.Missing(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range missing {
		t.Errorf("exported %s has no doc comment", name)
	}
}
