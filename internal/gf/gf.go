// Package gf implements arithmetic in finite (Galois) fields GF(p^r) for
// small prime powers. The boostFPP construction (Section 6 of the paper)
// composes a finite projective plane of order q over a threshold system;
// projective planes are known to exist for every prime power q, and their
// standard construction needs the field GF(q).
//
// Elements are represented as integers in [0, q): the base-p digits of an
// element are the coefficients of its polynomial representative modulo a
// fixed irreducible polynomial of degree r. Addition and multiplication are
// table-driven, which is exact and fast at the field sizes quorum systems
// use (q ≤ a few dozen).
package gf

import (
	"errors"
	"fmt"
)

// ErrNotPrimePower is returned by New when q cannot be written as p^r.
var ErrNotPrimePower = errors.New("gf: order is not a prime power")

// ErrDivideByZero is returned by Inv and Div for a zero divisor.
var ErrDivideByZero = errors.New("gf: division by zero")

// Field is GF(p^r) with table-driven arithmetic. Create with New.
type Field struct {
	p, r, q int
	add     [][]int
	mul     [][]int
	inv     []int // inv[0] unused
}

// New constructs GF(q) for a prime power q = p^r, or returns
// ErrNotPrimePower.
func New(q int) (*Field, error) {
	p, r, ok := factorPrimePower(q)
	if !ok {
		return nil, fmt.Errorf("gf: q=%d: %w", q, ErrNotPrimePower)
	}
	f := &Field{p: p, r: r, q: q}
	var irr []int
	if r > 1 {
		var err error
		irr, err = findIrreducible(p, r)
		if err != nil {
			return nil, err
		}
	}
	f.buildTables(irr)
	return f, nil
}

// Order returns q, Char returns p, Degree returns r.
func (f *Field) Order() int  { return f.q }
func (f *Field) Char() int   { return f.p }
func (f *Field) Degree() int { return f.r }

// Add returns a+b in the field.
func (f *Field) Add(a, b int) int { return f.add[a][b] }

// Mul returns a·b in the field.
func (f *Field) Mul(a, b int) int { return f.mul[a][b] }

// Neg returns −a in the field.
func (f *Field) Neg(a int) int {
	// Find b with a+b=0; digits negate independently.
	digits := f.toPoly(a)
	for i, d := range digits {
		digits[i] = (f.p - d) % f.p
	}
	return f.fromPoly(digits)
}

// Sub returns a−b in the field.
func (f *Field) Sub(a, b int) int { return f.add[a][f.Neg(b)] }

// Inv returns the multiplicative inverse of a, or ErrDivideByZero if a=0.
func (f *Field) Inv(a int) (int, error) {
	if a == 0 {
		return 0, ErrDivideByZero
	}
	return f.inv[a], nil
}

// Div returns a/b, or ErrDivideByZero if b=0.
func (f *Field) Div(a, b int) (int, error) {
	bi, err := f.Inv(b)
	if err != nil {
		return 0, err
	}
	return f.mul[a][bi], nil
}

// Pow returns a^e for e ≥ 0 (a^0 = 1, including 0^0 = 1 by convention).
func (f *Field) Pow(a, e int) int {
	result := 1
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = f.mul[result][base]
		}
		base = f.mul[base][base]
		e >>= 1
	}
	return result
}

// toPoly expands an element into base-p digit coefficients (length r).
func (f *Field) toPoly(a int) []int {
	digits := make([]int, f.r)
	for i := 0; i < f.r; i++ {
		digits[i] = a % f.p
		a /= f.p
	}
	return digits
}

// fromPoly packs digit coefficients back into an element index.
func (f *Field) fromPoly(digits []int) int {
	a := 0
	for i := len(digits) - 1; i >= 0; i-- {
		a = a*f.p + digits[i]%f.p
	}
	return a
}

func (f *Field) buildTables(irr []int) {
	q := f.q
	f.add = make([][]int, q)
	f.mul = make([][]int, q)
	for a := 0; a < q; a++ {
		f.add[a] = make([]int, q)
		f.mul[a] = make([]int, q)
	}
	for a := 0; a < q; a++ {
		da := f.toPoly(a)
		for b := a; b < q; b++ {
			db := f.toPoly(b)
			// Addition: digit-wise mod p.
			sum := make([]int, f.r)
			for i := range sum {
				sum[i] = (da[i] + db[i]) % f.p
			}
			s := f.fromPoly(sum)
			f.add[a][b] = s
			f.add[b][a] = s
			// Multiplication: polynomial product reduced mod irr.
			prod := polyMul(da, db, f.p)
			prod = polyMod(prod, irr, f.p)
			m := f.fromPoly(prod)
			f.mul[a][b] = m
			f.mul[b][a] = m
		}
	}
	f.inv = make([]int, q)
	for a := 1; a < q; a++ {
		for b := 1; b < q; b++ {
			if f.mul[a][b] == 1 {
				f.inv[a] = b
				break
			}
		}
	}
}

// polyMul multiplies coefficient slices over GF(p).
func polyMul(a, b []int, p int) []int {
	out := make([]int, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] = (out[i+j] + ai*bj) % p
		}
	}
	return out
}

// polyMod reduces a modulo the monic polynomial m over GF(p). A nil or
// short modulus (degree < 1) leaves only the constant-degree digits, which
// happens exactly when r = 1 (no reduction needed beyond mod p).
func polyMod(a, m []int, p int) []int {
	if len(m) == 0 {
		return a
	}
	deg := len(m) - 1
	out := make([]int, len(a))
	copy(out, a)
	for i := len(out) - 1; i >= deg; i-- {
		c := out[i]
		if c == 0 {
			continue
		}
		// m is monic: subtract c·x^{i−deg}·m.
		for j := 0; j <= deg; j++ {
			out[i-deg+j] = ((out[i-deg+j]-c*m[j])%p + p*p) % p
		}
	}
	return out[:deg]
}

// findIrreducible searches monic irreducible polynomials of degree r over
// GF(p) by brute force, smallest encoding first (deterministic result).
func findIrreducible(p, r int) ([]int, error) {
	// Candidate encoded as digits of length r+1 with leading coeff 1.
	total := ipow(p, r)
	for enc := 0; enc < total; enc++ {
		cand := make([]int, r+1)
		e := enc
		for i := 0; i < r; i++ {
			cand[i] = e % p
			e /= p
		}
		cand[r] = 1
		if isIrreducible(cand, p) {
			return cand, nil
		}
	}
	return nil, fmt.Errorf("gf: no irreducible polynomial of degree %d over GF(%d)", r, p)
}

// isIrreducible tests a monic polynomial by trial division with every
// monic polynomial of degree 1..deg/2.
func isIrreducible(poly []int, p int) bool {
	deg := len(poly) - 1
	for d := 1; d <= deg/2; d++ {
		total := ipow(p, d)
		for enc := 0; enc < total; enc++ {
			div := make([]int, d+1)
			e := enc
			for i := 0; i < d; i++ {
				div[i] = e % p
				e /= p
			}
			div[d] = 1
			if polyDivides(div, poly, p) {
				return false
			}
		}
	}
	return true
}

// polyDivides reports whether monic d divides a over GF(p).
func polyDivides(d, a []int, p int) bool {
	rem := polyMod(a, d, p)
	for _, c := range rem {
		if c != 0 {
			return false
		}
	}
	return true
}

func factorPrimePower(q int) (p, r int, ok bool) {
	if q < 2 {
		return 0, 0, false
	}
	for p = 2; p*p <= q; p++ {
		if q%p == 0 {
			r = 0
			for x := q; x > 1; x /= p {
				if x%p != 0 {
					return 0, 0, false
				}
				r++
			}
			return p, r, true
		}
	}
	return q, 1, true // q itself prime
}

func ipow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}
