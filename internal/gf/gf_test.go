package gf

import (
	"errors"
	"testing"
	"testing/quick"
)

var testOrders = []int{2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27}

func TestNewRejectsNonPrimePowers(t *testing.T) {
	for _, q := range []int{0, 1, 6, 10, 12, 15, 18, 100} {
		if _, err := New(q); !errors.Is(err, ErrNotPrimePower) {
			t.Errorf("New(%d) err = %v, want ErrNotPrimePower", q, err)
		}
	}
}

func TestOrderCharDegree(t *testing.T) {
	cases := []struct{ q, p, r int }{
		{2, 2, 1}, {4, 2, 2}, {8, 2, 3}, {9, 3, 2}, {27, 3, 3}, {25, 5, 2}, {7, 7, 1},
	}
	for _, c := range cases {
		f, err := New(c.q)
		if err != nil {
			t.Fatalf("New(%d): %v", c.q, err)
		}
		if f.Order() != c.q || f.Char() != c.p || f.Degree() != c.r {
			t.Errorf("GF(%d): got (q,p,r)=(%d,%d,%d), want (%d,%d,%d)",
				c.q, f.Order(), f.Char(), f.Degree(), c.q, c.p, c.r)
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	for _, q := range testOrders {
		f, err := New(q)
		if err != nil {
			t.Fatalf("New(%d): %v", q, err)
		}
		t.Run("", func(t *testing.T) {
			checkAxioms(t, f)
		})
	}
}

func checkAxioms(t *testing.T, f *Field) {
	t.Helper()
	q := f.Order()
	for a := 0; a < q; a++ {
		// Identities.
		if f.Add(a, 0) != a {
			t.Fatalf("GF(%d): %d+0 = %d", q, a, f.Add(a, 0))
		}
		if f.Mul(a, 1) != a {
			t.Fatalf("GF(%d): %d·1 = %d", q, a, f.Mul(a, 1))
		}
		if f.Mul(a, 0) != 0 {
			t.Fatalf("GF(%d): %d·0 = %d", q, a, f.Mul(a, 0))
		}
		// Additive inverse.
		if f.Add(a, f.Neg(a)) != 0 {
			t.Fatalf("GF(%d): %d + (−%d) ≠ 0", q, a, a)
		}
		// Multiplicative inverse.
		if a != 0 {
			inv, err := f.Inv(a)
			if err != nil {
				t.Fatalf("GF(%d): Inv(%d): %v", q, a, err)
			}
			if f.Mul(a, inv) != 1 {
				t.Fatalf("GF(%d): %d·%d = %d, want 1", q, a, inv, f.Mul(a, inv))
			}
		}
	}
	for a := 0; a < q; a++ {
		for b := 0; b < q; b++ {
			if f.Add(a, b) != f.Add(b, a) {
				t.Fatalf("GF(%d): add not commutative at %d,%d", q, a, b)
			}
			if f.Mul(a, b) != f.Mul(b, a) {
				t.Fatalf("GF(%d): mul not commutative at %d,%d", q, a, b)
			}
			if f.Sub(f.Add(a, b), b) != a {
				t.Fatalf("GF(%d): (a+b)−b ≠ a at %d,%d", q, a, b)
			}
			for c := 0; c < q; c++ {
				if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
					t.Fatalf("GF(%d): add not associative", q)
				}
				if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
					t.Fatalf("GF(%d): mul not associative", q)
				}
				if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
					t.Fatalf("GF(%d): distributivity fails at %d,%d,%d", q, a, b, c)
				}
			}
		}
	}
}

func TestNoZeroDivisors(t *testing.T) {
	for _, q := range testOrders {
		f, _ := New(q)
		for a := 1; a < q; a++ {
			for b := 1; b < q; b++ {
				if f.Mul(a, b) == 0 {
					t.Fatalf("GF(%d): zero divisor %d·%d", q, a, b)
				}
			}
		}
	}
}

func TestDivErrors(t *testing.T) {
	f, _ := New(9)
	if _, err := f.Inv(0); !errors.Is(err, ErrDivideByZero) {
		t.Error("Inv(0) should fail")
	}
	if _, err := f.Div(3, 0); !errors.Is(err, ErrDivideByZero) {
		t.Error("Div(x,0) should fail")
	}
	got, err := f.Div(f.Mul(4, 5), 5)
	if err != nil || got != 4 {
		t.Errorf("Div((4·5),5) = %d, %v; want 4", got, err)
	}
}

func TestPow(t *testing.T) {
	for _, q := range []int{4, 5, 8, 9} {
		f, _ := New(q)
		for a := 0; a < q; a++ {
			if f.Pow(a, 0) != 1 {
				t.Errorf("GF(%d): %d^0 != 1", q, a)
			}
			if f.Pow(a, 1) != a {
				t.Errorf("GF(%d): %d^1 != %d", q, a, a)
			}
			// Lagrange: a^(q-1) = 1 for a != 0; a^q = a for all a.
			if a != 0 && f.Pow(a, q-1) != 1 {
				t.Errorf("GF(%d): %d^(q−1) = %d, want 1", q, a, f.Pow(a, q-1))
			}
			if f.Pow(a, q) != a {
				t.Errorf("GF(%d): %d^q = %d, want %d (Frobenius)", q, a, f.Pow(a, q), a)
			}
		}
	}
}

func TestMultiplicativeGroupCyclic(t *testing.T) {
	// GF(q)* is cyclic of order q−1: some generator must exist.
	for _, q := range []int{4, 8, 9, 16, 25} {
		f, _ := New(q)
		found := false
		for g := 1; g < q && !found; g++ {
			seen := make(map[int]bool, q-1)
			x := 1
			for i := 0; i < q-1; i++ {
				x = f.Mul(x, g)
				seen[x] = true
			}
			found = len(seen) == q-1
		}
		if !found {
			t.Errorf("GF(%d): no generator found", q)
		}
	}
}

func TestGF2Explicit(t *testing.T) {
	f, _ := New(2)
	if f.Add(1, 1) != 0 || f.Mul(1, 1) != 1 {
		t.Fatal("GF(2) tables wrong")
	}
}

func TestGF4Explicit(t *testing.T) {
	// GF(4) = {0,1,x,x+1} with x² = x+1 (irreducible x²+x+1).
	f, _ := New(4)
	// Element encoding: 2 = x, 3 = x+1. Characteristic 2: a+a = 0.
	for a := 0; a < 4; a++ {
		if f.Add(a, a) != 0 {
			t.Fatalf("GF(4): %d+%d != 0", a, a)
		}
	}
	// x·x must be x+1 or x... Whatever the modulus chosen, x² ∉ {0,1,x} ∪
	// consistency is already covered by axioms; check the specific modulus
	// x²+x+1 (the only irreducible quadratic over GF(2)).
	if f.Mul(2, 2) != 3 {
		t.Fatalf("GF(4): x² = %d, want 3 (x+1)", f.Mul(2, 2))
	}
}

func TestQuickAddMulClosure(t *testing.T) {
	f, _ := New(27)
	fn := func(a, b uint8) bool {
		x, y := int(a)%27, int(b)%27
		s, m := f.Add(x, y), f.Mul(x, y)
		return s >= 0 && s < 27 && m >= 0 && m < 27
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
