package systems

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"bqs/internal/bitset"
	"bqs/internal/core"
	"bqs/internal/measures"
)

func TestBoostFPPValidation(t *testing.T) {
	if _, err := NewBoostFPP(6, 1); err == nil {
		t.Error("non-prime-power order should fail")
	}
	if _, err := NewBoostFPP(3, -1); err == nil {
		t.Error("negative b should fail")
	}
	if _, err := NewBoostFPP(2, 1); err != nil {
		t.Errorf("boostFPP(2,1) rejected: %v", err)
	}
}

func TestBoostFPPProposition61Parameters(t *testing.T) {
	for _, c := range []struct{ q, b int }{{2, 1}, {2, 3}, {3, 2}, {3, 19}, {4, 5}} {
		s, err := NewBoostFPP(c.q, c.b)
		if err != nil {
			t.Fatal(err)
		}
		wantN := (4*c.b + 1) * (c.q*c.q + c.q + 1)
		if s.UniverseSize() != wantN {
			t.Errorf("q=%d b=%d: n = %d, want %d", c.q, c.b, s.UniverseSize(), wantN)
		}
		if s.MinQuorumSize() != (3*c.b+1)*(c.q+1) {
			t.Errorf("q=%d b=%d: c = %d", c.q, c.b, s.MinQuorumSize())
		}
		if s.MinIntersection() != 2*c.b+1 {
			t.Errorf("q=%d b=%d: IS = %d", c.q, c.b, s.MinIntersection())
		}
		if s.MinTransversal() != (c.b+1)*(c.q+1) {
			t.Errorf("q=%d b=%d: MT = %d", c.q, c.b, s.MinTransversal())
		}
		if s.MaskingBound() != c.b {
			t.Errorf("q=%d b=%d: masking bound = %d", c.q, c.b, s.MaskingBound())
		}
	}
}

func TestBoostFPPLoadProposition62(t *testing.T) {
	// L ≈ 3/(4q) and within a small constant of the √(2b/n) lower bound.
	for _, c := range []struct{ q, b int }{{3, 5}, {5, 10}, {7, 20}} {
		s, err := NewBoostFPP(c.q, c.b)
		if err != nil {
			t.Fatal(err)
		}
		load := s.Load()
		approx := 3.0 / (4 * float64(c.q))
		if math.Abs(load-approx)/approx > 0.35 {
			t.Errorf("q=%d b=%d: load %g not ≈ 3/4q = %g", c.q, c.b, load, approx)
		}
		lower := measures.GlobalLoadLowerBound(s.UniverseSize(), c.b)
		if load < lower-1e-9 {
			t.Errorf("q=%d b=%d: load below the Cor 4.2 bound (impossible)", c.q, c.b)
		}
		if load > 2.2*lower {
			// Prop 6.2: optimal ≈ 1/(√2 q), so ratio ≈ 3√2/4 ≈ 1.06.
			t.Errorf("q=%d b=%d: load %g not within ≈2× of bound %g", c.q, c.b, load, lower)
		}
	}
}

func TestBoostFPPSelectQuorum(t *testing.T) {
	s, err := NewBoostFPP(2, 1) // n = 5·7 = 35
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(30))
	// Kill one server in each of the first three modules: threshold 4-of-5
	// still survives per module.
	dead := bitset.FromSlice([]int{0, 5, 10})
	q, err := s.SelectQuorum(rng, dead)
	if err != nil {
		t.Fatal(err)
	}
	if q.Intersects(dead) {
		t.Fatal("quorum uses dead element")
	}
	if q.Count() != s.MinQuorumSize() {
		t.Errorf("quorum size %d, want %d", q.Count(), s.MinQuorumSize())
	}
	// Kill 2 of 5 in every module: every module dies (MT_thresh = b+1 = 2).
	deadAll := bitset.New(35)
	for m := 0; m < 7; m++ {
		deadAll.Add(m * 5)
		deadAll.Add(m*5 + 1)
	}
	if _, err := s.SelectQuorum(rng, deadAll); !errors.Is(err, core.ErrNoLiveQuorum) {
		t.Errorf("err = %v, want ErrNoLiveQuorum", err)
	}
}

func TestBoostFPPCrashExactAndBounds(t *testing.T) {
	s, err := NewBoostFPP(2, 2) // plane n=7 ≤ exact cap
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for _, p := range []float64{0.1, 0.2} {
		exact, err := s.CrashProbability(p)
		if err != nil {
			t.Fatal(err)
		}
		// Inequality (6): exact ≤ (q+1)·F_Thresh(p).
		if ub := s.CrashUpperBound(p); exact > ub+1e-12 {
			t.Errorf("p=%g: exact %g exceeds (q+1)·thresh bound %g", p, exact, ub)
		}
		// Monte Carlo agrees with the composed exact value.
		mc, err := measures.CrashProbabilityMC(s, p, 20000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mc.Estimate-exact) > 5*mc.StdErr+2e-3 {
			t.Errorf("p=%g: MC %g ± %g vs exact %g", p, mc.Estimate, mc.StdErr, exact)
		}
	}
	// Chernoff bound should dominate exact F_p for p < 1/4 and large b.
	big, err := NewBoostFPP(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.05, 0.1, 0.15} {
		exact, err := big.CrashProbability(p)
		if err != nil {
			t.Fatal(err)
		}
		if ch := big.ChernoffUpperBound(p); exact > ch+1e-9 {
			t.Errorf("p=%g: exact %g exceeds Chernoff bound %g", p, exact, ch)
		}
	}
}

func TestBoostFPPCrashExactCapError(t *testing.T) {
	s, err := NewBoostFPP(5, 1) // plane has 31 points > 24
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CrashProbability(0.1); !errors.Is(err, measures.ErrUniverseTooLarge) {
		t.Errorf("err = %v, want ErrUniverseTooLarge", err)
	}
}

func TestBoostFPPScalingPolicies(t *testing.T) {
	// Section 6: fixing q and growing b raises resilience at constant load;
	// fixing b and growing q lowers load at constant masking.
	l1, _ := NewBoostFPP(3, 2)
	l2, _ := NewBoostFPP(3, 20)
	if l2.MaskingBound() <= l1.MaskingBound() {
		t.Error("growing b should raise masking")
	}
	if math.Abs(l1.Load()-l2.Load()) > 0.05 {
		t.Errorf("load should stay ≈ constant: %g vs %g", l1.Load(), l2.Load())
	}
	q1, _ := NewBoostFPP(2, 5)
	q2, _ := NewBoostFPP(8, 5)
	if q2.Load() >= q1.Load() {
		t.Error("growing q should lower load")
	}
	if q1.MaskingBound() != q2.MaskingBound() {
		t.Error("masking should be unchanged when only q grows")
	}
}

func TestMPathValidation(t *testing.T) {
	if _, err := NewMPath(2, 5); err == nil {
		t.Error("√(2b+1) > d should fail")
	}
	if _, err := NewMPath(5, 4); err == nil {
		t.Error("insufficient resilience should fail")
	}
	if _, err := NewMPath(9, 4); err != nil {
		t.Errorf("Figure 3 instance MPath(9,4) rejected: %v", err)
	}
}

func TestMPathFigure3Instance(t *testing.T) {
	// Figure 3: 9×9 grid, b=4 → √(2b+1) = 3 paths per direction.
	m, err := NewMPath(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.PathsPerAxis() != 3 {
		t.Errorf("paths per axis = %d, want 3", m.PathsPerAxis())
	}
	if m.MinTransversal() != 9-3+1 {
		t.Errorf("MT = %d, want 7", m.MinTransversal())
	}
	if !core.IsBMasking(m, 4) {
		t.Error("Figure 3 M-Path should be 4-masking")
	}
}

func TestMPathSelectQuorumProducesDisjointCrossings(t *testing.T) {
	m, _ := NewMPath(9, 4)
	rng := rand.New(rand.NewSource(40))
	dead := bitset.FromSlice([]int{10, 23, 37, 55, 61})
	q, err := m.SelectQuorum(rng, dead)
	if err != nil {
		t.Fatal(err)
	}
	if q.Intersects(dead) {
		t.Fatal("quorum uses dead vertex")
	}
	// Sanity: a quorum always intersects an independently selected one in
	// ≥ 2b+1 elements (the masking property, Definition 3.5).
	q2, err := m.SelectQuorum(rng, bitset.New(81))
	if err != nil {
		t.Fatal(err)
	}
	if got := q.IntersectionCount(q2); got < 2*4+1 {
		t.Errorf("two quorums intersect in %d < 2b+1 = 9 elements", got)
	}
}

func TestMPathMaskingIntersectionProperty(t *testing.T) {
	// Randomized check of Definition 3.5 across failure patterns.
	m, _ := NewMPath(7, 2) // r = ⌈√5⌉ = 3
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		deadA := bitset.New(49)
		deadB := bitset.New(49)
		for i := 0; i < 49; i++ {
			if rng.Intn(12) == 0 {
				deadA.Add(i)
			}
			if rng.Intn(12) == 0 {
				deadB.Add(i)
			}
		}
		qa, errA := m.SelectQuorum(rng, deadA)
		qb, errB := m.SelectQuorum(rng, deadB)
		if errA != nil || errB != nil {
			continue
		}
		if got := qa.IntersectionCount(qb); got < 2*2+1 {
			t.Fatalf("trial %d: |Q1∩Q2| = %d < 5", trial, got)
		}
	}
}

func TestMPathSurvivesHeavyScatteredFailures(t *testing.T) {
	// M-Path's selling point: it survives random failure patterns well past
	// f when p < 1/2. Kill 25% of a 15×15 grid and expect survival with a
	// b=2 quorum (3 paths per axis).
	m, err := NewMPath(15, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	survived := 0
	trials := 20
	for i := 0; i < trials; i++ {
		dead := m.Grid().SampleDead(0.25, rng)
		if _, err := m.SelectQuorum(rng, dead); err == nil {
			survived++
		}
	}
	if survived < trials*3/4 {
		t.Errorf("survived only %d/%d at p=0.25", survived, trials)
	}
}

func TestMPathLoadProposition72(t *testing.T) {
	for _, c := range []struct{ d, b int }{{9, 4}, {16, 6}, {32, 12}} {
		m, err := NewMPath(c.d, c.b)
		if err != nil {
			t.Fatal(err)
		}
		n := float64(m.UniverseSize())
		bound := 2 * math.Sqrt(float64(2*c.b+1)/n)
		if m.Load() > bound+1e-9 {
			t.Errorf("d=%d b=%d: load %g exceeds Prop 7.2 bound %g", c.d, c.b, m.Load(), bound)
		}
		lower := measures.GlobalLoadLowerBound(m.UniverseSize(), c.b)
		if m.Load() < lower-1e-9 {
			t.Errorf("d=%d b=%d: load below Cor 4.2 bound (impossible)", c.d, c.b)
		}
	}
}

func TestMPathEmpiricalLoad(t *testing.T) {
	m, _ := NewMPath(9, 4)
	rng := rand.New(rand.NewSource(43))
	got := measures.EmpiricalLoad(m, 20000, rng)
	if math.Abs(got-m.Load()) > 0.04 {
		t.Errorf("empirical %g vs analytic %g", got, m.Load())
	}
}

func TestMPathCrashDecaysBelowHalf(t *testing.T) {
	// Proposition 7.3 shape: at fixed p < 1/2, F_p decreases as the grid
	// grows (compare d=6 vs d=12 at p = 0.3 via Monte Carlo).
	rng := rand.New(rand.NewSource(44))
	small, _ := NewMPath(6, 1)
	large, _ := NewMPath(12, 1)
	p := 0.3
	fSmall, err := measures.CrashProbabilityMC(small, p, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	fLarge, err := measures.CrashProbabilityMC(large, p, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	if fLarge.Estimate > fSmall.Estimate+0.05 {
		t.Errorf("F_p grew with n: %g → %g", fSmall.Estimate, fLarge.Estimate)
	}
}

func TestBoostGeneralizesToRegularSystems(t *testing.T) {
	// Section 6's boosting on a majority and on the NW grid.
	maj, err := NewMajority(5)
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := Boost(maj, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Majority-5: c=3, IS=1, MT=3. Thresh(9,7): c=7, IS=5, MT=3.
	if boosted.MinIntersection() != 5 {
		t.Errorf("boosted IS = %d, want 5", boosted.MinIntersection())
	}
	if boosted.MinTransversal() != 9 {
		t.Errorf("boosted MT = %d, want 9", boosted.MinTransversal())
	}
	if boosted.MaskingBound() != 2 {
		t.Errorf("boosted masking = %d, want 2", boosted.MaskingBound())
	}
	if _, err := Boost(maj, -1); err == nil {
		t.Error("negative b should fail")
	}

	grid, err := NewNWGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := Boost(grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	// NWGrid(4): IS=2, MT=4; Thresh(5,4): IS=3, MT=2 → IS=6, MT=8, b=2.
	if bg.MaskingBound() < 1 {
		t.Errorf("boosted grid masking = %d, want ≥ 1", bg.MaskingBound())
	}
	rng := rand.New(rand.NewSource(50))
	q, err := bg.SelectQuorum(rng, bitset.New(bg.UniverseSize()))
	if err != nil {
		t.Fatal(err)
	}
	if q.Empty() {
		t.Error("boosted grid returned empty quorum")
	}
}

func TestNWGridIsGridWithBZero(t *testing.T) {
	g, err := NewNWGrid(5)
	if err != nil {
		t.Fatal(err)
	}
	if g.MinQuorumSize() != 9 { // 2d−1
		t.Errorf("c = %d, want 9", g.MinQuorumSize())
	}
	if g.MinIntersection() != 2 {
		t.Errorf("IS = %d, want 2", g.MinIntersection())
	}
	if g.MinTransversal() != 5 {
		t.Errorf("MT = %d, want 5", g.MinTransversal())
	}
}

func TestFPPAsRegularSystem(t *testing.T) {
	s, err := NewBoostFPP(2, 0) // degenerate boost: thresh 1-of-1
	if err != nil {
		t.Fatal(err)
	}
	// b=0: the composition is the plane itself (each module a single
	// server): n = 7, c = 3, IS = 1, MT = 3.
	if s.UniverseSize() != 7 || s.MinQuorumSize() != 3 || s.MinIntersection() != 1 || s.MinTransversal() != 3 {
		t.Errorf("boostFPP(2,0) params = (%d,%d,%d,%d), want (7,3,1,3)",
			s.UniverseSize(), s.MinQuorumSize(), s.MinIntersection(), s.MinTransversal())
	}
}
