package systems

import (
	"fmt"
	"math/rand"

	"bqs/internal/bitset"
	"bqs/internal/combin"
	"bqs/internal/compose"
	"bqs/internal/core"
	"bqs/internal/measures"
	"bqs/internal/projective"
)

// BoostFPP is the boosted finite projective plane of Section 6:
// FPP(q) ∘ Thresh(3b+1 of 4b+1). Parameters (Proposition 6.1):
// n = (4b+1)(q²+q+1), c = (3b+1)(q+1), IS = 2b+1, MT = (b+1)(q+1); the
// system is b-masking with load ≈ 3/(4q), optimal for its size
// (Proposition 6.2). Availability is good for p < 1/4
// (Proposition 6.3) and degrades to 1 for p > 1/4.
type BoostFPP struct {
	name   string
	q, b   int
	plane  *projective.Plane
	fppSys *core.ExplicitSystem
	thresh *Threshold
	comp   *compose.Composite
}

var (
	_ core.System        = (*BoostFPP)(nil)
	_ core.Sampler       = (*BoostFPP)(nil)
	_ core.Parameterized = (*BoostFPP)(nil)
	_ core.Masking       = (*BoostFPP)(nil)
)

// NewBoostFPP builds boostFPP(q, b) for a prime-power q and b ≥ 0.
func NewBoostFPP(q, b int) (*BoostFPP, error) {
	if b < 0 {
		return nil, fmt.Errorf("systems: boostFPP: b=%d must be non-negative", b)
	}
	plane, err := projective.New(q)
	if err != nil {
		return nil, fmt.Errorf("systems: boostFPP: %w", err)
	}
	fppSys, err := NewFPP(plane)
	if err != nil {
		return nil, err
	}
	thresh, err := NewThreshold(4*b+1, 3*b+1)
	if err != nil {
		return nil, fmt.Errorf("systems: boostFPP: inner threshold: %w", err)
	}
	return &BoostFPP{
		name:   fmt.Sprintf("boostFPP(q=%d,b=%d)", q, b),
		q:      q,
		b:      b,
		plane:  plane,
		fppSys: fppSys,
		thresh: thresh,
		comp:   compose.New(fppSys, thresh),
	}, nil
}

// Name returns the system's label.
func (s *BoostFPP) Name() string { return s.name }

// UniverseSize returns n = (4b+1)(q²+q+1).
func (s *BoostFPP) UniverseSize() int { return s.comp.UniverseSize() }

// Order returns q; DeclaredB returns b.
func (s *BoostFPP) Order() int     { return s.q }
func (s *BoostFPP) DeclaredB() int { return s.b }

// SelectQuorum delegates to the composition: a surviving line of the plane
// whose every point's threshold copy still musters 3b+1 live servers.
func (s *BoostFPP) SelectQuorum(rng *rand.Rand, dead bitset.Set) (bitset.Set, error) {
	return s.comp.SelectQuorum(rng, dead)
}

// SampleQuorum uses the product strategy of Theorem 4.7 (uniform line ×
// uniform 3b+1-subsets), achieving the optimal load of Proposition 6.2.
func (s *BoostFPP) SampleQuorum(rng *rand.Rand) bitset.Set {
	return s.comp.SampleQuorum(rng)
}

// MinQuorumSize returns c = (3b+1)(q+1) (Proposition 6.1).
func (s *BoostFPP) MinQuorumSize() int { return (3*s.b + 1) * (s.q + 1) }

// MinIntersection returns IS = 2b+1 (Proposition 6.1).
func (s *BoostFPP) MinIntersection() int { return 2*s.b + 1 }

// MinTransversal returns MT = (b+1)(q+1) (Proposition 6.1).
func (s *BoostFPP) MinTransversal() int { return (s.b + 1) * (s.q + 1) }

// MaskingBound applies Corollary 3.7, giving exactly b.
func (s *BoostFPP) MaskingBound() int { return core.MaskingBoundFromParams(s) }

// Load returns the exact load c/n = (3b+1)(q+1) / ((4b+1)(q²+q+1)) ≈ 3/4q
// (fair system; Proposition 6.2).
func (s *BoostFPP) Load() float64 {
	return float64(s.MinQuorumSize()) / float64(s.UniverseSize())
}

// InnerCrash is the exact crash probability of one threshold module:
// P(≥ b+1 of 4b+1 crash).
func (s *BoostFPP) InnerCrash(p float64) float64 {
	return s.thresh.CrashProbability(p)
}

// CrashProbability returns the exact F_p = F_FPP(F_Thresh(p)) by
// Theorem 4.7, with the plane's crash probability computed by exact
// enumeration. It errors when q²+q+1 exceeds the exact-enumeration cap
// (q ≥ 5); use CrashUpperBound or Monte Carlo then.
func (s *BoostFPP) CrashProbability(p float64) (float64, error) {
	inner := s.InnerCrash(p)
	return measures.CrashProbabilityExact(s.fppSys, inner)
}

// CrashUpperBound is inequality (6) in Proposition 6.3:
// F_p ≤ (q+1)·F_Thresh(p), valid for any p.
func (s *BoostFPP) CrashUpperBound(p float64) float64 {
	v := float64(s.q+1) * s.InnerCrash(p)
	if v > 1 {
		return 1
	}
	return v
}

// ChernoffUpperBound is the closed form of Proposition 6.3:
// F_p ≤ (q+1)·e^{−2(4b+1)γ²} with γ = (b+1)/(4b+1) − p, for p < 1/4.
func (s *BoostFPP) ChernoffUpperBound(p float64) float64 {
	gamma := float64(s.b+1)/float64(4*s.b+1) - p
	v := float64(s.q+1) * combin.ChernoffUpper(4*s.b+1, gamma)
	if v > 1 {
		return 1
	}
	return v
}
