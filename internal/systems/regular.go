package systems

import (
	"fmt"

	"bqs/internal/bitset"
	"bqs/internal/compose"
	"bqs/internal/core"
	"bqs/internal/projective"
)

// This file provides the regular (benign fault-tolerant) quorum systems
// the paper builds on: majorities [Tho79], the NW98 grid, and finite
// projective planes [Mae85]. They are the inputs to the Section 6 boosting
// technique, which turns any regular system into a masking one.

// NewMajority returns the majority system over n servers: quorums are all
// subsets of size ⌊n/2⌋+1.
func NewMajority(n int) (*Threshold, error) {
	t, err := NewThreshold(n, n/2+1)
	if err != nil {
		return nil, err
	}
	t.name = fmt.Sprintf("Majority(%d)", n)
	return t, nil
}

// NewFPP wraps the lines of a projective plane as an explicit quorum
// system: the optimal-load regular system of [NW98] with c = q+1,
// IS = 1, MT = q+1 and L = (q+1)/n ≈ 1/√n.
func NewFPP(plane *projective.Plane) (*core.ExplicitSystem, error) {
	n := plane.NumPoints()
	lines := plane.Lines()
	quorums := make([]bitset.Set, len(lines))
	for i, ln := range lines {
		quorums[i] = bitset.FromSlice(ln)
	}
	return core.NewExplicit(fmt.Sprintf("FPP(%d)", plane.Order()), n, quorums)
}

// NewNWGrid returns the regular grid system over a d×d universe: a quorum
// is one full row plus one full column (c = 2d−1, IS = 2 for d ≥ 2,
// MT = d). It is the b=0 special case of the masking Grid.
func NewNWGrid(d int) (*Grid, error) {
	g, err := NewGrid(d, 0)
	if err != nil {
		return nil, err
	}
	g.name = fmt.Sprintf("NWGrid(%d)", d)
	return g, nil
}

// Boost generalizes the Section 6 technique to any regular quorum system:
// Boost(S, b) = S ∘ Thresh(3b+1 of 4b+1) is b-masking whenever S is a
// quorum system with MT(S) ≥ 1 — by Theorem 4.7 the composition has
// IS ≥ 1·(2b+1) and MT ≥ 1·(b+1), satisfying Lemma 3.6.
func Boost(regular core.System, b int) (*compose.Composite, error) {
	if b < 0 {
		return nil, fmt.Errorf("systems: boost: b=%d must be non-negative", b)
	}
	inner, err := NewThreshold(4*b+1, 3*b+1)
	if err != nil {
		return nil, err
	}
	return compose.New(regular, inner), nil
}
