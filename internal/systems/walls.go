package systems

import (
	"fmt"

	"bqs/internal/bitset"
	"bqs/internal/core"
)

// This file adds two further regular quorum systems from the paper's
// related-work set, used as boosting inputs and measure baselines: the
// crumbling walls of [PW97b] and the wheel of [NW98].

// NewCrumblingWall builds the crumbling-wall system of [PW97b]: servers
// are arranged in rows of the given widths; a quorum is one full row i
// together with one representative from every row below i. The quorum
// count is Σ_i Π_{j>i} w_j, so the explicit construction is restricted to
// small walls (limit ≤ 0 means 100000).
func NewCrumblingWall(widths []int, limit int) (*core.ExplicitSystem, error) {
	if limit <= 0 {
		limit = 100000
	}
	if len(widths) == 0 {
		return nil, fmt.Errorf("systems: crumbling wall needs at least one row")
	}
	offsets := make([]int, len(widths)+1)
	for i, w := range widths {
		if w < 1 {
			return nil, fmt.Errorf("systems: crumbling wall row %d has width %d", i, w)
		}
		offsets[i+1] = offsets[i] + w
	}
	n := offsets[len(widths)]

	var quorums []bitset.Set
	for i := range widths {
		// Odometer over representative choices in rows below i.
		below := widths[i+1:]
		reps := make([]int, len(below))
		for {
			q := bitset.New(n)
			for e := offsets[i]; e < offsets[i+1]; e++ {
				q.Add(e)
			}
			for bi, rep := range reps {
				q.Add(offsets[i+1+bi] + rep)
			}
			quorums = append(quorums, q)
			if len(quorums) > limit {
				return nil, fmt.Errorf("systems: crumbling wall exceeds %d quorums", limit)
			}
			pos := len(reps) - 1
			for pos >= 0 {
				reps[pos]++
				if reps[pos] < below[pos] {
					break
				}
				reps[pos] = 0
				pos--
			}
			if pos < 0 {
				break
			}
		}
	}
	name := fmt.Sprintf("CW%v", widths)
	return core.NewExplicit(name, n, quorums)
}

// NewWheel builds the wheel system of [NW98] over n ≥ 3 servers: element
// 0 is the hub; quorums are the spokes {hub, rim_i} and the full rim.
// Its optimal load 4/7-ish behavior (for n=5) exercises the LP on an
// unbalanced (non-fair) system.
func NewWheel(n int) (*core.ExplicitSystem, error) {
	if n < 3 {
		return nil, fmt.Errorf("systems: wheel needs n ≥ 3, got %d", n)
	}
	quorums := make([]bitset.Set, 0, n)
	rim := bitset.New(n)
	for i := 1; i < n; i++ {
		rim.Add(i)
		quorums = append(quorums, bitset.FromSlice([]int{0, i}))
	}
	quorums = append(quorums, rim)
	return core.NewExplicit(fmt.Sprintf("Wheel(%d)", n), n, quorums)
}
