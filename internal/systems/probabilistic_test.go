package systems

import (
	"math"
	"math/rand"
	"testing"

	"bqs/internal/bitset"
	"bqs/internal/combin"
	"bqs/internal/core"
)

func TestHypergeomAgainstBruteForce(t *testing.T) {
	// Exact check of the PMF against direct counting on a small case:
	// n=10, succ=4, draws=5.
	n, succ, draws := 10, 4, 5
	total, _ := combin.Binomial(n, draws)
	for k := 0; k <= draws; k++ {
		// count subsets of size `draws` with exactly k of the first `succ`.
		a, _ := combin.Binomial(succ, k)
		b, _ := combin.Binomial(n-succ, draws-k)
		want := float64(a*b) / float64(total)
		got := combin.HypergeomPMF(n, succ, draws, k)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("PMF(k=%d) = %g, want %g", k, got, want)
		}
	}
	// CDF sums to 1 at k = draws.
	if c := combin.HypergeomCDF(n, succ, draws, draws); math.Abs(c-1) > 1e-12 {
		t.Errorf("CDF at max = %g", c)
	}
	if combin.HypergeomPMF(n, succ, draws, -1) != 0 || combin.HypergeomPMF(n, succ, draws, 6) != 0 {
		t.Error("out-of-support PMF should be 0")
	}
}

func TestProbMaskingValidation(t *testing.T) {
	if _, err := NewProbMasking(100, 0, 1); err == nil {
		t.Error("s=0 should fail")
	}
	if _, err := NewProbMasking(100, 101, 1); err == nil {
		t.Error("s>n should fail")
	}
	if _, err := NewProbMasking(100, 10, -1); err == nil {
		t.Error("b<0 should fail")
	}
	if _, err := NewProbMasking(100, 10, 3); err == nil {
		t.Error("mean intersection ≤ 2b should fail")
	}
	if _, err := NewProbMasking(100, 40, 3); err != nil {
		t.Errorf("valid system rejected: %v", err)
	}
}

func TestProbMaskingEpsilonSmall(t *testing.T) {
	// n = 400, s = 4√n = 80, b = √n/2 = 10: mean intersection 16 ≈ not
	// enough... use s = 100: mean 25 > 2b = 20; epsilon should be < 0.2,
	// and shrink as s grows.
	p1, err := NewProbMasking(400, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewProbMasking(400, 140, 10)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := p1.EpsilonMasking(), p2.EpsilonMasking()
	if e1 >= 1 || e1 <= 0 {
		t.Fatalf("ε1 = %g out of range", e1)
	}
	if e2 >= e1 {
		t.Errorf("ε should shrink with quorum size: %g → %g", e1, e2)
	}
	if e2 > 1e-3 {
		t.Errorf("ε2 = %g, want ≤ 1e-3 for s=140", e2)
	}
}

func TestProbMaskingEpsilonMatchesSampling(t *testing.T) {
	p, err := NewProbMasking(100, 50, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(60))
	bad, trials := 0, 20000
	for i := 0; i < trials; i++ {
		q1 := p.SampleQuorum(rng)
		q2 := p.SampleQuorum(rng)
		if q1.IntersectionCount(q2) <= 2*8 {
			bad++
		}
	}
	got := float64(bad) / float64(trials)
	want := p.EpsilonMasking()
	se := math.Sqrt(want*(1-want)/float64(trials)) + 1e-4
	if math.Abs(got-want) > 5*se {
		t.Errorf("sampled ε = %g, analytic %g (±%g)", got, want, se)
	}
}

func TestProbMaskingBreaksTradeoff(t *testing.T) {
	// The Section 8 tradeoff says strict masking forces f ≤ nL. The
	// probabilistic system with s = 5√n over n = 1024 gets load 5/√n ≈
	// 0.156 (so nL ≈ 160) but resilience f = n − s = 864 ≫ 160, at
	// ε ≈ 10⁻⁹-ish for b = 5.
	n := 1024
	s := 5 * combin.ISqrt(n) // 160
	p, err := NewProbMasking(n, s, 5)
	if err != nil {
		t.Fatal(err)
	}
	breaks, eps := p.BreaksTradeoff()
	if !breaks {
		t.Fatalf("f = %d should exceed nL = %g", p.MinTransversal()-1, float64(n)*p.Load())
	}
	if eps > 1e-4 {
		t.Errorf("ε = %g, want tiny", eps)
	}
	// Strict masking bound for comparison: every strict construction in
	// this repo obeys f ≤ nL (see bench.ResilienceLoadTradeoff).
}

func TestProbMaskingSelection(t *testing.T) {
	p, _ := NewProbMasking(50, 25, 5)
	rng := rand.New(rand.NewSource(61))
	dead := bitset.FromSlice([]int{0, 1, 2})
	q, err := p.SelectQuorum(rng, dead)
	if err != nil {
		t.Fatal(err)
	}
	if q.Count() != 25 || q.Intersects(dead) {
		t.Fatalf("bad quorum: count=%d", q.Count())
	}
	// Kill past resilience: fewer than s alive.
	bigDead := bitset.FromRange(0, 26)
	if _, err := p.SelectQuorum(rng, bigDead); err != core.ErrNoLiveQuorum {
		t.Errorf("err = %v, want ErrNoLiveQuorum", err)
	}
}
