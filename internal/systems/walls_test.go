package systems

import (
	"math"
	"testing"

	"bqs/internal/measures"
)

func TestCrumblingWallConstruction(t *testing.T) {
	// Wall with rows [1, 2, 3]: 6 servers. Quorums:
	// row 0 (1 elem) + rep from row 1 (2 ways) + rep from row 2 (3) = 6
	// row 1 (2 elems) + rep from row 2 (3 ways) = 3
	// row 2 (3 elems) alone = 1. Total 10.
	cw, err := NewCrumblingWall([]int{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cw.UniverseSize() != 6 {
		t.Errorf("n = %d, want 6", cw.UniverseSize())
	}
	if cw.NumQuorums() != 10 {
		t.Errorf("|Q| = %d, want 10", cw.NumQuorums())
	}
	// Regular system: IS = 1.
	if cw.MinIntersection() != 1 {
		t.Errorf("IS = %d, want 1", cw.MinIntersection())
	}
	// Smallest quorum: row 0 variant has size 1+1+1 = 3, row 2 has 3,
	// row 1 has 2+1 = 3 → c = 3.
	if cw.MinQuorumSize() != 3 {
		t.Errorf("c = %d, want 3", cw.MinQuorumSize())
	}
}

func TestCrumblingWallValidation(t *testing.T) {
	if _, err := NewCrumblingWall(nil, 0); err == nil {
		t.Error("empty wall should fail")
	}
	if _, err := NewCrumblingWall([]int{2, 0}, 0); err == nil {
		t.Error("zero-width row should fail")
	}
	if _, err := NewCrumblingWall([]int{1, 8, 8, 8}, 100); err == nil {
		t.Error("limit should bind")
	}
}

func TestCrumblingWallBoosts(t *testing.T) {
	// Section 6 boosting applied to the crumbling wall.
	cw, err := NewCrumblingWall([]int{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := Boost(cw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := boosted.MaskingBound(); got != 1 {
		t.Errorf("boosted wall masks %d, want 1", got)
	}
	if boosted.UniverseSize() != 6*5 {
		t.Errorf("boosted n = %d, want 30", boosted.UniverseSize())
	}
}

func TestWheelLoadViaLP(t *testing.T) {
	// Wheel(5) has the known optimal load 4/7 (hand-computed in the lp
	// package tests); the LP on the system built here must agree.
	w, err := NewWheel(5)
	if err != nil {
		t.Fatal(err)
	}
	load, _, err := measures.Load(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(load-4.0/7) > 1e-6 {
		t.Errorf("wheel load = %g, want 4/7", load)
	}
	if _, err := NewWheel(2); err == nil {
		t.Error("n=2 wheel should fail")
	}
}

func TestCrashPolynomialMajority(t *testing.T) {
	// Majority-3 kill counts: N_0 = 0, N_1 = 0, N_2 = 3, N_3 = 1.
	m, err := NewMajority(3)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := m.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := measures.CrashPolynomial(ex)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 3, 1}
	for k, c := range counts {
		if c != want[k] {
			t.Errorf("N_%d = %g, want %g", k, c, want[k])
		}
	}
	// Polynomial evaluation matches direct exact computation at many p.
	for _, p := range []float64{0.05, 0.3, 0.77} {
		direct, err := measures.CrashProbabilityExact(ex, p)
		if err != nil {
			t.Fatal(err)
		}
		if got := measures.EvalCrashPolynomial(counts, p); math.Abs(got-direct) > 1e-12 {
			t.Errorf("poly(%g) = %g, direct %g", p, got, direct)
		}
	}
}

func TestCrashPolynomialMonotoneCounts(t *testing.T) {
	// Killing sets are upward closed: N_k / C(n,k) is non-decreasing.
	cw, err := NewCrumblingWall([]int{1, 2, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := measures.CrashPolynomial(cw)
	if err != nil {
		t.Fatal(err)
	}
	n := cw.UniverseSize()
	prev := 0.0
	for k, c := range counts {
		binom := 1.0
		for i := 0; i < k; i++ {
			binom = binom * float64(n-i) / float64(i+1)
		}
		frac := c / binom
		if frac < prev-1e-12 {
			t.Errorf("killing fraction decreased at k=%d: %g → %g", k, prev, frac)
		}
		prev = frac
	}
	if counts[n] == 0 {
		t.Error("killing everything must kill the system")
	}
}
