package systems

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"bqs/internal/bitset"
	"bqs/internal/core"
	"bqs/internal/measures"
)

func TestRTValidation(t *testing.T) {
	if _, err := NewRT(4, 3, 0); err == nil {
		t.Error("h=0 should fail")
	}
	if _, err := NewRT(4, 2, 2); err == nil {
		t.Error("ℓ ≤ k/2 should fail")
	}
	if _, err := NewRT(3, 3, 2); err == nil {
		t.Error("ℓ = k should fail")
	}
	if _, err := NewRT(4, 3, 40); err == nil {
		t.Error("k^h overflow should fail")
	}
	if _, err := NewRT(4, 3, 2); err != nil {
		t.Errorf("RT(4,3,2) rejected: %v", err)
	}
}

func TestRTProposition53Parameters(t *testing.T) {
	// Proposition 5.3: n = k^h, c = ℓ^h, IS = (2ℓ−k)^h, MT = (k−ℓ+1)^h.
	cases := []struct{ k, l, h int }{{4, 3, 1}, {4, 3, 2}, {4, 3, 3}, {3, 2, 2}, {5, 3, 2}}
	for _, c := range cases {
		r, err := NewRT(c.k, c.l, c.h)
		if err != nil {
			t.Fatal(err)
		}
		if r.UniverseSize() != intPow(c.k, c.h) {
			t.Errorf("RT(%d,%d,%d): n = %d", c.k, c.l, c.h, r.UniverseSize())
		}
		if r.MinQuorumSize() != intPow(c.l, c.h) {
			t.Errorf("RT(%d,%d,%d): c = %d", c.k, c.l, c.h, r.MinQuorumSize())
		}
		if r.MinIntersection() != intPow(2*c.l-c.k, c.h) {
			t.Errorf("RT(%d,%d,%d): IS = %d", c.k, c.l, c.h, r.MinIntersection())
		}
		if r.MinTransversal() != intPow(c.k-c.l+1, c.h) {
			t.Errorf("RT(%d,%d,%d): MT = %d", c.k, c.l, c.h, r.MinTransversal())
		}
	}
}

func TestRT43Figure2Example(t *testing.T) {
	// Section 5.2 worked example: RT(4,3) depth 2 (n=16) has IS = MT = 4 =
	// √n, so b = min((4−1)/2, 3) = 1 — already masking at h=2.
	r, err := NewRT(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.MinIntersection() != 4 || r.MinTransversal() != 4 {
		t.Fatalf("IS=%d MT=%d, want 4,4", r.MinIntersection(), r.MinTransversal())
	}
	if r.MaskingBound() != 1 {
		t.Errorf("masking bound = %d, want 1", r.MaskingBound())
	}
	// Depth 1 (plain 3-of-4) is not even 1-masking: IS = 2 < 3.
	r1, _ := NewRT(4, 3, 1)
	if core.IsBMasking(r1, 1) {
		t.Error("3-of-4 at h=1 must not be 1-masking")
	}
}

func TestRTParamsMatchEnumeration(t *testing.T) {
	r, err := NewRT(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := r.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	if ex.NumQuorums() != 4*4*4*4 { // C(4,3)·(C(4,3)·1)³ = 4·4³
		t.Errorf("quorum count = %d, want 256", ex.NumQuorums())
	}
	if ex.MinQuorumSize() != r.MinQuorumSize() {
		t.Errorf("c: explicit %d vs formula %d", ex.MinQuorumSize(), r.MinQuorumSize())
	}
	if ex.MinIntersection() != r.MinIntersection() {
		t.Errorf("IS: explicit %d vs formula %d", ex.MinIntersection(), r.MinIntersection())
	}
	if ex.MinTransversal() != r.MinTransversal() {
		t.Errorf("MT: explicit %d vs formula %d", ex.MinTransversal(), r.MinTransversal())
	}
	load, _, err := measures.Load(ex)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(load-r.Load()) > 1e-6 {
		t.Errorf("LP load %g vs closed form %g", load, r.Load())
	}
}

func TestRTLoadProposition55(t *testing.T) {
	// L = n^−(1−log_k ℓ): for RT(4,3), n^−0.2075.
	for h := 1; h <= 5; h++ {
		r, _ := NewRT(4, 3, h)
		n := float64(r.UniverseSize())
		want := math.Pow(n, -(1 - math.Log(3)/math.Log(4)))
		if math.Abs(r.Load()-want) > 1e-9 {
			t.Errorf("h=%d: load %g, want %g", h, r.Load(), want)
		}
	}
}

func TestRTCrashExactMatchesEnumeration(t *testing.T) {
	r, _ := NewRT(4, 3, 2)
	ex, _ := r.Enumerate(0)
	for _, p := range []float64{0.1, 0.2324, 0.4} {
		want, err := measures.CrashProbabilityExact(ex, p)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.CrashProbability(p); math.Abs(got-want) > 1e-12 {
			t.Errorf("F_%g = %g, enumeration gives %g", p, got, want)
		}
	}
}

func TestRT43BlockCrashPolynomial(t *testing.T) {
	// Section 5.2: g(p) = 6p² − 8p³ + 3p⁴ for the 3-of-4 block.
	r, _ := NewRT(4, 3, 1)
	for _, p := range []float64{0, 0.1, 0.2324, 0.5, 0.9, 1} {
		want := 6*p*p - 8*p*p*p + 3*p*p*p*p
		if got := r.BlockCrash(p); math.Abs(got-want) > 1e-12 {
			t.Errorf("g(%g) = %g, want %g", p, got, want)
		}
	}
}

func TestRT43CriticalProbability(t *testing.T) {
	// The paper computes p_c = 0.2324 for RT(4,3).
	r, _ := NewRT(4, 3, 3)
	pc := r.CriticalProbability()
	if math.Abs(pc-0.2324) > 5e-4 {
		t.Errorf("p_c = %g, want ≈0.2324", pc)
	}
	// Proposition 5.6: below p_c the crash probability shrinks with depth,
	// above it grows.
	below, above := 0.15, 0.35
	var prevB, prevA float64 = -1, -1
	for h := 1; h <= 6; h++ {
		rh, _ := NewRT(4, 3, h)
		fb, fa := rh.CrashProbability(below), rh.CrashProbability(above)
		if prevB >= 0 && fb >= prevB {
			t.Errorf("h=%d: F_%g = %g not decreasing (prev %g)", h, below, fb, prevB)
		}
		if prevA >= 0 && fa <= prevA {
			t.Errorf("h=%d: F_%g = %g not increasing (prev %g)", h, above, fa, prevA)
		}
		prevB, prevA = fb, fa
	}
}

func TestRTCrashUpperBoundProp57(t *testing.T) {
	// F_p ≤ (C(k,ℓ−1)·p)^MT for p < 1/C(k,ℓ−1); for RT(4,3): (6p)^√n.
	for _, h := range []int{2, 3, 4} {
		r, _ := NewRT(4, 3, h)
		for _, p := range []float64{0.05, 0.1, 0.15} {
			fp := r.CrashProbability(p)
			bound := r.CrashUpperBound(p)
			if fp > bound+1e-12 {
				t.Errorf("h=%d p=%g: F_p %g exceeds Prop 5.7 bound %g", h, p, fp, bound)
			}
		}
	}
	// Bound degenerates to 1 for p ≥ 1/6.
	r, _ := NewRT(4, 3, 2)
	if r.CrashUpperBound(0.2) != 1 {
		t.Errorf("bound above 1/6 should clamp to 1")
	}
}

func TestRTCrashLowerBoundProp43(t *testing.T) {
	// Proposition 5.7's optimality side: F_p ≥ p^MT.
	for _, h := range []int{1, 2, 3} {
		r, _ := NewRT(4, 3, h)
		for _, p := range []float64{0.1, 0.3} {
			if r.CrashProbability(p) < measures.CrashLowerBoundMT(r.MinTransversal(), p)-1e-15 {
				t.Errorf("h=%d p=%g: F_p below p^MT", h, p)
			}
		}
	}
}

func TestRTSelectQuorumRecursive(t *testing.T) {
	r, _ := NewRT(4, 3, 2)
	ex, _ := r.Enumerate(0)
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 100; trial++ {
		dead := bitset.New(16)
		for i := 0; i < 16; i++ {
			if rng.Intn(8) == 0 {
				dead.Add(i)
			}
		}
		q, err := r.SelectQuorum(rng, dead)
		_, exErr := ex.SelectQuorum(rng, dead)
		if (err == nil) != (exErr == nil) {
			t.Fatalf("recursive and explicit disagree on survivability (dead=%v): %v vs %v",
				dead, err, exErr)
		}
		if err != nil {
			continue
		}
		if q.Intersects(dead) {
			t.Fatal("quorum uses dead element")
		}
		// The returned set must be one of the explicit quorums.
		found := false
		for _, eq := range ex.Quorums() {
			if eq.Equal(q) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("selected %v is not an RT quorum", q)
		}
	}
}

func TestRTSelectQuorumFailsPastResilience(t *testing.T) {
	r, _ := NewRT(4, 3, 2) // MT = 4
	rng := rand.New(rand.NewSource(3))
	// Kill one leaf in each depth-1 block of the first two depth-1
	// subtrees: blocks 0 and 1 die (each loses ≥ 2 children? no: one leaf
	// kills a 3-of-4 block only if 2 leaves die). Build a genuine minimal
	// transversal instead: 2 dead leaves in 2 blocks = 4 elements.
	dead := bitset.FromSlice([]int{0, 1, 4, 5}) // blocks 0 and 1 each lose 2 leaves
	// Blocks 0,1 dead → only 2 of 4 children alive < ℓ=3 → system dead.
	if _, err := r.SelectQuorum(rng, dead); !errors.Is(err, core.ErrNoLiveQuorum) {
		t.Errorf("err = %v, want ErrNoLiveQuorum", err)
	}
}

func TestRTSampleQuorumShape(t *testing.T) {
	r, _ := NewRT(4, 3, 3)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 50; i++ {
		q := r.SampleQuorum(rng)
		if q.Count() != r.MinQuorumSize() {
			t.Fatalf("sampled quorum size %d, want %d", q.Count(), r.MinQuorumSize())
		}
	}
	got := measures.EmpiricalLoad(r, 20000, rng)
	if math.Abs(got-r.Load()) > 0.03 {
		t.Errorf("empirical load %g vs analytic %g", got, r.Load())
	}
}

func TestRTCorollary54MaskingGrowth(t *testing.T) {
	// Corollary 5.4 for RT(4,3): b = (√n − 1)/2 eventually — masking grows
	// with depth.
	prev := -1
	for h := 1; h <= 5; h++ {
		r, _ := NewRT(4, 3, h)
		b := r.MaskingBound()
		if b < prev {
			t.Errorf("masking bound decreasing at h=%d: %d < %d", h, b, prev)
		}
		prev = b
		want := (intPow(2, h) - 1) / 2 // ((2ℓ−k)^h − 1)/2 = (2^h−1)/2
		if b != want {
			t.Errorf("h=%d: b = %d, want %d", h, b, want)
		}
	}
}
