package systems

import (
	"fmt"
	"math/rand"

	"bqs/internal/bitset"
	"bqs/internal/combin"
	"bqs/internal/core"
)

// ProbMasking is the probabilistic b-masking quorum system of [MRWW98],
// which the paper's Discussion (Section 8) cites as the way to break the
// resilience–load tradeoff f ≤ n·L(Q). Quorums are ALL subsets of a fixed
// size s, so strictly every pair intersects (for 2s > n) but the masking
// property |Q1∩Q2| ≥ 2b+1 holds only with probability 1−ε over quorums
// drawn from the uniform access strategy: |Q1∩Q2| is hypergeometric with
// mean s²/n, and ε = P(X ≤ 2b) decays exponentially once s²/n ≫ 2b.
//
// The payoff: load s/n can be Θ(1/√n)·ℓ while resilience is n−s — both
// near-optimal simultaneously, which Theorem 4.1 forbids for strict
// masking systems.
type ProbMasking struct {
	name string
	n, s int
	b    int
}

var (
	_ core.System        = (*ProbMasking)(nil)
	_ core.Sampler       = (*ProbMasking)(nil)
	_ core.Parameterized = (*ProbMasking)(nil)
)

// NewProbMasking builds the system with quorum size s over n servers,
// targeting masking bound b. Requires 0 < s ≤ n and mean intersection
// s²/n > 2b (otherwise ε is not even below 1/2).
func NewProbMasking(n, s, b int) (*ProbMasking, error) {
	if s <= 0 || s > n {
		return nil, fmt.Errorf("systems: prob-masking: quorum size %d out of range (n=%d)", s, n)
	}
	if b < 0 {
		return nil, fmt.Errorf("systems: prob-masking: b=%d must be non-negative", b)
	}
	if s*s <= 2*b*n {
		return nil, fmt.Errorf("systems: prob-masking: mean intersection s²/n = %d/%d ≤ 2b = %d",
			s*s, n, 2*b)
	}
	return &ProbMasking{
		name: fmt.Sprintf("ProbMasking(n=%d,s=%d,b=%d)", n, s, b),
		n:    n, s: s, b: b,
	}, nil
}

// Name returns the system's label.
func (p *ProbMasking) Name() string { return p.name }

// UniverseSize returns n.
func (p *ProbMasking) UniverseSize() int { return p.n }

// QuorumSize returns s; DeclaredB returns b.
func (p *ProbMasking) QuorumSize() int { return p.s }
func (p *ProbMasking) DeclaredB() int  { return p.b }

// SelectQuorum picks s uniformly random live servers.
func (p *ProbMasking) SelectQuorum(rng *rand.Rand, dead bitset.Set) (bitset.Set, error) {
	alive := make([]int, 0, p.n)
	for i := 0; i < p.n; i++ {
		if !dead.Contains(i) {
			alive = append(alive, i)
		}
	}
	if len(alive) < p.s {
		return bitset.Set{}, core.ErrNoLiveQuorum
	}
	q := bitset.New(p.n)
	for _, i := range combin.RandomKSubset(rng, len(alive), p.s) {
		q.Add(alive[i])
	}
	return q, nil
}

// SampleQuorum draws from the uniform strategy — the strategy the ε
// guarantee is stated for.
func (p *ProbMasking) SampleQuorum(rng *rand.Rand) bitset.Set {
	q := bitset.New(p.n)
	for _, i := range combin.RandomKSubset(rng, p.n, p.s) {
		q.Add(i)
	}
	return q
}

// MinQuorumSize returns s.
func (p *ProbMasking) MinQuorumSize() int { return p.s }

// MinIntersection returns the WORST-case intersection max(0, 2s−n) —
// which is what a strict masking analysis would use, and is typically far
// below 2b+1; the probabilistic guarantee is EpsilonMasking instead.
func (p *ProbMasking) MinIntersection() int {
	is := 2*p.s - p.n
	if is < 0 {
		return 0
	}
	return is
}

// MinTransversal returns n − s + 1: any s live servers form a quorum.
func (p *ProbMasking) MinTransversal() int { return p.n - p.s + 1 }

// Load returns the uniform-strategy load s/n.
func (p *ProbMasking) Load() float64 { return float64(p.s) / float64(p.n) }

// EpsilonMasking returns ε = P(|Q1∩Q2| ≤ 2b) for two independent
// uniformly drawn quorums — the probability that a read/write quorum pair
// fails to mask b Byzantine servers. Exact hypergeometric tail.
func (p *ProbMasking) EpsilonMasking() float64 {
	return combin.HypergeomCDF(p.n, p.s, p.s, 2*p.b)
}

// BreaksTradeoff reports whether the system beats the strict-masking
// bound f ≤ n·L(Q) of Section 8 (equivalently f > s), together with the
// ε at which it does so.
func (p *ProbMasking) BreaksTradeoff() (bool, float64) {
	f := p.MinTransversal() - 1
	return float64(f) > float64(p.n)*p.Load(), p.EpsilonMasking()
}
