package systems

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"bqs/internal/bitset"
	"bqs/internal/core"
	"bqs/internal/measures"
)

func TestThresholdValidation(t *testing.T) {
	if _, err := NewThreshold(5, 0); err == nil {
		t.Error("ℓ=0 should fail")
	}
	if _, err := NewThreshold(5, 6); err == nil {
		t.Error("ℓ>n should fail")
	}
	if _, err := NewThreshold(6, 3); err == nil {
		t.Error("2ℓ ≤ n should fail (disjoint quorums)")
	}
	if _, err := NewThreshold(5, 3); err != nil {
		t.Errorf("3-of-5 rejected: %v", err)
	}
}

func TestMaskingThresholdMR98a(t *testing.T) {
	// n = 4b+1 ⇒ ℓ = 3b+1, IS = 2b+1, MT = b+1, masking bound exactly b.
	for b := 0; b <= 6; b++ {
		n := 4*b + 1
		th, err := NewMaskingThreshold(n, b)
		if err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}
		if th.QuorumSize() != 3*b+1 {
			t.Errorf("b=%d: ℓ = %d, want %d", b, th.QuorumSize(), 3*b+1)
		}
		if th.MinIntersection() != 2*b+1 {
			t.Errorf("b=%d: IS = %d, want %d", b, th.MinIntersection(), 2*b+1)
		}
		if th.MinTransversal() != b+1 {
			t.Errorf("b=%d: MT = %d, want %d", b, th.MinTransversal(), b+1)
		}
		if th.MaskingBound() != b {
			t.Errorf("b=%d: masking bound = %d", b, th.MaskingBound())
		}
		if !core.IsBMasking(th, b) {
			t.Errorf("b=%d: IsBMasking false", b)
		}
	}
	if _, err := NewMaskingThreshold(4, 1); err == nil {
		t.Error("n < 4b+1 should fail")
	}
	if _, err := NewMaskingThreshold(5, -1); err == nil {
		t.Error("negative b should fail")
	}
}

func TestThresholdLoadIsHalfPlus(t *testing.T) {
	// Table 2: Threshold load = 1/2 + O(b/n); always ≥ 1/2.
	for _, c := range []struct{ n, b int }{{9, 2}, {41, 10}, {101, 25}, {1024, 10}} {
		th, err := NewMaskingThreshold(c.n, c.b)
		if err != nil {
			t.Fatal(err)
		}
		l := th.Load()
		if l < 0.5 {
			t.Errorf("n=%d b=%d: load %g < 1/2", c.n, c.b, l)
		}
		approxHalf := 0.5 + float64(c.b)/float64(c.n) + 2.0/float64(c.n)
		if l > approxHalf+1e-9 {
			t.Errorf("n=%d b=%d: load %g exceeds 1/2 + O(b/n) = %g", c.n, c.b, l, approxHalf)
		}
	}
}

func TestThresholdParamsMatchEnumeration(t *testing.T) {
	th, err := NewThreshold(7, 5)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := th.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	if ex.MinQuorumSize() != th.MinQuorumSize() {
		t.Errorf("c: explicit %d vs closed form %d", ex.MinQuorumSize(), th.MinQuorumSize())
	}
	if ex.MinIntersection() != th.MinIntersection() {
		t.Errorf("IS: explicit %d vs closed form %d", ex.MinIntersection(), th.MinIntersection())
	}
	if ex.MinTransversal() != th.MinTransversal() {
		t.Errorf("MT: explicit %d vs closed form %d", ex.MinTransversal(), th.MinTransversal())
	}
	// Fairness + load via LP agree with ℓ/n.
	load, _, err := measures.Load(ex)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(load-th.Load()) > 1e-6 {
		t.Errorf("LP load %g vs closed form %g", load, th.Load())
	}
}

func TestThresholdCrashExactMatchesEnumeration(t *testing.T) {
	th, _ := NewThreshold(7, 5)
	ex, _ := th.Enumerate(0)
	for _, p := range []float64{0.1, 0.3, 0.5} {
		want, err := measures.CrashProbabilityExact(ex, p)
		if err != nil {
			t.Fatal(err)
		}
		if got := th.CrashProbability(p); math.Abs(got-want) > 1e-12 {
			t.Errorf("F_%g = %g, enumeration gives %g", p, got, want)
		}
	}
}

func TestThresholdSelectQuorum(t *testing.T) {
	th, _ := NewMaskingThreshold(9, 2) // ℓ = 7
	rng := rand.New(rand.NewSource(4))
	dead := bitset.FromSlice([]int{0, 5})
	q, err := th.SelectQuorum(rng, dead)
	if err != nil {
		t.Fatal(err)
	}
	if q.Count() != 7 || q.Intersects(dead) {
		t.Fatalf("bad quorum %v", q)
	}
	dead3 := bitset.FromSlice([]int{0, 1, 2})
	if _, err := th.SelectQuorum(rng, dead3); !errors.Is(err, core.ErrNoLiveQuorum) {
		t.Errorf("err = %v, want ErrNoLiveQuorum", err)
	}
}

func TestThresholdEmpiricalLoad(t *testing.T) {
	th, _ := NewMaskingThreshold(9, 2)
	rng := rand.New(rand.NewSource(8))
	got := measures.EmpiricalLoad(th, 30000, rng)
	if math.Abs(got-th.Load()) > 0.02 {
		t.Errorf("empirical load %g vs analytic %g", got, th.Load())
	}
}

func TestThresholdEnumerateLimit(t *testing.T) {
	th, _ := NewThreshold(30, 16)
	if _, err := th.Enumerate(1000); err == nil {
		t.Error("oversized enumeration should fail")
	}
}

func TestMajority(t *testing.T) {
	m, err := NewMajority(7)
	if err != nil {
		t.Fatal(err)
	}
	if m.QuorumSize() != 4 {
		t.Errorf("majority-7 quorum size = %d, want 4", m.QuorumSize())
	}
	if m.MinIntersection() != 1 || m.MinTransversal() != 4 {
		t.Errorf("majority-7 IS=%d MT=%d, want 1, 4", m.MinIntersection(), m.MinTransversal())
	}
}

func TestThresholdCrashCondorcet(t *testing.T) {
	// Majority F_p is Condorcet: below 1/2 it vanishes as n grows.
	var prev float64 = 1
	for _, n := range []int{5, 25, 125} {
		m, _ := NewMajority(n)
		fp := m.CrashProbability(0.3)
		if fp >= prev {
			t.Errorf("F_0.3(majority-%d) = %g not decreasing", n, fp)
		}
		prev = fp
	}
	m, _ := NewMajority(125)
	if got := m.CrashProbability(0.7); got < 0.99 {
		t.Errorf("F_0.7(majority-125) = %g, want ≈1", got)
	}
}
