package systems

import (
	"fmt"
	"math/rand"

	"bqs/internal/bitset"
	"bqs/internal/combin"
	"bqs/internal/core"
)

// Grid is the b-masking grid of [MR98a], the second baseline in Table 2:
// servers arranged in a d×d grid, a quorum being one full row together
// with 2b+1 full columns. Any two quorums intersect in ≥ 2b+1 elements
// (each quorum's columns cross the other's row). The paper cites its
// properties as b < √n/3, f = O(√n − b), L ≈ 2b/√n and F_p → 1.
type Grid struct {
	name string
	d, b int
}

var (
	_ core.System        = (*Grid)(nil)
	_ core.Sampler       = (*Grid)(nil)
	_ core.Parameterized = (*Grid)(nil)
	_ core.Enumerator    = (*Grid)(nil)
)

// NewGrid builds the [MR98a] grid over a d×d universe (n = d²) masking b
// faults. Requires d ≥ 2b+1 (to pick the columns) and b ≤ (d−1)/3
// (resilience, Lemma 3.6).
func NewGrid(d, b int) (*Grid, error) {
	if b < 0 || d < 1 {
		return nil, fmt.Errorf("systems: grid: invalid d=%d b=%d", d, b)
	}
	if 2*b+1 > d {
		return nil, fmt.Errorf("systems: grid: 2b+1=%d columns exceed side %d", 2*b+1, d)
	}
	if 3*b+1 > d {
		return nil, fmt.Errorf("systems: grid: b=%d exceeds masking limit (d−1)/3=%d", b, (d-1)/3)
	}
	return &Grid{name: fmt.Sprintf("Grid(d=%d,b=%d)", d, b), d: d, b: b}, nil
}

// Name returns the system's label.
func (g *Grid) Name() string { return g.name }

// UniverseSize returns n = d².
func (g *Grid) UniverseSize() int { return g.d * g.d }

// Side returns d.
func (g *Grid) Side() int { return g.d }

// quorum assembles row r union the given columns.
func (g *Grid) quorum(row int, cols []int) bitset.Set {
	q := bitset.New(g.d * g.d)
	for c := 0; c < g.d; c++ {
		q.Add(row*g.d + c)
	}
	for _, c := range cols {
		for r := 0; r < g.d; r++ {
			q.Add(r*g.d + c)
		}
	}
	return q
}

// freeLines returns the indices of rows (axis=0) or columns (axis=1) that
// contain no dead element.
func (g *Grid) freeLines(dead bitset.Set, axis int) []int {
	free := make([]int, 0, g.d)
	for line := 0; line < g.d; line++ {
		ok := true
		for k := 0; k < g.d; k++ {
			var v int
			if axis == 0 {
				v = line*g.d + k
			} else {
				v = k*g.d + line
			}
			if dead.Contains(v) {
				ok = false
				break
			}
		}
		if ok {
			free = append(free, line)
		}
	}
	return free
}

// SelectQuorum picks a fully-live row and 2b+1 fully-live columns.
func (g *Grid) SelectQuorum(rng *rand.Rand, dead bitset.Set) (bitset.Set, error) {
	rows := g.freeLines(dead, 0)
	cols := g.freeLines(dead, 1)
	need := 2*g.b + 1
	if len(rows) == 0 || len(cols) < need {
		return bitset.Set{}, core.ErrNoLiveQuorum
	}
	row := rows[rng.Intn(len(rows))]
	chosen := combin.RandomKSubset(rng, len(cols), need)
	pick := make([]int, need)
	for i, ci := range chosen {
		pick[i] = cols[ci]
	}
	return g.quorum(row, pick), nil
}

// SampleQuorum draws a uniformly random row and column set — the fair
// strategy, with load c/n.
func (g *Grid) SampleQuorum(rng *rand.Rand) bitset.Set {
	row := rng.Intn(g.d)
	cols := combin.RandomKSubset(rng, g.d, 2*g.b+1)
	return g.quorum(row, cols)
}

// MinQuorumSize returns c = d + (2b+1)(d−1): one row plus 2b+1 columns,
// minus the crossings.
func (g *Grid) MinQuorumSize() int { return g.d + (2*g.b+1)*(g.d-1) }

// MinIntersection returns IS exactly. A pair of quorums sharing s ∈ {0,1}
// rows and k columns intersects in s·d + k·d − s·k + 2(1−s)(c−k) elements
// (shared lines in full, plus each side's private columns crossing the
// other's row). k is forced to at least 2c−d when the side is too small
// for disjoint column sets; minimizing over feasible (s, k) gives IS.
func (g *Grid) MinIntersection() int {
	c := 2*g.b + 1
	kMin := 2*c - g.d
	if kMin < 0 {
		kMin = 0
	}
	best := -1
	for s := 0; s <= 1; s++ {
		for k := kMin; k <= c; k++ {
			if s == 1 && k == c {
				continue // identical quorums, not a pair
			}
			v := s*g.d + k*g.d - s*k + 2*(1-s)*(c-k)
			if best < 0 || v < best {
				best = v
			}
		}
	}
	return best
}

// MinTransversal returns MT = d − 2b: the cheapest way to kill the system
// is to touch all but 2b columns (touching every row costs d ≥ d−2b).
func (g *Grid) MinTransversal() int { return g.d - 2*g.b }

// MaskingBound applies Corollary 3.7; by construction it equals b... the
// paper's b, unless d is large enough that IS allows more, in which case
// the transversal term binds.
func (g *Grid) MaskingBound() int { return core.MaskingBoundFromParams(g) }

// DeclaredB returns the b the grid was built for.
func (g *Grid) DeclaredB() int { return g.b }

// Load returns the exact load c/n (the system is fair: every element lies
// in the same number of quorums by row/column symmetry).
func (g *Grid) Load() float64 {
	return float64(g.MinQuorumSize()) / float64(g.UniverseSize())
}

// Enumerate materializes the d·C(d,2b+1) row-plus-columns quorums for
// exact analysis (LP load, strategy-backed selection). The quorum count
// must stay at or below limit (default 100000 when ≤ 0).
func (g *Grid) Enumerate(limit int) (*core.ExplicitSystem, error) {
	if limit <= 0 {
		limit = 100000
	}
	need := 2*g.b + 1
	per, err := combin.Binomial(g.d, need)
	if err != nil || per > int64(limit) || int64(g.d)*per > int64(limit) {
		return nil, fmt.Errorf("systems: %s: %d·C(%d,%d) quorums exceed limit %d", g.name, g.d, g.d, need, limit)
	}
	quorums := make([]bitset.Set, 0, int64(g.d)*per)
	for row := 0; row < g.d; row++ {
		combin.Combinations(g.d, need, func(cols []int) bool {
			quorums = append(quorums, g.quorum(row, cols))
			return true
		})
	}
	return core.NewExplicit(g.name, g.UniverseSize(), quorums)
}

// CrashProbability returns the exact F_p via line-survival analysis: the
// system survives iff ≥ 1 row and ≥ 2b+1 columns are fully alive. Rows and
// columns are not independent, so this computes the joint probability by
// Monte Carlo-free approximation... no: exactly, via inclusion–exclusion
// over column subsets, which is exponential. Instead the well-known bound
// of [KC91, Woo96] is exposed as CrashLowerBoundRows; use the measures
// package for exact/MC values.
//
// CrashLowerBoundRows returns (1−(1−p)^d)^d: the probability that every
// row is hit, which already forces failure and drives F_p → 1.
func (g *Grid) CrashLowerBoundRows(p float64) float64 {
	rowAlive := pow(1-p, g.d)
	return pow(1-rowAlive, g.d)
}

func pow(x float64, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= x
	}
	return out
}
