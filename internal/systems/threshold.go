// Package systems implements every quorum construction the paper studies:
// the two [MR98a] baselines it compares against (Threshold, Grid) and the
// four new constructions (M-Grid §5.1, RT §5.2, boostFPP §6, M-Path §7),
// plus the regular (benign-fault) systems used as composition inputs. Each
// construction implements core.System with a load-optimal (or
// paper-specified) access strategy, closed-form combinatorial parameters,
// and an analytic crash-probability function where the paper derives one.
package systems

import (
	"fmt"
	"math/rand"

	"bqs/internal/bitset"
	"bqs/internal/combin"
	"bqs/internal/core"
)

// Threshold is the ℓ-of-n threshold quorum system: quorums are all subsets
// of size ℓ. With ℓ = ⌈(n+2b+1)/2⌉ it is the b-masking Threshold system of
// [MR98a] (Table 2, first row); with n = 4b+1, ℓ = 3b+1 it is the inner
// component of boostFPP (§6); with k > ℓ > k/2 it is the RT building block
// (§5.2).
type Threshold struct {
	name string
	n, l int
}

var (
	_ core.System        = (*Threshold)(nil)
	_ core.Sampler       = (*Threshold)(nil)
	_ core.Parameterized = (*Threshold)(nil)
	_ core.Enumerator    = (*Threshold)(nil)
)

// NewThreshold builds the ℓ-of-n system. It requires 0 < ℓ ≤ n and
// 2ℓ > n (so that quorums pairwise intersect, Definition 3.1).
func NewThreshold(n, l int) (*Threshold, error) {
	if l <= 0 || l > n {
		return nil, fmt.Errorf("systems: threshold %d-of-%d: quorum size out of range", l, n)
	}
	if 2*l <= n {
		return nil, fmt.Errorf("systems: threshold %d-of-%d: quorums would not intersect (need 2ℓ > n)", l, n)
	}
	return &Threshold{name: fmt.Sprintf("Thresh(%d-of-%d)", l, n), n: n, l: l}, nil
}

// NewMaskingThreshold builds the b-masking Threshold system of [MR98a]:
// quorums of size ⌈(n+2b+1)/2⌉, which intersect in ≥ 2b+1 elements. It
// requires n ≥ 4b+1 (necessary for any b-masking system).
func NewMaskingThreshold(n, b int) (*Threshold, error) {
	if b < 0 {
		return nil, fmt.Errorf("systems: masking threshold: b=%d must be non-negative", b)
	}
	if n < 4*b+1 {
		return nil, fmt.Errorf("systems: masking threshold: n=%d < 4b+1=%d", n, 4*b+1)
	}
	l := (n + 2*b + 1 + 1) / 2 // ⌈(n+2b+1)/2⌉
	t, err := NewThreshold(n, l)
	if err != nil {
		return nil, err
	}
	t.name = fmt.Sprintf("Threshold(n=%d,b=%d)", n, b)
	return t, nil
}

// NewDisseminationThreshold builds the threshold dissemination quorum
// system of [MR98a] for self-verifying data: quorums of size
// ⌈(n+b+1)/2⌉, which intersect in ≥ b+1 servers (at least one correct).
// It requires n ≥ 3b+1. Use it with sim.DisseminationClient, not with the
// masking protocol (its intersections are below 2b+1).
func NewDisseminationThreshold(n, b int) (*Threshold, error) {
	if b < 0 {
		return nil, fmt.Errorf("systems: dissemination threshold: b=%d must be non-negative", b)
	}
	if n < 3*b+1 {
		return nil, fmt.Errorf("systems: dissemination threshold: n=%d < 3b+1=%d", n, 3*b+1)
	}
	l := (n + b + 1 + 1) / 2 // ⌈(n+b+1)/2⌉
	t, err := NewThreshold(n, l)
	if err != nil {
		return nil, err
	}
	t.name = fmt.Sprintf("DissemThreshold(n=%d,b=%d)", n, b)
	return t, nil
}

// Name returns the system's label.
func (t *Threshold) Name() string { return t.name }

// UniverseSize returns n.
func (t *Threshold) UniverseSize() int { return t.n }

// QuorumSize returns ℓ.
func (t *Threshold) QuorumSize() int { return t.l }

// SelectQuorum picks ℓ live elements uniformly at random, or fails when
// fewer than ℓ survive.
func (t *Threshold) SelectQuorum(rng *rand.Rand, dead bitset.Set) (bitset.Set, error) {
	alive := make([]int, 0, t.n)
	for i := 0; i < t.n; i++ {
		if !dead.Contains(i) {
			alive = append(alive, i)
		}
	}
	if len(alive) < t.l {
		return bitset.Set{}, core.ErrNoLiveQuorum
	}
	idx := combin.RandomKSubset(rng, len(alive), t.l)
	q := bitset.New(t.n)
	for _, i := range idx {
		q.Add(alive[i])
	}
	return q, nil
}

// SampleQuorum draws a uniformly random ℓ-subset — the optimal strategy
// for this fair system (Proposition 3.9), with load ℓ/n.
func (t *Threshold) SampleQuorum(rng *rand.Rand) bitset.Set {
	idx := combin.RandomKSubset(rng, t.n, t.l)
	q := bitset.New(t.n)
	for _, i := range idx {
		q.Add(i)
	}
	return q
}

// MinQuorumSize returns c = ℓ.
func (t *Threshold) MinQuorumSize() int { return t.l }

// MinIntersection returns IS = 2ℓ − n.
func (t *Threshold) MinIntersection() int { return 2*t.l - t.n }

// MinTransversal returns MT = n − ℓ + 1.
func (t *Threshold) MinTransversal() int { return t.n - t.l + 1 }

// MaskingBound applies Corollary 3.7.
func (t *Threshold) MaskingBound() int { return core.MaskingBoundFromParams(t) }

// Load returns the exact load ℓ/n (fair system, Proposition 3.9).
func (t *Threshold) Load() float64 { return float64(t.l) / float64(t.n) }

// CrashProbability returns the exact F_p: the system fails iff at least
// MT = n−ℓ+1 servers crash, a binomial tail.
func (t *Threshold) CrashProbability(p float64) float64 {
	return combin.BinomialTail(t.n, t.MinTransversal(), p)
}

// Enumerate materializes the system for exact cross-checks. The quorum
// count C(n, ℓ) must stay at or below limit (default 100000 when ≤ 0).
func (t *Threshold) Enumerate(limit int) (*core.ExplicitSystem, error) {
	if limit <= 0 {
		limit = 100000
	}
	count, err := combin.Binomial(t.n, t.l)
	if err != nil || count > int64(limit) {
		return nil, fmt.Errorf("systems: %s: C(%d,%d) quorums exceed limit %d", t.name, t.n, t.l, limit)
	}
	quorums := make([]bitset.Set, 0, count)
	combin.Combinations(t.n, t.l, func(comb []int) bool {
		quorums = append(quorums, bitset.FromSlice(comb))
		return true
	})
	return core.NewExplicit(t.name, t.n, quorums)
}
