package systems

import (
	"fmt"
	"math"
	"math/rand"

	"bqs/internal/bitset"
	"bqs/internal/combin"
	"bqs/internal/core"
)

// RT is the recursive threshold system RT(k, ℓ) of depth h (Section 5.2,
// Figure 2): an ℓ-of-k threshold composed over itself h times. It
// generalizes the recursive majorities of [MP92] and the HQS system of
// [Kum91] (= RT(3,2)); the [MR98a] Threshold is the trivial depth-1
// RT(4b+1, 3b+1). Parameters (Proposition 5.3): n = k^h, c = ℓ^h,
// IS = (2ℓ−k)^h, MT = (k−ℓ+1)^h; the system is fair, so L = (ℓ/k)^h
// = n^−(1−log_k ℓ) (Proposition 5.5).
type RT struct {
	name    string
	k, l, h int
	n       int
}

var (
	_ core.System        = (*RT)(nil)
	_ core.Sampler       = (*RT)(nil)
	_ core.Parameterized = (*RT)(nil)
	_ core.Masking       = (*RT)(nil)
	_ core.Enumerator    = (*RT)(nil)
)

// NewRT builds RT(k, ℓ) of depth h. Requires k > ℓ > k/2 (the paper's
// building-block condition) and h ≥ 1, with k^h fitting in an int.
func NewRT(k, l, h int) (*RT, error) {
	if h < 1 {
		return nil, fmt.Errorf("systems: rt: depth %d must be ≥ 1", h)
	}
	if !(k > l && 2*l > k) {
		return nil, fmt.Errorf("systems: rt: need k > ℓ > k/2, got k=%d ℓ=%d", k, l)
	}
	n64, err := combin.IPow(k, h)
	if err != nil || n64 > 1<<30 {
		return nil, fmt.Errorf("systems: rt: k^h = %d^%d too large", k, h)
	}
	return &RT{
		name: fmt.Sprintf("RT(%d,%d,h=%d)", k, l, h),
		k:    k, l: l, h: h,
		n: int(n64),
	}, nil
}

// Name returns the system's label.
func (r *RT) Name() string { return r.name }

// UniverseSize returns n = k^h.
func (r *RT) UniverseSize() int { return r.n }

// Arity returns k, Quota returns ℓ, Depth returns h.
func (r *RT) Arity() int { return r.k }
func (r *RT) Quota() int { return r.l }
func (r *RT) Depth() int { return r.h }

// SelectQuorum recursively assembles a live quorum: at each internal node,
// ℓ of the k child subtrees must themselves produce live quorums. Children
// are tried in random order so repeated calls spread load across subtrees.
func (r *RT) SelectQuorum(rng *rand.Rand, dead bitset.Set) (bitset.Set, error) {
	q := bitset.New(r.n)
	if !r.selectRec(rng, dead, 0, r.h, &q) {
		return bitset.Set{}, core.ErrNoLiveQuorum
	}
	return q, nil
}

// selectRec tries to place a quorum of the subtree rooted at the block
// [offset, offset+k^depth) into out, returning false if impossible.
func (r *RT) selectRec(rng *rand.Rand, dead bitset.Set, offset, depth int, out *bitset.Set) bool {
	if depth == 0 {
		if dead.Contains(offset) {
			return false
		}
		out.Add(offset)
		return true
	}
	block := intPow(r.k, depth-1)
	order := rng.Perm(r.k)
	got := 0
	// Tentatively collect into a scratch set per child so failed children
	// leave no residue.
	for _, child := range order {
		scratch := bitset.New(r.n)
		if r.selectRec(rng, dead, offset+child*block, depth-1, &scratch) {
			out.UnionWith(scratch)
			got++
			if got == r.l {
				return true
			}
		}
	}
	return false
}

// SampleQuorum draws from the symmetric strategy: at each node pick a
// uniformly random ℓ-subset of children. The system is fair, so this is
// load optimal.
func (r *RT) SampleQuorum(rng *rand.Rand) bitset.Set {
	q := bitset.New(r.n)
	r.sampleRec(rng, 0, r.h, &q)
	return q
}

func (r *RT) sampleRec(rng *rand.Rand, offset, depth int, out *bitset.Set) {
	if depth == 0 {
		out.Add(offset)
		return
	}
	block := intPow(r.k, depth-1)
	for _, child := range combin.RandomKSubset(rng, r.k, r.l) {
		r.sampleRec(rng, offset+child*block, depth-1, out)
	}
}

// MinQuorumSize returns c = ℓ^h.
func (r *RT) MinQuorumSize() int { return intPow(r.l, r.h) }

// MinIntersection returns IS = (2ℓ−k)^h.
func (r *RT) MinIntersection() int { return intPow(2*r.l-r.k, r.h) }

// MinTransversal returns MT = (k−ℓ+1)^h.
func (r *RT) MinTransversal() int { return intPow(r.k-r.l+1, r.h) }

// MaskingBound applies Corollaries 3.7/5.4:
// b = min{((2ℓ−k)^h − 1)/2, (k−ℓ+1)^h − 1}.
func (r *RT) MaskingBound() int { return core.MaskingBoundFromParams(r) }

// Load returns the exact load (ℓ/k)^h = n^−(1−log_k ℓ) (Proposition 5.5).
func (r *RT) Load() float64 {
	return math.Pow(float64(r.l)/float64(r.k), float64(r.h))
}

// BlockCrash is g(p): the crash probability of the ℓ-of-k building block,
// i.e. the probability that ≥ k−ℓ+1 of k components fail.
func (r *RT) BlockCrash(p float64) float64 {
	return combin.BinomialTail(r.k, r.k-r.l+1, p)
}

// CrashProbability iterates the Proposition 5.6 recurrence
// F(h) = g(F(h−1)), F(0) = p — exact by Theorem 4.7's composition rule.
func (r *RT) CrashProbability(p float64) float64 {
	f := p
	for i := 0; i < r.h; i++ {
		f = r.BlockCrash(f)
	}
	return f
}

// CriticalProbability returns p_c, the unique fixed point of g in (0,1)
// (Proposition 5.6): F_p → 0 for p < p_c and → 1 for p > p_c as h → ∞.
// Found by bisection on g(p) − p.
func (r *RT) CriticalProbability() float64 {
	lo, hi := 1e-9, 1-1e-9
	// g(p) < p near 0 and g(p) > p near 1 for threshold reliability
	// functions; bisect the sign change of g(p) − p.
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if r.BlockCrash(mid) < mid {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// CrashUpperBound is Proposition 5.7: for p < 1/C(k,ℓ−1),
// F_p < (C(k,ℓ−1)·p)^((k−ℓ+1)^h), decaying as exp(−Ω(n^{log_k(k−ℓ+1)})).
func (r *RT) CrashUpperBound(p float64) float64 {
	c := combin.BinomialFloat(r.k, r.l-1)
	x := c * p
	if x >= 1 {
		return 1
	}
	return math.Pow(x, float64(r.MinTransversal()))
}

// Enumerate materializes the system for exact cross-checks on small
// instances. The quorum count is C(k,ℓ)·N(h−1)^ℓ, growing doubly
// exponentially; limit defaults to 100000 when ≤ 0.
func (r *RT) Enumerate(limit int) (*core.ExplicitSystem, error) {
	if limit <= 0 {
		limit = 100000
	}
	quorums, err := r.enumRec(0, r.h, limit)
	if err != nil {
		return nil, err
	}
	return core.NewExplicit(r.name, r.n, quorums)
}

func (r *RT) enumRec(offset, depth, limit int) ([]bitset.Set, error) {
	if depth == 0 {
		return []bitset.Set{bitset.FromSlice([]int{offset})}, nil
	}
	block := intPow(r.k, depth-1)
	childQs := make([][]bitset.Set, r.k)
	for c := 0; c < r.k; c++ {
		qs, err := r.enumRec(offset+c*block, depth-1, limit)
		if err != nil {
			return nil, err
		}
		childQs[c] = qs
	}
	var out []bitset.Set
	combin.Combinations(r.k, r.l, func(children []int) bool {
		// Cartesian product of the chosen children's quorum lists.
		idx := make([]int, len(children))
		for {
			q := bitset.New(r.n)
			for pos, c := range children {
				q.UnionWith(childQs[c][idx[pos]])
			}
			out = append(out, q)
			if len(out) > limit {
				return false
			}
			pos := len(idx) - 1
			for pos >= 0 {
				idx[pos]++
				if idx[pos] < len(childQs[children[pos]]) {
					break
				}
				idx[pos] = 0
				pos--
			}
			if pos < 0 {
				return true
			}
		}
	})
	if len(out) > limit {
		return nil, fmt.Errorf("systems: %s: quorum count exceeds limit %d", r.name, limit)
	}
	return out, nil
}

func intPow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}
