package systems

import (
	"fmt"
	"math/rand"

	"bqs/internal/bitset"
	"bqs/internal/combin"
	"bqs/internal/core"
	"bqs/internal/lattice"
)

// MPathEdge is the square-lattice variant the paper mentions at the end
// of Section 7 and omits: servers are the EDGES of a d×d vertex grid (as
// in [NW98]), a quorum being √(2b+1) edge-disjoint open left-right paths
// in the primal lattice together with √(2b+1) top-bottom paths in the
// planar dual (represented by the primal edges they cross). Planar
// duality makes every LR path share an edge with every dual TB path, so
// the r² pairwise crossings give IS ≥ 2b+1 exactly as in Proposition 7.1.
// Bond percolation on the square lattice has p_c = 1/2 [Kes80], so the
// availability behavior matches the triangular M-Path; the ablation
// finding is the load: the straight-line strategy touches only horizontal
// edges, costing a factor ≈ √2 over the triangular construction.
type MPathEdge struct {
	name string
	d, b int
	r    int
	grid *lattice.SquareEdgeGrid
}

var (
	_ core.System        = (*MPathEdge)(nil)
	_ core.Sampler       = (*MPathEdge)(nil)
	_ core.Parameterized = (*MPathEdge)(nil)
	_ core.Masking       = (*MPathEdge)(nil)
)

// NewMPathEdge builds the edge variant on a d×d vertex grid
// (n = 2d(d−1) servers). The dual admits only d−1 disjoint TB paths, so
// √(2b+1) ≤ d−1 is required, along with resilience ≥ b.
func NewMPathEdge(d, b int) (*MPathEdge, error) {
	if b < 0 || d < 2 {
		return nil, fmt.Errorf("systems: m-path-edge: invalid d=%d b=%d", d, b)
	}
	r := combin.CeilSqrt(2*b + 1)
	if r > d-1 {
		return nil, fmt.Errorf("systems: m-path-edge: √(2b+1)=%d exceeds dual capacity %d", r, d-1)
	}
	if d-1-r < b {
		return nil, fmt.Errorf("systems: m-path-edge: resilience %d below b=%d", d-1-r, b)
	}
	g, err := lattice.NewSquareEdge(d)
	if err != nil {
		return nil, err
	}
	return &MPathEdge{
		name: fmt.Sprintf("M-PathEdge(d=%d,b=%d)", d, b),
		d:    d, b: b, r: r,
		grid: g,
	}, nil
}

// Name returns the system's label.
func (m *MPathEdge) Name() string { return m.name }

// UniverseSize returns n = 2d(d−1) (one server per edge).
func (m *MPathEdge) UniverseSize() int { return m.grid.NumEdges() }

// Side returns d; PathsPerAxis returns √(2b+1).
func (m *MPathEdge) Side() int         { return m.d }
func (m *MPathEdge) PathsPerAxis() int { return m.r }

// SelectQuorum finds r edge-disjoint open LR primal paths plus r dual TB
// paths with open, disjoint crossed edges, returning the union of all
// involved edges.
func (m *MPathEdge) SelectQuorum(rng *rand.Rand, dead bitset.Set) (bitset.Set, error) {
	lr, err := m.grid.DisjointLRPaths(dead, m.r)
	if err != nil {
		return bitset.Set{}, fmt.Errorf("systems: m-path-edge: %w", err)
	}
	if len(lr) < m.r {
		return bitset.Set{}, core.ErrNoLiveQuorum
	}
	tb, err := m.grid.DisjointDualTBPaths(dead, m.r)
	if err != nil {
		return bitset.Set{}, fmt.Errorf("systems: m-path-edge: %w", err)
	}
	if len(tb) < m.r {
		return bitset.Set{}, core.ErrNoLiveQuorum
	}
	q := bitset.New(m.UniverseSize())
	for _, p := range append(lr, tb...) {
		for _, e := range p {
			q.Add(e)
		}
	}
	return q, nil
}

// SampleQuorum uses the straight-line strategy: r random rows of
// horizontal edges as LR paths, and r random columns of horizontal edges
// as the crossed sets of straight dual TB paths.
func (m *MPathEdge) SampleQuorum(rng *rand.Rand) bitset.Set {
	q := bitset.New(m.UniverseSize())
	for _, row := range combin.RandomKSubset(rng, m.d, m.r) {
		for j := 0; j < m.d-1; j++ {
			q.Add(m.grid.HEdge(row, j))
		}
	}
	for _, col := range combin.RandomKSubset(rng, m.d-1, m.r) {
		for i := 0; i < m.d; i++ {
			q.Add(m.grid.HEdge(i, col))
		}
	}
	return q
}

// MinQuorumSize returns the straight-line quorum size
// r(d−1) + rd − r² (rows of H edges plus columns of H edges minus
// crossings), witnessing c ≤ 2√(n(2b+1)) as in Proposition 7.1.
func (m *MPathEdge) MinQuorumSize() int { return m.r*(m.d-1) + m.r*m.d - m.r*m.r }

// MinIntersection returns the duality guarantee r² ≥ 2b+1: every LR
// primal path crosses every dual TB path in at least one edge.
func (m *MPathEdge) MinIntersection() int { return m.r * m.r }

// MinTransversal returns d−r: the primal LR min cut is d and the dual TB
// min cut is d−1, so killing (d−1)−r+1 = d−r edges starves the dual side
// first.
func (m *MPathEdge) MinTransversal() int { return m.d - m.r }

// MaskingBound applies Corollary 3.7.
func (m *MPathEdge) MaskingBound() int { return core.MaskingBoundFromParams(m) }

// DeclaredB returns the b the system was built for.
func (m *MPathEdge) DeclaredB() int { return m.b }

// Load returns the straight-line strategy's exact busiest-edge frequency.
// Horizontal edge H(i,j) is hit when row i (probability r/d) or column j
// (probability r/(d−1)) is chosen; vertical edges are never hit.
func (m *MPathEdge) Load() float64 {
	pr := float64(m.r) / float64(m.d)
	pc := float64(m.r) / float64(m.d-1)
	return pr + pc - pr*pc
}
