package systems

import (
	"fmt"
	"math/rand"

	"bqs/internal/bitset"
	"bqs/internal/combin"
	"bqs/internal/core"
)

// MGrid is the multi-grid construction of Section 5.1: servers in a d×d
// grid, a quorum being √(b+1) full rows together with √(b+1) full columns
// (Figure 1). Two quorums sharing a line meet in ≥ d elements; otherwise
// the row/column crossings give ≥ 2(b+1) > 2b+1 elements, so the system is
// b-masking for b ≤ (√n − 1)/2 (Proposition 5.1). Its load ≈ 2√(b+1)/√n is
// optimal (Proposition 5.2), but F_p → 1 as n → ∞ (the [KC91, Woo96] row
// bound).
type MGrid struct {
	name string
	d, b int
	r    int // lines per direction: ⌈√(b+1)⌉
}

var (
	_ core.System        = (*MGrid)(nil)
	_ core.Sampler       = (*MGrid)(nil)
	_ core.Parameterized = (*MGrid)(nil)
	_ core.Masking       = (*MGrid)(nil)
	_ core.Enumerator    = (*MGrid)(nil)
)

// NewMGrid builds M-Grid(b) on a d×d universe. Requires √(b+1) ≤ d and
// the Proposition 5.1 masking condition d − √(b+1) ≥ b (resilience ≥ b).
func NewMGrid(d, b int) (*MGrid, error) {
	if b < 0 || d < 1 {
		return nil, fmt.Errorf("systems: m-grid: invalid d=%d b=%d", d, b)
	}
	r := combin.CeilSqrt(b + 1)
	if r > d {
		return nil, fmt.Errorf("systems: m-grid: √(b+1)=%d exceeds side %d", r, d)
	}
	if d-r < b {
		return nil, fmt.Errorf("systems: m-grid: resilience d−√(b+1)=%d below b=%d (Prop 5.1 needs b ≤ (√n−1)/2)", d-r, b)
	}
	return &MGrid{name: fmt.Sprintf("M-Grid(d=%d,b=%d)", d, b), d: d, b: b, r: r}, nil
}

// Name returns the system's label.
func (m *MGrid) Name() string { return m.name }

// UniverseSize returns n = d².
func (m *MGrid) UniverseSize() int { return m.d * m.d }

// Side returns d; LinesPerAxis returns √(b+1).
func (m *MGrid) Side() int         { return m.d }
func (m *MGrid) LinesPerAxis() int { return m.r }

func (m *MGrid) quorum(rows, cols []int) bitset.Set {
	q := bitset.New(m.d * m.d)
	for _, r := range rows {
		for c := 0; c < m.d; c++ {
			q.Add(r*m.d + c)
		}
	}
	for _, c := range cols {
		for r := 0; r < m.d; r++ {
			q.Add(r*m.d + c)
		}
	}
	return q
}

func (m *MGrid) freeLines(dead bitset.Set, axis int) []int {
	free := make([]int, 0, m.d)
	for line := 0; line < m.d; line++ {
		ok := true
		for k := 0; k < m.d; k++ {
			var v int
			if axis == 0 {
				v = line*m.d + k
			} else {
				v = k*m.d + line
			}
			if dead.Contains(v) {
				ok = false
				break
			}
		}
		if ok {
			free = append(free, line)
		}
	}
	return free
}

// SelectQuorum picks √(b+1) fully-live rows and columns.
func (m *MGrid) SelectQuorum(rng *rand.Rand, dead bitset.Set) (bitset.Set, error) {
	rows := m.freeLines(dead, 0)
	cols := m.freeLines(dead, 1)
	if len(rows) < m.r || len(cols) < m.r {
		return bitset.Set{}, core.ErrNoLiveQuorum
	}
	ri := combin.RandomKSubset(rng, len(rows), m.r)
	ci := combin.RandomKSubset(rng, len(cols), m.r)
	pickRows := make([]int, m.r)
	pickCols := make([]int, m.r)
	for i := range ri {
		pickRows[i] = rows[ri[i]]
		pickCols[i] = cols[ci[i]]
	}
	return m.quorum(pickRows, pickCols), nil
}

// SampleQuorum draws uniformly random row and column sets (fair strategy;
// Proposition 5.2's optimal load).
func (m *MGrid) SampleQuorum(rng *rand.Rand) bitset.Set {
	return m.quorum(
		combin.RandomKSubset(rng, m.d, m.r),
		combin.RandomKSubset(rng, m.d, m.r),
	)
}

// MinQuorumSize returns c = 2rd − r² (r rows + r columns minus crossings).
func (m *MGrid) MinQuorumSize() int { return 2*m.r*m.d - m.r*m.r }

// MinIntersection returns IS exactly. A pair sharing j rows and k columns
// meets in j·d + k·d − j·k + 2(r−j)(r−k) elements; when 2r ≤ d the minimum
// is at j=k=0, the 2r² crossings of Proposition 5.1, otherwise sharing is
// forced (j, k ≥ 2r−d) and the minimum sits on that boundary.
func (m *MGrid) MinIntersection() int {
	r, d := m.r, m.d
	jMin := 2*r - d
	if jMin < 0 {
		jMin = 0
	}
	best := -1
	for j := jMin; j <= r; j++ {
		for k := jMin; k <= r; k++ {
			if j == r && k == r {
				continue // identical quorums
			}
			v := j*d + k*d - j*k + 2*(r-j)*(r-k)
			if best < 0 || v < best {
				best = v
			}
		}
	}
	return best
}

// MinTransversal returns MT = d − √(b+1) + 1 (touch all but r−1 rows).
func (m *MGrid) MinTransversal() int { return m.d - m.r + 1 }

// MaskingBound applies Corollary 3.7; it is ≥ the declared b by
// construction (Proposition 5.1).
func (m *MGrid) MaskingBound() int { return core.MaskingBoundFromParams(m) }

// DeclaredB returns the b the system was built for.
func (m *MGrid) DeclaredB() int { return m.b }

// Load returns the exact load c/n ≈ 2√(b+1)/√n (fair, Proposition 3.9).
func (m *MGrid) Load() float64 {
	return float64(m.MinQuorumSize()) / float64(m.UniverseSize())
}

// Enumerate materializes the C(d,r)² row/column-set quorums for exact
// analysis (LP load, strategy-backed selection). The quorum count must
// stay at or below limit (default 100000 when ≤ 0).
func (m *MGrid) Enumerate(limit int) (*core.ExplicitSystem, error) {
	if limit <= 0 {
		limit = 100000
	}
	per, err := combin.Binomial(m.d, m.r)
	if err != nil || per > int64(limit) || per*per > int64(limit) {
		return nil, fmt.Errorf("systems: %s: C(%d,%d)² quorums exceed limit %d", m.name, m.d, m.r, limit)
	}
	lineSets := make([][]int, 0, per)
	combin.Combinations(m.d, m.r, func(c []int) bool {
		lineSets = append(lineSets, append([]int(nil), c...))
		return true
	})
	quorums := make([]bitset.Set, 0, per*per)
	for _, rows := range lineSets {
		for _, cols := range lineSets {
			quorums = append(quorums, m.quorum(rows, cols))
		}
	}
	return core.NewExplicit(m.name, m.UniverseSize(), quorums)
}

// CrashLowerBoundRows is the [KC91, Woo96] bound quoted in Section 5.1:
// F_p ≥ (1−(1−p)^d)^d — one crash per row disables the system — which
// tends to 1 as n grows for any fixed p > 0.
func (m *MGrid) CrashLowerBoundRows(p float64) float64 {
	rowAlive := pow(1-p, m.d)
	return pow(1-rowAlive, m.d)
}
