package systems

import (
	"fmt"
	"math/rand"

	"bqs/internal/bitset"
	"bqs/internal/combin"
	"bqs/internal/core"
	"bqs/internal/lattice"
)

// MPath is the multi-path construction of Section 7 (Figure 3): servers
// are the vertices of a triangulated d×d grid, a quorum being √(2b+1)
// vertex-disjoint left-right paths together with √(2b+1) vertex-disjoint
// top-bottom paths. The LR paths of one quorum cross the TB paths of
// another in ≥ 2b+1 distinct vertices (Proposition 7.1). M-Path is optimal
// in both load (≤ 2√((2b+1)/n), Proposition 7.2) and crash probability
// (F_p ≤ exp(−Ω(√n−√b)) for every p < 1/2, Proposition 7.3 — via site
// percolation on the triangular lattice, whose critical probability is
// 1/2).
type MPath struct {
	name string
	d, b int
	r    int // disjoint paths per direction: ⌈√(2b+1)⌉
	grid *lattice.Grid
}

var (
	_ core.System        = (*MPath)(nil)
	_ core.Sampler       = (*MPath)(nil)
	_ core.Parameterized = (*MPath)(nil)
	_ core.Masking       = (*MPath)(nil)
)

// NewMPath builds M-Path(b) on a d×d triangulated grid. Requires
// √(2b+1) ≤ d and the Proposition 7.1 masking condition
// MT − 1 = d − √(2b+1) ≥ b.
func NewMPath(d, b int) (*MPath, error) {
	if b < 0 || d < 1 {
		return nil, fmt.Errorf("systems: m-path: invalid d=%d b=%d", d, b)
	}
	r := combin.CeilSqrt(2*b + 1)
	if r > d {
		return nil, fmt.Errorf("systems: m-path: √(2b+1)=%d exceeds side %d", r, d)
	}
	if d-r < b {
		return nil, fmt.Errorf("systems: m-path: resilience d−√(2b+1)=%d below b=%d", d-r, b)
	}
	g, err := lattice.New(d)
	if err != nil {
		return nil, err
	}
	return &MPath{
		name: fmt.Sprintf("M-Path(d=%d,b=%d)", d, b),
		d:    d, b: b, r: r,
		grid: g,
	}, nil
}

// Name returns the system's label.
func (m *MPath) Name() string { return m.name }

// UniverseSize returns n = d².
func (m *MPath) UniverseSize() int { return m.d * m.d }

// Side returns d; PathsPerAxis returns √(2b+1).
func (m *MPath) Side() int         { return m.d }
func (m *MPath) PathsPerAxis() int { return m.r }

// Grid exposes the underlying lattice (for rendering and analysis).
func (m *MPath) Grid() *lattice.Grid { return m.grid }

// SelectQuorum finds √(2b+1) vertex-disjoint open LR paths and as many TB
// paths via max-flow (Menger's theorem) and returns their union.
func (m *MPath) SelectQuorum(rng *rand.Rand, dead bitset.Set) (bitset.Set, error) {
	lr, err := m.grid.DisjointPaths(lattice.LeftRight, dead, m.r)
	if err != nil {
		return bitset.Set{}, fmt.Errorf("systems: m-path: %w", err)
	}
	if len(lr) < m.r {
		return bitset.Set{}, core.ErrNoLiveQuorum
	}
	tb, err := m.grid.DisjointPaths(lattice.TopBottom, dead, m.r)
	if err != nil {
		return bitset.Set{}, fmt.Errorf("systems: m-path: %w", err)
	}
	if len(tb) < m.r {
		return bitset.Set{}, core.ErrNoLiveQuorum
	}
	q := bitset.New(m.d * m.d)
	for _, p := range lr {
		for _, v := range p {
			q.Add(v)
		}
	}
	for _, p := range tb {
		for _, v := range p {
			q.Add(v)
		}
	}
	return q, nil
}

// SampleQuorum implements the Proposition 7.2 strategy: √(2b+1) uniformly
// random straight rows (as LR paths) and as many straight columns (as TB
// paths), giving load ≤ 2√(2b+1)/√n — optimal by Corollary 4.2.
func (m *MPath) SampleQuorum(rng *rand.Rand) bitset.Set {
	q := bitset.New(m.d * m.d)
	for _, row := range combin.RandomKSubset(rng, m.d, m.r) {
		for c := 0; c < m.d; c++ {
			q.Add(m.grid.Index(row, c))
		}
	}
	for _, col := range combin.RandomKSubset(rng, m.d, m.r) {
		for r := 0; r < m.d; r++ {
			q.Add(m.grid.Index(r, col))
		}
	}
	return q
}

// MinQuorumSize returns the straight-line quorum size 2rd − r², which
// witnesses the paper's bound c(M-Path) ≤ 2√(n(2b+1)) (Proposition 7.1).
// Wiggly paths are longer, so this is the size the strategy actually uses.
func (m *MPath) MinQuorumSize() int { return 2*m.r*m.d - m.r*m.r }

// MinIntersection returns the Proposition 7.1 guarantee IS ≥ r² ≥ 2b+1:
// the r LR paths of one quorum each cross the r TB paths of the other.
func (m *MPath) MinIntersection() int { return m.r * m.r }

// MinTransversal returns MT = d − √(2b+1) + 1 (Proposition 7.1, as in the
// M-Grid system).
func (m *MPath) MinTransversal() int { return m.d - m.r + 1 }

// MaskingBound applies Corollary 3.7.
func (m *MPath) MaskingBound() int { return core.MaskingBoundFromParams(m) }

// DeclaredB returns the b the system was built for.
func (m *MPath) DeclaredB() int { return m.b }

// Load returns the straight-line strategy's load 2r/d − (r/d)², within the
// Proposition 7.2 bound 2√(2b+1)/√n and optimal up to the constant 2.
func (m *MPath) Load() float64 {
	rd := float64(m.r) / float64(m.d)
	return 2*rd - rd*rd
}
