package systems

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"bqs/internal/bitset"
	"bqs/internal/core"
	"bqs/internal/lattice"
	"bqs/internal/measures"
)

func TestMPathEdgeValidation(t *testing.T) {
	if _, err := NewMPathEdge(1, 0); err == nil {
		t.Error("d=1 should fail")
	}
	if _, err := NewMPathEdge(4, 5); err == nil {
		t.Error("r > d−1 should fail")
	}
	if _, err := NewMPathEdge(6, 4); err == nil {
		t.Error("insufficient resilience should fail")
	}
	if _, err := NewMPathEdge(9, 4); err != nil {
		t.Errorf("MPathEdge(9,4) rejected: %v", err)
	}
}

func TestMPathEdgeUniverseAndParams(t *testing.T) {
	m, err := NewMPathEdge(9, 4) // r = 3
	if err != nil {
		t.Fatal(err)
	}
	if m.UniverseSize() != 2*9*8 {
		t.Errorf("n = %d, want 144", m.UniverseSize())
	}
	if m.PathsPerAxis() != 3 {
		t.Errorf("r = %d, want 3", m.PathsPerAxis())
	}
	if m.MinIntersection() != 9 {
		t.Errorf("IS = %d, want 9 ≥ 2b+1", m.MinIntersection())
	}
	if !core.IsBMasking(m, 4) {
		t.Error("MPathEdge(9,4) should be 4-masking")
	}
}

func TestMPathEdgeSelectQuorumDuality(t *testing.T) {
	// Every selected quorum must pairwise intersect in ≥ 2b+1 edges — the
	// planar-duality argument made concrete.
	m, err := NewMPathEdge(8, 2) // r = 3
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(51))
	n := m.UniverseSize()
	for trial := 0; trial < 25; trial++ {
		deadA, deadB := bitset.New(n), bitset.New(n)
		for e := 0; e < n; e++ {
			if rng.Intn(14) == 0 {
				deadA.Add(e)
			}
			if rng.Intn(14) == 0 {
				deadB.Add(e)
			}
		}
		qa, errA := m.SelectQuorum(rng, deadA)
		qb, errB := m.SelectQuorum(rng, deadB)
		if errA != nil || errB != nil {
			continue
		}
		if qa.Intersects(deadA) || qb.Intersects(deadB) {
			t.Fatal("quorum uses dead edge")
		}
		if got := qa.IntersectionCount(qb); got < 2*2+1 {
			t.Fatalf("trial %d: |Q1∩Q2| = %d < 5", trial, got)
		}
	}
}

func TestMPathEdgeStraightQuorumIsValid(t *testing.T) {
	// The sampled straight-line quorum must itself satisfy the masking
	// intersection property against max-flow-selected quorums.
	m, _ := NewMPathEdge(9, 4)
	rng := rand.New(rand.NewSource(52))
	straight := m.SampleQuorum(rng)
	flowQ, err := m.SelectQuorum(rng, bitset.New(m.UniverseSize()))
	if err != nil {
		t.Fatal(err)
	}
	if got := straight.IntersectionCount(flowQ); got < 9 {
		t.Fatalf("straight vs flow quorum intersect in %d < 9 edges", got)
	}
	if straight.Count() != m.MinQuorumSize() {
		t.Errorf("straight quorum size %d, want %d", straight.Count(), m.MinQuorumSize())
	}
}

func TestMPathEdgeLoadAblation(t *testing.T) {
	// Ablation vs the triangular M-Path: at comparable n and the same b,
	// the edge variant's load is ≈ √2 higher (only horizontal edges carry
	// straight-line traffic).
	vertexVariant, err := NewMPath(17, 4) // n = 289
	if err != nil {
		t.Fatal(err)
	}
	edgeVariant, err := NewMPathEdge(13, 4) // n = 312
	if err != nil {
		t.Fatal(err)
	}
	ratio := edgeVariant.Load() / vertexVariant.Load()
	if ratio < 1.1 || ratio > 2.1 {
		t.Errorf("edge/vertex load ratio = %.2f, expected ≈ √2", ratio)
	}
	// Still within the Corollary 4.2 bound regime.
	lower := measures.GlobalLoadLowerBound(edgeVariant.UniverseSize(), 4)
	if edgeVariant.Load() < lower {
		t.Error("load below lower bound — impossible")
	}
}

func TestMPathEdgeEmpiricalLoad(t *testing.T) {
	m, _ := NewMPathEdge(9, 4)
	rng := rand.New(rand.NewSource(53))
	got := measures.EmpiricalLoad(m, 20000, rng)
	if math.Abs(got-m.Load()) > 0.04 {
		t.Errorf("empirical %g vs analytic %g", got, m.Load())
	}
}

func TestMPathEdgeFailsWhenCut(t *testing.T) {
	m, _ := NewMPathEdge(6, 1) // r = 2
	rng := rand.New(rand.NewSource(54))
	// Kill all horizontal edges in rows 0..4 at column 0 and all vertical
	// edges... simpler: kill every H edge, leaving no dual TB paths.
	dead := bitset.New(m.UniverseSize())
	g, _ := lattice.NewSquareEdge(6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 5; j++ {
			dead.Add(g.HEdge(i, j))
		}
	}
	if _, err := m.SelectQuorum(rng, dead); !errors.Is(err, core.ErrNoLiveQuorum) {
		t.Errorf("err = %v, want ErrNoLiveQuorum", err)
	}
}

func TestMPathEdgeBondPercolationAvailability(t *testing.T) {
	// Bond percolation p_c = 1/2: at p = 0.25 the system should survive
	// most random failure patterns; Monte Carlo sanity check.
	m, err := NewMPathEdge(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(55))
	mc, err := measures.CrashProbabilityMC(m, 0.25, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Estimate > 0.35 {
		t.Errorf("F_0.25 = %g, expected small below p_c = 1/2", mc.Estimate)
	}
}

func TestSquareEdgeGridPrimitives(t *testing.T) {
	g, err := lattice.NewSquareEdge(5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2*5*4 {
		t.Errorf("edges = %d, want 40", g.NumEdges())
	}
	// Edge ids must be unique and within range.
	seen := map[int]bool{}
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			for _, e := range []int{g.HEdge(i, j), g.VEdge(j, i)} {
				if e < 0 || e >= g.NumEdges() || seen[e] {
					t.Fatalf("bad edge id %d", e)
				}
				seen[e] = true
			}
		}
	}
	// Full grid: 5 disjoint LR paths (the rows), 4 dual TB paths.
	empty := bitset.New(g.NumEdges())
	lr, err := g.DisjointLRPaths(empty, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(lr) != 5 {
		t.Errorf("LR paths = %d, want 5", len(lr))
	}
	tb, err := g.DisjointDualTBPaths(empty, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb) != 4 {
		t.Errorf("dual TB paths = %d, want 4", len(tb))
	}
	// Edge-disjointness within each family.
	for _, fam := range [][][]int{lr, tb} {
		used := map[int]bool{}
		for _, p := range fam {
			for _, e := range p {
				if used[e] {
					t.Fatal("edge reused within family")
				}
				used[e] = true
			}
		}
	}
	// Duality: every LR path shares ≥ 1 edge with every dual TB path.
	for _, lp := range lr {
		for _, tp := range tb {
			if !sharesEdge(lp, tp) {
				t.Fatalf("LR path %v misses dual TB path %v — duality violated", lp, tp)
			}
		}
	}
	if _, err := g.DisjointLRPaths(empty, 0); err == nil {
		t.Error("maxPaths=0 should fail")
	}
	if _, err := g.DisjointDualTBPaths(empty, 0); err == nil {
		t.Error("maxPaths=0 should fail")
	}
	if _, err := lattice.NewSquareEdge(1); err == nil {
		t.Error("d=1 should fail")
	}
}

func sharesEdge(a, b []int) bool {
	set := map[int]bool{}
	for _, e := range a {
		set[e] = true
	}
	for _, e := range b {
		if set[e] {
			return true
		}
	}
	return false
}
