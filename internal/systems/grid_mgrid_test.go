package systems

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"bqs/internal/bitset"
	"bqs/internal/core"
	"bqs/internal/measures"
)

// enumerateGrid materializes all Grid quorums for exact cross-checks via
// the production Enumerate method, so every parameter cross-check below
// also validates the enumeration the strategy-backed picker consumes.
func enumerateGrid(t *testing.T, g *Grid) *core.ExplicitSystem {
	t.Helper()
	ex, err := g.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 0); err == nil {
		t.Error("d=0 should fail")
	}
	if _, err := NewGrid(4, -1); err == nil {
		t.Error("b<0 should fail")
	}
	if _, err := NewGrid(4, 2); err == nil {
		t.Error("2b+1 > d should fail")
	}
	if _, err := NewGrid(6, 2); err == nil {
		t.Error("b > (d−1)/3 should fail")
	}
	if _, err := NewGrid(7, 2); err != nil {
		t.Errorf("Grid(7,2) rejected: %v", err)
	}
}

func TestGridParamsMatchEnumeration(t *testing.T) {
	g, err := NewGrid(4, 1) // n=16, 1 row + 3 cols
	if err != nil {
		t.Fatal(err)
	}
	ex := enumerateGrid(t, g)
	if ex.MinQuorumSize() != g.MinQuorumSize() {
		t.Errorf("c: explicit %d vs formula %d", ex.MinQuorumSize(), g.MinQuorumSize())
	}
	if ex.MinIntersection() != g.MinIntersection() {
		t.Errorf("IS: explicit %d vs formula %d", ex.MinIntersection(), g.MinIntersection())
	}
	if ex.MinTransversal() != g.MinTransversal() {
		t.Errorf("MT: explicit %d vs formula %d", ex.MinTransversal(), g.MinTransversal())
	}
	if !core.IsBMasking(ex, g.DeclaredB()) {
		t.Error("Grid(4,1) should be 1-masking")
	}
}

func TestGridLoadMatchesLP(t *testing.T) {
	g, _ := NewGrid(4, 1)
	ex := enumerateGrid(t, g)
	load, _, err := measures.Load(ex)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(load-g.Load()) > 1e-6 {
		t.Errorf("LP load %g vs closed form %g", load, g.Load())
	}
}

func TestGridSelectQuorum(t *testing.T) {
	g, _ := NewGrid(7, 2)
	rng := rand.New(rand.NewSource(6))
	dead := bitset.FromSlice([]int{0, 8}) // kills rows 0–1 and cols 0–1; 5 free cols remain
	q, err := g.SelectQuorum(rng, dead)
	if err != nil {
		t.Fatal(err)
	}
	if q.Intersects(dead) {
		t.Fatal("quorum uses dead element")
	}
	// Killing one element per row leaves no free row.
	deadRows := bitset.New(49)
	for r := 0; r < 7; r++ {
		deadRows.Add(r*7 + (r % 7))
	}
	if _, err := g.SelectQuorum(rng, deadRows); !errors.Is(err, core.ErrNoLiveQuorum) {
		t.Errorf("err = %v, want ErrNoLiveQuorum", err)
	}
}

func TestGridCrashLowerBoundRows(t *testing.T) {
	// The row bound must actually lower-bound the measured F_p.
	g, _ := NewGrid(4, 1)
	ex := enumerateGrid(t, g)
	for _, p := range []float64{0.2, 0.4} {
		exact, err := measures.CrashProbabilityExact(ex, p)
		if err != nil {
			t.Fatal(err)
		}
		if bound := g.CrashLowerBoundRows(p); exact < bound-1e-9 {
			t.Errorf("p=%g: exact F_p %g below row bound %g", p, exact, bound)
		}
	}
}

func TestMGridValidation(t *testing.T) {
	if _, err := NewMGrid(2, 8); err == nil {
		t.Error("√(b+1) > d should fail")
	}
	if _, err := NewMGrid(4, 1); err != nil {
		t.Errorf("MGrid(4,1) rejected: %v", err)
	}
	// Prop 5.1's own range: d=4 admits b ≤ (√n−1)/2; b=3 has resilience
	// d−√(b+1) = 2 < b and must be rejected.
	if _, err := NewMGrid(4, 3); err == nil {
		t.Error("MGrid(4,3) violates Prop 5.1 resilience and should fail")
	}
	if _, err := NewMGrid(5, 4); err == nil {
		// r = ⌈√5⌉ = 3, d−r = 2 < 4: fails resilience.
		t.Error("insufficient resilience should fail")
	}
	if _, err := NewMGrid(7, 3); err != nil {
		t.Errorf("Figure 1 instance MGrid(7,3) rejected: %v", err)
	}
}

func TestMGridFigure1Instance(t *testing.T) {
	// Figure 1: n = 7×7, b = 3 → quorums of √(b+1) = 2 rows + 2 cols.
	m, err := NewMGrid(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.LinesPerAxis() != 2 {
		t.Errorf("lines per axis = %d, want 2", m.LinesPerAxis())
	}
	if m.MinQuorumSize() != 2*2*7-4 { // 24
		t.Errorf("c = %d, want 24", m.MinQuorumSize())
	}
	if m.MinTransversal() != 7-2+1 {
		t.Errorf("MT = %d, want 6", m.MinTransversal())
	}
	if m.MaskingBound() < 3 {
		t.Errorf("masking bound = %d, want ≥ 3", m.MaskingBound())
	}
	if !core.IsBMasking(m, 3) {
		t.Error("Figure 1 M-Grid should be 3-masking")
	}
}

// enumerateMGrid materializes the M-Grid for exact cross-checks via the
// production Enumerate method.
func enumerateMGrid(t *testing.T, m *MGrid) *core.ExplicitSystem {
	t.Helper()
	ex, err := m.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// TestEnumerateCountsAndLimit pins the quorum counts of the Enumerate
// methods and their limit guards.
func TestEnumerateCountsAndLimit(t *testing.T) {
	g, err := NewGrid(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ex := enumerateGrid(t, g); ex.NumQuorums() != 16 { // d·C(d,2b+1) = 4·4
		t.Errorf("Grid(4,1) enumerates %d quorums, want 16", ex.NumQuorums())
	}
	if _, err := g.Enumerate(10); err == nil {
		t.Error("Grid Enumerate must respect the limit")
	}
	m, err := NewMGrid(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ex := enumerateMGrid(t, m); ex.NumQuorums() != 36 { // C(4,2)²
		t.Errorf("M-Grid(4,1) enumerates %d quorums, want 36", ex.NumQuorums())
	}
	if _, err := m.Enumerate(10); err == nil {
		t.Error("MGrid Enumerate must respect the limit")
	}
}

func TestMGridParamsMatchEnumeration(t *testing.T) {
	m, err := NewMGrid(4, 1) // r=2, n=16, 36 quorums
	if err != nil {
		t.Fatal(err)
	}
	ex := enumerateMGrid(t, m)
	if ex.MinQuorumSize() != m.MinQuorumSize() {
		t.Errorf("c: explicit %d vs formula %d", ex.MinQuorumSize(), m.MinQuorumSize())
	}
	if ex.MinIntersection() != m.MinIntersection() {
		t.Errorf("IS: explicit %d vs formula %d", ex.MinIntersection(), m.MinIntersection())
	}
	if ex.MinTransversal() != m.MinTransversal() {
		t.Errorf("MT: explicit %d vs formula %d", ex.MinTransversal(), m.MinTransversal())
	}
	load, _, err := measures.Load(ex)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(load-m.Load()) > 1e-6 {
		t.Errorf("LP load %g vs closed form %g", load, m.Load())
	}
}

func TestMGridLoadOptimalityProp52(t *testing.T) {
	// Prop 5.2 remark: load is within √2 of the Corollary 4.2 lower bound.
	for _, c := range []struct{ d, b int }{{7, 3}, {16, 8}, {32, 15}} {
		m, err := NewMGrid(c.d, c.b)
		if err != nil {
			t.Fatal(err)
		}
		lower := measures.GlobalLoadLowerBound(m.UniverseSize(), c.b)
		if m.Load() < lower-1e-9 {
			t.Errorf("d=%d b=%d: load %g below lower bound %g (impossible)", c.d, c.b, m.Load(), lower)
		}
		if m.Load() > math.Sqrt2*lower*1.3 {
			t.Errorf("d=%d b=%d: load %g not within ≈√2 of bound %g", c.d, c.b, m.Load(), lower)
		}
	}
}

func TestMGridSelectQuorumUnderFailures(t *testing.T) {
	m, _ := NewMGrid(7, 3)
	rng := rand.New(rand.NewSource(10))
	// Kill 3 scattered elements: rows 0–2 and cols 0–2 unusable, plenty left.
	dead := bitset.FromSlice([]int{0, 7 + 1, 2*7 + 2})
	q, err := m.SelectQuorum(rng, dead)
	if err != nil {
		t.Fatal(err)
	}
	if q.Intersects(dead) {
		t.Fatal("quorum uses dead element")
	}
	// One dead element per row → no free rows → no quorum.
	allRows := bitset.New(49)
	for r := 0; r < 7; r++ {
		allRows.Add(r * 7)
	}
	if _, err := m.SelectQuorum(rng, allRows); !errors.Is(err, core.ErrNoLiveQuorum) {
		t.Errorf("err = %v, want ErrNoLiveQuorum", err)
	}
}

func TestMGridCrashGoesToOne(t *testing.T) {
	// Section 5.1: F_p(M-Grid) ≥ (1−(1−p)^√n)^√n → 1. The row lower bound
	// must increase with d at fixed p and approach 1.
	p := 0.15
	var prev float64
	for _, d := range []int{8, 16, 32, 64} {
		m, err := NewMGrid(d, 3)
		if err != nil {
			t.Fatal(err)
		}
		bound := m.CrashLowerBoundRows(p)
		if bound < prev {
			t.Errorf("row bound not increasing at d=%d: %g < %g", d, bound, prev)
		}
		prev = bound
	}
	if prev < 0.9 {
		t.Errorf("row bound at d=64 = %g, want → 1", prev)
	}
}

func TestMGridEmpiricalLoadMatches(t *testing.T) {
	m, _ := NewMGrid(7, 3)
	rng := rand.New(rand.NewSource(20))
	got := measures.EmpiricalLoad(m, 20000, rng)
	if math.Abs(got-m.Load()) > 0.03 {
		t.Errorf("empirical %g vs analytic %g", got, m.Load())
	}
}
