// Session: the keyed, asynchronous face of the quorum data plane. A
// cluster no longer holds one register but a keyed object space, and a
// Session pipelines many keyed operations at once — ReadAsync/WriteAsync
// return futures, and the probes of every operation in flight coalesce
// into batched transport frames (per destination, flushed on size or a
// short linger). The demo writes a small product catalog with masked
// Byzantine faults present, reads it back concurrently, shows per-key
// isolation, and compares the live load against the LP-optimal L(Q).
package main

import (
	"context"
	"fmt"
	"log"

	"bqs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	const b = 1
	sys, err := bqs.NewMGrid(4, b) // 16 servers, quorums of 2 rows + 2 columns
	if err != nil {
		return err
	}
	cluster, err := bqs.NewCluster(sys, b, bqs.WithSeed(7), bqs.WithOptimalStrategy())
	if err != nil {
		return err
	}
	fmt.Printf("cluster: %s, n=%d, masking b=%d\n", sys.Name(), sys.UniverseSize(), b)

	// One fabricator is within the masking bound; every keyed read below
	// still returns only vouched values.
	if err := cluster.InjectFault(bqs.ByzantineFabricate, 5); err != nil {
		return err
	}
	fmt.Println("faults: server 5 fabricates (within b)")

	// A writer session: 8 keyed writes issued together; their quorum
	// probes share frames instead of paying 8 separate fan-outs.
	writer := cluster.NewClient(1)
	ws := writer.NewSession(bqs.WithSessionBatch(8))
	items := []string{"anvil", "bolt", "cog", "dynamo", "eyelet", "flange", "gasket", "hinge"}
	futures := make([]*bqs.WriteFuture, len(items))
	for i, name := range items {
		futures[i] = ws.WriteAsync(ctx, fmt.Sprintf("sku/%s", name), fmt.Sprintf("%s: %d in stock", name, 10*(i+1)))
	}
	for i, f := range futures {
		if err := f.Wait(); err != nil {
			return fmt.Errorf("write %s: %w", items[i], err)
		}
	}
	if err := ws.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d keys through one batched session\n", len(items))

	// A reader session: all keys read back concurrently.
	reader := cluster.NewClient(2)
	rs := reader.NewSession(bqs.WithSessionBatch(8))
	defer rs.Close()
	reads := make([]*bqs.ReadFuture, len(items))
	for i, name := range items {
		reads[i] = rs.ReadAsync(ctx, fmt.Sprintf("sku/%s", name))
	}
	for i, f := range reads {
		got, err := f.Wait()
		if err != nil {
			return fmt.Errorf("read %s: %w", items[i], err)
		}
		fmt.Printf("  sku/%-8s → %q\n", items[i], got.Value)
	}

	// Per-key isolation: a write to one key never disturbs another. The
	// per-key timestamp protocol means this read still sees cog's value.
	if err := rs.Write(ctx, "sku/cog", "cog: RECALLED"); err != nil {
		return err
	}
	gotCog, err := rs.Read(ctx, "sku/cog")
	if err != nil {
		return err
	}
	gotBolt, err := rs.Read(ctx, "sku/bolt")
	if err != nil {
		return err
	}
	fmt.Printf("after updating sku/cog: cog=%q, bolt=%q (independent registers)\n",
		gotCog.Value, gotBolt.Value)

	// Load is per quorum access and key-oblivious (Definition 3.8): even
	// with every operation keyed, the peak converges to the LP L(Q).
	fmt.Printf("\npeak server load %.3f vs LP L(Q) = %.3f\n",
		cluster.PeakLoad(), cluster.StrategyLoad())
	return nil
}
