// Quickstart: build the paper's Figure 1 system (M-Grid on 7×7 with b=3),
// inspect its parameters against the paper's formulas, pick quorums under
// failures, and measure load and availability.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bqs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The Figure 1 instance: 49 servers in a 7×7 grid, masking b = 3
	// Byzantine failures with quorums of 2 rows + 2 columns.
	sys, err := bqs.NewMGrid(7, 3)
	if err != nil {
		return err
	}
	n := sys.UniverseSize()
	fmt.Printf("system: %s\n", sys.Name())
	fmt.Printf("  n  = %d servers\n", n)
	fmt.Printf("  b  = %d Byzantine failures masked (Cor 3.7)\n", bqs.MaskingBound(sys))
	fmt.Printf("  f  = %d crash failures survived (Def 3.4)\n", bqs.Resilience(sys))
	fmt.Printf("  c  = %d (smallest quorum)\n", sys.MinQuorumSize())
	fmt.Printf("  IS = %d (≥ 2b+1 = %d: the masking property)\n",
		sys.MinIntersection(), 2*bqs.MaskingBound(sys)+1)
	fmt.Printf("  L  = %.4f (lower bound √((2b+1)/n) = %.4f)\n",
		sys.Load(), bqs.GlobalLoadLowerBound(n, bqs.MaskingBound(sys)))

	// Pick a quorum with no failures, then with a few crashed servers.
	rng := rand.New(rand.NewSource(1))
	q, err := sys.SelectQuorum(rng, bqs.NewSet(n))
	if err != nil {
		return err
	}
	fmt.Printf("\nquorum (no failures): %v\n", q)

	dead := bqs.SetOf(0, 8, 16) // three crashed servers
	q2, err := sys.SelectQuorum(rng, dead)
	if err != nil {
		return err
	}
	fmt.Printf("quorum avoiding %v: intersects dead? %v\n", dead, q2.Intersects(dead))
	fmt.Printf("two quorums intersect in %d ≥ 2b+1 = 7 servers\n", q.IntersectionCount(q2))

	// Availability at 10%% element crash probability.
	mc, err := bqs.CrashProbabilityMC(sys, 0.10, 20000, rng)
	if err != nil {
		return err
	}
	fmt.Printf("\nF_0.10 ≈ %.4f ± %.4f (Monte Carlo, %d trials)\n",
		mc.Estimate, mc.StdErr, mc.Trials)
	fmt.Printf("lower bound p^MT = %.2e (Prop 4.3)\n",
		bqs.CrashLowerBoundMT(sys.MinTransversal(), 0.10))

	// Access strategies: M-Grid is fair, so uniform selection is already
	// load-optimal (Prop 3.9) — but for an unbalanced system the choice of
	// strategy is the whole game. The wheel's hub sits in n−1 of its n
	// quorums: picked uniformly it melts, while the Definition 3.8 LP
	// shifts weight to the rim and nearly halves the load.
	wheel, err := bqs.NewWheel(12)
	if err != nil {
		return err
	}
	lq, _, err := bqs.Load(wheel) // LP: L(Q) with an optimal strategy
	if err != nil {
		return err
	}
	uniform := bqs.UniformStrategy(wheel.NumQuorums()).InducedSystemLoad(wheel)
	fmt.Printf("\nwheel(12) access strategies: uniform load %.3f vs LP-optimal L(Q) = %.3f\n",
		uniform, lq)
	fmt.Println("(run bqs-sim -system wheel -b 0 -strategy optimal to watch live traffic hit the LP value)")
	return nil
}
