// Availability: sweep the element crash probability p for four
// constructions at n ≈ 1024 and watch the paper's Table 2 asymptotics
// materialize — M-Grid collapses (F_p → 1) even for small p, the
// Threshold and RT systems amplify reliability below their thresholds,
// and M-Path stays available all the way toward p = 1/2.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bqs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))

	th, err := bqs.NewMaskingThreshold(1021, 255)
	if err != nil {
		return err
	}
	mg, err := bqs.NewMGrid(32, 15)
	if err != nil {
		return err
	}
	rt, err := bqs.NewRT(4, 3, 5)
	if err != nil {
		return err
	}
	mp, err := bqs.NewMPath(32, 7)
	if err != nil {
		return err
	}

	ps := []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40}
	const trials = 600

	fmt.Println("F_p at n ≈ 1024 (Threshold & RT: exact; M-Grid & M-Path: Monte Carlo)")
	fmt.Printf("%6s %12s %12s %12s %12s\n", "p", "Threshold", "M-Grid", "RT(4,3)", "M-Path")
	for _, p := range ps {
		mgMC, err := bqs.CrashProbabilityMC(mg, p, trials, rng)
		if err != nil {
			return err
		}
		mpMC, err := bqs.CrashProbabilityMC(mp, p, trials/3, rng)
		if err != nil {
			return err
		}
		fmt.Printf("%6.2f %12.2e %12.3f %12.2e %12.3f\n",
			p, th.CrashProbability(p), mgMC.Estimate, rt.CrashProbability(p), mpMC.Estimate)
	}

	fmt.Println("\ninterpretation (paper, Table 2):")
	fmt.Println("  Threshold: exp(−Ω(f)) decay — Condorcet below 1/4.")
	fmt.Printf("  RT(4,3):  critical probability p_c = %.4f (Prop 5.6); watch the flip.\n",
		rt.CriticalProbability())
	fmt.Println("  M-Grid:   F_p → 1 — a single crash per row disables it.")
	fmt.Println("  M-Path:   available for every p < 1/2 (percolation, Prop 7.3).")
	return nil
}
