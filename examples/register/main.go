// Register: a fault-tolerant replicated shared variable served through a
// b-masking quorum system (the [MR98a] protocol the paper's constructions
// were designed for). The demo injects Byzantine servers that fabricate
// values with sky-high timestamps plus a few crashes, and shows reads
// still returning the last written value — then hammers the cluster with
// concurrent readers to measure its live load, and finally pushes past
// 2b+1 fabricators to show exactly where the guarantee breaks.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"bqs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	const b = 3
	sys, err := bqs.NewMaskingThreshold(4*b+1, b) // 13 servers, quorums of 10
	if err != nil {
		return err
	}
	// WithOptimalStrategy solves the Definition 3.8 LP at construction and
	// samples quorums from the optimal access strategy, so the live load
	// measured below converges to L(Q) itself (for this fair threshold
	// system the LP confirms the uniform value ℓ/n).
	cluster, err := bqs.NewCluster(sys, b, bqs.WithSeed(42), bqs.WithOptimalStrategy())
	if err != nil {
		return err
	}
	fmt.Printf("cluster: %s, n=%d, masking b=%d, resilience f=%d\n",
		sys.Name(), sys.UniverseSize(), b, bqs.Resilience(sys))

	// Inject exactly b Byzantine fabricators and one crash.
	if err := cluster.InjectFault(bqs.ByzantineFabricate, 2, 5, 11); err != nil {
		return err
	}
	if err := cluster.InjectFault(bqs.Crashed, 7); err != nil {
		return err
	}
	fmt.Println("faults: servers 2,5,11 fabricate; server 7 crashed")

	writer := cluster.NewClient(1)
	reader := cluster.NewClient(2)
	for i := 1; i <= 3; i++ {
		value := fmt.Sprintf("ledger-entry-%d", i)
		if err := writer.Write(ctx, value); err != nil {
			return err
		}
		got, err := reader.Read(ctx)
		if err != nil {
			return err
		}
		status := "OK"
		if got.Value != value {
			status = "VIOLATION"
		}
		fmt.Printf("  write %q → read %q  [%s]\n", value, got.Value, status)
	}

	// Saturate the cluster with concurrent readers; every probe feeds the
	// live load profile, whose peak Theorem 4.1 lower-bounds.
	var wg sync.WaitGroup
	for id := 0; id < 16; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := cluster.NewClient(100 + id)
			for op := 0; op < 50; op++ {
				if _, err := cl.Read(ctx); err != nil {
					fmt.Printf("  concurrent reader %d: %v\n", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	fmt.Printf("\n16 concurrent readers × 50 reads: peak server load %.3f "+
		"(strategy L_w(Q) = %.3f, Theorem 4.1 bound ≥ %.3f)\n",
		cluster.PeakLoad(), cluster.StrategyLoad(),
		bqs.LoadLowerBound(sys.UniverseSize(), b, sys.MinQuorumSize()))
	fmt.Println("(load sits above the fault-free target: avoiding the crashed server",
		"concentrates the strategy's weight on the surviving quorums)")

	// Now exceed the bound: 2b+1 colluding fabricators control every
	// quorum intersection, and the fabricated value wins.
	if err := cluster.InjectFault(bqs.ByzantineFabricate, 0, 1, 3, 4); err != nil {
		return err
	}
	fmt.Println("\nescalating to 2b+1 = 7 fabricators (past the masking bound)...")
	got, err := reader.Read(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("  read now returns %q — masking fails beyond b, as Definition 3.5 predicts\n",
		got.Value)
	if got.Value != bqs.FabricatedValue {
		fmt.Println("  (note: expected the fabricated value to win here)")
	}
	return nil
}
