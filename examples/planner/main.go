// Planner: the Section 8 deployment question — given a fleet size, an
// element failure probability and a load budget, which b-masking quorum
// system should you run? The program evaluates all candidate
// constructions at the requested size and ranks the feasible ones,
// reproducing the paper's n=1024, p=1/8, L≈1/4 discussion by default.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"bqs"
)

type candidate struct {
	name string
	sys  maskingSystem
	load float64
	fp   float64
	how  string
}

type maskingSystem interface {
	bqs.System
	bqs.Parameterized
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	n := flag.Int("n", 1024, "approximate number of servers")
	p := flag.Float64("p", 0.125, "element crash probability")
	loadBudget := flag.Float64("load", 0.25, "maximum acceptable load")
	trials := flag.Int("trials", 2000, "Monte Carlo trials for F_p")
	flag.Parse()

	d := int(math.Sqrt(float64(*n)))
	rng := rand.New(rand.NewSource(8))
	var cands []candidate

	// M-Grid at the largest b whose load fits the budget.
	for b := d / 2; b >= 1; b-- {
		mg, err := bqs.NewMGrid(d, b)
		if err != nil || mg.Load() > *loadBudget {
			continue
		}
		mc, err := bqs.CrashProbabilityMC(mg, *p, *trials, rng)
		if err != nil {
			return err
		}
		cands = append(cands, candidate{mg.Name(), mg, mg.Load(), mc.Estimate, "mc"})
		break
	}

	// boostFPP(q=3, b) sized to ≈ n.
	if b := (*n/13 - 1) / 4; b >= 1 {
		bf, err := bqs.NewBoostFPP(3, b)
		if err == nil && bf.Load() <= *loadBudget {
			fp, err := bf.CrashProbability(*p)
			if err != nil {
				fp = bf.CrashUpperBound(*p)
			}
			cands = append(cands, candidate{bf.Name(), bf, bf.Load(), fp, "exact"})
		}
	}

	// M-Path at the largest feasible b within the budget.
	for b := d; b >= 1; b-- {
		mp, err := bqs.NewMPath(d, b)
		if err != nil || mp.Load() > *loadBudget {
			continue
		}
		mc, err := bqs.CrashProbabilityMC(mp, *p, *trials/4+1, rng)
		if err != nil {
			return err
		}
		cands = append(cands, candidate{mp.Name(), mp, mp.Load(), mc.Estimate, "mc"})
		break
	}

	// RT(4,3) at the depth closest to n.
	h := int(math.Round(math.Log(float64(*n)) / math.Log(4)))
	if h >= 1 {
		rt, err := bqs.NewRT(4, 3, h)
		if err == nil && rt.Load() <= *loadBudget {
			cands = append(cands, candidate{rt.Name(), rt, rt.Load(), rt.CrashProbability(*p), "exact"})
		}
	}

	// Threshold (always feasible, rarely within load budgets < 1/2).
	if b := (*n - 1) / 4; b >= 1 {
		th, err := bqs.NewMaskingThreshold(4*b+1, b)
		if err == nil && th.Load() <= *loadBudget {
			cands = append(cands, candidate{th.Name(), th, th.Load(), th.CrashProbability(*p), "exact"})
		}
	}

	if len(cands) == 0 {
		fmt.Printf("no construction meets load ≤ %.3f at n ≈ %d\n", *loadBudget, *n)
		return nil
	}

	// Rank by masking power, then availability.
	sort.Slice(cands, func(i, j int) bool {
		bi, bj := bqs.MaskingBound(cands[i].sys), bqs.MaskingBound(cands[j].sys)
		if bi != bj {
			return bi > bj
		}
		return cands[i].fp < cands[j].fp
	})

	fmt.Printf("deployment plan for n ≈ %d, p = %.3f, load budget %.3f\n\n", *n, *p, *loadBudget)
	fmt.Printf("%-22s %6s %5s %5s %8s %12s %-7s\n", "system", "n", "b", "f", "L", "F_p", "method")
	for _, c := range cands {
		fmt.Printf("%-22s %6d %5d %5d %8.4f %12.3e %-7s\n",
			c.name, c.sys.UniverseSize(), bqs.MaskingBound(c.sys), bqs.Resilience(c.sys),
			c.load, c.fp, c.how)
	}
	best := cands[0]
	fmt.Printf("\nhighest masking within budget: %s (b=%d)\n", best.name, bqs.MaskingBound(best.sys))
	var avail candidate
	for _, c := range cands {
		if avail.name == "" || c.fp < avail.fp {
			avail = c
		}
	}
	fmt.Printf("best availability within budget: %s (F_p ≈ %.2e)\n", avail.name, avail.fp)
	fmt.Println("\n(the paper's §8 conclusion for these defaults: RT(4,3) h=5 is the best balance)")
	return nil
}
