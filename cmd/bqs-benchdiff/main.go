// bqs-benchdiff compares two benchmark-snapshot files (the -bench-json
// output of bqs-sim and bqs-client) and reports per-configuration
// throughput deltas. CI runs it against the committed trajectory in
// bench/ so a change that quietly halves ops/s shows up in the job log
// before it lands.
//
// Usage:
//
//	bqs-benchdiff [-threshold 0.5] [-strict] old.json new.json
//
// Snapshots are matched by configuration key (label, system, masking
// bound, store engine, client count, batch size — plus the final
// configuration epoch for runs that resized mid-run, so trajectories
// can be compared across epochs). For each pair the tool
// prints old and new ops/s with the ratio; a pair whose ratio falls
// below -threshold is flagged with WARN. The threshold is deliberately
// soft (default 0.5): shared CI runners jitter by tens of percent, so
// the default mode warns without failing. -strict exits 1 on any WARN —
// the mode for quiet dedicated hardware.
//
// Configurations present on only one side are listed but never fail the
// run: new benchmarks and retired benchmarks are both normal.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"bqs/internal/harness"
)

func main() {
	threshold := flag.Float64("threshold", 0.5, "warn when new/old ops-per-second falls below this ratio")
	strict := flag.Bool("strict", false, "exit 1 if any configuration warns (default: report only)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bqs-benchdiff [flags] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	oldSnaps, err := harness.ReadBenchJSON(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newSnaps, err := harness.ReadBenchJSON(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	oldByKey := index(oldSnaps)
	newByKey := index(newSnaps)

	keys := make([]string, 0, len(oldByKey))
	for k := range oldByKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	warned := false
	for _, k := range keys {
		o := oldByKey[k]
		n, ok := newByKey[k]
		if !ok {
			fmt.Printf("GONE  %-40s old %10.0f ops/s (no new measurement)\n", k, o.OpsPerSec)
			continue
		}
		delete(newByKey, k)
		ratio := 0.0
		if o.OpsPerSec > 0 {
			ratio = n.OpsPerSec / o.OpsPerSec
		}
		status := "ok   "
		if ratio < *threshold {
			status = "WARN "
			warned = true
		}
		fmt.Printf("%s %-40s old %10.0f → new %10.0f ops/s  (%.2fx)\n",
			status, k, o.OpsPerSec, n.OpsPerSec, ratio)
	}
	newKeys := make([]string, 0, len(newByKey))
	for k := range newByKey {
		newKeys = append(newKeys, k)
	}
	sort.Strings(newKeys)
	for _, k := range newKeys {
		fmt.Printf("NEW   %-40s new %10.0f ops/s (no baseline)\n", k, newByKey[k].OpsPerSec)
	}

	if warned {
		fmt.Printf("\nthroughput fell below %.2fx of the committed trajectory for at least one configuration\n", *threshold)
		if *strict {
			os.Exit(1)
		}
		fmt.Println("(soft warning: rerun on quiet hardware or refresh bench/trajectory.json if the change is intended)")
	}
}

// index keys each snapshot by the fields that identify a configuration.
// A later duplicate key overwrites an earlier one — the last measurement
// of a configuration in a file wins. Runs that reconfigured carry their
// final epoch in the key (e=N), so a pre-resize baseline and a
// post-resize measurement of the same label diff as distinct
// configurations instead of silently shadowing each other; epoch-0 runs
// keep the historical key shape, so committed trajectories from before
// the epoch plane still match.
func index(snaps []harness.BenchSnapshot) map[string]harness.BenchSnapshot {
	m := make(map[string]harness.BenchSnapshot, len(snaps))
	for _, s := range snaps {
		k := fmt.Sprintf("%s/%s/b=%d/%s/c=%d/batch=%d", s.Label, s.System, s.B, s.Store, s.Clients, s.Batch)
		if s.Epoch > 0 {
			k += fmt.Sprintf("/e=%d", s.Epoch)
		}
		m[k] = s
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bqs-benchdiff:", err)
	os.Exit(1)
}
