// bqs-server hosts a shard of the quorum universe over TCP: one
// sim.Server replica per global index in -servers, reachable through the
// wire protocol. Start one daemon per shard and point bqs-client's
// -routes at them; together they form a distributed deployment of the
// [MR98a] replicated shared variable, whose measured load the paper's
// Theorem 4.1 bounds.
//
// Usage:
//
//	bqs-server -listen :7000 -servers 0-24
//	bqs-server -listen :7001 -servers 25-49 -byzantine 30,41 -crashed 27
//	bqs-server -listen :7002 -servers 50-74 -data-dir /var/lib/bqs
//
// Fault injection is server-side, as in a real deployment: -byzantine
// and -crashed take comma-separated global indices (which must fall
// inside this daemon's shard) and set those replicas' behaviors before
// serving. SIGINT/SIGTERM trigger a graceful shutdown.
//
// With -data-dir each replica persists its registers to a WAL+snapshot
// store under DIR/server-NNNN, acknowledging a write only after it is
// durable, and recovers that state on startup — kill -9 the daemon,
// restart it with the same -data-dir, and the shard rejoins with every
// acknowledged write intact (the recovery summary is printed per
// replica). -fsync=false trades tail durability for throughput.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"bqs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bqs-server:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", ":7000", "TCP listen address")
	servers := flag.String("servers", "0-24", "inclusive global server index range this daemon hosts, e.g. 0-24")
	byzantine := flag.String("byzantine", "", "comma-separated global indices to make Byzantine (fabricating)")
	crashed := flag.String("crashed", "", "comma-separated global indices to crash")
	grace := flag.Duration("grace", 5*time.Second, "graceful shutdown budget on SIGINT/SIGTERM")
	dataDir := flag.String("data-dir", "", "durable state root: each replica persists to DIR/server-NNNN and recovers it on restart (empty = in-memory)")
	fsync := flag.Bool("fsync", true, "fsync each durable group commit (only with -data-dir)")
	metricsAddr := flag.String("metrics-addr", "", "serve live telemetry on this address: /metrics (Prometheus), /vars, /events, /debug/pprof")
	flag.Parse()

	ids, err := bqs.ParseIDRange(*servers)
	if err != nil {
		return err
	}
	reg := bqs.NewMetricsRegistry()
	if *metricsAddr != "" {
		ms, err := bqs.ServeMetrics(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Printf("bqs-server: metrics on http://%s/metrics (also /vars, /events, /debug/pprof)\n", ms.Addr())
	}
	replicas := make(map[int]*bqs.Server, len(ids))
	for _, id := range ids {
		var opts []bqs.ServerOption
		if *dataDir != "" {
			st, err := bqs.OpenDiskStore(filepath.Join(*dataDir, fmt.Sprintf("server-%04d", id)),
				bqs.WithFsync(*fsync), bqs.WithStoreMetrics(reg))
			if err != nil {
				return fmt.Errorf("server %d: %w", id, err)
			}
			defer st.Close()
			fmt.Printf("bqs-server: server %d recovered: %s\n", id, st.Recovered())
			opts = append(opts, bqs.WithStore(st))
		}
		replicas[id] = bqs.NewServer(id, opts...)
	}
	if err := inject(replicas, *byzantine, bqs.ByzantineFabricate); err != nil {
		return err
	}
	if err := inject(replicas, *crashed, bqs.Crashed); err != nil {
		return err
	}

	srv := bqs.NewWireServer(replicas, bqs.WithWireServerMetrics(reg))
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*listen) }()
	fmt.Printf("bqs-server: hosting servers %s on %s (byzantine=[%s] crashed=[%s])\n",
		*servers, *listen, *byzantine, *crashed)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err // listener died before any signal
	case s := <-sig:
		fmt.Printf("bqs-server: %v — draining (budget %v)\n", s, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		fmt.Println("bqs-server: bye")
		return nil
	}
}

// inject applies behavior to the named replicas, rejecting indices this
// shard does not host.
func inject(replicas map[int]*bqs.Server, spec string, behavior bqs.Behavior) error {
	if spec == "" {
		return nil
	}
	for _, field := range strings.Split(spec, ",") {
		ids, err := bqs.ParseIDRange(strings.TrimSpace(field))
		if err != nil {
			return err
		}
		for _, id := range ids {
			rep, ok := replicas[id]
			if !ok {
				return fmt.Errorf("server %d is not in this shard", id)
			}
			rep.SetBehavior(behavior)
		}
	}
	return nil
}
